// RetryBudget: a token bucket that bounds how much extra load retries may
// add on top of first attempts.
//
// Naive exponential-backoff retries have a metastable failure mode: past
// saturation every timeout spawns another attempt, offered load multiplies
// by the retry count, queues grow, more requests time out, and the system
// stays collapsed even after the original overload passes. The classic fix
// (Google SRE book ch. 22, also gRPC's retry design) is a *budget*: each
// first attempt earns a fraction of a token, each retry spends a whole one,
// so retries can never exceed `ratio` of the base request rate. Under
// overload the bucket drains and retries stop — the client sheds its own
// amplification instead of feeding the storm. Under light load the bucket
// is full and isolated failures still get their retries.
//
// Deterministic and allocation-free; one instance per client (or per
// client/destination pair for finer isolation).

#ifndef QUICKSAND_OVERLOAD_RETRY_BUDGET_H_
#define QUICKSAND_OVERLOAD_RETRY_BUDGET_H_

#include <algorithm>
#include <cstdint>

#include "quicksand/common/check.h"

namespace quicksand {

struct RetryBudgetOptions {
  // Tokens earned per first attempt: retries may add at most this fraction
  // of base load in steady state (10% is the widely used default).
  double ratio = 0.1;
  // Bucket capacity: how large a burst of retries a previously idle client
  // may issue at once.
  double capacity = 10.0;
};

class RetryBudget {
 public:
  RetryBudget() : RetryBudget(RetryBudgetOptions{}) {}
  explicit RetryBudget(RetryBudgetOptions options)
      : options_(options), tokens_(options.capacity) {
    QS_CHECK(options.ratio >= 0.0 && options.capacity > 0.0);
  }

  // Call once per first attempt (not per retry): accrues ratio tokens.
  void OnAttempt() {
    ++attempts_;
    tokens_ = std::min(tokens_ + options_.ratio, options_.capacity);
  }

  // True (and spends a token) if a retry is currently affordable. A denial
  // means retries have already amplified load by the budgeted factor —
  // callers must surface the last error rather than try again.
  bool TryAcquireRetry() {
    if (tokens_ < 1.0) {
      ++denied_;
      return false;
    }
    tokens_ -= 1.0;
    ++granted_;
    return true;
  }

  double tokens() const { return tokens_; }
  int64_t attempts() const { return attempts_; }
  int64_t granted() const { return granted_; }
  int64_t denied() const { return denied_; }

 private:
  RetryBudgetOptions options_;
  double tokens_;
  int64_t attempts_ = 0;
  int64_t granted_ = 0;
  int64_t denied_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_OVERLOAD_RETRY_BUDGET_H_
