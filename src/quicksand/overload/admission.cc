#include "quicksand/overload/admission.h"

#include <algorithm>
#include <cmath>

namespace quicksand {

AdmissionController::AdmissionController(Cluster& cluster,
                                         AdmissionOptions options)
    : cluster_(cluster), options_(options), state_(cluster.size()) {
  QS_CHECK(options_.target > Duration::Zero());
  QS_CHECK(options_.interval > Duration::Zero());
}

Duration AdmissionController::DelayOf(MachineId machine) const {
  const CpuScheduler& cpu = cluster_.machine(machine).cpu();
  return std::max(cpu.QueueingDelay(options_.cpu_priority),
                  cpu.OldestWaitingAge(options_.cpu_priority));
}

AdmissionController::PressureSample AdmissionController::PressureOf(
    MachineId machine) const {
  PressureSample out;
  out.queueing_delay = DelayOf(machine);
  if (machine < state_.size()) {
    out.shedding = state_[machine].shedding;
    out.sheds_in_state = state_[machine].shed_count;
    out.probes_in_state = state_[machine].probe_count;
  }
  return out;
}

bool AdmissionController::Overloaded(MachineId machine) const {
  return machine < state_.size() && state_[machine].shedding;
}

bool AdmissionController::Admit(MachineId machine, SimTime now) {
  if (machine >= state_.size()) {
    state_.resize(cluster_.size());
  }
  MachineState& s = state_[machine];
  const Duration delay = DelayOf(machine);

  if (delay <= options_.target) {
    // Queue drained (or never stood): leave any shedding state behind.
    s.first_above = SimTime::Max();
    s.shedding = false;
    s.shed_count = 0;
    ++admits_;
    return true;
  }
  if (s.first_above == SimTime::Max()) {
    s.first_above = now;  // start the grace interval
  }
  if (!s.shedding && now - s.first_above < options_.interval) {
    ++admits_;  // a burst is not yet a standing queue
    return true;
  }
  if (!s.shedding) {
    s.shedding = true;
    s.shed_count = 0;
    s.probe_count = 0;
    s.next_probe = now + options_.interval;
  }
  // CoDel control law: the k-th probe since entering the shedding state is
  // admitted interval/sqrt(k) after the previous one — probes accelerate
  // gently while the overload persists (the count is PROBES, not sheds;
  // counting sheds would turn the probe stream into a second admit path at
  // high offered load). Everything between probes is shed.
  if (now >= s.next_probe) {
    ++s.probe_count;
    const double denom =
        std::sqrt(static_cast<double>(std::max<int64_t>(s.probe_count, 1)));
    s.next_probe = now + options_.interval * (1.0 / denom);
    ++probes_;
    ++admits_;
    return true;
  }
  ++s.shed_count;
  ++sheds_;
  return false;
}

}  // namespace quicksand
