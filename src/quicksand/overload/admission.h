// AdmissionController: CoDel-style per-machine load shedding.
//
// A server that queues every arrival is one saturation away from unbounded
// queue growth: latency climbs without limit, every queued request is dead
// on arrival by the time it runs, and naive clients retry the corpses. The
// controller watches each machine's *queueing delay* — the time work waits
// for a core, the same standing-queue signal CoDel uses for buffers and
// Breakwater uses for RPC admission — and sheds new arrivals once the delay
// has stayed above `target` for a full `interval`:
//
//  * momentary bursts ride through: delay above target is tolerated for one
//    interval before anything is shed (a standing queue must persist to be
//    a standing queue),
//  * in the shedding state, arrivals are rejected with ResourceExhausted
//    before any CPU or proclet work happens — the queue stops growing and
//    admitted requests keep meeting their deadlines,
//  * probes escape the shedding state: every interval/sqrt(sheds) one
//    arrival is admitted anyway, so the controller notices the queue
//    draining without an external signal (CoDel's control law),
//  * the first observation back under target resets the state entirely.
//
// Deterministic: decisions are pure functions of sim time and the observed
// delays. One controller serves a whole cluster; state is per machine.

#ifndef QUICKSAND_OVERLOAD_ADMISSION_H_
#define QUICKSAND_OVERLOAD_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "quicksand/cluster/cluster.h"
#include "quicksand/common/time.h"

namespace quicksand {

struct AdmissionOptions {
  // Queueing delay a healthy machine is allowed to sustain. Above this for
  // `interval`, shedding begins.
  Duration target = Duration::Micros(500);
  // How long the delay must stay above target before the first shed, and
  // the base period of the probe-admission control law.
  Duration interval = Duration::Millis(2);
  // CPU priority whose queueing delay is the signal (proclet work).
  int cpu_priority = 1;  // kPriorityNormal
};

class AdmissionController {
 public:
  AdmissionController(Cluster& cluster, AdmissionOptions options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Admission decision for one arrival at `machine`, at time `now`. False
  // means shed: reject with ResourceExhausted before doing any work.
  bool Admit(MachineId machine, SimTime now);

  // True while `machine` is in the shedding state — sustained overload, not
  // just a momentary spike. Schedulers use this as a pressure signal.
  bool Overloaded(MachineId machine) const;

  // The delay signal for `machine` as the controller sees it (max of the
  // EWMA queueing delay and the oldest-waiter age, so both a history of
  // slow service and a currently-wedged queue register).
  Duration DelayOf(MachineId machine) const;

  // One machine's pressure as the controller sees it, in a single read —
  // the autoscaler's (and tests') window into admission state without
  // friending the class or re-deriving the control law.
  struct PressureSample {
    Duration queueing_delay = Duration::Zero();  // DelayOf at sample time
    bool shedding = false;            // in the sustained-overload state
    int64_t sheds_in_state = 0;       // sheds since entering that state
    int64_t probes_in_state = 0;      // probes since entering that state
  };
  PressureSample PressureOf(MachineId machine) const;

  int64_t admits() const { return admits_; }
  int64_t sheds() const { return sheds_; }
  int64_t probes() const { return probes_; }

 private:
  struct MachineState {
    SimTime first_above = SimTime::Max();  // when delay first exceeded target
    bool shedding = false;
    int64_t shed_count = 0;   // sheds since entering the state
    int64_t probe_count = 0;  // probes since entering the state
    SimTime next_probe = SimTime::Zero();
  };

  Cluster& cluster_;
  AdmissionOptions options_;
  std::vector<MachineState> state_;
  int64_t admits_ = 0;
  int64_t sheds_ = 0;
  int64_t probes_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_OVERLOAD_ADMISSION_H_
