// StageScaler: matches a producer stage's throughput to its consumer (§3.3,
// §4 / Fig. 3).
//
// "Quicksand splits or merges preprocessing compute proclets to match the
// data consumption rate of GPU training, ensuring GPU saturation without
// wasting CPU resources." The scaler polls two signals every couple of
// milliseconds:
//
//  * consumer starvation — the GPU trainers accumulated idle time since the
//    last round (the queue ran dry): add producers;
//  * backlog growth — the queue is above its high watermark and rising:
//    remove producers (producers outpace the sink).

#ifndef QUICKSAND_ADAPT_STAGE_SCALER_H_
#define QUICKSAND_ADAPT_STAGE_SCALER_H_

#include "quicksand/app/preprocess_stage.h"
#include "quicksand/app/trainer.h"
#include "quicksand/common/stats.h"

namespace quicksand {

struct StageScalerConfig {
  Duration period = Duration::Millis(2);
  int min_producers = 1;
  int max_producers = 64;
  // Add producers when consumer idle time within a round exceeds this
  // fraction of (active gpus x period).
  double starvation_fraction = 0.02;
  // Remove producers only when the backlog is past this AND production
  // measurably outpaces consumption (rate-gated, so measurement noise in the
  // backlog cannot trigger a downward spiral).
  int64_t backlog_high = 32;
  int max_step_up = 1;
  int max_step_down = 1;
  MachineId home = 0;
};

class StageScaler {
 public:
  StageScaler(Runtime& rt, PreprocessStage& stage, ShardedQueue<Tensor> queue,
              GpuTrainer& trainer, StageScalerConfig config = {})
      : rt_(rt),
        stage_(stage),
        queue_(std::move(queue)),
        trainer_(trainer),
        config_(config),
        producer_series_("producer_count") {}

  void Start() { rt_.sim().Spawn(Loop(), "stage_scaler"); }

  const TimeSeries& producer_series() const { return producer_series_; }
  int64_t scale_ups() const { return scale_ups_; }
  int64_t scale_downs() const { return scale_downs_; }

 private:
  Task<> Loop();

  Runtime& rt_;
  PreprocessStage& stage_;
  ShardedQueue<Tensor> queue_;
  GpuTrainer& trainer_;
  StageScalerConfig config_;
  TimeSeries producer_series_;
  int64_t scale_ups_ = 0;
  int64_t scale_downs_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_ADAPT_STAGE_SCALER_H_
