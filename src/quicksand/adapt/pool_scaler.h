// PoolScaler: keeps a DistPool's member count matched to its backlog (§3.3).
//
// "A compute proclet can be oversized when it has more tasks than its CPU
// resource supports. In this case, Quicksand can split it by dividing its
// task queue. Splitting occurs only if there are enough CPU resources in the
// cluster for the new proclet, thus avoiding the creation of an excessive
// number of compute proclets." The converse merges an undersized member's
// queue into a sibling.

#ifndef QUICKSAND_ADAPT_POOL_SCALER_H_
#define QUICKSAND_ADAPT_POOL_SCALER_H_

#include "quicksand/compute/dist_pool.h"

namespace quicksand {

struct PoolScalerConfig {
  Duration period = Duration::Millis(2);
  // Split when average (queued + running) jobs per member exceeds this...
  double backlog_per_member_high = 8.0;
  // ...and merge when it drops below this.
  double backlog_per_member_low = 0.5;
  int min_members = 1;
  int max_members = 64;
  // The paper's guard: only split when the cluster actually has idle cores.
  double min_cluster_idle_cores = 1.0;
  MachineId home = 0;
};

class PoolScaler {
 public:
  PoolScaler(Runtime& rt, DistPool pool, PoolScalerConfig config = {})
      : rt_(rt), pool_(std::move(pool)), config_(config) {}

  void Start() { rt_.sim().Spawn(Loop(), "pool_scaler"); }

  int64_t splits() const { return splits_; }
  int64_t merges() const { return merges_; }

  // Idle cores across the cluster right now.
  static double ClusterIdleCores(Runtime& rt) {
    double idle = 0;
    for (MachineId m = 0; m < rt.cluster().size(); ++m) {
      const Machine& machine = rt.cluster().machine(m);
      idle += std::max(0.0, static_cast<double>(machine.spec().cores) *
                               (1.0 - machine.cpu().LoadFactor()));
    }
    return idle;
  }

 private:
  Task<> Loop() {
    for (;;) {
      co_await rt_.sim().Sleep(config_.period);
      const Ctx ctx = rt_.CtxOn(config_.home);
      const int members = static_cast<int>(pool_.members().size());
      if (members == 0) {
        continue;
      }
      const double per_member =
          static_cast<double>(pool_.Backlog(rt_)) / static_cast<double>(members);
      if (per_member > config_.backlog_per_member_high &&
          members < config_.max_members &&
          ClusterIdleCores(rt_) >= config_.min_cluster_idle_cores) {
        auto split = pool_.SplitBusiest(ctx);
        Result<Ref<ComputeProclet>> fresh = co_await std::move(split);
        if (fresh.ok()) {
          ++splits_;
        }
      } else if (per_member < config_.backlog_per_member_low &&
                 members > config_.min_members) {
        auto shrink = pool_.Shrink(ctx);
        Status shrunk = co_await std::move(shrink);
        if (shrunk.ok()) {
          ++merges_;
        }
      }
    }
  }

  Runtime& rt_;
  DistPool pool_;
  PoolScalerConfig config_;
  int64_t splits_ = 0;
  int64_t merges_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_ADAPT_POOL_SCALER_H_
