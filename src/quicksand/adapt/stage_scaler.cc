#include "quicksand/adapt/stage_scaler.h"

#include "quicksand/common/logging.h"

namespace quicksand {

Task<> StageScaler::Loop() {
  Duration last_idle = trainer_.TotalIdle();
  int64_t last_produced = stage_.images_produced();
  int64_t last_consumed = trainer_.tensors_consumed();
  for (;;) {
    co_await rt_.sim().Sleep(config_.period);
    const Ctx ctx = rt_.CtxOn(config_.home);

    const Duration idle_delta = trainer_.TotalIdle() - last_idle;
    last_idle = trainer_.TotalIdle();
    const int64_t produced_delta = stage_.images_produced() - last_produced;
    last_produced = stage_.images_produced();
    const int64_t consumed_delta = trainer_.tensors_consumed() - last_consumed;
    last_consumed = trainer_.tensors_consumed();
    auto size = queue_.Size(ctx);
    Result<int64_t> backlog = co_await std::move(size);
    const int64_t backlog_now = backlog.value_or(0);

    const Duration starvation_budget =
        config_.period * trainer_.gpu_count() * config_.starvation_fraction;
    if (idle_delta > starvation_budget &&
        stage_.producer_count() < config_.max_producers) {
      // Consumers ran dry: add capacity.
      for (int i = 0; i < config_.max_step_up &&
                      stage_.producer_count() < config_.max_producers;
           ++i) {
        auto add = stage_.AddProducer(ctx);
        Status added = co_await std::move(add);
        if (!added.ok()) {
          break;
        }
        ++scale_ups_;
      }
      QS_LOG_DEBUG("scaler", "consumer starved (%s idle): producers -> %d",
                   idle_delta.ToString().c_str(), stage_.producer_count());
    } else if (backlog_now > config_.backlog_high &&
               produced_delta > consumed_delta &&
               stage_.producer_count() > config_.min_producers) {
      // Backlog accumulating AND production measurably outpaces the sink.
      for (int i = 0; i < config_.max_step_down &&
                      stage_.producer_count() > config_.min_producers;
           ++i) {
        auto remove = stage_.RemoveProducer(ctx);
        Status removed = co_await std::move(remove);
        if (!removed.ok()) {
          break;
        }
        ++scale_downs_;
      }
      QS_LOG_DEBUG("scaler", "backlog %lld, +%lld/-%lld per round: producers -> %d",
                   static_cast<long long>(backlog_now),
                   static_cast<long long>(produced_delta),
                   static_cast<long long>(consumed_delta), stage_.producer_count());
    }
    producer_series_.Record(rt_.sim().Now(),
                            static_cast<double>(stage_.producer_count()));
  }
}

}  // namespace quicksand
