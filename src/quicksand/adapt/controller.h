// AdaptiveController: periodic driver for registered maintenance passes
// (shard split/merge scans, pool scaling checks).

#ifndef QUICKSAND_ADAPT_CONTROLLER_H_
#define QUICKSAND_ADAPT_CONTROLLER_H_

#include <functional>
#include <string>
#include <vector>

#include "quicksand/runtime/runtime.h"

namespace quicksand {

class AdaptiveController {
 public:
  using MaintainFn = std::function<Task<>(Ctx)>;

  AdaptiveController(Runtime& rt, MachineId home, Duration period)
      : rt_(rt), home_(home), period_(period) {}

  void Register(std::string name, MaintainFn fn) {
    passes_.push_back(Pass{std::move(name), std::move(fn)});
  }

  void Start() { rt_.sim().Spawn(Loop(), "adaptive_controller"); }

  int64_t rounds() const { return rounds_; }

 private:
  struct Pass {
    std::string name;
    MaintainFn fn;
  };

  Task<> Loop() {
    for (;;) {
      co_await rt_.sim().Sleep(period_);
      const Ctx ctx = rt_.CtxOn(home_);
      for (Pass& pass : passes_) {
        auto run = pass.fn(ctx);
        co_await std::move(run);
      }
      ++rounds_;
    }
  }

  Runtime& rt_;
  MachineId home_;
  Duration period_;
  std::vector<Pass> passes_;
  int64_t rounds_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_ADAPT_CONTROLLER_H_
