// CheckpointIntervalTuner: adaptive control of the checkpoint cadence.
//
// Checkpointing buys a smaller recovery point at the price of steady-state
// wire traffic. The right interval depends on the workload's write rate,
// which Quicksand cannot know up front — so, like shard sizing and pool
// scaling, it is a control loop: each AdaptiveController round measures the
// checkpoint bytes shipped since the last round (RuntimeStats::
// checkpoint_bytes), converts them to a bandwidth, and compares against a
// budget expressed as a fraction of one NIC's line rate:
//
//   rate > budget          -> double the interval (halve the traffic),
//   rate < 1/4 of budget   -> halve the interval (tighten the RPO),
//
// clamped to [min_interval, max_interval]. Multiplicative steps keep the
// loop stable under bursty writers; the wide dead band between the two
// thresholds prevents oscillation when the rate hovers near the budget.
// Measurement windows must span at least two checkpoint intervals before
// the loop acts — a shorter sample aliases (a controller round in which no
// checkpoint happened to be due reads as zero traffic and would trigger a
// spurious tighten), so the tuner lets the window accumulate across rounds
// until it covers the current cadence.

#ifndef QUICKSAND_ADAPT_CHECKPOINT_TUNER_H_
#define QUICKSAND_ADAPT_CHECKPOINT_TUNER_H_

#include <algorithm>
#include <cstdint>

#include "quicksand/adapt/controller.h"
#include "quicksand/durability/checkpoint_manager.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

class CheckpointIntervalTuner {
 public:
  struct Options {
    // Fraction of reference_bandwidth the checkpoint stream may consume.
    double max_overhead_fraction = 0.10;
    // Line rate the budget is measured against (defaults to one 100 Gbps
    // NIC, matching FabricConfig).
    double reference_bandwidth = 12.5e9;  // bytes/sec
    Duration min_interval = Duration::Millis(1);
    Duration max_interval = Duration::Millis(100);
  };

  CheckpointIntervalTuner(Runtime& rt, CheckpointManager& manager)
      : CheckpointIntervalTuner(rt, manager, Options{}) {}
  CheckpointIntervalTuner(Runtime& rt, CheckpointManager& manager,
                          Options options)
      : rt_(rt), manager_(manager), options_(options) {}

  // Registers the tuning pass with `controller`; measurement windows are the
  // controller's rounds.
  void Register(AdaptiveController& controller) {
    last_bytes_ = rt_.stats().checkpoint_bytes;
    last_round_at_ = rt_.sim().Now();
    controller.Register("checkpoint_tuner",
                        [this](Ctx ctx) { return TuneOnce(ctx); });
  }

  int64_t widenings() const { return widenings_; }
  int64_t tightenings() const { return tightenings_; }

  // One control step (the registered pass; callable directly in tests).
  // No-op until the accumulated window spans two checkpoint intervals.
  Task<> TuneOnce(Ctx) {
    const SimTime now = rt_.sim().Now();
    const Duration window = now - last_round_at_;
    // Let the window accumulate until it spans two checkpoint intervals;
    // evaluating a shorter sample aliases against the checkpoint cadence.
    if (window <= Duration::Zero() || window < manager_.interval() * 2) {
      co_return;
    }
    const int64_t bytes = rt_.stats().checkpoint_bytes;
    const int64_t delta = bytes - last_bytes_;
    last_bytes_ = bytes;
    last_round_at_ = now;
    const double rate = static_cast<double>(delta) / window.seconds();
    const double budget =
        options_.max_overhead_fraction * options_.reference_bandwidth;
    const Duration interval = manager_.interval();
    if (rate > budget && interval < options_.max_interval) {
      manager_.set_interval(std::min(interval * 2, options_.max_interval));
      ++widenings_;
    } else if (rate < budget * 0.25 && interval > options_.min_interval) {
      manager_.set_interval(std::max(interval / 2, options_.min_interval));
      ++tightenings_;
    }
    co_return;
  }

 private:
  Runtime& rt_;
  CheckpointManager& manager_;
  Options options_;
  int64_t last_bytes_ = 0;
  SimTime last_round_at_;
  int64_t widenings_ = 0;
  int64_t tightenings_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_ADAPT_CHECKPOINT_TUNER_H_
