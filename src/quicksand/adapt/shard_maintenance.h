// Split/merge orchestration for sharded data structures (§3.3).
//
// "Quicksand enforces a maximum size based on a target migration latency. If
// a shard becomes oversized, Quicksand splits it into two shards by invoking
// a data-structure-specific split function. [...] Quicksand can respond by
// invoking a data-structure-specific merge function to combine the adjacent
// shards into a single memory proclet."
//
// These are the data-structure-specific split/merge functions for
// ShardedVector and ShardedMap, plus per-structure Maintain passes that the
// AdaptiveController runs periodically. Splits and merges close the affected
// shards' invocation gates for their (short) duration; clients that race see
// kOutOfRange and refresh their routers.

#ifndef QUICKSAND_ADAPT_SHARD_MAINTENANCE_H_
#define QUICKSAND_ADAPT_SHARD_MAINTENANCE_H_

#include "quicksand/ds/sharded_map.h"
#include "quicksand/ds/sharded_vector.h"

namespace quicksand {

struct ShardMaintenanceStats {
  int64_t splits = 0;
  int64_t merges = 0;
  int64_t failed = 0;
};

// Retries a heap-charging operation that can fail under transient memory
// pressure (rollbacks MUST eventually succeed or data would be lost; the
// bytes were just released on the same machine, so contention is short).
template <typename Fn>
Task<Status> RetryUnderPressure(Simulator& sim, Fn attempt, int attempts = 200,
                                Duration backoff = Duration::Millis(1)) {
  Status status = attempt();
  while (!status.ok() && status.code() == StatusCode::kResourceExhausted &&
         --attempts > 0) {
    co_await sim.Sleep(backoff);
    status = attempt();
  }
  co_return status;
}

// RAII helper: reopens gates on scope exit.
class MaintenanceGuard {
 public:
  MaintenanceGuard(Runtime& rt, ProcletId id) : rt_(&rt), id_(id) {}
  MaintenanceGuard(const MaintenanceGuard&) = delete;
  MaintenanceGuard& operator=(const MaintenanceGuard&) = delete;
  MaintenanceGuard(MaintenanceGuard&& o) noexcept
      : rt_(std::exchange(o.rt_, nullptr)), id_(o.id_) {}
  ~MaintenanceGuard() { Release(); }

  void Release() {
    if (rt_ != nullptr) {
      std::exchange(rt_, nullptr)->EndMaintenance(id_);
    }
  }

 private:
  Runtime* rt_;
  ProcletId id_;
};

// --- ShardedVector ------------------------------------------------------------

// Splits `donor` (described by its index entry) at its element midpoint.
template <typename T>
Task<Status> SplitVectorShard(Ctx ctx, ShardedVector<T> vec, ShardInfo donor_info) {
  using Shard = typename ShardedVector<T>::Shard;
  Runtime& rt = *ctx.rt;

  auto begin = rt.BeginMaintenance(donor_info.proclet);
  Status status = co_await std::move(begin);
  if (!status.ok()) {
    co_return status;
  }
  MaintenanceGuard donor_guard(rt, donor_info.proclet);
  auto* donor = rt.UnsafeGet<Shard>(donor_info.proclet);
  QS_CHECK(donor != nullptr);
  if (donor->count() < 2) {
    co_return Status::FailedPrecondition("too few elements to split");
  }
  const MachineId donor_machine = donor->location();
  typename Shard::SplitPayload payload = donor->ExtractUpperHalf();

  // New shard, placed wherever memory is free (excluding nothing: best fit).
  PlacementRequest req;
  req.heap_bytes = vec.options().shard_base_bytes;
  auto create = rt.Create<Shard>(ctx, req, payload.first_index);
  Result<Ref<Shard>> created = co_await std::move(create);
  if (!created.ok()) {
    // Roll the elements back into the donor.
    auto rollback = RetryUnderPressure(rt.sim(), [&] {
      return donor->AbsorbRightNeighbor(std::move(payload));
    });
    const Status rolled_back = co_await std::move(rollback);
    QS_CHECK_MSG(rolled_back.ok(), "split rollback lost data");
    co_return created.status();
  }
  auto begin_new = rt.BeginMaintenance(created->id());
  const Status new_gate = co_await std::move(begin_new);
  QS_CHECK(new_gate.ok());
  MaintenanceGuard new_guard(rt, created->id());
  auto* fresh = rt.UnsafeGet<Shard>(created->id());
  QS_CHECK(fresh != nullptr);

  // Ship the moved elements. If the donor was the growing tail, the new
  // shard takes over the tail role and must stay unsealed for appends.
  const bool donor_was_tail = donor_info.end == UINT64_MAX;
  const int64_t moved_bytes = payload.total_bytes;
  const uint64_t first_moved = payload.first_index;
  auto transfer = rt.fabric().Transfer(donor_machine, fresh->location(), moved_bytes);
  co_await std::move(transfer);
  Status adopted = fresh->AdoptPayload(std::move(payload), /*seal=*/!donor_was_tail);
  if (!adopted.ok()) {
    // Destination ran out of memory: put the elements back where they were.
    auto rollback = RetryUnderPressure(rt.sim(), [&] {
      return donor->AbsorbRightNeighbor(std::move(payload));
    });
    const Status rolled_back = co_await std::move(rollback);
    QS_CHECK_MSG(rolled_back.ok(), "split rollback lost data");
    new_guard.Release();
    auto destroy = rt.Destroy(ctx, created->id());
    (void)co_await std::move(destroy);
    co_return adopted;
  }

  // Index: shrink donor, add the new shard.
  ShardInfo shrunk = donor_info;
  shrunk.end = first_moved;
  shrunk.count = donor->count();
  shrunk.bytes = donor->data_bytes();
  ShardInfo added;
  added.proclet = created->id();
  added.begin = first_moved;
  added.end = donor_info.end;
  added.count = fresh->count();
  added.bytes = fresh->data_bytes();
  auto update = vec.index().Call(ctx,
                                 [shrunk, added](ShardIndexProclet& p) -> Task<Status> {
                                   Status s = p.UpdateShard(shrunk);
                                   if (s.ok()) {
                                     s = p.AddShard(added);
                                   }
                                   co_return s;
                                 });
  status = co_await std::move(update);
  if (status.ok()) {
    if (Tracer* tracer = rt.tracer()) {
      tracer->Instant(ctx.trace, donor_machine, TraceOp::kSplit,
                      donor_info.proclet, moved_bytes);
    }
  }
  co_return status;
}

// Merges `right` into `left` (they must be adjacent index entries; both
// sealed — i.e. neither is the growing tail).
template <typename T>
Task<Status> MergeVectorShards(Ctx ctx, ShardedVector<T> vec, ShardInfo left_info,
                               ShardInfo right_info) {
  using Shard = typename ShardedVector<T>::Shard;
  Runtime& rt = *ctx.rt;
  if (left_info.end != right_info.begin) {
    co_return Status::InvalidArgument("shards are not adjacent");
  }

  auto begin_left = rt.BeginMaintenance(left_info.proclet);
  Status status = co_await std::move(begin_left);
  if (!status.ok()) {
    co_return status;
  }
  MaintenanceGuard left_guard(rt, left_info.proclet);
  auto begin_right = rt.BeginMaintenance(right_info.proclet);
  status = co_await std::move(begin_right);
  if (!status.ok()) {
    co_return status;
  }
  MaintenanceGuard right_guard(rt, right_info.proclet);

  auto* left = rt.UnsafeGet<Shard>(left_info.proclet);
  auto* right = rt.UnsafeGet<Shard>(right_info.proclet);
  QS_CHECK(left != nullptr && right != nullptr);
  if (!right->sealed() || left->end_index() != right->base()) {
    co_return Status::FailedPrecondition("shards not mergeable");
  }

  const MachineId right_machine = right->location();
  typename Shard::SplitPayload payload = right->ExtractAll();
  const int64_t moved_bytes = payload.total_bytes;
  auto transfer = rt.fabric().Transfer(right_machine, left->location(), moved_bytes);
  co_await std::move(transfer);
  Status absorbed = left->AbsorbRightNeighbor(std::move(payload));
  if (!absorbed.ok()) {
    // Left's machine ran out of memory: restore the right shard.
    auto rollback = RetryUnderPressure(rt.sim(), [&] {
      return right->AdoptPayload(std::move(payload));
    });
    const Status rolled_back = co_await std::move(rollback);
    QS_CHECK_MSG(rolled_back.ok(), "merge rollback lost data");
    co_return absorbed;
  }

  ShardInfo widened = left_info;
  widened.end = right_info.end;
  widened.count = left->count();
  widened.bytes = left->data_bytes();
  const ProcletId dead = right_info.proclet;
  auto update = vec.index().Call(ctx,
                                 [widened, dead](ShardIndexProclet& p) -> Task<Status> {
                                   Status s = p.RemoveShard(dead);
                                   if (s.ok()) {
                                     s = p.UpdateShard(widened);
                                   }
                                   co_return s;
                                 });
  status = co_await std::move(update);
  right_guard.Release();
  if (status.ok()) {
    if (Tracer* tracer = rt.tracer()) {
      tracer->Instant(ctx.trace, left->location(), TraceOp::kMerge,
                      left_info.proclet, moved_bytes);
    }
    auto destroy = rt.Destroy(ctx, dead);
    (void)co_await std::move(destroy);
  }
  co_return status;
}

// One maintenance pass: split oversized shards, merge adjacent undersized
// sealed shards.
template <typename T>
Task<> MaintainShardedVector(Ctx ctx, ShardedVector<T> vec, int64_t max_bytes,
                             int64_t min_bytes, ShardMaintenanceStats* stats = nullptr) {
  using Shard = typename ShardedVector<T>::Shard;
  Runtime& rt = *ctx.rt;
  co_await vec.router().Refresh(ctx);
  const std::vector<ShardInfo> shards = vec.router().cached_shards();

  for (size_t i = 0; i < shards.size(); ++i) {
    auto* shard = rt.UnsafeGet<Shard>(shards[i].proclet);
    if (shard == nullptr || shard->gate_closed()) {
      continue;
    }
    // Durable shards are pinned: split/merge mutates them via UnsafeGet,
    // bypassing the mutation log, and a pre-split checkpoint restored after
    // a split would resurrect an overlapping range.
    if (shard->durable()) {
      continue;
    }
    if (shard->data_bytes() > max_bytes && shard->count() >= 2) {
      auto split = SplitVectorShard(ctx, vec, shards[i]);
      Status s = co_await std::move(split);
      if (stats != nullptr) {
        s.ok() ? ++stats->splits : ++stats->failed;
      }
      continue;
    }
    // Merge with the right neighbor when both are sealed and small.
    if (i + 1 < shards.size() && shards[i].end == shards[i + 1].begin) {
      auto* next = rt.UnsafeGet<Shard>(shards[i + 1].proclet);
      if (next != nullptr && !next->gate_closed() && !next->durable() &&
          shard->sealed() &&
          next->sealed() && shard->data_bytes() < min_bytes &&
          next->data_bytes() < min_bytes &&
          shard->data_bytes() + next->data_bytes() <= max_bytes) {
        auto merge = MergeVectorShards(ctx, vec, shards[i], shards[i + 1]);
        Status s = co_await std::move(merge);
        if (stats != nullptr) {
          s.ok() ? ++stats->merges : ++stats->failed;
        }
      }
    }
  }
}

// --- ShardedMap ---------------------------------------------------------------

template <typename K, typename V, typename Proj>
Task<Status> SplitMapShard(Ctx ctx, ShardedMap<K, V, Proj> map, ShardInfo donor_info) {
  using Shard = typename ShardedMap<K, V, Proj>::Shard;
  Runtime& rt = *ctx.rt;

  auto begin = rt.BeginMaintenance(donor_info.proclet);
  Status status = co_await std::move(begin);
  if (!status.ok()) {
    co_return status;
  }
  MaintenanceGuard donor_guard(rt, donor_info.proclet);
  auto* donor = rt.UnsafeGet<Shard>(donor_info.proclet);
  QS_CHECK(donor != nullptr);
  const MachineId donor_machine = donor->location();
  Result<typename Shard::SplitPayload> extracted = donor->ExtractUpperHalf();
  if (!extracted.ok()) {
    co_return extracted.status();
  }
  typename Shard::SplitPayload payload = std::move(*extracted);

  PlacementRequest req;
  req.heap_bytes = map.options().shard_base_bytes;
  auto create = rt.Create<Shard>(ctx, req, payload.split_point, payload.range_end);
  Result<Ref<Shard>> created = co_await std::move(create);
  if (!created.ok()) {
    auto rollback = RetryUnderPressure(rt.sim(), [&] {
      return donor->AbsorbRightNeighbor(std::move(payload));
    });
    const Status rolled_back = co_await std::move(rollback);
    QS_CHECK_MSG(rolled_back.ok(), "split rollback lost data");
    co_return created.status();
  }
  auto begin_new = rt.BeginMaintenance(created->id());
  const Status new_gate = co_await std::move(begin_new);
  QS_CHECK(new_gate.ok());
  MaintenanceGuard new_guard(rt, created->id());
  auto* fresh = rt.UnsafeGet<Shard>(created->id());
  QS_CHECK(fresh != nullptr);

  const int64_t moved_bytes = payload.total_bytes;
  const uint64_t split_point = payload.split_point;
  auto transfer = rt.fabric().Transfer(donor_machine, fresh->location(), moved_bytes);
  co_await std::move(transfer);
  Status adopted = fresh->AdoptPayload(std::move(payload));
  if (!adopted.ok()) {
    auto rollback = RetryUnderPressure(rt.sim(), [&] {
      return donor->AbsorbRightNeighbor(std::move(payload));
    });
    const Status rolled_back = co_await std::move(rollback);
    QS_CHECK_MSG(rolled_back.ok(), "split rollback lost data");
    new_guard.Release();
    auto destroy = rt.Destroy(ctx, created->id());
    (void)co_await std::move(destroy);
    co_return adopted;
  }

  ShardInfo shrunk = donor_info;
  shrunk.end = split_point;
  shrunk.count = donor->count();
  shrunk.bytes = donor->data_bytes();
  ShardInfo added;
  added.proclet = created->id();
  added.begin = split_point;
  added.end = donor_info.end;
  added.count = fresh->count();
  added.bytes = fresh->data_bytes();
  auto update = map.index().Call(ctx,
                                 [shrunk, added](ShardIndexProclet& p) -> Task<Status> {
                                   Status s = p.UpdateShard(shrunk);
                                   if (s.ok()) {
                                     s = p.AddShard(added);
                                   }
                                   co_return s;
                                 });
  status = co_await std::move(update);
  if (status.ok()) {
    if (Tracer* tracer = rt.tracer()) {
      tracer->Instant(ctx.trace, donor_machine, TraceOp::kSplit,
                      donor_info.proclet, moved_bytes);
    }
  }
  co_return status;
}

template <typename K, typename V, typename Proj>
Task<Status> MergeMapShards(Ctx ctx, ShardedMap<K, V, Proj> map, ShardInfo left_info,
                            ShardInfo right_info) {
  using Shard = typename ShardedMap<K, V, Proj>::Shard;
  Runtime& rt = *ctx.rt;
  if (left_info.end != right_info.begin) {
    co_return Status::InvalidArgument("shards are not adjacent");
  }
  auto begin_left = rt.BeginMaintenance(left_info.proclet);
  Status status = co_await std::move(begin_left);
  if (!status.ok()) {
    co_return status;
  }
  MaintenanceGuard left_guard(rt, left_info.proclet);
  auto begin_right = rt.BeginMaintenance(right_info.proclet);
  status = co_await std::move(begin_right);
  if (!status.ok()) {
    co_return status;
  }
  MaintenanceGuard right_guard(rt, right_info.proclet);

  auto* left = rt.UnsafeGet<Shard>(left_info.proclet);
  auto* right = rt.UnsafeGet<Shard>(right_info.proclet);
  QS_CHECK(left != nullptr && right != nullptr);
  if (left->end() != right->begin()) {
    co_return Status::FailedPrecondition("shards not contiguous");
  }
  const MachineId right_machine = right->location();
  typename Shard::SplitPayload payload = right->ExtractAll();
  const int64_t moved_bytes = payload.total_bytes;
  auto transfer = rt.fabric().Transfer(right_machine, left->location(), moved_bytes);
  co_await std::move(transfer);
  Status absorbed = left->AbsorbRightNeighbor(std::move(payload));
  if (!absorbed.ok()) {
    auto rollback = RetryUnderPressure(rt.sim(), [&] {
      return right->AdoptPayload(std::move(payload));
    });
    const Status rolled_back = co_await std::move(rollback);
    QS_CHECK_MSG(rolled_back.ok(), "merge rollback lost data");
    co_return absorbed;
  }

  ShardInfo widened = left_info;
  widened.end = right_info.end;
  widened.count = left->count();
  widened.bytes = left->data_bytes();
  const ProcletId dead = right_info.proclet;
  auto update = map.index().Call(ctx,
                                 [widened, dead](ShardIndexProclet& p) -> Task<Status> {
                                   Status s = p.RemoveShard(dead);
                                   if (s.ok()) {
                                     s = p.UpdateShard(widened);
                                   }
                                   co_return s;
                                 });
  status = co_await std::move(update);
  right_guard.Release();
  if (status.ok()) {
    if (Tracer* tracer = rt.tracer()) {
      tracer->Instant(ctx.trace, left->location(), TraceOp::kMerge,
                      left_info.proclet, moved_bytes);
    }
    auto destroy = rt.Destroy(ctx, dead);
    (void)co_await std::move(destroy);
  }
  co_return status;
}

template <typename K, typename V, typename Proj>
Task<> MaintainShardedMap(Ctx ctx, ShardedMap<K, V, Proj> map, int64_t max_bytes,
                          int64_t min_bytes, ShardMaintenanceStats* stats = nullptr) {
  using Shard = typename ShardedMap<K, V, Proj>::Shard;
  Runtime& rt = *ctx.rt;
  co_await map.router().Refresh(ctx);
  const std::vector<ShardInfo> shards = map.router().cached_shards();

  for (size_t i = 0; i < shards.size(); ++i) {
    auto* shard = rt.UnsafeGet<Shard>(shards[i].proclet);
    if (shard == nullptr || shard->gate_closed()) {
      continue;
    }
    // Durable shards are pinned; see MaintainShardedVector.
    if (shard->durable()) {
      continue;
    }
    if (shard->data_bytes() > max_bytes && shard->count() >= 2) {
      auto split = SplitMapShard(ctx, map, shards[i]);
      Status s = co_await std::move(split);
      if (stats != nullptr) {
        s.ok() ? ++stats->splits : ++stats->failed;
      }
      continue;
    }
    if (i + 1 < shards.size() && shards[i].end == shards[i + 1].begin) {
      auto* next = rt.UnsafeGet<Shard>(shards[i + 1].proclet);
      if (next != nullptr && !next->gate_closed() && !next->durable() &&
          shard->data_bytes() < min_bytes && next->data_bytes() < min_bytes &&
          shard->data_bytes() + next->data_bytes() <= max_bytes) {
        auto merge = MergeMapShards(ctx, map, shards[i], shards[i + 1]);
        Status s = co_await std::move(merge);
        if (stats != nullptr) {
          s.ok() ? ++stats->merges : ++stats->failed;
        }
      }
    }
  }
}

}  // namespace quicksand

#endif  // QUICKSAND_ADAPT_SHARD_MAINTENANCE_H_
