#include "quicksand/proclet/compute_proclet.h"

#include "quicksand/common/logging.h"

namespace quicksand {

Task<> BurnCpu(Ctx ctx, Duration work, int priority) {
  co_await ctx.rt->cluster().machine(ctx.machine).cpu().Run(work, priority);
}

Task<bool> MigratableBurn(Ctx ctx, Duration work, int priority) {
  auto* proclet = ctx.rt->UnsafeGet<ComputeProclet>(ctx.caller_proclet);
  if (proclet == nullptr) {
    // Not running inside a compute proclet: plain burn.
    co_await BurnCpu(ctx, work, priority);
    co_return true;
  }
  const Duration remaining =
      co_await ctx.rt->cluster().machine(ctx.machine).cpu().RunCancellable(
          work, priority, proclet->cancel_token());
  if (remaining <= Duration::Zero()) {
    co_return true;
  }
  // Quiesced mid-burn: the remainder follows the proclet as a fresh job.
  (void)proclet->SubmitFromJob([remaining, priority](Ctx next) -> Task<> {
    (void)co_await MigratableBurn(next, remaining, priority);
  });
  co_return false;
}

ComputeProclet::ComputeProclet(const ProcletInit& init, int workers)
    : ProcletBase(init), work_available_(*init.sim), idle_waiters_(*init.sim) {
  QS_CHECK(workers > 0);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.push_back(init.sim->Spawn(WorkerLoop(), "compute_worker"));
  }
}

Status ComputeProclet::Submit(Job job, int64_t job_bytes) {
  QS_CHECK(job_bytes >= 0);
  if (stopping_) {
    return Status::FailedPrecondition("compute proclet is shutting down");
  }
  if (!TryChargeHeap(job_bytes)) {
    return Status::ResourceExhausted("host machine out of memory for job");
  }
  queue_.push_back(QueuedJob{std::move(job), job_bytes});
  work_available_.WakeOne();
  return Status::Ok();
}

std::vector<std::pair<ComputeProclet::Job, int64_t>> ComputeProclet::StealAllOfQueue() {
  QS_CHECK_MSG(gate_closed(), "StealAllOfQueue requires the gate to be closed");
  std::vector<std::pair<Job, int64_t>> stolen;
  stolen.reserve(queue_.size());
  while (!queue_.empty()) {
    QueuedJob job = std::move(queue_.front());
    queue_.pop_front();
    ReleaseHeap(job.bytes);
    stolen.emplace_back(std::move(job.fn), job.bytes);
  }
  return stolen;
}

std::vector<std::pair<ComputeProclet::Job, int64_t>> ComputeProclet::StealHalfOfQueue() {
  QS_CHECK_MSG(gate_closed(), "StealHalfOfQueue requires the gate to be closed");
  const size_t keep = queue_.size() / 2;
  std::vector<std::pair<Job, int64_t>> stolen;
  stolen.reserve(queue_.size() - keep);
  while (queue_.size() > keep) {
    QueuedJob job = std::move(queue_.back());
    queue_.pop_back();
    ReleaseHeap(job.bytes);
    stolen.emplace_back(std::move(job.fn), job.bytes);
  }
  return stolen;
}

Status ComputeProclet::InjectJobs(std::vector<std::pair<Job, int64_t>>&& jobs) {
  QS_CHECK_MSG(gate_closed(), "InjectJobs requires the gate to be closed");
  // Charge everything up front so failure is all-or-nothing (a partial
  // injection would silently drop the remaining jobs).
  int64_t total = 0;
  for (const auto& [fn, bytes] : jobs) {
    total += bytes;
  }
  if (!TryChargeHeap(total)) {
    return Status::ResourceExhausted("host machine out of memory for jobs");
  }
  for (auto& [fn, bytes] : jobs) {
    queue_.push_back(QueuedJob{std::move(fn), bytes});
  }
  work_available_.WakeAll();
  return Status::Ok();
}

Task<> ComputeProclet::OnQuiesce() {
  paused_ = true;
  // Unwedge jobs stuck waiting for (possibly starved) CPU; their remaining
  // work re-enters the queue and migrates with the proclet.
  cancel_token_.Cancel();
  while (inflight_ > 0) {
    co_await idle_waiters_.Park();
  }
}

void ComputeProclet::OnResume() {
  paused_ = false;
  cancel_token_.Reset();
  work_available_.WakeAll();
}

Task<> ComputeProclet::OnDestroy() {
  paused_ = false;
  stopping_ = true;
  work_available_.WakeAll();
  co_await JoinAll(workers_);
  workers_.clear();
  // Drop whatever never ran, releasing its heap charge.
  while (!queue_.empty()) {
    ReleaseHeap(queue_.front().bytes);
    queue_.pop_front();
  }
}

void ComputeProclet::OnLost() {
  // The host crashed: no joins are possible (the cores are halted), so just
  // flag shutdown and wake everything. Parked workers observe stopping_ and
  // exit; workers mid-burn resume cancelled (the halted CpuScheduler
  // completes their requests), fail to requeue the remainder, and exit.
  // Their fibers drain within the current event cascade; the object itself
  // lingers in the runtime's limbo until teardown, so nothing dangles.
  paused_ = false;
  stopping_ = true;
  cancel_token_.Cancel();
  work_available_.WakeAll();
  queue_.clear();  // heap accounting is written off wholesale by the runtime
}

Task<> ComputeProclet::WorkerLoop() {
  for (;;) {
    while (!stopping_ && (paused_ || queue_.empty())) {
      co_await work_available_.Park();
    }
    if (stopping_) {
      co_return;
    }
    QueuedJob job = std::move(queue_.front());
    queue_.pop_front();
    ++inflight_;
    // Bind the context at job start: this is the machine the job's CPU burn
    // lands on, even if the proclet migrates mid-job.
    const Ctx ctx{&runtime(), location(), id()};
    try {
      co_await job.fn(ctx);
    } catch (const std::exception& e) {
      ++job_errors_;
      QS_LOG_WARN("compute", "proclet %llu job failed: %s",
                  static_cast<unsigned long long>(id()), e.what());
    }
    ReleaseHeap(job.bytes);
    --inflight_;
    ++completed_;
    if (inflight_ == 0) {
      idle_waiters_.WakeAll();
    }
  }
}

}  // namespace quicksand
