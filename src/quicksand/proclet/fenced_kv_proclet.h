// FencedKvProclet: a replicable key/value proclet whose writes carry
// fencing tokens and request ids (health/fencing.h).
//
// This is the proclet-side half of partition-safe at-least-once RPC:
//
//  * every Put is stamped with (caller_epoch, request_id). The embedded
//    FenceGuard rejects stamps from a stale epoch — after a failover the
//    old incarnation's clients (or the old primary itself, gray-failed
//    behind a partition) cannot double-apply a write,
//  * retried Puts whose first attempt landed (only the ack was lost) are
//    answered as duplicates without re-applying — callers get effectively
//    exactly-once semantics from at-least-once retries,
//  * the mutation log replays through ApplyReplicated, which Witnesses the
//    request id on the backup: a promoted backup inherits precisely the
//    dedup knowledge its primary had acked, so retries that straddle a
//    failover still dedup correctly.
//
// Each shard owns a half-open range of the HASH space [hash_begin,
// hash_end): a frontend routes key k by KvShardHash(k), and the shard
// refuses keys it does not own (wrong_shard on Put, OutOfRange on Get)
// so a client racing a split/merge re-routes instead of writing into the
// wrong shard. ExtractUpperRange / ExtractAll / AdoptPayload /
// AbsorbRightNeighbor are the data-structure-specific split/merge hooks
// the autoscaler's reshape executor drives; the payload carries the
// donor's full FenceGuard so dedup knowledge survives reshaping (a retry
// of an acked-but-lost-ack write must dedup on whichever shard owns the
// key NOW).
//
// ApplyCount(key) exposes how many times a key's write was applied, letting
// tests assert exactly-once end to end under injected loss and reshapes.

#ifndef QUICKSAND_PROCLET_FENCED_KV_PROCLET_H_
#define QUICKSAND_PROCLET_FENCED_KV_PROCLET_H_

#include <any>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "quicksand/common/status.h"
#include "quicksand/health/fencing.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

// The routing hash: a splitmix64-style finalizer, so consecutive keys spread
// uniformly over the hash space and equal-width shard ranges carry equal key
// populations. Clamped below UINT64_MAX so half-open ranges ending at
// UINT64_MAX cover the whole space.
inline uint64_t KvShardHash(uint64_t key) {
  uint64_t h = key + 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h == UINT64_MAX ? UINT64_MAX - 1 : h;
}

class FencedKvProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kMemory;

  // Trivially copyable: usable directly as an Invoke return value.
  struct PutResult {
    bool applied = false;     // fresh write, state mutated
    bool duplicate = false;   // request id already executed; state untouched
    bool fenced = false;      // stale epoch (or fenced incarnation); rejected
    bool wrong_shard = false; // key left this shard's range (raced a reshape);
                              // checked before dedup, so the rid is NOT burned
  };

  // Everything one side of a split/merge hands the other. Moves the kv
  // entries and their apply counts, and COPIES the donor's dedup knowledge:
  // both halves remembering every acked rid is safe, either half forgetting
  // one is a double-apply.
  struct SplitPayload {
    uint64_t range_begin = 0;  // hash range the entries cover
    uint64_t range_end = 0;
    std::map<uint64_t, int64_t> kv;
    std::map<uint64_t, int64_t> applies;
    FenceGuard guard;
    int64_t total_bytes = 0;  // wire size: entries + dedup state
  };

  explicit FencedKvProclet(const ProcletInit& init)
      : FencedKvProclet(init, 0, UINT64_MAX) {}

  // A shard owning only [hash_begin, hash_end) of the hash space.
  FencedKvProclet(const ProcletInit& init, uint64_t hash_begin,
                  uint64_t hash_end)
      : ProcletBase(init), hash_begin_(hash_begin), hash_end_(hash_end) {}

  bool Owns(uint64_t key) const {
    const uint64_t h = KvShardHash(key);
    return h >= hash_begin_ && h < hash_end_;
  }

  // Applies `key = value` iff the key is ours, the stamp is current, and the
  // request id is new. All-false result means the host was out of memory
  // (the id is burned in that case — the caller must retry with a fresh
  // one). wrong_shard never burns the id: the retry lands on the new owner.
  PutResult Put(uint64_t caller_epoch, uint64_t request_id, uint64_t key,
                int64_t value) {
    PutResult out;
    if (!Owns(key)) {
      out.wrong_shard = true;
      return out;
    }
    if (fenced()) {
      runtime().NoteFencedRpc(id(), static_cast<int64_t>(request_id));
      out.fenced = true;
      return out;
    }
    switch (guard_.AdmitRequest(caller_epoch, epoch(), request_id)) {
      case FenceGuard::Admit::kFenced:
        runtime().NoteFencedRpc(id(), static_cast<int64_t>(request_id));
        out.fenced = true;
        return out;
      case FenceGuard::Admit::kDuplicate:
        out.duplicate = true;
        return out;
      case FenceGuard::Admit::kExecute:
        break;
    }
    if (kv_.find(key) == kv_.end() && !TryChargeHeap(kEntryBytes)) {
      return out;
    }
    runtime().NoteCommittedRpc(id(), static_cast<int64_t>(request_id));
    kv_[key] = value;
    ++applies_[key];
    RecordMutation(
        [request_id, key, value](ProcletBase& b) {
          return static_cast<FencedKvProclet&>(b).ApplyReplicated(request_id,
                                                                  key, value);
        },
        kEntryBytes);
    out.applied = true;
    return out;
  }

  Result<int64_t> Get(uint64_t key) const {
    if (!Owns(key)) {
      return Status::OutOfRange("key is outside this shard's range");
    }
    auto it = kv_.find(key);
    if (it == kv_.end()) {
      return Status::NotFound("no such key");
    }
    return it->second;
  }

  // How many times a write actually mutated this key — the exactly-once
  // assertion hook: retried acked writes must leave this at 1.
  int64_t ApplyCount(uint64_t key) const {
    auto it = applies_.find(key);
    return it == applies_.end() ? 0 : it->second;
  }

  size_t size() const { return kv_.size(); }
  const FenceGuard& guard() const { return guard_; }
  uint64_t hash_begin() const { return hash_begin_; }
  uint64_t hash_end() const { return hash_end_; }

  // Wire size of the shard's contents — what a whole-shard move must copy.
  int64_t data_bytes() const {
    return static_cast<int64_t>(kv_.size()) * kEntryBytes +
           static_cast<int64_t>(guard_.executed_count()) * kGuardEntryBytes;
  }

  // --- Split/merge hooks (call only under a closed maintenance gate) --------

  // Splits off [split_point, hash_end): entries whose hash lands there move
  // into the payload, this shard shrinks to [hash_begin, split_point), and
  // the payload carries a full COPY of the dedup state. The released heap is
  // credited back here; AdoptPayload charges it at the destination.
  SplitPayload ExtractUpperRange(uint64_t split_point) {
    QS_CHECK(split_point > hash_begin_ && split_point < hash_end_);
    SplitPayload out;
    out.range_begin = split_point;
    out.range_end = hash_end_;
    out.guard = guard_;
    for (auto it = kv_.begin(); it != kv_.end();) {
      if (KvShardHash(it->first) >= split_point) {
        out.kv.insert(*it);
        auto applied = applies_.find(it->first);
        if (applied != applies_.end()) {
          out.applies.insert(*applied);
          applies_.erase(applied);
        }
        it = kv_.erase(it);
      } else {
        ++it;
      }
    }
    hash_end_ = split_point;
    const int64_t entry_bytes =
        static_cast<int64_t>(out.kv.size()) * kEntryBytes;
    ReleaseHeap(entry_bytes);
    out.total_bytes = entry_bytes + static_cast<int64_t>(
        out.guard.executed_count()) * kGuardEntryBytes;
    return out;
  }

  // Empties the shard entirely (merge donor): the range collapses to empty
  // so a racing request re-routes rather than resurrecting entries here.
  SplitPayload ExtractAll() {
    SplitPayload out;
    out.range_begin = hash_begin_;
    out.range_end = hash_end_;
    out.kv = std::move(kv_);
    out.applies = std::move(applies_);
    out.guard = guard_;
    kv_.clear();
    applies_.clear();
    hash_end_ = hash_begin_;
    const int64_t entry_bytes =
        static_cast<int64_t>(out.kv.size()) * kEntryBytes;
    ReleaseHeap(entry_bytes);
    out.total_bytes = entry_bytes + static_cast<int64_t>(
        out.guard.executed_count()) * kGuardEntryBytes;
    return out;
  }

  // Installs a payload into a fresh shard (or restores one during a merge
  // rollback): takes ownership of exactly the payload's range. Fails without
  // mutating anything if the heap charge does not fit.
  Status AdoptPayload(SplitPayload&& payload) {
    const Status charged = ChargeFor(payload);
    if (!charged.ok()) {
      return charged;
    }
    hash_begin_ = payload.range_begin;
    hash_end_ = payload.range_end;
    Install(std::move(payload));
    return Status::Ok();
  }

  // Absorbs a right-adjacent payload (merge, or split rollback): extends
  // this shard's range to the payload's end.
  Status AbsorbRightNeighbor(SplitPayload&& payload) {
    if (payload.range_begin != hash_end_) {
      return Status::FailedPrecondition("payload is not right-adjacent");
    }
    const Status charged = ChargeFor(payload);
    if (!charged.ok()) {
      return charged;
    }
    hash_end_ = payload.range_end;
    Install(std::move(payload));
    return Status::Ok();
  }

  // --- Durability -----------------------------------------------------------

  std::optional<StateImage> CaptureState() const override {
    KvImage image{kv_, applies_, guard_, heap_bytes(), hash_begin_, hash_end_};
    return StateImage{std::any(std::move(image)), heap_bytes()};
  }

  Status RestoreState(const StateImage& image) override {
    const KvImage* kv = std::any_cast<KvImage>(&image.data);
    if (kv == nullptr) {
      return Status::InvalidArgument("image is not a FencedKvProclet image");
    }
    if (!TryChargeHeap(kv->heap_bytes)) {
      return Status::ResourceExhausted("restore target is out of memory");
    }
    kv_ = kv->kv;
    applies_ = kv->applies;
    guard_ = kv->guard;
    hash_begin_ = kv->hash_begin;
    hash_end_ = kv->hash_end;
    return Status::Ok();
  }

 private:
  struct KvImage {
    std::map<uint64_t, int64_t> kv;
    std::map<uint64_t, int64_t> applies;
    FenceGuard guard;
    int64_t heap_bytes = 0;
    uint64_t hash_begin = 0;
    uint64_t hash_end = UINT64_MAX;
  };

  // Wire/heap size of one entry (key + value + log header).
  static constexpr int64_t kEntryBytes = 64;
  // Wire size of one executed request id in a shipped dedup set.
  static constexpr int64_t kGuardEntryBytes = 16;

  Status ChargeFor(const SplitPayload& payload) {
    int64_t fresh = 0;
    for (const auto& [key, value] : payload.kv) {
      if (kv_.find(key) == kv_.end()) {
        fresh += kEntryBytes;
      }
    }
    if (!TryChargeHeap(fresh)) {
      return Status::ResourceExhausted("reshape target is out of memory");
    }
    return Status::Ok();
  }

  void Install(SplitPayload&& payload) {
    for (auto& [key, value] : payload.kv) {
      kv_[key] = value;
    }
    for (auto& [key, count] : payload.applies) {
      applies_[key] += count;
    }
    guard_.Absorb(payload.guard);
  }

  // Log replay target: applies on the backup AND witnesses the request id,
  // so the replica dedups the same retries its primary acked. Overwrite
  // semantics keep replayed batches idempotent at the value level; the
  // witness check keeps the APPLY COUNT honest under batch re-replay.
  Status ApplyReplicated(uint64_t request_id, uint64_t key, int64_t value) {
    if (guard_.Executed(request_id)) {
      return Status::Ok();  // already replayed (repeated batch)
    }
    guard_.Witness(request_id);
    if (kv_.find(key) == kv_.end() && !TryChargeHeap(kEntryBytes)) {
      return Status::ResourceExhausted("backup host is out of memory");
    }
    kv_[key] = value;
    ++applies_[key];
    return Status::Ok();
  }

  std::map<uint64_t, int64_t> kv_;
  std::map<uint64_t, int64_t> applies_;  // key -> times actually mutated
  FenceGuard guard_;
  uint64_t hash_begin_ = 0;
  uint64_t hash_end_ = UINT64_MAX;  // half-open; KvShardHash never returns MAX
};

}  // namespace quicksand

#endif  // QUICKSAND_PROCLET_FENCED_KV_PROCLET_H_
