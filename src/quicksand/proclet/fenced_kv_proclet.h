// FencedKvProclet: a replicable key/value proclet whose writes carry
// fencing tokens and request ids (health/fencing.h).
//
// This is the proclet-side half of partition-safe at-least-once RPC:
//
//  * every Put is stamped with (caller_epoch, request_id). The embedded
//    FenceGuard rejects stamps from a stale epoch — after a failover the
//    old incarnation's clients (or the old primary itself, gray-failed
//    behind a partition) cannot double-apply a write,
//  * retried Puts whose first attempt landed (only the ack was lost) are
//    answered as duplicates without re-applying — callers get effectively
//    exactly-once semantics from at-least-once retries,
//  * the mutation log replays through ApplyReplicated, which Witnesses the
//    request id on the backup: a promoted backup inherits precisely the
//    dedup knowledge its primary had acked, so retries that straddle a
//    failover still dedup correctly.
//
// ApplyCount(key) exposes how many times a key's write was applied, letting
// tests assert exactly-once end to end under injected loss.

#ifndef QUICKSAND_PROCLET_FENCED_KV_PROCLET_H_
#define QUICKSAND_PROCLET_FENCED_KV_PROCLET_H_

#include <any>
#include <cstdint>
#include <map>
#include <optional>

#include "quicksand/common/status.h"
#include "quicksand/health/fencing.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

class FencedKvProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kMemory;

  // Trivially copyable: usable directly as an Invoke return value.
  struct PutResult {
    bool applied = false;    // fresh write, state mutated
    bool duplicate = false;  // request id already executed; state untouched
    bool fenced = false;     // stale epoch (or fenced incarnation); rejected
  };

  explicit FencedKvProclet(const ProcletInit& init) : ProcletBase(init) {}

  // Applies `key = value` iff the stamp is current and the request id is
  // new. All-false result means the host was out of memory (the id is
  // burned in that case — the caller must retry with a fresh one).
  PutResult Put(uint64_t caller_epoch, uint64_t request_id, uint64_t key,
                int64_t value) {
    if (fenced()) {
      runtime().NoteFencedRpc(id(), static_cast<int64_t>(request_id));
      return PutResult{false, false, true};
    }
    switch (guard_.AdmitRequest(caller_epoch, epoch(), request_id)) {
      case FenceGuard::Admit::kFenced:
        runtime().NoteFencedRpc(id(), static_cast<int64_t>(request_id));
        return PutResult{false, false, true};
      case FenceGuard::Admit::kDuplicate:
        return PutResult{false, true, false};
      case FenceGuard::Admit::kExecute:
        break;
    }
    if (kv_.find(key) == kv_.end() && !TryChargeHeap(kEntryBytes)) {
      return PutResult{false, false, false};
    }
    runtime().NoteCommittedRpc(id(), static_cast<int64_t>(request_id));
    kv_[key] = value;
    ++applies_[key];
    RecordMutation(
        [request_id, key, value](ProcletBase& b) {
          return static_cast<FencedKvProclet&>(b).ApplyReplicated(request_id,
                                                                  key, value);
        },
        kEntryBytes);
    return PutResult{true, false, false};
  }

  Result<int64_t> Get(uint64_t key) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) {
      return Status::NotFound("no such key");
    }
    return it->second;
  }

  // How many times a write actually mutated this key — the exactly-once
  // assertion hook: retried acked writes must leave this at 1.
  int64_t ApplyCount(uint64_t key) const {
    auto it = applies_.find(key);
    return it == applies_.end() ? 0 : it->second;
  }

  size_t size() const { return kv_.size(); }
  const FenceGuard& guard() const { return guard_; }

  // --- Durability -----------------------------------------------------------

  std::optional<StateImage> CaptureState() const override {
    KvImage image{kv_, applies_, guard_, heap_bytes()};
    return StateImage{std::any(std::move(image)), heap_bytes()};
  }

  Status RestoreState(const StateImage& image) override {
    const KvImage* kv = std::any_cast<KvImage>(&image.data);
    if (kv == nullptr) {
      return Status::InvalidArgument("image is not a FencedKvProclet image");
    }
    if (!TryChargeHeap(kv->heap_bytes)) {
      return Status::ResourceExhausted("restore target is out of memory");
    }
    kv_ = kv->kv;
    applies_ = kv->applies;
    guard_ = kv->guard;
    return Status::Ok();
  }

 private:
  struct KvImage {
    std::map<uint64_t, int64_t> kv;
    std::map<uint64_t, int64_t> applies;
    FenceGuard guard;
    int64_t heap_bytes = 0;
  };

  // Wire/heap size of one entry (key + value + log header).
  static constexpr int64_t kEntryBytes = 64;

  // Log replay target: applies on the backup AND witnesses the request id,
  // so the replica dedups the same retries its primary acked. Overwrite
  // semantics keep replayed batches idempotent at the value level; the
  // witness check keeps the APPLY COUNT honest under batch re-replay.
  Status ApplyReplicated(uint64_t request_id, uint64_t key, int64_t value) {
    if (guard_.Executed(request_id)) {
      return Status::Ok();  // already replayed (repeated batch)
    }
    guard_.Witness(request_id);
    if (kv_.find(key) == kv_.end() && !TryChargeHeap(kEntryBytes)) {
      return Status::ResourceExhausted("backup host is out of memory");
    }
    kv_[key] = value;
    ++applies_[key];
    return Status::Ok();
  }

  std::map<uint64_t, int64_t> kv_;
  std::map<uint64_t, int64_t> applies_;  // key -> times actually mutated
  FenceGuard guard_;
};

}  // namespace quicksand

#endif  // QUICKSAND_PROCLET_FENCED_KV_PROCLET_H_
