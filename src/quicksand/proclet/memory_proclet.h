// MemoryProclet: a resource proclet specialized for memory (§3.1).
//
// Stores in-memory objects addressed by DistPtr<T> — distributed pointers
// that work across proclets. A compute proclet consumes data from a memory
// proclet by dereferencing (Load-ing) distributed pointers; the runtime
// turns that into a cheap local access or an RPC depending on where the two
// proclets currently live.
//
// The sharded data structures (quicksand/ds) use dedicated shard proclets
// rather than this generic store; MemoryProclet is the low-level building
// block the paper's NewPtr<T> API describes.

#ifndef QUICKSAND_PROCLET_MEMORY_PROCLET_H_
#define QUICKSAND_PROCLET_MEMORY_PROCLET_H_

#include <any>
#include <cstdint>
#include <unordered_map>

#include "quicksand/common/status.h"
#include "quicksand/common/wire.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

class MemoryProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kMemory;

  explicit MemoryProclet(const ProcletInit& init) : ProcletBase(init) {}

  // --- Object store (invoke through Ref<MemoryProclet>::Call) ---------------

  template <typename T>
  Result<uint64_t> PutObject(T value) {
    const int64_t bytes = WireSizeOf(value);
    if (!TryChargeHeap(bytes)) {
      return Status::ResourceExhausted("memory proclet host is out of memory");
    }
    const uint64_t object_id = next_object_id_++;
    objects_.emplace(object_id, Entry{std::any(value), bytes});
    RecordMutation(
        [object_id, value = std::move(value), bytes](ProcletBase& b) {
          return static_cast<MemoryProclet&>(b).ApplyPut(object_id,
                                                         std::any(value), bytes);
        },
        bytes);
    return object_id;
  }

  template <typename T>
  Result<T> GetObject(uint64_t object_id) const {
    auto it = objects_.find(object_id);
    if (it == objects_.end()) {
      return Status::NotFound("no such object");
    }
    const T* value = std::any_cast<T>(&it->second.value);
    if (value == nullptr) {
      return Status::InvalidArgument("object has a different type");
    }
    return *value;
  }

  template <typename T>
  Status SetObject(uint64_t object_id, T value) {
    auto it = objects_.find(object_id);
    if (it == objects_.end()) {
      return Status::NotFound("no such object");
    }
    const int64_t new_bytes = WireSizeOf(value);
    const int64_t delta = new_bytes - it->second.bytes;
    if (delta > 0 && !TryChargeHeap(delta)) {
      return Status::ResourceExhausted("memory proclet host is out of memory");
    }
    if (delta < 0) {
      ReleaseHeap(-delta);
    }
    it->second.value = std::any(value);
    it->second.bytes = new_bytes;
    RecordMutation(
        [object_id, value = std::move(value), new_bytes](ProcletBase& b) {
          return static_cast<MemoryProclet&>(b).ApplyPut(
              object_id, std::any(value), new_bytes);
        },
        new_bytes);
    return Status::Ok();
  }

  Status FreeObject(uint64_t object_id) {
    auto it = objects_.find(object_id);
    if (it == objects_.end()) {
      return Status::NotFound("no such object");
    }
    ReleaseHeap(it->second.bytes);
    objects_.erase(it);
    RecordMutation(
        [object_id](ProcletBase& b) {
          return static_cast<MemoryProclet&>(b).ApplyFree(object_id);
        },
        kFreeRecordBytes);
    return Status::Ok();
  }

  size_t object_count() const { return objects_.size(); }

  // --- Durability -----------------------------------------------------------

  std::optional<StateImage> CaptureState() const override {
    MemoryImage image;
    image.objects = objects_;
    image.next_object_id = next_object_id_;
    image.heap_bytes = heap_bytes();
    return StateImage{std::any(std::move(image)), heap_bytes()};
  }

  Status RestoreState(const StateImage& image) override {
    const MemoryImage* mem = std::any_cast<MemoryImage>(&image.data);
    if (mem == nullptr) {
      return Status::InvalidArgument("image is not a MemoryProclet image");
    }
    if (!TryChargeHeap(mem->heap_bytes)) {
      return Status::ResourceExhausted("restore target is out of memory");
    }
    objects_ = mem->objects;
    next_object_id_ = mem->next_object_id;
    return Status::Ok();
  }

 private:
  struct Entry {
    std::any value;
    int64_t bytes;
  };

  struct MemoryImage {
    std::unordered_map<uint64_t, Entry> objects;
    uint64_t next_object_id = 1;
    int64_t heap_bytes = 0;
  };

  // Wire size of a logged FreeObject record (just the object id + header).
  static constexpr int64_t kFreeRecordBytes = 16;

  // Replay targets for the mutation log: identical to the public mutators
  // but addressed by explicit object id so the backup reproduces the
  // primary's ids exactly. Idempotent (overwrite semantics) so a retried
  // log batch converges.
  Status ApplyPut(uint64_t object_id, std::any value, int64_t bytes) {
    auto it = objects_.find(object_id);
    const int64_t old_bytes = it == objects_.end() ? 0 : it->second.bytes;
    const int64_t delta = bytes - old_bytes;
    if (delta > 0 && !TryChargeHeap(delta)) {
      return Status::ResourceExhausted("backup host is out of memory");
    }
    if (delta < 0) {
      ReleaseHeap(-delta);
    }
    objects_[object_id] = Entry{std::move(value), bytes};
    if (object_id >= next_object_id_) {
      next_object_id_ = object_id + 1;
    }
    return Status::Ok();
  }

  Status ApplyFree(uint64_t object_id) {
    auto it = objects_.find(object_id);
    if (it == objects_.end()) {
      return Status::Ok();  // already free (idempotent replay)
    }
    ReleaseHeap(it->second.bytes);
    objects_.erase(it);
    return Status::Ok();
  }

  std::unordered_map<uint64_t, Entry> objects_;
  uint64_t next_object_id_ = 1;
};

// DistPtr<T>: a typed pointer into a memory proclet, usable from anywhere in
// the cluster. Trivially copyable, so it can itself be shipped over the wire.
template <typename T>
class DistPtr {
 public:
  DistPtr() = default;
  DistPtr(Ref<MemoryProclet> home, uint64_t object_id)
      : home_(home), object_id_(object_id) {}

  explicit operator bool() const { return static_cast<bool>(home_); }
  Ref<MemoryProclet> home() const { return home_; }
  uint64_t object_id() const { return object_id_; }

  // Dereference: copy the object out of its memory proclet.
  Task<Result<T>> Load(Ctx ctx) const {
    auto call = home_.Call(
        ctx, [object_id = object_id_](MemoryProclet& p) -> Task<Result<T>> {
          co_return p.template GetObject<T>(object_id);
        });
    co_return co_await std::move(call);
  }

  // Overwrite the object in place.
  Task<Status> Store(Ctx ctx, T value) const {
    const int64_t request_bytes = WireSizeOf(value);
    // Named task: see the GCC 12 note in sim/task.h.
    auto call = home_.Call(
        ctx,
        [object_id = object_id_, value = std::move(value)](MemoryProclet& p) mutable
        -> Task<Status> { co_return p.SetObject(object_id, std::move(value)); },
        request_bytes);
    co_return co_await std::move(call);
  }

  Task<Status> Free(Ctx ctx) const {
    auto call = home_.Call(
        ctx, [object_id = object_id_](MemoryProclet& p) -> Task<Status> {
          co_return p.FreeObject(object_id);
        });
    co_return co_await std::move(call);
  }

 private:
  Ref<MemoryProclet> home_;
  uint64_t object_id_ = 0;
};

// The paper's NewPtr<T>(args...): allocate an object inside `home` and get a
// distributed pointer to it.
template <typename T>
Task<Result<DistPtr<T>>> NewPtr(Ctx ctx, Ref<MemoryProclet> home, T value) {
  const int64_t request_bytes = WireSizeOf(value);
  // Named task: see the GCC 12 note in sim/task.h.
  auto call = home.Call(
      ctx,
      [value = std::move(value)](MemoryProclet& p) mutable -> Task<Result<uint64_t>> {
        co_return p.PutObject(std::move(value));
      },
      request_bytes);
  Result<uint64_t> object_id = co_await std::move(call);
  if (!object_id.ok()) {
    co_return object_id.status();
  }
  co_return DistPtr<T>(home, *object_id);
}

}  // namespace quicksand

#endif  // QUICKSAND_PROCLET_MEMORY_PROCLET_H_
