#include "quicksand/proclet/storage_proclet.h"

namespace quicksand {

DiskModel& StorageProclet::hosting_disk() {
  return runtime().cluster().machine(location()).disk();
}

bool StorageProclet::TryRelocateAux(MachineId dst) {
  return runtime().cluster().machine(dst).disk().capacity().TryCharge(stored_bytes_);
}

void StorageProclet::UndoRelocateAux(MachineId dst) {
  runtime().cluster().machine(dst).disk().capacity().Release(stored_bytes_);
}

void StorageProclet::FinishRelocateAux(MachineId src) {
  runtime().cluster().machine(src).disk().capacity().Release(stored_bytes_);
}

Task<> StorageProclet::OnDestroy() {
  hosting_disk().capacity().Release(stored_bytes_);
  stored_bytes_ = 0;
  objects_.clear();
  co_return;
}

Status StorageProclet::RestoreState(const StateImage& image) {
  const StorageImage* img = std::any_cast<StorageImage>(&image.data);
  if (img == nullptr) {
    return Status::InvalidArgument("image is not a StorageProclet image");
  }
  if (!TryChargeHeap(img->heap_bytes)) {
    return Status::ResourceExhausted("restore target is out of memory");
  }
  if (!hosting_disk().capacity().TryCharge(img->stored_bytes)) {
    ReleaseHeap(img->heap_bytes);
    return Status::ResourceExhausted("restore target disk capacity exhausted");
  }
  objects_ = img->objects;
  stored_bytes_ = img->stored_bytes;
  return Status::Ok();
}

}  // namespace quicksand
