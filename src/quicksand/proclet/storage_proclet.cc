#include "quicksand/proclet/storage_proclet.h"

namespace quicksand {

DiskModel& StorageProclet::hosting_disk() {
  return runtime().cluster().machine(location()).disk();
}

bool StorageProclet::TryRelocateAux(MachineId dst) {
  return runtime().cluster().machine(dst).disk().capacity().TryCharge(stored_bytes_);
}

void StorageProclet::UndoRelocateAux(MachineId dst) {
  runtime().cluster().machine(dst).disk().capacity().Release(stored_bytes_);
}

void StorageProclet::FinishRelocateAux(MachineId src) {
  runtime().cluster().machine(src).disk().capacity().Release(stored_bytes_);
}

Task<> StorageProclet::OnDestroy() {
  hosting_disk().capacity().Release(stored_bytes_);
  stored_bytes_ = 0;
  objects_.clear();
  co_return;
}

}  // namespace quicksand
