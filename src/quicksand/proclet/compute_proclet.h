// ComputeProclet: a resource proclet specialized for computation (§3.1).
//
// Exposes the paper's Run(lambda) as a job queue drained by worker fibers
// that execute on whatever machine the proclet currently occupies. Its heap
// is (nearly) empty — just the queued closures — which is what keeps compute
// proclets migratable in well under a millisecond.
//
// Split/merge (§3.3): an oversized compute proclet (more tasks than its CPU
// share drains) donates half of its queue to a newly created proclet;
// undersized proclets merge by injecting their queue into a sibling. The
// adaptive controller in quicksand/adapt drives both.

#ifndef QUICKSAND_PROCLET_COMPUTE_PROCLET_H_
#define QUICKSAND_PROCLET_COMPUTE_PROCLET_H_

#include <deque>
#include <functional>
#include <vector>

#include "quicksand/common/status.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

// Models `work` of CPU burn on the caller's current machine.
Task<> BurnCpu(Ctx ctx, Duration work, int priority = kPriorityNormal);

// CPU burn for jobs running inside a compute proclet (ctx.caller_proclet
// set). If the proclet quiesces for migration while the burn is queued or
// running, the remaining work is re-queued as a fresh job — it follows the
// proclet to its new machine, like a Nu thread migrating with its proclet —
// and this call returns false. Returns true when the burn fully completed
// here.
Task<bool> MigratableBurn(Ctx ctx, Duration work, int priority = kPriorityNormal);

class ComputeProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kCompute;
  static constexpr int64_t kDefaultJobBytes = 256;

  // A job runs with a Ctx bound to the proclet's machine at job start.
  using Job = std::function<Task<>(Ctx)>;

  ComputeProclet(const ProcletInit& init, int workers = 2);

  // --- Methods (invoke through Ref<ComputeProclet>::Call) -------------------

  // The paper's Run(lambda): enqueue a job. `job_bytes` sizes the closure
  // (and any captured data) for heap/wire accounting.
  Status Submit(Job job, int64_t job_bytes = kDefaultJobBytes);

  int64_t queue_depth() const { return static_cast<int64_t>(queue_.size()); }
  int64_t inflight() const { return inflight_; }
  int64_t completed() const { return completed_; }
  int64_t job_errors() const { return job_errors_; }
  int worker_count() const { return static_cast<int>(workers_.size()); }
  bool idle() const { return queue_.empty() && inflight_ == 0; }

  // Token covering the CPU requests of this proclet's in-flight jobs;
  // cancelled when the proclet quiesces (see MigratableBurn).
  CpuCancelToken& cancel_token() { return cancel_token_; }

  // Enqueue from a job already running inside this proclet (bypasses the
  // invocation gate; used by MigratableBurn to requeue cancelled work).
  Status SubmitFromJob(Job job, int64_t job_bytes = kDefaultJobBytes) {
    return Submit(std::move(job), job_bytes);
  }

  // --- Maintenance (call only with the gate closed) --------------------------

  // Removes the back half of the queue (for splitting); heap charges move
  // with the jobs (the caller must InjectJobs them into another proclet).
  std::vector<std::pair<Job, int64_t>> StealHalfOfQueue();
  // Removes the entire queue (for merging into a sibling).
  std::vector<std::pair<Job, int64_t>> StealAllOfQueue();
  // Appends jobs (from a split donor or a merging sibling). All-or-nothing:
  // on failure the vector is left untouched so the caller can put the jobs
  // back where they came from.
  Status InjectJobs(std::vector<std::pair<Job, int64_t>>&& jobs);

 protected:
  Task<> OnQuiesce() override;
  void OnResume() override;
  Task<> OnDestroy() override;
  void OnLost() override;

 private:
  struct QueuedJob {
    Job fn;
    int64_t bytes;
  };

  Task<> WorkerLoop();

  std::deque<QueuedJob> queue_;
  WaitQueue work_available_;
  WaitQueue idle_waiters_;
  CpuCancelToken cancel_token_;
  std::vector<Fiber> workers_;
  int64_t inflight_ = 0;
  int64_t completed_ = 0;
  int64_t job_errors_ = 0;
  bool paused_ = false;
  bool stopping_ = false;
};

}  // namespace quicksand

#endif  // QUICKSAND_PROCLET_COMPUTE_PROCLET_H_
