// StorageProclet: a resource proclet specialized for persistent storage
// (§3.1): ReadObject(id) / WriteObject(id, value).
//
// Objects live on the hosting machine's disk: writes and reads pay that
// disk's per-op and bandwidth costs and capacity is charged against it.
// Migrating a storage proclet ships its on-disk bytes too
// (MigrationExtraBytes) and moves the capacity charge — so the splitter
// keeps storage proclets fine-grained just like memory proclets (§3.3).

#ifndef QUICKSAND_PROCLET_STORAGE_PROCLET_H_
#define QUICKSAND_PROCLET_STORAGE_PROCLET_H_

#include <any>
#include <cstdint>
#include <unordered_map>

#include "quicksand/common/status.h"
#include "quicksand/common/wire.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

class StorageProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kStorage;

  explicit StorageProclet(const ProcletInit& init) : ProcletBase(init) {}

  // --- Methods (invoke through Ref<StorageProclet>::Call) -------------------

  // Persists `value` under `object_id` (overwrite allowed). Pays one disk
  // write; charges disk capacity for the delta.
  template <typename T>
  Task<Status> WriteObject(uint64_t object_id, T value) {
    const int64_t bytes = WireSizeOf(value);
    auto& disk = hosting_disk();
    auto it = objects_.find(object_id);
    const int64_t old_bytes = it == objects_.end() ? 0 : it->second.bytes;
    const int64_t delta = bytes - old_bytes;
    if (delta > 0 && !disk.capacity().TryCharge(delta)) {
      co_return Status::ResourceExhausted("disk capacity exhausted");
    }
    if (delta < 0) {
      disk.capacity().Release(-delta);
    }
    stored_bytes_ += delta;
    objects_[object_id] = Entry{std::any(std::move(value)), bytes};
    MarkDirty(bytes);  // checkpoint-only: storage proclets are not log-shipped
    co_await disk.Io(bytes);
    co_return Status::Ok();
  }

  // Reads the object back; pays one disk read.
  template <typename T>
  Task<Result<T>> ReadObject(uint64_t object_id) {
    auto it = objects_.find(object_id);
    if (it == objects_.end()) {
      co_return Status::NotFound("no such storage object");
    }
    const T* value = std::any_cast<T>(&it->second.value);
    if (value == nullptr) {
      co_return Status::InvalidArgument("object has a different type");
    }
    co_await hosting_disk().Io(it->second.bytes);
    co_return *value;
  }

  Task<Status> DeleteObject(uint64_t object_id) {
    auto it = objects_.find(object_id);
    if (it == objects_.end()) {
      co_return Status::NotFound("no such storage object");
    }
    hosting_disk().capacity().Release(it->second.bytes);
    stored_bytes_ -= it->second.bytes;
    objects_.erase(it);
    MarkDirty(kDeleteRecordBytes);
    co_await hosting_disk().Io(0);  // metadata update
    co_return Status::Ok();
  }

  bool Contains(uint64_t object_id) const { return objects_.count(object_id) > 0; }
  size_t object_count() const { return objects_.size(); }
  int64_t stored_bytes() const { return stored_bytes_; }

  // --- Durability -----------------------------------------------------------

  std::optional<StateImage> CaptureState() const override {
    StorageImage image;
    image.objects = objects_;
    image.stored_bytes = stored_bytes_;
    image.heap_bytes = heap_bytes();
    return StateImage{std::any(std::move(image)),
                      heap_bytes() + stored_bytes_};
  }

  // Re-charges both heap (target machine memory) and on-disk bytes (target
  // machine disk capacity); side-effect free on failure.
  Status RestoreState(const StateImage& image) override;

 protected:
  int64_t MigrationExtraBytes() const override { return stored_bytes_; }

  bool TryRelocateAux(MachineId dst) override;
  void FinishRelocateAux(MachineId src) override;
  void UndoRelocateAux(MachineId dst) override;
  Task<> OnDestroy() override;

 private:
  struct Entry {
    std::any value;
    int64_t bytes;
  };

  struct StorageImage {
    std::unordered_map<uint64_t, Entry> objects;
    int64_t stored_bytes = 0;
    int64_t heap_bytes = 0;
  };

  // Dirty-bytes cost of a logged delete (object id + metadata).
  static constexpr int64_t kDeleteRecordBytes = 16;

  DiskModel& hosting_disk();

  std::unordered_map<uint64_t, Entry> objects_;
  int64_t stored_bytes_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_PROCLET_STORAGE_PROCLET_H_
