#include "quicksand/app/preprocess_stage.h"

namespace quicksand {

Task<Status> PreprocessStage::AddProducer(Ctx ctx) {
  PlacementRequest req;
  req.heap_bytes = config_.proclet_base_bytes;
  auto create =
      ctx.rt->Create<ComputeProclet>(ctx, req, config_.workers_per_proclet);
  Result<Ref<ComputeProclet>> proclet = co_await std::move(create);
  if (!proclet.ok()) {
    co_return proclet.status();
  }
  auto stop = std::make_shared<bool>(false);
  // One streaming job per worker.
  for (int i = 0; i < config_.workers_per_proclet; ++i) {
    auto shared = shared_;
    auto out = out_;
    auto cost_model = config_.cost;
    // Named task: see the GCC 12 note in sim/task.h.
    auto call = proclet->Call(
        ctx, [shared, stop, out, cost_model](ComputeProclet& p) -> Task<Status> {
          co_return p.Submit([shared, stop, out, cost_model](Ctx job_ctx) -> Task<> {
            auto job = StreamJob(job_ctx, shared, stop, out, cost_model,
                                 kInvalidImage, Duration::Zero());
            co_await std::move(job);
          });
        });
    Status submitted = co_await std::move(call);
    if (!submitted.ok()) {
      co_return submitted;
    }
  }
  producers_.push_back(Producer{*proclet, stop});
  co_return Status::Ok();
}

Task<Status> PreprocessStage::RemoveProducer(Ctx ctx) {
  if (producers_.empty()) {
    co_return Status::FailedPrecondition("no producers to remove");
  }
  Producer victim = producers_.back();
  producers_.pop_back();
  *victim.stop = true;
  // Destroy drains in-flight work via the quiesce hook, then drops the
  // (stopped) streaming jobs.
  auto destroy = ctx.rt->Destroy(ctx, victim.proclet.id());
  Status destroyed = co_await std::move(destroy);
  co_return destroyed;
}

Task<> PreprocessStage::Shutdown(Ctx ctx) {
  while (!producers_.empty()) {
    auto remove = RemoveProducer(ctx);
    (void)co_await std::move(remove);
  }
}

Task<> PreprocessStage::StreamJob(Ctx ctx, std::shared_ptr<Shared> shared,
                                  std::shared_ptr<bool> stop, ShardedQueue<Tensor> out,
                                  PreprocessCostModel cost_model, uint64_t carry_image,
                                  Duration carry_work) {
  auto* proclet = ctx.rt->UnsafeGet<ComputeProclet>(ctx.caller_proclet);
  QS_CHECK_MSG(proclet != nullptr, "StreamJob must run inside a compute proclet");
  CpuScheduler& cpu = ctx.rt->cluster().machine(ctx.machine).cpu();

  while (!*stop) {
    uint64_t image_id;
    Duration work;
    if (carry_image != kInvalidImage) {
      image_id = carry_image;
      work = carry_work;
      carry_image = kInvalidImage;
    } else {
      image_id = shared->next_image++;
      work = PreprocessCost(shared->generator->Generate(image_id), cost_model);
    }

    const Duration remaining =
        co_await cpu.RunCancellable(work, kPriorityNormal, proclet->cancel_token());
    if (remaining > Duration::Zero()) {
      // Quiescing for migration: park the continuation (with the image's
      // unfinished work) in the proclet's queue and bow out. It resumes on
      // the destination machine.
      (void)proclet->SubmitFromJob(
          [shared, stop, out, cost_model, image_id, remaining](Ctx next) -> Task<> {
            auto job =
                StreamJob(next, shared, stop, out, cost_model, image_id, remaining);
            co_await std::move(job);
          });
      co_return;
    }

    const Tensor tensor =
        MakeTensor(shared->generator->Generate(image_id), cost_model);
    auto push = out.Push(ctx, tensor);
    Status pushed = co_await std::move(push);
    if (pushed.ok()) {
      ++shared->produced;
    }
  }
}

}  // namespace quicksand
