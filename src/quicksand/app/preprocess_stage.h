// PreprocessStage: the elastic CPU stage of the DNN pipeline (§4).
//
// A set of compute proclets each runs a streaming job: synthesize the next
// image, burn its preprocessing cost, push the resulting tensor into the
// sharded queue feeding the GPU trainers. The stage scales by adding or
// removing producer proclets — the x-axis of Fig. 3 — and producers migrate
// like any compute proclet, carrying partially-preprocessed images with them
// (their burn remainders ride the proclet's job queue).

#ifndef QUICKSAND_APP_PREPROCESS_STAGE_H_
#define QUICKSAND_APP_PREPROCESS_STAGE_H_

#include <memory>
#include <vector>

#include "quicksand/app/image.h"
#include "quicksand/ds/sharded_queue.h"
#include "quicksand/proclet/compute_proclet.h"

namespace quicksand {

struct PreprocessStageConfig {
  ImageDistribution images;
  PreprocessCostModel cost;
  uint64_t seed = 42;
  int workers_per_proclet = 1;
  int64_t proclet_base_bytes = 4096;
};

class PreprocessStage {
 public:
  PreprocessStage(Runtime& rt, ShardedQueue<Tensor> out, PreprocessStageConfig config)
      : rt_(rt), out_(std::move(out)), config_(config) {
    shared_ = std::make_shared<Shared>();
    shared_->generator = std::make_unique<ImageGenerator>(config.seed, config.images);
  }

  int producer_count() const { return static_cast<int>(producers_.size()); }
  int64_t images_produced() const { return shared_->produced; }

  // Creates one more producer proclet (placed on the machine with the most
  // idle CPU) and starts its streaming job.
  Task<Status> AddProducer(Ctx ctx);

  // Stops and destroys the most recently added producer.
  Task<Status> RemoveProducer(Ctx ctx);

  // Stops everything.
  Task<> Shutdown(Ctx ctx);

 private:
  struct Shared {
    std::unique_ptr<ImageGenerator> generator;
    uint64_t next_image = 0;
    int64_t produced = 0;
  };

  struct Producer {
    Ref<ComputeProclet> proclet;
    std::shared_ptr<bool> stop;
  };

  // The streaming job body. `carry` resumes a partially-burned image after a
  // migration (kInvalidImage means "fetch a fresh one").
  static constexpr uint64_t kInvalidImage = UINT64_MAX;

  static Task<> StreamJob(Ctx ctx, std::shared_ptr<Shared> shared,
                          std::shared_ptr<bool> stop, ShardedQueue<Tensor> out,
                          PreprocessCostModel cost_model, uint64_t carry_image,
                          Duration carry_work);

  Runtime& rt_;
  ShardedQueue<Tensor> out_;
  PreprocessStageConfig config_;
  std::shared_ptr<Shared> shared_;
  std::vector<Producer> producers_;
};

}  // namespace quicksand

#endif  // QUICKSAND_APP_PREPROCESS_STAGE_H_
