// Synthetic image workload for the DNN-training case study (§4).
//
// The paper's pipeline decompresses/cleans/augments JPEG images with OpenCV;
// what the experiments depend on is each image's memory footprint and CPU
// cost, not its pixels. Image carries a byte size drawn from a deterministic
// distribution, and the cost model charges CPU proportional to those bytes
// (decode) plus a fixed term (augmentation pipeline setup). Defaults are
// calibrated so the Fig. 2 baseline row (46 cores, 13 GiB, 26.1 s) holds.

#ifndef QUICKSAND_APP_IMAGE_H_
#define QUICKSAND_APP_IMAGE_H_

#include <cstdint>

#include "quicksand/common/random.h"
#include "quicksand/common/time.h"

namespace quicksand {

struct Image {
  uint64_t id = 0;
  int32_t width = 0;
  int32_t height = 0;
  int64_t encoded_bytes = 0;

  int64_t WireBytes() const { return encoded_bytes + 24; }
};

// The preprocessed unit fed to GPU training.
struct Tensor {
  uint64_t image_id = 0;
  int64_t bytes = 0;

  int64_t WireBytes() const { return bytes + 16; }
};

struct ImageDistribution {
  int64_t mean_encoded_bytes = 200 * 1024;
  double stddev_fraction = 0.25;  // of the mean
  int32_t width = 1024;
  int32_t height = 768;
};

// Deterministic synthetic dataset: image `id` always has the same size for a
// given seed.
class ImageGenerator {
 public:
  explicit ImageGenerator(uint64_t seed, ImageDistribution dist = ImageDistribution{})
      : seed_(seed), dist_(dist) {}

  Image Generate(uint64_t id) const {
    Rng rng(seed_ ^ (id * 0x9e3779b97f4a7c15ULL + 1));
    const double mean = static_cast<double>(dist_.mean_encoded_bytes);
    double bytes = rng.NextGaussian(mean, mean * dist_.stddev_fraction);
    if (bytes < mean * 0.1) {
      bytes = mean * 0.1;
    }
    Image image;
    image.id = id;
    image.width = dist_.width;
    image.height = dist_.height;
    image.encoded_bytes = static_cast<int64_t>(bytes);
    return image;
  }

  const ImageDistribution& distribution() const { return dist_; }

 private:
  uint64_t seed_;
  ImageDistribution dist_;
};

struct PreprocessCostModel {
  // Fixed per-image work (cleaning, augmentation setup).
  Duration base = Duration::Millis(2);
  // Decode/augment cost per encoded byte. With the default 200 KiB mean this
  // yields ~20 ms/image: 60k images = 1200 core-seconds = 26.1 s on 46 cores.
  double ns_per_byte = 88.0;
  // Output tensor size (e.g., 224x224x3 floats after augmentation).
  int64_t tensor_bytes = 224 * 224 * 3;
};

inline Duration PreprocessCost(const Image& image, const PreprocessCostModel& model) {
  return model.base +
         Duration::Nanos(static_cast<int64_t>(
             static_cast<double>(image.encoded_bytes) * model.ns_per_byte));
}

inline Tensor MakeTensor(const Image& image, const PreprocessCostModel& model) {
  Tensor tensor;
  tensor.image_id = image.id;
  tensor.bytes = model.tensor_bytes;
  return tensor;
}

}  // namespace quicksand

#endif  // QUICKSAND_APP_IMAGE_H_
