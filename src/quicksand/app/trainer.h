// GpuTrainer: the delay-emulated GPU training stage (§4).
//
// "For the training stage, we emulated GPUs by adding a delay to consume
// data from the queue, as we have not yet implemented GPU proclets." Each
// emulated GPU repeatedly pops a batch of tensors from the sharded queue and
// sleeps for the batch's training time. The live GPU count can change at any
// moment (SetGpuCount) — that is the disturbance Fig. 3 applies every 200 ms.

#ifndef QUICKSAND_APP_TRAINER_H_
#define QUICKSAND_APP_TRAINER_H_

#include <memory>

#include "quicksand/app/image.h"
#include "quicksand/ds/sharded_queue.h"

namespace quicksand {

struct GpuTrainerConfig {
  int initial_gpus = 4;
  int max_gpus = 16;
  int batch_size = 8;
  // Emulated time to train one batch on one GPU.
  Duration batch_time = Duration::Millis(2);
  // Poll interval when the queue has no full batch.
  Duration idle_poll = Duration::Micros(200);
  // Machine whose NIC the trainers pull through.
  MachineId gpu_machine = 0;
};

class GpuTrainer {
 public:
  GpuTrainer(Runtime& rt, ShardedQueue<Tensor> queue, GpuTrainerConfig config)
      : rt_(rt), queue_(std::move(queue)), config_(config) {
    state_ = std::make_shared<State>();
    state_->active_gpus = config.initial_gpus;
  }

  // Spawns max_gpus worker fibers; only the first `active_gpus` consume.
  void Start() {
    for (int i = 0; i < config_.max_gpus; ++i) {
      rt_.sim().Spawn(GpuLoop(i), "gpu_worker_" + std::to_string(i));
    }
  }

  void SetGpuCount(int n) {
    QS_CHECK(n >= 0 && n <= config_.max_gpus);
    state_->active_gpus = n;
  }
  int gpu_count() const { return state_->active_gpus; }

  int64_t tensors_consumed() const { return state_->tensors_consumed; }
  int64_t batches_trained() const { return state_->batches; }

  // Fraction of active-GPU time spent waiting on an empty queue, since the
  // given reading (the starvation signal the stage scaler consumes).
  Duration TotalIdle() const { return state_->idle; }
  Duration TotalBusy() const { return state_->busy; }

 private:
  struct State {
    int active_gpus = 0;
    int64_t tensors_consumed = 0;
    int64_t batches = 0;
    Duration idle = Duration::Zero();
    Duration busy = Duration::Zero();
  };

  Task<> GpuLoop(int index) {
    std::vector<Tensor> pending;
    for (;;) {
      if (index >= state_->active_gpus) {
        co_await rt_.sim().Sleep(config_.idle_poll);
        continue;
      }
      const int64_t need = config_.batch_size - static_cast<int64_t>(pending.size());
      if (need > 0) {
        auto pop = queue_.TryPopBatch(rt_.CtxOn(config_.gpu_machine), need);
        Result<std::vector<Tensor>> got = co_await std::move(pop);
        if (got.ok()) {
          for (Tensor& t : *got) {
            pending.push_back(t);
          }
        }
      }
      if (static_cast<int>(pending.size()) < config_.batch_size) {
        state_->idle += config_.idle_poll;
        co_await rt_.sim().Sleep(config_.idle_poll);
        continue;
      }
      co_await rt_.sim().Sleep(config_.batch_time);  // the emulated GPU work
      state_->busy += config_.batch_time;
      state_->tensors_consumed += static_cast<int64_t>(pending.size());
      ++state_->batches;
      pending.clear();
    }
  }

  Runtime& rt_;
  ShardedQueue<Tensor> queue_;
  GpuTrainerConfig config_;
  std::shared_ptr<State> state_;
};

}  // namespace quicksand

#endif  // QUICKSAND_APP_TRAINER_H_
