#include "quicksand/cluster/metrics.h"

#include <algorithm>
#include <string>
#include <utility>

#include "quicksand/health/failure_detector.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

const std::vector<MetricInfo>& ExportedMetrics() {
  // Keep rows grouped by source and alphabetical within a group so the
  // generated DESIGN.md table diffs cleanly.
  static const std::vector<MetricInfo> kMetrics = {
      // ClusterMetrics time series ("_m<i>" appended per machine).
      {"autoscale_hot_shards", "ClusterMetrics",
       "shards the skew detector currently flags hot"},
      {"autoscale_shard_count", "ClusterMetrics",
       "serving shards under autoscale control"},
      {"cpu_util", "ClusterMetrics", "CPU busy fraction per sample window"},
      {"mem_util", "ClusterMetrics", "memory utilization, instantaneous"},
      {"memo_cached_bytes", "ClusterMetrics",
       "resident memo-cache footprint, instantaneous"},
      {"memo_hit_rate", "ClusterMetrics",
       "memo hits (fresh + stale) over lookups per sample window"},
      {"serving_goodput_qps", "ClusterMetrics",
       "requests completed within SLO per second, sliding window"},
      {"serving_hot_shard_qps", "ClusterMetrics",
       "hottest shard's arrival rate over the sample period"},
      {"serving_offered_qps", "ClusterMetrics",
       "request arrivals per second, admitted or not"},
      {"serving_p99_us", "ClusterMetrics",
       "p99 latency of completed requests over the SLO window"},
      {"suspected_machines", "ClusterMetrics",
       "machines currently marked suspected (detector attached)"},
      // Autoscaler action counters.
      {"autoscale_deferred", "Autoscaler",
       "reshapes postponed because the copy would blow the SLO"},
      {"autoscale_merges", "Autoscaler", "cold-neighbor merges committed"},
      {"autoscale_migrations", "Autoscaler",
       "whole-shard migrations to idle machines committed"},
      {"autoscale_splits", "Autoscaler", "hot-shard splits committed"},
      // Adaptation time series.
      {"producer_count", "StageScaler",
       "preprocessing proclets live after each scaling round"},
      // Memo tier counters (MemoCache single-flight + directory + harvester).
      {"memo_single_flight_waits", "MemoCache",
       "duplicate invocations that joined an identical in-flight compute"},
      {"memo_evictions", "MemoDirectory",
       "LRU cache entries dropped for capacity"},
      {"memo_harvested_bytes", "MemoDirectory",
       "cache bytes dropped by harvest under pressure"},
      {"memo_hits", "MemoDirectory", "fresh content-addressed cache hits"},
      {"memo_inserts", "MemoDirectory", "results inserted into the cache"},
      {"memo_lost_lookups", "MemoDirectory",
       "lookups that found a dead cache shard"},
      {"memo_misses", "MemoDirectory", "lookups that found nothing servable"},
      {"memo_shard_repairs", "MemoDirectory",
       "lost cache shards lazily recreated on insert"},
      {"memo_stale_hits", "MemoDirectory",
       "bounded-staleness hits returned to callers"},
      {"memo_stale_serves", "MemoDirectory",
       "stale hits actually served to clients in degraded mode"},
      {"memo_harvests", "MemoHarvester",
       "whole-machine cache harvests under revocation"},
      // HealthCounters (detector + runtime fault accounting).
      {"confirmations", "FailureDetector", "suspicions confirmed dead"},
      {"false_suspicions", "FailureDetector",
       "suspicions cleared by a late heartbeat"},
      {"heartbeats_delivered", "FailureDetector",
       "heartbeats that survived the network"},
      {"heartbeats_sent", "FailureDetector", "heartbeats sent by monitors"},
      {"posthumous_heartbeats", "FailureDetector",
       "heartbeats discarded because the sender was already dead"},
      {"suspicions", "FailureDetector", "silence windows that tripped"},
      {"declared_dead", "RuntimeStats",
       "machines fenced out while possibly alive"},
      {"fenced_migrations", "RuntimeStats",
       "migrations rejected on a stale epoch"},
      {"fenced_rpcs", "RuntimeStats",
       "stamped requests rejected by fence guards"},
      // Rpc overload-control counters.
      {"rpc_budget_denied_retries", "Rpc",
       "retries refused by the client retry budget"},
      {"rpc_deadline_rejected", "Rpc",
       "requests rejected dead-on-arrival at the destination"},
      {"rpc_shed", "Rpc", "requests shed by admission control"},
      // RuntimeStats counters.
      {"bounce_livelocks", "RuntimeStats",
       "invocations that exhausted the bounce loop"},
      {"bounces", "RuntimeStats", "invocations redirected mid-migration"},
      {"checkpoint_bytes", "RuntimeStats",
       "incremental checkpoint bytes shipped"},
      {"crashes", "RuntimeStats", "machine failures observed by the runtime"},
      {"creations", "RuntimeStats", "proclets created"},
      {"deadline_rejected_invocations", "RuntimeStats",
       "invocations refused because the caller's deadline had passed"},
      {"destructions", "RuntimeStats", "proclets destroyed"},
      {"directory_lookups", "RuntimeStats", "location directory RPCs"},
      {"failed_migrations", "RuntimeStats", "migrations that did not commit"},
      {"lazy_copies_completed", "RuntimeStats",
       "background heap copies finished"},
      {"local_invocations", "RuntimeStats", "invocations served on-machine"},
      {"lost_proclets", "RuntimeStats", "proclets whose host died under them"},
      {"migrations", "RuntimeStats", "migrations committed"},
      {"remote_invocations", "RuntimeStats", "invocations served over the wire"},
      {"response_retransmits", "RuntimeStats",
       "response legs resent after a drop"},
      {"restored_proclets", "RuntimeStats",
       "lost proclets brought back by recovery"},
      {"shed_invocations", "RuntimeStats",
       "invocations refused by admission control at the target"},
      {"stale_reads", "RuntimeStats",
       "degraded-mode reads served from a replication backup"},
      {"undelivered_invocations", "RuntimeStats",
       "request legs eaten by the network"},
      {"undelivered_lookups", "RuntimeStats",
       "directory RPCs eaten by the network"},
      {"unreachable_invocations", "RuntimeStats",
       "invocations that gave up on the network"},
      // RuntimeStats latency histograms.
      {"lazy_copy_latency", "RuntimeStats",
       "background copy completion time for lazy migrations"},
      {"migration_latency", "RuntimeStats",
       "gate-closed window per migration (caller-visible)"},
      {"remote_invoke_latency", "RuntimeStats",
       "round-trip latency of remote invocations"},
  };
  return kMetrics;
}

bool IsSnakeCaseMetricName(const std::string& name) {
  if (name.empty() || name.front() == '_' || name.back() == '_') {
    return false;
  }
  if (name.front() >= '0' && name.front() <= '9') {
    return false;
  }
  bool prev_underscore = false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) {
      return false;
    }
    if (c == '_' && prev_underscore) {
      return false;  // no "__" runs
    }
    prev_underscore = (c == '_');
  }
  return true;
}

void ClusterMetrics::Start() {
  cpu_series_.clear();
  mem_series_.clear();
  for (size_t i = 0; i < cluster_.size(); ++i) {
    cpu_series_.emplace_back("cpu_util_m" + std::to_string(i));
    mem_series_.emplace_back("mem_util_m" + std::to_string(i));
  }
  sim_.Spawn(SampleLoop(), "cluster_metrics");
}

HealthCounters ClusterMetrics::CollectHealth(
    const RuntimeStats& rt_stats) const {
  HealthCounters out;
  if (detector_ != nullptr) {
    out.heartbeats_sent = detector_->heartbeats_sent();
    out.heartbeats_delivered = detector_->heartbeats_delivered();
    out.posthumous_heartbeats = detector_->posthumous_heartbeats();
    out.suspicions = detector_->suspicions();
    out.false_suspicions = detector_->false_suspicions();
    out.confirmations = detector_->confirmations();
  }
  out.declared_dead = rt_stats.declared_dead;
  out.fenced_migrations = rt_stats.fenced_migrations;
  out.fenced_rpcs = rt_stats.fenced_rpcs;
  return out;
}

Task<> ClusterMetrics::SampleLoop() {
  std::vector<Duration> last_busy(cluster_.size(), Duration::Zero());
  std::vector<SimTime> last_time(cluster_.size(), sim_.Now());
  for (;;) {
    co_await sim_.Sleep(period_);
    for (MachineId id = 0; id < cluster_.size(); ++id) {
      Machine& m = cluster_.machine(id);
      cpu_series_[id].Record(sim_.Now(),
                             m.cpu().UtilizationSince(last_time[id], last_busy[id]));
      mem_series_[id].Record(sim_.Now(), m.memory().utilization());
      last_busy[id] = m.cpu().TotalBusy();
      last_time[id] = sim_.Now();
    }
    if (detector_ != nullptr) {
      int64_t suspected = 0;
      for (MachineId id = 0; id < cluster_.size(); ++id) {
        if (cluster_.machine(id).suspected()) {
          ++suspected;
        }
      }
      suspected_series_.Record(sim_.Now(), static_cast<double>(suspected));
    }
    if (serving_ != nullptr) {
      const ServingSample s = serving_->SampleServing(sim_.Now());
      serving_offered_series_.Record(sim_.Now(), s.offered_qps);
      serving_goodput_series_.Record(sim_.Now(), s.goodput_qps);
      serving_p99_series_.Record(sim_.Now(),
                                 static_cast<double>(s.p99.nanos()) / 1e3);
      if (!s.shards.empty()) {
        // Hottest shard's arrival rate: difference each shard's cumulative
        // arrivals against the previous sample (new shards count from 0 —
        // a just-split shard's first period is partial by construction).
        const double period_s =
            static_cast<double>(period_.nanos()) / 1e9;
        double hottest = 0.0;
        std::vector<std::pair<uint64_t, int64_t>> current;
        current.reserve(s.shards.size());
        for (const ShardServingSample& shard : s.shards) {
          int64_t last = 0;
          for (const auto& [proclet, arrivals] : last_shard_arrivals_) {
            if (proclet == shard.proclet) {
              last = arrivals;
              break;
            }
          }
          const double rate =
              static_cast<double>(shard.arrivals_total - last) / period_s;
          hottest = std::max(hottest, rate);
          current.emplace_back(shard.proclet, shard.arrivals_total);
        }
        last_shard_arrivals_ = std::move(current);
        serving_hot_shard_series_.Record(sim_.Now(), hottest);
      }
    }
    if (autoscale_ != nullptr) {
      const AutoscaleSample a = autoscale_->SampleAutoscale(sim_.Now());
      autoscale_shard_count_series_.Record(
          sim_.Now(), static_cast<double>(a.shard_count));
      autoscale_hot_shards_series_.Record(sim_.Now(),
                                          static_cast<double>(a.hot_shards));
    }
    if (memo_ != nullptr) {
      const MemoSample m = memo_->SampleMemo(sim_.Now());
      const int64_t lookups =
          m.hits_total + m.stale_hits_total + m.misses_total;
      const int64_t window_lookups = lookups - last_memo_lookups_;
      const int64_t window_hits =
          (m.hits_total + m.stale_hits_total) - last_memo_hits_;
      memo_hit_rate_series_.Record(
          sim_.Now(), window_lookups > 0
                          ? static_cast<double>(window_hits) / window_lookups
                          : 0.0);
      memo_cached_bytes_series_.Record(sim_.Now(),
                                       static_cast<double>(m.cached_bytes));
      last_memo_lookups_ = lookups;
      last_memo_hits_ = m.hits_total + m.stale_hits_total;
    }
  }
}

}  // namespace quicksand
