#include "quicksand/cluster/metrics.h"

#include <string>

#include "quicksand/health/failure_detector.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

void ClusterMetrics::Start() {
  cpu_series_.clear();
  mem_series_.clear();
  for (size_t i = 0; i < cluster_.size(); ++i) {
    cpu_series_.emplace_back("cpu_util_m" + std::to_string(i));
    mem_series_.emplace_back("mem_util_m" + std::to_string(i));
  }
  sim_.Spawn(SampleLoop(), "cluster_metrics");
}

HealthCounters ClusterMetrics::CollectHealth(
    const RuntimeStats& rt_stats) const {
  HealthCounters out;
  if (detector_ != nullptr) {
    out.heartbeats_sent = detector_->heartbeats_sent();
    out.heartbeats_delivered = detector_->heartbeats_delivered();
    out.posthumous_heartbeats = detector_->posthumous_heartbeats();
    out.suspicions = detector_->suspicions();
    out.false_suspicions = detector_->false_suspicions();
    out.confirmations = detector_->confirmations();
  }
  out.declared_dead = rt_stats.declared_dead;
  out.fenced_migrations = rt_stats.fenced_migrations;
  out.fenced_rpcs = rt_stats.fenced_rpcs;
  return out;
}

Task<> ClusterMetrics::SampleLoop() {
  std::vector<Duration> last_busy(cluster_.size(), Duration::Zero());
  std::vector<SimTime> last_time(cluster_.size(), sim_.Now());
  for (;;) {
    co_await sim_.Sleep(period_);
    for (MachineId id = 0; id < cluster_.size(); ++id) {
      Machine& m = cluster_.machine(id);
      cpu_series_[id].Record(sim_.Now(),
                             m.cpu().UtilizationSince(last_time[id], last_busy[id]));
      mem_series_[id].Record(sim_.Now(), m.memory().utilization());
      last_busy[id] = m.cpu().TotalBusy();
      last_time[id] = sim_.Now();
    }
    if (detector_ != nullptr) {
      int64_t suspected = 0;
      for (MachineId id = 0; id < cluster_.size(); ++id) {
        if (cluster_.machine(id).suspected()) {
          ++suspected;
        }
      }
      suspected_series_.Record(sim_.Now(), static_cast<double>(suspected));
    }
  }
}

}  // namespace quicksand
