#include "quicksand/cluster/metrics.h"

namespace quicksand {

void ClusterMetrics::Start() {
  cpu_series_.clear();
  mem_series_.clear();
  for (size_t i = 0; i < cluster_.size(); ++i) {
    cpu_series_.emplace_back("cpu_util_m" + std::to_string(i));
    mem_series_.emplace_back("mem_util_m" + std::to_string(i));
  }
  sim_.Spawn(SampleLoop(), "cluster_metrics");
}

Task<> ClusterMetrics::SampleLoop() {
  std::vector<Duration> last_busy(cluster_.size(), Duration::Zero());
  std::vector<SimTime> last_time(cluster_.size(), sim_.Now());
  for (;;) {
    co_await sim_.Sleep(period_);
    for (MachineId id = 0; id < cluster_.size(); ++id) {
      Machine& m = cluster_.machine(id);
      cpu_series_[id].Record(sim_.Now(),
                             m.cpu().UtilizationSince(last_time[id], last_busy[id]));
      mem_series_[id].Record(sim_.Now(), m.memory().utilization());
      last_busy[id] = m.cpu().TotalBusy();
      last_time[id] = sim_.Now();
    }
  }
}

}  // namespace quicksand
