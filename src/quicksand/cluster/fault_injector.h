// FaultInjector: deterministic machine failures and resource revocation.
//
// Quicksand harvests resources it does not own, so machines can disappear
// with little or no warning (§4: fault tolerance is a first-order challenge
// because granular decomposition scatters state across many hosts). The
// injector drives two event shapes off the discrete-event clock, so every
// run is bit-reproducible:
//
//  * fail-stop crashes — the machine's cores halt, its memory and disk
//    contents vanish, and in-flight fabric transfers touching it abort;
//  * revocation notices — "this machine disappears at deadline D". The
//    machine keeps running until D (so an evacuator can race the deadline),
//    but is marked revoked immediately so schedulers stop placing work on
//    it. At D the machine fail-stops regardless of evacuation progress;
//  * network faults — one-way and bidirectional partitions, per-link packet
//    loss, and delay spikes, scheduled as (start, duration) windows on the
//    fabric. Neither endpoint dies: messages are silently lost or stalled,
//    and only timeouts or the failure detector reveal anything happened.
//
// Interested subsystems subscribe with OnCrash / OnRevocation. The Runtime
// registers a crash handler that marks hosted proclets lost
// (Runtime::AttachFaultInjector); the emergency evacuator registers a
// revocation handler that migrates proclets off the dying machine. Network
// faults have no handlers by design — nobody in the system gets an oracle
// notification that the network broke.

#ifndef QUICKSAND_CLUSTER_FAULT_INJECTOR_H_
#define QUICKSAND_CLUSTER_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "quicksand/cluster/cluster.h"
#include "quicksand/common/time.h"
#include "quicksand/sim/simulator.h"

namespace quicksand {

// A revocation notice: `machine` fail-stops at `deadline`; the notice was
// issued at `notice_at`, so the warning window is deadline - notice_at.
struct RevokeResources {
  MachineId machine = kInvalidMachineId;
  SimTime notice_at;
  SimTime deadline;

  Duration warning() const { return deadline - notice_at; }
};

class FaultInjector {
 public:
  using CrashHandler = std::function<void(MachineId)>;
  using RevocationHandler = std::function<void(const RevokeResources&)>;

  FaultInjector(Simulator& sim, Cluster& cluster) : sim_(sim), cluster_(cluster) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Handlers run synchronously at the fault event, in registration order.
  // Crash handlers run after the machine has fail-stopped (cores halted,
  // NIC dead); revocation handlers run at the notice, before the deadline.
  void OnCrash(CrashHandler handler) { crash_handlers_.push_back(std::move(handler)); }
  void OnRevocation(RevocationHandler handler) {
    revocation_handlers_.push_back(std::move(handler));
  }

  // Schedules a fail-stop crash of `machine` at absolute sim time `at`.
  void ScheduleCrash(SimTime at, MachineId machine);

  // Schedules a revocation notice at `notice_at`: the machine is marked
  // revoked and handlers fire then; the machine fail-stops `warning` later.
  void ScheduleRevocation(SimTime notice_at, MachineId machine, Duration warning);

  // Immediate fail-stop (the zero-warning special case). Idempotent.
  void FailNow(MachineId machine);

  // --- Network faults -------------------------------------------------------
  // All windows are [at, at + duration); Duration::Max() means "until healed
  // by a later scheduled fault or by hand".

  // One-way partition: src cannot reach dst (the reverse direction is
  // unaffected — the asymmetric failure that defeats naive ping checks).
  void SchedulePartitionOneWay(SimTime at, MachineId src, MachineId dst,
                               Duration duration = Duration::Max());
  // Bidirectional partition between a and b.
  void SchedulePartition(SimTime at, MachineId a, MachineId b,
                         Duration duration = Duration::Max());
  // Cuts every link touching `machine` (network-dead, host alive).
  void ScheduleIsolation(SimTime at, MachineId machine,
                         Duration duration = Duration::Max());
  // Per-message drop probability on the directed link for the window.
  void ScheduleLinkLoss(SimTime at, MachineId src, MachineId dst,
                        double probability, Duration duration = Duration::Max());
  // Fixed extra propagation delay on the directed link for the window.
  void ScheduleDelaySpike(SimTime at, MachineId src, MachineId dst,
                          Duration extra, Duration duration = Duration::Max());

  int64_t crashes() const { return crashes_; }
  int64_t revocations() const { return revocations_; }
  int64_t network_faults() const { return network_faults_; }

 private:
  void Fail(MachineId machine);
  // Applies `apply` at `at` and `undo` at `at + duration` (skipped when the
  // window is unbounded), counting one network fault.
  void ScheduleWindow(SimTime at, Duration duration, std::function<void()> apply,
                      std::function<void()> undo);

  Simulator& sim_;
  Cluster& cluster_;
  std::vector<CrashHandler> crash_handlers_;
  std::vector<RevocationHandler> revocation_handlers_;
  int64_t crashes_ = 0;
  int64_t revocations_ = 0;
  int64_t network_faults_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_CLUSTER_FAULT_INJECTOR_H_
