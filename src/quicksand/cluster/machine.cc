#include "quicksand/cluster/machine.h"

#include <cstdio>

namespace quicksand {

std::string Machine::DebugString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "machine %u: %d cores, mem %s/%s (%.0f%%), load %.2f",
                id_, spec_.cores, FormatBytes(memory_.used()).c_str(),
                FormatBytes(memory_.capacity()).c_str(), memory_.utilization() * 100.0,
                cpu_.LoadFactor());
  return buf;
}

}  // namespace quicksand
