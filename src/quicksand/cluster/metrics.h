// ClusterMetrics: periodic sampling of per-machine utilization into time
// series, for figure timelines and scheduler diagnostics. Also the one-stop
// collection point for cluster health counters (heartbeats, suspicions,
// fencing) when a FailureDetector is attached.

#ifndef QUICKSAND_CLUSTER_METRICS_H_
#define QUICKSAND_CLUSTER_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "quicksand/cluster/cluster.h"
#include "quicksand/common/stats.h"
#include "quicksand/sim/simulator.h"

namespace quicksand {

class FailureDetector;
struct RuntimeStats;

// One row of the exported-metric registry: the canonical name (a snake_case
// stem; per-machine series append "_m<i>"), where it comes from, and what it
// measures. The registry is the source of truth for the table in DESIGN.md
// and for the naming test — add a row whenever a new TimeSeries or counter
// is exported.
struct MetricInfo {
  const char* name;
  const char* source;
  const char* description;
};

// Every metric name exported by the simulator, in stable order.
const std::vector<MetricInfo>& ExportedMetrics();

// Naming rule for exported metrics: lower-case snake_case, starting with a
// letter; digits allowed after the first character ("cpu_util_m3" is fine).
bool IsSnakeCaseMetricName(const std::string& name);

// Point-in-time snapshot of the cluster's failure-handling activity,
// merging detector-side counters (heartbeats, suspicions) with
// runtime-side ones (declarations, fencing). All zero when no detector is
// attached and no faults fired — cheap to collect unconditionally.
struct HealthCounters {
  int64_t heartbeats_sent = 0;
  int64_t heartbeats_delivered = 0;
  int64_t posthumous_heartbeats = 0;
  int64_t suspicions = 0;
  int64_t false_suspicions = 0;
  int64_t confirmations = 0;
  int64_t declared_dead = 0;
  int64_t fenced_migrations = 0;
  int64_t fenced_rpcs = 0;
};

class ClusterMetrics {
 public:
  ClusterMetrics(Simulator& sim, Cluster& cluster, Duration sample_period)
      : sim_(sim), cluster_(cluster), period_(sample_period) {}

  // Spawns the sampling fiber. Call once.
  void Start();

  // Optional: lets SampleLoop record the suspected-machine count and
  // CollectHealth fold in detector counters. Call before Start().
  void AttachHealth(const FailureDetector* detector) { detector_ = detector; }

  // Detector counters + the runtime's fault/fencing stats in one snapshot.
  HealthCounters CollectHealth(const RuntimeStats& rt_stats) const;

  // CPU utilization in [0,1] over each sample window, one series per machine.
  const TimeSeries& cpu_utilization(MachineId id) const { return cpu_series_[id]; }
  // Memory utilization in [0,1], sampled instantaneously.
  const TimeSeries& memory_utilization(MachineId id) const { return mem_series_[id]; }
  // Number of machines currently marked suspected, one sample per period.
  // Empty unless a detector was attached before Start().
  const TimeSeries& suspected_machines() const { return suspected_series_; }

 private:
  Task<> SampleLoop();

  Simulator& sim_;
  Cluster& cluster_;
  Duration period_;
  const FailureDetector* detector_ = nullptr;
  std::vector<TimeSeries> cpu_series_;
  std::vector<TimeSeries> mem_series_;
  TimeSeries suspected_series_{"suspected_machines"};
};

}  // namespace quicksand

#endif  // QUICKSAND_CLUSTER_METRICS_H_
