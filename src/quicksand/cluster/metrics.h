// ClusterMetrics: periodic sampling of per-machine utilization into time
// series, for figure timelines and scheduler diagnostics. Also the one-stop
// collection point for cluster health counters (heartbeats, suspicions,
// fencing) when a FailureDetector is attached.

#ifndef QUICKSAND_CLUSTER_METRICS_H_
#define QUICKSAND_CLUSTER_METRICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "quicksand/cluster/cluster.h"
#include "quicksand/common/stats.h"
#include "quicksand/sim/simulator.h"

namespace quicksand {

class FailureDetector;
struct RuntimeStats;

// One row of the exported-metric registry: the canonical name (a snake_case
// stem; per-machine series append "_m<i>"), where it comes from, and what it
// measures. The registry is the source of truth for the table in DESIGN.md
// and for the naming test — add a row whenever a new TimeSeries or counter
// is exported.
struct MetricInfo {
  const char* name;
  const char* source;
  const char* description;
};

// Every metric name exported by the simulator, in stable order.
const std::vector<MetricInfo>& ExportedMetrics();

// Naming rule for exported metrics: lower-case snake_case, starting with a
// letter; digits allowed after the first character ("cpu_util_m3" is fine).
bool IsSnakeCaseMetricName(const std::string& name);

// Point-in-time view of a serving frontend's health over its sliding SLO
// window, polled once per sample period when a source is attached. Rates are
// per second over the source's own window; latencies cover admitted-and-
// completed requests only (shed/expired requests have no service latency —
// they show up in the rate gap between offered and goodput instead).
// One shard's slice of the serving load: who it is, where it lives, what
// hash range it owns, and cumulative arrival/shed counters. Counters are
// cumulative (not rates) so a sampler can difference them at its own period
// without the source guessing anyone's window — the autoscaler's
// LoadStatsCollector turns deltas into EWMA rates.
struct ShardServingSample {
  uint64_t proclet = 0;   // ProcletId (plain integer here: no runtime dep)
  MachineId machine = 0;  // current host
  uint64_t range_begin = 0;  // owned hash range [begin, end)
  uint64_t range_end = 0;
  int64_t arrivals_total = 0;  // requests routed to this shard, ever
  int64_t sheds_total = 0;     // shed outcomes observed at this shard, ever
  int64_t bytes = 0;           // wire size of a whole-shard move
};

struct ServingSample {
  double offered_qps = 0.0;   // arrivals, whether or not admitted
  double goodput_qps = 0.0;   // completed within SLO
  Duration p50 = Duration::Zero();
  Duration p99 = Duration::Zero();
  int64_t shed_total = 0;         // cumulative requests shed by admission
  int64_t deadline_expired_total = 0;  // cumulative dead-on-arrival rejections
  int64_t stale_serves_total = 0;      // cumulative degraded-mode backup reads
  // Per-shard hotness breakdown; empty when the source is not sharded.
  std::vector<ShardServingSample> shards;
};

// Implemented by serving frontends (e.g. KvFrontend) so ClusterMetrics can
// sample them without depending on the serving layer.
class ServingStatsSource {
 public:
  virtual ~ServingStatsSource() = default;
  virtual ServingSample SampleServing(SimTime now) const = 0;
};

// Point-in-time view of the autoscale control loop: how many shards it is
// steering, how many it currently considers hot, and cumulative action
// counters (splits/merges/migrations committed, reshapes deferred on the
// SLO copy-cost guard).
struct AutoscaleSample {
  int shard_count = 0;
  int hot_shards = 0;
  int64_t splits_total = 0;
  int64_t merges_total = 0;
  int64_t migrations_total = 0;
  int64_t deferred_total = 0;
};

// Implemented by the autoscaler so ClusterMetrics can sample it without
// depending on the autoscale layer.
class AutoscaleStatsSource {
 public:
  virtual ~AutoscaleStatsSource() = default;
  virtual AutoscaleSample SampleAutoscale(SimTime now) const = 0;
};

// Point-in-time view of the memoization tier: cumulative lookup outcome
// counters plus the current resident cache footprint. `stale_hits_total`
// counts bounded-staleness hits the directory RETURNED; `stale_serves_total`
// counts the ones a frontend actually served to a client in degraded mode.
struct MemoSample {
  int64_t hits_total = 0;
  int64_t stale_hits_total = 0;
  int64_t misses_total = 0;
  int64_t stale_serves_total = 0;
  int64_t inserts_total = 0;
  int64_t evictions_total = 0;
  int64_t harvested_bytes_total = 0;
  int64_t lost_lookups_total = 0;  // lookups that found a dead shard
  int shard_count = 0;             // live cache shards
  int64_t cached_bytes = 0;        // resident cache footprint
};

// Implemented by the memo directory so ClusterMetrics can sample it without
// depending on the memo layer.
class MemoStatsSource {
 public:
  virtual ~MemoStatsSource() = default;
  virtual MemoSample SampleMemo(SimTime now) const = 0;
};

// Point-in-time snapshot of the cluster's failure-handling activity,
// merging detector-side counters (heartbeats, suspicions) with
// runtime-side ones (declarations, fencing). All zero when no detector is
// attached and no faults fired — cheap to collect unconditionally.
struct HealthCounters {
  int64_t heartbeats_sent = 0;
  int64_t heartbeats_delivered = 0;
  int64_t posthumous_heartbeats = 0;
  int64_t suspicions = 0;
  int64_t false_suspicions = 0;
  int64_t confirmations = 0;
  int64_t declared_dead = 0;
  int64_t fenced_migrations = 0;
  int64_t fenced_rpcs = 0;
};

class ClusterMetrics {
 public:
  ClusterMetrics(Simulator& sim, Cluster& cluster, Duration sample_period)
      : sim_(sim), cluster_(cluster), period_(sample_period) {}

  // Spawns the sampling fiber. Call once.
  void Start();

  // Optional: lets SampleLoop record the suspected-machine count and
  // CollectHealth fold in detector counters. Call before Start().
  void AttachHealth(const FailureDetector* detector) { detector_ = detector; }

  // Optional: samples a serving frontend's offered load, goodput, and tail
  // latency each period into the serving_* series. Call before Start().
  void AttachServing(const ServingStatsSource* serving) { serving_ = serving; }

  // Optional: samples the autoscale control loop each period into the
  // autoscale_* series. Call before Start().
  void AttachAutoscale(const AutoscaleStatsSource* autoscale) {
    autoscale_ = autoscale;
  }

  // Optional: samples the memo tier's hit rate and footprint each period
  // into the memo_* series. Call before Start().
  void AttachMemo(const MemoStatsSource* memo) { memo_ = memo; }

  // Detector counters + the runtime's fault/fencing stats in one snapshot.
  HealthCounters CollectHealth(const RuntimeStats& rt_stats) const;

  // CPU utilization in [0,1] over each sample window, one series per machine.
  const TimeSeries& cpu_utilization(MachineId id) const { return cpu_series_[id]; }
  // Memory utilization in [0,1], sampled instantaneously.
  const TimeSeries& memory_utilization(MachineId id) const { return mem_series_[id]; }
  // Number of machines currently marked suspected, one sample per period.
  // Empty unless a detector was attached before Start().
  const TimeSeries& suspected_machines() const { return suspected_series_; }

  // Serving series; empty unless a source was attached before Start().
  const TimeSeries& serving_offered_qps() const { return serving_offered_series_; }
  const TimeSeries& serving_goodput_qps() const { return serving_goodput_series_; }
  const TimeSeries& serving_p99_us() const { return serving_p99_series_; }
  // Hottest shard's share of windowed arrivals (max over shards of
  // arrivals-delta / period). Empty unless the serving source reports
  // per-shard samples.
  const TimeSeries& serving_hot_shard_qps() const {
    return serving_hot_shard_series_;
  }

  // Autoscale series; empty unless a source was attached before Start().
  const TimeSeries& autoscale_shard_count() const {
    return autoscale_shard_count_series_;
  }
  const TimeSeries& autoscale_hot_shards() const {
    return autoscale_hot_shards_series_;
  }

  // Memo series; empty unless a source was attached before Start().
  // Hit rate is per sample window (fresh + stale hits over lookups), not
  // cumulative, so warm-up misses do not mask steady-state behavior.
  const TimeSeries& memo_hit_rate() const { return memo_hit_rate_series_; }
  const TimeSeries& memo_cached_bytes() const {
    return memo_cached_bytes_series_;
  }

 private:
  Task<> SampleLoop();

  Simulator& sim_;
  Cluster& cluster_;
  Duration period_;
  const FailureDetector* detector_ = nullptr;
  const ServingStatsSource* serving_ = nullptr;
  const AutoscaleStatsSource* autoscale_ = nullptr;
  const MemoStatsSource* memo_ = nullptr;
  std::vector<TimeSeries> cpu_series_;
  std::vector<TimeSeries> mem_series_;
  TimeSeries suspected_series_{"suspected_machines"};
  TimeSeries serving_offered_series_{"serving_offered_qps"};
  TimeSeries serving_goodput_series_{"serving_goodput_qps"};
  TimeSeries serving_p99_series_{"serving_p99_us"};
  TimeSeries serving_hot_shard_series_{"serving_hot_shard_qps"};
  TimeSeries autoscale_shard_count_series_{"autoscale_shard_count"};
  TimeSeries autoscale_hot_shards_series_{"autoscale_hot_shards"};
  TimeSeries memo_hit_rate_series_{"memo_hit_rate"};
  TimeSeries memo_cached_bytes_series_{"memo_cached_bytes"};
  // Last cumulative arrivals per shard, for the hot-shard rate delta.
  std::vector<std::pair<uint64_t, int64_t>> last_shard_arrivals_;
  // Last cumulative memo lookups/hits, for the windowed hit-rate delta.
  int64_t last_memo_lookups_ = 0;
  int64_t last_memo_hits_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_CLUSTER_METRICS_H_
