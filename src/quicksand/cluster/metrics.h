// ClusterMetrics: periodic sampling of per-machine utilization into time
// series, for figure timelines and scheduler diagnostics.

#ifndef QUICKSAND_CLUSTER_METRICS_H_
#define QUICKSAND_CLUSTER_METRICS_H_

#include <vector>

#include "quicksand/cluster/cluster.h"
#include "quicksand/common/stats.h"
#include "quicksand/sim/simulator.h"

namespace quicksand {

class ClusterMetrics {
 public:
  ClusterMetrics(Simulator& sim, Cluster& cluster, Duration sample_period)
      : sim_(sim), cluster_(cluster), period_(sample_period) {}

  // Spawns the sampling fiber. Call once.
  void Start();

  // CPU utilization in [0,1] over each sample window, one series per machine.
  const TimeSeries& cpu_utilization(MachineId id) const { return cpu_series_[id]; }
  // Memory utilization in [0,1], sampled instantaneously.
  const TimeSeries& memory_utilization(MachineId id) const { return mem_series_[id]; }

 private:
  Task<> SampleLoop();

  Simulator& sim_;
  Cluster& cluster_;
  Duration period_;
  std::vector<TimeSeries> cpu_series_;
  std::vector<TimeSeries> mem_series_;
};

}  // namespace quicksand

#endif  // QUICKSAND_CLUSTER_METRICS_H_
