// DiskModel: a machine's local persistent storage.
//
// Service model: operations serialize FIFO through the device; each op costs
// a fixed per-op overhead (1/IOPS) plus transfer time (bytes/bandwidth).
// Capacity is byte-accounted like memory. Flat storage (§3.2, [40])
// aggregates the capacity and IOPS of many machines' disks by spreading
// storage proclets across them.

#ifndef QUICKSAND_CLUSTER_DISK_H_
#define QUICKSAND_CLUSTER_DISK_H_

#include <cstdint>

#include "quicksand/cluster/memory.h"
#include "quicksand/common/time.h"
#include "quicksand/sim/simulator.h"
#include "quicksand/sim/task.h"

namespace quicksand {

struct DiskSpec {
  int64_t capacity_bytes = 256LL * 1024 * 1024 * 1024;  // 256 GiB
  int64_t iops = 100'000;                               // NVMe-class
  int64_t bandwidth_bytes_per_sec = 2'000'000'000;      // 2 GB/s
};

class DiskModel {
 public:
  DiskModel(Simulator& sim, const DiskSpec& spec)
      : sim_(sim), spec_(spec), capacity_(spec.capacity_bytes) {}

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  // Performs one I/O of `bytes`; suspends until the device completes it.
  Task<> Io(int64_t bytes);

  MemoryAccount& capacity() { return capacity_; }
  const MemoryAccount& capacity() const { return capacity_; }
  const DiskSpec& spec() const { return spec_; }

  int64_t ops_completed() const { return ops_; }
  Duration busy() const { return busy_; }

 private:
  Simulator& sim_;
  DiskSpec spec_;
  MemoryAccount capacity_;
  SimTime free_at_ = SimTime::Zero();
  int64_t ops_ = 0;
  Duration busy_ = Duration::Zero();
};

}  // namespace quicksand

#endif  // QUICKSAND_CLUSTER_DISK_H_
