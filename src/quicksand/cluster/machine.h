// Machine: one simulated server — cores, memory, and (optionally) GPUs.

#ifndef QUICKSAND_CLUSTER_MACHINE_H_
#define QUICKSAND_CLUSTER_MACHINE_H_

#include <cstdint>
#include <string>

#include "quicksand/cluster/cpu.h"
#include "quicksand/cluster/disk.h"
#include "quicksand/cluster/memory.h"
#include "quicksand/common/bytes.h"
#include "quicksand/common/time.h"
#include "quicksand/sim/simulator.h"

namespace quicksand {

using MachineId = uint32_t;
inline constexpr MachineId kInvalidMachineId = UINT32_MAX;

struct MachineSpec {
  int cores = 8;
  int64_t memory_bytes = 16 * kGiB;
  int gpus = 0;
  Duration cpu_quantum = Duration::Micros(20);
  DiskSpec disk;
};

class Machine {
 public:
  Machine(Simulator& sim, MachineId id, const MachineSpec& spec)
      : id_(id),
        spec_(spec),
        cpu_(sim, spec.cores, spec.cpu_quantum),
        memory_(spec.memory_bytes),
        disk_(sim, spec.disk) {}

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  MachineId id() const { return id_; }
  const MachineSpec& spec() const { return spec_; }

  CpuScheduler& cpu() { return cpu_; }
  const CpuScheduler& cpu() const { return cpu_; }
  MemoryAccount& memory() { return memory_; }
  const MemoryAccount& memory() const { return memory_; }
  DiskModel& disk() { return disk_; }
  const DiskModel& disk() const { return disk_; }

  std::string DebugString() const;

  // --- Failure & revocation -------------------------------------------------

  // Fail-stop crash: the cores halt (queued work resumes cancelled) and the
  // machine stops participating in the cluster. Memory/disk contents are
  // gone; the Runtime observes this via FaultInjector crash handlers and
  // marks every hosted proclet lost. Idempotent.
  void Fail() {
    if (failed_) {
      return;
    }
    failed_ = true;
    cpu_.Halt();
  }
  bool failed() const { return failed_; }

  // A revocation notice was issued: the machine still runs until its
  // deadline, but schedulers must stop placing or migrating work onto it.
  void MarkRevoked() { revoked_ = true; }
  bool revocation_pending() const { return revoked_ && !failed_; }

  // Failure-detector verdict: the machine missed enough heartbeats to be
  // suspected dead. It may in fact be alive (gray failure / partition) — the
  // flag only steers placement away until the suspicion clears or hardens
  // into a confirmation. Set and cleared by health/FailureDetector.
  void MarkSuspected(bool suspected) { suspected_ = suspected; }
  bool suspected() const { return suspected_; }

  // True when the machine can accept new proclets. Suspected machines are
  // excluded: placing work on a possibly-partitioned host would strand it.
  bool accepting() const { return !failed_ && !revoked_ && !suspected_; }

  // Scheduler bookkeeping (maintained by the Runtime): how many compute
  // proclets currently live here. Placement uses it to spread otherwise
  // tied machines instead of piling onto the first.
  int64_t hosted_compute() const { return hosted_compute_; }
  void AdjustHostedCompute(int64_t delta) {
    hosted_compute_ += delta;
    QS_CHECK(hosted_compute_ >= 0);
  }

 private:
  MachineId id_;
  MachineSpec spec_;
  CpuScheduler cpu_;
  MemoryAccount memory_;
  DiskModel disk_;
  int64_t hosted_compute_ = 0;
  bool failed_ = false;
  bool revoked_ = false;
  bool suspected_ = false;
};

}  // namespace quicksand

#endif  // QUICKSAND_CLUSTER_MACHINE_H_
