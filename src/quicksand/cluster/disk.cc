#include "quicksand/cluster/disk.h"

#include <algorithm>

#include "quicksand/common/check.h"

namespace quicksand {

Task<> DiskModel::Io(int64_t bytes) {
  QS_CHECK(bytes >= 0);
  const auto per_op_ns = static_cast<int64_t>(1e9 / static_cast<double>(spec_.iops));
  const auto transfer_ns = static_cast<int64_t>(
      static_cast<double>(bytes) / static_cast<double>(spec_.bandwidth_bytes_per_sec) *
      1e9);
  const Duration service = Duration::Nanos(per_op_ns + transfer_ns);

  const SimTime start = std::max(sim_.Now(), free_at_);
  const SimTime done = start + service;
  free_at_ = done;
  busy_ += service;
  ++ops_;
  co_await sim_.SleepUntil(done);
}

}  // namespace quicksand
