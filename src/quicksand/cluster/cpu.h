// CpuScheduler: models contention for a machine's cores.
//
// Work is expressed as "consume D of core time at priority p". Cores serve a
// priority run queue in fixed quanta (round-robin within a priority level),
// so a newly arriving high-priority request waits at most one quantum for a
// core. This is how the phased antagonist of Fig. 1 starves the filler
// application: its priority-0 requests occupy every core, and the filler's
// priority-1 requests observe a queueing-delay spike — the signal the local
// scheduler reacts to (§5 suggests queueing delay for idle-core detection,
// citing Breakwater).

#ifndef QUICKSAND_CLUSTER_CPU_H_
#define QUICKSAND_CLUSTER_CPU_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "quicksand/common/stats.h"
#include "quicksand/common/time.h"
#include "quicksand/sim/simulator.h"
#include "quicksand/sim/task.h"

namespace quicksand {

// Priority levels; lower value is served first.
inline constexpr int kPriorityHigh = 0;    // latency-critical antagonists
inline constexpr int kPriorityNormal = 1;  // proclet work
inline constexpr int kPriorityLow = 2;     // background/best-effort

class CpuScheduler;

// Cancels a set of outstanding CPU requests: used by proclet migration to
// "unwedge" computation that is starved waiting for a core, so the work can
// move to another machine instead of waiting out the starvation (Nu migrates
// such threads with the proclet; we cancel-and-requeue their remaining work).
class CpuCancelToken {
 public:
  CpuCancelToken() = default;

  CpuCancelToken(const CpuCancelToken&) = delete;
  CpuCancelToken& operator=(const CpuCancelToken&) = delete;

  bool cancelled() const { return cancelled_; }
  // Wakes every registered request; each resumes with its remaining work.
  void Cancel();
  // Re-arms the token for use after a migration completes.
  void Reset() { cancelled_ = false; }

 private:
  friend class CpuScheduler;
  friend struct CpuRunAwaiter;

  bool cancelled_ = false;
  CpuScheduler* sched_ = nullptr;
  std::vector<void*> active_;  // Request* (opaque outside CpuScheduler)
};

class CpuScheduler {
 public:
  CpuScheduler(Simulator& sim, int num_cores, Duration quantum = Duration::Micros(20));
  ~CpuScheduler();

  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  // Consumes `work` of core time at `priority`; suspends until fully
  // serviced. Zero or negative work returns immediately.
  Task<> Run(Duration work, int priority = kPriorityNormal);

  // Like Run, but abandons the request when `token` is cancelled; returns
  // the unserviced remainder (Zero when the work completed).
  Task<Duration> RunCancellable(Duration work, int priority, CpuCancelToken& token);

  // Fail-stop: the cores halt. Every queued or running request resumes
  // immediately as cancelled (with its full remainder), and later Run /
  // RunCancellable calls return without consuming simulated time. Parked
  // work never hangs on a dead machine — the caller observes the machine's
  // death through the runtime, not through a stuck core.
  void Halt();
  bool halted() const { return halted_; }

  int num_cores() const { return static_cast<int>(cores_.size()); }
  Duration quantum() const { return quantum_; }

  // --- Scheduling signals ---------------------------------------------------

  // EWMA of enqueue -> first-service delay at the given priority. Rises
  // sharply when higher-priority work floods the cores.
  Duration QueueingDelay(int priority) const;

  // Instantaneous starvation signal: how long the oldest queued request at
  // this priority has been waiting for a core (Zero when none is queued).
  // Unlike the EWMA, this fires while requests are still stuck.
  Duration OldestWaitingAge(int priority) const;

  // Number of runnable (queued or running) requests with a strictly better
  // (numerically lower) priority. Starvation of `priority` only indicates
  // *pressure* — rather than self-saturation — when this is non-zero.
  int64_t RunnableAbove(int priority) const;

  // Requests currently queued or running.
  int64_t runnable_count() const { return runnable_count_; }
  int64_t queued_count(int priority) const;

  // (queued + running) / cores — an instantaneous load factor.
  double LoadFactor() const;

  // Cumulative busy core-time (sum over cores). Callers compute windowed
  // utilization from deltas of this value.
  Duration TotalBusy() const { return total_busy_; }

  // Windowed utilization in [0, 1]: fraction of core-time busy since the
  // given earlier reading.
  double UtilizationSince(SimTime earlier, Duration busy_at_earlier) const;

 private:
  friend class CpuCancelToken;

  struct Request {
    Duration remaining;
    int priority;
    SimTime enqueued;
    bool serviced_once = false;
    bool cancelled = false;
    bool running = false;
    CpuCancelToken* token = nullptr;
    std::coroutine_handle<> waiter;
  };

  struct Core {
    Request* current = nullptr;
  };

  friend struct CpuRunAwaiter;

  void Enqueue(Request* request);
  void Dispatch();
  void OnSliceEnd(size_t core_index, Duration slice);
  void CancelRequest(Request* request);
  void Deregister(Request* request);

  Simulator& sim_;
  Duration quantum_;
  std::vector<Core> cores_;
  std::vector<size_t> idle_cores_;
  // priority -> FIFO of waiting requests.
  std::map<int, std::deque<Request*>> ready_;
  int64_t runnable_count_ = 0;
  bool halted_ = false;
  Duration total_busy_ = Duration::Zero();
  mutable std::map<int, Ewma> queueing_delay_;
};

}  // namespace quicksand

#endif  // QUICKSAND_CLUSTER_CPU_H_
