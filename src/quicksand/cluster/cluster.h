// Cluster: the set of simulated machines plus the fabric connecting them.

#ifndef QUICKSAND_CLUSTER_CLUSTER_H_
#define QUICKSAND_CLUSTER_CLUSTER_H_

#include <memory>
#include <vector>

#include "quicksand/cluster/machine.h"
#include "quicksand/net/fabric.h"
#include "quicksand/sim/simulator.h"

namespace quicksand {

class Cluster {
 public:
  explicit Cluster(Simulator& sim, FabricConfig net = FabricConfig{})
      : sim_(sim), fabric_(sim, net) {}

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  MachineId AddMachine(const MachineSpec& spec) {
    const MachineId id = static_cast<MachineId>(machines_.size());
    machines_.push_back(std::make_unique<Machine>(sim_, id, spec));
    fabric_.AddNic(id);
    return id;
  }

  Machine& machine(MachineId id) {
    QS_CHECK(id < machines_.size());
    return *machines_[id];
  }
  const Machine& machine(MachineId id) const {
    QS_CHECK(id < machines_.size());
    return *machines_[id];
  }

  size_t size() const { return machines_.size(); }
  Fabric& fabric() { return fabric_; }
  Simulator& sim() { return sim_; }

  int total_cores() const {
    int total = 0;
    for (const auto& m : machines_) {
      total += m->spec().cores;
    }
    return total;
  }
  int64_t total_memory_bytes() const {
    int64_t total = 0;
    for (const auto& m : machines_) {
      total += m->spec().memory_bytes;
    }
    return total;
  }

 private:
  Simulator& sim_;
  Fabric fabric_;
  std::vector<std::unique_ptr<Machine>> machines_;
};

}  // namespace quicksand

#endif  // QUICKSAND_CLUSTER_CLUSTER_H_
