// Workload antagonists: background load the scheduler must work around.
//
// PhasedAntagonist reproduces the motivating experiment of Fig. 1: a
// high-priority application that alternates between consuming *all* cores
// and consuming none, with a configurable period and phase offset. Two
// machines running anti-phase copies leave exactly one machine's worth of
// CPU idle at any instant — but never the same machine for more than half a
// period.

#ifndef QUICKSAND_CLUSTER_ANTAGONIST_H_
#define QUICKSAND_CLUSTER_ANTAGONIST_H_

#include <vector>

#include "quicksand/cluster/machine.h"
#include "quicksand/common/time.h"
#include "quicksand/sim/fiber.h"
#include "quicksand/sim/simulator.h"

namespace quicksand {

struct PhasedAntagonistConfig {
  Duration busy = Duration::Millis(10);   // full-burn span per period
  Duration idle = Duration::Millis(10);   // idle span per period
  Duration phase_offset = Duration::Zero();
  int priority = kPriorityHigh;
};

// Drives a machine's CPU with a square wave. Start() spawns the driver
// fiber; the antagonist runs until the simulation ends.
class PhasedAntagonist {
 public:
  PhasedAntagonist(Simulator& sim, Machine& machine, PhasedAntagonistConfig config)
      : sim_(sim), machine_(machine), config_(config) {}

  void Start();

  // Whether the antagonist is inside a busy phase at time t (by schedule,
  // ignoring quantum-boundary skew).
  bool BusyAt(SimTime t) const;

 private:
  Task<> DriveLoop();
  Task<> BurnOneCore(Duration span);

  Simulator& sim_;
  Machine& machine_;
  PhasedAntagonistConfig config_;
};

// Gradually charges and releases machine memory in a square wave — used to
// exercise memory-pressure eviction.
class MemoryAntagonist {
 public:
  MemoryAntagonist(Simulator& sim, Machine& machine, int64_t bytes, Duration hold,
                   Duration release)
      : sim_(sim), machine_(machine), bytes_(bytes), hold_(hold), release_(release) {}

  void Start();

 private:
  Task<> DriveLoop();

  Simulator& sim_;
  Machine& machine_;
  int64_t bytes_;
  Duration hold_;
  Duration release_;
};

}  // namespace quicksand

#endif  // QUICKSAND_CLUSTER_ANTAGONIST_H_
