#include "quicksand/cluster/cpu.h"

#include <algorithm>

#include "quicksand/common/check.h"

namespace quicksand {

// Awaiter that enqueues a request and suspends until the scheduler has
// serviced all of its work (or the cancel token fired). The request node
// lives in the awaiter, which lives in the calling coroutine's frame —
// stable across suspension.
struct CpuRunAwaiter {
  CpuScheduler& sched;
  Duration work;
  int priority;
  CpuCancelToken* token;
  CpuScheduler::Request request;

  bool await_ready() const noexcept {
    return work <= Duration::Zero() || (token != nullptr && token->cancelled());
  }
  void await_suspend(std::coroutine_handle<> h) {
    request.remaining = work;
    request.priority = priority;
    request.enqueued = sched.sim_.Now();
    request.waiter = h;
    request.token = token;
    if (token != nullptr) {
      QS_CHECK_MSG(token->sched_ == nullptr || token->sched_ == &sched,
                   "a CpuCancelToken may only cover one CpuScheduler at a time");
      token->sched_ = &sched;
      token->active_.push_back(&request);
    }
    sched.Enqueue(&request);
  }
  // Unserviced remainder; Zero when the work completed.
  Duration await_resume() const noexcept {
    if (!request.cancelled || request.remaining <= Duration::Zero()) {
      return Duration::Zero();
    }
    return request.remaining;
  }
};

void CpuCancelToken::Cancel() {
  cancelled_ = true;
  if (sched_ == nullptr) {
    return;
  }
  // CancelRequest mutates active_ via Deregister, so drain a copy.
  std::vector<void*> pending;
  pending.swap(active_);
  for (void* opaque : pending) {
    sched_->CancelRequest(static_cast<CpuScheduler::Request*>(opaque));
  }
  sched_ = nullptr;
}

CpuScheduler::CpuScheduler(Simulator& sim, int num_cores, Duration quantum)
    : sim_(sim), quantum_(quantum) {
  QS_CHECK(num_cores > 0);
  QS_CHECK(quantum > Duration::Zero());
  cores_.resize(static_cast<size_t>(num_cores));
  for (size_t i = 0; i < cores_.size(); ++i) {
    idle_cores_.push_back(i);
  }
}

CpuScheduler::~CpuScheduler() = default;

Task<> CpuScheduler::Run(Duration work, int priority) {
  QS_CHECK(priority >= 0);
  if (halted_) {
    co_return;
  }
  co_await CpuRunAwaiter{*this, work, priority, nullptr, {}};
}

Task<Duration> CpuScheduler::RunCancellable(Duration work, int priority,
                                            CpuCancelToken& token) {
  QS_CHECK(priority >= 0);
  if (token.cancelled() || halted_) {
    co_return work;
  }
  const Duration remaining = co_await CpuRunAwaiter{*this, work, priority, &token, {}};
  co_return remaining;
}

void CpuScheduler::Halt() {
  if (halted_) {
    return;
  }
  halted_ = true;
  for (auto& [priority, queue] : ready_) {
    for (Request* request : queue) {
      request->cancelled = true;
      --runnable_count_;
      Deregister(request);
      const std::coroutine_handle<> waiter = request->waiter;
      sim_.Post([waiter] { waiter.resume(); });
    }
    queue.clear();
  }
  for (size_t i = 0; i < cores_.size(); ++i) {
    Core& core = cores_[i];
    if (core.current == nullptr) {
      continue;
    }
    Request* request = core.current;
    core.current = nullptr;
    request->running = false;
    request->cancelled = true;
    --runnable_count_;
    Deregister(request);
    const std::coroutine_handle<> waiter = request->waiter;
    sim_.Post([waiter] { waiter.resume(); });
    idle_cores_.push_back(i);
  }
}

void CpuScheduler::Enqueue(Request* request) {
  QS_CHECK_MSG(!halted_, "Enqueue on a halted CpuScheduler");
  ready_[request->priority].push_back(request);
  ++runnable_count_;
  Dispatch();
}

void CpuScheduler::Dispatch() {
  if (halted_) {
    return;
  }
  while (!idle_cores_.empty()) {
    Request* request = nullptr;
    for (auto& [priority, queue] : ready_) {
      if (!queue.empty()) {
        request = queue.front();
        queue.pop_front();
        break;
      }
    }
    if (request == nullptr) {
      return;
    }
    if (!request->serviced_once) {
      request->serviced_once = true;
      queueing_delay_[request->priority].Add(
          static_cast<double>((sim_.Now() - request->enqueued).nanos()));
    }
    const size_t core_index = idle_cores_.back();
    idle_cores_.pop_back();
    request->running = true;
    cores_[core_index].current = request;
    const Duration slice = std::min(quantum_, request->remaining);
    sim_.Schedule(slice, [this, core_index, slice] { OnSliceEnd(core_index, slice); });
  }
}

void CpuScheduler::OnSliceEnd(size_t core_index, Duration slice) {
  if (halted_) {
    // Halt() already resumed and deregistered every request; this is a
    // stale slice-end event for a core that no longer exists.
    return;
  }
  Core& core = cores_[core_index];
  Request* request = core.current;
  QS_CHECK(request != nullptr);
  core.current = nullptr;
  request->running = false;
  idle_cores_.push_back(core_index);
  total_busy_ += slice;

  request->remaining -= slice;
  if (request->remaining <= Duration::Zero() || request->cancelled) {
    --runnable_count_;
    Deregister(request);
    const std::coroutine_handle<> waiter = request->waiter;
    // Resume via the event queue so completion ordering matches event order.
    sim_.Post([waiter] { waiter.resume(); });
  } else {
    ready_[request->priority].push_back(request);  // round-robin within level
  }
  Dispatch();
}

void CpuScheduler::CancelRequest(Request* request) {
  request->cancelled = true;
  if (request->running) {
    // The current slice finishes (<= one quantum), then OnSliceEnd completes
    // the request with its remainder.
    return;
  }
  // Queued: remove and resume immediately with the full remainder.
  auto it = ready_.find(request->priority);
  QS_CHECK(it != ready_.end());
  auto& queue = it->second;
  auto pos = std::find(queue.begin(), queue.end(), request);
  QS_CHECK_MSG(pos != queue.end(), "cancelled request not found in ready queue");
  queue.erase(pos);
  --runnable_count_;
  request->token = nullptr;  // already drained from the token's active list
  const std::coroutine_handle<> waiter = request->waiter;
  sim_.Post([waiter] { waiter.resume(); });
}

void CpuScheduler::Deregister(Request* request) {
  CpuCancelToken* token = request->token;
  if (token == nullptr) {
    return;
  }
  request->token = nullptr;
  auto pos = std::find(token->active_.begin(), token->active_.end(), request);
  if (pos != token->active_.end()) {
    token->active_.erase(pos);
  }
}

Duration CpuScheduler::QueueingDelay(int priority) const {
  auto it = queueing_delay_.find(priority);
  if (it == queueing_delay_.end()) {
    return Duration::Zero();
  }
  return Duration::Nanos(static_cast<int64_t>(it->second.value()));
}

Duration CpuScheduler::OldestWaitingAge(int priority) const {
  auto it = ready_.find(priority);
  if (it == ready_.end() || it->second.empty()) {
    return Duration::Zero();
  }
  return sim_.Now() - it->second.front()->enqueued;
}

int64_t CpuScheduler::RunnableAbove(int priority) const {
  int64_t count = 0;
  for (const auto& [level, queue] : ready_) {
    if (level < priority) {
      count += static_cast<int64_t>(queue.size());
    }
  }
  for (const Core& core : cores_) {
    if (core.current != nullptr && core.current->priority < priority) {
      ++count;
    }
  }
  return count;
}

int64_t CpuScheduler::queued_count(int priority) const {
  auto it = ready_.find(priority);
  return it == ready_.end() ? 0 : static_cast<int64_t>(it->second.size());
}

double CpuScheduler::LoadFactor() const {
  return static_cast<double>(runnable_count_) / static_cast<double>(cores_.size());
}

double CpuScheduler::UtilizationSince(SimTime earlier, Duration busy_at_earlier) const {
  const Duration wall = sim_.Now() - earlier;
  if (wall <= Duration::Zero()) {
    return 0.0;
  }
  const Duration busy = total_busy_ - busy_at_earlier;
  return busy / (wall * num_cores());
}

}  // namespace quicksand
