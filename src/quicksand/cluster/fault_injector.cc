#include "quicksand/cluster/fault_injector.h"

#include "quicksand/common/check.h"
#include "quicksand/common/logging.h"

namespace quicksand {

void FaultInjector::ScheduleCrash(SimTime at, MachineId machine) {
  QS_CHECK(machine < cluster_.size());
  QS_CHECK_MSG(at >= sim_.Now(), "cannot schedule a crash in the past");
  sim_.ScheduleAt(at, [this, machine] { Fail(machine); });
}

void FaultInjector::ScheduleRevocation(SimTime notice_at, MachineId machine,
                                       Duration warning) {
  QS_CHECK(machine < cluster_.size());
  QS_CHECK_MSG(notice_at >= sim_.Now(), "cannot schedule a revocation in the past");
  QS_CHECK(warning >= Duration::Zero());
  sim_.ScheduleAt(notice_at, [this, machine, warning] {
    Machine& m = cluster_.machine(machine);
    if (m.failed()) {
      return;  // already dead; the notice is moot
    }
    m.MarkRevoked();
    ++revocations_;
    const RevokeResources notice{machine, sim_.Now(), sim_.Now() + warning};
    QS_LOG_DEBUG("fault", "revocation notice: m%u disappears at %s", machine,
                 notice.deadline.ToString().c_str());
    for (const auto& handler : revocation_handlers_) {
      handler(notice);
    }
    // The deadline is unconditional: evacuation progress does not extend it.
    sim_.ScheduleAt(notice.deadline, [this, machine] { Fail(machine); });
  });
}

void FaultInjector::FailNow(MachineId machine) {
  QS_CHECK(machine < cluster_.size());
  Fail(machine);
}

void FaultInjector::Fail(MachineId machine) {
  Machine& m = cluster_.machine(machine);
  if (m.failed()) {
    return;
  }
  QS_LOG_DEBUG("fault", "machine m%u fail-stops", machine);
  m.Fail();
  cluster_.fabric().FailMachine(machine);
  ++crashes_;
  for (const auto& handler : crash_handlers_) {
    handler(machine);
  }
}

}  // namespace quicksand
