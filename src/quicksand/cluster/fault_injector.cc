#include "quicksand/cluster/fault_injector.h"

#include "quicksand/common/check.h"
#include "quicksand/common/logging.h"

namespace quicksand {

void FaultInjector::ScheduleCrash(SimTime at, MachineId machine) {
  QS_CHECK(machine < cluster_.size());
  QS_CHECK_MSG(at >= sim_.Now(), "cannot schedule a crash in the past");
  sim_.ScheduleAt(at, [this, machine] { Fail(machine); });
}

void FaultInjector::ScheduleRevocation(SimTime notice_at, MachineId machine,
                                       Duration warning) {
  QS_CHECK(machine < cluster_.size());
  QS_CHECK_MSG(notice_at >= sim_.Now(), "cannot schedule a revocation in the past");
  QS_CHECK(warning >= Duration::Zero());
  sim_.ScheduleAt(notice_at, [this, machine, warning] {
    Machine& m = cluster_.machine(machine);
    if (m.failed()) {
      return;  // already dead; the notice is moot
    }
    m.MarkRevoked();
    ++revocations_;
    const RevokeResources notice{machine, sim_.Now(), sim_.Now() + warning};
    QS_LOG_DEBUG("fault", "revocation notice: m%u disappears at %s", machine,
                 notice.deadline.ToString().c_str());
    for (const auto& handler : revocation_handlers_) {
      handler(notice);
    }
    // The deadline is unconditional: evacuation progress does not extend it.
    sim_.ScheduleAt(notice.deadline, [this, machine] { Fail(machine); });
  });
}

void FaultInjector::FailNow(MachineId machine) {
  QS_CHECK(machine < cluster_.size());
  Fail(machine);
}

void FaultInjector::ScheduleWindow(SimTime at, Duration duration,
                                   std::function<void()> apply,
                                   std::function<void()> undo) {
  QS_CHECK_MSG(at >= sim_.Now(), "cannot schedule a network fault in the past");
  QS_CHECK(duration > Duration::Zero());
  ++network_faults_;
  sim_.ScheduleAt(at, std::move(apply));
  if (duration != Duration::Max()) {
    sim_.ScheduleAt(at + duration, std::move(undo));
  }
}

void FaultInjector::SchedulePartitionOneWay(SimTime at, MachineId src, MachineId dst,
                                            Duration duration) {
  QS_CHECK(src < cluster_.size() && dst < cluster_.size());
  Fabric& fabric = cluster_.fabric();
  ScheduleWindow(
      at, duration,
      [&fabric, src, dst] {
        QS_LOG_DEBUG("fault", "one-way partition: m%u -/-> m%u", src, dst);
        fabric.PartitionOneWay(src, dst);
      },
      [&fabric, src, dst] {
        QS_LOG_DEBUG("fault", "one-way partition healed: m%u -> m%u", src, dst);
        fabric.HealOneWay(src, dst);
      });
}

void FaultInjector::SchedulePartition(SimTime at, MachineId a, MachineId b,
                                      Duration duration) {
  QS_CHECK(a < cluster_.size() && b < cluster_.size());
  Fabric& fabric = cluster_.fabric();
  ScheduleWindow(
      at, duration,
      [&fabric, a, b] {
        QS_LOG_DEBUG("fault", "partition: m%u <-/-> m%u", a, b);
        fabric.Partition(a, b);
      },
      [&fabric, a, b] {
        QS_LOG_DEBUG("fault", "partition healed: m%u <-> m%u", a, b);
        fabric.Heal(a, b);
      });
}

void FaultInjector::ScheduleIsolation(SimTime at, MachineId machine,
                                      Duration duration) {
  QS_CHECK(machine < cluster_.size());
  Fabric& fabric = cluster_.fabric();
  ScheduleWindow(
      at, duration,
      [&fabric, machine] {
        QS_LOG_DEBUG("fault", "m%u isolated from the network", machine);
        fabric.IsolateMachine(machine);
      },
      [&fabric, machine] {
        QS_LOG_DEBUG("fault", "m%u rejoined the network", machine);
        fabric.HealMachine(machine);
      });
}

void FaultInjector::ScheduleLinkLoss(SimTime at, MachineId src, MachineId dst,
                                     double probability, Duration duration) {
  QS_CHECK(src < cluster_.size() && dst < cluster_.size());
  Fabric& fabric = cluster_.fabric();
  ScheduleWindow(
      at, duration,
      [&fabric, src, dst, probability] {
        QS_LOG_DEBUG("fault", "link m%u -> m%u loses %.0f%% of messages", src, dst,
                     probability * 100.0);
        fabric.SetLinkLoss(src, dst, probability);
      },
      [&fabric, src, dst] { fabric.SetLinkLoss(src, dst, 0.0); });
}

void FaultInjector::ScheduleDelaySpike(SimTime at, MachineId src, MachineId dst,
                                       Duration extra, Duration duration) {
  QS_CHECK(src < cluster_.size() && dst < cluster_.size());
  Fabric& fabric = cluster_.fabric();
  ScheduleWindow(
      at, duration,
      [&fabric, src, dst, extra] {
        QS_LOG_DEBUG("fault", "link m%u -> m%u delayed by %s", src, dst,
                     extra.ToString().c_str());
        fabric.SetLinkDelay(src, dst, extra);
      },
      [&fabric, src, dst] { fabric.SetLinkDelay(src, dst, Duration::Zero()); });
}

void FaultInjector::Fail(MachineId machine) {
  Machine& m = cluster_.machine(machine);
  if (m.failed()) {
    return;
  }
  QS_LOG_DEBUG("fault", "machine m%u fail-stops", machine);
  m.Fail();
  cluster_.fabric().FailMachine(machine);
  ++crashes_;
  for (const auto& handler : crash_handlers_) {
    handler(machine);
  }
}

}  // namespace quicksand
