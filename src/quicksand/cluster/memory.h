// MemoryAccount: byte-granular accounting of a machine's memory.
//
// Proclet heaps charge the account of their hosting machine. The account
// never overcommits: a charge that would exceed capacity fails, and callers
// (the placement policy, the splitter) must find memory elsewhere — this is
// exactly the "stranded memory" situation Quicksand's memory proclets solve
// by migrating to machines with free bytes.

#ifndef QUICKSAND_CLUSTER_MEMORY_H_
#define QUICKSAND_CLUSTER_MEMORY_H_

#include <cstdint>

#include "quicksand/common/check.h"

namespace quicksand {

class MemoryAccount {
 public:
  explicit MemoryAccount(int64_t capacity_bytes) : capacity_(capacity_bytes) {
    QS_CHECK(capacity_bytes > 0);
  }

  // Attempts to reserve `bytes`; fails (returning false) if it would exceed
  // capacity.
  bool TryCharge(int64_t bytes) {
    QS_CHECK(bytes >= 0);
    if (used_ + bytes > capacity_) {
      return false;
    }
    used_ += bytes;
    if (used_ > high_watermark_) {
      high_watermark_ = used_;
    }
    return true;
  }

  void Release(int64_t bytes) {
    QS_CHECK(bytes >= 0);
    QS_CHECK_MSG(bytes <= used_, "releasing more memory than charged");
    used_ -= bytes;
  }

  int64_t capacity() const { return capacity_; }
  int64_t used() const { return used_; }
  int64_t free() const { return capacity_ - used_; }
  int64_t high_watermark() const { return high_watermark_; }
  double utilization() const {
    return static_cast<double>(used_) / static_cast<double>(capacity_);
  }

 private:
  int64_t capacity_;
  int64_t used_ = 0;
  int64_t high_watermark_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_CLUSTER_MEMORY_H_
