#include "quicksand/cluster/antagonist.h"

#include "quicksand/common/logging.h"

namespace quicksand {

void PhasedAntagonist::Start() {
  sim_.Spawn(DriveLoop(), "phased_antagonist");
}

bool PhasedAntagonist::BusyAt(SimTime t) const {
  const Duration period = config_.busy + config_.idle;
  const int64_t in_period =
      (t.nanos() - config_.phase_offset.nanos()) % period.nanos();
  if (in_period < 0) {
    return (in_period + period.nanos()) < config_.busy.nanos();
  }
  return in_period < config_.busy.nanos();
}

Task<> PhasedAntagonist::DriveLoop() {
  if (config_.phase_offset > Duration::Zero()) {
    co_await sim_.Sleep(config_.phase_offset);
  }
  for (;;) {
    // Saturate every core for the busy span: one request per core, each
    // demanding exactly the span of core-time at high priority.
    std::vector<Fiber> burners;
    burners.reserve(static_cast<size_t>(machine_.spec().cores));
    for (int i = 0; i < machine_.spec().cores; ++i) {
      burners.push_back(sim_.Spawn(BurnOneCore(config_.busy), "burner"));
    }
    co_await JoinAll(std::move(burners));
    co_await sim_.Sleep(config_.idle);
  }
}

Task<> PhasedAntagonist::BurnOneCore(Duration span) {
  co_await machine_.cpu().Run(span, config_.priority);
}

void MemoryAntagonist::Start() {
  sim_.Spawn(DriveLoop(), "memory_antagonist");
}

Task<> MemoryAntagonist::DriveLoop() {
  for (;;) {
    const bool charged = machine_.memory().TryCharge(bytes_);
    if (!charged) {
      QS_LOG_WARN("antagonist", "machine %u: memory antagonist could not charge %lld",
                  machine_.id(), static_cast<long long>(bytes_));
    }
    co_await sim_.Sleep(hold_);
    if (charged) {
      machine_.memory().Release(bytes_);
    }
    co_await sim_.Sleep(release_);
  }
}

}  // namespace quicksand
