// ShardIndexProclet and ShardRouter: the general sharding library (§3.2).
//
// A sharded data structure partitions its elements into disjoint key ranges,
// each stored in a separate memory proclet (a "shard"). An *index memory
// proclet* maintains the map from ranges to shard proclets, so clients can
// address elements without knowing which machine currently stores them.
// Clients cache the index (ShardRouter) and refresh lazily: a request that
// reaches the wrong shard after a split/merge gets kOutOfRange back, and the
// router re-pulls the index snapshot.

#ifndef QUICKSAND_SHARDING_SHARD_INDEX_H_
#define QUICKSAND_SHARDING_SHARD_INDEX_H_

#include <cstdint>
#include <map>
#include <vector>

#include "quicksand/common/status.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

// One shard's entry in the index. `begin`/`end` bound the keys it owns
// ([begin, end), over the uint64 sharding-key space); count/bytes are
// maintained by split/merge and are advisory for routing and scheduling.
struct ShardInfo {
  ProcletId proclet = kInvalidProcletId;
  uint64_t begin = 0;
  uint64_t end = 0;
  int64_t count = 0;
  int64_t bytes = 0;
};

class ShardIndexProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kMemory;

  explicit ShardIndexProclet(const ProcletInit& init) : ProcletBase(init) {}

  uint64_t version() const { return version_; }
  size_t shard_count() const { return shards_.size(); }

  // Full snapshot plus its version, for client caches.
  std::pair<uint64_t, std::vector<ShardInfo>> Snapshot() const {
    std::vector<ShardInfo> out;
    out.reserve(shards_.size());
    for (const auto& [begin, info] : shards_) {
      out.push_back(info);
    }
    return {version_, out};
  }

  Result<ShardInfo> LookupKey(uint64_t key) const {
    auto it = shards_.upper_bound(key);
    if (it == shards_.begin()) {
      return Status::NotFound("key below all shards");
    }
    --it;
    if (key >= it->second.end) {
      return Status::NotFound("key in a gap between shards");
    }
    return it->second;
  }

  Status AddShard(const ShardInfo& info) {
    if (info.begin >= info.end) {
      return Status::InvalidArgument("empty shard range");
    }
    // Reject overlap with an existing shard.
    auto next = shards_.lower_bound(info.begin);
    if (next != shards_.end() && next->second.begin < info.end) {
      return Status::FailedPrecondition("range overlaps an existing shard");
    }
    if (next != shards_.begin()) {
      auto prev = std::prev(next);
      if (prev->second.end > info.begin) {
        return Status::FailedPrecondition("range overlaps an existing shard");
      }
    }
    shards_.emplace(info.begin, info);
    ++version_;
    RecordMutation(
        [info](ProcletBase& b) {
          return static_cast<ShardIndexProclet&>(b).AddShard(info);
        },
        kEntryRecordBytes);
    return Status::Ok();
  }

  Status RemoveShard(ProcletId proclet) {
    for (auto it = shards_.begin(); it != shards_.end(); ++it) {
      if (it->second.proclet == proclet) {
        shards_.erase(it);
        ++version_;
        RecordMutation(
            [proclet](ProcletBase& b) {
              return static_cast<ShardIndexProclet&>(b).RemoveShard(proclet);
            },
            kEntryRecordBytes);
        return Status::Ok();
      }
    }
    return Status::NotFound("no shard with that proclet id");
  }

  // Replaces the entry whose range contains info.begin (used when a split
  // shrinks a shard or stats change).
  Status UpdateShard(const ShardInfo& info) {
    auto it = shards_.upper_bound(info.begin);
    if (it == shards_.begin()) {
      return Status::NotFound("no shard covers that key");
    }
    --it;
    if (it->second.proclet != info.proclet) {
      return Status::FailedPrecondition("shard at that key has a different proclet");
    }
    shards_.erase(it);
    shards_.emplace(info.begin, info);
    ++version_;
    RecordMutation(
        [info](ProcletBase& b) {
          return static_cast<ShardIndexProclet&>(b).UpdateShard(info);
        },
        kEntryRecordBytes);
    return Status::Ok();
  }

  // The neighbor immediately after `proclet`'s range (for merges).
  Result<ShardInfo> NextNeighbor(ProcletId proclet) const {
    for (auto it = shards_.begin(); it != shards_.end(); ++it) {
      if (it->second.proclet == proclet) {
        auto next = std::next(it);
        if (next == shards_.end()) {
          return Status::NotFound("no next neighbor");
        }
        return next->second;
      }
    }
    return Status::NotFound("no shard with that proclet id");
  }

  // --- Durability -----------------------------------------------------------

  std::optional<StateImage> CaptureState() const override {
    IndexImage image{shards_, version_, heap_bytes()};
    const int64_t bytes =
        heap_bytes() +
        static_cast<int64_t>(shards_.size()) * kEntryRecordBytes;
    return StateImage{std::any(std::move(image)), bytes};
  }

  Status RestoreState(const StateImage& image) override {
    const IndexImage* img = std::any_cast<IndexImage>(&image.data);
    if (img == nullptr) {
      return Status::InvalidArgument("image is not a ShardIndexProclet image");
    }
    if (!TryChargeHeap(img->heap_bytes)) {
      return Status::ResourceExhausted("restore target is out of memory");
    }
    shards_ = img->shards;
    version_ = img->version + 1;  // force router cache refreshes after restore
    return Status::Ok();
  }

 private:
  struct IndexImage {
    std::map<uint64_t, ShardInfo> shards;
    uint64_t version = 1;
    int64_t heap_bytes = 0;
  };

  // Wire size of one logged index entry (ShardInfo's five 8-byte fields).
  static constexpr int64_t kEntryRecordBytes = 40;

  std::map<uint64_t, ShardInfo> shards_;  // begin -> info
  uint64_t version_ = 1;
};

// Client-side cached view of a shard index.
class ShardRouter {
 public:
  ShardRouter() = default;
  explicit ShardRouter(Ref<ShardIndexProclet> index) : index_(index) {}

  Ref<ShardIndexProclet> index() const { return index_; }
  uint64_t cached_version() const { return version_; }
  const std::vector<ShardInfo>& cached_shards() const { return cache_; }

  // Routes a key through the cache, fetching the index on first use.
  Task<Result<ShardInfo>> Route(Ctx ctx, uint64_t key) {
    if (cache_.empty()) {
      co_await Refresh(ctx);
    }
    Result<ShardInfo> hit = LookupCached(key);
    if (hit.ok()) {
      co_return hit;
    }
    co_await Refresh(ctx);
    co_return LookupCached(key);
  }

  // Pulls a fresh snapshot from the index proclet.
  Task<> Refresh(Ctx ctx) {
    auto call = index_.Call(
        ctx, [](ShardIndexProclet& p) -> Task<std::pair<uint64_t, std::vector<ShardInfo>>> {
          co_return p.Snapshot();
        });
    auto [version, shards] = co_await std::move(call);
    version_ = version;
    cache_ = std::move(shards);
  }

  void Invalidate() {
    cache_.clear();
    version_ = 0;
  }

 private:
  Result<ShardInfo> LookupCached(uint64_t key) const {
    for (const ShardInfo& shard : cache_) {
      if (key >= shard.begin && key < shard.end) {
        return shard;
      }
    }
    return Status::NotFound("no cached shard covers key");
  }

  Ref<ShardIndexProclet> index_;
  uint64_t version_ = 0;
  std::vector<ShardInfo> cache_;
};

}  // namespace quicksand

#endif  // QUICKSAND_SHARDING_SHARD_INDEX_H_
