// Rpc: request/response round trips over the fabric, with latency stats.
//
// Because the simulator shares one address space, an "RPC" does not move real
// bytes — it charges wire time for the request, runs the server-side closure
// (which models its own CPU cost against the destination machine), then
// charges wire time for the response. The runtime's proclet-invocation layer
// uses this for every remote method call.
//
// Under network faults (partitions, packet loss) a leg of the round trip can
// vanish with both endpoints alive. The caller cannot observe the loss
// directly — it waits out its timeout and gets DeadlineExceeded, same as a
// slow server. Distinguishing "dead" from "merely silent" is the failure
// detector's job; attach one and RoundTripWithRetry will retry Unavailable
// from a *suspected* destination (it might just be partitioned) while
// keeping confirmed-dead terminal.

#ifndef QUICKSAND_NET_RPC_H_
#define QUICKSAND_NET_RPC_H_

#include <cstdint>
#include <functional>

#include "quicksand/common/random.h"
#include "quicksand/common/stats.h"
#include "quicksand/common/status.h"
#include "quicksand/net/fabric.h"
#include "quicksand/sim/task.h"
#include "quicksand/trace/trace.h"

namespace quicksand {

class FailureDetector;
class AdmissionController;
class RetryBudget;

// Retry schedule for RoundTripWithRetry. Attempt k (0-based) sleeps
// min(base_backoff * multiplier^k, max_backoff), scaled by a uniform jitter
// factor in [1 - jitter, 1 + jitter] drawn from the Rpc's deterministic
// Rng. The cap matters for long retry sequences: uncapped, the exponential
// schedule exceeds any plausible outage length within a dozen attempts and
// turns "retry until the partition heals" into "sleep past the heal".
struct RpcRetryPolicy {
  int max_attempts = 3;  // total attempts, including the first
  Duration base_backoff = Duration::Micros(50);
  double multiplier = 2.0;
  double jitter = 0.25;
  Duration max_backoff = Duration::Millis(10);  // cap on any single backoff
};

class Rpc {
 public:
  // Fixed framing cost added to every request and response payload.
  static constexpr int64_t kHeaderBytes = 64;

  Rpc(Simulator& sim, Fabric& fabric, uint64_t rng_seed = 0x9e3779b97f4a7c15ull)
      : sim_(sim), fabric_(fabric), rng_(rng_seed) {}

  Rpc(const Rpc&) = delete;
  Rpc& operator=(const Rpc&) = delete;

  // Lets RoundTripWithRetry consult machine health when deciding whether an
  // Unavailable destination is worth retrying. Optional.
  void AttachFailureDetector(const FailureDetector* detector) {
    detector_ = detector;
  }

  // Optional tracing: round trips then record as `rpc` / `rpc_attempt` spans
  // with per-leg send/recv/drop instants, stitched under the caller's
  // TraceContext. Null detaches; with no tracer the hooks are no-ops.
  void AttachTracer(Tracer* tracer) { tracer_ = tracer; }

  // Optional overload control. With an admission controller attached,
  // RoundTrip consults it after the request arrives at dst and sheds with
  // ResourceExhausted (paying only a header-sized rejection response)
  // instead of running the server closure. With a retry budget attached,
  // RoundTripWithRetry spends one token per retry and stops retrying —
  // whatever the policy allows — once the bucket is empty, so retries
  // amplify offered load by a bounded factor.
  void AttachAdmission(AdmissionController* admission) { admission_ = admission; }
  void AttachRetryBudget(RetryBudget* budget) { retry_budget_ = budget; }

  // Round trip src -> dst -> src. `server` runs logically at dst and returns
  // the response payload size in bytes. If the round trip exceeds `timeout`
  // the result is DeadlineExceeded (the server work still happened; only the
  // response is considered lost — the usual at-least-once caveat). If either
  // endpoint has failed, or fails mid-flight, the result is Unavailable. A
  // leg lost to a partition or packet drop surfaces as DeadlineExceeded at
  // the deadline — the caller cannot tell loss from slowness, so a finite
  // timeout is required on faultable links (CHECK-enforced at the drop).
  // `trace` (optional) is the caller's causal stamp: the attempt's span and
  // leg instants hang under it, so cross-machine spans stitch into one tree.
  //
  // Deadline propagation: when `trace.deadline` is set and has passed by the
  // time the request reaches dst, the server closure never runs — the call
  // returns DeadlineExceeded after a header-sized rejection response
  // (`deadline_expired` instant at dst). Work that cannot finish in time is
  // refused at admission rather than performed dead.
  Task<Status> RoundTrip(MachineId src, MachineId dst, int64_t request_bytes,
                         std::function<Task<int64_t>()> server,
                         Duration timeout = Duration::Max(),
                         TraceContext trace = TraceContext{});

  // RoundTrip with retry: exponential backoff on the sim clock with
  // deterministic jitter, up to policy.max_attempts attempts. Retryable:
  // DeadlineExceeded (slow or lossy network) and — when a failure detector
  // is attached — Unavailable from a destination that is merely *suspected*
  // (it may be partitioned, not dead). Unavailable from a confirmed-dead or
  // unmonitored destination is terminal: retrying a crashed machine cannot
  // succeed under fail-stop. The server closure may run multiple times
  // (at-least-once semantics, same caveat as RoundTrip).
  Task<Status> RoundTripWithRetry(MachineId src, MachineId dst, int64_t request_bytes,
                                  std::function<Task<int64_t>()> server,
                                  Duration timeout,
                                  RpcRetryPolicy policy = RpcRetryPolicy{},
                                  TraceContext trace = TraceContext{});

  const LatencyHistogram& latency() const { return latency_; }
  int64_t calls() const { return calls_; }
  int64_t timeouts() const { return timeouts_; }
  int64_t retries() const { return retries_; }
  int64_t aborted() const { return aborted_; }
  // Round trips that lost a leg to a partition/drop (a subset of timeouts).
  int64_t lost() const { return lost_; }
  // RoundTripWithRetry calls that ran out of attempts while the status was
  // still retryable — distinct from aborted (terminal endpoint death).
  int64_t retries_exhausted() const { return retries_exhausted_; }
  // Requests shed by the attached admission controller at the destination.
  int64_t shed() const { return shed_; }
  // Requests rejected at the destination because their deadline had passed.
  int64_t deadline_rejected() const { return deadline_rejected_; }
  // Retries RoundTripWithRetry wanted but the budget refused.
  int64_t budget_denied_retries() const { return budget_denied_retries_; }

  Fabric& fabric() { return fabric_; }

 private:
  // A leg of the round trip was dropped: the caller waits out the deadline
  // and reports DeadlineExceeded, exactly like a timeout it cannot tell
  // apart from.
  Task<Status> LoseRoundTrip(SimTime start, Duration timeout);

  Simulator& sim_;
  Fabric& fabric_;
  LatencyHistogram latency_;
  Rng rng_;
  const FailureDetector* detector_ = nullptr;
  Tracer* tracer_ = nullptr;
  AdmissionController* admission_ = nullptr;
  RetryBudget* retry_budget_ = nullptr;
  int64_t calls_ = 0;
  int64_t timeouts_ = 0;
  int64_t retries_ = 0;
  int64_t aborted_ = 0;
  int64_t lost_ = 0;
  int64_t retries_exhausted_ = 0;
  int64_t shed_ = 0;
  int64_t deadline_rejected_ = 0;
  int64_t budget_denied_retries_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_NET_RPC_H_
