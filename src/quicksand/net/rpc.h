// Rpc: request/response round trips over the fabric, with latency stats.
//
// Because the simulator shares one address space, an "RPC" does not move real
// bytes — it charges wire time for the request, runs the server-side closure
// (which models its own CPU cost against the destination machine), then
// charges wire time for the response. The runtime's proclet-invocation layer
// uses this for every remote method call.

#ifndef QUICKSAND_NET_RPC_H_
#define QUICKSAND_NET_RPC_H_

#include <cstdint>
#include <functional>

#include "quicksand/common/stats.h"
#include "quicksand/common/status.h"
#include "quicksand/net/fabric.h"
#include "quicksand/sim/task.h"

namespace quicksand {

class Rpc {
 public:
  // Fixed framing cost added to every request and response payload.
  static constexpr int64_t kHeaderBytes = 64;

  Rpc(Simulator& sim, Fabric& fabric) : sim_(sim), fabric_(fabric) {}

  Rpc(const Rpc&) = delete;
  Rpc& operator=(const Rpc&) = delete;

  // Round trip src -> dst -> src. `server` runs logically at dst and returns
  // the response payload size in bytes. If the round trip exceeds `timeout`
  // the result is DeadlineExceeded (the server work still happened; only the
  // response is considered lost — the usual at-least-once caveat).
  Task<Status> RoundTrip(MachineId src, MachineId dst, int64_t request_bytes,
                         std::function<Task<int64_t>()> server,
                         Duration timeout = Duration::Max());

  const LatencyHistogram& latency() const { return latency_; }
  int64_t calls() const { return calls_; }
  int64_t timeouts() const { return timeouts_; }

  Fabric& fabric() { return fabric_; }

 private:
  Simulator& sim_;
  Fabric& fabric_;
  LatencyHistogram latency_;
  int64_t calls_ = 0;
  int64_t timeouts_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_NET_RPC_H_
