// Fabric: the simulated datacenter network.
//
// Model: full-bisection fabric (any pair of machines can talk at line rate)
// with, per transfer,
//
//     delivery = max(now, sender NIC free) + bytes/bandwidth + latency
//
// i.e. store-and-forward through a per-machine egress NIC that serializes
// outgoing transfers FIFO, plus one-way propagation latency. Defaults are
// calibrated to the kernel-bypass stacks the paper builds on (Caladan/Nu):
// ~5 us one-way latency, 100 Gbps per NIC, ~1 us fixed per-message software
// overhead. Ingress contention is not modeled (documented simplification:
// the workloads here are dominated by egress serialization and propagation).

#ifndef QUICKSAND_NET_FABRIC_H_
#define QUICKSAND_NET_FABRIC_H_

#include <cstdint>
#include <vector>

#include "quicksand/cluster/machine.h"
#include "quicksand/common/stats.h"
#include "quicksand/common/time.h"
#include "quicksand/sim/simulator.h"
#include "quicksand/sim/task.h"

namespace quicksand {

struct FabricConfig {
  Duration one_way_latency = Duration::Micros(5);
  int64_t bandwidth_bytes_per_sec = 12'500'000'000;  // 100 Gbps
  Duration per_message_overhead = Duration::Micros(1);
  // Bulk transfers serialize through the NIC in frames of this size, so a
  // small control message waits at most one frame — not the whole bulk
  // transfer (real NICs interleave packets; without this, a 256 MiB
  // migration would head-of-line-block microsecond RPCs for ~20ms).
  int64_t frame_bytes = 64 * 1024;
};

class Fabric {
 public:
  Fabric(Simulator& sim, FabricConfig config) : sim_(sim), config_(config) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Registers a machine's NIC; must be called once per machine, in id order.
  void AddNic(MachineId id);

  // Moves `bytes` from src to dst; suspends the caller until delivery.
  // src == dst is free (local "transfer"). Returns false when the transfer
  // aborted because either endpoint failed (fail-stop crash): data in
  // flight to or from a dead machine is simply gone. Callers that never
  // inject faults may ignore the result.
  Task<bool> Transfer(MachineId src, MachineId dst, int64_t bytes);

  // Fail-stop: aborts the machine's NIC. In-progress and future transfers
  // touching this machine resolve false at their next frame boundary.
  void FailMachine(MachineId id);
  bool MachineFailed(MachineId id) const;

  // Time a transfer of `bytes` would take on an idle NIC (no queueing).
  Duration UnloadedTransferTime(int64_t bytes) const;

  const FabricConfig& config() const { return config_; }

  // --- Introspection --------------------------------------------------------

  int64_t total_bytes_sent() const { return total_bytes_; }
  int64_t total_messages() const { return total_messages_; }
  int64_t aborted_transfers() const { return aborted_transfers_; }
  // Cumulative busy time of a machine's egress NIC.
  Duration NicBusy(MachineId id) const;

 private:
  struct Nic {
    SimTime free_at = SimTime::Zero();
    Duration busy = Duration::Zero();
    bool failed = false;
  };

  Simulator& sim_;
  FabricConfig config_;
  std::vector<Nic> nics_;
  int64_t total_bytes_ = 0;
  int64_t total_messages_ = 0;
  int64_t aborted_transfers_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_NET_FABRIC_H_
