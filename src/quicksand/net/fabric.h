// Fabric: the simulated datacenter network.
//
// Model: full-bisection fabric (any pair of machines can talk at line rate)
// with, per transfer,
//
//     delivery = max(now, sender NIC free) + bytes/bandwidth + latency
//
// i.e. store-and-forward through a per-machine egress NIC that serializes
// outgoing transfers FIFO, plus one-way propagation latency. Defaults are
// calibrated to the kernel-bypass stacks the paper builds on (Caladan/Nu):
// ~5 us one-way latency, 100 Gbps per NIC, ~1 us fixed per-message software
// overhead. Ingress contention is not modeled (documented simplification:
// the workloads here are dominated by egress serialization and propagation).
//
// Network faults: beyond fail-stop NIC death, individual directed links can
// be partitioned (messages silently dropped), lossy (per-message drop
// probability from a deterministic seeded Rng), or slow (fixed extra delay).
// Crucially, the SENDER cannot tell: a dropped message still pays its full
// egress serialization and propagation before vanishing, exactly like a
// packet blackholed in a real network. Callers learn about loss only through
// timeouts (net/rpc) or a failure detector (health/), never from Transfer's
// return value at the instant of sending.

#ifndef QUICKSAND_NET_FABRIC_H_
#define QUICKSAND_NET_FABRIC_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "quicksand/cluster/machine.h"
#include "quicksand/common/random.h"
#include "quicksand/common/stats.h"
#include "quicksand/common/time.h"
#include "quicksand/sim/simulator.h"
#include "quicksand/sim/task.h"

namespace quicksand {

struct FabricConfig {
  Duration one_way_latency = Duration::Micros(5);
  int64_t bandwidth_bytes_per_sec = 12'500'000'000;  // 100 Gbps
  Duration per_message_overhead = Duration::Micros(1);
  // Bulk transfers serialize through the NIC in frames of this size, so a
  // small control message waits at most one frame — not the whole bulk
  // transfer (real NICs interleave packets; without this, a 256 MiB
  // migration would head-of-line-block microsecond RPCs for ~20ms).
  int64_t frame_bytes = 64 * 1024;
  // Seed for the per-fabric loss Rng (drawn once per message, only on links
  // with a nonzero loss probability — fault-free runs never touch it).
  uint64_t fault_seed = 0x51c4a17d5a9b0c3dull;
};

// Outcome of one fabric transfer, from the receiver's point of view.
enum class Delivery {
  kDelivered,       // arrived intact
  kEndpointFailed,  // either endpoint fail-stopped (before or in flight)
  kDropped,         // lost to a partition or packet loss; both endpoints live
};

class Fabric {
 public:
  Fabric(Simulator& sim, FabricConfig config)
      : sim_(sim), config_(config), fault_rng_(config.fault_seed) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Registers a machine's NIC; must be called once per machine, in id order.
  void AddNic(MachineId id);

  // Moves `bytes` from src to dst; suspends the caller until delivery (or
  // until the point of loss). src == dst is free (local "transfer").
  // Returns false when the bytes did NOT arrive — endpoint failure, link
  // partition, or packet loss. Callers that never inject faults may ignore
  // the result; callers that distinguish death from loss use
  // TransferDetailed.
  Task<bool> Transfer(MachineId src, MachineId dst, int64_t bytes);

  // Transfer with a three-way outcome. A kDropped message charged the full
  // egress + propagation cost before vanishing: the sender has already paid
  // by the time it learns nothing.
  Task<Delivery> TransferDetailed(MachineId src, MachineId dst, int64_t bytes);

  // Fail-stop: aborts the machine's NIC. In-progress and future transfers
  // touching this machine resolve false at their next frame boundary.
  void FailMachine(MachineId id);
  bool MachineFailed(MachineId id) const;

  // --- Network faults (all directed; deterministic) -------------------------

  // Cuts the directed link src -> dst (messages silently dropped) or
  // restores it.
  void SetLinkDown(MachineId src, MachineId dst, bool down);
  // One-way partition: src can no longer reach dst (dst -> src unaffected).
  void PartitionOneWay(MachineId src, MachineId dst) { SetLinkDown(src, dst, true); }
  // Bidirectional partition between a and b.
  void Partition(MachineId a, MachineId b);
  void HealOneWay(MachineId src, MachineId dst) { SetLinkDown(src, dst, false); }
  void Heal(MachineId a, MachineId b);
  // Cuts every link to and from `m` (the classic "machine fell off the
  // network but is still running" gray failure), and the inverse.
  void IsolateMachine(MachineId m);
  void HealMachine(MachineId m);
  // Per-message drop probability on the directed link (0 disables).
  void SetLinkLoss(MachineId src, MachineId dst, double probability);
  // Fixed extra propagation delay on the directed link (a delay spike;
  // Duration::Zero() clears it).
  void SetLinkDelay(MachineId src, MachineId dst, Duration extra);
  bool LinkDown(MachineId src, MachineId dst) const;

  // Time a transfer of `bytes` would take on an idle NIC (no queueing).
  Duration UnloadedTransferTime(int64_t bytes) const;

  const FabricConfig& config() const { return config_; }

  // --- Introspection --------------------------------------------------------

  int64_t total_bytes_sent() const { return total_bytes_; }
  int64_t total_messages() const { return total_messages_; }
  int64_t aborted_transfers() const { return aborted_transfers_; }
  // Messages lost to partitions or packet loss (endpoints alive).
  int64_t dropped_transfers() const { return dropped_transfers_; }
  // Messages delivered late because of a link delay spike.
  int64_t delayed_transfers() const { return delayed_transfers_; }
  // Cumulative busy time of a machine's egress NIC.
  Duration NicBusy(MachineId id) const;

 private:
  struct Nic {
    SimTime free_at = SimTime::Zero();
    Duration busy = Duration::Zero();
    bool failed = false;
  };

  struct LinkFault {
    bool down = false;
    double loss_probability = 0.0;
    Duration extra_delay = Duration::Zero();

    bool Clear() const {
      return !down && loss_probability == 0.0 && extra_delay == Duration::Zero();
    }
  };

  static uint64_t LinkKey(MachineId src, MachineId dst) {
    return (static_cast<uint64_t>(src) << 32) | static_cast<uint64_t>(dst);
  }
  const LinkFault* FindFault(MachineId src, MachineId dst) const;
  // Mutates the fault entry; erases it again if the edit leaves it clear, so
  // a fully healed fabric is indistinguishable from one never faulted.
  template <typename Fn>
  void EditFault(MachineId src, MachineId dst, Fn edit) {
    QS_CHECK(src < nics_.size() && dst < nics_.size());
    QS_CHECK_MSG(src != dst, "a machine cannot be partitioned from itself");
    auto [it, inserted] = link_faults_.try_emplace(LinkKey(src, dst));
    edit(it->second);
    if (it->second.Clear()) {
      link_faults_.erase(it);
    }
  }

  Simulator& sim_;
  FabricConfig config_;
  std::vector<Nic> nics_;
  std::unordered_map<uint64_t, LinkFault> link_faults_;
  Rng fault_rng_;
  int64_t total_bytes_ = 0;
  int64_t total_messages_ = 0;
  int64_t aborted_transfers_ = 0;
  int64_t dropped_transfers_ = 0;
  int64_t delayed_transfers_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_NET_FABRIC_H_
