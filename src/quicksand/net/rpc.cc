#include "quicksand/net/rpc.h"

#include <algorithm>

namespace quicksand {

Task<Status> Rpc::RoundTrip(MachineId src, MachineId dst, int64_t request_bytes,
                            std::function<Task<int64_t>()> server, Duration timeout) {
  const SimTime start = sim_.Now();
  ++calls_;
  if (!co_await fabric_.Transfer(src, dst, request_bytes + kHeaderBytes)) {
    ++aborted_;
    co_return Status::Unavailable("rpc request lost: endpoint failed");
  }
  const int64_t response_bytes = co_await server();
  if (!co_await fabric_.Transfer(dst, src, response_bytes + kHeaderBytes)) {
    ++aborted_;
    co_return Status::Unavailable("rpc response lost: endpoint failed");
  }
  const Duration elapsed = sim_.Now() - start;
  latency_.Add(elapsed);
  if (elapsed > timeout) {
    ++timeouts_;
    co_return Status::DeadlineExceeded("rpc round trip exceeded timeout");
  }
  co_return Status::Ok();
}

Task<Status> Rpc::RoundTripWithRetry(MachineId src, MachineId dst,
                                     int64_t request_bytes,
                                     std::function<Task<int64_t>()> server,
                                     Duration timeout, RpcRetryPolicy policy) {
  QS_CHECK(policy.max_attempts >= 1);
  Duration backoff = policy.base_backoff;
  for (int attempt = 0;; ++attempt) {
    const Status status =
        co_await RoundTrip(src, dst, request_bytes, server, timeout);
    if (status.code() != StatusCode::kDeadlineExceeded ||
        attempt + 1 >= policy.max_attempts) {
      co_return status;
    }
    ++retries_;
    const double jitter =
        1.0 + policy.jitter * (2.0 * rng_.NextDouble() - 1.0);
    co_await sim_.Sleep(backoff * std::max(jitter, 0.0));
    backoff = backoff * policy.multiplier;
  }
}

}  // namespace quicksand
