#include "quicksand/net/rpc.h"

namespace quicksand {

Task<Status> Rpc::RoundTrip(MachineId src, MachineId dst, int64_t request_bytes,
                            std::function<Task<int64_t>()> server, Duration timeout) {
  const SimTime start = sim_.Now();
  ++calls_;
  co_await fabric_.Transfer(src, dst, request_bytes + kHeaderBytes);
  const int64_t response_bytes = co_await server();
  co_await fabric_.Transfer(dst, src, response_bytes + kHeaderBytes);
  const Duration elapsed = sim_.Now() - start;
  latency_.Add(elapsed);
  if (elapsed > timeout) {
    ++timeouts_;
    co_return Status::DeadlineExceeded("rpc round trip exceeded timeout");
  }
  co_return Status::Ok();
}

}  // namespace quicksand
