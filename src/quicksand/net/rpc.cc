#include "quicksand/net/rpc.h"

#include <algorithm>

#include "quicksand/health/failure_detector.h"

namespace quicksand {

Task<Status> Rpc::LoseRoundTrip(SimTime start, Duration timeout) {
  ++lost_;
  // An infinite timeout on a faultable link would hang the caller forever —
  // surface the misconfiguration instead of deadlocking the simulation.
  QS_CHECK_MSG(timeout != Duration::Max(),
               "an rpc leg was dropped by the network but the call has no "
               "timeout; faultable links require a finite rpc timeout");
  const SimTime deadline = start + timeout;
  if (sim_.Now() < deadline) {
    co_await sim_.SleepUntil(deadline);
  }
  ++timeouts_;
  co_return Status::DeadlineExceeded("rpc lost in the network");
}

Task<Status> Rpc::RoundTrip(MachineId src, MachineId dst, int64_t request_bytes,
                            std::function<Task<int64_t>()> server, Duration timeout) {
  const SimTime start = sim_.Now();
  ++calls_;
  const Delivery request =
      co_await fabric_.TransferDetailed(src, dst, request_bytes + kHeaderBytes);
  if (request == Delivery::kEndpointFailed) {
    ++aborted_;
    co_return Status::Unavailable("rpc request lost: endpoint failed");
  }
  if (request == Delivery::kDropped) {
    co_return co_await LoseRoundTrip(start, timeout);
  }
  const int64_t response_bytes = co_await server();
  const Delivery response =
      co_await fabric_.TransferDetailed(dst, src, response_bytes + kHeaderBytes);
  if (response == Delivery::kEndpointFailed) {
    ++aborted_;
    co_return Status::Unavailable("rpc response lost: endpoint failed");
  }
  if (response == Delivery::kDropped) {
    // The server work happened; only the ack vanished (at-least-once).
    co_return co_await LoseRoundTrip(start, timeout);
  }
  const Duration elapsed = sim_.Now() - start;
  latency_.Add(elapsed);
  if (elapsed > timeout) {
    ++timeouts_;
    co_return Status::DeadlineExceeded("rpc round trip exceeded timeout");
  }
  co_return Status::Ok();
}

Task<Status> Rpc::RoundTripWithRetry(MachineId src, MachineId dst,
                                     int64_t request_bytes,
                                     std::function<Task<int64_t>()> server,
                                     Duration timeout, RpcRetryPolicy policy) {
  QS_CHECK(policy.max_attempts >= 1);
  Duration backoff = policy.base_backoff;
  for (int attempt = 0;; ++attempt) {
    const Status status =
        co_await RoundTrip(src, dst, request_bytes, server, timeout);
    if (status.ok()) {
      co_return status;
    }
    // Unavailable means an endpoint's NIC is dead — terminal under
    // fail-stop, UNLESS the detector merely suspects the destination: a
    // suspected machine might be partitioned rather than dead, and the
    // partition might heal. Confirmed-dead stays terminal.
    const bool suspected_dst =
        detector_ != nullptr && detector_->StateOf(dst) == Health::kSuspected;
    const bool retryable =
        status.code() == StatusCode::kDeadlineExceeded ||
        (status.code() == StatusCode::kUnavailable && suspected_dst);
    if (!retryable) {
      co_return status;
    }
    if (attempt + 1 >= policy.max_attempts) {
      ++retries_exhausted_;
      co_return status;
    }
    ++retries_;
    const double jitter =
        1.0 + policy.jitter * (2.0 * rng_.NextDouble() - 1.0);
    co_await sim_.Sleep(backoff * std::max(jitter, 0.0));
    backoff = backoff * policy.multiplier;
  }
}

}  // namespace quicksand
