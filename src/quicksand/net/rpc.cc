#include "quicksand/net/rpc.h"

#include <algorithm>

#include "quicksand/health/failure_detector.h"
#include "quicksand/overload/admission.h"
#include "quicksand/overload/retry_budget.h"

namespace quicksand {

Task<Status> Rpc::LoseRoundTrip(SimTime start, Duration timeout) {
  ++lost_;
  // An infinite timeout on a faultable link would hang the caller forever —
  // surface the misconfiguration instead of deadlocking the simulation.
  QS_CHECK_MSG(timeout != Duration::Max(),
               "an rpc leg was dropped by the network but the call has no "
               "timeout; faultable links require a finite rpc timeout");
  const SimTime deadline = start + timeout;
  if (sim_.Now() < deadline) {
    co_await sim_.SleepUntil(deadline);
  }
  ++timeouts_;
  co_return Status::DeadlineExceeded("rpc lost in the network");
}

Task<Status> Rpc::RoundTrip(MachineId src, MachineId dst, int64_t request_bytes,
                            std::function<Task<int64_t>()> server, Duration timeout,
                            TraceContext trace) {
  const SimTime start = sim_.Now();
  ++calls_;
  SpanGuard span;
  if (tracer_ != nullptr) {
    trace = tracer_->BeginSpan(trace, src, TraceOp::kRpcAttempt, 0, request_bytes);
    span = SpanGuard(tracer_, trace, src);
    tracer_->Instant(trace, src, TraceOp::kRpcSend, 0,
                     request_bytes + kHeaderBytes);
  }
  const Delivery request =
      co_await fabric_.TransferDetailed(src, dst, request_bytes + kHeaderBytes);
  if (request == Delivery::kEndpointFailed) {
    ++aborted_;
    span.End("unavailable");
    co_return Status::Unavailable("rpc request lost: endpoint failed");
  }
  if (request == Delivery::kDropped) {
    if (tracer_ != nullptr) {
      tracer_->Instant(trace, src, TraceOp::kRpcDrop, 0, 0, "request");
    }
    const Status status = co_await LoseRoundTrip(start, timeout);
    span.End(StatusCodeName(status.code()));
    co_return status;
  }
  if (tracer_ != nullptr) {
    tracer_->Instant(trace, dst, TraceOp::kRpcRecv, 0,
                     request_bytes + kHeaderBytes);
  }
  // Server-side admission: reject dead-on-arrival and shed-worthy work
  // BEFORE the closure runs, paying only a header-sized rejection response.
  if (trace.ExpiredAt(sim_.Now())) {
    ++deadline_rejected_;
    if (tracer_ != nullptr) {
      tracer_->Instant(trace, dst, TraceOp::kDeadlineExpired, 0,
                       trace.deadline.nanos());
    }
    (void)co_await fabric_.TransferDetailed(dst, src, kHeaderBytes);
    span.End("deadline_expired");
    co_return Status::DeadlineExceeded("deadline expired before service");
  }
  if (admission_ != nullptr && !admission_->Admit(dst, sim_.Now())) {
    ++shed_;
    if (tracer_ != nullptr) {
      tracer_->Instant(trace, dst, TraceOp::kRpcShed, 0, 0);
    }
    (void)co_await fabric_.TransferDetailed(dst, src, kHeaderBytes);
    span.End("shed");
    co_return Status::ResourceExhausted("request shed by admission control");
  }
  const int64_t response_bytes = co_await server();
  if (tracer_ != nullptr) {
    tracer_->Instant(trace, dst, TraceOp::kRpcSend, 0,
                     response_bytes + kHeaderBytes, "response");
  }
  const Delivery response =
      co_await fabric_.TransferDetailed(dst, src, response_bytes + kHeaderBytes);
  if (response == Delivery::kEndpointFailed) {
    ++aborted_;
    span.End("unavailable");
    co_return Status::Unavailable("rpc response lost: endpoint failed");
  }
  if (response == Delivery::kDropped) {
    // The server work happened; only the ack vanished (at-least-once).
    if (tracer_ != nullptr) {
      tracer_->Instant(trace, dst, TraceOp::kRpcDrop, 0, 0, "response");
    }
    const Status status = co_await LoseRoundTrip(start, timeout);
    span.End(StatusCodeName(status.code()));
    co_return status;
  }
  if (tracer_ != nullptr) {
    tracer_->Instant(trace, src, TraceOp::kRpcRecv, 0,
                     response_bytes + kHeaderBytes, "response");
  }
  const Duration elapsed = sim_.Now() - start;
  latency_.Add(elapsed);
  if (elapsed > timeout) {
    ++timeouts_;
    span.End("deadline_exceeded");
    co_return Status::DeadlineExceeded("rpc round trip exceeded timeout");
  }
  span.End("ok");
  co_return Status::Ok();
}

Task<Status> Rpc::RoundTripWithRetry(MachineId src, MachineId dst,
                                     int64_t request_bytes,
                                     std::function<Task<int64_t>()> server,
                                     Duration timeout, RpcRetryPolicy policy,
                                     TraceContext trace) {
  QS_CHECK(policy.max_attempts >= 1);
  // The retry envelope is one `rpc` span; each attempt nests an
  // `rpc_attempt` child under it (RoundTrip receives the child stamp).
  SpanGuard span;
  if (tracer_ != nullptr) {
    trace = tracer_->BeginSpan(trace, src, TraceOp::kRpc, 0, request_bytes);
    span = SpanGuard(tracer_, trace, src);
  }
  if (retry_budget_ != nullptr) {
    retry_budget_->OnAttempt();  // first attempts fund the bucket
  }
  Duration backoff = policy.base_backoff;
  for (int attempt = 0;; ++attempt) {
    // Materialized first: `server` is a std::function, and passing it by
    // value inside a co_await operand trips the GCC 12 double-destroy bug
    // documented in sim/task.h.
    auto attempt_task =
        RoundTrip(src, dst, request_bytes, server, timeout, trace);
    const Status status = co_await std::move(attempt_task);
    if (status.ok()) {
      span.End("ok", attempt);
      co_return status;
    }
    // Unavailable means an endpoint's NIC is dead — terminal under
    // fail-stop, UNLESS the detector merely suspects the destination: a
    // suspected machine might be partitioned rather than dead, and the
    // partition might heal. Confirmed-dead stays terminal.
    // ResourceExhausted is the server shedding load — transient by
    // definition, retryable, but only through the budget below: shed
    // retries are exactly how retry storms start.
    const bool suspected_dst =
        detector_ != nullptr && detector_->StateOf(dst) == Health::kSuspected;
    const bool retryable =
        status.code() == StatusCode::kDeadlineExceeded ||
        status.code() == StatusCode::kResourceExhausted ||
        (status.code() == StatusCode::kUnavailable && suspected_dst);
    if (!retryable) {
      span.End(StatusCodeName(status.code()), attempt);
      co_return status;
    }
    if (attempt + 1 >= policy.max_attempts) {
      ++retries_exhausted_;
      span.End("retries_exhausted", attempt);
      co_return status;
    }
    if (trace.ExpiredAt(sim_.Now())) {
      // Nothing a retry sends can finish in time; don't add load for it.
      span.End("deadline_expired", attempt);
      co_return status;
    }
    if (retry_budget_ != nullptr && !retry_budget_->TryAcquireRetry()) {
      ++budget_denied_retries_;
      span.End("retry_budget_exhausted", attempt);
      co_return status;
    }
    ++retries_;
    if (tracer_ != nullptr) {
      tracer_->Instant(trace, src, TraceOp::kRpcRetry, 0, attempt,
                       StatusCodeName(status.code()));
    }
    const double jitter =
        1.0 + policy.jitter * (2.0 * rng_.NextDouble() - 1.0);
    co_await sim_.Sleep(std::min(backoff, policy.max_backoff) *
                        std::max(jitter, 0.0));
    backoff = std::min(backoff * policy.multiplier, policy.max_backoff);
  }
}

}  // namespace quicksand
