#include "quicksand/net/fabric.h"

#include <algorithm>

#include "quicksand/common/check.h"

namespace quicksand {

void Fabric::AddNic(MachineId id) {
  QS_CHECK_MSG(id == nics_.size(), "NICs must be added in machine-id order");
  nics_.push_back(Nic{});
}

Duration Fabric::UnloadedTransferTime(int64_t bytes) const {
  QS_CHECK(bytes >= 0);
  const auto tx_ns = static_cast<int64_t>(
      static_cast<double>(bytes) / static_cast<double>(config_.bandwidth_bytes_per_sec) *
      1e9);
  return config_.per_message_overhead + Duration::Nanos(tx_ns) + config_.one_way_latency;
}

const Fabric::LinkFault* Fabric::FindFault(MachineId src, MachineId dst) const {
  if (link_faults_.empty()) {
    return nullptr;
  }
  auto it = link_faults_.find(LinkKey(src, dst));
  return it == link_faults_.end() ? nullptr : &it->second;
}

Task<bool> Fabric::Transfer(MachineId src, MachineId dst, int64_t bytes) {
  co_return (co_await TransferDetailed(src, dst, bytes)) == Delivery::kDelivered;
}

Task<Delivery> Fabric::TransferDetailed(MachineId src, MachineId dst, int64_t bytes) {
  QS_CHECK(bytes >= 0);
  QS_CHECK(src < nics_.size() && dst < nics_.size());
  if (nics_[src].failed || nics_[dst].failed) {
    ++aborted_transfers_;
    co_return Delivery::kEndpointFailed;
  }
  if (src == dst) {
    co_return Delivery::kDelivered;  // same machine: no wire crossing
  }
  // The message's network fate is sealed when it leaves the NIC: one loss
  // draw per message, and the link's extra delay is sampled here. The sender
  // still pays full serialization and propagation either way — it cannot
  // observe the drop.
  bool doomed = false;
  Duration extra = Duration::Zero();
  if (const LinkFault* fault = FindFault(src, dst)) {
    doomed = fault->down ||
             (fault->loss_probability > 0.0 &&
              fault_rng_.NextDouble() < fault->loss_probability);
    extra = fault->extra_delay;
  }
  Nic& nic = nics_[src];
  total_bytes_ += bytes;
  ++total_messages_;

  auto tx_for = [this](int64_t frame) {
    return Duration::Nanos(static_cast<int64_t>(
        static_cast<double>(frame) /
        static_cast<double>(config_.bandwidth_bytes_per_sec) * 1e9));
  };

  // First frame carries the per-message software overhead; subsequent frames
  // requeue on the NIC, so concurrent senders interleave at frame
  // granularity.
  int64_t remaining = bytes;
  bool first = true;
  do {
    const int64_t frame = std::min(remaining, config_.frame_bytes);
    remaining -= frame;
    Duration tx = tx_for(frame);
    if (first) {
      tx += config_.per_message_overhead;
      first = false;
    }
    const SimTime start = std::max(sim_.Now(), nic.free_at);
    const SimTime frame_done = start + tx;
    nic.free_at = frame_done;
    nic.busy += tx;
    co_await sim_.SleepUntil(frame_done);
    // Either endpoint may have died while this frame was on the wire.
    if (nic.failed || nics_[dst].failed) {
      ++aborted_transfers_;
      co_return Delivery::kEndpointFailed;
    }
  } while (remaining > 0);

  co_await sim_.Sleep(config_.one_way_latency + extra);
  if (extra > Duration::Zero()) {
    ++delayed_transfers_;
  }
  if (nics_[dst].failed) {
    ++aborted_transfers_;
    co_return Delivery::kEndpointFailed;
  }
  // A partition installed while the message was in flight also eats it: the
  // check at delivery time catches both send-time and mid-flight cuts.
  if (doomed || LinkDown(src, dst)) {
    ++dropped_transfers_;
    co_return Delivery::kDropped;
  }
  co_return Delivery::kDelivered;
}

void Fabric::FailMachine(MachineId id) {
  QS_CHECK(id < nics_.size());
  nics_[id].failed = true;
}

bool Fabric::MachineFailed(MachineId id) const {
  QS_CHECK(id < nics_.size());
  return nics_[id].failed;
}

void Fabric::SetLinkDown(MachineId src, MachineId dst, bool down) {
  EditFault(src, dst, [down](LinkFault& fault) { fault.down = down; });
}

void Fabric::Partition(MachineId a, MachineId b) {
  SetLinkDown(a, b, true);
  SetLinkDown(b, a, true);
}

void Fabric::Heal(MachineId a, MachineId b) {
  SetLinkDown(a, b, false);
  SetLinkDown(b, a, false);
}

void Fabric::IsolateMachine(MachineId m) {
  QS_CHECK(m < nics_.size());
  for (MachineId other = 0; other < nics_.size(); ++other) {
    if (other != m) {
      Partition(m, other);
    }
  }
}

void Fabric::HealMachine(MachineId m) {
  QS_CHECK(m < nics_.size());
  for (MachineId other = 0; other < nics_.size(); ++other) {
    if (other != m) {
      Heal(m, other);
    }
  }
}

void Fabric::SetLinkLoss(MachineId src, MachineId dst, double probability) {
  QS_CHECK(probability >= 0.0 && probability <= 1.0);
  EditFault(src, dst,
            [probability](LinkFault& fault) { fault.loss_probability = probability; });
}

void Fabric::SetLinkDelay(MachineId src, MachineId dst, Duration extra) {
  QS_CHECK(extra >= Duration::Zero());
  EditFault(src, dst, [extra](LinkFault& fault) { fault.extra_delay = extra; });
}

bool Fabric::LinkDown(MachineId src, MachineId dst) const {
  const LinkFault* fault = FindFault(src, dst);
  return fault != nullptr && fault->down;
}

Duration Fabric::NicBusy(MachineId id) const {
  QS_CHECK(id < nics_.size());
  return nics_[id].busy;
}

}  // namespace quicksand
