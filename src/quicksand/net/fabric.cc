#include "quicksand/net/fabric.h"

#include <algorithm>

#include "quicksand/common/check.h"

namespace quicksand {

void Fabric::AddNic(MachineId id) {
  QS_CHECK_MSG(id == nics_.size(), "NICs must be added in machine-id order");
  nics_.push_back(Nic{});
}

Duration Fabric::UnloadedTransferTime(int64_t bytes) const {
  QS_CHECK(bytes >= 0);
  const auto tx_ns = static_cast<int64_t>(
      static_cast<double>(bytes) / static_cast<double>(config_.bandwidth_bytes_per_sec) *
      1e9);
  return config_.per_message_overhead + Duration::Nanos(tx_ns) + config_.one_way_latency;
}

Task<bool> Fabric::Transfer(MachineId src, MachineId dst, int64_t bytes) {
  QS_CHECK(bytes >= 0);
  QS_CHECK(src < nics_.size() && dst < nics_.size());
  if (nics_[src].failed || nics_[dst].failed) {
    ++aborted_transfers_;
    co_return false;
  }
  if (src == dst) {
    co_return true;  // same machine: no wire crossing
  }
  Nic& nic = nics_[src];
  total_bytes_ += bytes;
  ++total_messages_;

  auto tx_for = [this](int64_t frame) {
    return Duration::Nanos(static_cast<int64_t>(
        static_cast<double>(frame) /
        static_cast<double>(config_.bandwidth_bytes_per_sec) * 1e9));
  };

  // First frame carries the per-message software overhead; subsequent frames
  // requeue on the NIC, so concurrent senders interleave at frame
  // granularity.
  int64_t remaining = bytes;
  bool first = true;
  do {
    const int64_t frame = std::min(remaining, config_.frame_bytes);
    remaining -= frame;
    Duration tx = tx_for(frame);
    if (first) {
      tx += config_.per_message_overhead;
      first = false;
    }
    const SimTime start = std::max(sim_.Now(), nic.free_at);
    const SimTime frame_done = start + tx;
    nic.free_at = frame_done;
    nic.busy += tx;
    co_await sim_.SleepUntil(frame_done);
    // Either endpoint may have died while this frame was on the wire.
    if (nic.failed || nics_[dst].failed) {
      ++aborted_transfers_;
      co_return false;
    }
  } while (remaining > 0);

  co_await sim_.Sleep(config_.one_way_latency);
  if (nics_[dst].failed) {
    ++aborted_transfers_;
    co_return false;
  }
  co_return true;
}

void Fabric::FailMachine(MachineId id) {
  QS_CHECK(id < nics_.size());
  nics_[id].failed = true;
}

bool Fabric::MachineFailed(MachineId id) const {
  QS_CHECK(id < nics_.size());
  return nics_[id].failed;
}

Duration Fabric::NicBusy(MachineId id) const {
  QS_CHECK(id < nics_.size());
  return nics_[id].busy;
}

}  // namespace quicksand
