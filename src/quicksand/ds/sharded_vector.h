// ShardedVector<T>: an append-ordered vector partitioned into granular
// memory proclets (§3.2, §4).
//
// Elements are keyed by their index. Each shard proclet owns a contiguous
// index range; the tail shard accepts appends until it reaches
// max_shard_bytes, at which point the appender seals it and adds a fresh
// tail — so data decomposes into independently schedulable memory proclets
// as it is loaded (this is how Fig. 2's input images spread across machines
// with free memory). Shards can further split/merge under the adaptive
// controller (§3.3).
//
// The handle is a cheap client-side object; any number of actors may hold
// copies. Routing goes through a cached index snapshot; stale routes get
// kOutOfRange/kFailedPrecondition from shards and refresh-retry.

#ifndef QUICKSAND_DS_SHARDED_VECTOR_H_
#define QUICKSAND_DS_SHARDED_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "quicksand/common/bytes.h"
#include "quicksand/common/status.h"
#include "quicksand/common/wire.h"
#include "quicksand/runtime/runtime.h"
#include "quicksand/sharding/shard_index.h"

namespace quicksand {

template <typename T>
class VectorShardProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kMemory;

  struct AppendResult {
    uint64_t index;
    int64_t shard_bytes;
    int64_t shard_count;
  };

  VectorShardProclet(const ProcletInit& init, uint64_t base)
      : ProcletBase(init), base_(base) {}

  uint64_t base() const { return base_; }
  uint64_t end_index() const { return base_ + elements_.size(); }
  int64_t count() const { return static_cast<int64_t>(elements_.size()); }
  int64_t data_bytes() const { return data_bytes_; }
  bool sealed() const { return sealed_; }

  Result<AppendResult> Append(T value) {
    if (sealed_) {
      return Status::FailedPrecondition("shard is sealed");
    }
    const int64_t bytes = WireSizeOf(value);
    if (!TryChargeHeap(bytes)) {
      return Status::ResourceExhausted("host machine out of memory");
    }
    data_bytes_ += bytes;
    element_bytes_.push_back(bytes);
    elements_.push_back(std::move(value));
    return AppendResult{base_ + elements_.size() - 1, data_bytes_, count()};
  }

  // Idempotent; returns the element count at seal time.
  int64_t Seal() {
    sealed_ = true;
    return count();
  }

  Result<T> Get(uint64_t index) const {
    if (index < base_ || index >= end_index()) {
      return Status::OutOfRange("index not in this shard");
    }
    return elements_[static_cast<size_t>(index - base_)];
  }

  Status Set(uint64_t index, T value) {
    if (index < base_ || index >= end_index()) {
      return Status::OutOfRange("index not in this shard");
    }
    const size_t slot = static_cast<size_t>(index - base_);
    const int64_t new_bytes = WireSizeOf(value);
    const int64_t delta = new_bytes - element_bytes_[slot];
    if (delta > 0 && !TryChargeHeap(delta)) {
      return Status::ResourceExhausted("host machine out of memory");
    }
    if (delta < 0) {
      ReleaseHeap(-delta);
    }
    data_bytes_ += delta;
    element_bytes_[slot] = new_bytes;
    elements_[slot] = std::move(value);
    return Status::Ok();
  }

  // Copies out up to `count` elements starting at `begin` (clamped to this
  // shard's range). Used by cross-shard reads and the prefetcher.
  Result<std::vector<T>> GetRange(uint64_t begin, uint64_t count) const {
    if (begin < base_ || begin >= end_index()) {
      return Status::OutOfRange("range start not in this shard");
    }
    const size_t first = static_cast<size_t>(begin - base_);
    const size_t n =
        std::min(static_cast<size_t>(count), elements_.size() - first);
    return std::vector<T>(elements_.begin() + static_cast<ptrdiff_t>(first),
                          elements_.begin() + static_cast<ptrdiff_t>(first + n));
  }

  // --- Maintenance (gate must be closed) -------------------------------------

  // Removes the upper half of the elements (for a split); the caller moves
  // them into a new shard. Returns {first_moved_index, elements, bytes}.
  struct SplitPayload {
    uint64_t first_index;
    std::vector<T> elements;
    std::vector<int64_t> element_bytes;
    int64_t total_bytes;
  };

  SplitPayload ExtractUpperHalf() {
    QS_CHECK_MSG(gate_closed(), "ExtractUpperHalf requires a closed gate");
    const size_t keep = elements_.size() / 2;
    SplitPayload payload;
    payload.first_index = base_ + keep;
    payload.total_bytes = 0;
    payload.elements.assign(std::make_move_iterator(elements_.begin() +
                                                    static_cast<ptrdiff_t>(keep)),
                            std::make_move_iterator(elements_.end()));
    payload.element_bytes.assign(element_bytes_.begin() + static_cast<ptrdiff_t>(keep),
                                 element_bytes_.end());
    elements_.resize(keep);
    element_bytes_.resize(keep);
    for (int64_t b : payload.element_bytes) {
      payload.total_bytes += b;
    }
    data_bytes_ -= payload.total_bytes;
    ReleaseHeap(payload.total_bytes);
    sealed_ = true;  // a split shard no longer grows in place
    return payload;
  }

  // Installs elements extracted from a donor (this shard must be empty).
  // `seal` is false when this shard takes over the growing tail range.
  // On failure the payload is left untouched so the caller can roll it back
  // into the donor — losing it would lose data.
  Status AdoptPayload(SplitPayload&& payload, bool seal = true) {
    QS_CHECK_MSG(gate_closed(), "AdoptPayload requires a closed gate");
    QS_CHECK(elements_.empty());
    QS_CHECK(payload.first_index == base_);
    if (!TryChargeHeap(payload.total_bytes)) {
      return Status::ResourceExhausted("host machine out of memory");
    }
    data_bytes_ = payload.total_bytes;
    elements_ = std::move(payload.elements);
    element_bytes_ = std::move(payload.element_bytes);
    sealed_ = seal;
    return Status::Ok();
  }

  // Appends a right-neighbor's elements (for a merge). Pre: `payload` starts
  // exactly at end_index(). On failure the payload is left untouched.
  Status AbsorbRightNeighbor(SplitPayload&& payload) {
    QS_CHECK_MSG(gate_closed(), "AbsorbRightNeighbor requires a closed gate");
    QS_CHECK(payload.first_index == end_index());
    if (!TryChargeHeap(payload.total_bytes)) {
      return Status::ResourceExhausted("host machine out of memory");
    }
    data_bytes_ += payload.total_bytes;
    for (auto& e : payload.elements) {
      elements_.push_back(std::move(e));
    }
    element_bytes_.insert(element_bytes_.end(), payload.element_bytes.begin(),
                          payload.element_bytes.end());
    return Status::Ok();
  }

  // Removes everything (for the donor side of a merge).
  SplitPayload ExtractAll() {
    QS_CHECK_MSG(gate_closed(), "ExtractAll requires a closed gate");
    SplitPayload payload;
    payload.first_index = base_;
    payload.elements = std::move(elements_);
    payload.element_bytes = std::move(element_bytes_);
    payload.total_bytes = data_bytes_;
    elements_.clear();
    element_bytes_.clear();
    ReleaseHeap(data_bytes_);
    data_bytes_ = 0;
    return payload;
  }

 private:
  uint64_t base_;
  bool sealed_ = false;
  int64_t data_bytes_ = 0;
  std::vector<T> elements_;
  std::vector<int64_t> element_bytes_;
};

template <typename T>
class ShardedVector {
 public:
  using Shard = VectorShardProclet<T>;

  struct Options {
    // Shard size cap, derived from the target migration latency (§3.3).
    int64_t max_shard_bytes = 16 * kMiB;
    // Initial heap charge per shard proclet (metadata).
    int64_t shard_base_bytes = 4096;
  };

  ShardedVector() = default;

  static Task<Result<ShardedVector>> Create(Ctx ctx, Options options = Options{}) {
    PlacementRequest index_req;
    index_req.heap_bytes = options.shard_base_bytes;
    auto create_index = ctx.rt->Create<ShardIndexProclet>(ctx, index_req);
    Result<Ref<ShardIndexProclet>> index = co_await std::move(create_index);
    if (!index.ok()) {
      co_return index.status();
    }
    ShardedVector vec;
    vec.index_ = *index;
    vec.router_ = ShardRouter(*index);
    vec.options_ = options;
    // First tail shard covering [0, inf).
    Status grown = co_await vec.AddTail(ctx, 0);
    if (!grown.ok()) {
      co_return grown;
    }
    co_return vec;
  }

  Ref<ShardIndexProclet> index() const { return index_; }
  ShardRouter& router() { return router_; }
  const Options& options() const { return options_; }

  // Appends an element; returns its index.
  Task<Result<uint64_t>> PushBack(Ctx ctx, T value) {
    const int64_t request_bytes = WireSizeOf(value);
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Result<ShardInfo> tail = co_await RouteTail(ctx);
      if (!tail.ok()) {
        co_return tail.status();
      }
      Ref<Shard> shard(ctx.rt, tail->proclet);
      using AppendResult = typename Shard::AppendResult;
      // Named task: see the GCC 12 note in sim/task.h.
      auto call = shard.Call(
          ctx,
          [value](Shard& s) mutable -> Task<Result<AppendResult>> {
            co_return s.Append(std::move(value));
          },
          request_bytes);
      std::optional<Result<AppendResult>> appended;
      try {
        appended.emplace(co_await std::move(call));
      } catch (const ProcletGoneError&) {
        router_.Invalidate();
        continue;
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        co_return Status::DataLoss(LostShardMessage(*tail));
      }
      if (!appended->ok()) {
        if (appended->status().code() == StatusCode::kFailedPrecondition) {
          // Tail sealed under us: someone is growing; refresh and retry.
          co_await router_.Refresh(ctx);
          continue;
        }
        co_return appended->status();
      }
      if ((*appended)->shard_bytes >= options_.max_shard_bytes) {
        Status grown = co_await GrowTail(ctx, *tail);
        if (!grown.ok() && grown.code() != StatusCode::kFailedPrecondition) {
          co_return grown;
        }
      }
      co_return (*appended)->index;
    }
    co_return Status::Aborted("too many append retries");
  }

  Task<Result<T>> Get(Ctx ctx, uint64_t index) {
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Result<ShardInfo> info = co_await router_.Route(ctx, index);
      if (!info.ok()) {
        co_return Status::OutOfRange("index beyond vector");
      }
      Ref<Shard> shard(ctx.rt, info->proclet);
      auto call = shard.Call(ctx, [index](Shard& s) -> Task<Result<T>> {
        co_return s.Get(index);
      });
      std::optional<Result<T>> value;
      try {
        value.emplace(co_await std::move(call));
      } catch (const ProcletGoneError&) {
        router_.Invalidate();
        continue;
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        co_return Status::DataLoss(LostShardMessage(*info));
      }
      if (!value->ok() && value->status().code() == StatusCode::kOutOfRange) {
        if (info->end == UINT64_MAX) {
          // The tail said out-of-range: the index really is past the end.
          co_return value->status();
        }
        router_.Invalidate();  // stale route after a split/merge
        continue;
      }
      co_return std::move(*value);
    }
    co_return Status::Aborted("too many read retries");
  }

  Task<Status> Set(Ctx ctx, uint64_t index, T value) {
    const int64_t request_bytes = WireSizeOf(value);
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Result<ShardInfo> info = co_await router_.Route(ctx, index);
      if (!info.ok()) {
        co_return Status::OutOfRange("index beyond vector");
      }
      Ref<Shard> shard(ctx.rt, info->proclet);
      auto call = shard.Call(
          ctx,
          [index, value](Shard& s) mutable -> Task<Status> {
            co_return s.Set(index, std::move(value));
          },
          request_bytes);
      Status status = Status::Internal("unset");
      try {
        status = co_await std::move(call);
      } catch (const ProcletGoneError&) {
        router_.Invalidate();
        continue;
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        co_return Status::DataLoss(LostShardMessage(*info));
      }
      if (status.code() == StatusCode::kOutOfRange) {
        if (info->end == UINT64_MAX) {
          co_return status;  // genuinely past the end
        }
        router_.Invalidate();
        continue;
      }
      co_return status;
    }
    co_return Status::Aborted("too many write retries");
  }

  // Batched cross-shard read of [begin, begin+count) (clamped at the end of
  // the vector). The unit of remote transfer is a whole per-shard range — the
  // batching that makes remote iteration cheap.
  Task<Result<std::vector<T>>> GetRange(Ctx ctx, uint64_t begin, uint64_t count) {
    std::vector<T> out;
    uint64_t cursor = begin;
    int stale_retries = 0;
    while (count > 0) {
      Result<ShardInfo> info = co_await router_.Route(ctx, cursor);
      if (!info.ok()) {
        break;  // past the end
      }
      Ref<Shard> shard(ctx.rt, info->proclet);
      const uint64_t ask = count;
      auto call = shard.Call(
          ctx, [cursor, ask](Shard& s) -> Task<Result<std::vector<T>>> {
            co_return s.GetRange(cursor, ask);
          });
      std::optional<Result<std::vector<T>>> chunk;
      try {
        chunk.emplace(co_await std::move(call));
      } catch (const ProcletGoneError&) {
        router_.Invalidate();
        if (++stale_retries > kMaxAttempts) {
          co_return Status::Aborted("too many range-read retries");
        }
        continue;
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        co_return Status::DataLoss(LostShardMessage(*info));
      }
      if (!chunk->ok()) {
        if (chunk->status().code() == StatusCode::kOutOfRange) {
          if (info->end == UINT64_MAX) {
            break;  // reading past the live end of the vector
          }
          router_.Invalidate();
          if (++stale_retries > kMaxAttempts) {
            co_return Status::Aborted("too many range-read retries");
          }
          continue;
        }
        co_return chunk->status();
      }
      std::vector<T>& data = **chunk;
      if (data.empty()) {
        break;  // tail shard has no elements at cursor yet
      }
      cursor += data.size();
      count -= static_cast<uint64_t>(data.size());
      for (auto& e : data) {
        out.push_back(std::move(e));
      }
    }
    co_return out;
  }

  // Total element count (one index round trip).
  Task<Result<uint64_t>> Size(Ctx ctx) {
    co_await router_.Refresh(ctx);
    // The index's counts are advisory; ask the tail shard for its live count.
    uint64_t total = 0;
    for (const ShardInfo& shard : router_.cached_shards()) {
      if (shard.end == UINT64_MAX) {
        Ref<Shard> tail(ctx.rt, shard.proclet);
        auto call = tail.Call(ctx, [](Shard& s) -> Task<uint64_t> {
          co_return s.end_index();
        });
        uint64_t end_index = 0;
        try {
          end_index = co_await std::move(call);
        } catch (const ProcletLostError&) {
          router_.Invalidate();
          co_return Status::DataLoss(LostShardMessage(shard));
        }
        total = std::max(total, end_index);
      } else {
        total = std::max(total, shard.end);
      }
    }
    co_return total;
  }

 private:
  static constexpr int kMaxAttempts = 16;

  // Loss is permanent (fail-stop, no replication): report the exact index
  // range that died with the machine instead of retrying forever.
  static std::string LostShardMessage(const ShardInfo& info) {
    const std::string end = info.end == UINT64_MAX ? std::string("end")
                                                   : std::to_string(info.end);
    return "elements [" + std::to_string(info.begin) + ", " + end +
           ") lost to a machine failure";
  }

  // The tail is the shard whose range extends to UINT64_MAX. Between a
  // concurrent grower's seal and its new-tail insertion the index briefly
  // has no tail; wait out that window.
  Task<Result<ShardInfo>> RouteTail(Ctx ctx) {
    if (router_.cached_shards().empty()) {
      co_await router_.Refresh(ctx);
    }
    for (int i = 0; i < kMaxAttempts; ++i) {
      for (const ShardInfo& shard : router_.cached_shards()) {
        if (shard.end == UINT64_MAX) {
          co_return shard;
        }
      }
      co_await ctx.rt->sim().Sleep(Duration::Micros(20));
      co_await router_.Refresh(ctx);
    }
    co_return Status::Internal("sharded vector has no tail shard");
  }

  // Seals `tail` and installs a fresh tail after it. Concurrent growers are
  // resolved by the index: losers see FailedPrecondition and retry.
  Task<Status> GrowTail(Ctx ctx, ShardInfo tail) {
    Ref<Shard> shard(ctx.rt, tail.proclet);
    auto seal = shard.Call(ctx, [](Shard& s) -> Task<int64_t> { co_return s.Seal(); });
    int64_t sealed_count = 0;
    try {
      sealed_count = co_await std::move(seal);
    } catch (const ProcletGoneError&) {
      router_.Invalidate();
      co_return Status::FailedPrecondition("tail vanished during grow");
    } catch (const ProcletLostError&) {
      router_.Invalidate();
      co_return Status::DataLoss(LostShardMessage(tail));
    }
    const uint64_t boundary = tail.begin + static_cast<uint64_t>(sealed_count);

    // Shrink the sealed tail's range in the index.
    ShardInfo sealed_info = tail;
    sealed_info.end = boundary;
    sealed_info.count = sealed_count;
    auto update = index_.Call(ctx, [sealed_info](ShardIndexProclet& p) -> Task<Status> {
      co_return p.UpdateShard(sealed_info);
    });
    Status updated = co_await std::move(update);
    if (!updated.ok()) {
      // Another appender already grew the tail.
      co_await router_.Refresh(ctx);
      co_return Status::FailedPrecondition("tail already grown");
    }
    Status added = co_await AddTail(ctx, boundary);
    co_await router_.Refresh(ctx);
    co_return added;
  }

  Task<Status> AddTail(Ctx ctx, uint64_t base) {
    PlacementRequest req;
    req.heap_bytes = options_.shard_base_bytes;
    auto create = ctx.rt->Create<Shard>(ctx, req, base);
    Result<Ref<Shard>> shard = co_await std::move(create);
    if (!shard.ok()) {
      co_return shard.status();
    }
    ShardInfo info;
    info.proclet = shard->id();
    info.begin = base;
    info.end = UINT64_MAX;
    auto add = index_.Call(ctx, [info](ShardIndexProclet& p) -> Task<Status> {
      co_return p.AddShard(info);
    });
    Status added = co_await std::move(add);
    if (!added.ok()) {
      // Lost a race: drop the orphan shard.
      auto destroy = ctx.rt->Destroy(ctx, shard->id());
      (void)co_await std::move(destroy);
      co_return Status::FailedPrecondition("another tail was added first");
    }
    co_return Status::Ok();
  }

  Ref<ShardIndexProclet> index_;
  ShardRouter router_;
  Options options_;
};

}  // namespace quicksand

#endif  // QUICKSAND_DS_SHARDED_VECTOR_H_
