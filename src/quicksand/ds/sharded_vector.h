// ShardedVector<T>: an append-ordered vector partitioned into granular
// memory proclets (§3.2, §4).
//
// Elements are keyed by their index. Each shard proclet owns a contiguous
// index range; the tail shard accepts appends until it reaches
// max_shard_bytes, at which point the appender seals it and adds a fresh
// tail — so data decomposes into independently schedulable memory proclets
// as it is loaded (this is how Fig. 2's input images spread across machines
// with free memory). Shards can further split/merge under the adaptive
// controller (§3.3).
//
// The handle is a cheap client-side object; any number of actors may hold
// copies. Routing goes through a cached index snapshot; stale routes get
// kOutOfRange/kFailedPrecondition from shards and refresh-retry.

#ifndef QUICKSAND_DS_SHARDED_VECTOR_H_
#define QUICKSAND_DS_SHARDED_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "quicksand/common/bytes.h"
#include "quicksand/common/status.h"
#include "quicksand/common/wire.h"
#include "quicksand/durability/checkpoint_manager.h"
#include "quicksand/durability/replication.h"
#include "quicksand/runtime/runtime.h"
#include "quicksand/sharding/shard_index.h"

namespace quicksand {

template <typename T>
class VectorShardProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kMemory;

  struct AppendResult {
    uint64_t index;
    int64_t shard_bytes;
    int64_t shard_count;
  };

  VectorShardProclet(const ProcletInit& init, uint64_t base)
      : ProcletBase(init), base_(base) {}
  // Restore/backup factory form; RestoreState supplies base_ and contents.
  explicit VectorShardProclet(const ProcletInit& init)
      : VectorShardProclet(init, 0) {}

  uint64_t base() const { return base_; }
  uint64_t end_index() const { return base_ + elements_.size(); }
  int64_t count() const { return static_cast<int64_t>(elements_.size()); }
  int64_t data_bytes() const { return data_bytes_; }
  bool sealed() const { return sealed_; }

  Result<AppendResult> Append(T value) {
    if (sealed_) {
      return Status::FailedPrecondition("shard is sealed");
    }
    const int64_t bytes = WireSizeOf(value);
    if (!TryChargeHeap(bytes)) {
      return Status::ResourceExhausted("host machine out of memory");
    }
    data_bytes_ += bytes;
    element_bytes_.push_back(bytes);
    const uint64_t index = base_ + elements_.size();
    if (replicated()) {
      RecordMutation(
          [index, value, bytes](ProcletBase& b) {
            return static_cast<VectorShardProclet&>(b).ApplyAppend(index, value,
                                                                   bytes);
          },
          bytes);
    } else {
      MarkDirty(bytes);
    }
    elements_.push_back(std::move(value));
    return AppendResult{index, data_bytes_, count()};
  }

  // Idempotent; returns the element count at seal time.
  int64_t Seal() {
    if (!sealed_) {
      sealed_ = true;
      RecordMutation(
          [](ProcletBase& b) {
            static_cast<VectorShardProclet&>(b).sealed_ = true;
            return Status::Ok();
          },
          kControlRecordBytes);
    }
    return count();
  }

  Result<T> Get(uint64_t index) const {
    if (index < base_ || index >= end_index()) {
      return Status::OutOfRange("index not in this shard");
    }
    return elements_[static_cast<size_t>(index - base_)];
  }

  Status Set(uint64_t index, T value) {
    if (index < base_ || index >= end_index()) {
      return Status::OutOfRange("index not in this shard");
    }
    const size_t slot = static_cast<size_t>(index - base_);
    const int64_t new_bytes = WireSizeOf(value);
    const int64_t delta = new_bytes - element_bytes_[slot];
    if (delta > 0 && !TryChargeHeap(delta)) {
      return Status::ResourceExhausted("host machine out of memory");
    }
    if (delta < 0) {
      ReleaseHeap(-delta);
    }
    data_bytes_ += delta;
    element_bytes_[slot] = new_bytes;
    if (replicated()) {
      RecordMutation(
          [index, value, new_bytes](ProcletBase& b) {
            return static_cast<VectorShardProclet&>(b).ApplySet(index, value,
                                                                new_bytes);
          },
          new_bytes);
    } else {
      MarkDirty(new_bytes);
    }
    elements_[slot] = std::move(value);
    return Status::Ok();
  }

  // Copies out up to `count` elements starting at `begin` (clamped to this
  // shard's range). Used by cross-shard reads and the prefetcher.
  Result<std::vector<T>> GetRange(uint64_t begin, uint64_t count) const {
    if (begin < base_ || begin >= end_index()) {
      return Status::OutOfRange("range start not in this shard");
    }
    const size_t first = static_cast<size_t>(begin - base_);
    const size_t n =
        std::min(static_cast<size_t>(count), elements_.size() - first);
    return std::vector<T>(elements_.begin() + static_cast<ptrdiff_t>(first),
                          elements_.begin() + static_cast<ptrdiff_t>(first + n));
  }

  // --- Maintenance (gate must be closed) -------------------------------------

  // Removes the upper half of the elements (for a split); the caller moves
  // them into a new shard. Returns {first_moved_index, elements, bytes}.
  struct SplitPayload {
    uint64_t first_index;
    std::vector<T> elements;
    std::vector<int64_t> element_bytes;
    int64_t total_bytes;
  };

  SplitPayload ExtractUpperHalf() {
    QS_CHECK_MSG(gate_closed(), "ExtractUpperHalf requires a closed gate");
    const size_t keep = elements_.size() / 2;
    SplitPayload payload;
    payload.first_index = base_ + keep;
    payload.total_bytes = 0;
    payload.elements.assign(std::make_move_iterator(elements_.begin() +
                                                    static_cast<ptrdiff_t>(keep)),
                            std::make_move_iterator(elements_.end()));
    payload.element_bytes.assign(element_bytes_.begin() + static_cast<ptrdiff_t>(keep),
                                 element_bytes_.end());
    elements_.resize(keep);
    element_bytes_.resize(keep);
    for (int64_t b : payload.element_bytes) {
      payload.total_bytes += b;
    }
    data_bytes_ -= payload.total_bytes;
    ReleaseHeap(payload.total_bytes);
    sealed_ = true;  // a split shard no longer grows in place
    return payload;
  }

  // Installs elements extracted from a donor (this shard must be empty).
  // `seal` is false when this shard takes over the growing tail range.
  // On failure the payload is left untouched so the caller can roll it back
  // into the donor — losing it would lose data.
  Status AdoptPayload(SplitPayload&& payload, bool seal = true) {
    QS_CHECK_MSG(gate_closed(), "AdoptPayload requires a closed gate");
    QS_CHECK(elements_.empty());
    QS_CHECK(payload.first_index == base_);
    if (!TryChargeHeap(payload.total_bytes)) {
      return Status::ResourceExhausted("host machine out of memory");
    }
    data_bytes_ = payload.total_bytes;
    elements_ = std::move(payload.elements);
    element_bytes_ = std::move(payload.element_bytes);
    sealed_ = seal;
    return Status::Ok();
  }

  // Appends a right-neighbor's elements (for a merge). Pre: `payload` starts
  // exactly at end_index(). On failure the payload is left untouched.
  Status AbsorbRightNeighbor(SplitPayload&& payload) {
    QS_CHECK_MSG(gate_closed(), "AbsorbRightNeighbor requires a closed gate");
    QS_CHECK(payload.first_index == end_index());
    if (!TryChargeHeap(payload.total_bytes)) {
      return Status::ResourceExhausted("host machine out of memory");
    }
    data_bytes_ += payload.total_bytes;
    for (auto& e : payload.elements) {
      elements_.push_back(std::move(e));
    }
    element_bytes_.insert(element_bytes_.end(), payload.element_bytes.begin(),
                          payload.element_bytes.end());
    return Status::Ok();
  }

  // Removes everything (for the donor side of a merge).
  SplitPayload ExtractAll() {
    QS_CHECK_MSG(gate_closed(), "ExtractAll requires a closed gate");
    SplitPayload payload;
    payload.first_index = base_;
    payload.elements = std::move(elements_);
    payload.element_bytes = std::move(element_bytes_);
    payload.total_bytes = data_bytes_;
    elements_.clear();
    element_bytes_.clear();
    ReleaseHeap(data_bytes_);
    data_bytes_ = 0;
    return payload;
  }

  // --- Durability -----------------------------------------------------------

  std::optional<StateImage> CaptureState() const override {
    VectorImage image{base_, sealed_, data_bytes_, elements_, element_bytes_,
                      heap_bytes()};
    return StateImage{std::any(std::move(image)), heap_bytes()};
  }

  Status RestoreState(const StateImage& image) override {
    const VectorImage* img = std::any_cast<VectorImage>(&image.data);
    if (img == nullptr) {
      return Status::InvalidArgument("image is not a VectorShardProclet image");
    }
    if (!TryChargeHeap(img->heap_bytes)) {
      return Status::ResourceExhausted("restore target is out of memory");
    }
    base_ = img->base;
    sealed_ = img->sealed;
    data_bytes_ = img->data_bytes;
    elements_ = img->elements;
    element_bytes_ = img->element_bytes;
    return Status::Ok();
  }

 private:
  struct VectorImage {
    uint64_t base;
    bool sealed;
    int64_t data_bytes;
    std::vector<T> elements;
    std::vector<int64_t> element_bytes;
    int64_t heap_bytes;
  };

  // Wire size of a logged control record (seal).
  static constexpr int64_t kControlRecordBytes = 16;

  // Mutation-log replay targets (run on the backup object; see
  // ProcletBase::RecordMutation). Tolerant of duplicate delivery.
  Status ApplyAppend(uint64_t index, const T& value, int64_t bytes) {
    if (index < base_) {
      return Status::Internal("append replay below shard base");
    }
    const size_t slot = static_cast<size_t>(index - base_);
    if (slot < elements_.size()) {
      return ApplySet(index, value, bytes);  // duplicate delivery
    }
    if (slot != elements_.size()) {
      return Status::Internal("append replay would leave a gap");
    }
    if (!TryChargeHeap(bytes)) {
      return Status::ResourceExhausted("backup machine out of memory");
    }
    data_bytes_ += bytes;
    element_bytes_.push_back(bytes);
    elements_.push_back(value);
    return Status::Ok();
  }

  Status ApplySet(uint64_t index, const T& value, int64_t bytes) {
    if (index < base_ ||
        index - base_ >= static_cast<uint64_t>(elements_.size())) {
      return Status::Internal("set replay outside shard range");
    }
    const size_t slot = static_cast<size_t>(index - base_);
    const int64_t delta = bytes - element_bytes_[slot];
    if (delta > 0 && !TryChargeHeap(delta)) {
      return Status::ResourceExhausted("backup machine out of memory");
    }
    if (delta < 0) {
      ReleaseHeap(-delta);
    }
    data_bytes_ += delta;
    element_bytes_[slot] = bytes;
    elements_[slot] = value;
    return Status::Ok();
  }

  uint64_t base_;
  bool sealed_ = false;
  int64_t data_bytes_ = 0;
  std::vector<T> elements_;
  std::vector<int64_t> element_bytes_;
};

template <typename T>
class ShardedVector {
 public:
  using Shard = VectorShardProclet<T>;

  struct Options {
    // Shard size cap, derived from the target migration latency (§3.3).
    int64_t max_shard_bytes = 16 * kMiB;
    // Initial heap charge per shard proclet (metadata).
    int64_t shard_base_bytes = 4096;
    // Durability (optional; not owned). When replication is set every new
    // shard and the index get a primary-backup replica; otherwise, when
    // checkpoints is set, they get periodic checkpoints. Either way a lost
    // shard becomes a bounded stall (restore_stall) while the
    // RecoveryCoordinator restores it, instead of an immediate DataLoss.
    ReplicationManager* replication = nullptr;
    CheckpointManager* checkpoints = nullptr;
    Duration restore_stall = Duration::Millis(50);
  };

  ShardedVector() = default;

  static Task<Result<ShardedVector>> Create(Ctx ctx, Options options = Options{}) {
    PlacementRequest index_req;
    index_req.heap_bytes = options.shard_base_bytes;
    auto create_index = ctx.rt->Create<ShardIndexProclet>(ctx, index_req);
    Result<Ref<ShardIndexProclet>> index = co_await std::move(create_index);
    if (!index.ok()) {
      co_return index.status();
    }
    ShardedVector vec;
    vec.index_ = *index;
    vec.router_ = ShardRouter(*index);
    vec.options_ = options;
    Status protected_index =
        co_await vec.template ProtectNew<ShardIndexProclet>(ctx, index->id());
    if (!protected_index.ok()) {
      co_return protected_index;
    }
    // First tail shard covering [0, inf).
    Status grown = co_await vec.AddTail(ctx, 0);
    if (!grown.ok()) {
      co_return grown;
    }
    co_return vec;
  }

  Ref<ShardIndexProclet> index() const { return index_; }
  ShardRouter& router() { return router_; }
  const Options& options() const { return options_; }

  // Appends an element; returns its index.
  Task<Result<uint64_t>> PushBack(Ctx ctx, T value) {
    const int64_t request_bytes = WireSizeOf(value);
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Result<ShardInfo> tail = co_await RouteTail(ctx);
      if (!tail.ok()) {
        co_return tail.status();
      }
      Ref<Shard> shard(ctx.rt, tail->proclet);
      using AppendResult = typename Shard::AppendResult;
      // Named task: see the GCC 12 note in sim/task.h.
      auto call = shard.Call(
          ctx,
          [value](Shard& s) mutable -> Task<Result<AppendResult>> {
            co_return s.Append(std::move(value));
          },
          request_bytes);
      std::optional<Result<AppendResult>> appended;
      bool shard_lost = false;
      try {
        appended.emplace(co_await std::move(call));
      } catch (const ProcletGoneError&) {
        router_.Invalidate();
        continue;
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        shard_lost = true;  // co_await is illegal in a handler; stall below
      }
      if (shard_lost) {
        const bool restored = co_await AwaitShardRestore(ctx, tail->proclet);
        if (!restored) {
          co_return Status::DataLoss(LostShardMessage(*tail));
        }
        continue;
      }
      if (!appended->ok()) {
        if (appended->status().code() == StatusCode::kFailedPrecondition) {
          // Tail sealed under us: someone is growing; refresh and retry.
          (void)co_await RefreshSafe(ctx);
          continue;
        }
        co_return appended->status();
      }
      if ((*appended)->shard_bytes >= options_.max_shard_bytes) {
        Status grown = co_await GrowTail(ctx, *tail);
        if (!grown.ok() && grown.code() != StatusCode::kFailedPrecondition) {
          co_return grown;
        }
      }
      co_return (*appended)->index;
    }
    co_return Status::Aborted("too many append retries");
  }

  Task<Result<T>> Get(Ctx ctx, uint64_t index) {
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Result<ShardInfo> info = co_await RouteSafe(ctx, index);
      if (!info.ok()) {
        co_return Status::OutOfRange("index beyond vector");
      }
      Ref<Shard> shard(ctx.rt, info->proclet);
      auto call = shard.Call(ctx, [index](Shard& s) -> Task<Result<T>> {
        co_return s.Get(index);
      });
      std::optional<Result<T>> value;
      bool shard_lost = false;
      try {
        value.emplace(co_await std::move(call));
      } catch (const ProcletGoneError&) {
        router_.Invalidate();
        continue;
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        shard_lost = true;
      }
      if (shard_lost) {
        const bool restored = co_await AwaitShardRestore(ctx, info->proclet);
        if (!restored) {
          co_return Status::DataLoss(LostShardMessage(*info));
        }
        continue;
      }
      if (!value->ok() && value->status().code() == StatusCode::kOutOfRange) {
        if (info->end == UINT64_MAX) {
          // The tail said out-of-range: the index really is past the end.
          co_return value->status();
        }
        router_.Invalidate();  // stale route after a split/merge
        continue;
      }
      co_return std::move(*value);
    }
    co_return Status::Aborted("too many read retries");
  }

  Task<Status> Set(Ctx ctx, uint64_t index, T value) {
    const int64_t request_bytes = WireSizeOf(value);
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Result<ShardInfo> info = co_await RouteSafe(ctx, index);
      if (!info.ok()) {
        co_return Status::OutOfRange("index beyond vector");
      }
      Ref<Shard> shard(ctx.rt, info->proclet);
      auto call = shard.Call(
          ctx,
          [index, value](Shard& s) mutable -> Task<Status> {
            co_return s.Set(index, std::move(value));
          },
          request_bytes);
      Status status = Status::Internal("unset");
      bool shard_lost = false;
      try {
        status = co_await std::move(call);
      } catch (const ProcletGoneError&) {
        router_.Invalidate();
        continue;
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        shard_lost = true;
      }
      if (shard_lost) {
        const bool restored = co_await AwaitShardRestore(ctx, info->proclet);
        if (!restored) {
          co_return Status::DataLoss(LostShardMessage(*info));
        }
        continue;
      }
      if (status.code() == StatusCode::kOutOfRange) {
        if (info->end == UINT64_MAX) {
          co_return status;  // genuinely past the end
        }
        router_.Invalidate();
        continue;
      }
      co_return status;
    }
    co_return Status::Aborted("too many write retries");
  }

  // Batched cross-shard read of [begin, begin+count) (clamped at the end of
  // the vector). The unit of remote transfer is a whole per-shard range — the
  // batching that makes remote iteration cheap.
  Task<Result<std::vector<T>>> GetRange(Ctx ctx, uint64_t begin, uint64_t count) {
    std::vector<T> out;
    uint64_t cursor = begin;
    int stale_retries = 0;
    while (count > 0) {
      Result<ShardInfo> info = co_await RouteSafe(ctx, cursor);
      if (!info.ok()) {
        break;  // past the end
      }
      Ref<Shard> shard(ctx.rt, info->proclet);
      const uint64_t ask = count;
      auto call = shard.Call(
          ctx, [cursor, ask](Shard& s) -> Task<Result<std::vector<T>>> {
            co_return s.GetRange(cursor, ask);
          });
      std::optional<Result<std::vector<T>>> chunk;
      bool shard_lost = false;
      try {
        chunk.emplace(co_await std::move(call));
      } catch (const ProcletGoneError&) {
        router_.Invalidate();
        if (++stale_retries > kMaxAttempts) {
          co_return Status::Aborted("too many range-read retries");
        }
        continue;
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        shard_lost = true;
      }
      if (shard_lost) {
        const bool restored = co_await AwaitShardRestore(ctx, info->proclet);
        if (!restored) {
          co_return Status::DataLoss(LostShardMessage(*info));
        }
        if (++stale_retries > kMaxAttempts) {
          co_return Status::Aborted("too many range-read retries");
        }
        continue;
      }
      if (!chunk->ok()) {
        if (chunk->status().code() == StatusCode::kOutOfRange) {
          if (info->end == UINT64_MAX) {
            break;  // reading past the live end of the vector
          }
          router_.Invalidate();
          if (++stale_retries > kMaxAttempts) {
            co_return Status::Aborted("too many range-read retries");
          }
          continue;
        }
        co_return chunk->status();
      }
      std::vector<T>& data = **chunk;
      if (data.empty()) {
        break;  // tail shard has no elements at cursor yet
      }
      cursor += data.size();
      count -= static_cast<uint64_t>(data.size());
      for (auto& e : data) {
        out.push_back(std::move(e));
      }
    }
    co_return out;
  }

  // Total element count (one index round trip).
  Task<Result<uint64_t>> Size(Ctx ctx) {
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Status refreshed = co_await RefreshSafe(ctx);
      if (!refreshed.ok()) {
        co_return refreshed;
      }
      // The index's counts are advisory; ask the tail shard for its live
      // count.
      uint64_t total = 0;
      bool retry = false;
      for (const ShardInfo& shard : router_.cached_shards()) {
        if (shard.end != UINT64_MAX) {
          total = std::max(total, shard.end);
          continue;
        }
        Ref<Shard> tail(ctx.rt, shard.proclet);
        auto call = tail.Call(ctx, [](Shard& s) -> Task<uint64_t> {
          co_return s.end_index();
        });
        uint64_t end_index = 0;
        bool shard_lost = false;
        try {
          end_index = co_await std::move(call);
        } catch (const ProcletLostError&) {
          router_.Invalidate();
          shard_lost = true;
        }
        if (shard_lost) {
          const bool restored = co_await AwaitShardRestore(ctx, shard.proclet);
          if (!restored) {
            co_return Status::DataLoss(LostShardMessage(shard));
          }
          retry = true;
          break;
        }
        total = std::max(total, end_index);
      }
      if (retry) {
        continue;
      }
      co_return total;
    }
    co_return Status::Aborted("too many size retries");
  }

 private:
  static constexpr int kMaxAttempts = 16;

  // Unrecoverable loss: report the exact index range that died with the
  // machine instead of retrying forever.
  static std::string LostShardMessage(const ShardInfo& info) {
    const std::string end = info.end == UINT64_MAX ? std::string("end")
                                                   : std::to_string(info.end);
    return "elements [" + std::to_string(info.begin) + ", " + end +
           ") lost to a machine failure";
  }

  // The tail is the shard whose range extends to UINT64_MAX. Between a
  // concurrent grower's seal and its new-tail insertion the index briefly
  // has no tail; wait out that window.
  Task<Result<ShardInfo>> RouteTail(Ctx ctx) {
    if (router_.cached_shards().empty()) {
      Status refreshed = co_await RefreshSafe(ctx);
      if (!refreshed.ok()) {
        co_return refreshed;
      }
    }
    for (int i = 0; i < kMaxAttempts; ++i) {
      for (const ShardInfo& shard : router_.cached_shards()) {
        if (shard.end == UINT64_MAX) {
          co_return shard;
        }
      }
      co_await ctx.rt->sim().Sleep(Duration::Micros(20));
      Status refreshed = co_await RefreshSafe(ctx);
      if (!refreshed.ok()) {
        co_return refreshed;
      }
    }
    co_return Status::Internal("sharded vector has no tail shard");
  }

  // Seals `tail` and installs a fresh tail after it. Concurrent growers are
  // resolved by the index: losers see FailedPrecondition and retry.
  Task<Status> GrowTail(Ctx ctx, ShardInfo tail) {
    Ref<Shard> shard(ctx.rt, tail.proclet);
    auto seal = shard.Call(ctx, [](Shard& s) -> Task<int64_t> { co_return s.Seal(); });
    int64_t sealed_count = 0;
    bool tail_lost = false;
    try {
      sealed_count = co_await std::move(seal);
    } catch (const ProcletGoneError&) {
      router_.Invalidate();
      co_return Status::FailedPrecondition("tail vanished during grow");
    } catch (const ProcletLostError&) {
      router_.Invalidate();
      tail_lost = true;
    }
    if (tail_lost) {
      const bool restored = co_await AwaitShardRestore(ctx, tail.proclet);
      if (!restored) {
        co_return Status::DataLoss(LostShardMessage(tail));
      }
      // FailedPrecondition is the "retry the append" signal to PushBack.
      co_return Status::FailedPrecondition("tail restored during grow; retry");
    }
    const uint64_t boundary = tail.begin + static_cast<uint64_t>(sealed_count);

    // Shrink the sealed tail's range in the index.
    ShardInfo sealed_info = tail;
    sealed_info.end = boundary;
    sealed_info.count = sealed_count;
    auto update = index_.Call(ctx, [sealed_info](ShardIndexProclet& p) -> Task<Status> {
      co_return p.UpdateShard(sealed_info);
    });
    Status updated = Status::Internal("unset");
    bool index_lost = false;
    try {
      updated = co_await std::move(update);
    } catch (const ProcletLostError&) {
      router_.Invalidate();
      index_lost = true;
    }
    if (index_lost) {
      const bool restored = co_await AwaitShardRestore(ctx, index_.id());
      if (!restored) {
        co_return Status::DataLoss("shard index lost to a machine failure");
      }
      co_return Status::FailedPrecondition("index restored during grow; retry");
    }
    if (!updated.ok()) {
      // Another appender already grew the tail.
      (void)co_await RefreshSafe(ctx);
      co_return Status::FailedPrecondition("tail already grown");
    }
    Status added = co_await AddTail(ctx, boundary);
    (void)co_await RefreshSafe(ctx);
    co_return added;
  }

  Task<Status> AddTail(Ctx ctx, uint64_t base) {
    PlacementRequest req;
    req.heap_bytes = options_.shard_base_bytes;
    auto create = ctx.rt->Create<Shard>(ctx, req, base);
    Result<Ref<Shard>> shard = co_await std::move(create);
    if (!shard.ok()) {
      co_return shard.status();
    }
    ShardInfo info;
    info.proclet = shard->id();
    info.begin = base;
    info.end = UINT64_MAX;
    auto add = index_.Call(ctx, [info](ShardIndexProclet& p) -> Task<Status> {
      co_return p.AddShard(info);
    });
    Status added = Status::Internal("unset");
    bool index_lost = false;
    try {
      added = co_await std::move(add);
    } catch (const ProcletLostError&) {
      router_.Invalidate();
      index_lost = true;
    }
    if (index_lost) {
      const bool restored = co_await AwaitShardRestore(ctx, index_.id());
      auto destroy = ctx.rt->Destroy(ctx, shard->id());
      (void)co_await std::move(destroy);
      if (!restored) {
        co_return Status::DataLoss("shard index lost to a machine failure");
      }
      co_return Status::FailedPrecondition("index restored mid-grow; retry");
    }
    if (!added.ok()) {
      // Lost a race: drop the orphan shard.
      auto destroy = ctx.rt->Destroy(ctx, shard->id());
      (void)co_await std::move(destroy);
      co_return Status::FailedPrecondition("another tail was added first");
    }
    co_return co_await ProtectNew<Shard>(ctx, shard->id());
  }

  // --- Durability helpers ---------------------------------------------------

  // Registers a freshly created proclet with the configured durability
  // service (replication preferred over checkpoints when both are set).
  template <typename P>
  Task<Status> ProtectNew(Ctx ctx, ProcletId id) {
    if (options_.replication != nullptr) {
      co_return co_await options_.replication->template ReplicateAs<P>(ctx, id);
    }
    if (options_.checkpoints != nullptr) {
      co_return co_await options_.checkpoints->template ProtectAs<P>(ctx, id);
    }
    co_return Status::Ok();
  }

  // Bounded stall while the recovery subsystem restores a lost proclet;
  // false when recovery is off or the deadline passes (the caller reports
  // DataLoss exactly as before the durability subsystem existed).
  Task<bool> AwaitShardRestore(Ctx ctx, ProcletId id) {
    if (!ctx.rt->recovery_enabled()) {
      co_return false;
    }
    co_return co_await ctx.rt->AwaitRestore(id, options_.restore_stall);
  }

  // Router refresh that survives a lost index proclet: stalls for the
  // restore, then re-pulls. DataLoss only when recovery cannot bring the
  // index back.
  Task<Status> RefreshSafe(Ctx ctx) {
    for (int i = 0; i < kMaxAttempts; ++i) {
      bool index_lost = false;
      try {
        co_await router_.Refresh(ctx);
      } catch (const ProcletGoneError&) {
        co_return Status::NotFound("shard index destroyed");
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        index_lost = true;
      }
      if (!index_lost) {
        co_return Status::Ok();
      }
      const bool restored = co_await AwaitShardRestore(ctx, index_.id());
      if (!restored) {
        co_return Status::DataLoss("shard index lost to a machine failure");
      }
    }
    co_return Status::Aborted("too many index refresh retries");
  }

  // Route through the cache with the same index-loss handling.
  Task<Result<ShardInfo>> RouteSafe(Ctx ctx, uint64_t key) {
    for (int i = 0; i < kMaxAttempts; ++i) {
      std::optional<Result<ShardInfo>> routed;
      bool index_lost = false;
      try {
        routed.emplace(co_await router_.Route(ctx, key));
      } catch (const ProcletGoneError&) {
        co_return Status::NotFound("shard index destroyed");
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        index_lost = true;
      }
      if (!index_lost) {
        co_return std::move(*routed);
      }
      const bool restored = co_await AwaitShardRestore(ctx, index_.id());
      if (!restored) {
        co_return Status::DataLoss("shard index lost to a machine failure");
      }
    }
    co_return Status::Aborted("too many route retries");
  }

  Ref<ShardIndexProclet> index_;
  ShardRouter router_;
  Options options_;
};

}  // namespace quicksand

#endif  // QUICKSAND_DS_SHARDED_VECTOR_H_
