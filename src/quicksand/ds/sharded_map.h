// ShardedMap<K, V>: an associative container partitioned into memory
// proclets by a uint64 projection of the key (§3.2).
//
// The projection (default: std::hash) maps keys onto the uint64 sharding
// space; each shard proclet owns a half-open projection range and stores its
// entries in an ordered map keyed by (projection, key). The map starts as a
// single shard covering the whole space; the adaptive controller (§3.3)
// splits shards whose heap exceeds the configured maximum at their median
// projection, and merges adjacent undersized shards — the hash-table
// shrink scenario the paper describes.
//
// ShardedSet<K> is the value-less specialization at the bottom of this file.

#ifndef QUICKSAND_DS_SHARDED_MAP_H_
#define QUICKSAND_DS_SHARDED_MAP_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "quicksand/common/bytes.h"
#include "quicksand/common/status.h"
#include "quicksand/common/wire.h"
#include "quicksand/durability/checkpoint_manager.h"
#include "quicksand/durability/replication.h"
#include "quicksand/runtime/runtime.h"
#include "quicksand/sharding/shard_index.h"

namespace quicksand {

template <typename K>
struct DefaultShardProjection {
  uint64_t operator()(const K& key) const { return std::hash<K>{}(key); }
};

template <typename K, typename V, typename Proj = DefaultShardProjection<K>>
class MapShardProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kMemory;

  MapShardProclet(const ProcletInit& init, uint64_t begin, uint64_t end)
      : ProcletBase(init), begin_(begin), end_(end) {}
  // Restore/backup factory form; RestoreState supplies the range and
  // contents (an empty [0, 0) range owns nothing until then).
  explicit MapShardProclet(const ProcletInit& init)
      : MapShardProclet(init, 0, 0) {}

  uint64_t begin() const { return begin_; }
  uint64_t end() const { return end_; }
  int64_t count() const { return static_cast<int64_t>(entries_.size()); }
  int64_t data_bytes() const { return data_bytes_; }

  Status Put(K key, V value) {
    const uint64_t proj = Proj{}(key);
    if (!Owns(proj)) {
      return Status::OutOfRange("key projects outside this shard");
    }
    const int64_t bytes = WireSizeOf(key) + WireSizeOf(value);
    auto it = entries_.find(EntryKey{proj, key});
    const int64_t old_bytes = it == entries_.end() ? 0 : it->second.bytes;
    const int64_t delta = bytes - old_bytes;
    if (delta > 0 && !TryChargeHeap(delta)) {
      return Status::ResourceExhausted("host machine out of memory");
    }
    if (delta < 0) {
      ReleaseHeap(-delta);
    }
    data_bytes_ += delta;
    if (replicated()) {
      // Replay calls Put on the backup; the backup has no sink attached, so
      // the log does not recurse.
      RecordMutation(
          [key, value](ProcletBase& b) {
            return static_cast<MapShardProclet&>(b).Put(key, value);
          },
          bytes);
    } else {
      MarkDirty(bytes);
    }
    entries_[EntryKey{proj, std::move(key)}] = Entry{std::move(value), bytes};
    return Status::Ok();
  }

  Result<V> Get(const K& key) const {
    const uint64_t proj = Proj{}(key);
    if (!Owns(proj)) {
      return Status::OutOfRange("key projects outside this shard");
    }
    auto it = entries_.find(EntryKey{proj, key});
    if (it == entries_.end()) {
      return Status::NotFound("no such key");
    }
    return it->second.value;
  }

  // kNotFound if absent; kOutOfRange if wrongly routed.
  Status Erase(const K& key) {
    const uint64_t proj = Proj{}(key);
    if (!Owns(proj)) {
      return Status::OutOfRange("key projects outside this shard");
    }
    auto it = entries_.find(EntryKey{proj, key});
    if (it == entries_.end()) {
      return Status::NotFound("no such key");
    }
    ReleaseHeap(it->second.bytes);
    data_bytes_ -= it->second.bytes;
    entries_.erase(it);
    if (replicated()) {
      RecordMutation(
          [key](ProcletBase& b) {
            // Idempotent: a duplicate delivery finds the key already gone.
            Status erased = static_cast<MapShardProclet&>(b).Erase(key);
            return erased.code() == StatusCode::kNotFound ? Status::Ok()
                                                          : erased;
          },
          WireSizeOf(key));
    } else {
      MarkDirty(WireSizeOf(key));
    }
    return Status::Ok();
  }

  bool Contains(const K& key) const {
    const uint64_t proj = Proj{}(key);
    return Owns(proj) && entries_.count(EntryKey{proj, key}) > 0;
  }

  // Copies out all entries (per-shard scan unit for iteration).
  std::vector<std::pair<K, V>> Items() const {
    std::vector<std::pair<K, V>> out;
    out.reserve(entries_.size());
    for (const auto& [ekey, entry] : entries_) {
      out.emplace_back(ekey.key, entry.value);
    }
    return out;
  }

  // --- Maintenance (gate must be closed) -------------------------------------

  struct SplitPayload {
    uint64_t split_point;  // new shard owns [split_point, old end)
    uint64_t range_end;
    std::vector<std::tuple<K, V, int64_t>> entries;  // key, value, bytes
    int64_t total_bytes;
  };

  // Splits at the median projection. Fails if all entries share one
  // projection (nothing to split on).
  Result<SplitPayload> ExtractUpperHalf() {
    QS_CHECK_MSG(gate_closed(), "ExtractUpperHalf requires a closed gate");
    if (entries_.size() < 2) {
      return Status::FailedPrecondition("too few entries to split");
    }
    auto mid = entries_.begin();
    std::advance(mid, static_cast<ptrdiff_t>(entries_.size() / 2));
    uint64_t split_point = mid->first.proj;
    if (split_point == begin_) {
      // Skip forward to the first projection > begin_.
      while (mid != entries_.end() && mid->first.proj == begin_) {
        ++mid;
      }
      if (mid == entries_.end()) {
        return Status::FailedPrecondition("all entries share one projection");
      }
      split_point = mid->first.proj;
    }
    SplitPayload payload;
    payload.split_point = split_point;
    payload.range_end = end_;
    payload.total_bytes = 0;
    auto first_moved = entries_.lower_bound(EntryKey{split_point, K{}});
    for (auto it = first_moved; it != entries_.end(); ++it) {
      payload.total_bytes += it->second.bytes;
      payload.entries.emplace_back(it->first.key, std::move(it->second.value),
                                   it->second.bytes);
    }
    entries_.erase(first_moved, entries_.end());
    ReleaseHeap(payload.total_bytes);
    data_bytes_ -= payload.total_bytes;
    end_ = split_point;
    return payload;
  }

  // Installs a split payload into this (fresh) shard. On failure the payload
  // is left untouched so the caller can roll it back into the donor.
  Status AdoptPayload(SplitPayload&& payload) {
    QS_CHECK_MSG(gate_closed(), "AdoptPayload requires a closed gate");
    QS_CHECK(payload.split_point == begin_ && payload.range_end == end_);
    if (!TryChargeHeap(payload.total_bytes)) {
      return Status::ResourceExhausted("host machine out of memory");
    }
    data_bytes_ += payload.total_bytes;
    for (auto& [key, value, bytes] : payload.entries) {
      const uint64_t proj = Proj{}(key);
      entries_[EntryKey{proj, std::move(key)}] = Entry{std::move(value), bytes};
    }
    retired_ = false;  // a merge rollback re-animates the donor
    return Status::Ok();
  }

  // Removes everything and widens nothing (merge donor side). The shard is
  // *retired*: until destroyed (or restored by a rollback AdoptPayload) it
  // answers every request with kOutOfRange, so clients with stale routes
  // refresh instead of trusting a false NotFound.
  SplitPayload ExtractAll() {
    QS_CHECK_MSG(gate_closed(), "ExtractAll requires a closed gate");
    SplitPayload payload;
    payload.split_point = begin_;
    payload.range_end = end_;
    payload.total_bytes = data_bytes_;
    for (auto& [ekey, entry] : entries_) {
      payload.entries.emplace_back(ekey.key, std::move(entry.value), entry.bytes);
    }
    entries_.clear();
    ReleaseHeap(data_bytes_);
    data_bytes_ = 0;
    retired_ = true;
    return payload;
  }

  // Absorbs the right neighbor's payload and takes over its range. On
  // failure the payload is left untouched (the caller re-adopts it into the
  // donor).
  Status AbsorbRightNeighbor(SplitPayload&& payload) {
    QS_CHECK_MSG(gate_closed(), "AbsorbRightNeighbor requires a closed gate");
    QS_CHECK(payload.split_point == end_);
    if (!TryChargeHeap(payload.total_bytes)) {
      return Status::ResourceExhausted("host machine out of memory");
    }
    data_bytes_ += payload.total_bytes;
    end_ = payload.range_end;
    for (auto& [key, value, bytes] : payload.entries) {
      const uint64_t proj = Proj{}(key);
      entries_[EntryKey{proj, std::move(key)}] = Entry{std::move(value), bytes};
    }
    return Status::Ok();
  }

  // --- Durability -----------------------------------------------------------

  std::optional<StateImage> CaptureState() const override {
    MapImage image{begin_, end_, retired_, data_bytes_, entries_, heap_bytes()};
    return StateImage{std::any(std::move(image)), heap_bytes()};
  }

  Status RestoreState(const StateImage& image) override {
    const MapImage* img = std::any_cast<MapImage>(&image.data);
    if (img == nullptr) {
      return Status::InvalidArgument("image is not a MapShardProclet image");
    }
    if (!TryChargeHeap(img->heap_bytes)) {
      return Status::ResourceExhausted("restore target is out of memory");
    }
    begin_ = img->begin;
    end_ = img->end;
    retired_ = img->retired;
    data_bytes_ = img->data_bytes;
    entries_ = img->entries;
    return Status::Ok();
  }

 private:
  struct EntryKey {
    uint64_t proj;
    K key;
    bool operator<(const EntryKey& other) const {
      if (proj != other.proj) {
        return proj < other.proj;
      }
      return key < other.key;
    }
  };

  struct Entry {
    V value;
    int64_t bytes = 0;
  };

  struct MapImage {
    uint64_t begin;
    uint64_t end;
    bool retired;
    int64_t data_bytes;
    std::map<EntryKey, Entry> entries;
    int64_t heap_bytes;
  };

  bool Owns(uint64_t proj) const {
    return !retired_ && proj >= begin_ && (proj < end_ || end_ == UINT64_MAX);
  }

  uint64_t begin_;
  uint64_t end_;  // UINT64_MAX means "through the top of the space"
  bool retired_ = false;
  int64_t data_bytes_ = 0;
  std::map<EntryKey, Entry> entries_;
};

template <typename K, typename V, typename Proj = DefaultShardProjection<K>>
class ShardedMap {
 public:
  using Shard = MapShardProclet<K, V, Proj>;

  struct Options {
    int64_t max_shard_bytes = 16 * kMiB;
    int64_t shard_base_bytes = 4096;
    // Durability (optional; not owned) — see ShardedVector::Options.
    ReplicationManager* replication = nullptr;
    CheckpointManager* checkpoints = nullptr;
    Duration restore_stall = Duration::Millis(50);
  };

  ShardedMap() = default;

  static Task<Result<ShardedMap>> Create(Ctx ctx, Options options = Options{}) {
    PlacementRequest index_req;
    index_req.heap_bytes = options.shard_base_bytes;
    auto create_index = ctx.rt->Create<ShardIndexProclet>(ctx, index_req);
    Result<Ref<ShardIndexProclet>> index = co_await std::move(create_index);
    if (!index.ok()) {
      co_return index.status();
    }
    ShardedMap map;
    map.index_ = *index;
    map.router_ = ShardRouter(*index);
    map.options_ = options;

    PlacementRequest shard_req;
    shard_req.heap_bytes = options.shard_base_bytes;
    auto create_shard =
        ctx.rt->Create<Shard>(ctx, shard_req, uint64_t{0}, UINT64_MAX);
    Result<Ref<Shard>> shard = co_await std::move(create_shard);
    if (!shard.ok()) {
      co_return shard.status();
    }
    ShardInfo info;
    info.proclet = shard->id();
    info.begin = 0;
    info.end = UINT64_MAX;
    auto add = map.index_.Call(ctx, [info](ShardIndexProclet& p) -> Task<Status> {
      co_return p.AddShard(info);
    });
    Status added = co_await std::move(add);
    if (!added.ok()) {
      co_return added;
    }
    Status protected_index =
        co_await map.template ProtectNew<ShardIndexProclet>(ctx, index->id());
    if (!protected_index.ok()) {
      co_return protected_index;
    }
    Status protected_shard =
        co_await map.template ProtectNew<Shard>(ctx, shard->id());
    if (!protected_shard.ok()) {
      co_return protected_shard;
    }
    co_return map;
  }

  Ref<ShardIndexProclet> index() const { return index_; }
  ShardRouter& router() { return router_; }
  const Options& options() const { return options_; }

  Task<Status> Put(Ctx ctx, K key, V value) {
    const uint64_t proj = Proj{}(key);
    const int64_t request_bytes = WireSizeOf(key) + WireSizeOf(value);
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Result<ShardInfo> info = co_await RouteSafe(ctx, proj);
      if (!info.ok()) {
        co_return info.status();
      }
      Ref<Shard> shard(ctx.rt, info->proclet);
      auto call = shard.Call(
          ctx,
          [key, value](Shard& s) mutable -> Task<Status> {
            co_return s.Put(std::move(key), std::move(value));
          },
          request_bytes);
      std::optional<Status> status;
      bool shard_lost = false;
      try {
        status.emplace(co_await std::move(call));
      } catch (const ProcletGoneError&) {
        router_.Invalidate();
        continue;
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        shard_lost = true;  // co_await is illegal in a handler; stall below
      }
      if (shard_lost) {
        const bool restored = co_await AwaitShardRestore(ctx, info->proclet);
        if (!restored) {
          co_return Status::DataLoss(LostShardMessage(*info));
        }
        continue;
      }
      if (status->code() == StatusCode::kOutOfRange) {
        router_.Invalidate();
        continue;
      }
      co_return *status;
    }
    co_return Status::Aborted("too many put retries");
  }

  Task<Result<V>> Get(Ctx ctx, K key) {
    const uint64_t proj = Proj{}(key);
    const int64_t request_bytes = WireSizeOf(key);
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Result<ShardInfo> info = co_await RouteSafe(ctx, proj);
      if (!info.ok()) {
        co_return info.status();
      }
      Ref<Shard> shard(ctx.rt, info->proclet);
      auto call = shard.Call(
          ctx, [key](Shard& s) -> Task<Result<V>> { co_return s.Get(key); },
          request_bytes);
      std::optional<Result<V>> value;
      bool shard_lost = false;
      try {
        value.emplace(co_await std::move(call));
      } catch (const ProcletGoneError&) {
        router_.Invalidate();
        continue;
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        shard_lost = true;
      }
      if (shard_lost) {
        const bool restored = co_await AwaitShardRestore(ctx, info->proclet);
        if (!restored) {
          co_return Status::DataLoss(LostShardMessage(*info));
        }
        continue;
      }
      if (!value->ok() && value->status().code() == StatusCode::kOutOfRange) {
        router_.Invalidate();
        continue;
      }
      co_return std::move(*value);
    }
    co_return Status::Aborted("too many get retries");
  }

  Task<Status> Erase(Ctx ctx, K key) {
    const uint64_t proj = Proj{}(key);
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Result<ShardInfo> info = co_await RouteSafe(ctx, proj);
      if (!info.ok()) {
        co_return info.status();
      }
      Ref<Shard> shard(ctx.rt, info->proclet);
      auto call = shard.Call(ctx, [key](Shard& s) -> Task<Status> {
        co_return s.Erase(key);
      });
      std::optional<Status> status;
      bool shard_lost = false;
      try {
        status.emplace(co_await std::move(call));
      } catch (const ProcletGoneError&) {
        router_.Invalidate();
        continue;
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        shard_lost = true;
      }
      if (shard_lost) {
        const bool restored = co_await AwaitShardRestore(ctx, info->proclet);
        if (!restored) {
          co_return Status::DataLoss(LostShardMessage(*info));
        }
        continue;
      }
      if (status->code() == StatusCode::kOutOfRange) {
        router_.Invalidate();
        continue;
      }
      co_return *status;
    }
    co_return Status::Aborted("too many erase retries");
  }

  Task<Result<bool>> Contains(Ctx ctx, K key) {
    auto get = Get(ctx, std::move(key));
    Result<V> value = co_await std::move(get);
    if (value.ok()) {
      co_return true;
    }
    if (value.status().code() == StatusCode::kNotFound) {
      co_return false;
    }
    co_return value.status();
  }

  Task<Result<int64_t>> Size(Ctx ctx) {
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Status refreshed = co_await RefreshSafe(ctx);
      if (!refreshed.ok()) {
        co_return refreshed;
      }
      int64_t total = 0;
      bool retry = false;
      for (const ShardInfo& info : router_.cached_shards()) {
        Ref<Shard> shard(ctx.rt, info.proclet);
        auto call = shard.Call(ctx, [](Shard& s) -> Task<int64_t> {
          co_return s.count();
        });
        bool shard_lost = false;
        try {
          total += co_await std::move(call);
        } catch (const ProcletGoneError&) {
          router_.Invalidate();
          co_return Status::Aborted("shard set changed during size scan");
        } catch (const ProcletLostError&) {
          router_.Invalidate();
          shard_lost = true;
        }
        if (shard_lost) {
          const bool restored = co_await AwaitShardRestore(ctx, info.proclet);
          if (!restored) {
            co_return Status::DataLoss(LostShardMessage(info));
          }
          retry = true;
          break;
        }
      }
      if (retry) {
        continue;
      }
      co_return total;
    }
    co_return Status::Aborted("too many size retries");
  }

  // Copies out every entry, shard by shard (iteration primitive).
  Task<Result<std::vector<std::pair<K, V>>>> Items(Ctx ctx) {
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Status refreshed = co_await RefreshSafe(ctx);
      if (!refreshed.ok()) {
        co_return refreshed;
      }
      std::vector<std::pair<K, V>> out;
      bool retry = false;
      for (const ShardInfo& info : router_.cached_shards()) {
        Ref<Shard> shard(ctx.rt, info.proclet);
        auto call = shard.Call(ctx, [](Shard& s) -> Task<std::vector<std::pair<K, V>>> {
          co_return s.Items();
        });
        bool shard_lost = false;
        try {
          std::vector<std::pair<K, V>> items = co_await std::move(call);
          for (auto& item : items) {
            out.push_back(std::move(item));
          }
        } catch (const ProcletGoneError&) {
          router_.Invalidate();
          co_return Status::Aborted("shard set changed during scan");
        } catch (const ProcletLostError&) {
          router_.Invalidate();
          shard_lost = true;
        }
        if (shard_lost) {
          const bool restored = co_await AwaitShardRestore(ctx, info.proclet);
          if (!restored) {
            co_return Status::DataLoss(LostShardMessage(info));
          }
          retry = true;
          break;
        }
      }
      if (retry) {
        continue;
      }
      co_return out;
    }
    co_return Status::Aborted("too many scan retries");
  }

 private:
  static constexpr int kMaxAttempts = 16;

  // Unrecoverable loss: report the projection range whose entries died with
  // the machine instead of retrying forever.
  static std::string LostShardMessage(const ShardInfo& info) {
    return "keys projecting to [" + std::to_string(info.begin) + ", " +
           std::to_string(info.end) + ") lost to a machine failure";
  }

  // --- Durability helpers (see ShardedVector for commentary) ----------------

  template <typename P>
  Task<Status> ProtectNew(Ctx ctx, ProcletId id) {
    if (options_.replication != nullptr) {
      co_return co_await options_.replication->template ReplicateAs<P>(ctx, id);
    }
    if (options_.checkpoints != nullptr) {
      co_return co_await options_.checkpoints->template ProtectAs<P>(ctx, id);
    }
    co_return Status::Ok();
  }

  Task<bool> AwaitShardRestore(Ctx ctx, ProcletId id) {
    if (!ctx.rt->recovery_enabled()) {
      co_return false;
    }
    co_return co_await ctx.rt->AwaitRestore(id, options_.restore_stall);
  }

  Task<Status> RefreshSafe(Ctx ctx) {
    for (int i = 0; i < kMaxAttempts; ++i) {
      bool index_lost = false;
      try {
        co_await router_.Refresh(ctx);
      } catch (const ProcletGoneError&) {
        co_return Status::NotFound("shard index destroyed");
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        index_lost = true;
      }
      if (!index_lost) {
        co_return Status::Ok();
      }
      const bool restored = co_await AwaitShardRestore(ctx, index_.id());
      if (!restored) {
        co_return Status::DataLoss("shard index lost to a machine failure");
      }
    }
    co_return Status::Aborted("too many index refresh retries");
  }

  Task<Result<ShardInfo>> RouteSafe(Ctx ctx, uint64_t key) {
    for (int i = 0; i < kMaxAttempts; ++i) {
      std::optional<Result<ShardInfo>> routed;
      bool index_lost = false;
      try {
        routed.emplace(co_await router_.Route(ctx, key));
      } catch (const ProcletGoneError&) {
        co_return Status::NotFound("shard index destroyed");
      } catch (const ProcletLostError&) {
        router_.Invalidate();
        index_lost = true;
      }
      if (!index_lost) {
        co_return std::move(*routed);
      }
      const bool restored = co_await AwaitShardRestore(ctx, index_.id());
      if (!restored) {
        co_return Status::DataLoss("shard index lost to a machine failure");
      }
    }
    co_return Status::Aborted("too many route retries");
  }

  Ref<ShardIndexProclet> index_;
  ShardRouter router_;
  Options options_;
};

// ShardedSet<K>: membership-only wrapper over ShardedMap.
template <typename K, typename Proj = DefaultShardProjection<K>>
class ShardedSet {
 public:
  struct Options {
    int64_t max_shard_bytes = 16 * kMiB;
  };

  ShardedSet() = default;

  static Task<Result<ShardedSet>> Create(Ctx ctx, Options options = Options{}) {
    typename ShardedMap<K, char, Proj>::Options map_options;
    map_options.max_shard_bytes = options.max_shard_bytes;
    auto create = ShardedMap<K, char, Proj>::Create(ctx, map_options);
    Result<ShardedMap<K, char, Proj>> map = co_await std::move(create);
    if (!map.ok()) {
      co_return map.status();
    }
    ShardedSet set;
    set.map_ = *map;
    co_return set;
  }

  Task<Status> Insert(Ctx ctx, K key) { return map_.Put(ctx, std::move(key), 0); }
  Task<Status> Erase(Ctx ctx, K key) { return map_.Erase(ctx, std::move(key)); }
  Task<Result<bool>> Contains(Ctx ctx, K key) {
    return map_.Contains(ctx, std::move(key));
  }
  Task<Result<int64_t>> Size(Ctx ctx) { return map_.Size(ctx); }

  ShardedMap<K, char, Proj>& underlying_map() { return map_; }

 private:
  ShardedMap<K, char, Proj> map_;
};

}  // namespace quicksand

#endif  // QUICKSAND_DS_SHARDED_MAP_H_
