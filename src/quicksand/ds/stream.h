// VectorStream<T>: sequential iteration over a ShardedVector with
// prefetching (§3.2: "iterators provide rich semantic hints, enabling
// effective data prefetching to reduce the cost of accessing remote
// shards").
//
// The stream reads the vector in chunks. While the consumer processes the
// current chunk, a background fiber fetches the next one, overlapping remote
// transfer with computation — this is what makes "preprocessing images from
// remote memory proclets as fast as preprocessing local images" (§4) in
// Fig. 2's imbalanced configurations.

#ifndef QUICKSAND_DS_STREAM_H_
#define QUICKSAND_DS_STREAM_H_

#include <memory>
#include <optional>
#include <vector>

#include "quicksand/ds/sharded_vector.h"
#include "quicksand/sim/sync.h"

namespace quicksand {

template <typename T>
class VectorStream {
 public:
  struct Stats {
    int64_t chunks_fetched = 0;
    int64_t prefetch_ready = 0;   // chunk was already there when needed
    int64_t prefetch_waited = 0;  // had to wait on an in-flight prefetch
  };

  // Streams elements with indices in [begin, end). `chunk_elems` sets the
  // transfer granularity; prefetch=false degrades to synchronous fetching
  // (the ablation baseline).
  VectorStream(ShardedVector<T> vec, uint64_t begin, uint64_t end,
               uint64_t chunk_elems = 64, bool prefetch = true)
      : vec_(std::move(vec)),
        next_fetch_(begin),
        limit_(end),
        chunk_elems_(chunk_elems),
        prefetch_(prefetch) {
    QS_CHECK(chunk_elems_ > 0);
  }

  // Next element, or nullopt at the end of the range (or of the vector).
  Task<std::optional<T>> Next(Ctx ctx) {
    while (cursor_ == current_.size()) {
      if (exhausted_) {
        co_return std::nullopt;
      }
      co_await LoadChunk(ctx);
    }
    T value = std::move(current_[cursor_++]);
    co_return std::optional<T>(std::move(value));
  }

  const Stats& stats() const { return stats_; }

 private:
  struct Slot {
    explicit Slot(Simulator& sim) : ready(sim) {}
    std::vector<T> data;
    uint64_t ask = 0;
    SimEvent ready;
  };

  static Task<> FetchInto(ShardedVector<T> vec, Ctx ctx, uint64_t begin,
                          uint64_t count, std::shared_ptr<Slot> slot) {
    auto get = vec.GetRange(ctx, begin, count);
    Result<std::vector<T>> data = co_await std::move(get);
    if (data.ok()) {
      slot->data = std::move(*data);
    }
    slot->ready.Set();
  }

  Task<> LoadChunk(Ctx ctx) {
    std::vector<T> chunk;
    if (pending_ != nullptr) {
      if (!pending_->ready.is_set()) {
        ++stats_.prefetch_waited;
        co_await pending_->ready.Wait();
      } else {
        ++stats_.prefetch_ready;
      }
      chunk = std::move(pending_->data);
      if (chunk.size() < pending_->ask) {
        exhausted_ = true;  // the vector ended inside this chunk
      }
      pending_.reset();
    } else {
      const uint64_t ask =
          std::min<uint64_t>(chunk_elems_, limit_ - next_fetch_);
      if (ask == 0) {
        exhausted_ = true;
        co_return;
      }
      auto get = vec_.GetRange(ctx, next_fetch_, ask);
      Result<std::vector<T>> data = co_await std::move(get);
      if (!data.ok()) {
        exhausted_ = true;
        co_return;
      }
      chunk = std::move(*data);
      next_fetch_ += chunk.size();
    }
    ++stats_.chunks_fetched;
    if (chunk.empty()) {
      exhausted_ = true;
      co_return;
    }
    current_ = std::move(chunk);
    cursor_ = 0;
    // Kick off the next prefetch while the consumer chews on this chunk.
    if (prefetch_ && !exhausted_ && next_fetch_ < limit_) {
      const uint64_t ask = std::min<uint64_t>(chunk_elems_, limit_ - next_fetch_);
      pending_ = std::make_shared<Slot>(ctx.rt->sim());
      pending_->ask = ask;
      ctx.rt->sim().Spawn(FetchInto(vec_, ctx, next_fetch_, ask, pending_),
                          "vector_prefetch");
      next_fetch_ += ask;
    }
  }

  ShardedVector<T> vec_;
  uint64_t next_fetch_;
  uint64_t limit_;
  uint64_t chunk_elems_;
  bool prefetch_;
  bool exhausted_ = false;
  std::vector<T> current_;
  size_t cursor_ = 0;
  std::shared_ptr<Slot> pending_;
  Stats stats_;
};

}  // namespace quicksand

#endif  // QUICKSAND_DS_STREAM_H_
