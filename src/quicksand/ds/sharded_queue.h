// ShardedQueue<T>: a FIFO queue whose backlog lives in granular memory
// proclets (§3.2, §4).
//
// The queue is a chain of *segment* proclets ordered by sequence number.
// Producers append to the newest (tail) segment; when the tail exceeds
// max_segment_bytes the producer seals it and links a fresh one — so a burst
// of production materializes as additional memory proclets that the
// scheduler can place wherever memory is free ("the queue can absorb bursts
// in producer output by storing it in memory proclets that can split and
// migrate", §4). Consumers pop from the oldest segment; a drained, sealed
// segment is unlinked and destroyed.

#ifndef QUICKSAND_DS_SHARDED_QUEUE_H_
#define QUICKSAND_DS_SHARDED_QUEUE_H_

#include <deque>
#include <optional>
#include <vector>

#include "quicksand/common/bytes.h"
#include "quicksand/common/status.h"
#include "quicksand/common/wire.h"
#include "quicksand/runtime/runtime.h"
#include "quicksand/sharding/shard_index.h"

namespace quicksand {

template <typename T>
class QueueSegmentProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kMemory;

  struct PushResult {
    int64_t segment_bytes;
    int64_t segment_count;
  };

  struct PopResult {
    std::vector<T> items;
    bool drained;  // sealed and now empty: consumer should unlink it

    int64_t WireBytes() const { return WireSizeOf(items) + 1; }
  };

  QueueSegmentProclet(const ProcletInit& init, uint64_t sequence)
      : ProcletBase(init), sequence_(sequence) {}

  uint64_t sequence() const { return sequence_; }
  bool sealed() const { return sealed_; }
  int64_t count() const { return static_cast<int64_t>(items_.size()); }
  int64_t data_bytes() const { return data_bytes_; }

  Result<PushResult> Push(T value) {
    if (sealed_) {
      return Status::FailedPrecondition("segment is sealed");
    }
    const int64_t bytes = WireSizeOf(value);
    if (!TryChargeHeap(bytes)) {
      return Status::ResourceExhausted("host machine out of memory");
    }
    data_bytes_ += bytes;
    item_bytes_.push_back(bytes);
    items_.push_back(std::move(value));
    return PushResult{data_bytes_, count()};
  }

  void Seal() { sealed_ = true; }

  // Removes up to `max_items` from the front.
  PopResult Pop(int64_t max_items) {
    PopResult result;
    while (max_items-- > 0 && !items_.empty()) {
      const int64_t bytes = item_bytes_.front();
      item_bytes_.pop_front();
      ReleaseHeap(bytes);
      data_bytes_ -= bytes;
      result.items.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    result.drained = sealed_ && items_.empty();
    return result;
  }

 private:
  uint64_t sequence_;
  bool sealed_ = false;
  int64_t data_bytes_ = 0;
  std::deque<T> items_;
  std::deque<int64_t> item_bytes_;
};

template <typename T>
class ShardedQueue {
 public:
  using Segment = QueueSegmentProclet<T>;

  struct Options {
    int64_t max_segment_bytes = 4 * kMiB;
    int64_t segment_base_bytes = 4096;
  };

  ShardedQueue() = default;

  static Task<Result<ShardedQueue>> Create(Ctx ctx, Options options = Options{}) {
    PlacementRequest index_req;
    index_req.heap_bytes = options.segment_base_bytes;
    auto create_index = ctx.rt->Create<ShardIndexProclet>(ctx, index_req);
    Result<Ref<ShardIndexProclet>> index = co_await std::move(create_index);
    if (!index.ok()) {
      co_return index.status();
    }
    ShardedQueue queue;
    queue.index_ = *index;
    queue.router_ = ShardRouter(*index);
    queue.options_ = options;
    Status added = co_await queue.AddSegment(ctx, 0);
    if (!added.ok()) {
      co_return added;
    }
    co_return queue;
  }

  Ref<ShardIndexProclet> index() const { return index_; }
  ShardRouter& router() { return router_; }

  Task<Status> Push(Ctx ctx, T value) {
    const int64_t request_bytes = WireSizeOf(value);
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Result<ShardInfo> tail = co_await RouteEnd(ctx, /*tail=*/true);
      if (!tail.ok()) {
        co_return tail.status();
      }
      Ref<Segment> segment(ctx.rt, tail->proclet);
      using PushResult = typename Segment::PushResult;
      auto call = segment.Call(
          ctx,
          [value](Segment& s) mutable -> Task<Result<PushResult>> {
            co_return s.Push(std::move(value));
          },
          request_bytes);
      std::optional<Result<PushResult>> pushed;
      try {
        pushed.emplace(co_await std::move(call));
      } catch (const ProcletGoneError&) {
        router_.Invalidate();
        continue;
      }
      if (!pushed->ok()) {
        if (pushed->status().code() == StatusCode::kFailedPrecondition) {
          // Sealed under us; wait out a concurrent grower's segment insert.
          co_await ctx.rt->sim().Sleep(Duration::Micros(10));
          co_await router_.Refresh(ctx);
          continue;
        }
        co_return pushed->status();
      }
      if ((*pushed)->segment_bytes >= options_.max_segment_bytes) {
        Status grown = co_await GrowTail(ctx, *tail);
        if (!grown.ok() && grown.code() != StatusCode::kFailedPrecondition) {
          co_return grown;
        }
      }
      co_return Status::Ok();
    }
    co_return Status::Aborted("too many push retries");
  }

  // Pops up to `max_items` items; returns an empty vector when the queue is
  // empty (non-blocking — consumers poll).
  Task<Result<std::vector<T>>> TryPopBatch(Ctx ctx, int64_t max_items) {
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      Result<ShardInfo> head = co_await RouteEnd(ctx, /*tail=*/false);
      if (!head.ok()) {
        co_return head.status();
      }
      Ref<Segment> segment(ctx.rt, head->proclet);
      using PopResult = typename Segment::PopResult;
      auto call = segment.Call(ctx, [max_items](Segment& s) -> Task<PopResult> {
        co_return s.Pop(max_items);
      });
      std::optional<PopResult> popped;
      try {
        popped.emplace(co_await std::move(call));
      } catch (const ProcletGoneError&) {
        router_.Invalidate();
        continue;
      }
      if (popped->drained) {
        co_await UnlinkSegment(ctx, *head);
        if (popped->items.empty()) {
          continue;  // try the next segment
        }
      }
      co_return std::move(popped->items);
    }
    co_return Status::Aborted("too many pop retries");
  }

  Task<Result<std::optional<T>>> TryPop(Ctx ctx) {
    auto pop = TryPopBatch(ctx, 1);
    Result<std::vector<T>> batch = co_await std::move(pop);
    if (!batch.ok()) {
      co_return batch.status();
    }
    if (batch->empty()) {
      co_return std::optional<T>();
    }
    co_return std::optional<T>(std::move(batch->front()));
  }

  // Approximate backlog (index counts are refreshed live from segments).
  Task<Result<int64_t>> Size(Ctx ctx) {
    co_await router_.Refresh(ctx);
    int64_t total = 0;
    for (const ShardInfo& info : router_.cached_shards()) {
      Ref<Segment> segment(ctx.rt, info.proclet);
      auto call = segment.Call(ctx, [](Segment& s) -> Task<int64_t> {
        co_return s.count();
      });
      try {
        total += co_await std::move(call);
      } catch (const ProcletGoneError&) {
        // Concurrently drained; skip.
      }
    }
    co_return total;
  }

 private:
  static constexpr int kMaxAttempts = 16;

  // tail=true: highest sequence; tail=false: lowest.
  Task<Result<ShardInfo>> RouteEnd(Ctx ctx, bool tail) {
    for (int i = 0; i < 2; ++i) {
      if (router_.cached_shards().empty() || i > 0) {
        co_await router_.Refresh(ctx);
      }
      const std::vector<ShardInfo>& shards = router_.cached_shards();
      if (!shards.empty()) {
        // Shards are keyed by sequence; snapshot is ordered by begin.
        co_return tail ? shards.back() : shards.front();
      }
    }
    co_return Status::Internal("queue has no segments");
  }

  Task<Status> GrowTail(Ctx ctx, ShardInfo tail) {
    Ref<Segment> segment(ctx.rt, tail.proclet);
    auto seal = segment.Call(ctx, [](Segment& s) -> Task<bool> {
      s.Seal();
      co_return true;
    });
    try {
      (void)co_await std::move(seal);
    } catch (const ProcletGoneError&) {
      router_.Invalidate();
      co_return Status::FailedPrecondition("tail vanished during grow");
    }
    Status added = co_await AddSegment(ctx, tail.begin + 1);
    co_await router_.Refresh(ctx);
    if (added.code() == StatusCode::kFailedPrecondition) {
      co_return Status::FailedPrecondition("another tail was added first");
    }
    co_return added;
  }

  Task<Status> AddSegment(Ctx ctx, uint64_t sequence) {
    PlacementRequest req;
    req.heap_bytes = options_.segment_base_bytes;
    auto create = ctx.rt->Create<Segment>(ctx, req, sequence);
    Result<Ref<Segment>> segment = co_await std::move(create);
    if (!segment.ok()) {
      co_return segment.status();
    }
    ShardInfo info;
    info.proclet = segment->id();
    info.begin = sequence;
    info.end = sequence + 1;
    auto add = index_.Call(ctx, [info](ShardIndexProclet& p) -> Task<Status> {
      co_return p.AddShard(info);
    });
    Status added = co_await std::move(add);
    if (!added.ok()) {
      auto destroy = ctx.rt->Destroy(ctx, segment->id());
      (void)co_await std::move(destroy);
      co_return Status::FailedPrecondition("segment sequence already linked");
    }
    co_return Status::Ok();
  }

  Task<> UnlinkSegment(Ctx ctx, ShardInfo head) {
    const ProcletId victim = head.proclet;
    auto remove = index_.Call(ctx, [victim](ShardIndexProclet& p) -> Task<Status> {
      co_return p.RemoveShard(victim);
    });
    Status removed = co_await std::move(remove);
    router_.Invalidate();
    if (removed.ok()) {
      // We won the unlink race; we also reclaim the proclet.
      auto destroy = ctx.rt->Destroy(ctx, victim);
      (void)co_await std::move(destroy);
    }
  }

  Ref<ShardIndexProclet> index_;
  ShardRouter router_;
  Options options_;
};

}  // namespace quicksand

#endif  // QUICKSAND_DS_SHARDED_QUEUE_H_
