// ReplicationManager: primary-backup replication for memory-class proclets
// via synchronous log-shipping of mutations.
//
// Checkpoints bound data loss to one interval; hot shards on zero-warning
// harvested resources need better. A replicated proclet keeps a passive
// backup object on a machine chosen anti-affine to its primary:
//
//  * establishment (Replicate): one synchronous invocation captures the
//    primary's state AND attaches the mutation sink — atomically, so no
//    mutation can slip between the snapshot and the log — then the full
//    image ships to the backup machine and rebuilds the backup object
//    (heap charged against the backup machine, keeping the memory cost of
//    2x replication honest),
//  * steady state: every mutating invocation appends replayable records
//    (ProcletBase::RecordMutation); Runtime::Invoke flushes them through
//    this manager before releasing the response. Ack modes:
//      - kDurable: the invocation suspends until the log round-trips to the
//        backup — an acked mutation survives any single-machine crash
//        (RPO = 0 for acknowledged writes),
//      - kFireAndForget: the log ships on a detached fiber; calls return at
//        local speed and the tail of un-shipped mutations can be lost
//        (RPO > 0) — the honest latency/durability trade,
//  * primary loss: RecoveryCoordinator promotes the backup object in place
//    (PromoteBackup) — it already holds the state ON the backup machine, so
//    promotion costs a control message, not a data transfer — then
//    re-replicates onto a fresh anti-affine machine, best effort,
//  * backup loss: Arm()'s crash handler re-establishes backups that died
//    with their machine (full re-sync from the surviving primary).
//
// What replication does NOT guarantee: a mutation whose ack was lost with
// the primary may be retried by the caller and applied twice (classic
// at-least-once; ShardedVector appends can duplicate). Compute proclets are
// never replicated — their constructors spawn worker fibers, so "passive
// backup" is meaningless; DistPool lineage re-executes their lost jobs.

#ifndef QUICKSAND_DURABILITY_REPLICATION_H_
#define QUICKSAND_DURABILITY_REPLICATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <type_traits>
#include <vector>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/health/failure_detector.h"
#include "quicksand/runtime/runtime.h"
#include "quicksand/sim/sync.h"

namespace quicksand {

enum class AckMode {
  kDurable,       // invocation waits for the backup's ack
  kFireAndForget  // log ships asynchronously; tail loss possible
};

class ReplicationManager : public ReplicationSink {
 public:
  // Builds an empty backup object of the replicated type; RestoreState()
  // and log replay then fill it.
  using BackupFactory =
      std::function<std::unique_ptr<ProcletBase>(const ProcletInit&)>;

  struct Options {
    AckMode ack = AckMode::kDurable;
    // Wire size of the backup's acknowledgment message.
    int64_t ack_bytes = 128;
    // Machine the repair fibers run on.
    MachineId home = 0;
  };

  explicit ReplicationManager(Runtime& rt) : ReplicationManager(rt, Options{}) {}
  ReplicationManager(Runtime& rt, Options options)
      : rt_(rt), options_(options) {}

  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  // Establishes (or re-establishes) a backup for `id` on an anti-affine
  // machine. FailedPrecondition if the type lacks state hooks; Ok if a live
  // backup already exists.
  Task<Status> Replicate(Ctx ctx, ProcletId id, BackupFactory factory);

  template <typename P>
  Task<Status> ReplicateAs(Ctx ctx, ProcletId id) {
    static_assert(P::kKind != ProcletKind::kCompute,
                  "compute proclets are recovered via lineage, not backups");
    return Replicate(ctx, id, [](const ProcletInit& init) {
      return std::unique_ptr<ProcletBase>(std::make_unique<P>(init));
    });
  }

  // Subscribes to crashes: backups that died with their machine are
  // re-established from the surviving primary (full re-sync).
  void Arm(FaultInjector& injector);

  // Detector-driven variant: repairs run when the detector confirms a
  // machine dead (real crash or gray failure) instead of at the oracle
  // instant.
  void ArmDetector(FailureDetector& detector);

  // ReplicationSink: ships the primary's pending mutation log. Called by
  // Runtime::Invoke after the call body, before the response.
  Task<> Flush(ProcletBase& primary) override;

  // --- Degraded-mode reads (overload control) -------------------------------
  //
  // Under shed pressure or revocation, a frontend may prefer a possibly
  // stale answer NOW over a fresh answer queued behind a standing queue
  // (ROADMAP's approximation-under-pressure lever). ReadStale serves a
  // read-only closure from the BACKUP object without touching the primary:
  // it costs a round trip to the backup machine and nothing at the primary.
  //
  // Staleness is bounded, not guessed: the backup is exactly as fresh as
  // the last acknowledged log shipment, so the bound below is the age of
  // that sync whenever the primary may have diverged since (pending
  // mutations, or primary lost/unreachable) and zero when the log is fully
  // shipped. A read whose bound exceeds `max_staleness` is refused with
  // FailedPrecondition — degraded mode degrades freshness, never
  // correctness claims.

  // Conservative upper bound on how far the backup lags the primary's
  // acked state at `now`. Zero when fully synced; Max() when no live backup.
  Duration StalenessOf(ProcletId id, SimTime now) const;

  // Runs `fn(const P&)` against the backup object of `id`, paying the wire
  // cost of a round trip from ctx.machine to the backup machine. Fails with
  // Unavailable (no live backup), FailedPrecondition (staleness bound
  // exceeded), never touches the primary, and never mutates.
  template <typename P, typename Fn>
  auto ReadStale(Ctx ctx, ProcletId id, Duration max_staleness, Fn fn)
      -> Task<Result<std::invoke_result_t<Fn, const P&>>>;

  int64_t stale_reads() const { return stale_reads_; }

  // --- Recovery (called by RecoveryCoordinator) -----------------------------

  bool HasLiveBackup(ProcletId id) const;

  // Promotes the backup of a LOST primary: adopts the backup object under
  // the old id on the backup's machine (control-message cost only — the
  // state is already there), then re-replicates best effort.
  Task<Status> PromoteBackup(Ctx ctx, ProcletId id);

  // --- Introspection --------------------------------------------------------

  int64_t replicas_established() const { return replicas_established_; }
  int64_t mutations_shipped() const { return mutations_shipped_; }
  int64_t bytes_shipped() const { return bytes_shipped_; }
  int64_t promotions() const { return promotions_; }
  MachineId BackupMachineOf(ProcletId id) const;

 private:
  struct Replica {
    explicit Replica(Simulator& sim) : mu(sim) {}

    // Serializes log shipments (order preservation) and establishment
    // against in-flight flushes. Records are never erased, so fibers may
    // hold Replica* across suspensions safely.
    Mutex mu;
    std::unique_ptr<ProcletBase> backup;
    MachineId backup_machine = kInvalidMachineId;
    BackupFactory factory;
    // When the backup last provably matched the primary's acked state:
    // establishment and every acknowledged log replay update it.
    SimTime last_synced = SimTime::Zero();
  };

  Replica& RecordFor(ProcletId id);
  // Transfers `batch` src -> backup and replays it; holds the record mutex.
  Task<> Ship(ProcletId id, MachineId src,
              std::shared_ptr<std::vector<MutationRecord>> batch);
  Task<> RepairAfterCrash(MachineId machine);

  Runtime& rt_;
  Options options_;
  // std::map for deterministic repair order.
  std::map<ProcletId, std::unique_ptr<Replica>> replicas_;
  int64_t replicas_established_ = 0;
  int64_t mutations_shipped_ = 0;
  int64_t bytes_shipped_ = 0;
  int64_t promotions_ = 0;
  int64_t stale_reads_ = 0;
};

// --- Template implementations -------------------------------------------------

template <typename P, typename Fn>
auto ReplicationManager::ReadStale(Ctx ctx, ProcletId id,
                                   Duration max_staleness, Fn fn)
    -> Task<Result<std::invoke_result_t<Fn, const P&>>> {
  auto it = replicas_.find(id);
  if (it == replicas_.end() || it->second->backup == nullptr ||
      rt_.cluster().machine(it->second->backup_machine).failed()) {
    co_return Status::Unavailable("no live backup to read from");
  }
  Replica& replica = *it->second;
  // Serialize behind in-flight log shipments: the answer reflects the last
  // *acknowledged* batch, never a half-replayed one.
  MutexGuard guard = co_await replica.mu.Acquire();
  if (replica.backup == nullptr ||
      rt_.cluster().machine(replica.backup_machine).failed()) {
    co_return Status::Unavailable("backup died while waiting");
  }
  const Duration staleness = StalenessOf(id, rt_.sim().Now());
  if (staleness > max_staleness) {
    co_return Status::FailedPrecondition(
        "backup staleness bound exceeds the caller's limit");
  }
  const MachineId backup_machine = replica.backup_machine;
  const bool delivered = co_await rt_.fabric().Transfer(
      ctx.machine, backup_machine, Rpc::kHeaderBytes);
  if (!delivered || replica.backup == nullptr) {
    co_return Status::Unavailable("stale-read request lost");
  }
  auto result = fn(static_cast<const P&>(*replica.backup));
  ++stale_reads_;
  rt_.NoteStaleRead(id, backup_machine);
  (void)co_await rt_.fabric().Transfer(backup_machine, ctx.machine,
                                       WireSizeOf(result) + Rpc::kHeaderBytes);
  co_return result;
}

}  // namespace quicksand

#endif  // QUICKSAND_DURABILITY_REPLICATION_H_
