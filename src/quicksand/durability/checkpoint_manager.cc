#include "quicksand/durability/checkpoint_manager.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "quicksand/common/logging.h"
#include "quicksand/sched/placement.h"

namespace quicksand {

Task<Status> CheckpointManager::Protect(Ctx ctx, ProcletId id,
                                        RestoreFactory factory) {
  {
    MutexGuard guard = co_await mu_.Acquire();
    if (records_.count(id) != 0) {
      co_return Status::Ok();  // already protected
    }
    ProcletBase* proclet = rt_.Find(id);
    if (proclet == nullptr) {
      co_return Status::NotFound("cannot protect a gone or lost proclet");
    }
    Record record;
    record.factory = std::move(factory);
    record.kind = proclet->kind();
    records_.emplace(id, std::move(record));
    proclet->SetCheckpointProtected(true);
  }
  // First checkpoint is a full one; it also probes that the type actually
  // implements the state hooks.
  Status first = co_await CheckpointNow(ctx, id);
  if (first.code() == StatusCode::kFailedPrecondition) {
    MutexGuard guard = co_await mu_.Acquire();
    records_.erase(id);
    if (ProcletBase* proclet = rt_.Find(id)) {
      proclet->SetCheckpointProtected(false);
    }
  }
  co_return first;
}

Task<Status> CheckpointManager::CheckpointNow(Ctx ctx, ProcletId id) {
  MutexGuard guard = co_await mu_.Acquire();
  co_return co_await CheckpointLocked(ctx, id);
}

Task<Status> CheckpointManager::CheckpointLocked(Ctx ctx, ProcletId id) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    co_return Status::NotFound("proclet is not protected");
  }
  Record& record = it->second;
  const MachineId host = rt_.LocationOf(id);
  if (host == kInvalidMachineId) {
    // Gone or lost; a lost proclet is the RecoveryCoordinator's problem.
    co_return Status::NotFound("proclet has no live host");
  }
  // Control trigger from the manager's home to the host.
  (void)co_await rt_.fabric().Transfer(options_.home, host,
                                       rt_.config().control_message_bytes);

  // Capture runs as a normal (local) invocation at the host: the gate
  // serializes it against migration and maintenance, and the synchronous
  // closure holds the call across no suspension point — so an evacuation
  // draining this proclet always completes (no deadlock by construction).
  std::optional<StateImage> image;
  int64_t taken_dirty = 0;
  bool lost = false;
  bool gone = false;
  {
    auto capture = rt_.Invoke<ProcletBase>(
        rt_.CtxOn(host), id,
        [](ProcletBase& p) -> Task<std::pair<std::optional<StateImage>, int64_t>> {
          std::optional<StateImage> img = p.CaptureState();
          const int64_t dirty = img.has_value() ? p.TakeDirtyBytes() : 0;
          co_return std::make_pair(std::move(img), dirty);
        });
    try {
      auto [img, dirty] = co_await std::move(capture);
      image = std::move(img);
      taken_dirty = dirty;
    } catch (const ProcletLostError&) {
      lost = true;
    } catch (const ProcletGoneError&) {
      gone = true;
    }
  }
  if (lost) {
    co_return Status::DataLoss("proclet lost before capture");
  }
  if (gone) {
    co_return Status::NotFound("proclet destroyed before capture");
  }
  if (!image.has_value()) {
    co_return Status::FailedPrecondition("proclet type is not checkpointable");
  }
  if (record.has_image && taken_dirty == 0) {
    co_return Status::Ok();  // clean since the last checkpoint
  }
  const int64_t full = image->bytes;
  int64_t incremental =
      record.has_image ? std::min(taken_dirty, full) : full;

  // Re-place the depot when there is none yet, when the primary migrated
  // onto the depot machine (anti-affinity would be violated), or when the
  // depot's machine died. A new depot needs the whole image.
  const bool need_new_depot =
      record.depot_machine == kInvalidMachineId ||
      record.depot_machine == host ||
      rt_.cluster().machine(record.depot_machine).failed();
  if (need_new_depot) {
    Result<MachineId> target = ChooseReplicaTarget(rt_.cluster(), host, full);
    if (!target.ok()) {
      if (ProcletBase* p = rt_.Find(id)) {
        p->AddDirtyBytes(taken_dirty);  // retry next interval
      }
      co_return target.status();
    }
    record.depot_machine = *target;
    record.depot = Ref<StorageProclet>();
    record.depot_object = next_depot_object_++;
    incremental = full;
  }
  Result<Ref<StorageProclet>> depot =
      co_await EnsureDepot(ctx, record.depot_machine);
  if (!depot.ok()) {
    if (ProcletBase* p = rt_.Find(id)) {
      p->AddDirtyBytes(taken_dirty);
    }
    co_return depot.status();
  }
  record.depot = *depot;

  // Ship the delta host -> depot and rewrite the blob: the depot stores the
  // full image (capacity delta + full-size disk write), the wire carries
  // only the incremental bytes.
  Status written = Status::Internal("unset");
  bool depot_lost = false;
  {
    auto write = record.depot.Call(
        rt_.CtxOn(host),
        [object = record.depot_object, full](StorageProclet& s) -> Task<Status> {
          co_return co_await s.WriteObject(object, CheckpointBlob{full});
        },
        incremental);
    try {
      written = co_await std::move(write);
    } catch (const ProcletLostError&) {
      depot_lost = true;
    } catch (const ProcletGoneError&) {
      depot_lost = true;
    }
  }
  if (depot_lost || !written.ok()) {
    if (ProcletBase* p = rt_.Find(id)) {
      p->AddDirtyBytes(taken_dirty);
    }
    co_return depot_lost ? Status::Unavailable("checkpoint depot died mid-write")
                         : written;
  }

  record.image = std::move(*image);
  record.has_image = true;
  ++checkpoints_taken_;
  bytes_shipped_ += incremental;
  rt_.AccountCheckpoint(incremental);
  if (Tracer* tracer = rt_.tracer()) {
    tracer->Instant(TraceContext{}, host, TraceOp::kCheckpoint, id, incremental,
                    need_new_depot ? "full" : "incremental");
  }
  QS_LOG_DEBUG("checkpoint", "proclet %llu: %lld bytes (of %lld) to depot m%u",
               static_cast<unsigned long long>(id),
               static_cast<long long>(incremental), static_cast<long long>(full),
               record.depot_machine);
  co_return Status::Ok();
}

Task<int> CheckpointManager::CheckpointMachine(Ctx ctx, MachineId machine) {
  std::vector<ProcletId> ids;
  for (const auto& [id, record] : records_) {
    if (rt_.LocationOf(id) == machine) {
      ids.push_back(id);
    }
  }
  int saved = 0;
  for (ProcletId id : ids) {
    Status status = co_await CheckpointNow(ctx, id);
    if (status.ok()) {
      ++saved;
    }
  }
  co_return saved;
}

void CheckpointManager::Start() {
  QS_CHECK_MSG(!started_, "CheckpointManager::Start called twice");
  started_ = true;
  rt_.sim().Spawn(PeriodicLoop(), "checkpoint_manager");
}

Task<> CheckpointManager::PeriodicLoop() {
  while (!stopped_) {
    co_await rt_.sim().Sleep(interval_);
    if (stopped_) {
      co_return;
    }
    const Ctx ctx = rt_.CtxOn(options_.home);
    std::vector<ProcletId> ids;
    for (const auto& [id, record] : records_) {
      ids.push_back(id);
    }
    for (ProcletId id : ids) {
      (void)co_await CheckpointNow(ctx, id);
    }
  }
}

void CheckpointManager::Arm(FaultInjector& injector) {
  injector.OnRevocation([this](const RevokeResources& notice) {
    rt_.sim().Spawn(HandleRevocation(notice.machine),
                    "checkpoint_revoked_m" + std::to_string(notice.machine));
  });
  injector.OnCrash([this](MachineId machine) {
    rt_.sim().Spawn(HandleDepotLoss(machine),
                    "checkpoint_depot_m" + std::to_string(machine));
  });
}

Task<> CheckpointManager::HandleRevocation(MachineId machine) {
  // Final pre-death snapshot: whatever lands in a depot before the deadline
  // is recoverable with RPO = 0.
  (void)co_await CheckpointMachine(rt_.CtxOn(options_.home), machine);
}

Task<> CheckpointManager::HandleDepotLoss(MachineId machine) {
  // A crashed machine may have hosted depots, not just primaries. The
  // depot's blobs died with it, but the protected primaries are still
  // alive: re-checkpoint each affected record (full image) into a fresh
  // anti-affine depot. A record whose primary died in the SAME crash stays
  // unrecoverable — losing a primary and its depot together is the
  // two-failure event anti-affine placement is designed to exclude.
  MutexGuard guard = co_await mu_.Acquire();
  depots_.erase(machine);
  std::vector<ProcletId> affected;
  for (const auto& [id, record] : records_) {
    if (record.depot_machine == machine) {
      affected.push_back(id);
    }
  }
  const Ctx ctx = rt_.CtxOn(options_.home);
  for (ProcletId id : affected) {
    Record& record = records_[id];
    record.has_image = false;  // the blob is gone
    record.depot_machine = kInvalidMachineId;
    record.depot = Ref<StorageProclet>();
    if (rt_.IsLost(id)) {
      continue;
    }
    (void)co_await CheckpointLocked(ctx, id);
  }
}

Task<Result<Ref<StorageProclet>>> CheckpointManager::EnsureDepot(
    Ctx ctx, MachineId machine) {
  auto it = depots_.find(machine);
  if (it != depots_.end()) {
    if (rt_.LocationOf(it->second.id()) != kInvalidMachineId) {
      co_return it->second;
    }
    depots_.erase(it);  // died with its machine; recreate
  }
  PlacementRequest request;
  request.heap_bytes = options_.depot_base_bytes;
  request.pinned = machine;
  auto create = rt_.Create<StorageProclet>(ctx, request);
  Result<Ref<StorageProclet>> depot = co_await std::move(create);
  if (!depot.ok()) {
    co_return depot.status();
  }
  depots_.emplace(machine, *depot);
  depot_ids_.insert(depot->id());
  co_return *depot;
}

bool CheckpointManager::Recoverable(ProcletId id) const {
  auto it = records_.find(id);
  if (it == records_.end() || !it->second.has_image) {
    return false;
  }
  const Record& record = it->second;
  if (record.depot_machine == kInvalidMachineId ||
      rt_.cluster().machine(record.depot_machine).failed()) {
    return false;  // checkpoint died with its depot
  }
  return true;
}

Task<Status> CheckpointManager::RestoreLost(Ctx ctx, ProcletId id,
                                            MachineId target) {
  auto it = records_.find(id);
  if (it == records_.end() || !it->second.has_image) {
    co_return Status::NotFound("no checkpoint for proclet");
  }
  Record& record = it->second;
  if (!rt_.IsLost(id)) {
    co_return Status::FailedPrecondition("proclet is not lost");
  }
  if (!Recoverable(id)) {
    co_return Status::DataLoss("checkpoint depot died with its machine");
  }
  if (target == kInvalidMachineId) {
    PlacementRequest request;
    request.kind = record.kind;
    request.heap_bytes = record.image.bytes;
    Result<MachineId> placed = rt_.placement().Place(request, rt_.cluster());
    if (!placed.ok()) {
      co_return placed.status();
    }
    target = *placed;
  }
  if (rt_.cluster().machine(target).failed()) {
    co_return Status::Unavailable("restore target has failed");
  }

  // Read the blob back: pays the depot's disk read and ships the full image
  // depot -> target as the response payload.
  Result<CheckpointBlob> blob = Status::Internal("unset");
  bool depot_lost = false;
  {
    auto read = record.depot.Call(
        rt_.CtxOn(target),
        [object = record.depot_object](StorageProclet& s) -> Task<Result<CheckpointBlob>> {
          co_return co_await s.ReadObject<CheckpointBlob>(object);
        });
    try {
      blob = co_await std::move(read);
    } catch (const ProcletLostError&) {
      depot_lost = true;
    } catch (const ProcletGoneError&) {
      depot_lost = true;
    }
  }
  if (depot_lost) {
    co_return Status::DataLoss("checkpoint depot died during restore");
  }
  if (!blob.ok()) {
    co_return blob.status();
  }

  ProcletInit init{&rt_, &rt_.sim(), id, record.kind, target};
  std::unique_ptr<ProcletBase> restored = record.factory(init);
  QS_CHECK_MSG(restored != nullptr, "restore factory returned null");
  Status filled = restored->RestoreState(record.image);
  if (!filled.ok()) {
    co_return filled;
  }
  Status adopted = rt_.AdoptRestored(id, std::move(restored), target);
  if (!adopted.ok()) {
    co_return adopted;
  }
  ++restores_;
  QS_LOG_DEBUG("checkpoint", "proclet %llu restored on m%u from depot m%u",
               static_cast<unsigned long long>(id), target,
               record.depot_machine);
  co_return Status::Ok();
}

}  // namespace quicksand
