// RecoveryCoordinator: turns machine crashes into proclet restores.
//
// Hooked into the runtime's crash path (Arm must run AFTER
// Runtime::AttachFaultInjector — FaultInjector handlers fire in
// registration order, and recovery needs the runtime's loss bookkeeping
// done first). For every crash it walks the machine's lost proclets in id
// order (deterministic) and, per proclet:
//
//  1. promotes a live backup if the ReplicationManager has one — control
//     message cost, freshest state,
//  2. otherwise restores from the latest checkpoint if the
//     CheckpointManager has a usable one — depot read + full-image
//     transfer,
//  3. otherwise counts it unrecoverable (exactly PR 1's behavior).
//
// Restores go through Runtime::AdoptRestored: the old proclet id is rebound
// in the directory, so existing DistPtrs and sharded-DS routing caches heal
// through their normal miss/refresh path, and the DS layer's bounded stall
// (Runtime::AwaitRestore) resolves. Arming the coordinator also flips
// Runtime::recovery_enabled, which is what makes ShardedVector/ShardedMap
// stall instead of reporting DataLoss.
//
// Compute proclets have no restorable state; OnRecovered hooks let pools
// re-execute in-flight jobs by lineage (DistPool::RecoverLost +
// ResubmitIncomplete) after the state-bearing proclets are back.

#ifndef QUICKSAND_DURABILITY_RECOVERY_COORDINATOR_H_
#define QUICKSAND_DURABILITY_RECOVERY_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/durability/checkpoint_manager.h"
#include "quicksand/durability/replication.h"
#include "quicksand/health/failure_detector.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

struct RecoveryReport {
  MachineId machine = kInvalidMachineId;
  SimTime started;
  Duration elapsed = Duration::Zero();  // crash -> last restore resolved
  int64_t lost = 0;           // proclets that died with the machine
  int64_t promoted = 0;       // restored by promoting a live backup
  int64_t restored = 0;       // restored from a checkpoint
  int64_t unrecoverable = 0;  // no backup, no usable checkpoint
};

class RecoveryCoordinator {
 public:
  // Runs after the per-proclet restores of one crash; used for lineage
  // re-execution (compute pools) and similar application-level repair.
  using RecoveredHook = std::function<Task<>(Ctx, MachineId)>;

  struct Options {
    // Machine the recovery fibers run on (the controller).
    MachineId home = 0;
  };

  explicit RecoveryCoordinator(Runtime& rt) : RecoveryCoordinator(rt, Options{}) {}
  RecoveryCoordinator(Runtime& rt, Options options)
      : rt_(rt), options_(options) {}

  RecoveryCoordinator(const RecoveryCoordinator&) = delete;
  RecoveryCoordinator& operator=(const RecoveryCoordinator&) = delete;

  void AttachCheckpoints(CheckpointManager* checkpoints) {
    checkpoints_ = checkpoints;
  }
  void AttachReplication(ReplicationManager* replication) {
    replication_ = replication;
  }
  void OnRecovered(RecoveredHook hook) { hooks_.push_back(std::move(hook)); }

  // Subscribes to crashes and enables the runtime's recovery mode. Register
  // AFTER Runtime::AttachFaultInjector (and after ReplicationManager::Arm /
  // CheckpointManager::Arm if used).
  void Arm(FaultInjector& injector);

  // Detector-driven variant: recovery starts when the failure detector
  // CONFIRMS a machine dead — after the heartbeat gap, not at the oracle
  // instant — covering both real crashes and gray failures the runtime
  // declared dead. Register AFTER Runtime::AttachFailureDetector.
  void ArmDetector(FailureDetector& detector);

  // Recovers everything lost with `machine`; callable directly for tests.
  Task<RecoveryReport> Recover(Ctx ctx, MachineId machine);

  const std::vector<RecoveryReport>& reports() const { return reports_; }
  int64_t total_promoted() const { return total_promoted_; }
  int64_t total_restored() const { return total_restored_; }
  int64_t total_unrecoverable() const { return total_unrecoverable_; }

 private:
  Task<> HandleCrash(MachineId machine);

  Runtime& rt_;
  Options options_;
  CheckpointManager* checkpoints_ = nullptr;
  ReplicationManager* replication_ = nullptr;
  std::vector<RecoveredHook> hooks_;
  std::vector<RecoveryReport> reports_;
  int64_t total_promoted_ = 0;
  int64_t total_restored_ = 0;
  int64_t total_unrecoverable_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_DURABILITY_RECOVERY_COORDINATOR_H_
