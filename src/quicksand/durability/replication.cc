#include "quicksand/durability/replication.h"

#include <optional>
#include <string>
#include <utility>

#include "quicksand/common/logging.h"
#include "quicksand/net/rpc.h"
#include "quicksand/sched/placement.h"

namespace quicksand {

ReplicationManager::Replica& ReplicationManager::RecordFor(ProcletId id) {
  auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    it = replicas_.emplace(id, std::make_unique<Replica>(rt_.sim())).first;
  }
  return *it->second;
}

Task<Status> ReplicationManager::Replicate(Ctx ctx, ProcletId id,
                                           BackupFactory factory) {
  const MachineId host = rt_.LocationOf(id);
  if (host == kInvalidMachineId) {
    co_return Status::NotFound("cannot replicate a gone or lost proclet");
  }
  Replica& replica = RecordFor(id);
  MutexGuard guard = co_await replica.mu.Acquire();
  if (replica.backup != nullptr &&
      !rt_.cluster().machine(replica.backup_machine).failed()) {
    co_return Status::Ok();  // live backup already in place
  }
  replica.backup.reset();
  replica.factory = std::move(factory);

  ProcletBase* primary = rt_.Find(id);
  if (primary == nullptr) {
    co_return Status::NotFound("primary vanished during replication setup");
  }
  const ProcletKind kind = primary->kind();
  Result<MachineId> target =
      ChooseReplicaTarget(rt_.cluster(), host, primary->heap_bytes());
  if (!target.ok()) {
    co_return target.status();
  }

  // Capture the primary's state and attach the mutation sink in ONE
  // synchronous invocation: nothing can mutate between the snapshot and the
  // start of the log, so image + log replay is exactly the primary's
  // history. (Mutations that land while the image is in flight below are
  // logged; Ship() waits on this record's mutex, so they replay only after
  // the backup object exists.)
  std::optional<StateImage> image;
  bool lost = false;
  bool gone = false;
  {
    auto capture = rt_.Invoke<ProcletBase>(
        rt_.CtxOn(host), id,
        [this](ProcletBase& p) -> Task<std::optional<StateImage>> {
          std::optional<StateImage> img = p.CaptureState();
          if (img.has_value()) {
            p.AttachReplicationSink(this);
          }
          co_return img;
        });
    try {
      image = co_await std::move(capture);
    } catch (const ProcletLostError&) {
      lost = true;
    } catch (const ProcletGoneError&) {
      gone = true;
    }
  }
  if (lost) {
    co_return Status::DataLoss("primary lost during replication setup");
  }
  if (gone) {
    co_return Status::NotFound("primary destroyed during replication setup");
  }
  if (!image.has_value()) {
    co_return Status::FailedPrecondition("proclet type is not replicable");
  }

  // Full initial sync: ship the image and rebuild the backup object, heap
  // charged against the backup machine.
  const bool delivered =
      co_await rt_.fabric().Transfer(host, *target, image->bytes);
  if (!delivered || rt_.cluster().machine(*target).failed()) {
    if (ProcletBase* p = rt_.Find(id)) {
      p->DetachReplicationSink();
    }
    co_return Status::Unavailable("initial sync transfer failed");
  }
  ProcletInit init{&rt_, &rt_.sim(), id, kind, *target};
  std::unique_ptr<ProcletBase> backup = replica.factory(init);
  QS_CHECK_MSG(backup != nullptr, "backup factory returned null");
  Status filled = backup->RestoreState(*image);
  if (!filled.ok()) {
    if (ProcletBase* p = rt_.Find(id)) {
      p->DetachReplicationSink();
    }
    co_return filled;
  }
  replica.backup = std::move(backup);
  replica.backup_machine = *target;
  replica.last_synced = rt_.sim().Now();
  ++replicas_established_;
  QS_LOG_DEBUG("replication", "proclet %llu: backup on m%u (%lld bytes)",
               static_cast<unsigned long long>(id), *target,
               static_cast<long long>(image->bytes));
  co_return Status::Ok();
}

Task<> ReplicationManager::Flush(ProcletBase& primary) {
  auto it = replicas_.find(primary.id());
  if (it == replicas_.end()) {
    (void)primary.TakePendingMutations();  // stale sink; drop the log
    co_return;
  }
  auto batch = std::make_shared<std::vector<MutationRecord>>(
      primary.TakePendingMutations());
  if (batch->empty()) {
    co_return;
  }
  const MachineId src = primary.location();
  if (options_.ack == AckMode::kDurable) {
    co_await Ship(primary.id(), src, std::move(batch));
  } else {
    rt_.sim().Spawn(Ship(primary.id(), src, std::move(batch)),
                    "repl_ship_" + std::to_string(primary.id()));
  }
}

Task<> ReplicationManager::Ship(
    ProcletId id, MachineId src,
    std::shared_ptr<std::vector<MutationRecord>> batch) {
  auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    co_return;
  }
  Replica& replica = *it->second;
  MutexGuard guard = co_await replica.mu.Acquire();
  if (replica.backup == nullptr ||
      rt_.cluster().machine(replica.backup_machine).failed()) {
    co_return;  // backup gone; the repair pass re-syncs from scratch
  }
  int64_t bytes = Rpc::kHeaderBytes;
  for (const MutationRecord& record : *batch) {
    bytes += record.bytes;
  }
  const MachineId dst = replica.backup_machine;
  const bool delivered = co_await rt_.fabric().Transfer(src, dst, bytes);
  if (!delivered || replica.backup == nullptr ||
      rt_.cluster().machine(dst).failed()) {
    co_return;  // log lost in flight (an endpoint died)
  }
  for (const MutationRecord& record : *batch) {
    (void)record.apply(*replica.backup);
  }
  mutations_shipped_ += static_cast<int64_t>(batch->size());
  bytes_shipped_ += bytes;
  replica.last_synced = rt_.sim().Now();
  // The ack round trip; durable-mode invocations suspend until here.
  (void)co_await rt_.fabric().Transfer(dst, src, options_.ack_bytes);
}

Duration ReplicationManager::StalenessOf(ProcletId id, SimTime now) const {
  auto it = replicas_.find(id);
  if (it == replicas_.end() || it->second->backup == nullptr ||
      rt_.cluster().machine(it->second->backup_machine).failed()) {
    return Duration::Max();
  }
  const Replica& replica = *it->second;
  // Fully shipped and the primary is reachable in the directory: the backup
  // matches every acked mutation, staleness zero. Otherwise the backup may
  // lag anything that happened after the last acknowledged sync.
  ProcletBase* primary =
      const_cast<Runtime&>(rt_).Find(id);  // Find is logically const
  if (primary != nullptr && !primary->has_pending_mutations()) {
    return Duration::Zero();
  }
  return now - replica.last_synced;
}

void ReplicationManager::Arm(FaultInjector& injector) {
  injector.OnCrash([this](MachineId machine) {
    rt_.sim().Spawn(RepairAfterCrash(machine),
                    "repl_repair_m" + std::to_string(machine));
  });
}

void ReplicationManager::ArmDetector(FailureDetector& detector) {
  detector.OnConfirm([this](MachineId machine) {
    rt_.sim().Spawn(RepairAfterCrash(machine),
                    "repl_repair_m" + std::to_string(machine));
  });
}

Task<> ReplicationManager::RepairAfterCrash(MachineId machine) {
  for (auto& [id, replica] : replicas_) {
    if (replica->backup == nullptr || replica->backup_machine != machine) {
      continue;
    }
    replica->backup.reset();  // died with its machine
    if (rt_.LocationOf(id) == kInvalidMachineId) {
      continue;  // primary is gone too (earlier crash); promotion handles it
    }
    BackupFactory factory = replica->factory;
    (void)co_await Replicate(rt_.CtxOn(options_.home), id, std::move(factory));
  }
}

bool ReplicationManager::HasLiveBackup(ProcletId id) const {
  auto it = replicas_.find(id);
  // A backup on a declared-dead (gray-failed) machine is as unusable as one
  // on a crashed machine: nothing may be promoted from behind the fence.
  return it != replicas_.end() && it->second->backup != nullptr &&
         !rt_.cluster().machine(it->second->backup_machine).failed() &&
         !rt_.MachineConsideredDead(it->second->backup_machine);
}

MachineId ReplicationManager::BackupMachineOf(ProcletId id) const {
  auto it = replicas_.find(id);
  return it == replicas_.end() ? kInvalidMachineId
                               : it->second->backup_machine;
}

Task<Status> ReplicationManager::PromoteBackup(Ctx ctx, ProcletId id) {
  auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    co_return Status::NotFound("proclet is not replicated");
  }
  Replica& replica = *it->second;
  // Waits out any in-flight log shipment so the backup is as fresh as the
  // last acknowledged batch.
  MutexGuard guard = co_await replica.mu.Acquire();
  if (!rt_.IsLost(id)) {
    co_return Status::FailedPrecondition("primary is not lost");
  }
  if (replica.backup == nullptr ||
      rt_.cluster().machine(replica.backup_machine).failed()) {
    co_return Status::DataLoss("backup died too");
  }
  const MachineId target = replica.backup_machine;
  // Control-plane rebind only: the state already lives on the backup
  // machine.
  (void)co_await rt_.fabric().Transfer(ctx.machine, target,
                                       rt_.config().control_message_bytes);
  Status adopted =
      rt_.AdoptRestored(id, std::move(replica.backup), target);
  if (!adopted.ok()) {
    co_return adopted;
  }
  replica.backup_machine = kInvalidMachineId;
  ++promotions_;
  if (Tracer* tracer = rt_.tracer()) {
    tracer->Instant(ctx.trace, target, TraceOp::kPromote, id);
  }
  QS_LOG_DEBUG("replication", "proclet %llu promoted on m%u",
               static_cast<unsigned long long>(id), target);
  // Re-arm with a fresh backup, best effort (a shrunken cluster may have no
  // anti-affine machine left).
  BackupFactory factory = replica.factory;
  guard.Unlock();
  (void)co_await Replicate(ctx, id, std::move(factory));
  co_return Status::Ok();
}

}  // namespace quicksand
