#include "quicksand/durability/recovery_coordinator.h"

#include <algorithm>
#include <string>
#include <utility>

#include "quicksand/common/logging.h"

namespace quicksand {

void RecoveryCoordinator::Arm(FaultInjector& injector) {
  // Flipping recovery mode is what makes the DS layer stall-and-retry on
  // ProcletLostError instead of reporting DataLoss immediately.
  rt_.SetRecoveryEnabled(true);
  injector.OnCrash([this](MachineId machine) {
    rt_.sim().Spawn(HandleCrash(machine),
                    "recovery_m" + std::to_string(machine));
  });
}

void RecoveryCoordinator::ArmDetector(FailureDetector& detector) {
  rt_.SetRecoveryEnabled(true);
  detector.OnConfirm([this](MachineId machine) {
    rt_.sim().Spawn(HandleCrash(machine),
                    "recovery_m" + std::to_string(machine));
  });
}

Task<> RecoveryCoordinator::HandleCrash(MachineId machine) {
  (void)co_await Recover(rt_.CtxOn(options_.home), machine);
}

Task<RecoveryReport> RecoveryCoordinator::Recover(Ctx ctx, MachineId machine) {
  RecoveryReport report;
  report.machine = machine;
  report.started = rt_.sim().Now();

  // The whole recovery walk is one `recover` span under the caller's stamp;
  // promotions and restores inside record their own instants. Child work
  // below runs under the span's context.
  SpanGuard span;
  if (Tracer* tracer = rt_.tracer()) {
    ctx.trace = tracer->BeginSpan(ctx.trace, ctx.machine, TraceOp::kRecover, 0,
                                  static_cast<int64_t>(machine));
    span = SpanGuard(tracer, ctx.trace, ctx.machine);
  }

  // Already sorted: deterministic restore order across same-seed runs.
  std::vector<ProcletId> lost = rt_.LostProcletsOn(machine);
  for (ProcletId id : lost) {
    if (checkpoints_ != nullptr && checkpoints_->IsDepot(id)) {
      continue;  // infrastructure: the manager rebuilds depots itself
    }
    ++report.lost;
    if (!rt_.IsLost(id)) {
      continue;  // another fiber (or an earlier hook) already restored it
    }
    if (replication_ != nullptr && replication_->HasLiveBackup(id)) {
      Status promoted = co_await replication_->PromoteBackup(ctx, id);
      if (promoted.ok()) {
        ++report.promoted;
        continue;
      }
      QS_LOG_DEBUG("recovery", "proclet %llu promotion failed: %s",
                   static_cast<unsigned long long>(id),
                   promoted.message().c_str());
    }
    if (checkpoints_ != nullptr && checkpoints_->Recoverable(id)) {
      Status restored = co_await checkpoints_->RestoreLost(ctx, id);
      if (restored.ok()) {
        ++report.restored;
        continue;
      }
      QS_LOG_DEBUG("recovery", "proclet %llu restore failed: %s",
                   static_cast<unsigned long long>(id),
                   restored.message().c_str());
    }
    ++report.unrecoverable;
  }

  for (RecoveredHook& hook : hooks_) {
    co_await hook(ctx, machine);
  }

  report.elapsed = rt_.sim().Now() - report.started;
  total_promoted_ += report.promoted;
  total_restored_ += report.restored;
  total_unrecoverable_ += report.unrecoverable;
  QS_LOG_INFO("recovery",
              "m%u: %lld lost, %lld promoted, %lld restored, %lld "
              "unrecoverable in %lld us",
              machine, static_cast<long long>(report.lost),
              static_cast<long long>(report.promoted),
              static_cast<long long>(report.restored),
              static_cast<long long>(report.unrecoverable),
              static_cast<long long>(report.elapsed.micros()));
  span.End("ok", report.promoted + report.restored);
  reports_.push_back(report);
  co_return report;
}

}  // namespace quicksand
