// CheckpointManager: periodic + on-revocation-notice snapshots of proclet
// state into per-machine storage depots placed anti-affine to the primary.
//
// Quicksand's harvested resources fail-stop with millisecond warnings (§2),
// and PR 1 made that loss observable; this manager makes it survivable.
// Every protected proclet gets:
//
//  * a periodic incremental checkpoint: the proclet's CaptureState() image
//    is written to a FlatStorage-style depot (one pinned StorageProclet per
//    depot machine) chosen anti-affine to the primary's current host, so a
//    single machine failure never takes the state and its checkpoint
//    together. The wire pays only the dirty bytes mutated since the last
//    checkpoint; the depot rewrites the full image (capacity delta + one
//    full-size disk write — a log-structured depot would make the disk cost
//    incremental too; documented simplification),
//  * a final pre-death snapshot on revocation notice (Arm), racing the
//    deadline alongside the EmergencyEvacuator — whichever finishes first
//    saves the proclet, and the capture path serializes through the normal
//    invocation gate so the two never deadlock,
//  * a recovery path (RestoreLost) used by the RecoveryCoordinator: read
//    the blob back (depot disk read + full-image transfer to the restore
//    target), rebuild the object via the registered factory, and rebind the
//    old proclet id through Runtime::AdoptRestored.
//
// The recovery point is the last completed checkpoint (RPO = up to one
// interval of mutations, zero if the final revocation snapshot landed);
// callers that need RPO ~ 0 under zero-warning crashes use the
// ReplicationManager instead (or in addition).

#ifndef QUICKSAND_DURABILITY_CHECKPOINT_MANAGER_H_
#define QUICKSAND_DURABILITY_CHECKPOINT_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/proclet/storage_proclet.h"
#include "quicksand/runtime/runtime.h"
#include "quicksand/sim/sync.h"

namespace quicksand {

// Cost-model stand-in for a serialized checkpoint stored in a depot: the
// real image stays in the manager's record (the simulator never serializes
// C++ objects); the blob carries the byte count the disk and wire charge.
struct CheckpointBlob {
  int64_t bytes = 0;

  int64_t WireBytes() const { return bytes; }
};

class CheckpointManager {
 public:
  // Rebuilds an empty proclet object of the protected type for restore;
  // RestoreState() then fills it from the checkpoint image.
  using RestoreFactory =
      std::function<std::unique_ptr<ProcletBase>(const ProcletInit&)>;

  struct Options {
    // Periodic checkpoint cadence (Start); tuned at runtime by the adapt
    // layer's CheckpointIntervalTuner.
    Duration interval = Duration::Millis(10);
    // Machine the manager's control fibers run on (the controller).
    MachineId home = 0;
    // Initial heap charge for each per-machine depot proclet.
    int64_t depot_base_bytes = 4096;
  };

  explicit CheckpointManager(Runtime& rt) : CheckpointManager(rt, Options{}) {}
  CheckpointManager(Runtime& rt, Options options)
      : rt_(rt), options_(options), interval_(options.interval), mu_(rt.sim()) {}

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  // Registers `id` for checkpointing and takes the first (full) checkpoint.
  // FailedPrecondition if the proclet's type does not implement the state
  // hooks; Ok if already protected.
  Task<Status> Protect(Ctx ctx, ProcletId id, RestoreFactory factory);

  template <typename P>
  Task<Status> ProtectAs(Ctx ctx, ProcletId id) {
    return Protect(ctx, id, [](const ProcletInit& init) {
      return std::unique_ptr<ProcletBase>(std::make_unique<P>(init));
    });
  }

  // Checkpoints one protected proclet now: capture through the invocation
  // gate at the host, ship the dirty bytes to the (anti-affine) depot,
  // rewrite the blob. No-op (Ok) when nothing changed since the last one.
  Task<Status> CheckpointNow(Ctx ctx, ProcletId id);

  // Checkpoints every protected proclet currently hosted on `machine` (the
  // revocation pre-death snapshot); returns how many succeeded.
  Task<int> CheckpointMachine(Ctx ctx, MachineId machine);

  // Spawns the periodic loop (every interval(), checkpoint all dirty
  // protected proclets). The loop runs until Stop().
  void Start();
  void Stop() { stopped_ = true; }

  // Subscribes to revocation notices: each notice spawns a final snapshot
  // pass over the dying machine, racing the deadline.
  void Arm(FaultInjector& injector);

  // --- Recovery (called by RecoveryCoordinator) -----------------------------

  // True when `id` has a completed checkpoint whose depot is still alive.
  bool Recoverable(ProcletId id) const;

  // True when `id` is one of the manager's own depot proclets. Depots are
  // infrastructure: a lost depot is rebuilt by re-checkpointing from the
  // live primaries (Arm's crash handler), never restored, so the
  // RecoveryCoordinator excludes them from per-crash loss accounting.
  bool IsDepot(ProcletId id) const { return depot_ids_.count(id) != 0; }

  // Restores a LOST proclet from its latest checkpoint onto `target` (chosen
  // by the placement policy when kInvalidMachineId), paying the depot read
  // and the full-image transfer, and rebinds the id via AdoptRestored.
  Task<Status> RestoreLost(Ctx ctx, ProcletId id,
                           MachineId target = kInvalidMachineId);

  // --- Introspection --------------------------------------------------------

  Duration interval() const { return interval_; }
  void set_interval(Duration interval) { interval_ = interval; }

  int64_t protected_count() const { return static_cast<int64_t>(records_.size()); }
  int64_t checkpoints_taken() const { return checkpoints_taken_; }
  int64_t bytes_shipped() const { return bytes_shipped_; }
  int64_t restores() const { return restores_; }

 private:
  struct Record {
    RestoreFactory factory;
    ProcletKind kind = ProcletKind::kMemory;
    StateImage image;       // latest committed image (authoritative copy)
    bool has_image = false;
    MachineId depot_machine = kInvalidMachineId;
    Ref<StorageProclet> depot;
    uint64_t depot_object = 0;
  };

  Task<> PeriodicLoop();
  Task<> HandleRevocation(MachineId machine);
  // Re-checkpoints records whose depot died with `machine` (primaries are
  // still alive; only the stored blobs were lost).
  Task<> HandleDepotLoss(MachineId machine);
  // Finds (or creates, pinned) the depot proclet on `machine`.
  Task<Result<Ref<StorageProclet>>> EnsureDepot(Ctx ctx, MachineId machine);
  // CheckpointNow body; caller holds mu_.
  Task<Status> CheckpointLocked(Ctx ctx, ProcletId id);

  Runtime& rt_;
  Options options_;
  Duration interval_;
  // Serializes checkpoint operations: the periodic loop and a revocation
  // snapshot may otherwise interleave depot creation and record commits.
  Mutex mu_;
  bool started_ = false;
  bool stopped_ = false;
  // std::map: recovery and the periodic loop iterate in id order so two
  // same-seed runs replay identically.
  std::map<ProcletId, Record> records_;
  std::map<MachineId, Ref<StorageProclet>> depots_;
  // Every depot ever created (never erased; ids are not reused).
  std::set<ProcletId> depot_ids_;
  uint64_t next_depot_object_ = 1;
  int64_t checkpoints_taken_ = 0;
  int64_t bytes_shipped_ = 0;
  int64_t restores_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_DURABILITY_CHECKPOINT_MANAGER_H_
