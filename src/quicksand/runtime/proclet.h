// ProcletBase: the migratable unit of resource consumption.
//
// A proclet (following Nu [50]) is an independently schedulable unit with a
// heap and methods. Quicksand specializes proclets by resource: compute
// proclets consume CPU, memory proclets store data, storage proclets keep
// persistent objects (§3.1). This base class carries what all of them share:
//
//  * identity and current location,
//  * byte-accounted heap charged to the hosting machine,
//  * the invocation gate — method calls are blocked while the proclet is
//    being migrated, split, or merged (§3.3), and migration drains active
//    calls before copying the heap,
//  * invocation statistics the scheduler uses (recency, affinity).
//
// Subclasses take a ProcletInit as their first constructor argument and
// forward it to ProcletBase; Runtime::Create is the only producer of
// ProcletInit values.

#ifndef QUICKSAND_RUNTIME_PROCLET_H_
#define QUICKSAND_RUNTIME_PROCLET_H_

#include <any>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "quicksand/cluster/machine.h"
#include "quicksand/common/status.h"
#include "quicksand/sim/task.h"
#include "quicksand/sim/wait_queue.h"

namespace quicksand {

class Runtime;
class ProcletBase;

// Deep-copied snapshot of a proclet's durable state, produced by
// ProcletBase::CaptureState and consumed by RestoreState on a freshly
// constructed object of the same concrete type. `data` is a per-type
// payload the two hooks agree on; `bytes` is the full serialized size the
// durability subsystem charges through the fabric and disk cost models.
// (Named StateImage, not Snapshot, to avoid colliding with
// ShardIndexProclet::Snapshot.)
struct StateImage {
  std::any data;
  int64_t bytes = 0;

  int64_t WireBytes() const { return bytes; }
};

// One logged mutation of a replicated proclet. `apply` replays the mutation
// against the backup object (same concrete type); `bytes` is the wire size
// of the log record shipped primary -> backup.
struct MutationRecord {
  std::function<Status(ProcletBase&)> apply;
  int64_t bytes = 0;
};

// Destination for a replicated proclet's mutation log. Implemented by the
// durability subsystem's ReplicationManager; declared here so Runtime::Invoke
// can flush the log without depending on durability headers.
class ReplicationSink {
 public:
  virtual ~ReplicationSink() = default;

  // Ships `primary`'s pending mutation records to its backup. Runs inside
  // Runtime::Invoke after the call body completes (and after ExitCall), so
  // a durable-ack mode can suspend the invocation until the backup
  // acknowledged without holding the gate.
  virtual Task<> Flush(ProcletBase& primary) = 0;
};

using ProcletId = uint64_t;
inline constexpr ProcletId kInvalidProcletId = 0;

enum class ProcletKind { kCompute, kMemory, kStorage };

const char* ProcletKindName(ProcletKind kind);

// Opaque construction token passed from Runtime::Create to the proclet.
struct ProcletInit {
  Runtime* rt;
  Simulator* sim;
  ProcletId id;
  ProcletKind kind;
  MachineId location;
};

class ProcletBase {
 public:
  explicit ProcletBase(const ProcletInit& init)
      : rt_(init.rt),
        id_(init.id),
        kind_(init.kind),
        location_(init.location),
        gate_waiters_(*init.sim),
        drain_waiters_(*init.sim) {}

  virtual ~ProcletBase() = default;

  ProcletBase(const ProcletBase&) = delete;
  ProcletBase& operator=(const ProcletBase&) = delete;

  ProcletId id() const { return id_; }
  ProcletKind kind() const { return kind_; }
  MachineId location() const { return location_; }
  int64_t heap_bytes() const { return heap_bytes_; }

  // Fencing token: bumped by the Runtime on every directory rebind
  // (creation, migration flip, restore adoption). Proclet methods that
  // admit stamped requests compare the caller's stamp against this (see
  // health/fencing.h); 0 only before Create finishes wiring the object.
  uint64_t epoch() const { return epoch_; }
  // True when the controller declared this incarnation dead (gray failure /
  // partition) while the hosting machine may still be running: the object
  // must no longer serve or complete anything.
  bool fenced() const { return fenced_; }

  bool gate_closed() const { return gate_closed_; }
  int64_t active_calls() const { return active_calls_; }
  int64_t invocation_count() const { return invocation_count_; }
  SimTime last_invocation() const { return last_invocation_; }

  // True once the hosting machine crashed out from under this proclet. The
  // object lingers (the Runtime keeps it until teardown so in-flight
  // operations can observe the loss safely), but its state is gone: Find()
  // no longer returns it, invocations raise ProcletLostError, and heap
  // accounting becomes a no-op.
  bool lost() const { return lost_; }

  // True for proclets holding only soft state that can be dropped and
  // recomputed (memo cache shards). The EmergencyEvacuator and LocalReactor
  // reclaim these FIRST — dropping cache costs zero wire bytes, while
  // migrating live state races the revocation deadline — and never spend
  // migration budget moving them.
  virtual bool harvestable() const { return false; }

  // --- Heap accounting (call only from within a proclet method) ------------

  // Grows the heap, charging the hosting machine. Fails without side effects
  // if the machine is out of memory.
  bool TryChargeHeap(int64_t bytes);
  void ReleaseHeap(int64_t bytes);

  // --- Durability hooks -----------------------------------------------------
  // Types that override both hooks can be checkpointed and replicated; the
  // defaults make a proclet unprotectable (CheckpointManager::Protect and
  // ReplicationManager::Replicate refuse it).

  // Deep-copies the durable state. Returns nullopt when the type does not
  // support state capture (e.g. compute proclets, whose "state" is queued
  // closures recovered via DistPool lineage instead).
  virtual std::optional<StateImage> CaptureState() const { return std::nullopt; }

  // Rebuilds state from an image captured by the same concrete type,
  // re-charging the heap (and auxiliary resources such as disk capacity)
  // against the machine in this object's ProcletInit. Must be side-effect
  // free on failure.
  virtual Status RestoreState(const StateImage& image) {
    (void)image;
    return Status::FailedPrecondition("proclet type is not restorable");
  }

  // Bytes mutated since the last checkpoint — the incremental-checkpoint
  // wire cost. Maintained by RecordMutation; drained by the checkpoint
  // manager at capture time.
  int64_t dirty_bytes() const { return dirty_bytes_; }
  int64_t TakeDirtyBytes() { return std::exchange(dirty_bytes_, 0); }
  void AddDirtyBytes(int64_t bytes) { dirty_bytes_ += bytes; }

  bool replicated() const { return sink_ != nullptr; }
  bool checkpoint_protected() const { return checkpoint_protected_; }
  // Durable proclets must keep their identity and shape: shard maintenance
  // (split/merge) mutates state outside the invocation path the mutation log
  // observes, so it skips them.
  bool durable() const { return replicated() || checkpoint_protected_; }

  void AttachReplicationSink(ReplicationSink* sink) { sink_ = sink; }
  void DetachReplicationSink() {
    sink_ = nullptr;
    pending_mutations_.clear();
  }
  void SetCheckpointProtected(bool on) { checkpoint_protected_ = on; }

  bool has_pending_mutations() const { return !pending_mutations_.empty(); }
  std::vector<MutationRecord> TakePendingMutations() {
    return std::exchange(pending_mutations_, {});
  }
  ReplicationSink* replication_sink() const { return sink_; }

 protected:
  Runtime& runtime() const { return *rt_; }

  // --- Lifecycle hooks (overridden by resource proclets) --------------------

  // Called with the gate closed and calls drained, before the heap is copied
  // for migration or released for destruction. Compute proclets use this to
  // let in-flight jobs finish so heap accounting stays consistent.
  virtual Task<> OnQuiesce() { co_return; }
  // Called after a migration completes (gate reopened).
  virtual void OnResume() {}
  // Called before destruction (after OnQuiesce); must stop background
  // fibers and release any auxiliary resources.
  virtual Task<> OnDestroy() { co_return; }

  // Extra bytes to ship during migration beyond the heap (e.g. a storage
  // proclet's on-disk objects).
  virtual int64_t MigrationExtraBytes() const { return 0; }
  // Reserve/release auxiliary per-machine resources (e.g. disk capacity)
  // around a relocation. TryRelocateAux must not have side effects on
  // failure.
  virtual bool TryRelocateAux(MachineId dst) { return true; }
  virtual void FinishRelocateAux(MachineId src) {}
  // Exact inverse of a successful TryRelocateAux(dst): releases the
  // destination-side reservation when a migration unwinds after reserving.
  virtual void UndoRelocateAux(MachineId dst) {}

  // Called synchronously when the hosting machine crashes, before the
  // Runtime zeroes the heap accounting. Must not suspend: wake/stop
  // background fibers so they exit on their own (the machine's cores are
  // already halted — joins would deadlock).
  virtual void OnLost() {}

  // Called by mutation methods. Accumulates incremental-checkpoint bytes
  // and, when a replication sink is attached, appends a replayable record
  // that Runtime::Invoke ships to the backup when the invocation completes.
  // Replay applies `apply` to the backup object, which re-runs the mutation
  // through the same methods — the backup has no sink, so recording there is
  // a no-op and the log does not recurse.
  void RecordMutation(std::function<Status(ProcletBase&)> apply,
                      int64_t bytes) {
    dirty_bytes_ += bytes;
    if (sink_ != nullptr) {
      pending_mutations_.push_back(MutationRecord{std::move(apply), bytes});
    }
  }

  // Dirty-bytes-only variant for checkpoint-eligible mutations that are not
  // log-shipped (e.g. storage proclets, which are checkpoint-only).
  void MarkDirty(int64_t bytes) { dirty_bytes_ += bytes; }

 private:
  friend class Runtime;

  // Invocation gate -----------------------------------------------------
  // Waits while the gate is closed; returns false if the proclet was
  // destroyed while waiting (the caller must not touch it afterwards).
  Task<bool> EnterCall();
  void ExitCall();
  // Closes the gate and waits for in-flight calls to finish. Pre: gate open.
  Task<> CloseGateAndDrain();
  void OpenGate();
  void MarkDestroyed();
  // Transitions to the lost state: runs OnLost, marks destroyed (waking
  // gate waiters so they observe the loss), and zeroes heap accounting
  // WITHOUT releasing it (the Runtime releases against the dead machine's
  // account wholesale). Idempotent.
  void MarkLost();

  Runtime* rt_;
  ProcletId id_;
  ProcletKind kind_;
  MachineId location_;
  int64_t heap_bytes_ = 0;
  uint64_t epoch_ = 0;
  bool gate_closed_ = false;
  bool destroyed_ = false;
  bool lost_ = false;
  bool fenced_ = false;
  int64_t active_calls_ = 0;
  int64_t invocation_count_ = 0;
  SimTime last_invocation_ = SimTime::Zero();
  int64_t dirty_bytes_ = 0;
  bool checkpoint_protected_ = false;
  ReplicationSink* sink_ = nullptr;
  std::vector<MutationRecord> pending_mutations_;
  WaitQueue gate_waiters_;
  WaitQueue drain_waiters_;
};

}  // namespace quicksand

#endif  // QUICKSAND_RUNTIME_PROCLET_H_
