// Runtime: Quicksand's distributed runtime (§3).
//
// One Runtime spans the whole cluster (as Nu's runtime does) and provides:
//
//  * proclet creation/destruction with policy-driven placement,
//  * location-transparent method invocation: local calls are direct function
//    calls; remote calls pay RPC wire costs; calls racing with migration
//    bounce off the stale location and retry (Nu-style forwarding),
//  * millisecond-scale proclet migration: gate -> drain -> copy heap over
//    the fabric -> flip directory -> reopen,
//  * maintenance sections for the split/merge machinery (§3.3),
//  * affinity tracking for locality-aware scheduling (§5).
//
// Every proclet-facing entry point takes a Ctx naming the machine the caller
// is executing on — that is what decides local vs. remote costs.

#ifndef QUICKSAND_RUNTIME_RUNTIME_H_
#define QUICKSAND_RUNTIME_RUNTIME_H_

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "quicksand/cluster/cluster.h"
#include "quicksand/common/stats.h"
#include "quicksand/common/status.h"
#include "quicksand/common/wire.h"
#include "quicksand/net/rpc.h"
#include "quicksand/overload/admission.h"
#include "quicksand/runtime/proclet.h"
#include "quicksand/sched/placement.h"
#include "quicksand/sim/simulator.h"
#include "quicksand/trace/trace.h"

namespace quicksand {

class AdmissionController;
class FaultInjector;
class FailureDetector;
class FlightRecorder;

// Thrown when an invocation targets a proclet that has been destroyed.
// Sharded data structures catch this, refresh their index, and retry.
class ProcletGoneError : public std::runtime_error {
 public:
  explicit ProcletGoneError(ProcletId id)
      : std::runtime_error("proclet " + std::to_string(id) + " is gone"), id_(id) {}

  ProcletId id() const { return id_; }

 private:
  ProcletId id_;
};

// Thrown when an invocation targets a proclet whose hosting machine crashed:
// the proclet's state is unrecoverable. Distinct from ProcletGoneError
// (deliberate destruction) — retrying or refreshing an index cannot help;
// callers must surface data loss (Status::DataLoss) or rebuild the state.
class ProcletLostError : public std::runtime_error {
 public:
  explicit ProcletLostError(ProcletId id)
      : std::runtime_error("proclet " + std::to_string(id) +
                           " was lost to a machine failure"),
        id_(id) {}

  ProcletId id() const { return id_; }

 private:
  ProcletId id_;
};

// Thrown when an invocation could not be delivered: the request (or its
// response) kept vanishing into a partition or lossy link while the proclet
// itself is — as far as anyone can tell — still alive. Distinct from
// ProcletLostError (the state is not known to be gone) and from
// TooManyBouncesError (the proclet was reachable, just moving). Callers may
// retry with the SAME request id: the fencing layer dedups replays
// (health/fencing.h), so at-least-once resends are safe for guarded
// proclets.
class ProcletUnreachableError : public std::runtime_error {
 public:
  explicit ProcletUnreachableError(ProcletId id)
      : std::runtime_error("proclet " + std::to_string(id) +
                           " is unreachable (network partition or loss)"),
        id_(id) {}

  ProcletId id() const { return id_; }

 private:
  ProcletId id_;
};

// Thrown when an invocation was rejected at admission by the overload
// controller: the target machine has a standing queue and queuing more work
// would only grow it (maps to Status::ResourceExhausted at RPC level). The
// proclet never ran the call — retrying is safe but should go through a
// retry budget, and callers with a degraded-mode fallback should prefer it.
class InvocationSheddedError : public std::runtime_error {
 public:
  explicit InvocationSheddedError(ProcletId id)
      : std::runtime_error("invocation of proclet " + std::to_string(id) +
                           " shed by admission control"),
        id_(id) {}

  ProcletId id() const { return id_; }

 private:
  ProcletId id_;
};

// Thrown when an invocation reached its target after its end-to-end
// deadline had already passed: the work was refused at admission instead of
// being performed dead (maps to Status::DeadlineExceeded). The proclet
// never ran the call.
class DeadlineExpiredError : public std::runtime_error {
 public:
  explicit DeadlineExpiredError(ProcletId id)
      : std::runtime_error("invocation of proclet " + std::to_string(id) +
                           " arrived after its deadline"),
        id_(id) {}

  ProcletId id() const { return id_; }

 private:
  ProcletId id_;
};

// Thrown when the resolve/bounce retry loop exhausts max_invoke_attempts
// while the proclet still exists — a bounce livelock (the proclet keeps
// migrating out from under the caller), not destruction.
class TooManyBouncesError : public std::runtime_error {
 public:
  TooManyBouncesError(ProcletId id, int attempts)
      : std::runtime_error("invocation of proclet " + std::to_string(id) +
                           " bounced " + std::to_string(attempts) +
                           " times without landing"),
        id_(id) {}

  ProcletId id() const { return id_; }

 private:
  ProcletId id_;
};

// Execution context: which machine the current activity runs on, and (when
// running inside a compute proclet) which proclet — used for affinity
// tracking.
struct Ctx {
  Runtime* rt = nullptr;
  MachineId machine = 0;
  ProcletId caller_proclet = kInvalidProcletId;
  // Causal stamp for tracing: work done under this context records under
  // trace.trace_id / trace.parent_span. Invalid (default) = untraced root.
  TraceContext trace{};
};

template <typename P>
class Ref;

struct RuntimeConfig {
  // Machine hosting the location directory (Nu's controller).
  MachineId controller = 0;
  // Fixed migration cost: page pinning, mapping setup, control handshakes
  // (§5 notes these kernel bottlenecks explicitly).
  Duration migration_fixed_overhead = Duration::Micros(200);
  // Metadata shipped alongside the heap during migration.
  int64_t migration_header_bytes = 4096;
  // Runtime work to set up a new proclet (heap creation, registration).
  Duration creation_overhead = Duration::Micros(10);
  // Size of control-plane messages (create/ack/redirect/directory lookups).
  int64_t control_message_bytes = 128;
  // Safety valve on the resolve/bounce retry loop.
  int max_invoke_attempts = 16;
  // Pause before re-resolving after an invocation leg was not delivered
  // (network fault or endpoint death not yet recorded). Each pause consumes
  // one invoke attempt, so undeliverable calls fail in bounded time.
  Duration invoke_retry_backoff = Duration::Micros(100);
  // Lazy ("post-copy"-style) migration, after §5's CXL discussion: "we can
  // speed up resource proclet migration by postponing the copying of data".
  // The proclet resumes at the destination right after the fixed overhead;
  // the heap copies in the background (memory is double-charged for the
  // duration of the copy). Proclets with auxiliary bytes (storage) still
  // migrate eagerly.
  bool lazy_migration = false;
};

struct RuntimeStats {
  int64_t local_invocations = 0;
  int64_t remote_invocations = 0;
  int64_t bounces = 0;
  int64_t directory_lookups = 0;
  int64_t migrations = 0;
  int64_t failed_migrations = 0;
  int64_t creations = 0;
  int64_t destructions = 0;
  int64_t lazy_copies_completed = 0;
  // Failure & revocation accounting.
  int64_t crashes = 0;          // machine failures observed by the runtime
  int64_t lost_proclets = 0;    // proclets whose host died under them
  int64_t zombie_applies = 0;   // applies that ran against a limbo corpse
  int64_t bounce_livelocks = 0;  // invocations that exhausted the bounce loop
  // Durability accounting.
  int64_t restored_proclets = 0;  // lost proclets brought back by recovery
  int64_t checkpoint_bytes = 0;   // incremental checkpoint bytes shipped
  // Network-failure & membership accounting.
  int64_t declared_dead = 0;      // machines fenced out while (maybe) alive
  int64_t fenced_migrations = 0;  // migrations rejected on a stale epoch
  int64_t fenced_rpcs = 0;        // stamped requests rejected by FenceGuards
  int64_t undelivered_invocations = 0;  // request legs eaten by the network
  int64_t undelivered_lookups = 0;      // directory RPCs eaten by the network
  int64_t response_retransmits = 0;     // response legs resent after a drop
  int64_t unreachable_invocations = 0;  // invocations that gave up on the net
  // Overload-control accounting.
  int64_t shed_invocations = 0;       // rejected by admission control
  int64_t deadline_rejected_invocations = 0;  // arrived after their deadline
  int64_t stale_reads = 0;            // reads served from a backup (degraded)
  // Gate-closed window per migration (what callers experience).
  LatencyHistogram migration_latency;
  // Background copy completion time for lazy migrations.
  LatencyHistogram lazy_copy_latency;
  LatencyHistogram remote_invoke_latency;
};

namespace internal {

template <typename T>
struct UnwrapTask;

template <typename T>
struct UnwrapTask<Task<T>> {
  using type = T;
};

}  // namespace internal

class Runtime {
 public:
  Runtime(Simulator& sim, Cluster& cluster, RuntimeConfig config = RuntimeConfig{});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  Simulator& sim() { return sim_; }
  Cluster& cluster() { return cluster_; }
  Fabric& fabric() { return cluster_.fabric(); }
  const RuntimeConfig& config() const { return config_; }
  const RuntimeStats& stats() const { return stats_; }

  void SetPlacementPolicy(std::unique_ptr<PlacementPolicy> policy);
  PlacementPolicy& placement() { return *placement_; }

  // A Ctx for driver code running on the given machine.
  Ctx CtxOn(MachineId machine) { return Ctx{this, machine, kInvalidProcletId}; }

  // --- Lifecycle ------------------------------------------------------------

  // Creates a proclet of type P (which must declare `static constexpr
  // ProcletKind kKind` and take ProcletInit as its first constructor
  // argument). `request.heap_bytes` is the initial heap charge.
  //
  // Args are taken BY VALUE deliberately: Create is a lazy coroutine, so
  // reference parameters would dangle once the caller's temporaries die
  // (before the body ever runs). Values are copied into the frame.
  template <typename P, typename... Args>
  Task<Result<Ref<P>>> Create(Ctx ctx, PlacementRequest request, Args... args);

  // Destroys a proclet: drains in-flight calls, releases its heap, and fails
  // subsequent invocations with ProcletGoneError.
  Task<Status> Destroy(Ctx ctx, ProcletId id);

  // --- Migration ------------------------------------------------------------

  // Moves a proclet to `dst`. Blocks new invocations for the duration, which
  // is migration_fixed_overhead + heap/bandwidth (sub-millisecond for small
  // proclets — the property Fig. 1 depends on).
  //
  // `expected_epoch` is a fencing token: nonzero means "perform this move
  // only if the proclet is still at the epoch I resolved". A replayed or
  // duplicated migration command from before a rebind then fails with
  // Aborted instead of yanking the proclet out from under its new owner —
  // this is what makes directory rebind idempotent under at-least-once
  // delivery. 0 skips the check (trusted local callers: evacuator,
  // rebalancer).
  Task<Status> Migrate(ProcletId id, MachineId dst, uint64_t expected_epoch = 0);

  // --- Maintenance (split/merge support) -------------------------------------

  // Closes the invocation gate and drains active calls, giving the caller
  // exclusive access to the proclet until EndMaintenance. Fails if the
  // proclet is gone or already under maintenance/migration.
  Task<Status> BeginMaintenance(ProcletId id);
  void EndMaintenance(ProcletId id);

  // Direct pointer for gate-holding maintenance code; nullptr if gone.
  template <typename P>
  P* UnsafeGet(ProcletId id) {
    return static_cast<P*>(Find(id));
  }

  // --- Failure handling -------------------------------------------------------

  // Fail-stop crash of `machine`: every proclet hosted there is lost — its
  // directory entry and cache entries are purged, invocations (in-flight and
  // future) raise ProcletLostError, and heap/disk accounting is written off.
  // The crashed machine must not be the controller (the directory itself is
  // out of scope for this failure model). Call after Machine::Fail() and
  // Fabric::FailMachine() — FaultInjector does all three in order.
  void HandleMachineFailure(MachineId machine);

  // Registers HandleMachineFailure as a crash handler on the injector.
  void AttachFaultInjector(FaultInjector& injector);

  // Declares `machine` dead on the controller's authority WITHOUT the
  // machine having fail-stopped — the gray-failure path: a partitioned or
  // silent host is fenced out of membership, its proclets are marked fenced
  // and lost (recoverable elsewhere), and it is never readmitted even if it
  // later proves alive. Idempotent; no-op overlap with HandleMachineFailure.
  void DeclareMachineDead(MachineId machine);

  // Subscribes to a failure detector's confirmations: a confirmed machine is
  // handled as a crash if its NIC is actually dead, or declared dead (gray
  // failure) if it is merely unreachable. Register BEFORE
  // RecoveryCoordinator::ArmDetector, for the same ordering reason as
  // AttachFaultInjector.
  void AttachFailureDetector(FailureDetector& detector);

  // True once the runtime has written `machine` off — by observing a crash
  // or by declaring it dead on the detector's word.
  bool MachineConsideredDead(MachineId machine) const {
    return dead_machines_.count(machine) != 0;
  }

  // True if the proclet was lost to a machine failure (as opposed to never
  // existing or being deliberately destroyed).
  bool IsLost(ProcletId id) const { return lost_ids_.count(id) != 0; }

  // --- Fencing ---------------------------------------------------------------

  // Current fencing epoch of `id`: starts at 1, bumped on every directory
  // rebind (migration, restore). 0 when the proclet does not exist. Clients
  // stamp requests with this; FenceGuards compare stamps (health/fencing.h).
  uint64_t EpochOf(ProcletId id) const {
    auto it = epoch_of_.find(id);
    return it == epoch_of_.end() ? 0 : it->second;
  }

  // Called by proclets whose FenceGuard rejected a stale-epoch request, so
  // fencing activity aggregates in RuntimeStats for benches and metrics.
  // When a tracer is attached, the rejection also records as an `abort`
  // instant against the proclet's host — the oracle TraceQuery uses to
  // assert no fenced request ever commits.
  void NoteFencedRpc(ProcletId id = kInvalidProcletId, int64_t request_id = 0) {
    ++stats_.fenced_rpcs;
    if (tracer_ != nullptr) {
      tracer_->Instant(TraceContext{}, TraceHomeOf(id), TraceOp::kAbort, id,
                       request_id, "fenced");
    }
  }

  // Mirror image: a stamped request passed its FenceGuard and was applied.
  //
  // Zombie applies are NOT commits: when the host fail-stopped mid-call the
  // in-flight fiber still runs to completion against the limbo corpse, but
  // Invoke discards the result (ProcletLostError) and the corpse's state
  // never rejoins the live table — the caller gets no ack and retries
  // against the replacement. Recording a commit instant for that apply
  // would make the legitimate failover re-execution look like a
  // double-apply to the exactly-once oracle.
  void NoteCommittedRpc(ProcletId id, int64_t request_id = 0) {
    if (IsLost(id)) {
      ++stats_.zombie_applies;
      return;
    }
    if (tracer_ != nullptr) {
      tracer_->Instant(TraceContext{}, TraceHomeOf(id), TraceOp::kCommit, id,
                       request_id, "committed");
    }
  }

  // --- Overload control -------------------------------------------------------

  // Attaches an admission controller (nullptr detaches). Invoke then
  // consults it at the target machine after the request arrives and before
  // any gate wait or proclet work: a shed invocation raises
  // InvocationSheddedError having consumed only the request leg plus a
  // header-sized rejection response. Invocations whose TraceContext
  // deadline has passed on arrival are likewise rejected with
  // DeadlineExpiredError — dead work is refused, not queued.
  void AttachAdmission(AdmissionController* admission) { admission_ = admission; }
  AdmissionController* admission() { return admission_; }

  // Called by the degraded-read path (durability/replication) so stale
  // serves aggregate in RuntimeStats and the trace.
  void NoteStaleRead(ProcletId id, MachineId backup_machine) {
    ++stats_.stale_reads;
    if (tracer_ != nullptr) {
      tracer_->Instant(TraceContext{}, backup_machine, TraceOp::kStaleServe,
                       id);
    }
  }

  // --- Tracing ---------------------------------------------------------------

  // Attaches a tracer (nullptr detaches). The runtime then records spawn /
  // destroy / migrate / invoke / failure events; with no tracer attached
  // every hook is a null-checked no-op and sim-time behaviour is identical.
  void AttachTracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() { return tracer_; }

  // Attaches a flight recorder: HandleMachineFailure and DeclareMachineDead
  // then freeze the dying machine's event ring before purging it.
  void AttachFlightRecorder(FlightRecorder* recorder) {
    flight_recorder_ = recorder;
  }

  // --- Recovery (durability subsystem) ---------------------------------------

  // Installs `obj` — a restored copy of lost proclet `id`, already carrying
  // its state (RestoreState / backup promotion charged the heap at `host`) —
  // under the old id, rebinding the directory entry atomically so existing
  // DistPtrs and routing caches heal through the normal miss path. The old
  // object stays in limbo for fibers that still reference it.
  Status AdoptRestored(ProcletId id, std::unique_ptr<ProcletBase> obj,
                       MachineId host);

  // Waits (bounded, polling) for a lost proclet to be restored. Returns true
  // once the directory has a binding for `id` again; false on timeout, if
  // the proclet was deliberately destroyed, or when no recovery coordinator
  // is armed (nothing will ever restore it).
  Task<bool> AwaitRestore(ProcletId id, Duration timeout,
                          Duration poll = Duration::Micros(100));

  // Set by RecoveryCoordinator::Arm. Sharded data structures consult this to
  // decide between a bounded stall (restore is coming) and DataLoss.
  bool recovery_enabled() const { return recovery_enabled_; }
  void SetRecoveryEnabled(bool on) { recovery_enabled_ = on; }

  // Lost proclets whose last host was `machine` and which have not been
  // restored yet; sorted by id for deterministic recovery order.
  std::vector<ProcletId> LostProcletsOn(MachineId machine) const;

  // Checkpoint traffic accounting (CheckpointManager).
  void AccountCheckpoint(int64_t bytes) { stats_.checkpoint_bytes += bytes; }

  // --- Introspection ----------------------------------------------------------

  ProcletBase* Find(ProcletId id);
  // Authoritative location; kInvalidMachineId if the proclet is gone.
  MachineId LocationOf(ProcletId id) const;
  std::vector<ProcletId> ProcletsOn(MachineId machine) const;
  std::vector<ProcletId> AllProclets() const;
  size_t proclet_count() const { return proclets_.size(); }

  // --- Affinity --------------------------------------------------------------

  void RecordAffinity(ProcletId a, ProcletId b, int64_t bytes);
  int64_t AffinityBytes(ProcletId a, ProcletId b) const;
  // Total remote traffic attributed to proclet `a` per peer machine.
  std::unordered_map<ProcletId, int64_t> AffinityPeers(ProcletId a) const;

  // --- Invocation -------------------------------------------------------------

  // Runs `fn(P&)` at the proclet's current machine. `fn` must return
  // Task<R>; the call returns Task<R>. `request_bytes` models the argument
  // payload; the response payload is WireSizeOf(result) automatically.
  // Throws ProcletGoneError if the proclet has been destroyed.
  template <typename P, typename Fn>
  auto Invoke(Ctx ctx, ProcletId id, Fn fn, int64_t request_bytes = 0)
      -> Task<typename internal::UnwrapTask<std::invoke_result_t<Fn, P&>>::type>;

 private:
  friend class ProcletBase;

  // Untraced body of Migrate (the public entry wraps it in a span).
  Task<Status> MigrateImpl(ProcletId id, MachineId dst, uint64_t expected_epoch);

  // Machine to attribute a proclet-scoped trace event to: its current host,
  // falling back to the controller when the proclet is gone or lost.
  MachineId TraceHomeOf(ProcletId id) const {
    const MachineId home = LocationOf(id);
    return home == kInvalidMachineId ? config_.controller : home;
  }

  // Lost-but-referenced proclet object, if any (operators that held a
  // pointer across a suspension use this to keep observing it safely).
  ProcletBase* FindEvenIfLost(ProcletId id);

  // Marks one live proclet lost: writes off its accounting, purges the
  // directory and caches, and parks the object in limbo_.
  void LoseProclet(ProcletId id);

  // Background heap copy for lazy migrations.
  Task<> LazyCopy(ProcletId id, MachineId src, MachineId dst, int64_t bytes,
                  SimTime started);

  // Resolves via the caller's cache, falling back to a directory RPC.
  // Throws ProcletGoneError if the directory has no entry. Returns
  // kInvalidMachineId when the directory RPC itself was eaten by the network
  // (the caller backs off and retries — an attempt, not an answer).
  Task<MachineId> ResolveLocation(MachineId from, ProcletId id);
  void InvalidateCache(MachineId machine, ProcletId id);
  // Pays the cost of a bounced call's redirect response.
  Task<> PayBounce(MachineId stale_target, MachineId caller);
  // Ships an invocation response, retransmitting through drops; false when
  // the network ate every attempt (the invocation is then unreachable).
  Task<bool> DeliverResponse(MachineId from, MachineId to, int64_t bytes);
  // Shared tail of HandleMachineFailure and DeclareMachineDead: purges the
  // machine's cache and loses every proclet it hosts, optionally fencing
  // the corpses (gray failure: the host may still be running them).
  void PurgeMachine(MachineId machine, bool fence);

  ProcletId next_id_ = 1;
  Simulator& sim_;
  Cluster& cluster_;
  RuntimeConfig config_;
  RuntimeStats stats_;
  std::unique_ptr<PlacementPolicy> placement_;
  std::unordered_map<ProcletId, std::unique_ptr<ProcletBase>> proclets_;
  // Proclets lost to machine failures. The objects linger here until the
  // Runtime is torn down: in-flight calls, gate waiters, and operators that
  // captured a ProcletBase* across a suspension observe `lost()` instead of
  // a dangling pointer. Their heap accounting is already zeroed, so the
  // cost is a few hundred bytes per lost proclet per run.
  std::unordered_map<ProcletId, std::unique_ptr<ProcletBase>> limbo_;
  // Older corpses for ids lost more than once (a restored proclet can be
  // lost again; limbo_ keeps the newest corpse, this keeps the rest alive
  // for any fibers still holding pointers).
  std::vector<std::unique_ptr<ProcletBase>> graveyard_;
  std::unordered_set<ProcletId> lost_ids_;
  // Machines written off (crashed or declared dead); guards against the
  // oracle and detector paths both purging the same machine.
  std::unordered_set<MachineId> dead_machines_;
  bool recovery_enabled_ = false;
  // Authoritative directory (hosted on config_.controller).
  std::unordered_map<ProcletId, MachineId> directory_;
  // Fencing epochs, bumped on every directory rebind (see EpochOf).
  std::unordered_map<ProcletId, uint64_t> epoch_of_;
  // Per-machine location caches (lazily invalidated; stale entries bounce).
  std::vector<std::unordered_map<ProcletId, MachineId>> location_cache_;
  // Pairwise communication volume (symmetric).
  std::unordered_map<ProcletId, std::unordered_map<ProcletId, int64_t>> affinity_by_;
  // Optional observability hooks (not owned; null = disabled).
  Tracer* tracer_ = nullptr;
  FlightRecorder* flight_recorder_ = nullptr;
  // Optional overload control (not owned; null = admit everything).
  AdmissionController* admission_ = nullptr;
};

// Typed handle to a proclet. Cheap to copy and to send over the wire.
template <typename P>
class Ref {
 public:
  Ref() = default;
  Ref(Runtime* rt, ProcletId id) : rt_(rt), id_(id) {}

  ProcletId id() const { return id_; }
  Runtime* runtime() const { return rt_; }
  explicit operator bool() const { return rt_ != nullptr && id_ != kInvalidProcletId; }

  bool operator==(const Ref& other) const { return id_ == other.id_; }

  // Current (authoritative) location — for scheduling/diagnostics only;
  // invocation resolves through the caching path.
  MachineId Location() const { return rt_->LocationOf(id_); }

  // co_await ref.Call(ctx, [](P& p) -> Task<R> {...});
  template <typename Fn>
  auto Call(Ctx ctx, Fn fn, int64_t request_bytes = 0) const {
    return rt_->Invoke<P>(ctx, id_, std::move(fn), request_bytes);
  }

 private:
  Runtime* rt_ = nullptr;
  ProcletId id_ = kInvalidProcletId;
};

// --- Template implementations -------------------------------------------------

template <typename P, typename... Args>
Task<Result<Ref<P>>> Runtime::Create(Ctx ctx, PlacementRequest request, Args... args) {
  static_assert(std::is_base_of_v<ProcletBase, P>, "P must derive from ProcletBase");
  request.kind = P::kKind;
  Result<MachineId> placed = placement_->Place(request, cluster_);
  if (!placed.ok()) {
    co_return placed.status();
  }
  const MachineId host = *placed;
  // Pinned placements bypass the feasibility check, so re-check liveness.
  if (cluster_.machine(host).failed()) {
    co_return Status::Unavailable("host machine has failed");
  }
  if (!cluster_.machine(host).memory().TryCharge(request.heap_bytes)) {
    co_return Status::ResourceExhausted("host machine out of memory");
  }
  // Control handshake with the host, then runtime-side setup work.
  const Delivery handshake = co_await fabric().TransferDetailed(
      ctx.machine, host, config_.control_message_bytes);
  if (handshake != Delivery::kDelivered && !cluster_.machine(ctx.machine).failed()) {
    cluster_.machine(host).memory().Release(request.heap_bytes);
    co_return Status::Unavailable("creation handshake lost in the network");
  }
  co_await sim_.Sleep(config_.creation_overhead);
  if (cluster_.machine(host).failed()) {
    cluster_.machine(host).memory().Release(request.heap_bytes);
    co_return Status::Unavailable("host machine failed during creation");
  }

  const ProcletId id = next_id_++;
  ProcletInit init{this, &sim_, id, P::kKind, host};
  auto proclet = std::make_unique<P>(init, std::move(args)...);
  proclet->heap_bytes_ = request.heap_bytes;
  proclet->epoch_ = 1;
  epoch_of_[id] = 1;
  if (P::kKind == ProcletKind::kCompute) {
    cluster_.machine(host).AdjustHostedCompute(1);
  }
  directory_[id] = host;
  location_cache_[ctx.machine][id] = host;
  proclets_.emplace(id, std::move(proclet));
  ++stats_.creations;
  if (tracer_ != nullptr) {
    tracer_->Instant(ctx.trace, host, TraceOp::kSpawn, id, request.heap_bytes,
                     ProcletKindName(P::kKind));
  }

  co_await fabric().Transfer(host, ctx.machine, config_.control_message_bytes);
  co_return Ref<P>(this, id);
}

template <typename P, typename Fn>
auto Runtime::Invoke(Ctx ctx, ProcletId id, Fn fn, int64_t request_bytes)
    -> Task<typename internal::UnwrapTask<std::invoke_result_t<Fn, P&>>::type> {
  using R = typename internal::UnwrapTask<std::invoke_result_t<Fn, P&>>::type;

  // The whole resolve/bounce/execute envelope is one `invoke` span; the
  // guard lives in this coroutine frame, so every throw path below records
  // the span ending in "abort" as the frame unwinds.
  SpanGuard invoke_span;
  TraceContext tctx = ctx.trace;
  if (tracer_ != nullptr) {
    tctx = tracer_->BeginSpan(ctx.trace, ctx.machine, TraceOp::kInvoke, id,
                              request_bytes);
    invoke_span = SpanGuard(tracer_, tctx, ctx.machine);
  }

  bool last_undelivered = false;
  for (int attempt = 0; attempt < config_.max_invoke_attempts; ++attempt) {
    last_undelivered = false;
    const MachineId target = co_await ResolveLocation(ctx.machine, id);
    if (target == kInvalidMachineId) {
      // The directory RPC itself vanished (the caller's side of a
      // partition). Back off and spend another attempt.
      last_undelivered = true;
      if (tracer_ != nullptr) {
        tracer_->Instant(tctx, ctx.machine, TraceOp::kRpcRetry, id, attempt,
                         "lookup_undelivered");
      }
      co_await sim_.Sleep(config_.invoke_retry_backoff);
      continue;
    }
    const bool remote = target != ctx.machine;
    const SimTime started = sim_.Now();
    if (remote) {
      if (tracer_ != nullptr) {
        tracer_->Instant(tctx, ctx.machine, TraceOp::kRpcSend, id,
                         request_bytes + Rpc::kHeaderBytes);
      }
      const Delivery request = co_await fabric().TransferDetailed(
          ctx.machine, target, request_bytes + Rpc::kHeaderBytes);
      if (request != Delivery::kDelivered &&
          !cluster_.machine(ctx.machine).failed()) {
        // The request never arrived — the target's NIC died, or a
        // partition/drop ate it — and we, the live sender, hear only
        // silence. Re-resolve after a short backoff; once the loss (or the
        // machine's death) is recorded, the checks below surface it.
        ++stats_.undelivered_invocations;
        if (tracer_ != nullptr) {
          tracer_->Instant(tctx, ctx.machine, TraceOp::kRpcDrop, id, attempt,
                           "request");
        }
        InvalidateCache(ctx.machine, id);
        if (IsLost(id)) {
          throw ProcletLostError(id);
        }
        if (Find(id) == nullptr) {
          throw ProcletGoneError(id);
        }
        last_undelivered = true;
        co_await sim_.Sleep(config_.invoke_retry_backoff);
        continue;
      }
      if (tracer_ != nullptr && request == Delivery::kDelivered) {
        tracer_->Instant(tctx, target, TraceOp::kRpcRecv, id,
                         request_bytes + Rpc::kHeaderBytes);
      }
    }
    ProcletBase* base = Find(id);
    if (base == nullptr) {
      if (remote) {
        co_await PayBounce(target, ctx.machine);
      }
      InvalidateCache(ctx.machine, id);
      if (IsLost(id)) {
        throw ProcletLostError(id);
      }
      throw ProcletGoneError(id);
    }
    if (base->location() != target) {
      ++stats_.bounces;
      if (tracer_ != nullptr) {
        tracer_->Instant(tctx, target, TraceOp::kBounce, id, attempt);
      }
      if (remote) {
        co_await PayBounce(target, ctx.machine);
      }
      InvalidateCache(ctx.machine, id);
      continue;
    }
    // Overload admission at the target, before the gate: work that is dead
    // on arrival (deadline already passed) or headed into a standing queue
    // (admission controller shedding) is rejected having consumed only the
    // request leg plus a header-sized rejection response. Local calls are
    // subject too — the queue being protected is the machine's, not the
    // wire's.
    if (tctx.ExpiredAt(sim_.Now())) {
      ++stats_.deadline_rejected_invocations;
      if (tracer_ != nullptr) {
        tracer_->Instant(tctx, target, TraceOp::kDeadlineExpired, id,
                         tctx.deadline.nanos());
      }
      if (remote) {
        (void)co_await DeliverResponse(target, ctx.machine, Rpc::kHeaderBytes);
      }
      throw DeadlineExpiredError(id);
    }
    if (admission_ != nullptr && !admission_->Admit(target, sim_.Now())) {
      ++stats_.shed_invocations;
      if (tracer_ != nullptr) {
        tracer_->Instant(tctx, target, TraceOp::kRpcShed, id, attempt);
      }
      if (remote) {
        (void)co_await DeliverResponse(target, ctx.machine, Rpc::kHeaderBytes);
      }
      throw InvocationSheddedError(id);
    }
    const bool entered = co_await base->EnterCall();
    if (!entered) {
      // Destroyed (or lost to a crash) while we waited at the gate.
      InvalidateCache(ctx.machine, id);
      if (base->lost()) {
        throw ProcletLostError(id);
      }
      if (remote) {
        co_await PayBounce(target, ctx.machine);
      }
      throw ProcletGoneError(id);
    }
    if (base->location() != target) {
      // Migrated while we waited at the gate: bounce to the new home.
      base->ExitCall();
      ++stats_.bounces;
      if (tracer_ != nullptr) {
        tracer_->Instant(tctx, target, TraceOp::kBounce, id, attempt, "gated");
      }
      if (remote) {
        co_await PayBounce(target, ctx.machine);
      }
      InvalidateCache(ctx.machine, id);
      continue;
    }

    if (remote) {
      ++stats_.remote_invocations;
      if (ctx.caller_proclet != kInvalidProcletId) {
        RecordAffinity(ctx.caller_proclet, id, request_bytes + Rpc::kHeaderBytes);
      }
    } else {
      ++stats_.local_invocations;
    }

    P& proclet = static_cast<P&>(*base);
    if constexpr (std::is_void_v<R>) {
      try {
        co_await fn(proclet);
      } catch (...) {
        base->ExitCall();
        throw;
      }
      base->ExitCall();
      if (base->lost()) {
        // The host crashed mid-call: the call's effects died with it.
        throw ProcletLostError(id);
      }
      if (base->replicated() && base->has_pending_mutations()) {
        // Ship this call's mutation log to the backup before releasing the
        // response; durable-ack mode suspends here until acknowledged.
        co_await base->replication_sink()->Flush(*base);
        if (base->lost()) {
          // Crashed while shipping the log: no ack, so durability of this
          // call's mutations is unknown — surface as loss like any
          // mid-call crash.
          throw ProcletLostError(id);
        }
      }
      if (remote) {
        if (!co_await DeliverResponse(target, ctx.machine, Rpc::kHeaderBytes)) {
          // The call ran; only the caller never learned. At-least-once:
          // resend with the same request id and a FenceGuard dedups it.
          ++stats_.unreachable_invocations;
          throw ProcletUnreachableError(id);
        }
        stats_.remote_invoke_latency.Add(sim_.Now() - started);
      }
      invoke_span.End("ok");
      co_return;
    } else {
      std::optional<R> result;
      try {
        result.emplace(co_await fn(proclet));
      } catch (...) {
        base->ExitCall();
        throw;
      }
      base->ExitCall();
      if (base->lost()) {
        // The host crashed mid-call: the result died with it.
        throw ProcletLostError(id);
      }
      if (base->replicated() && base->has_pending_mutations()) {
        co_await base->replication_sink()->Flush(*base);
        if (base->lost()) {
          throw ProcletLostError(id);
        }
      }
      if (remote) {
        if (!co_await DeliverResponse(target, ctx.machine,
                                      WireSizeOf(*result) + Rpc::kHeaderBytes)) {
          // The call ran and produced a result the caller will never see.
          // At-least-once: resend with the same request id and a FenceGuard
          // dedups it.
          ++stats_.unreachable_invocations;
          throw ProcletUnreachableError(id);
        }
        stats_.remote_invoke_latency.Add(sim_.Now() - started);
      }
      invoke_span.End("ok");
      co_return std::move(*result);
    }
  }
  if (last_undelivered) {
    // Every remaining attempt died in the network, not in a migration race.
    ++stats_.unreachable_invocations;
    throw ProcletUnreachableError(id);
  }
  // The proclet exists but kept migrating out from under us — a livelock,
  // not destruction (that case throws inside the loop).
  ++stats_.bounce_livelocks;
  throw TooManyBouncesError(id, config_.max_invoke_attempts);
}

}  // namespace quicksand

#endif  // QUICKSAND_RUNTIME_RUNTIME_H_
