#include "quicksand/runtime/runtime.h"

#include <algorithm>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/logging.h"
#include "quicksand/health/failure_detector.h"
#include "quicksand/trace/flight_recorder.h"

namespace quicksand {

Runtime::Runtime(Simulator& sim, Cluster& cluster, RuntimeConfig config)
    : sim_(sim),
      cluster_(cluster),
      config_(config),
      placement_(std::make_unique<BestFitPolicy>()),
      location_cache_(cluster.size()) {
  QS_CHECK_MSG(cluster.size() > 0, "Runtime requires at least one machine");
  QS_CHECK(config_.controller < cluster.size());
}

Runtime::~Runtime() = default;

void Runtime::SetPlacementPolicy(std::unique_ptr<PlacementPolicy> policy) {
  QS_CHECK(policy != nullptr);
  placement_ = std::move(policy);
}

ProcletBase* Runtime::Find(ProcletId id) {
  auto it = proclets_.find(id);
  return it == proclets_.end() ? nullptr : it->second.get();
}

ProcletBase* Runtime::FindEvenIfLost(ProcletId id) {
  if (ProcletBase* live = Find(id)) {
    return live;
  }
  auto it = limbo_.find(id);
  return it == limbo_.end() ? nullptr : it->second.get();
}

MachineId Runtime::LocationOf(ProcletId id) const {
  auto it = directory_.find(id);
  return it == directory_.end() ? kInvalidMachineId : it->second;
}

std::vector<ProcletId> Runtime::ProcletsOn(MachineId machine) const {
  std::vector<ProcletId> result;
  for (const auto& [id, proclet] : proclets_) {
    if (proclet->location() == machine) {
      result.push_back(id);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<ProcletId> Runtime::AllProclets() const {
  std::vector<ProcletId> result;
  result.reserve(proclets_.size());
  for (const auto& [id, proclet] : proclets_) {
    result.push_back(id);
  }
  std::sort(result.begin(), result.end());
  return result;
}

Task<MachineId> Runtime::ResolveLocation(MachineId from, ProcletId id) {
  // The controller holds the authoritative directory; its own lookups are
  // local.
  if (from == config_.controller) {
    auto it = directory_.find(id);
    if (it == directory_.end()) {
      if (IsLost(id)) {
        throw ProcletLostError(id);
      }
      throw ProcletGoneError(id);
    }
    co_return it->second;
  }
  auto& cache = location_cache_[from];
  auto cached = cache.find(id);
  if (cached != cache.end()) {
    co_return cached->second;
  }
  // Cache miss: directory RPC.
  ++stats_.directory_lookups;
  const Delivery query = co_await fabric().TransferDetailed(
      from, config_.controller, config_.control_message_bytes);
  if (query != Delivery::kDelivered && !cluster_.machine(from).failed()) {
    // The lookup vanished (the caller is on the wrong side of a partition);
    // the caller backs off and retries rather than trusting silence.
    ++stats_.undelivered_lookups;
    co_return kInvalidMachineId;
  }
  auto it = directory_.find(id);
  if (it == directory_.end()) {
    co_await fabric().Transfer(config_.controller, from, config_.control_message_bytes);
    if (IsLost(id)) {
      throw ProcletLostError(id);
    }
    throw ProcletGoneError(id);
  }
  const MachineId location = it->second;
  const Delivery reply = co_await fabric().TransferDetailed(
      config_.controller, from, config_.control_message_bytes);
  if (reply != Delivery::kDelivered && !cluster_.machine(from).failed()) {
    ++stats_.undelivered_lookups;
    co_return kInvalidMachineId;
  }
  cache[id] = location;
  co_return location;
}

void Runtime::InvalidateCache(MachineId machine, ProcletId id) {
  location_cache_[machine].erase(id);
}

Task<> Runtime::PayBounce(MachineId stale_target, MachineId caller) {
  co_await fabric().Transfer(stale_target, caller, config_.control_message_bytes);
}

Task<bool> Runtime::DeliverResponse(MachineId from, MachineId to, int64_t bytes) {
  for (int attempt = 0; attempt < config_.max_invoke_attempts; ++attempt) {
    const Delivery delivery = co_await fabric().TransferDetailed(from, to, bytes);
    if (delivery != Delivery::kDropped) {
      // Delivered — or an endpoint fail-stopped, in which case there is
      // nobody left to retransmit to (or from): fail-stop semantics are
      // unchanged, the fiber unwinds through the usual lost checks.
      co_return true;
    }
    ++stats_.response_retransmits;
    co_await sim_.Sleep(config_.invoke_retry_backoff);
  }
  co_return false;
}

Task<Status> Runtime::Destroy(Ctx ctx, ProcletId id) {
  ProcletBase* proclet = Find(id);
  if (proclet == nullptr) {
    if (IsLost(id)) {
      co_return Status::DataLoss("proclet was lost to a machine failure");
    }
    co_return Status::NotFound("proclet already gone");
  }
  // Control message to the host.
  co_await fabric().Transfer(ctx.machine, proclet->location(),
                             config_.control_message_bytes);
  if (proclet->lost()) {
    co_return Status::DataLoss("proclet was lost to a machine failure");
  }
  if (proclet->gate_closed()) {
    co_return Status::Aborted("proclet is under migration/maintenance");
  }
  co_await proclet->CloseGateAndDrain();
  if (proclet->lost()) {
    co_return Status::DataLoss("proclet was lost to a machine failure");
  }
  co_await proclet->OnQuiesce();
  co_await proclet->OnDestroy();
  if (proclet->lost()) {
    co_return Status::DataLoss("proclet was lost to a machine failure");
  }
  proclet->MarkDestroyed();
  cluster_.machine(proclet->location()).memory().Release(proclet->heap_bytes());
  if (proclet->kind() == ProcletKind::kCompute) {
    cluster_.machine(proclet->location()).AdjustHostedCompute(-1);
  }
  proclet->heap_bytes_ = 0;
  if (tracer_ != nullptr) {
    tracer_->Instant(ctx.trace, proclet->location(), TraceOp::kDestroy, id);
  }
  directory_.erase(id);
  epoch_of_.erase(id);
  ++stats_.destructions;

  // Gate waiters were woken by MarkDestroyed and will observe destruction at
  // their (already scheduled) resume events; delete the object strictly
  // after those events run.
  auto it = proclets_.find(id);
  QS_CHECK(it != proclets_.end());
  std::shared_ptr<ProcletBase> doomed(it->second.release());
  proclets_.erase(it);
  sim_.Post([doomed]() mutable { doomed.reset(); });
  co_return Status::Ok();
}

Task<Status> Runtime::Migrate(ProcletId id, MachineId dst, uint64_t expected_epoch) {
  if (tracer_ == nullptr) {
    co_return co_await MigrateImpl(id, dst, expected_epoch);
  }
  // One `migrate` span covering gate->drain->copy->flip, attributed to the
  // source machine and stamped with the fencing token the caller resolved.
  TraceContext parent;
  parent.epoch = expected_epoch;
  const MachineId src = TraceHomeOf(id);
  SpanGuard span(tracer_,
                 tracer_->BeginSpan(parent, src, TraceOp::kMigrate, id,
                                    static_cast<int64_t>(dst)),
                 src);
  const Status status = co_await MigrateImpl(id, dst, expected_epoch);
  span.End(status.ok() ? "ok" : StatusCodeName(status.code()));
  co_return status;
}

Task<Status> Runtime::MigrateImpl(ProcletId id, MachineId dst, uint64_t expected_epoch) {
  QS_CHECK(dst < cluster_.size());
  ProcletBase* proclet = Find(id);
  if (proclet == nullptr) {
    if (IsLost(id)) {
      co_return Status::DataLoss("proclet was lost to a machine failure");
    }
    co_return Status::NotFound("proclet is gone");
  }
  // Fence before anything else — including the already-there early return —
  // so a replayed command from a previous epoch never reports success.
  if (expected_epoch != 0 && expected_epoch != proclet->epoch()) {
    ++stats_.fenced_migrations;
    if (tracer_ != nullptr) {
      TraceContext stale;
      stale.epoch = expected_epoch;
      tracer_->Instant(stale, proclet->location(), TraceOp::kFence, id,
                       static_cast<int64_t>(proclet->epoch()), "stale_epoch");
    }
    co_return Status::Aborted("migration fenced: stale epoch");
  }
  if (proclet->location() == dst) {
    co_return Status::Ok();
  }
  if (cluster_.machine(dst).failed()) {
    ++stats_.failed_migrations;
    co_return Status::Unavailable("destination machine has failed");
  }
  if (proclet->gate_closed()) {
    ++stats_.failed_migrations;
    co_return Status::Aborted("proclet is already under migration/maintenance");
  }

  const SimTime started = sim_.Now();
  co_await proclet->CloseGateAndDrain();
  if (proclet->lost()) {
    ++stats_.failed_migrations;
    co_return Status::DataLoss("source machine failed during drain");
  }
  co_await proclet->OnQuiesce();
  if (proclet->lost()) {
    ++stats_.failed_migrations;
    co_return Status::DataLoss("source machine failed during quiesce");
  }
  const MachineId src = proclet->location();
  const int64_t heap = proclet->heap_bytes();
  if (cluster_.machine(dst).failed()) {
    proclet->OpenGate();
    proclet->OnResume();
    ++stats_.failed_migrations;
    co_return Status::Unavailable("destination machine failed during drain");
  }
  if (!cluster_.machine(dst).memory().TryCharge(heap)) {
    proclet->OpenGate();
    proclet->OnResume();
    ++stats_.failed_migrations;
    co_return Status::ResourceExhausted("destination out of memory");
  }
  if (!proclet->TryRelocateAux(dst)) {
    cluster_.machine(dst).memory().Release(heap);
    proclet->OpenGate();
    proclet->OnResume();
    ++stats_.failed_migrations;
    co_return Status::ResourceExhausted("destination lacks auxiliary resources");
  }

  // From here on the destination holds a heap charge (and possibly an aux
  // reservation); every bail-out path must unwind both.
  auto unwind_dst = [&] {
    cluster_.machine(dst).memory().Release(heap);
    proclet->UndoRelocateAux(dst);
  };

  // Kernel-side fixed work (pinning, mapping), then the heap copy — eagerly
  // in the blocking window, or in the background for lazy migration.
  co_await sim_.Sleep(config_.migration_fixed_overhead);
  if (proclet->lost()) {
    unwind_dst();
    ++stats_.failed_migrations;
    co_return Status::DataLoss("source machine failed during migration setup");
  }
  if (cluster_.machine(dst).failed()) {
    unwind_dst();
    proclet->OpenGate();
    proclet->OnResume();
    ++stats_.failed_migrations;
    co_return Status::Unavailable("destination machine failed during migration");
  }
  const bool lazy = config_.lazy_migration && proclet->MigrationExtraBytes() == 0;
  if (lazy) {
    // Control metadata ships now; the heap follows asynchronously while the
    // source keeps its charge until the copy lands.
    const bool ok = co_await fabric().Transfer(src, dst, config_.migration_header_bytes);
    if (!ok || proclet->lost() || cluster_.machine(dst).failed()) {
      unwind_dst();
      ++stats_.failed_migrations;
      if (proclet->lost()) {
        co_return Status::DataLoss("source machine failed during migration");
      }
      proclet->OpenGate();
      proclet->OnResume();
      co_return Status::Unavailable("destination machine failed during migration");
    }
    sim_.Spawn(LazyCopy(id, src, dst, heap, started), "lazy_copy");
  } else {
    const bool ok = co_await fabric().Transfer(src, dst,
                                               heap + proclet->MigrationExtraBytes() +
                                                   config_.migration_header_bytes);
    if (!ok || proclet->lost() || cluster_.machine(dst).failed()) {
      unwind_dst();
      ++stats_.failed_migrations;
      if (proclet->lost()) {
        co_return Status::DataLoss("source machine failed during migration");
      }
      proclet->OpenGate();
      proclet->OnResume();
      co_return Status::Unavailable("destination machine failed during migration");
    }
    cluster_.machine(src).memory().Release(heap);
    proclet->FinishRelocateAux(src);
  }
  // No fence re-check is needed at the flip: the epoch cannot change while
  // this migration holds the gate (migration is the only bump source for a
  // live proclet, and a mid-drain DeclareMachineDead surfaces through the
  // lost() checks above).
  if (proclet->kind() == ProcletKind::kCompute) {
    cluster_.machine(src).AdjustHostedCompute(-1);
    cluster_.machine(dst).AdjustHostedCompute(1);
  }
  proclet->location_ = dst;
  directory_[id] = dst;
  proclet->epoch_ = ++epoch_of_[id];
  location_cache_[src].erase(id);

  ++stats_.migrations;
  stats_.migration_latency.Add(sim_.Now() - started);
  QS_LOG_DEBUG("runtime", "migrated proclet %llu (%s, %lld B heap) m%u -> m%u in %s",
               static_cast<unsigned long long>(id), ProcletKindName(proclet->kind()),
               static_cast<long long>(heap), src, dst,
               (sim_.Now() - started).ToString().c_str());

  proclet->OpenGate();
  proclet->OnResume();
  co_return Status::Ok();
}

Task<Status> Runtime::BeginMaintenance(ProcletId id) {
  ProcletBase* proclet = Find(id);
  if (proclet == nullptr) {
    if (IsLost(id)) {
      co_return Status::DataLoss("proclet was lost to a machine failure");
    }
    co_return Status::NotFound("proclet is gone");
  }
  if (proclet->gate_closed()) {
    co_return Status::Aborted("proclet is already under migration/maintenance");
  }
  co_await proclet->CloseGateAndDrain();
  if (proclet->lost()) {
    co_return Status::DataLoss("proclet was lost during drain");
  }
  if (Find(id) == nullptr) {
    co_return Status::NotFound("proclet destroyed during drain");
  }
  co_return Status::Ok();
}

void Runtime::EndMaintenance(ProcletId id) {
  ProcletBase* proclet = FindEvenIfLost(id);
  QS_CHECK_MSG(proclet != nullptr, "EndMaintenance on a destroyed proclet");
  if (proclet->lost()) {
    // The proclet died under maintenance; there is no gate left to open.
    return;
  }
  proclet->OpenGate();
}

Task<> Runtime::LazyCopy(ProcletId id, MachineId src, MachineId dst, int64_t bytes,
                         SimTime started) {
  const bool ok = co_await fabric().Transfer(src, dst, bytes);
  // The source held its charge through the copy window (double-charged with
  // the destination); release it now. This is safe even if the proclet was
  // destroyed or re-migrated meanwhile: the amount matches what src hosted
  // at flip time, and later mutations charge the new location.
  cluster_.machine(src).memory().Release(bytes);
  if (!ok) {
    // Post-copy hazard window: the source died (or the destination crashed)
    // before the heap landed. If the proclet still lives at dst it now has
    // an unrecoverable hole — declare it lost. (If dst itself crashed, the
    // purge already handled it; if the proclet moved on, the later eager
    // copy shipped whatever state survived — modeled as intact.)
    if (LocationOf(id) == dst && !cluster_.machine(dst).failed()) {
      LoseProclet(id);
    }
    co_return;
  }
  ++stats_.lazy_copies_completed;
  stats_.lazy_copy_latency.Add(sim_.Now() - started);
}

void Runtime::LoseProclet(ProcletId id) {
  auto it = proclets_.find(id);
  if (it == proclets_.end()) {
    return;
  }
  ProcletBase* proclet = it->second.get();
  const MachineId host = proclet->location();
  // Write the heap off against the (dead or dying) host before MarkLost
  // zeroes the proclet's accounting.
  cluster_.machine(host).memory().Release(proclet->heap_bytes());
  if (proclet->kind() == ProcletKind::kCompute) {
    cluster_.machine(host).AdjustHostedCompute(-1);
  }
  lost_ids_.insert(id);
  proclet->MarkLost();
  directory_.erase(id);
  for (auto& cache : location_cache_) {
    cache.erase(id);
  }
  // A restored proclet can be lost again; keep the NEWEST corpse in limbo
  // (it is the one in-flight fibers reference) and retire the previous one
  // to the graveyard so older pointers stay valid too.
  auto limbo_it = limbo_.find(id);
  if (limbo_it != limbo_.end()) {
    graveyard_.push_back(std::move(limbo_it->second));
    limbo_it->second = std::move(it->second);
  } else {
    limbo_.emplace(id, std::move(it->second));
  }
  proclets_.erase(it);
  ++stats_.lost_proclets;
  if (tracer_ != nullptr) {
    tracer_->Instant(TraceContext{}, host, TraceOp::kLost, id,
                     static_cast<int64_t>(proclet->epoch()));
  }
  QS_LOG_DEBUG("runtime", "proclet %llu (%s) lost with machine m%u",
               static_cast<unsigned long long>(id), ProcletKindName(proclet->kind()),
               host);
}

Status Runtime::AdoptRestored(ProcletId id, std::unique_ptr<ProcletBase> obj,
                              MachineId host) {
  QS_CHECK_MSG(obj != nullptr, "AdoptRestored needs a restored object");
  if (lost_ids_.count(id) == 0) {
    return Status::FailedPrecondition("proclet was not lost");
  }
  if (proclets_.count(id) != 0) {
    return Status::FailedPrecondition("proclet id already live");
  }
  if (cluster_.machine(host).failed()) {
    return Status::Unavailable("restore target machine has failed");
  }
  obj->rt_ = this;
  obj->id_ = id;
  obj->location_ = host;
  // New incarnation, new epoch: anything stamped by (or addressed to) the
  // old one is now fenced.
  obj->epoch_ = ++epoch_of_[id];
  if (obj->kind() == ProcletKind::kCompute) {
    cluster_.machine(host).AdjustHostedCompute(1);
  }
  lost_ids_.erase(id);
  directory_[id] = host;
  const uint64_t new_epoch = epoch_of_[id];
  proclets_.emplace(id, std::move(obj));
  ++stats_.restored_proclets;
  if (tracer_ != nullptr) {
    tracer_->Instant(TraceContext{}, host, TraceOp::kRestore, id,
                     static_cast<int64_t>(new_epoch));
  }
  QS_LOG_DEBUG("runtime", "proclet %llu restored on m%u",
               static_cast<unsigned long long>(id), host);
  return Status::Ok();
}

Task<bool> Runtime::AwaitRestore(ProcletId id, Duration timeout, Duration poll) {
  const SimTime deadline = sim_.Now() + timeout;
  for (;;) {
    if (directory_.count(id) != 0) {
      co_return true;  // live again (restored, or never actually lost)
    }
    if (!IsLost(id) || !recovery_enabled_) {
      co_return false;  // destroyed, or nothing will ever restore it
    }
    if (sim_.Now() >= deadline) {
      co_return false;
    }
    const Duration remaining = deadline - sim_.Now();
    co_await sim_.Sleep(remaining < poll ? remaining : poll);
  }
}

std::vector<ProcletId> Runtime::LostProcletsOn(MachineId machine) const {
  std::vector<ProcletId> ids;
  for (const auto& [id, corpse] : limbo_) {
    if (lost_ids_.count(id) != 0 && corpse->location() == machine) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void Runtime::AttachFaultInjector(FaultInjector& injector) {
  injector.OnCrash([this](MachineId machine) { HandleMachineFailure(machine); });
}

void Runtime::AttachFailureDetector(FailureDetector& detector) {
  detector.OnConfirm([this](MachineId machine) {
    if (cluster_.machine(machine).failed()) {
      // Silence had a simple cause: the machine really crashed. Same path
      // as the oracle, just later.
      HandleMachineFailure(machine);
    } else {
      // Gray failure: the machine is (as far as the physics of the sim
      // knows) alive but unreachable. Fence it out.
      DeclareMachineDead(machine);
    }
  });
}

void Runtime::PurgeMachine(MachineId machine, bool fence) {
  // The dead machine's own cache is useless; per-id entries pointing at it
  // from other machines purge with each lost proclet below, and stale
  // entries for surviving proclets bounce harmlessly.
  location_cache_[machine].clear();
  for (ProcletId id : ProcletsOn(machine)) {
    if (fence) {
      Find(id)->fenced_ = true;
    }
    LoseProclet(id);
  }
}

void Runtime::HandleMachineFailure(MachineId machine) {
  QS_CHECK_MSG(machine != config_.controller,
               "controller failure is outside the fail-stop model (the directory "
               "is assumed durable)");
  if (!dead_machines_.insert(machine).second) {
    return;  // already written off (detector and oracle can both fire)
  }
  ++stats_.crashes;
  if (tracer_ != nullptr) {
    tracer_->Instant(TraceContext{}, machine, TraceOp::kCrash, 0,
                     static_cast<int64_t>(ProcletsOn(machine).size()));
  }
  if (flight_recorder_ != nullptr) {
    flight_recorder_->Capture(machine, "crash");
  }
  PurgeMachine(machine, /*fence=*/false);
}

void Runtime::DeclareMachineDead(MachineId machine) {
  QS_CHECK_MSG(machine != config_.controller,
               "the controller cannot declare itself dead (the directory is "
               "assumed durable)");
  if (!dead_machines_.insert(machine).second) {
    return;  // already crashed or declared
  }
  ++stats_.declared_dead;
  // Terminal membership verdict: even if the partition heals, the machine
  // never takes new work (accepting() stays false).
  cluster_.machine(machine).MarkSuspected(true);
  QS_LOG_INFO("runtime", "m%u declared dead (gray failure): fencing %zu proclets",
              machine, ProcletsOn(machine).size());
  if (tracer_ != nullptr) {
    tracer_->Instant(TraceContext{}, machine, TraceOp::kDeclareDead, 0,
                     static_cast<int64_t>(ProcletsOn(machine).size()));
  }
  if (flight_recorder_ != nullptr) {
    flight_recorder_->Capture(machine, "declared_dead");
  }
  PurgeMachine(machine, /*fence=*/true);
}

void Runtime::RecordAffinity(ProcletId a, ProcletId b, int64_t bytes) {
  affinity_by_[a][b] += bytes;
  affinity_by_[b][a] += bytes;
}

int64_t Runtime::AffinityBytes(ProcletId a, ProcletId b) const {
  auto it = affinity_by_.find(a);
  if (it == affinity_by_.end()) {
    return 0;
  }
  auto jt = it->second.find(b);
  return jt == it->second.end() ? 0 : jt->second;
}

std::unordered_map<ProcletId, int64_t> Runtime::AffinityPeers(ProcletId a) const {
  auto it = affinity_by_.find(a);
  if (it == affinity_by_.end()) {
    return {};
  }
  return it->second;
}

}  // namespace quicksand
