#include "quicksand/runtime/proclet.h"

#include "quicksand/runtime/runtime.h"

namespace quicksand {

const char* ProcletKindName(ProcletKind kind) {
  switch (kind) {
    case ProcletKind::kCompute:
      return "compute";
    case ProcletKind::kMemory:
      return "memory";
    case ProcletKind::kStorage:
      return "storage";
  }
  return "unknown";
}

bool ProcletBase::TryChargeHeap(int64_t bytes) {
  QS_CHECK(bytes >= 0);
  if (!rt_->cluster().machine(location_).memory().TryCharge(bytes)) {
    return false;
  }
  heap_bytes_ += bytes;
  return true;
}

void ProcletBase::ReleaseHeap(int64_t bytes) {
  QS_CHECK(bytes >= 0);
  QS_CHECK_MSG(bytes <= heap_bytes_, "releasing more heap than the proclet holds");
  rt_->cluster().machine(location_).memory().Release(bytes);
  heap_bytes_ -= bytes;
}

Task<bool> ProcletBase::EnterCall() {
  while (gate_closed_ && !destroyed_) {
    co_await gate_waiters_.Park();
  }
  if (destroyed_) {
    co_return false;
  }
  ++active_calls_;
  ++invocation_count_;
  last_invocation_ = gate_waiters_.sim().Now();
  co_return true;
}

void ProcletBase::ExitCall() {
  QS_CHECK(active_calls_ > 0);
  if (--active_calls_ == 0) {
    drain_waiters_.WakeAll();
  }
}

Task<> ProcletBase::CloseGateAndDrain() {
  QS_CHECK_MSG(!gate_closed_, "gate already closed");
  gate_closed_ = true;
  while (active_calls_ > 0) {
    co_await drain_waiters_.Park();
  }
}

void ProcletBase::OpenGate() {
  QS_CHECK(gate_closed_);
  gate_closed_ = false;
  gate_waiters_.WakeAll();
}

void ProcletBase::MarkDestroyed() {
  destroyed_ = true;
  gate_waiters_.WakeAll();
}

}  // namespace quicksand
