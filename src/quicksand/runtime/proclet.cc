#include "quicksand/runtime/proclet.h"

#include "quicksand/runtime/runtime.h"

namespace quicksand {

const char* ProcletKindName(ProcletKind kind) {
  switch (kind) {
    case ProcletKind::kCompute:
      return "compute";
    case ProcletKind::kMemory:
      return "memory";
    case ProcletKind::kStorage:
      return "storage";
  }
  return "unknown";
}

bool ProcletBase::TryChargeHeap(int64_t bytes) {
  QS_CHECK(bytes >= 0);
  if (lost_) {
    // The hosting machine is gone; bytes written to a lost proclet vanish
    // with it. Accepting the charge (without accounting) keeps callers'
    // rollback invariants intact — the data loss surfaces through
    // ProcletLostError on the next invocation, not through a phantom OOM.
    return true;
  }
  if (!rt_->cluster().machine(location_).memory().TryCharge(bytes)) {
    return false;
  }
  heap_bytes_ += bytes;
  return true;
}

void ProcletBase::ReleaseHeap(int64_t bytes) {
  QS_CHECK(bytes >= 0);
  if (lost_) {
    return;  // accounting was zeroed wholesale when the machine died
  }
  QS_CHECK_MSG(bytes <= heap_bytes_, "releasing more heap than the proclet holds");
  rt_->cluster().machine(location_).memory().Release(bytes);
  heap_bytes_ -= bytes;
}

Task<bool> ProcletBase::EnterCall() {
  while (gate_closed_ && !destroyed_) {
    co_await gate_waiters_.Park();
  }
  if (destroyed_) {
    co_return false;
  }
  ++active_calls_;
  ++invocation_count_;
  last_invocation_ = gate_waiters_.sim().Now();
  co_return true;
}

void ProcletBase::ExitCall() {
  QS_CHECK(active_calls_ > 0);
  if (--active_calls_ == 0) {
    drain_waiters_.WakeAll();
  }
}

Task<> ProcletBase::CloseGateAndDrain() {
  QS_CHECK_MSG(!gate_closed_, "gate already closed");
  gate_closed_ = true;
  while (active_calls_ > 0) {
    co_await drain_waiters_.Park();
  }
}

void ProcletBase::OpenGate() {
  QS_CHECK(gate_closed_);
  gate_closed_ = false;
  gate_waiters_.WakeAll();
}

void ProcletBase::MarkDestroyed() {
  destroyed_ = true;
  gate_waiters_.WakeAll();
}

void ProcletBase::MarkLost() {
  if (lost_) {
    return;
  }
  lost_ = true;
  OnLost();
  heap_bytes_ = 0;
  MarkDestroyed();
  // Drain waiters (a migration or destroy mid-drain) must also wake: the
  // calls they were waiting out died with the machine.
  drain_waiters_.WakeAll();
}

}  // namespace quicksand
