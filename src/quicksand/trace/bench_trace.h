// BenchTrace: the `--trace <path>` / QUICKSAND_TRACE plumbing shared by
// every bench binary.
//
// A bench constructs one BenchTrace from (argc, argv) in main() — the flag
// is stripped from argv so existing flags like --smoke keep their position
// — and calls NewRun once per simulation it builds. When tracing is off,
// NewRun returns nullptr and the bench runs exactly as before (zero events,
// zero overhead). When on, Finish() writes every run's events into one
// Chrome trace_event JSON file at the requested path and prints per-run
// digests.

#ifndef QUICKSAND_TRACE_BENCH_TRACE_H_
#define QUICKSAND_TRACE_BENCH_TRACE_H_

#include <memory>
#include <string>
#include <vector>

#include "quicksand/trace/trace.h"

namespace quicksand {

class Simulator;
class Runtime;

class BenchTrace {
 public:
  // Parses and strips `--trace <path>` from argv; falls back to the
  // QUICKSAND_TRACE environment variable when the flag is absent.
  static BenchTrace FromArgs(int& argc, char** argv);

  BenchTrace() = default;
  BenchTrace(BenchTrace&&) = default;
  BenchTrace& operator=(BenchTrace&&) = default;
  ~BenchTrace() { Finish(); }

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  // Registers a tracer for one simulation run. Returns nullptr when tracing
  // is disabled. The tracer stays valid until this BenchTrace dies; the
  // Simulator only needs to outlive the run's recording.
  Tracer* NewRun(std::string label, Simulator& sim, size_t machines);

  // Writes the accumulated runs to `path()` and prints one digest line per
  // run. Idempotent; runs registered afterwards start a new file.
  void Finish();

 private:
  struct Run {
    std::string label;
    size_t machines = 0;
    std::unique_ptr<Tracer> tracer;
  };

  std::string path_;
  std::vector<Run> runs_;
};

// Convenience for the common bench shape: creates a run tracer sized to the
// runtime's cluster and attaches it to the runtime. Null-safe: when `trace`
// is nullptr or disabled, does nothing and returns nullptr.
Tracer* AttachBenchTracer(BenchTrace* trace, Runtime& rt, std::string label);

}  // namespace quicksand

#endif  // QUICKSAND_TRACE_BENCH_TRACE_H_
