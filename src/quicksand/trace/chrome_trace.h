// Chrome trace_event JSON export (loadable in Perfetto / chrome://tracing).
//
// Ended spans become complete ("X") events with microsecond timestamps;
// instants become "i" events. pid = machine (offset per run so several
// same-seed runs can live in one file), tid = proclet (or the machine again
// for machine-level events), and the causal stamps ride in "args" so a
// Perfetto query can still group by trace id.

#ifndef QUICKSAND_TRACE_CHROME_TRACE_H_
#define QUICKSAND_TRACE_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "quicksand/trace/trace.h"

namespace quicksand {

struct TraceRun {
  std::string label;               // names the process group in the UI
  std::vector<TraceEvent> events;  // a Tracer::Snapshot()
  size_t machines = 0;
};

// Renders runs into one {"traceEvents": [...]} JSON document.
std::string ToChromeTraceJson(const std::vector<TraceRun>& runs);

// Writes the document to `path`. Returns false (and leaves no partial file
// behind beyond what the filesystem does) on I/O failure.
bool WriteChromeTrace(const std::string& path, const std::vector<TraceRun>& runs);

}  // namespace quicksand

#endif  // QUICKSAND_TRACE_CHROME_TRACE_H_
