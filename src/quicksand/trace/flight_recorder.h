// FlightRecorder: postmortem snapshots of a machine's last events.
//
// The tracer's per-machine rings already hold "the last N things that
// happened here"; the flight recorder's job is to FREEZE that ring at the
// moment a machine is written off — crash, gray-failure declaration, or an
// explicit capture around an injected partition — so the timeline leading
// into the death survives later wrap-around and can be dumped for humans.
//
// Attach it to the Runtime (Runtime::AttachFlightRecorder) and the crash /
// DeclareMachineDead paths capture automatically; benches then write
// Dump(postmortem) next to their results so a gray-failure run leaves an
// inspectable story of the dead primary's final milliseconds.

#ifndef QUICKSAND_TRACE_FLIGHT_RECORDER_H_
#define QUICKSAND_TRACE_FLIGHT_RECORDER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "quicksand/trace/trace.h"

namespace quicksand {

struct Postmortem {
  MachineId machine = kInvalidMachineId;
  SimTime captured_at;
  std::string reason;                // "crash", "declared_dead", ...
  std::vector<TraceEvent> events;    // oldest first, at most `last_n`
  int64_t dropped = 0;               // events that had already wrapped away
};

class FlightRecorder {
 public:
  // Captures at most `last_n` trailing events per postmortem (bounded by the
  // tracer's ring capacity).
  explicit FlightRecorder(Tracer& tracer, size_t last_n = 1000)
      : tracer_(tracer), last_n_(last_n) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Freezes `machine`'s trailing events now. Idempotent per (machine,
  // reason) pair — the crash and detector paths can both fire.
  void Capture(MachineId machine, const char* reason);

  const std::vector<Postmortem>& postmortems() const { return postmortems_; }
  // Most recent postmortem for `machine`; nullptr if none captured.
  const Postmortem* ForMachine(MachineId machine) const;

  // Human-readable dump: a header plus one line per event.
  static std::string Dump(const Postmortem& postmortem);

 private:
  Tracer& tracer_;
  size_t last_n_;
  std::vector<Postmortem> postmortems_;
};

}  // namespace quicksand

#endif  // QUICKSAND_TRACE_FLIGHT_RECORDER_H_
