#include "quicksand/trace/trace.h"

#include <algorithm>

#include "quicksand/common/check.h"
#include "quicksand/sim/simulator.h"

namespace quicksand {

const char* TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kTrace: return "trace";
    case TraceOp::kSpawn: return "spawn";
    case TraceOp::kDestroy: return "destroy";
    case TraceOp::kMigrate: return "migrate";
    case TraceOp::kSplit: return "split";
    case TraceOp::kMerge: return "merge";
    case TraceOp::kInvoke: return "invoke";
    case TraceOp::kRpc: return "rpc";
    case TraceOp::kRpcAttempt: return "rpc_attempt";
    case TraceOp::kRpcSend: return "rpc_send";
    case TraceOp::kRpcRecv: return "rpc_recv";
    case TraceOp::kRpcRetry: return "rpc_retry";
    case TraceOp::kRpcDrop: return "rpc_drop";
    case TraceOp::kBounce: return "bounce";
    case TraceOp::kCommit: return "commit";
    case TraceOp::kAbort: return "abort";
    case TraceOp::kFence: return "fence";
    case TraceOp::kCheckpoint: return "checkpoint";
    case TraceOp::kRestore: return "restore";
    case TraceOp::kPromote: return "promote";
    case TraceOp::kRecover: return "recover";
    case TraceOp::kSuspect: return "suspect";
    case TraceOp::kClearSuspect: return "clear_suspect";
    case TraceOp::kConfirmDead: return "confirm_dead";
    case TraceOp::kCrash: return "crash";
    case TraceOp::kDeclareDead: return "declare_dead";
    case TraceOp::kLost: return "lost";
    case TraceOp::kEvacuate: return "evacuate";
    case TraceOp::kRpcShed: return "rpc_shed";
    case TraceOp::kDeadlineExpired: return "deadline_expired";
    case TraceOp::kStaleServe: return "stale_serve";
    case TraceOp::kReshapeSplit: return "reshape_split";
    case TraceOp::kReshapeMerge: return "reshape_merge";
    case TraceOp::kReshapeMigrate: return "reshape_migrate";
    case TraceOp::kReshapeDefer: return "reshape_defer";
    case TraceOp::kMemoHit: return "memo_hit";
    case TraceOp::kMemoMiss: return "memo_miss";
    case TraceOp::kMemoStaleServe: return "memo_stale_serve";
    case TraceOp::kMemoEvict: return "memo_evict";
    case TraceOp::kMemoHarvest: return "memo_harvest";
  }
  return "?";
}

Tracer::Tracer(Simulator& sim, size_t machines, TracerOptions options)
    : sim_(sim), options_(options), rings_(machines) {
  QS_CHECK(options_.ring_capacity > 0);
  for (Ring& ring : rings_) {
    ring.events.resize(options_.ring_capacity);
  }
}

void Tracer::Record(TraceEvent event) {
  QS_CHECK(event.machine < rings_.size());
  event.time = sim_.Now();
  event.seq = next_seq_++;
  Ring& ring = rings_[event.machine];
  if (ring.size == ring.events.size()) {
    ++ring.dropped;  // the slot we are about to overwrite
  } else {
    ++ring.size;
  }
  ring.events[ring.next] = event;
  ring.next = (ring.next + 1) % ring.events.size();
  ++recorded_;
}

TraceContext Tracer::StartTrace(const char* name, MachineId machine) {
  TraceContext root;
  root.trace_id = next_trace_id_++;
  root.parent_span = kInvalidSpanId;
  TraceEvent event;
  event.phase = TracePhase::kInstant;
  event.op = TraceOp::kTrace;
  event.trace_id = root.trace_id;
  event.machine = machine;
  event.detail = name;
  Record(event);
  return root;
}

TraceContext Tracer::BeginSpan(const TraceContext& parent, MachineId machine,
                               TraceOp op, uint64_t proclet, int64_t arg) {
  // Snapshot `parent` before constructing the result: callers write
  // `ctx = BeginSpan(ctx, ...)`, and under GCC 12's coroutine codegen the
  // returned object can be constructed directly in the caller's `ctx`
  // storage, making `parent` alias the context being built. Reading
  // `parent` after writing `ctx` would then observe the new span as its
  // own parent.
  const bool rooted = parent.valid();
  const TraceId parent_trace = parent.trace_id;
  const SpanId parent_span = parent.parent_span;
  const uint64_t epoch = parent.epoch;
  const SimTime deadline = parent.deadline;

  TraceContext ctx;
  ctx.trace_id = rooted ? parent_trace : next_trace_id_++;
  ctx.parent_span = next_span_id_++;
  ctx.epoch = epoch;
  ctx.deadline = deadline;

  OpenSpan open;
  open.trace_id = ctx.trace_id;
  open.parent = parent_span;
  open.op = op;
  open.proclet = proclet;
  open.epoch = epoch;
  open_spans_.emplace_back(ctx.parent_span, open);

  TraceEvent event;
  event.phase = TracePhase::kBegin;
  event.op = op;
  event.trace_id = ctx.trace_id;
  event.span = ctx.parent_span;
  event.parent = parent_span;
  event.machine = machine;
  event.proclet = proclet;
  event.epoch = epoch;
  event.arg = arg;
  Record(event);
  return ctx;
}

void Tracer::EndSpan(const TraceContext& span_ctx, MachineId machine,
                     const char* detail, int64_t arg) {
  if (!span_ctx.valid() || span_ctx.parent_span == kInvalidSpanId) {
    return;
  }
  auto it = std::find_if(open_spans_.begin(), open_spans_.end(),
                         [&](const auto& entry) {
                           return entry.first == span_ctx.parent_span;
                         });
  if (it == open_spans_.end()) {
    return;  // already closed
  }
  TraceEvent event;
  event.phase = TracePhase::kEnd;
  event.op = it->second.op;
  event.trace_id = it->second.trace_id;
  event.span = span_ctx.parent_span;
  event.parent = it->second.parent;
  event.machine = machine;
  event.proclet = it->second.proclet;
  event.epoch = it->second.epoch;
  event.arg = arg;
  event.detail = detail;
  open_spans_.erase(it);
  Record(event);
}

void Tracer::Instant(const TraceContext& parent, MachineId machine, TraceOp op,
                     uint64_t proclet, int64_t arg, const char* detail) {
  TraceEvent event;
  event.phase = TracePhase::kInstant;
  event.op = op;
  event.trace_id = parent.trace_id;
  event.parent = parent.parent_span;
  event.machine = machine;
  event.proclet = proclet;
  event.epoch = parent.epoch;
  event.arg = arg;
  event.detail = detail;
  Record(event);
}

std::vector<TraceEvent> Tracer::MachineEvents(MachineId machine) const {
  return LastEvents(machine, options_.ring_capacity);
}

std::vector<TraceEvent> Tracer::LastEvents(MachineId machine, size_t n) const {
  QS_CHECK(machine < rings_.size());
  const Ring& ring = rings_[machine];
  const size_t count = std::min(n, ring.size);
  std::vector<TraceEvent> out;
  out.reserve(count);
  // Oldest of the last `count`: walk backwards from next_, then reverse.
  const size_t cap = ring.events.size();
  const size_t start = (ring.next + cap - count) % cap;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ring.events[(start + i) % cap]);
  }
  return out;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> all;
  all.reserve(static_cast<size_t>(std::min<int64_t>(
      recorded_, static_cast<int64_t>(rings_.size() * options_.ring_capacity))));
  for (MachineId m = 0; m < rings_.size(); ++m) {
    std::vector<TraceEvent> events = MachineEvents(m);
    all.insert(all.end(), events.begin(), events.end());
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.seq < b.seq;
  });
  return all;
}

int64_t Tracer::dropped(MachineId machine) const {
  QS_CHECK(machine < rings_.size());
  return rings_[machine].dropped;
}

namespace {

inline void FnvMix(uint64_t& hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xff;
    hash *= 1099511628211ull;
  }
}

inline void FnvMixString(uint64_t& hash, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    hash ^= static_cast<unsigned char>(*s);
    hash *= 1099511628211ull;
  }
  hash ^= 0xff;  // terminator so "ab"+"c" != "a"+"bc"
  hash *= 1099511628211ull;
}

}  // namespace

uint64_t Tracer::Digest() const {
  uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  for (MachineId m = 0; m < rings_.size(); ++m) {
    FnvMix(hash, static_cast<uint64_t>(rings_[m].dropped));
    for (const TraceEvent& e : MachineEvents(m)) {
      FnvMix(hash, static_cast<uint64_t>(e.time.nanos()));
      FnvMix(hash, e.seq);
      FnvMix(hash, static_cast<uint64_t>(e.phase));
      FnvMixString(hash, TraceOpName(e.op));
      FnvMix(hash, e.trace_id);
      FnvMix(hash, e.span);
      FnvMix(hash, e.parent);
      FnvMix(hash, e.machine);
      FnvMix(hash, e.proclet);
      FnvMix(hash, e.epoch);
      FnvMix(hash, static_cast<uint64_t>(e.arg));
      FnvMixString(hash, e.detail);
    }
  }
  return hash;
}

}  // namespace quicksand
