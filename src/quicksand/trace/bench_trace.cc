#include "quicksand/trace/bench_trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "quicksand/runtime/runtime.h"
#include "quicksand/trace/chrome_trace.h"

namespace quicksand {

BenchTrace BenchTrace::FromArgs(int& argc, char** argv) {
  BenchTrace trace;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace.path_ = argv[i + 1];
      // Strip the flag and its value so positional parsing downstream
      // (--smoke, seeds) is unaffected.
      for (int j = i; j + 2 < argc; ++j) {
        argv[j] = argv[j + 2];
      }
      argc -= 2;
      break;
    }
  }
  if (trace.path_.empty()) {
    const char* env = std::getenv("QUICKSAND_TRACE");
    if (env != nullptr && env[0] != '\0') {
      trace.path_ = env;
    }
  }
  return trace;
}

Tracer* BenchTrace::NewRun(std::string label, Simulator& sim, size_t machines) {
  if (!enabled()) {
    return nullptr;
  }
  Run run;
  run.label = std::move(label);
  run.machines = machines;
  run.tracer = std::make_unique<Tracer>(sim, machines);
  runs_.push_back(std::move(run));
  return runs_.back().tracer.get();
}

void BenchTrace::Finish() {
  if (!enabled() || runs_.empty()) {
    return;
  }
  std::vector<TraceRun> out;
  out.reserve(runs_.size());
  for (const Run& run : runs_) {
    TraceRun tr;
    tr.label = run.label;
    tr.events = run.tracer->Snapshot();
    tr.machines = run.machines;
    out.push_back(std::move(tr));
  }
  if (WriteChromeTrace(path_, out)) {
    std::fprintf(stderr, "trace: wrote %zu run(s) to %s\n", out.size(),
                 path_.c_str());
  } else {
    std::fprintf(stderr, "trace: FAILED to write %s\n", path_.c_str());
  }
  for (const Run& run : runs_) {
    std::fprintf(stderr, "trace: digest %s = %016llx (%lld events)\n",
                 run.label.c_str(),
                 static_cast<unsigned long long>(run.tracer->Digest()),
                 static_cast<long long>(run.tracer->recorded()));
  }
  runs_.clear();
}

Tracer* AttachBenchTracer(BenchTrace* trace, Runtime& rt, std::string label) {
  if (trace == nullptr || !trace->enabled()) {
    return nullptr;
  }
  Tracer* tracer = trace->NewRun(std::move(label), rt.sim(), rt.cluster().size());
  rt.AttachTracer(tracer);
  return tracer;
}

}  // namespace quicksand
