#include "quicksand/trace/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace quicksand {
namespace {

// Machines from different runs must not collide on pid.
constexpr uint64_t kRunPidStride = 1000;

void AppendEscaped(std::string& out, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    switch (*s) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += *s; break;
    }
  }
}

void AppendCommonFields(std::string& out, const TraceEvent& e, uint64_t pid) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"ts\":%.3f,\"pid\":%llu,\"tid\":%llu,\"args\":{\"trace\":%llu,"
                "\"span\":%llu,\"parent\":%llu,\"machine\":%u,\"proclet\":%llu,"
                "\"epoch\":%llu,\"arg\":%lld,\"detail\":\"",
                static_cast<double>(e.time.nanos()) / 1000.0,
                static_cast<unsigned long long>(pid),
                static_cast<unsigned long long>(
                    e.proclet != 0 ? e.proclet : pid),
                static_cast<unsigned long long>(e.trace_id),
                static_cast<unsigned long long>(e.span),
                static_cast<unsigned long long>(e.parent), e.machine,
                static_cast<unsigned long long>(e.proclet),
                static_cast<unsigned long long>(e.epoch),
                static_cast<long long>(e.arg));
  out += buf;
  AppendEscaped(out, e.detail);
  out += "\"}";
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<TraceRun>& runs) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  char buf[256];
  for (size_t run = 0; run < runs.size(); ++run) {
    const uint64_t pid_base = run * kRunPidStride;
    // Process-name metadata so the UI shows "<run label>/m<i>".
    for (size_t m = 0; m < runs[run].machines; ++m) {
      if (!first) {
        out += ",\n";
      }
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%llu,"
                    "\"args\":{\"name\":\"",
                    static_cast<unsigned long long>(pid_base + m));
      out += buf;
      AppendEscaped(out, runs[run].label.c_str());
      std::snprintf(buf, sizeof(buf), "/m%zu\"}}", m);
      out += buf;
    }
    // Pair span begins with ends; emit complete events at the begin stamp.
    std::unordered_map<SpanId, const TraceEvent*> begins;
    for (const TraceEvent& e : runs[run].events) {
      if (e.phase == TracePhase::kBegin) {
        begins[e.span] = &e;
        continue;
      }
      if (!first) {
        out += ",\n";
      }
      first = false;
      if (e.phase == TracePhase::kEnd) {
        const auto it = begins.find(e.span);
        const TraceEvent& b = it != begins.end() ? *it->second : e;
        const double dur =
            static_cast<double>((e.time - b.time).nanos()) / 1000.0;
        out += "{\"ph\":\"X\",\"name\":\"";
        AppendEscaped(out, TraceOpName(e.op));
        std::snprintf(buf, sizeof(buf), "\",\"cat\":\"span\",\"dur\":%.3f,", dur);
        out += buf;
        TraceEvent at_begin = e;
        at_begin.time = b.time;
        AppendCommonFields(out, at_begin, pid_base + b.machine);
        out += "}";
        begins.erase(e.span);
      } else {
        out += "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"";
        AppendEscaped(out, TraceOpName(e.op));
        out += "\",\"cat\":\"instant\",";
        AppendCommonFields(out, e, pid_base + e.machine);
        out += "}";
      }
    }
    // Spans still open at snapshot time: emit as begin ("B") so they are
    // visible rather than silently dropped. Sorted by span id so the file
    // is byte-identical across same-seed runs.
    std::vector<const TraceEvent*> open;
    open.reserve(begins.size());
    for (const auto& [span, begin_event] : begins) {
      open.push_back(begin_event);
    }
    std::sort(open.begin(), open.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                return a->span < b->span;
              });
    for (const TraceEvent* b : open) {
      if (!first) {
        out += ",\n";
      }
      first = false;
      out += "{\"ph\":\"B\",\"name\":\"";
      AppendEscaped(out, TraceOpName(b->op));
      out += "\",\"cat\":\"span\",";
      AppendCommonFields(out, *b, pid_base + b->machine);
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path, const std::vector<TraceRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToChromeTraceJson(runs);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok) {
    // fclose already ran or failed; nothing more to unwind.
  }
  return ok;
}

}  // namespace quicksand
