#include "quicksand/trace/query.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace quicksand {

TraceQuery::TraceQuery(std::vector<TraceEvent> events)
    : events_(std::move(events)) {
  std::sort(events_.begin(), events_.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.time != b.time) {
                return a.time < b.time;
              }
              return a.seq < b.seq;
            });
  std::unordered_map<SpanId, size_t> open;  // span id -> index in spans_
  for (const TraceEvent& e : events_) {
    if (e.phase == TracePhase::kBegin) {
      TraceSpan span;
      span.trace_id = e.trace_id;
      span.id = e.span;
      span.parent = e.parent;
      span.op = e.op;
      span.begin_machine = e.machine;
      span.proclet = e.proclet;
      span.epoch = e.epoch;
      span.begin = e.time;
      span.begin_seq = e.seq;
      span.arg = e.arg;
      open[e.span] = spans_.size();
      spans_.push_back(span);
    } else if (e.phase == TracePhase::kEnd) {
      auto it = open.find(e.span);
      if (it == open.end()) {
        // The begin was evicted from its ring; synthesize a begin-less span
        // so the end outcome is still queryable.
        TraceSpan span;
        span.trace_id = e.trace_id;
        span.id = e.span;
        span.parent = e.parent;
        span.op = e.op;
        span.begin_machine = e.machine;
        span.proclet = e.proclet;
        span.epoch = e.epoch;
        span.begin = e.time;
        span.begin_seq = e.seq;
        it = open.emplace(e.span, spans_.size()).first;
        spans_.push_back(span);
      }
      TraceSpan& span = spans_[it->second];
      span.end = e.time;
      span.end_seq = e.seq;
      span.end_machine = e.machine;
      span.end_arg = e.arg;
      span.detail = e.detail;
      span.ended = true;
      open.erase(it);
    }
  }
}

std::vector<TraceSpan> TraceQuery::SpansOf(TraceOp op) const {
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : spans_) {
    if (s.op == op) {
      out.push_back(s);
    }
  }
  return out;
}

std::vector<TraceSpan> TraceQuery::SpansOfProclet(uint64_t proclet) const {
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : spans_) {
    if (s.proclet == proclet) {
      out.push_back(s);
    }
  }
  return out;
}

std::vector<TraceSpan> TraceQuery::SpansInTrace(TraceId id) const {
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : spans_) {
    if (s.trace_id == id) {
      out.push_back(s);
    }
  }
  return out;
}

std::vector<TraceEvent> TraceQuery::Instants(TraceOp op) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.phase == TracePhase::kInstant && e.op == op) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<TraceEvent> TraceQuery::EventsInTrace(TraceId id) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.trace_id == id) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<TraceId> TraceQuery::TraceIds() const {
  std::unordered_set<TraceId> seen;
  for (const TraceEvent& e : events_) {
    if (e.trace_id != kInvalidTraceId) {
      seen.insert(e.trace_id);
    }
  }
  std::vector<TraceId> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool TraceQuery::SingleCausalTree(TraceId id) const {
  std::unordered_set<SpanId> spans_in_trace;
  for (const TraceSpan& s : spans_) {
    if (s.trace_id == id) {
      spans_in_trace.insert(s.id);
    }
  }
  size_t roots = 0;
  for (const TraceSpan& s : spans_) {
    if (s.trace_id != id) {
      continue;
    }
    if (s.parent == kInvalidSpanId) {
      ++roots;
    } else if (spans_in_trace.count(s.parent) == 0) {
      return false;  // dangling causal edge
    }
  }
  for (const TraceEvent& e : events_) {
    if (e.trace_id != id || e.phase != TracePhase::kInstant) {
      continue;
    }
    if (e.parent != kInvalidSpanId && spans_in_trace.count(e.parent) == 0) {
      return false;
    }
  }
  // Zero spans (instants only) counts as a (degenerate) single tree.
  return roots <= 1;
}

std::vector<MachineId> TraceQuery::MachinesInTrace(TraceId id) const {
  std::unordered_set<MachineId> seen;
  for (const TraceEvent& e : events_) {
    if (e.trace_id == id) {
      seen.insert(e.machine);
    }
  }
  std::vector<MachineId> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool TraceQuery::HappensBefore(const TraceSpan& a, const TraceSpan& b) const {
  if (!a.ended) {
    return false;
  }
  if (a.end != b.begin) {
    return a.end < b.begin;
  }
  return a.end_seq < b.begin_seq;
}

bool TraceQuery::HappensBefore(const TraceEvent& a, const TraceEvent& b) const {
  if (a.time != b.time) {
    return a.time < b.time;
  }
  return a.seq < b.seq;
}

bool TraceQuery::HappensBefore(const TraceEvent& a, const TraceSpan& b) const {
  if (a.time != b.begin) {
    return a.time < b.begin;
  }
  return a.seq < b.begin_seq;
}

bool TraceQuery::HappensBefore(const TraceSpan& a, const TraceEvent& b) const {
  if (!a.ended) {
    return false;
  }
  if (a.end != b.time) {
    return a.end < b.time;
  }
  return a.end_seq < b.seq;
}

LatencyHistogram TraceQuery::DurationsOf(TraceOp op) const {
  LatencyHistogram hist;
  for (const TraceSpan& s : spans_) {
    if (s.op == op && s.ended) {
      hist.Add(s.duration());
    }
  }
  return hist;
}

}  // namespace quicksand
