#include "quicksand/trace/flight_recorder.h"

#include <cstdio>

namespace quicksand {

void FlightRecorder::Capture(MachineId machine, const char* reason) {
  for (const Postmortem& existing : postmortems_) {
    if (existing.machine == machine && existing.reason == reason) {
      return;
    }
  }
  Postmortem pm;
  pm.machine = machine;
  pm.reason = reason;
  pm.events = tracer_.LastEvents(machine, last_n_);
  pm.dropped = tracer_.dropped(machine);
  // captured_at = the newest retained event's stamp (the ring holds no
  // clock of its own; the capture happens synchronously at the death event).
  if (!pm.events.empty()) {
    pm.captured_at = pm.events.back().time;
  }
  postmortems_.push_back(std::move(pm));
}

const Postmortem* FlightRecorder::ForMachine(MachineId machine) const {
  const Postmortem* found = nullptr;
  for (const Postmortem& pm : postmortems_) {
    if (pm.machine == machine) {
      found = &pm;
    }
  }
  return found;
}

std::string FlightRecorder::Dump(const Postmortem& postmortem) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "postmortem m%u (%s): last %zu events, %lld wrapped away, "
                "captured at %s\n",
                postmortem.machine, postmortem.reason.c_str(),
                postmortem.events.size(),
                static_cast<long long>(postmortem.dropped),
                postmortem.captured_at.ToString().c_str());
  out += line;
  for (const TraceEvent& e : postmortem.events) {
    const char* phase = e.phase == TracePhase::kBegin   ? "begin"
                        : e.phase == TracePhase::kEnd   ? "end  "
                                                        : "event";
    std::snprintf(line, sizeof(line),
                  "  %14s %s %-13s trace=%llu span=%llu parent=%llu m%u "
                  "proclet=%llu epoch=%llu arg=%lld %s\n",
                  e.time.ToString().c_str(), phase, TraceOpName(e.op),
                  static_cast<unsigned long long>(e.trace_id),
                  static_cast<unsigned long long>(e.span),
                  static_cast<unsigned long long>(e.parent), e.machine,
                  static_cast<unsigned long long>(e.proclet),
                  static_cast<unsigned long long>(e.epoch),
                  static_cast<long long>(e.arg), e.detail);
    out += line;
  }
  return out;
}

}  // namespace quicksand
