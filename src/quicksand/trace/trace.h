// Tracer: causal, sim-time-accurate distributed tracing.
//
// Quicksand's claims are time shapes — sub-millisecond migration, 10–15 ms
// adaptation, fast failover — and aggregate counters cannot answer "where
// did this proclet's 14 ms go?". The tracer records spans (an operation
// with a begin and an end) and instant events (a point occurrence: a
// request leg sent, a suspicion raised, a write fenced) into per-machine
// ring buffers. A TraceContext — (trace id, parent span id, epoch) —
// propagates through RPC messages and migration commands, so spans recorded
// on different machines stitch into one causal tree per trace id.
//
// Three properties the rest of the repo leans on:
//
//  * sim-time accuracy: every event is stamped with Simulator::Now() plus a
//    global sequence number, so ordering is total and bit-reproducible;
//  * zero timing interference: recording never sleeps, never awaits, and
//    never touches the event queue — sim-time results are identical with
//    tracing on, off, or absent (the digest gate in scripts/ci.sh enforces
//    the reproducibility half of this);
//  * bounded memory: each machine keeps the last `ring_capacity` events in
//    a fixed ring (the flight-recorder property — see flight_recorder.h);
//    older events are overwritten, and the per-machine drop count records
//    how many.
//
// The single-threaded discrete-event core makes the rings trivially
// lock-free: recording is an array store and two increments.

#ifndef QUICKSAND_TRACE_TRACE_H_
#define QUICKSAND_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "quicksand/cluster/machine.h"
#include "quicksand/common/time.h"

namespace quicksand {

class Simulator;

using TraceId = uint64_t;
using SpanId = uint64_t;
inline constexpr TraceId kInvalidTraceId = 0;
inline constexpr SpanId kInvalidSpanId = 0;

// The wire-portable causal stamp. Riding inside Ctx, RPC calls, and
// migration commands, it names the tree (trace_id), the node new work hangs
// under (parent_span), and the fencing epoch the sender resolved (so fenced
// rejections are attributable to the stale stamp that caused them).
//
// The stamp also carries the request's end-to-end deadline. Putting it here
// rather than in a parallel side-channel means every hop that already
// propagates causality — RPC legs, retries, nested invocations — propagates
// the deadline for free, and a server can reject work that cannot finish in
// time at admission instead of performing it dead (overload/).
struct TraceContext {
  TraceId trace_id = kInvalidTraceId;
  SpanId parent_span = kInvalidSpanId;
  uint64_t epoch = 0;
  // Absolute end-to-end deadline; Max() = none. Inherited by child spans.
  SimTime deadline = SimTime::Max();

  bool valid() const { return trace_id != kInvalidTraceId; }

  bool has_deadline() const { return deadline != SimTime::Max(); }
  bool ExpiredAt(SimTime now) const { return now > deadline; }
  // Time left before the deadline; Max() when no deadline is set.
  Duration RemainingAt(SimTime now) const {
    return has_deadline() ? deadline - now : Duration::Max();
  }
  // A copy of this stamp carrying `d` (keeps the tighter of the two — a
  // nested call may shrink the budget, never extend it).
  TraceContext WithDeadline(SimTime d) const {
    TraceContext out = *this;
    out.deadline = d < out.deadline ? d : out.deadline;
    return out;
  }
};

// Closed vocabulary of things that happen. Digests, queries, and the
// exporter all key on this enum rather than free-form strings.
enum class TraceOp : uint8_t {
  kTrace,        // root marker emitted by StartTrace
  kSpawn,        // proclet created
  kDestroy,      // proclet deliberately destroyed
  kMigrate,      // gate->drain->copy->flip window (span)
  kSplit,        // shard split (instant, emitted by shard maintenance)
  kMerge,        // shard merge
  kInvoke,       // one proclet method invocation, caller side (span)
  kRpc,          // Rpc::RoundTripWithRetry envelope (span)
  kRpcAttempt,   // one Rpc::RoundTrip attempt (span)
  kRpcSend,      // request leg handed to the fabric
  kRpcRecv,      // request leg delivered at the destination
  kRpcRetry,     // backoff expired, another attempt starts
  kRpcDrop,      // a leg vanished into a partition/lossy link
  kBounce,       // invocation hit a stale location and was redirected
  kCommit,       // a stamped request was admitted and applied
  kAbort,        // a stamped request was rejected (fenced) or a span failed
  kFence,        // a migration was rejected on a stale epoch
  kCheckpoint,   // incremental checkpoint captured and shipped
  kRestore,      // lost proclet adopted back into the directory
  kPromote,      // backup promoted in place of a lost primary
  kRecover,      // whole-machine recovery walk (span)
  kSuspect,      // failure detector suspected a machine
  kClearSuspect, // a late heartbeat exonerated a suspect
  kConfirmDead,  // detector confirmed a machine dead
  kCrash,        // fail-stop observed by the runtime
  kDeclareDead,  // gray-failure declaration (fenced out while maybe alive)
  kLost,         // a proclet's host died under it
  kEvacuate,     // revocation-deadline evacuation of one machine (span)
  kRpcShed,      // admission control shed the request before any work ran
  kDeadlineExpired,  // request rejected at admission: could not finish in time
  kStaleServe,   // read answered from the replication backup (degraded mode)
  kReshapeSplit,   // autoscaler split a hot shard (arg = bytes moved)
  kReshapeMerge,   // autoscaler merged cold neighbors (arg = bytes moved)
  kReshapeMigrate, // autoscaler moved a shard to an idle machine
  kReshapeDefer,   // reshape postponed: copy work would blow the SLO
  kMemoHit,        // content-addressed cache hit (detail: fresh/stale)
  kMemoMiss,       // cache miss: the invocation runs for real
  kMemoStaleServe, // degraded mode served a bounded-staleness memo hit
  kMemoEvict,      // LRU entry dropped for capacity (arg = bytes)
  kMemoHarvest,    // cache shards dropped under pressure (arg = bytes)
};

const char* TraceOpName(TraceOp op);

// Whether an event opens a span, closes one, or stands alone.
enum class TracePhase : uint8_t { kBegin, kEnd, kInstant };

struct TraceEvent {
  SimTime time;
  uint64_t seq = 0;  // global total-order tiebreaker
  TracePhase phase = TracePhase::kInstant;
  TraceOp op = TraceOp::kTrace;
  TraceId trace_id = kInvalidTraceId;
  SpanId span = kInvalidSpanId;    // span this event belongs to
  SpanId parent = kInvalidSpanId;  // enclosing span (causal edge)
  MachineId machine = kInvalidMachineId;
  uint64_t proclet = 0;  // ProcletId, 0 when not about a proclet
  uint64_t epoch = 0;    // fencing epoch carried by the context
  int64_t arg = 0;       // op-specific scalar: bytes, attempt, request id
  const char* detail = "";  // static string: status/outcome; never owned
};

struct TracerOptions {
  // Events retained per machine (the flight-recorder depth).
  size_t ring_capacity = 4096;
};

class Tracer {
 public:
  // Events are recorded against the ring of the machine they concern; the
  // tracer needs the machine count up front and the sim for timestamps.
  Tracer(Simulator& sim, size_t machines, TracerOptions options = TracerOptions{});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  size_t machines() const { return rings_.size(); }

  // Opens a new causal tree rooted at `machine` and returns its context.
  // `name` labels the root instant (static string only).
  TraceContext StartTrace(const char* name, MachineId machine);

  // Opens a span under `parent` (or as a new root trace when `parent` is
  // invalid). The returned context IS the child stamp: hand it to work done
  // on behalf of this span, on any machine.
  TraceContext BeginSpan(const TraceContext& parent, MachineId machine, TraceOp op,
                         uint64_t proclet = 0, int64_t arg = 0);

  // Closes the span opened as `span_ctx` (= the context BeginSpan returned).
  // No-op for invalid contexts or spans already closed.
  void EndSpan(const TraceContext& span_ctx, MachineId machine,
               const char* detail = "ok", int64_t arg = 0);

  // Records a point event under `parent` (invalid parent = free-standing).
  void Instant(const TraceContext& parent, MachineId machine, TraceOp op,
               uint64_t proclet = 0, int64_t arg = 0, const char* detail = "");

  // --- Retained-event access -----------------------------------------------

  // The last events recorded against `machine`, oldest first (at most
  // ring_capacity of them).
  std::vector<TraceEvent> MachineEvents(MachineId machine) const;
  // The last `n` events recorded against `machine`, oldest first.
  std::vector<TraceEvent> LastEvents(MachineId machine, size_t n) const;
  // Every retained event across all machines, in (time, seq) order.
  std::vector<TraceEvent> Snapshot() const;

  int64_t recorded() const { return recorded_; }
  int64_t dropped(MachineId machine) const;

  // Order-sensitive FNV-1a over every retained event (all fields, detail
  // strings byte-wise) plus the drop counts: two same-seed runs must
  // produce identical digests, and any reordering or content drift changes
  // the value. The CI trace-determinism gate compares these.
  uint64_t Digest() const;

 private:
  struct Ring {
    std::vector<TraceEvent> events;  // fixed capacity, circular
    size_t next = 0;                 // slot the next event lands in
    size_t size = 0;
    int64_t dropped = 0;
  };

  // Open-span bookkeeping so EndSpan can emit a fully-attributed end event.
  struct OpenSpan {
    TraceId trace_id = kInvalidTraceId;
    SpanId parent = kInvalidSpanId;
    TraceOp op = TraceOp::kTrace;
    uint64_t proclet = 0;
    uint64_t epoch = 0;
  };

  void Record(TraceEvent event);

  Simulator& sim_;
  TracerOptions options_;
  std::vector<Ring> rings_;
  std::vector<std::pair<SpanId, OpenSpan>> open_spans_;  // small, searched linearly
  TraceId next_trace_id_ = 1;
  SpanId next_span_id_ = 1;
  uint64_t next_seq_ = 1;
  int64_t recorded_ = 0;
};

// Ends a span when the enclosing frame unwinds — including through an
// exception — with whatever detail was set last ("abort" until a success
// path calls End()). Designed for coroutine frames: destruction happens at
// co_return or unwind, which is exactly when the span ends.
class SpanGuard {
 public:
  SpanGuard() = default;
  SpanGuard(Tracer* tracer, TraceContext span_ctx, MachineId machine)
      : tracer_(tracer), ctx_(span_ctx), machine_(machine) {}

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  SpanGuard(SpanGuard&& other) noexcept { *this = std::move(other); }
  SpanGuard& operator=(SpanGuard&& other) noexcept {
    Finish();
    tracer_ = other.tracer_;
    ctx_ = other.ctx_;
    machine_ = other.machine_;
    other.tracer_ = nullptr;
    return *this;
  }

  ~SpanGuard() { Finish(); }

  // The context to stamp child work with.
  const TraceContext& ctx() const { return ctx_; }

  // Closes the span now with an explicit outcome.
  void End(const char* detail, int64_t arg = 0) {
    if (tracer_ != nullptr && ctx_.valid()) {
      tracer_->EndSpan(ctx_, machine_, detail, arg);
    }
    tracer_ = nullptr;
  }

 private:
  void Finish() {
    if (tracer_ != nullptr && ctx_.valid()) {
      tracer_->EndSpan(ctx_, machine_, "abort");
    }
    tracer_ = nullptr;
  }

  Tracer* tracer_ = nullptr;
  TraceContext ctx_{};
  MachineId machine_ = kInvalidMachineId;
};

}  // namespace quicksand

#endif  // QUICKSAND_TRACE_TRACE_H_
