// TraceQuery: a test oracle over recorded trace events.
//
// Tests (and bench smoke gates) assert time-shape claims directly against
// the trace instead of against aggregate counters: "this migration's
// critical path is sub-millisecond", "no fenced request ever commits",
// "the failover's events form one causal tree". The query view pairs span
// begin/end events, resolves parent edges, and offers happens-before on the
// deterministic (time, seq) total order.

#ifndef QUICKSAND_TRACE_QUERY_H_
#define QUICKSAND_TRACE_QUERY_H_

#include <cstdint>
#include <vector>

#include "quicksand/common/stats.h"
#include "quicksand/trace/trace.h"

namespace quicksand {

// A reconstructed span: its begin event joined with its end event (if the
// span ended before the snapshot was taken).
struct TraceSpan {
  TraceId trace_id = kInvalidTraceId;
  SpanId id = kInvalidSpanId;
  SpanId parent = kInvalidSpanId;
  TraceOp op = TraceOp::kTrace;
  MachineId begin_machine = kInvalidMachineId;
  MachineId end_machine = kInvalidMachineId;
  uint64_t proclet = 0;
  uint64_t epoch = 0;
  SimTime begin;
  SimTime end;
  uint64_t begin_seq = 0;
  uint64_t end_seq = 0;
  int64_t arg = 0;           // begin-side scalar
  int64_t end_arg = 0;       // end-side scalar
  const char* detail = "";   // end-side outcome ("commit", "abort", ...)
  bool ended = false;

  Duration duration() const { return end - begin; }
};

class TraceQuery {
 public:
  explicit TraceQuery(std::vector<TraceEvent> events);

  static TraceQuery FromTracer(const Tracer& tracer) {
    return TraceQuery(tracer.Snapshot());
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<TraceSpan>& spans() const { return spans_; }

  // --- Finding --------------------------------------------------------------

  std::vector<TraceSpan> SpansOf(TraceOp op) const;
  std::vector<TraceSpan> SpansOfProclet(uint64_t proclet) const;
  std::vector<TraceSpan> SpansInTrace(TraceId id) const;
  std::vector<TraceEvent> Instants(TraceOp op) const;
  std::vector<TraceEvent> EventsInTrace(TraceId id) const;
  // All distinct trace ids observed, ascending.
  std::vector<TraceId> TraceIds() const;

  // --- Causality ------------------------------------------------------------

  // True when every span and attributed event of trace `id` hangs off one
  // root: each nonzero parent resolves to a span of the same trace. This is
  // the "cross-machine spans stitch into a single causal tree" assertion.
  bool SingleCausalTree(TraceId id) const;

  // Distinct machines that recorded events for trace `id`.
  std::vector<MachineId> MachinesInTrace(TraceId id) const;

  // a completed strictly before b started, on the deterministic total
  // order (time, then global sequence).
  bool HappensBefore(const TraceSpan& a, const TraceSpan& b) const;
  bool HappensBefore(const TraceEvent& a, const TraceEvent& b) const;
  // The instant a occurred strictly before span b began.
  bool HappensBefore(const TraceEvent& a, const TraceSpan& b) const;
  bool HappensBefore(const TraceSpan& a, const TraceEvent& b) const;

  // --- Aggregation ----------------------------------------------------------

  // Duration distribution of all ENDED spans of `op`.
  LatencyHistogram DurationsOf(TraceOp op) const;

 private:
  std::vector<TraceEvent> events_;  // (time, seq)-sorted
  std::vector<TraceSpan> spans_;    // by begin order
};

}  // namespace quicksand

#endif  // QUICKSAND_TRACE_QUERY_H_
