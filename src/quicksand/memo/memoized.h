// MemoCache: content-addressed memoization with single-flight dedup.
//
// GetOrCompute is the whole contract: look the key up in the directory;
// on a servable hit return the cached value; otherwise run `compute`
// exactly once per (salted key, burst) — concurrent identical requests
// park on a SimEvent and share the first caller's result instead of
// duplicating the work — then insert the result for the next caller.
//
// Correctness stance: the cache is transparent for deterministic
// (idempotent, salt-disciplined) functions. A hit returns a value some
// previous identical invocation produced; a single-flight join returns the
// value a concurrent identical invocation is producing. Failures are never
// cached, and a failed leader's joiners get the leader's status — they can
// simply retry (which starts a new flight).
//
// The Memoized(...) wrapper applies this to Ref<P>::Call; the DistPool
// variant lives in compute/memoized_pool.h.

#ifndef QUICKSAND_MEMO_MEMOIZED_H_
#define QUICKSAND_MEMO_MEMOIZED_H_

#include <any>
#include <cstdint>
#include <exception>
#include <memory>
#include <unordered_map>
#include <utility>

#include "quicksand/common/wire.h"
#include "quicksand/memo/memo_directory.h"
#include "quicksand/sim/sync.h"

namespace quicksand {

class MemoCache {
 public:
  MemoCache(Runtime& rt, MemoDirectory& dir) : rt_(rt), dir_(dir) {}

  MemoDirectory& directory() { return dir_; }
  int64_t single_flight_waits() const { return single_flight_waits_; }
  int64_t computes() const { return computes_; }

  // `compute` is () -> Task<Result<T>>. `max_staleness` bounds how old a
  // salt-mismatched entry may be and still be served (Zero = fresh only).
  template <typename T, typename Fn>
  Task<Result<T>> GetOrCompute(Ctx ctx, MemoKey key, Duration max_staleness,
                               Fn compute) {
    {
      auto look = dir_.Lookup(ctx, key, max_staleness);
      MemoLookup hit = co_await std::move(look);
      if (hit.outcome != MemoOutcome::kMiss) {
        // A route-hash collision across result types shows up here as a
        // bad any_cast; treat it as a miss and recompute.
        if (const T* value = std::any_cast<T>(&hit.value)) {
          if (hit.outcome == MemoOutcome::kStaleHit) {
            dir_.NoteStaleServe(key);
          }
          co_return *value;
        }
      }
    }
    if (auto it = inflight_.find(key.salted); it != inflight_.end()) {
      std::shared_ptr<Flight> flight = it->second;
      ++single_flight_waits_;
      co_await flight->done.Wait();
      if (flight->ok) {
        if (const T* value = std::any_cast<T>(&flight->value)) {
          co_return *value;
        }
        co_return Status::Internal("single-flight result type mismatch");
      }
      co_return flight->status;
    }
    auto flight = std::make_shared<Flight>(rt_.sim());
    inflight_.emplace(key.salted, flight);
    ++computes_;
    Result<T> result = Status::Unavailable("memoized compute failed");
    try {
      auto run = compute();
      result = co_await std::move(run);
    } catch (...) {
      inflight_.erase(key.salted);
      flight->status = Status::Unavailable("memoized compute threw");
      flight->done.Set();
      throw;
    }
    if (result.ok()) {
      flight->ok = true;
      flight->value = std::any(*result);
      // Best effort: a failed insert (shard host down, out of memory) just
      // means the next identical call recomputes.
      auto insert = dir_.Insert(ctx, key, std::any(*result), WireSizeOf(*result));
      (void)co_await std::move(insert);
    } else {
      flight->status = result.status();
    }
    inflight_.erase(key.salted);
    flight->done.Set();
    co_return result;
  }

 private:
  struct Flight {
    explicit Flight(Simulator& sim) : done(sim) {}
    SimEvent done;
    bool ok = false;
    std::any value;
    Status status = Status::Unavailable("flight incomplete");
  };

  Runtime& rt_;
  MemoDirectory& dir_;
  std::unordered_map<uint64_t, std::shared_ptr<Flight>> inflight_;
  int64_t single_flight_waits_ = 0;
  int64_t computes_ = 0;
};

// Memoized remote invocation: a servable hit skips the call entirely; a
// miss invokes `fn` on `target` (single-flighted across concurrent
// identical keys) and caches the result. `fn` is the usual Call functor,
// (P&) -> Task<Result<T>>, and must be deterministic given the key.
// Invocation-path exceptions (shed, lost, unreachable, deadline) surface
// as a non-ok Result instead of escaping, so memoized and raw call sites
// can share retry logic.
template <typename T, typename P, typename Fn>
Task<Result<T>> Memoized(MemoCache& cache, Ctx ctx, Ref<P> target,
                         MemoKey key, Fn fn, int64_t request_bytes = 0,
                         Duration max_staleness = Duration::Zero()) {
  co_return co_await cache.GetOrCompute<T>(
      ctx, key, max_staleness,
      [ctx, target, fn = std::move(fn), request_bytes]() -> Task<Result<T>> {
        try {
          auto call = target.Call(ctx, fn, request_bytes);
          co_return co_await std::move(call);
        } catch (const std::exception& e) {
          co_return Status::Unavailable(e.what());
        }
      });
}

}  // namespace quicksand

#endif  // QUICKSAND_MEMO_MEMOIZED_H_
