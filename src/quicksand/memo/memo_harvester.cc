#include "quicksand/memo/memo_harvester.h"

#include <utility>

namespace quicksand {

Task<int64_t> MemoHarvester::HarvestMachine(MachineId machine) {
  int64_t freed = 0;
  for (MemoDirectory* directory : directories_) {
    auto harvest = directory->HarvestMachine(rt_.CtxOn(directory->home()), machine);
    freed += co_await std::move(harvest);
  }
  if (freed > 0) {
    ++harvests_;
    harvested_bytes_ += freed;
  }
  co_return freed;
}

Task<int64_t> MemoHarvester::ReleaseBytes(MachineId machine,
                                          int64_t target_bytes) {
  int64_t freed = 0;
  for (MemoDirectory* directory : directories_) {
    if (freed >= target_bytes) {
      break;
    }
    auto release = directory->ReleaseBytes(rt_.CtxOn(directory->home()),
                                           machine, target_bytes - freed);
    freed += co_await std::move(release);
  }
  if (freed > 0) {
    harvested_bytes_ += freed;
  }
  co_return freed;
}

}  // namespace quicksand
