// MemoDirectory: routes content-addressed keys to MemoShardProclets.
//
// A fixed slot table (slot = route % shards) over ordinary cache shard
// proclets. The directory is deliberately loss-tolerant rather than
// durable: a lookup that lands on a dead shard is just a miss, and Insert
// lazily recreates lost slots — cache contents are soft state, so repair is
// "start empty and refill", never "recover". That is also what makes the
// tier harvestable: MemoHarvester can destroy every shard on a machine
// (zero wire cost) and the directory keeps answering, degraded to misses
// for the affected slots until inserts repopulate them.
//
// Freshness protocol (see memo_key.h): an entry is a FRESH hit when its
// stored salted hash matches the caller's current one. On a mismatch the
// entry is still returned as a STALE hit if its age is within the caller's
// `max_staleness` — the degraded-mode budget; pass Zero to accept only
// fresh results.

#ifndef QUICKSAND_MEMO_MEMO_DIRECTORY_H_
#define QUICKSAND_MEMO_MEMO_DIRECTORY_H_

#include <any>
#include <cstdint>
#include <vector>

#include "quicksand/cluster/metrics.h"
#include "quicksand/common/status.h"
#include "quicksand/memo/memo_key.h"
#include "quicksand/memo/memo_shard.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

enum class MemoOutcome { kMiss, kFreshHit, kStaleHit };

struct MemoLookup {
  MemoOutcome outcome = MemoOutcome::kMiss;
  std::any value;
  int64_t bytes = 0;
  Duration age = Duration::Zero();  // now - stored_at; zero for fresh hits
};

struct MemoDirectoryOptions {
  int shards = 4;
  int64_t shard_max_bytes = 4 << 20;  // per-shard entry-byte budget
  int64_t shard_heap_bytes = 64 << 10;  // base heap reservation per shard
  MachineId home = 0;  // where directory-driven control calls originate
  // Shard hosts, cycled slot-by-slot. Empty = every non-home live machine
  // at Start() time, in machine-id order (deterministic).
  std::vector<MachineId> hosts;
  int64_t lookup_request_bytes = 64;  // wire cost of a lookup request leg
};

class MemoDirectory : public MemoStatsSource {
 public:
  explicit MemoDirectory(Runtime& rt, MemoDirectoryOptions options = {});

  // Creates the shard proclets. Call once before any Lookup/Insert.
  Task<Status> Start(Ctx ctx);

  // Queries the slot for `key`. A dead or never-created shard is a miss.
  Task<MemoLookup> Lookup(Ctx ctx, MemoKey key, Duration max_staleness);

  // Stores a result, lazily recreating the slot's shard if it was lost.
  Task<Status> Insert(Ctx ctx, MemoKey key, std::any value,
                      int64_t value_bytes);

  // Called by frontends when a stale hit was actually served to a client
  // (Lookup only reports that one was available).
  void NoteStaleServe(const MemoKey& key);

  // --- Harvest interface (see memo_harvester.h) -----------------------------

  // Destroys every shard hosted on `machine`, releasing its cache bytes
  // with zero wire cost. Slots repair lazily on the next Insert. Returns
  // the cache bytes dropped.
  Task<int64_t> HarvestMachine(Ctx ctx, MachineId machine);

  // LRU-evicts entries from shards on `machine` until `target_bytes` have
  // been released (or nothing is left). Returns the bytes released.
  Task<int64_t> ReleaseBytes(Ctx ctx, MachineId machine, int64_t target_bytes);

  // Eagerly recreates every lost slot (tests; production relies on lazy
  // repair). Returns the number of shards recreated.
  Task<int> RepairLostShards(Ctx ctx);

  // --- Introspection --------------------------------------------------------

  // Resident entry bytes across live shards (walks them; sim is
  // single-threaded so this is exact).
  int64_t cached_bytes() const;
  int64_t cached_entries() const;
  int live_shards() const;
  MachineId home() const { return options_.home; }
  const std::vector<Ref<MemoShardProclet>>& shards() const { return shards_; }

  int64_t hits() const { return hits_; }
  int64_t stale_hits() const { return stale_hits_; }
  int64_t misses() const { return misses_; }
  int64_t stale_serves() const { return stale_serves_; }
  int64_t inserts() const { return inserts_; }
  int64_t lost_lookups() const { return lost_lookups_; }
  int64_t repairs() const { return repairs_; }
  int64_t harvested_bytes() const { return harvested_bytes_; }

  MemoSample SampleMemo(SimTime now) const override;

 private:
  // Recreates the shard for `slot` on its deterministic host. Fails (and
  // leaves the slot empty) when the host is down or out of memory.
  Task<Status> CreateShard(Ctx ctx, size_t slot);
  MachineId PickHost(size_t slot) const;
  // The slot's live proclet, or nullptr when lost/never created.
  MemoShardProclet* LiveShard(size_t slot) const;

  Runtime& rt_;
  MemoDirectoryOptions options_;
  std::vector<Ref<MemoShardProclet>> shards_;
  bool started_ = false;

  int64_t hits_ = 0;
  int64_t stale_hits_ = 0;
  int64_t misses_ = 0;
  int64_t stale_serves_ = 0;
  int64_t inserts_ = 0;
  int64_t lost_lookups_ = 0;
  int64_t repairs_ = 0;
  int64_t harvested_bytes_ = 0;
  // Eviction counters of shards that no longer exist (harvested), so
  // SampleMemo's totals do not go backwards when a shard dies.
  int64_t retired_evictions_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_MEMO_MEMO_DIRECTORY_H_
