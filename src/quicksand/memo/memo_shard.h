// MemoShardProclet: one LRU segment of the content-addressed result cache.
//
// An ordinary kMemory proclet — it charges its entries to the hosting
// machine's heap, migrates, and counts toward placement like any other
// memory proclet — except that its state is pure soft state: every entry
// can be recomputed from the original invocation. It therefore overrides
// harvestable() to true and deliberately does NOT implement the durability
// hooks: checkpointing or replicating a cache would spend exactly the
// resources the cache exists to save. Under revocation the MemoHarvester
// drops whole shards (zero wire cost) before the evacuator spends its
// deadline migrating live state.
//
// Entries are keyed by the MemoKey route hash (one entry per logical call)
// and carry the salted hash they were computed under plus their store time,
// so the directory can distinguish fresh hits from bounded-staleness hits.
// Eviction is strict LRU over a byte budget — deterministic, so same-seed
// runs produce bit-identical hit sequences.

#ifndef QUICKSAND_MEMO_MEMO_SHARD_H_
#define QUICKSAND_MEMO_MEMO_SHARD_H_

#include <any>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "quicksand/common/status.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

class MemoShardProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kMemory;

  struct Options {
    int64_t max_bytes = 4 << 20;  // entry-byte budget (excludes base heap)
  };

  MemoShardProclet(const ProcletInit& init, Options options)
      : ProcletBase(init), options_(options) {}

  bool harvestable() const override { return true; }

  // Lookup result, shipped back over the simulated wire. `fresh` means the
  // stored salted hash matches the caller's; a mismatch is only servable
  // within the caller's staleness bound (the directory decides).
  struct Lookup {
    bool found = false;
    bool fresh = false;
    std::any value;
    int64_t bytes = 0;
    SimTime stored_at = SimTime::Zero();

    int64_t WireBytes() const { return bytes + 32; }
  };

  Lookup Get(uint64_t route, uint64_t salted);

  // Inserts or overwrites the entry for `route`, evicting LRU entries until
  // the new value fits the byte budget and the host has memory for it.
  Status Put(uint64_t route, uint64_t salted, std::any value, int64_t bytes);

  // Drops LRU entries until at least `target_bytes` have been released (or
  // the shard is empty). Returns the bytes actually released.
  int64_t EvictBytes(int64_t target_bytes);

  // Drops everything (harvest). Returns the bytes released.
  int64_t DropAll();

  int64_t cached_bytes() const { return cached_bytes_; }
  size_t entries() const { return entries_.size(); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t inserts() const { return inserts_; }
  int64_t evictions() const { return evictions_; }
  int64_t evicted_bytes() const { return evicted_bytes_; }

 private:
  struct Entry {
    std::any value;
    int64_t bytes = 0;
    uint64_t salted = 0;
    SimTime stored_at = SimTime::Zero();
    std::list<uint64_t>::iterator lru_it;
  };

  // Drops the LRU tail entry. Pre: non-empty.
  void EvictOne();

  Options options_;
  std::list<uint64_t> lru_;  // front = most recently used
  std::unordered_map<uint64_t, Entry> entries_;
  int64_t cached_bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t inserts_ = 0;
  int64_t evictions_ = 0;
  int64_t evicted_bytes_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_MEMO_MEMO_SHARD_H_
