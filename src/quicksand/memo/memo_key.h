// Content-addressed memo keys.
//
// A MemoKey names one logical invocation result two ways at once:
//
//  * `route`  — FNV-1a over the function id and canonicalized arguments.
//    This is the placement hash: it picks the MemoShardProclet slot, so all
//    versions of the same logical call land on (and overwrite in) the same
//    shard, keeping the cache at one entry per logical key.
//  * `salted` — the same hash additionally folded over an explicit
//    epoch/version salt. The stored entry remembers the salt hash it was
//    computed under; a lookup whose salted hash matches is a FRESH hit,
//    while a mismatch within the caller's staleness bound is a STALE hit
//    (servable only in degraded mode — see MemoDirectory::Lookup).
//
// Callers own the salt discipline: bump the salt whenever the underlying
// state changes (KvFrontend bumps a per-key version at write start AND at
// write ack, which closes the read-caches-pre-apply-value race) and reuse
// salt 0 for pure functions whose results never go stale.

#ifndef QUICKSAND_MEMO_MEMO_KEY_H_
#define QUICKSAND_MEMO_MEMO_KEY_H_

#include <cstdint>
#include <string_view>

namespace quicksand {

struct MemoKey {
  uint64_t route = 0;   // fn + args: shard placement and entry identity
  uint64_t salted = 0;  // fn + args + salt: freshness fingerprint

  bool operator==(const MemoKey& other) const = default;
};

// Incremental FNV-1a. Feed the function id first, then each argument in a
// canonical order; Build() folds in the salt last so the same builder state
// can stamp keys for several versions.
class MemoKeyBuilder {
 public:
  MemoKeyBuilder& Fn(uint64_t fn_id) { return U64(fn_id); }

  MemoKeyBuilder& U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      Byte(static_cast<uint8_t>(v >> (8 * i)));
    }
    return *this;
  }

  MemoKeyBuilder& I64(int64_t v) { return U64(static_cast<uint64_t>(v)); }

  MemoKeyBuilder& Str(std::string_view s) {
    U64(s.size());  // length prefix keeps ("ab","c") != ("a","bc")
    for (const char c : s) {
      Byte(static_cast<uint8_t>(c));
    }
    return *this;
  }

  MemoKey Build(uint64_t salt = 0) const {
    MemoKey key;
    key.route = hash_;
    uint64_t h = hash_;
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<uint8_t>(salt >> (8 * i));
      h *= kFnvPrime;
    }
    key.salted = h;
    return key;
  }

 private:
  static constexpr uint64_t kFnvOffset = 14695981039346656037ull;
  static constexpr uint64_t kFnvPrime = 1099511628211ull;

  void Byte(uint8_t b) {
    hash_ ^= b;
    hash_ *= kFnvPrime;
  }

  uint64_t hash_ = kFnvOffset;
};

}  // namespace quicksand

#endif  // QUICKSAND_MEMO_MEMO_KEY_H_
