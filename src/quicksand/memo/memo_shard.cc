#include "quicksand/memo/memo_shard.h"

#include <utility>

#include "quicksand/trace/trace.h"

namespace quicksand {

MemoShardProclet::Lookup MemoShardProclet::Get(uint64_t route,
                                               uint64_t salted) {
  Lookup out;
  auto it = entries_.find(route);
  if (it == entries_.end()) {
    ++misses_;
    return out;
  }
  Entry& entry = it->second;
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
  ++hits_;
  out.found = true;
  out.fresh = entry.salted == salted;
  out.value = entry.value;
  out.bytes = entry.bytes;
  out.stored_at = entry.stored_at;
  return out;
}

Status MemoShardProclet::Put(uint64_t route, uint64_t salted, std::any value,
                             int64_t bytes) {
  if (bytes > options_.max_bytes) {
    return Status::InvalidArgument("memo value exceeds the shard byte budget");
  }
  auto it = entries_.find(route);
  if (it != entries_.end()) {
    // Overwrite in place: release the old value's bytes first so the budget
    // check below sees the true post-insert footprint.
    ReleaseHeap(it->second.bytes);
    cached_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  while (!entries_.empty() && cached_bytes_ + bytes > options_.max_bytes) {
    EvictOne();
  }
  while (!TryChargeHeap(bytes)) {
    // Host is out of memory even though we are within budget: shrink until
    // the charge fits. An empty shard that still cannot charge refuses.
    if (entries_.empty()) {
      return Status::ResourceExhausted("memo shard host is out of memory");
    }
    EvictOne();
  }
  lru_.push_front(route);
  entries_.emplace(route, Entry{std::move(value), bytes, salted,
                                runtime().sim().Now(), lru_.begin()});
  cached_bytes_ += bytes;
  ++inserts_;
  return Status::Ok();
}

int64_t MemoShardProclet::EvictBytes(int64_t target_bytes) {
  int64_t released = 0;
  while (released < target_bytes && !entries_.empty()) {
    auto it = entries_.find(lru_.back());
    released += it->second.bytes;
    EvictOne();
  }
  return released;
}

int64_t MemoShardProclet::DropAll() {
  const int64_t released = cached_bytes_;
  while (!entries_.empty()) {
    EvictOne();
  }
  return released;
}

void MemoShardProclet::EvictOne() {
  auto it = entries_.find(lru_.back());
  const int64_t bytes = it->second.bytes;
  ReleaseHeap(bytes);
  cached_bytes_ -= bytes;
  ++evictions_;
  evicted_bytes_ += bytes;
  lru_.pop_back();
  entries_.erase(it);
  if (Tracer* t = runtime().tracer()) {
    t->Instant(TraceContext{}, location(), TraceOp::kMemoEvict, id(), bytes);
  }
}

}  // namespace quicksand
