#include "quicksand/memo/memo_directory.h"

#include <exception>
#include <utility>

#include "quicksand/trace/trace.h"

namespace quicksand {

MemoDirectory::MemoDirectory(Runtime& rt, MemoDirectoryOptions options)
    : rt_(rt), options_(options) {}

Task<Status> MemoDirectory::Start(Ctx ctx) {
  if (started_) {
    co_return Status::FailedPrecondition("memo directory already started");
  }
  if (options_.hosts.empty()) {
    for (MachineId m = 0; m < rt_.cluster().size(); ++m) {
      if (m != options_.home && !rt_.cluster().machine(m).failed()) {
        options_.hosts.push_back(m);
      }
    }
  }
  if (options_.hosts.empty()) {
    co_return Status::FailedPrecondition("no machines can host memo shards");
  }
  started_ = true;
  shards_.resize(static_cast<size_t>(options_.shards));
  for (size_t slot = 0; slot < shards_.size(); ++slot) {
    Status created = co_await CreateShard(ctx, slot);
    if (!created.ok()) {
      co_return created;
    }
  }
  // Start() is the one place repairs_ should not count creations.
  repairs_ = 0;
  co_return Status::Ok();
}

MachineId MemoDirectory::PickHost(size_t slot) const {
  // Deterministic first choice, then probe forward through the host list so
  // a repair after a crash lands on a live machine.
  const size_t n = options_.hosts.size();
  for (size_t i = 0; i < n; ++i) {
    const MachineId m = options_.hosts[(slot + i) % n];
    if (rt_.cluster().machine(m).accepting()) {
      return m;
    }
  }
  // Every configured host is down. The cache is soft state — it can live
  // anywhere — so fall back to any accepting machine other than home.
  for (MachineId m = 0; m < rt_.cluster().size(); ++m) {
    if (m != options_.home && rt_.cluster().machine(m).accepting()) {
      return m;
    }
  }
  return kInvalidMachineId;
}

MemoShardProclet* MemoDirectory::LiveShard(size_t slot) const {
  const Ref<MemoShardProclet>& ref = shards_[slot];
  if (!ref || rt_.IsLost(ref.id())) {
    return nullptr;
  }
  return rt_.UnsafeGet<MemoShardProclet>(ref.id());
}

Task<Status> MemoDirectory::CreateShard(Ctx ctx, size_t slot) {
  const MachineId host = PickHost(slot);
  if (host == kInvalidMachineId) {
    co_return Status::Unavailable("no live machine can host the memo shard");
  }
  PlacementRequest req;
  req.heap_bytes = options_.shard_heap_bytes;
  req.pinned = host;
  MemoShardProclet::Options shard_options;
  shard_options.max_bytes = options_.shard_max_bytes;
  Result<Ref<MemoShardProclet>> created =
      co_await rt_.Create<MemoShardProclet>(ctx, req, shard_options);
  if (!created.ok()) {
    co_return created.status();
  }
  shards_[slot] = *created;
  ++repairs_;
  co_return Status::Ok();
}

Task<MemoLookup> MemoDirectory::Lookup(Ctx ctx, MemoKey key,
                                       Duration max_staleness) {
  MemoLookup out;
  if (shards_.empty()) {
    ++misses_;
    co_return out;
  }
  const size_t slot = key.route % shards_.size();
  const Ref<MemoShardProclet> shard = shards_[slot];
  Tracer* tracer = rt_.tracer();
  if (!shard || rt_.IsLost(shard.id())) {
    ++misses_;
    ++lost_lookups_;
    if (tracer != nullptr) {
      tracer->Instant(ctx.trace, ctx.machine, TraceOp::kMemoMiss, shard.id(),
                      0, "lost_shard");
    }
    co_return out;
  }
  MemoShardProclet::Lookup got;
  try {
    auto call = shard.Call(
        ctx,
        [route = key.route, salted = key.salted](MemoShardProclet& p)
            -> Task<MemoShardProclet::Lookup> { co_return p.Get(route, salted); },
        options_.lookup_request_bytes);
    got = co_await std::move(call);
  } catch (const std::exception&) {
    // Lost mid-call, shed, unreachable, past deadline — all just misses:
    // the caller recomputes. The cache must never add a failure mode.
    ++misses_;
    ++lost_lookups_;
    if (tracer != nullptr) {
      tracer->Instant(ctx.trace, ctx.machine, TraceOp::kMemoMiss, shard.id(),
                      0, "unreachable");
    }
    co_return out;
  }
  if (got.found) {
    const Duration age = rt_.sim().Now() - got.stored_at;
    if (got.fresh) {
      out.outcome = MemoOutcome::kFreshHit;
      out.value = std::move(got.value);
      out.bytes = got.bytes;
      ++hits_;
      if (tracer != nullptr) {
        tracer->Instant(ctx.trace, ctx.machine, TraceOp::kMemoHit, shard.id(),
                        got.bytes, "fresh");
      }
      co_return out;
    }
    if (max_staleness > Duration::Zero() && age <= max_staleness) {
      out.outcome = MemoOutcome::kStaleHit;
      out.value = std::move(got.value);
      out.bytes = got.bytes;
      out.age = age;
      ++stale_hits_;
      if (tracer != nullptr) {
        tracer->Instant(ctx.trace, ctx.machine, TraceOp::kMemoHit, shard.id(),
                        got.bytes, "stale");
      }
      co_return out;
    }
  }
  ++misses_;
  if (tracer != nullptr) {
    tracer->Instant(ctx.trace, ctx.machine, TraceOp::kMemoMiss, shard.id());
  }
  co_return out;
}

Task<Status> MemoDirectory::Insert(Ctx ctx, MemoKey key, std::any value,
                                   int64_t value_bytes) {
  if (shards_.empty()) {
    co_return Status::FailedPrecondition("memo directory not started");
  }
  const size_t slot = key.route % shards_.size();
  if (!shards_[slot] || rt_.IsLost(shards_[slot].id())) {
    // Lazy repair: re-create the slot on its deterministic host, or the
    // next live one (PickHost probes). The shard comes back empty — lost
    // cache is lost hit rate, nothing more.
    Status repaired = co_await CreateShard(ctx, slot);
    if (!repaired.ok()) {
      co_return repaired;
    }
  }
  const Ref<MemoShardProclet> shard = shards_[slot];
  try {
    // Named task: see the GCC 12 note in sim/task.h.
    auto call = shard.Call(
        ctx,
        [route = key.route, salted = key.salted, value = std::move(value),
         value_bytes](MemoShardProclet& p) mutable -> Task<Status> {
          co_return p.Put(route, salted, std::move(value), value_bytes);
        },
        value_bytes);
    const Status put = co_await std::move(call);
    if (put.ok()) {
      ++inserts_;
    }
    co_return put;
  } catch (const std::exception& e) {
    co_return Status::Unavailable(e.what());
  }
}

void MemoDirectory::NoteStaleServe(const MemoKey& key) {
  ++stale_serves_;
  if (Tracer* tracer = rt_.tracer()) {
    const size_t slot = shards_.empty() ? 0 : key.route % shards_.size();
    tracer->Instant(TraceContext{}, options_.home, TraceOp::kMemoStaleServe,
                    shards_.empty() ? 0 : shards_[slot].id());
  }
}

Task<int64_t> MemoDirectory::HarvestMachine(Ctx ctx, MachineId machine) {
  int64_t freed = 0;
  for (size_t slot = 0; slot < shards_.size(); ++slot) {
    MemoShardProclet* shard = LiveShard(slot);
    if (shard == nullptr || shard->location() != machine) {
      continue;
    }
    freed += shard->cached_bytes();
    retired_evictions_ += shard->evictions();
    const ProcletId id = shards_[slot].id();
    shards_[slot] = Ref<MemoShardProclet>{};
    // Destroy drains any in-flight lookup, then releases the whole heap —
    // no migration, no wire bytes; the slot repairs lazily on Insert.
    auto destroy = rt_.Destroy(ctx, id);
    (void)co_await std::move(destroy);
  }
  if (freed > 0) {
    harvested_bytes_ += freed;
    if (Tracer* tracer = rt_.tracer()) {
      tracer->Instant(ctx.trace, machine, TraceOp::kMemoHarvest, 0, freed);
    }
  }
  co_return freed;
}

Task<int64_t> MemoDirectory::ReleaseBytes(Ctx ctx, MachineId machine,
                                          int64_t target_bytes) {
  int64_t freed = 0;
  for (size_t slot = 0; slot < shards_.size() && freed < target_bytes;
       ++slot) {
    MemoShardProclet* shard = LiveShard(slot);
    if (shard == nullptr || shard->location() != machine) {
      continue;
    }
    freed += shard->EvictBytes(target_bytes - freed);
  }
  if (freed > 0) {
    harvested_bytes_ += freed;
    if (Tracer* tracer = rt_.tracer()) {
      tracer->Instant(ctx.trace, machine, TraceOp::kMemoHarvest, 0, freed,
                      "partial");
    }
  }
  co_return freed;
}

Task<int> MemoDirectory::RepairLostShards(Ctx ctx) {
  int repaired = 0;
  for (size_t slot = 0; slot < shards_.size(); ++slot) {
    if (shards_[slot] && !rt_.IsLost(shards_[slot].id())) {
      continue;
    }
    Status created = co_await CreateShard(ctx, slot);
    if (created.ok()) {
      ++repaired;
    }
  }
  co_return repaired;
}

int64_t MemoDirectory::cached_bytes() const {
  int64_t total = 0;
  for (size_t slot = 0; slot < shards_.size(); ++slot) {
    if (const MemoShardProclet* shard = LiveShard(slot)) {
      total += shard->cached_bytes();
    }
  }
  return total;
}

int64_t MemoDirectory::cached_entries() const {
  int64_t total = 0;
  for (size_t slot = 0; slot < shards_.size(); ++slot) {
    if (const MemoShardProclet* shard = LiveShard(slot)) {
      total += static_cast<int64_t>(shard->entries());
    }
  }
  return total;
}

int MemoDirectory::live_shards() const {
  int live = 0;
  for (size_t slot = 0; slot < shards_.size(); ++slot) {
    if (LiveShard(slot) != nullptr) {
      ++live;
    }
  }
  return live;
}

MemoSample MemoDirectory::SampleMemo(SimTime now) const {
  (void)now;
  MemoSample sample;
  sample.hits_total = hits_;
  sample.stale_hits_total = stale_hits_;
  sample.misses_total = misses_;
  sample.stale_serves_total = stale_serves_;
  sample.inserts_total = inserts_;
  sample.evictions_total = retired_evictions_;
  sample.harvested_bytes_total = harvested_bytes_;
  sample.lost_lookups_total = lost_lookups_;
  sample.shard_count = live_shards();
  for (size_t slot = 0; slot < shards_.size(); ++slot) {
    if (const MemoShardProclet* shard = LiveShard(slot)) {
      sample.evictions_total += shard->evictions();
      sample.cached_bytes += shard->cached_bytes();
    }
  }
  return sample;
}

}  // namespace quicksand
