// MemoHarvester: the "evict cache before evacuating live state" lever.
//
// A thin multiplexer over the registered MemoDirectories that the
// EmergencyEvacuator and LocalReactor call into when a machine comes under
// pressure. Two intensities:
//
//  * HarvestMachine — revocation path. Drops every cache shard on the
//    machine outright: zero wire cost, frees heap immediately, and removes
//    the shards from the evacuator's migration list so the whole deadline
//    budget goes to live state.
//  * ReleaseBytes — memory-watermark path. LRU-evicts just enough entries
//    to get back under the reactor's low target, preferring to shrink the
//    cache over migrating a memory proclet off the machine.

#ifndef QUICKSAND_MEMO_MEMO_HARVESTER_H_
#define QUICKSAND_MEMO_MEMO_HARVESTER_H_

#include <cstdint>
#include <vector>

#include "quicksand/memo/memo_directory.h"

namespace quicksand {

class MemoHarvester {
 public:
  explicit MemoHarvester(Runtime& rt) : rt_(rt) {}

  // Directories are not owned and must outlive the harvester.
  void Register(MemoDirectory* directory) { directories_.push_back(directory); }

  // Drops all cache shards on `machine`. Returns cache bytes freed.
  Task<int64_t> HarvestMachine(MachineId machine);

  // Evicts cache entries on `machine` until `target_bytes` are freed (or
  // the cache there is empty). Returns bytes freed.
  Task<int64_t> ReleaseBytes(MachineId machine, int64_t target_bytes);

  int64_t harvests() const { return harvests_; }
  int64_t harvested_bytes() const { return harvested_bytes_; }

 private:
  Runtime& rt_;
  std::vector<MemoDirectory*> directories_;
  int64_t harvests_ = 0;
  int64_t harvested_bytes_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_MEMO_MEMO_HARVESTER_H_
