#include "quicksand/serving/workload.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace quicksand {

double OpenLoopLoadGen::RateAt(SimTime t) const {
  double rate = options_.base_qps;
  if (options_.diurnal_amplitude > 0.0) {
    const double phase = 2.0 * 3.14159265358979323846 *
                         (static_cast<double>(t.nanos()) /
                          static_cast<double>(options_.diurnal_period.nanos()));
    rate *= 1.0 + options_.diurnal_amplitude * std::sin(phase);
  }
  if (t >= options_.flash_start && t < options_.flash_end) {
    rate *= options_.flash_multiplier;
  }
  return std::max(rate, 0.0);
}

Task<> OpenLoopLoadGen::Run() {
  const SimTime start = sim_.Now();
  const SimTime end = start + options_.duration;
  // Thinning peak: the tightest constant envelope over the composed profile.
  const double peak = options_.base_qps *
                      (1.0 + options_.diurnal_amplitude) *
                      std::max(options_.flash_multiplier, 1.0);
  QS_CHECK(peak > 0.0);
  const double mean_gap_ns = 1e9 / peak;
  for (;;) {
    const double gap = rng_.NextExponential(mean_gap_ns);
    const SimTime next =
        sim_.Now() + Duration::Nanos(std::max<int64_t>(
                         1, static_cast<int64_t>(std::llround(gap))));
    if (next >= end) {
      co_return;
    }
    co_await sim_.SleepUntil(next);
    // Thinning: accept this arrival with probability rate(now)/peak.
    if (rng_.NextDouble() >= RateAt(sim_.Now()) / peak) {
      continue;
    }
    uint64_t key = options_.zipf_s > 0.0
                       ? rng_.NextZipf(options_.keys, options_.zipf_s)
                       : rng_.NextBounded(options_.keys);
    // Flash crowds are not just more traffic — they concentrate on a viral
    // key set. Redirect a fraction of in-window arrivals to that set. All
    // draws are gated on the window so the pre-flash prefix is unchanged.
    const SimTime now = sim_.Now();
    if (options_.flash_key_fraction > 0.0 && now >= options_.flash_start &&
        now < options_.flash_end &&
        options_.flash_key_end > options_.flash_key_begin &&
        rng_.NextBool(options_.flash_key_fraction)) {
      key = options_.flash_key_begin +
            rng_.NextBounded(options_.flash_key_end - options_.flash_key_begin);
    }
    const bool is_read = rng_.NextBool(options_.read_fraction);
    ++arrivals_;
    // Open loop: the request runs on its own fiber; we never wait for it.
    sim_.Spawn(frontend_.Serve(key, is_read),
               "serve_" + std::to_string(arrivals_));
  }
}

}  // namespace quicksand
