// KvFrontend: a request-serving tier over FencedKvProclet shards, built to
// study overload. Each request gets an end-to-end deadline (the SLO), which
// rides the TraceContext so every hop — RPC admission, proclet invocation —
// can refuse work that cannot finish in time. The frontend composes all
// four overload-control levers, each independently toggleable so the ab9
// bench can show what each buys:
//
//  * deadline propagation — requests are stamped with arrival + SLO; hops
//    reject dead-on-arrival work at admission (DeadlineExpiredError),
//  * admission control — attached to the Runtime by the harness; shards
//    shed when their host's run queue stands (InvocationSheddedError),
//  * retry budget — retries of shed/unreachable attempts spend tokens
//    funded by first attempts, bounding retry amplification,
//  * degraded reads — a shed read falls back to the replication backup
//    within a bounded staleness, trading freshness for availability.
//
// Sharding is by HASH RANGE: each shard owns [begin, end) of the
// KvShardHash space, and a request routes by binary search over the range
// table. Ranges (unlike the modulo routing this replaced) are splittable,
// which is what lets the autoscale subsystem absorb a flash crowd by
// reshaping instead of shedding: KvFrontend implements ReshapableShardSet,
// so the autoscaler can split a hot shard onto an idle machine, merge cold
// neighbors, or migrate a shard wholesale (bench/ab10). The range table is
// updated synchronously inside each reshape (while the affected gates are
// closed), so a racing request sees at worst one wrong_shard bounce and
// re-routes — never a lost or double-applied write (the reshape property
// test's subject).
//
// Writes are stamped (epoch, request-id) against the shard's FenceGuard:
// the request id is stable across retries, so at-least-once retries stay
// effectively exactly-once, and a shed or deadline-rejected attempt never
// commits (the overload property test's subject). Splits hand the new
// shard a full copy of the donor's dedup state, so the guarantee survives
// reshaping.
//
// Accounting is windowed: goodput and latency quantiles cover a sliding
// window of sim time (WindowedHistogram), so a current overload is visible
// instead of averaged away by a long calm history. Per-shard arrival and
// shed counters feed the autoscaler's hotness signal.
//
// Reshapes are CRASH-SAFE: an extracted payload is never destroyed until it
// is installed somewhere. If the destination of a split/merge copy dies
// mid-flight (or the copy never arrives), the payload rolls back into the
// shard it came from and the orphan half is fence-aborted (destroyed, never
// routed to). Only when the SOURCE of the bytes dies mid-reshape is the
// payload discarded — the data was resident on the dead machine and died
// with it, exactly as if no reshape had been running (the chaos engine's
// residency ledger treats precisely that case as excused loss).
// RepairLostShards is the matching self-healing path: routing entries whose
// shard died and was not restored within a grace period are replaced with
// fresh empty shards on live machines, so the table always routes
// somewhere. unsafe_reshape_for_test restores the pre-hardening blind
// install (writes into a crashed shard's limbo corpse "succeed" and
// vanish) so the chaos oracles can demonstrate they catch the bug.

#ifndef QUICKSAND_SERVING_KV_FRONTEND_H_
#define QUICKSAND_SERVING_KV_FRONTEND_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "quicksand/autoscale/shard_set.h"
#include "quicksand/cluster/metrics.h"
#include "quicksand/common/stats.h"
#include "quicksand/durability/replication.h"
#include "quicksand/memo/memo_directory.h"
#include "quicksand/overload/retry_budget.h"
#include "quicksand/proclet/fenced_kv_proclet.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

struct KvFrontendOptions {
  // Initial shard count; the autoscaler may grow or shrink it at runtime.
  int shards = 4;
  // Per-shard heap reservation at creation.
  int64_t shard_heap_bytes = 4 << 20;
  // End-to-end SLO; also the propagated deadline when stamping is on.
  Duration slo = Duration::Millis(2);
  // CPU charged at the shard's host per request (the "work").
  Duration service_time = Duration::Micros(50);
  int64_t request_bytes = 128;
  // Machine the frontend itself runs on (shards are placed elsewhere).
  MachineId home = 0;
  // --- Control toggles (the ab9 bench flips these) --------------------------
  bool deadline_propagation = true;
  bool retry_budget = true;
  // Serve shed reads from the replication backup when one is attached and
  // its staleness bound is within max_staleness.
  bool degraded_reads = false;
  Duration max_staleness = Duration::Millis(10);
  // Memoized reads (requires AttachMemo). Fresh memo hits are always
  // served; STALE hits (bounded by memo_staleness) are served only while
  // the shard's host is under admission pressure or the windowed p99 is
  // outside the SLO — approximation is a degraded mode, not the default.
  // memo_staleness == Zero disables stale serving entirely.
  bool memo_reads = false;
  Duration memo_staleness = Duration::Millis(10);
  // Heap footprint charged per cached entry (models the response object,
  // not just the 8-byte value).
  int64_t memo_entry_bytes = 128;
  // --- Retry schedule -------------------------------------------------------
  int max_attempts = 3;
  Duration retry_backoff = Duration::Micros(100);
  Duration max_retry_backoff = Duration::Millis(5);
  RetryBudgetOptions budget{};
  // Sliding window for goodput/quantile accounting.
  Duration stats_window = Duration::Millis(200);
  // --- Crash safety ---------------------------------------------------------
  // How long RepairLostShards leaves a lost routing entry alone before
  // replacing it with a fresh empty shard: recovery (backup promotion /
  // checkpoint restore) rebinds the SAME proclet id, and replacing too
  // eagerly would orphan a restore already in flight.
  Duration repair_grace = Duration::Millis(2);
  // TEST ONLY: restore the pre-hardening reshape paths, which install
  // extracted payloads without checking whether the destination survived
  // the copy — the crash-mid-reshape data-loss bug the chaos engine exists
  // to catch (bench/ab11_chaos --smoke reintroduces it, finds it with the
  // residency oracle, and shrinks the failing schedule).
  bool unsafe_reshape_for_test = false;
};

class KvFrontend : public ServingStatsSource, public ReshapableShardSet {
 public:
  KvFrontend(Runtime& rt, KvFrontendOptions options);

  KvFrontend(const KvFrontend&) = delete;
  KvFrontend& operator=(const KvFrontend&) = delete;

  // Optional, before Start(): enables degraded reads (with
  // options.degraded_reads) and replicates each shard at startup. Replicated
  // shards are durable and therefore pinned — reshape verbs refuse them.
  void AttachReplication(ReplicationManager* replication) {
    replication_ = replication;
  }

  // Optional, before Start(): enables memoized reads (with
  // options.memo_reads). The directory must be Start()ed by the harness;
  // the frontend only reads and inserts. Writes bump a per-key version
  // salt (at attempt start and completion) so entries cached under older
  // salts stop being fresh — see memo_key.h for the freshness protocol.
  void AttachMemo(MemoDirectory* memo) { memo_ = memo; }

  // Creates the initial shards with equal hash ranges (round-robin over
  // machines other than `home` when the cluster has more than one) and,
  // with replication attached, establishes their backups.
  Task<Status> Start(Ctx ctx);

  // Serves one request end to end: route by hash, resolve epoch, invoke the
  // shard with the deadline-stamped context, retry through the budget, fall
  // back to a stale backup read when degraded. A wrong_shard bounce (the
  // request raced a reshape) re-routes through the updated table without
  // spending a retry token. Never throws; failures are accounted.
  Task<> Serve(uint64_t key, bool is_read);

  // Serve, but reporting whether the request was acked (served in or out of
  // SLO) or failed — the hook chaos/test harnesses use to keep an acked-write
  // ledger. Serve() is this with the outcome dropped.
  Task<bool> ServeDetailed(uint64_t key, bool is_read);

  // --- Crash repair ---------------------------------------------------------

  // Replaces routing entries whose shard was lost to a machine failure and
  // not restored within options.repair_grace: each gets a fresh EMPTY shard
  // covering the same range on a live machine. The lost range's data died
  // with its host (or was already recovered under the same id by the
  // durability layer, in which case the entry is live again and skipped);
  // repair restores AVAILABILITY of the range. Returns entries repaired.
  // Harnesses call this periodically; it is safe to call any time.
  Task<int> RepairLostShards(Ctx ctx);

  // True when every routing entry resolves to a live (non-lost) shard.
  bool TableFullyLive() const;

  // ServingStatsSource.
  ServingSample SampleServing(SimTime now) const override;

  // --- ReshapableShardSet ---------------------------------------------------

  std::vector<ShardServingSample> SampleShards(SimTime now) const override;
  Result<uint64_t> SuggestSplitPoint(ProcletId shard) const override;
  Task<Status> SplitShard(Ctx ctx, ProcletId shard, uint64_t split_point,
                          MachineId target) override;
  Task<Status> MergeShards(Ctx ctx, ProcletId left, ProcletId right) override;
  Task<Status> MigrateShard(Ctx ctx, ProcletId shard,
                            MachineId target) override;
  MachineId home() const override { return options_.home; }

  // --- Introspection --------------------------------------------------------

  int64_t offered() const { return offered_; }
  int64_t ok_in_slo() const { return ok_in_slo_; }
  int64_t ok_late() const { return ok_late_; }
  int64_t failed() const { return failed_; }
  int64_t sheds_seen() const { return sheds_seen_; }
  int64_t deadline_rejections_seen() const { return deadline_rejections_seen_; }
  int64_t stale_fallbacks() const { return stale_fallbacks_; }
  // Requests answered from the memo cache without touching a shard.
  int64_t memo_serves() const { return memo_serves_; }
  // The subset of memo_serves that were bounded-staleness (degraded) hits.
  int64_t memo_stale_serves() const { return memo_stale_serves_; }
  int64_t retries() const { return retries_; }
  // Requests that bounced off a shard mid-reshape and re-routed.
  int64_t moved_reroutes() const { return moved_reroutes_; }
  // Reshape payloads returned to their source after a failed install leg
  // (destination crashed mid-copy, copy never arrived, or out of memory).
  int64_t reshape_rollbacks() const { return reshape_rollbacks_; }
  // Reshape payloads discarded because their SOURCE crashed mid-reshape:
  // the bytes were resident on the dead machine and died with it.
  int64_t reshape_payload_discards() const { return reshape_payload_discards_; }
  // Lost routing entries replaced with fresh shards by RepairLostShards.
  int64_t repairs() const { return repairs_; }
  const RetryBudget& budget() const { return budget_; }
  const WindowedHistogram& latency() const { return latency_; }
  const std::vector<Ref<FencedKvProclet>>& shards() const { return shards_; }
  const KvFrontendOptions& options() const { return options_; }

 private:
  // One routing-table row: the shard owning hash range [begin, end).
  struct ShardEntry {
    uint64_t begin = 0;
    uint64_t end = 0;
    Ref<FencedKvProclet> ref;
  };
  // Per-shard hotness accounting, keyed by shard proclet id.
  struct ShardStats {
    int64_t arrivals = 0;  // attempts routed here (includes re-routes)
    int64_t sheds = 0;     // shed outcomes observed here
    std::vector<uint64_t> recent;  // ring of recently routed hashes
    size_t recent_next = 0;
  };
  static constexpr size_t kRecentHashes = 64;

  // One attempt against the shard; classifies the outcome. On a served
  // read, `read_result` (when non-null) receives the shard's answer —
  // including NotFound: a "no such key" answer is memoized too (negative
  // caching), or reads of never-written keys would miss forever.
  enum class Attempt { kOk, kShed, kDeadline, kRetryable, kMoved, kFatal };
  Task<Attempt> TryOnce(Ctx ctx, Ref<FencedKvProclet> shard, uint64_t rid,
                        uint64_t key, bool is_read,
                        std::optional<Result<int64_t>>* read_result = nullptr);
  // Degraded fallback; true when the stale read answered.
  Task<bool> TryStaleRead(Ctx ctx, Ref<FencedKvProclet> shard, uint64_t key);
  void RecordSuccess(SimTime arrival);

  // --- Memoization ----------------------------------------------------------

  // Content-addressed key for Get(key) under the key's current version salt.
  MemoKey MemoKeyFor(uint64_t key) const;
  uint64_t VersionOf(uint64_t key) const;
  void BumpVersion(uint64_t key) { ++key_version_[key]; }
  // Degraded-mode gate for stale memo serving: admission pressure on the
  // shard's host, or the windowed p99 outside the SLO (cached for 1ms —
  // Merged() walks every bucket and this runs per read).
  bool UnderPressure(MachineId shard_host);

  // Installs a reshape payload back into the shard it was extracted from
  // (AbsorbRightNeighbor when `adjacent`, AdoptPayload otherwise), retrying
  // memory pressure but giving up the moment the shard is lost: its host
  // crashed, so the payload's bytes died where they lived. Never leaves the
  // payload half-installed.
  Task<Status> RestorePayload(FencedKvProclet* shard, bool adjacent,
                              FencedKvProclet::SplitPayload&& payload);
  // Ships `bytes` source -> destination with bounded retries; true when a
  // full copy arrived while both endpoints were still up.
  Task<bool> CopyPayload(MachineId src, MachineId dst, int64_t bytes);

  // Routing-table row covering `hash` (the table always covers the space).
  const ShardEntry& Route(uint64_t hash) const;
  // Index into table_ of the row for `shard`, or npos.
  size_t EntryIndexOf(ProcletId shard) const;
  // Keeps shards_ (the flat introspection view) in step with table_.
  void RebuildShardRefs();
  void NoteRouted(ProcletId shard, uint64_t hash);

  Runtime& rt_;
  KvFrontendOptions options_;
  ReplicationManager* replication_ = nullptr;
  MemoDirectory* memo_ = nullptr;
  std::vector<ShardEntry> table_;  // sorted by begin; covers the hash space
  std::vector<Ref<FencedKvProclet>> shards_;  // flat view of table_
  std::unordered_map<ProcletId, ShardStats> shard_stats_;
  RetryBudget budget_;
  uint64_t next_rid_ = 1;

  WindowedHistogram latency_;   // completed requests, any outcome time
  WindowedHistogram arrivals_;  // arrival markers (windowed offered count)
  WindowedHistogram goodput_;   // completions within SLO
  int64_t offered_ = 0;
  int64_t ok_in_slo_ = 0;
  int64_t ok_late_ = 0;
  int64_t failed_ = 0;
  int64_t sheds_seen_ = 0;
  int64_t deadline_rejections_seen_ = 0;
  int64_t stale_fallbacks_ = 0;
  int64_t memo_serves_ = 0;
  int64_t memo_stale_serves_ = 0;
  int64_t retries_ = 0;
  int64_t moved_reroutes_ = 0;
  int64_t reshape_rollbacks_ = 0;
  int64_t reshape_payload_discards_ = 0;
  int64_t repairs_ = 0;
  // First time RepairLostShards saw each routing entry's shard lost; the
  // grace clock for replacing it.
  std::unordered_map<ProcletId, SimTime> lost_seen_;
  // Per-key memo version salt; bumped around writes (see AttachMemo).
  std::unordered_map<uint64_t, uint64_t> key_version_;
  // UnderPressure's cached SLO verdict (recomputed at most every 1ms).
  SimTime slo_checked_ = SimTime::Zero();
  bool slo_violated_ = false;
};

}  // namespace quicksand

#endif  // QUICKSAND_SERVING_KV_FRONTEND_H_
