#include "quicksand/serving/kv_frontend.h"

#include <algorithm>
#include <utility>

#include "quicksand/adapt/shard_maintenance.h"
#include "quicksand/overload/admission.h"

namespace quicksand {

namespace {

// Function id for memoized Get(key) results (see memo_key.h); any constant
// works as long as no other memoized function in the process shares it.
constexpr uint64_t kMemoFnKvGet = 0x6b76'6765'74ull;  // "kvget"

}  // namespace

KvFrontend::KvFrontend(Runtime& rt, KvFrontendOptions options)
    : rt_(rt),
      options_(options),
      budget_(options.budget),
      latency_(options.stats_window),
      arrivals_(options.stats_window),
      goodput_(options.stats_window) {
  QS_CHECK(options_.shards >= 1);
  QS_CHECK(options_.max_attempts >= 1);
}

Task<Status> KvFrontend::Start(Ctx ctx) {
  // Shards live off the frontend's machine when the cluster allows it, so
  // serving work and request generation do not contend for the same cores.
  std::vector<MachineId> hosts;
  for (MachineId m = 0; m < rt_.cluster().size(); ++m) {
    if (m != options_.home && !rt_.cluster().machine(m).failed()) {
      hosts.push_back(m);
    }
  }
  // Equal slices of the hash space; KvShardHash spreads keys uniformly, so
  // equal hash width is equal expected load at uniform key popularity.
  const uint64_t width = UINT64_MAX / static_cast<uint64_t>(options_.shards);
  for (int i = 0; i < options_.shards; ++i) {
    const uint64_t begin = width * static_cast<uint64_t>(i);
    const uint64_t end = (i + 1 == options_.shards)
                             ? UINT64_MAX
                             : width * static_cast<uint64_t>(i + 1);
    PlacementRequest req;
    req.heap_bytes = options_.shard_heap_bytes;
    if (!hosts.empty()) {
      req.pinned = hosts[static_cast<size_t>(i) % hosts.size()];
    }
    auto create = rt_.Create<FencedKvProclet>(ctx, req, begin, end);
    Result<Ref<FencedKvProclet>> shard = co_await std::move(create);
    if (!shard.ok()) {
      co_return shard.status();
    }
    table_.push_back(ShardEntry{begin, end, *shard});
    if (replication_ != nullptr) {
      auto replicate =
          replication_->ReplicateAs<FencedKvProclet>(ctx, shard->id());
      const Status replicated = co_await std::move(replicate);
      if (!replicated.ok()) {
        co_return replicated;
      }
    }
  }
  RebuildShardRefs();
  co_return Status::Ok();
}

const KvFrontend::ShardEntry& KvFrontend::Route(uint64_t hash) const {
  QS_CHECK(!table_.empty());
  // Last row whose begin <= hash; the table is sorted and covers the space.
  auto it = std::upper_bound(
      table_.begin(), table_.end(), hash,
      [](uint64_t h, const ShardEntry& e) { return h < e.begin; });
  QS_CHECK(it != table_.begin());
  return *(it - 1);
}

size_t KvFrontend::EntryIndexOf(ProcletId shard) const {
  for (size_t i = 0; i < table_.size(); ++i) {
    if (table_[i].ref.id() == shard) {
      return i;
    }
  }
  return table_.size();
}

void KvFrontend::RebuildShardRefs() {
  shards_.clear();
  shards_.reserve(table_.size());
  for (const ShardEntry& e : table_) {
    shards_.push_back(e.ref);
  }
}

void KvFrontend::NoteRouted(ProcletId shard, uint64_t hash) {
  ShardStats& s = shard_stats_[shard];
  ++s.arrivals;
  if (s.recent.size() < kRecentHashes) {
    s.recent.push_back(hash);
  } else {
    s.recent[s.recent_next] = hash;
    s.recent_next = (s.recent_next + 1) % kRecentHashes;
  }
}

Task<KvFrontend::Attempt> KvFrontend::TryOnce(Ctx ctx,
                                              Ref<FencedKvProclet> shard,
                                              uint64_t rid, uint64_t key,
                                              bool is_read,
                                              std::optional<Result<int64_t>>* read_result) {
  // Epoch is re-resolved per attempt (the stamp must be current); the rid is
  // stable across attempts, so a retry of an acked-but-unacknowledged write
  // dedups at the shard — wherever a reshape has since moved the key.
  const uint64_t epoch = rt_.EpochOf(shard.id());
  if (epoch == 0) {
    co_return Attempt::kRetryable;  // mid-rebind; resolve again after backoff
  }
  Runtime& rt = rt_;
  const Duration svc = options_.service_time;
  Attempt outcome = Attempt::kFatal;
  try {
    if (is_read) {
      auto call = shard.Call(
          ctx,
          [&rt, svc, key](FencedKvProclet& p) -> Task<Result<int64_t>> {
            co_await rt.cluster().machine(p.location()).cpu().Run(
                svc, kPriorityNormal);
            co_return p.Get(key);
          },
          options_.request_bytes);
      const Result<int64_t> got = co_await std::move(call);
      // NotFound (cold key) is still a served request; OutOfRange means the
      // key's range left this shard mid-flight (raced a reshape): re-route.
      if (!got.ok() && got.status().code() == StatusCode::kOutOfRange) {
        outcome = Attempt::kMoved;
      } else {
        outcome = Attempt::kOk;
        if (read_result != nullptr) {
          *read_result = got;  // ok or NotFound — both are cacheable answers
        }
      }
    } else {
      const int64_t value = static_cast<int64_t>(key) * 31 + 7;
      auto call = shard.Call(
          ctx,
          [&rt, svc, epoch, rid, key,
           value](FencedKvProclet& p) -> Task<FencedKvProclet::PutResult> {
            co_await rt.cluster().machine(p.location()).cpu().Run(
                svc, kPriorityNormal);
            co_return p.Put(epoch, rid, key, value);
          },
          options_.request_bytes);
      const FencedKvProclet::PutResult put = co_await std::move(call);
      if (put.applied || put.duplicate) {
        outcome = Attempt::kOk;
      } else if (put.wrong_shard) {
        outcome = Attempt::kMoved;  // raced a reshape; the rid is NOT burned
      } else if (put.fenced) {
        outcome = Attempt::kRetryable;  // epoch moved between resolve and run
      } else {
        outcome = Attempt::kFatal;  // shard out of memory; the rid is burned
      }
    }
  } catch (const InvocationSheddedError&) {
    outcome = Attempt::kShed;
  } catch (const DeadlineExpiredError&) {
    outcome = Attempt::kDeadline;
  } catch (const ProcletUnreachableError&) {
    outcome = Attempt::kRetryable;
  } catch (const ProcletLostError&) {
    outcome = Attempt::kRetryable;  // recovery may restore it
  } catch (const ProcletGoneError&) {
    outcome = Attempt::kMoved;  // merged away; the table has the survivor
  }
  co_return outcome;
}

Task<bool> KvFrontend::TryStaleRead(Ctx ctx, Ref<FencedKvProclet> shard,
                                    uint64_t key) {
  auto stale = replication_->ReadStale<FencedKvProclet>(
      ctx, shard.id(), options_.max_staleness,
      [key](const FencedKvProclet& p) { return p.Get(key); });
  const Result<Result<int64_t>> got = co_await std::move(stale);
  // Inner NotFound is a served answer (the key is cold on the primary too,
  // up to staleness); only transport/staleness failures count as misses.
  co_return got.ok();
}

MemoKey KvFrontend::MemoKeyFor(uint64_t key) const {
  return MemoKeyBuilder().Fn(kMemoFnKvGet).U64(key).Build(VersionOf(key));
}

uint64_t KvFrontend::VersionOf(uint64_t key) const {
  auto it = key_version_.find(key);
  return it == key_version_.end() ? 0 : it->second;
}

bool KvFrontend::UnderPressure(MachineId shard_host) {
  if (AdmissionController* admission = rt_.admission();
      admission != nullptr && admission->Overloaded(shard_host)) {
    return true;
  }
  const SimTime now = rt_.sim().Now();
  if (now - slo_checked_ >= Duration::Millis(1)) {
    slo_checked_ = now;
    const LatencyHistogram merged = latency_.Merged(now);
    slo_violated_ = merged.count() >= 32 && merged.Percentile(99) > options_.slo;
  }
  return slo_violated_;
}

void KvFrontend::RecordSuccess(SimTime arrival) {
  const SimTime now = rt_.sim().Now();
  const Duration elapsed = now - arrival;
  latency_.Add(now, elapsed);
  if (elapsed <= options_.slo) {
    ++ok_in_slo_;
    goodput_.Add(now, elapsed);
  } else {
    ++ok_late_;
  }
}

Task<> KvFrontend::Serve(uint64_t key, bool is_read) {
  auto detailed = ServeDetailed(key, is_read);
  (void)co_await std::move(detailed);
}

Task<bool> KvFrontend::ServeDetailed(uint64_t key, bool is_read) {
  const SimTime arrival = rt_.sim().Now();
  ++offered_;
  arrivals_.Add(arrival, Duration::Nanos(1));
  Ctx ctx = rt_.CtxOn(options_.home);
  if (options_.deadline_propagation) {
    ctx.trace = ctx.trace.WithDeadline(arrival + options_.slo);
  }
  const uint64_t rid = next_rid_++;
  const uint64_t hash = KvShardHash(key);
  const bool memo_active = memo_ != nullptr && options_.memo_reads && is_read;
  if (!is_read && memo_ != nullptr) {
    // A write is now in flight: entries cached under older salts must stop
    // being fresh before the write can apply anywhere.
    BumpVersion(key);
  }
  if (memo_active) {
    // Fresh hits serve unconditionally (that is the cache working); stale
    // hits serve only in degraded mode — under pressure, an approximate
    // answer beats queueing behind a saturated shard or being shed.
    const Duration staleness =
        UnderPressure(rt_.LocationOf(Route(hash).ref.id()))
            ? options_.memo_staleness
            : Duration::Zero();
    auto look = memo_->Lookup(ctx, MemoKeyFor(key), staleness);
    const MemoLookup hit = co_await std::move(look);
    if (hit.outcome == MemoOutcome::kFreshHit) {
      ++memo_serves_;
      RecordSuccess(arrival);
      co_return true;
    }
    if (hit.outcome == MemoOutcome::kStaleHit) {
      memo_->NoteStaleServe(MemoKeyFor(key));
      ++memo_serves_;
      ++memo_stale_serves_;
      RecordSuccess(arrival);
      co_return true;
    }
  }
  if (options_.retry_budget) {
    budget_.OnAttempt();  // first attempts fund the bucket
  }
  Duration backoff = options_.retry_backoff;
  int moved = 0;
  for (int attempt = 0;; ++attempt) {
    // Route per attempt: a reshape may have changed the key's owner since
    // the last try (or while this attempt waited at a closed gate).
    const Ref<FencedKvProclet> shard = Route(hash).ref;
    NoteRouted(shard.id(), hash);
    std::optional<Result<int64_t>> read_result;
    // Salt captured BEFORE the attempt: any write completing while our read
    // is in flight bumps past this, so the inserted entry can never be
    // fresh under a salt newer than the value it holds.
    const MemoKey attempt_key = memo_active ? MemoKeyFor(key) : MemoKey{};
    auto once = TryOnce(ctx, shard, rid, key, is_read,
                        memo_active ? &read_result : nullptr);
    const Attempt outcome = co_await std::move(once);
    if (!is_read && memo_ != nullptr) {
      // The attempt may have applied at the shard whatever its reported
      // outcome (an ack can be lost after the apply), so nothing cached
      // before this point may ever be served as fresh again. Together with
      // the in-flight bump above this closes the window where a concurrent
      // read caches a pre-apply value under the newest salt.
      BumpVersion(key);
    }
    if (outcome == Attempt::kOk) {
      RecordSuccess(arrival);
      if (memo_active && read_result.has_value()) {
        auto insert = memo_->Insert(ctx, attempt_key, std::any(*read_result),
                                    options_.memo_entry_bytes);
        (void)co_await std::move(insert);
      }
      co_return true;
    }
    if (outcome == Attempt::kMoved) {
      // Not overload: the request raced a reshape. Re-route through the
      // already-updated table without spending a retry token or backing
      // off. The cap breaks loops if routing and ownership ever disagreed.
      ++moved_reroutes_;
      if (++moved > 8) {
        ++failed_;
        co_return false;
      }
      --attempt;
      continue;
    }
    if (outcome == Attempt::kShed) {
      ++sheds_seen_;
      auto stats = shard_stats_.find(shard.id());
      if (stats != shard_stats_.end()) {
        ++stats->second.sheds;
      }
      if (is_read && options_.degraded_reads && replication_ != nullptr) {
        auto fallback = TryStaleRead(ctx, shard, key);
        if (co_await std::move(fallback)) {
          ++stale_fallbacks_;
          RecordSuccess(arrival);
          co_return true;
        }
      }
      if (is_read && memo_ != nullptr && options_.memo_reads &&
          options_.memo_staleness > Duration::Zero()) {
        // A shed IS the pressure signal — allow bounded staleness here even
        // if the pre-attempt lookup ran in fresh-only mode.
        auto look = memo_->Lookup(ctx, MemoKeyFor(key), options_.memo_staleness);
        const MemoLookup hit = co_await std::move(look);
        if (hit.outcome != MemoOutcome::kMiss) {
          if (hit.outcome == MemoOutcome::kStaleHit) {
            memo_->NoteStaleServe(MemoKeyFor(key));
            ++memo_stale_serves_;
          }
          ++memo_serves_;
          RecordSuccess(arrival);
          co_return true;
        }
      }
      // No (or failed) fallback: fall through to the retry gate.
    } else if (outcome == Attempt::kDeadline) {
      // The server already told us the deadline passed; a retry would only
      // arrive deader.
      ++deadline_rejections_seen_;
      ++failed_;
      co_return false;
    } else if (outcome == Attempt::kFatal) {
      ++failed_;
      co_return false;
    }
    if (attempt + 1 >= options_.max_attempts) {
      ++failed_;
      co_return false;
    }
    if (options_.deadline_propagation &&
        rt_.sim().Now() > arrival + options_.slo) {
      ++failed_;  // client-side give-up: nothing sent now can make the SLO
      co_return false;
    }
    if (options_.retry_budget && !budget_.TryAcquireRetry()) {
      ++failed_;
      co_return false;
    }
    ++retries_;
    co_await rt_.sim().Sleep(backoff);
    backoff = std::min(backoff * 2, options_.max_retry_backoff);
  }
}

ServingSample KvFrontend::SampleServing(SimTime now) const {
  ServingSample s;
  const double window_s =
      static_cast<double>(latency_.window().nanos()) / 1e9;
  s.offered_qps = static_cast<double>(arrivals_.Count(now)) / window_s;
  s.goodput_qps = static_cast<double>(goodput_.Count(now)) / window_s;
  const LatencyHistogram merged = latency_.Merged(now);
  if (merged.count() > 0) {
    s.p50 = merged.Percentile(50);
    s.p99 = merged.Percentile(99);
  }
  s.shed_total = sheds_seen_;
  s.deadline_expired_total = deadline_rejections_seen_;
  s.stale_serves_total = stale_fallbacks_;
  s.shards = SampleShards(now);
  return s;
}

// --- ReshapableShardSet -------------------------------------------------------

std::vector<ShardServingSample> KvFrontend::SampleShards(SimTime) const {
  std::vector<ShardServingSample> out;
  out.reserve(table_.size());
  for (const ShardEntry& e : table_) {
    ShardServingSample s;
    s.proclet = e.ref.id();
    s.machine = rt_.LocationOf(e.ref.id());
    s.range_begin = e.begin;
    s.range_end = e.end;
    auto it = shard_stats_.find(e.ref.id());
    if (it != shard_stats_.end()) {
      s.arrivals_total = it->second.arrivals;
      s.sheds_total = it->second.sheds;
    }
    const auto* p = rt_.UnsafeGet<FencedKvProclet>(e.ref.id());
    s.bytes = p != nullptr ? p->data_bytes() : 0;
    out.push_back(s);
  }
  return out;
}

Result<uint64_t> KvFrontend::SuggestSplitPoint(ProcletId shard) const {
  const size_t idx = EntryIndexOf(shard);
  if (idx == table_.size()) {
    return Status::NotFound("no such shard");
  }
  const ShardEntry& e = table_[idx];
  if (e.end - e.begin < 2) {
    return Status::FailedPrecondition("range too narrow to split");
  }
  // Median of the recently routed hashes balances LOAD, not key count: the
  // half-ring above the median (hot keys included) moves to the new shard.
  auto it = shard_stats_.find(shard);
  if (it != shard_stats_.end()) {
    std::vector<uint64_t> hashes;
    hashes.reserve(it->second.recent.size());
    for (uint64_t h : it->second.recent) {
      if (h >= e.begin && h < e.end) {
        hashes.push_back(h);
      }
    }
    if (hashes.size() >= 8) {
      std::sort(hashes.begin(), hashes.end());
      const uint64_t median = hashes[hashes.size() / 2];
      if (median > e.begin && median < e.end) {
        return median;
      }
    }
  }
  return e.begin + (e.end - e.begin) / 2;
}

Task<Status> KvFrontend::SplitShard(Ctx ctx, ProcletId shard,
                                    uint64_t split_point, MachineId target) {
  if (EntryIndexOf(shard) == table_.size()) {
    co_return Status::NotFound("no such shard");
  }
  if (target == options_.home || target >= rt_.cluster().size()) {
    co_return Status::InvalidArgument("bad reshape target");
  }
  if (rt_.cluster().machine(target).failed()) {
    co_return Status::Unavailable("target machine has failed");
  }
  {
    const ShardEntry& e = table_[EntryIndexOf(shard)];
    if (split_point <= e.begin || split_point >= e.end) {
      co_return Status::InvalidArgument("split point outside the range");
    }
  }
  Status gate = co_await rt_.BeginMaintenance(shard);
  if (!gate.ok()) {
    co_return gate;
  }
  MaintenanceGuard donor_guard(rt_, shard);
  auto* donor = rt_.UnsafeGet<FencedKvProclet>(shard);
  QS_CHECK(donor != nullptr);
  // Durable shards are pinned: reshape mutates them via UnsafeGet, bypassing
  // the mutation log, and a pre-split checkpoint restored after a split
  // would resurrect an overlapping range (same rule as shard maintenance).
  if (donor->durable()) {
    co_return Status::FailedPrecondition("durable shards are pinned");
  }
  const MachineId donor_machine = donor->location();
  const uint64_t old_end = donor->hash_end();
  FencedKvProclet::SplitPayload payload =
      donor->ExtractUpperRange(split_point);
  // From here on the payload OWNS the upper half: every exit below must
  // install it somewhere (the fresh shard, or back into the donor) or
  // account its loss to the crash of the machine it was resident on.
  PlacementRequest req;
  req.heap_bytes = options_.shard_heap_bytes;
  req.pinned = target;
  auto create = rt_.Create<FencedKvProclet>(ctx, req, split_point, old_end);
  Result<Ref<FencedKvProclet>> created = co_await std::move(create);
  if (!created.ok()) {
    auto rollback = RestorePayload(donor, /*adjacent=*/true, std::move(payload));
    const Status rolled_back = co_await std::move(rollback);
    if (!rolled_back.ok()) {
      co_return rolled_back;  // donor died mid-split: range lost with its host
    }
    co_return created.status();
  }
  auto begin_new = rt_.BeginMaintenance(created->id());
  const Status new_gate = co_await std::move(begin_new);
  if (!new_gate.ok()) {
    // The fresh shard died (or vanished) before it was ever routed to;
    // nothing references it, so just put the entries back.
    auto rollback = RestorePayload(donor, /*adjacent=*/true, std::move(payload));
    const Status rolled_back = co_await std::move(rollback);
    co_return rolled_back.ok() ? new_gate : rolled_back;
  }
  MaintenanceGuard new_guard(rt_, created->id());
  auto* fresh = rt_.UnsafeGet<FencedKvProclet>(created->id());
  QS_CHECK(fresh != nullptr);

  // Ship the moved entries plus the dedup-state copy.
  const MachineId fresh_machine = fresh->location();
  auto copy = CopyPayload(donor_machine, fresh_machine, payload.total_bytes);
  const bool arrived = co_await std::move(copy);
  if (!options_.unsafe_reshape_for_test && (!arrived || fresh->lost())) {
    // The destination never held a full copy (its machine died mid-copy, or
    // the fabric gave up): fence-abort the orphan half — it was never in
    // the table, so destroying it strands nothing — and roll the entries
    // back into the donor. The historical code skipped this check and
    // installed into the corpse, vaporizing the upper half.
    new_guard.Release();
    auto destroy = rt_.Destroy(ctx, created->id());
    (void)co_await std::move(destroy);
    auto rollback = RestorePayload(donor, /*adjacent=*/true, std::move(payload));
    const Status rolled_back = co_await std::move(rollback);
    if (!rolled_back.ok()) {
      co_return rolled_back;
    }
    co_return Status::Unavailable("split target failed during the copy");
  }
  Status adopted = fresh->AdoptPayload(std::move(payload));
  if (!adopted.ok()) {
    // Destination ran out of memory: put the entries back where they were.
    new_guard.Release();
    auto destroy = rt_.Destroy(ctx, created->id());
    (void)co_await std::move(destroy);
    auto rollback = RestorePayload(donor, /*adjacent=*/true, std::move(payload));
    const Status rolled_back = co_await std::move(rollback);
    co_return rolled_back.ok() ? adopted : rolled_back;
  }

  // Routing flips while both gates are still closed: requests queued at the
  // donor re-route through the updated table on their wrong_shard bounce.
  const size_t donor_idx = EntryIndexOf(shard);
  QS_CHECK(donor_idx != table_.size());
  table_[donor_idx].end = split_point;
  table_.insert(table_.begin() + donor_idx + 1,
                ShardEntry{split_point, old_end, *created});
  RebuildShardRefs();
  // The donor's recent-hash ring spanned both sides of the cut; drop it so
  // its next split point comes from post-split routing only.
  auto stats = shard_stats_.find(shard);
  if (stats != shard_stats_.end()) {
    stats->second.recent.clear();
    stats->second.recent_next = 0;
  }
  co_return Status::Ok();
}

Task<Status> KvFrontend::MergeShards(Ctx ctx, ProcletId left, ProcletId right) {
  const size_t li = EntryIndexOf(left);
  const size_t ri = EntryIndexOf(right);
  if (li == table_.size() || ri == table_.size()) {
    co_return Status::NotFound("no such shard");
  }
  if (ri != li + 1) {
    co_return Status::InvalidArgument("shards are not adjacent");
  }
  Status gate = co_await rt_.BeginMaintenance(left);
  if (!gate.ok()) {
    co_return gate;
  }
  MaintenanceGuard left_guard(rt_, left);
  gate = co_await rt_.BeginMaintenance(right);
  if (!gate.ok()) {
    co_return gate;
  }
  MaintenanceGuard right_guard(rt_, right);

  auto* lp = rt_.UnsafeGet<FencedKvProclet>(left);
  auto* rp = rt_.UnsafeGet<FencedKvProclet>(right);
  QS_CHECK(lp != nullptr && rp != nullptr);
  if (lp->durable() || rp->durable()) {
    co_return Status::FailedPrecondition("durable shards are pinned");
  }
  if (lp->hash_end() != rp->hash_begin()) {
    co_return Status::FailedPrecondition("shards not contiguous");
  }
  const MachineId right_machine = rp->location();
  const MachineId left_machine = lp->location();
  FencedKvProclet::SplitPayload payload = rp->ExtractAll();
  // As in SplitShard: the payload owns the right shard's contents until it
  // is installed at the left or restored to the right.
  auto copy = CopyPayload(right_machine, left_machine, payload.total_bytes);
  const bool arrived = co_await std::move(copy);
  if (!options_.unsafe_reshape_for_test && (!arrived || lp->lost())) {
    // The surviving half never held the copy: restore the right shard
    // exactly as it was (its range collapsed during extraction, so racing
    // requests merely bounced meanwhile). The left shard's own range is
    // untouched — if its machine died, that loss is the crash's, not the
    // merge's, and RepairLostShards covers it.
    auto rollback = RestorePayload(rp, /*adjacent=*/false, std::move(payload));
    const Status rolled_back = co_await std::move(rollback);
    if (!rolled_back.ok()) {
      co_return rolled_back;  // right died too: its data died at home
    }
    co_return Status::Unavailable("merge destination failed during the copy");
  }
  Status absorbed = lp->AbsorbRightNeighbor(std::move(payload));
  if (!absorbed.ok()) {
    // Left's machine ran out of memory: restore the right shard.
    auto rollback = RestorePayload(rp, /*adjacent=*/false, std::move(payload));
    const Status rolled_back = co_await std::move(rollback);
    co_return rolled_back.ok() ? absorbed : rolled_back;
  }

  const size_t li2 = EntryIndexOf(left);
  QS_CHECK(li2 + 1 < table_.size() && table_[li2 + 1].ref.id() == right);
  table_[li2].end = table_[li2 + 1].end;
  table_.erase(table_.begin() + li2 + 1);
  RebuildShardRefs();
  shard_stats_.erase(right);
  right_guard.Release();
  auto destroy = rt_.Destroy(ctx, right);
  (void)co_await std::move(destroy);
  co_return Status::Ok();
}

Task<Status> KvFrontend::MigrateShard(Ctx ctx, ProcletId shard,
                                      MachineId target) {
  (void)ctx;
  if (EntryIndexOf(shard) == table_.size()) {
    co_return Status::NotFound("no such shard");
  }
  if (target == options_.home || target >= rt_.cluster().size()) {
    co_return Status::InvalidArgument("bad reshape target");
  }
  // Fenced move: if the shard rebinds between resolve and execution the
  // migration aborts instead of yanking it from its new incarnation.
  const uint64_t epoch = rt_.EpochOf(shard);
  auto migrate = rt_.Migrate(shard, target, epoch);
  co_return co_await std::move(migrate);
}

// --- Crash safety -------------------------------------------------------------

Task<Status> KvFrontend::RestorePayload(FencedKvProclet* shard, bool adjacent,
                                        FencedKvProclet::SplitPayload&& payload) {
  // Mirrors RetryUnderPressure, but re-checks for loss on every iteration:
  // a lost proclet ACCEPTS heap charges without accounting (so callers'
  // rollback invariants hold), which means a blind retry loop would
  // "succeed" against the limbo corpse and silently drop the payload.
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (shard->lost()) {
      break;
    }
    const Status installed = adjacent
                                 ? shard->AbsorbRightNeighbor(std::move(payload))
                                 : shard->AdoptPayload(std::move(payload));
    if (installed.code() != StatusCode::kResourceExhausted) {
      if (installed.ok()) {
        ++reshape_rollbacks_;
      }
      co_return installed;
    }
    co_await rt_.sim().Sleep(Duration::Millis(1));
  }
  // The rollback target is gone: the extracted range's bytes were resident
  // on its machine and died with it — the same loss a crash with no reshape
  // in flight would have caused. Account it; RepairLostShards restores
  // availability of the range.
  ++reshape_payload_discards_;
  co_return Status::DataLoss(
      "rollback target lost; the extracted range died with its host");
}

Task<bool> KvFrontend::CopyPayload(MachineId src, MachineId dst, int64_t bytes) {
  // A transient fabric fault (loss window, short partition) should not
  // abort a reshape outright, so retry a couple of times — but only while
  // both endpoints are still up: a dead endpoint cannot recover here.
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (rt_.cluster().machine(src).failed() ||
        rt_.cluster().machine(dst).failed()) {
      co_return false;
    }
    auto transfer = rt_.fabric().Transfer(src, dst, bytes);
    if (co_await std::move(transfer)) {
      co_return true;
    }
  }
  co_return false;
}

bool KvFrontend::TableFullyLive() const {
  for (const ShardEntry& e : table_) {
    if (rt_.IsLost(e.ref.id())) {
      return false;
    }
  }
  return true;
}

Task<int> KvFrontend::RepairLostShards(Ctx ctx) {
  int repaired = 0;
  // Snapshot the ids up front: the table may be edited across the awaits
  // below (by this fiber or a racing reshape), so each entry is re-located
  // by id + range before it is touched.
  std::vector<ProcletId> ids;
  ids.reserve(table_.size());
  for (const ShardEntry& e : table_) {
    ids.push_back(e.ref.id());
  }
  for (const ProcletId id : ids) {
    if (!rt_.IsLost(id)) {
      lost_seen_.erase(id);  // alive, or recovery rebound the same id
      continue;
    }
    const SimTime now = rt_.sim().Now();
    const auto [it, first_sighting] = lost_seen_.try_emplace(id, now);
    if (now - it->second < options_.repair_grace) {
      continue;  // give promotion/restore a chance to rebind the id
    }
    size_t idx = EntryIndexOf(id);
    if (idx == table_.size()) {
      lost_seen_.erase(id);
      continue;  // a racing merge already removed the entry
    }
    const uint64_t begin = table_[idx].begin;
    const uint64_t end = table_[idx].end;
    // Fresh empty replacement on the least-burdened live machine. The dead
    // range's data is gone either way; what repair restores is routing — a
    // table that forever points at a corpse fails every request in range.
    MachineId host = kInvalidMachineId;
    int64_t host_shards = 0;
    for (MachineId m = 0; m < rt_.cluster().size(); ++m) {
      if (m == options_.home || !rt_.cluster().machine(m).accepting() ||
          rt_.MachineConsideredDead(m)) {
        continue;
      }
      int64_t hosted = 0;
      for (const ShardEntry& e : table_) {
        if (!rt_.IsLost(e.ref.id()) && rt_.LocationOf(e.ref.id()) == m) {
          ++hosted;
        }
      }
      if (host == kInvalidMachineId || hosted < host_shards) {
        host = m;
        host_shards = hosted;
      }
    }
    if (host == kInvalidMachineId) {
      continue;  // nowhere live to put it; retry on a later call
    }
    PlacementRequest req;
    req.heap_bytes = options_.shard_heap_bytes;
    req.pinned = host;
    auto create = rt_.Create<FencedKvProclet>(ctx, req, begin, end);
    Result<Ref<FencedKvProclet>> created = co_await std::move(create);
    if (!created.ok()) {
      continue;
    }
    // Re-locate: the entry may have moved (or been merged away) while the
    // create was in flight.
    idx = table_.size();
    for (size_t i = 0; i < table_.size(); ++i) {
      if (table_[i].ref.id() == id && table_[i].begin == begin &&
          table_[i].end == end) {
        idx = i;
        break;
      }
    }
    if (idx == table_.size() || !rt_.IsLost(id)) {
      // The entry changed or the shard came back meanwhile; discard the
      // replacement rather than double-routing the range.
      auto destroy = rt_.Destroy(ctx, created->id());
      (void)co_await std::move(destroy);
      continue;
    }
    table_[idx].ref = *created;
    RebuildShardRefs();
    shard_stats_.erase(id);
    lost_seen_.erase(id);
    ++repairs_;
    ++repaired;
  }
  co_return repaired;
}

}  // namespace quicksand
