#include "quicksand/serving/kv_frontend.h"

#include <algorithm>
#include <utility>

namespace quicksand {

KvFrontend::KvFrontend(Runtime& rt, KvFrontendOptions options)
    : rt_(rt),
      options_(options),
      budget_(options.budget),
      latency_(options.stats_window),
      arrivals_(options.stats_window),
      goodput_(options.stats_window) {
  QS_CHECK(options_.shards >= 1);
  QS_CHECK(options_.max_attempts >= 1);
}

Task<Status> KvFrontend::Start(Ctx ctx) {
  // Shards live off the frontend's machine when the cluster allows it, so
  // serving work and request generation do not contend for the same cores.
  std::vector<MachineId> hosts;
  for (MachineId m = 0; m < rt_.cluster().size(); ++m) {
    if (m != options_.home && !rt_.cluster().machine(m).failed()) {
      hosts.push_back(m);
    }
  }
  for (int i = 0; i < options_.shards; ++i) {
    PlacementRequest req;
    req.heap_bytes = options_.shard_heap_bytes;
    if (!hosts.empty()) {
      req.pinned = hosts[static_cast<size_t>(i) % hosts.size()];
    }
    auto create = rt_.Create<FencedKvProclet>(ctx, req);
    Result<Ref<FencedKvProclet>> shard = co_await std::move(create);
    if (!shard.ok()) {
      co_return shard.status();
    }
    shards_.push_back(*shard);
    if (replication_ != nullptr) {
      auto replicate =
          replication_->ReplicateAs<FencedKvProclet>(ctx, shard->id());
      const Status replicated = co_await std::move(replicate);
      if (!replicated.ok()) {
        co_return replicated;
      }
    }
  }
  co_return Status::Ok();
}

Task<KvFrontend::Attempt> KvFrontend::TryOnce(Ctx ctx,
                                              Ref<FencedKvProclet> shard,
                                              uint64_t rid, uint64_t key,
                                              bool is_read) {
  // Epoch is re-resolved per attempt (the stamp must be current); the rid is
  // stable across attempts, so a retry of an acked-but-unacknowledged write
  // dedups at the shard.
  const uint64_t epoch = rt_.EpochOf(shard.id());
  if (epoch == 0) {
    co_return Attempt::kRetryable;  // mid-rebind; resolve again after backoff
  }
  Runtime& rt = rt_;
  const Duration svc = options_.service_time;
  Attempt outcome = Attempt::kFatal;
  try {
    if (is_read) {
      auto call = shard.Call(
          ctx,
          [&rt, svc, key](FencedKvProclet& p) -> Task<Result<int64_t>> {
            co_await rt.cluster().machine(p.location()).cpu().Run(
                svc, kPriorityNormal);
            co_return p.Get(key);
          },
          options_.request_bytes);
      const Result<int64_t> got = co_await std::move(call);
      (void)got;  // NotFound (cold key) is still a served request
      outcome = Attempt::kOk;
    } else {
      const int64_t value = static_cast<int64_t>(key) * 31 + 7;
      auto call = shard.Call(
          ctx,
          [&rt, svc, epoch, rid, key,
           value](FencedKvProclet& p) -> Task<FencedKvProclet::PutResult> {
            co_await rt.cluster().machine(p.location()).cpu().Run(
                svc, kPriorityNormal);
            co_return p.Put(epoch, rid, key, value);
          },
          options_.request_bytes);
      const FencedKvProclet::PutResult put = co_await std::move(call);
      if (put.applied || put.duplicate) {
        outcome = Attempt::kOk;
      } else if (put.fenced) {
        outcome = Attempt::kRetryable;  // epoch moved between resolve and run
      } else {
        outcome = Attempt::kFatal;  // shard out of memory; the rid is burned
      }
    }
  } catch (const InvocationSheddedError&) {
    outcome = Attempt::kShed;
  } catch (const DeadlineExpiredError&) {
    outcome = Attempt::kDeadline;
  } catch (const ProcletUnreachableError&) {
    outcome = Attempt::kRetryable;
  } catch (const ProcletLostError&) {
    outcome = Attempt::kRetryable;  // recovery may restore it
  }
  co_return outcome;
}

Task<bool> KvFrontend::TryStaleRead(Ctx ctx, Ref<FencedKvProclet> shard,
                                    uint64_t key) {
  auto stale = replication_->ReadStale<FencedKvProclet>(
      ctx, shard.id(), options_.max_staleness,
      [key](const FencedKvProclet& p) { return p.Get(key); });
  const Result<Result<int64_t>> got = co_await std::move(stale);
  // Inner NotFound is a served answer (the key is cold on the primary too,
  // up to staleness); only transport/staleness failures count as misses.
  co_return got.ok();
}

void KvFrontend::RecordSuccess(SimTime arrival) {
  const SimTime now = rt_.sim().Now();
  const Duration elapsed = now - arrival;
  latency_.Add(now, elapsed);
  if (elapsed <= options_.slo) {
    ++ok_in_slo_;
    goodput_.Add(now, elapsed);
  } else {
    ++ok_late_;
  }
}

Task<> KvFrontend::Serve(uint64_t key, bool is_read) {
  const SimTime arrival = rt_.sim().Now();
  ++offered_;
  arrivals_.Add(arrival, Duration::Nanos(1));
  Ctx ctx = rt_.CtxOn(options_.home);
  if (options_.deadline_propagation) {
    ctx.trace = ctx.trace.WithDeadline(arrival + options_.slo);
  }
  const uint64_t rid = next_rid_++;
  Ref<FencedKvProclet> shard =
      shards_[key % static_cast<uint64_t>(shards_.size())];
  if (options_.retry_budget) {
    budget_.OnAttempt();  // first attempts fund the bucket
  }
  Duration backoff = options_.retry_backoff;
  for (int attempt = 0;; ++attempt) {
    auto once = TryOnce(ctx, shard, rid, key, is_read);
    const Attempt outcome = co_await std::move(once);
    if (outcome == Attempt::kOk) {
      RecordSuccess(arrival);
      co_return;
    }
    if (outcome == Attempt::kShed) {
      ++sheds_seen_;
      if (is_read && options_.degraded_reads && replication_ != nullptr) {
        auto fallback = TryStaleRead(ctx, shard, key);
        if (co_await std::move(fallback)) {
          ++stale_fallbacks_;
          RecordSuccess(arrival);
          co_return;
        }
      }
      // No (or failed) fallback: fall through to the retry gate.
    } else if (outcome == Attempt::kDeadline) {
      // The server already told us the deadline passed; a retry would only
      // arrive deader.
      ++deadline_rejections_seen_;
      ++failed_;
      co_return;
    } else if (outcome == Attempt::kFatal) {
      ++failed_;
      co_return;
    }
    if (attempt + 1 >= options_.max_attempts) {
      ++failed_;
      co_return;
    }
    if (options_.deadline_propagation &&
        rt_.sim().Now() > arrival + options_.slo) {
      ++failed_;  // client-side give-up: nothing sent now can make the SLO
      co_return;
    }
    if (options_.retry_budget && !budget_.TryAcquireRetry()) {
      ++failed_;
      co_return;
    }
    ++retries_;
    co_await rt_.sim().Sleep(backoff);
    backoff = std::min(backoff * 2, options_.max_retry_backoff);
  }
}

ServingSample KvFrontend::SampleServing(SimTime now) const {
  ServingSample s;
  const double window_s =
      static_cast<double>(latency_.window().nanos()) / 1e9;
  s.offered_qps = static_cast<double>(arrivals_.Count(now)) / window_s;
  s.goodput_qps = static_cast<double>(goodput_.Count(now)) / window_s;
  const LatencyHistogram merged = latency_.Merged(now);
  if (merged.count() > 0) {
    s.p50 = merged.Percentile(50);
    s.p99 = merged.Percentile(99);
  }
  s.shed_total = sheds_seen_;
  s.deadline_expired_total = deadline_rejections_seen_;
  s.stale_serves_total = stale_fallbacks_;
  return s;
}

}  // namespace quicksand
