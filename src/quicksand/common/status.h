// Status and Result<T>: error propagation without exceptions on API
// boundaries.
//
// The runtime surfaces recoverable failures (proclet not found, resource
// exhausted, migration races) through Result<T>; QS_CHECK covers programming
// errors. Modeled after absl::Status / std::expected but self-contained.

#ifndef QUICKSAND_COMMON_STATUS_H_
#define QUICKSAND_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "quicksand/common/check.h"

namespace quicksand {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kUnavailable,
  kResourceExhausted,
  kFailedPrecondition,
  kInvalidArgument,
  kAborted,
  kOutOfRange,
  kDeadlineExceeded,
  kCancelled,
  kInternal,
  kDataLoss,
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg = "") {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg = "") {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg = "") {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool operator==(const Status& other) const { return code_ == other.code_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or a non-OK Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit, so functions can `return value;` or
  // `return Status::NotFound(...);` directly.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    QS_CHECK_MSG(!std::get<Status>(data_).ok(), "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    QS_CHECK_MSG(ok(), status_unchecked().ToString().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    QS_CHECK_MSG(ok(), status_unchecked().ToString().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    QS_CHECK_MSG(ok(), status_unchecked().ToString().c_str());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(data_);
  }

  T value_or(T fallback) const& { return ok() ? std::get<T>(data_) : std::move(fallback); }

 private:
  const Status& status_unchecked() const { return std::get<Status>(data_); }

  std::variant<T, Status> data_;
};

}  // namespace quicksand

#endif  // QUICKSAND_COMMON_STATUS_H_
