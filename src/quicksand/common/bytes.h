// Byte-count constants and formatting helpers.

#ifndef QUICKSAND_COMMON_BYTES_H_
#define QUICKSAND_COMMON_BYTES_H_

#include <cstdint>
#include <string>

namespace quicksand {

inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;

constexpr int64_t operator""_KiB(unsigned long long n) {
  return static_cast<int64_t>(n) * kKiB;
}
constexpr int64_t operator""_MiB(unsigned long long n) {
  return static_cast<int64_t>(n) * kMiB;
}
constexpr int64_t operator""_GiB(unsigned long long n) {
  return static_cast<int64_t>(n) * kGiB;
}

// Human-readable byte count, e.g. "12.5 MiB".
std::string FormatBytes(int64_t bytes);

}  // namespace quicksand

#endif  // QUICKSAND_COMMON_BYTES_H_
