#include "quicksand/common/bytes.h"

#include <cinttypes>
#include <cstdio>

namespace quicksand {

std::string FormatBytes(int64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes < 0) {
    std::snprintf(buf, sizeof(buf), "-%s", FormatBytes(-bytes).c_str());
  } else if (bytes < kKiB) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 " B", bytes);
  } else if (bytes < kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / static_cast<double>(kKiB));
  } else if (bytes < kGiB) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", b / static_cast<double>(kMiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / static_cast<double>(kGiB));
  }
  return buf;
}

}  // namespace quicksand
