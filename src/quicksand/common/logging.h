// Minimal leveled logging with simulated-time stamps.
//
// Logging is off by default (benchmarks print their own tables); tests and
// examples can raise the level to trace scheduler and migration decisions.

#ifndef QUICKSAND_COMMON_LOGGING_H_
#define QUICKSAND_COMMON_LOGGING_H_

#include <cstdarg>
#include <string>

#include "quicksand/common/time.h"

namespace quicksand {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& Get();

  void SetLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // The simulator installs a clock callback so log lines carry sim time.
  using ClockFn = SimTime (*)(void*);
  void SetClock(ClockFn fn, void* arg) {
    clock_fn_ = fn;
    clock_arg_ = arg;
  }
  void ClearClock() {
    clock_fn_ = nullptr;
    clock_arg_ = nullptr;
  }

  bool Enabled(LogLevel level) const { return level >= level_; }

  void Logf(LogLevel level, const char* component, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

 private:
  Logger() = default;

  LogLevel level_ = LogLevel::kOff;
  ClockFn clock_fn_ = nullptr;
  void* clock_arg_ = nullptr;
};

}  // namespace quicksand

#define QS_LOG(level, component, ...)                                        \
  do {                                                                       \
    if (::quicksand::Logger::Get().Enabled(level)) {                         \
      ::quicksand::Logger::Get().Logf((level), (component), __VA_ARGS__);    \
    }                                                                        \
  } while (0)

#define QS_LOG_TRACE(component, ...) \
  QS_LOG(::quicksand::LogLevel::kTrace, component, __VA_ARGS__)
#define QS_LOG_DEBUG(component, ...) \
  QS_LOG(::quicksand::LogLevel::kDebug, component, __VA_ARGS__)
#define QS_LOG_INFO(component, ...) \
  QS_LOG(::quicksand::LogLevel::kInfo, component, __VA_ARGS__)
#define QS_LOG_WARN(component, ...) \
  QS_LOG(::quicksand::LogLevel::kWarn, component, __VA_ARGS__)
#define QS_LOG_ERROR(component, ...) \
  QS_LOG(::quicksand::LogLevel::kError, component, __VA_ARGS__)

#endif  // QUICKSAND_COMMON_LOGGING_H_
