// Lightweight runtime assertion macros.
//
// QS_CHECK aborts with a message on failure in all build types; invariants in a
// resource-management runtime are not recoverable, so we fail fast rather than
// limp along with corrupted bookkeeping. QS_DCHECK compiles out in NDEBUG
// builds and is meant for hot paths.

#ifndef QUICKSAND_COMMON_CHECK_H_
#define QUICKSAND_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace quicksand {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "QS_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               (msg != nullptr && msg[0] != '\0') ? " — " : "", msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace quicksand

#define QS_CHECK(cond)                                             \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::quicksand::CheckFailed(#cond, __FILE__, __LINE__, "");     \
    }                                                              \
  } while (0)

#define QS_CHECK_MSG(cond, msg)                                    \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::quicksand::CheckFailed(#cond, __FILE__, __LINE__, (msg));  \
    }                                                              \
  } while (0)

#ifdef NDEBUG
#define QS_DCHECK(cond) \
  do {                  \
  } while (0)
#define QS_DCHECK_MSG(cond, msg) \
  do {                           \
  } while (0)
#else
#define QS_DCHECK(cond) QS_CHECK(cond)
#define QS_DCHECK_MSG(cond, msg) QS_CHECK_MSG(cond, msg)
#endif

#endif  // QUICKSAND_COMMON_CHECK_H_
