#include "quicksand/common/logging.h"

#include <cstdio>

namespace quicksand {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Logf(LogLevel level, const char* component, const char* fmt, ...) {
  char msg[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);

  if (clock_fn_ != nullptr) {
    const SimTime now = clock_fn_(clock_arg_);
    std::fprintf(stderr, "[%s %10.6f] %-10s %s\n", LevelName(level), now.seconds(),
                 component, msg);
  } else {
    std::fprintf(stderr, "[%s] %-10s %s\n", LevelName(level), component, msg);
  }
}

}  // namespace quicksand
