// Deterministic pseudo-random number generation.
//
// The simulator must be exactly reproducible across runs, so all stochastic
// behaviour (workload sizes, jitter, placement tie-breaking) draws from Rng
// instances seeded explicitly. Xoshiro256** is used for speed and quality;
// SplitMix64 expands seeds.

#ifndef QUICKSAND_COMMON_RANDOM_H_
#define QUICKSAND_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "quicksand/common/check.h"

namespace quicksand {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 to spread a single seed over the full 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Uniform over the full 64-bit range.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    QS_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    QS_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // True with probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  // Normally distributed with given mean and standard deviation
  // (Box–Muller transform).
  double NextGaussian(double mean, double stddev) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-300) {
      u1 = NextDouble();
    }
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
  }

  // Exponentially distributed with the given mean (for Poisson arrivals).
  double NextExponential(double mean) {
    double u = NextDouble();
    while (u <= 1e-300) {
      u = NextDouble();
    }
    return -mean * std::log(u);
  }

  // Zipf-distributed integer in [0, n) with skew parameter s (s=0 is uniform).
  // Uses the rejection-inversion method of Hörmann & Derflinger; adequate for
  // workload generation.
  uint64_t NextZipf(uint64_t n, double s);

  // Fork a statistically independent generator (for per-component streams).
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
};

}  // namespace quicksand

#endif  // QUICKSAND_COMMON_RANDOM_H_
