// Strong types for simulated time.
//
// All simulation timing uses Duration (a signed span of nanoseconds) and
// SimTime (nanoseconds since simulation start). Using dedicated types instead
// of bare int64_t prevents unit mix-ups between, e.g., microsecond RPC
// latencies and millisecond control-loop periods.

#ifndef QUICKSAND_COMMON_TIME_H_
#define QUICKSAND_COMMON_TIME_H_

#include <cstdint>
#include <string>
#include <type_traits>

namespace quicksand {

// A signed span of simulated time with nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Nanos(int64_t n) { return Duration(n); }
  static constexpr Duration Micros(int64_t n) { return Duration(n * 1000); }
  static constexpr Duration Millis(int64_t n) { return Duration(n * 1000 * 1000); }
  static constexpr Duration Seconds(int64_t n) { return Duration(n * 1000 * 1000 * 1000); }
  static constexpr Duration SecondsF(double s) {
    return Duration(static_cast<int64_t>(s * 1e9));
  }
  static constexpr Duration Max() { return Duration(INT64_MAX); }
  static constexpr Duration Zero() { return Duration(0); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t micros() const { return ns_ / 1000; }
  constexpr int64_t millis() const { return ns_ / (1000 * 1000); }
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr Duration operator+(Duration other) const { return Duration(ns_ + other.ns_); }
  constexpr Duration operator-(Duration other) const { return Duration(ns_ - other.ns_); }
  constexpr Duration operator-() const { return Duration(-ns_); }
  template <typename T>
    requires std::is_arithmetic_v<T>
  constexpr Duration operator*(T k) const {
    if constexpr (std::is_floating_point_v<T>) {
      return Duration(static_cast<int64_t>(static_cast<double>(ns_) * k));
    } else {
      return Duration(ns_ * static_cast<int64_t>(k));
    }
  }
  constexpr Duration operator/(int64_t k) const { return Duration(ns_ / k); }
  constexpr double operator/(Duration other) const {
    return static_cast<double>(ns_) / static_cast<double>(other.ns_);
  }
  Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    ns_ -= other.ns_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t ns) : ns_(ns) {}

  int64_t ns_ = 0;
};

// An absolute point on the simulated clock (nanoseconds since time zero).
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime FromNanos(int64_t ns) { return SimTime(ns); }
  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr SimTime operator+(Duration d) const { return SimTime(ns_ + d.nanos()); }
  constexpr SimTime operator-(Duration d) const { return SimTime(ns_ - d.nanos()); }
  constexpr Duration operator-(SimTime other) const {
    return Duration::Nanos(ns_ - other.ns_);
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr SimTime(int64_t ns) : ns_(ns) {}

  int64_t ns_ = 0;
};

constexpr Duration operator""_ns(unsigned long long n) {
  return Duration::Nanos(static_cast<int64_t>(n));
}
constexpr Duration operator""_us(unsigned long long n) {
  return Duration::Micros(static_cast<int64_t>(n));
}
constexpr Duration operator""_ms(unsigned long long n) {
  return Duration::Millis(static_cast<int64_t>(n));
}
constexpr Duration operator""_s(unsigned long long n) {
  return Duration::Seconds(static_cast<int64_t>(n));
}

}  // namespace quicksand

#endif  // QUICKSAND_COMMON_TIME_H_
