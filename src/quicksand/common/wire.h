// Wire-size model for remote invocations.
//
// The simulator shares one address space, so data never needs real
// serialization — but network cost modeling does need to know how many bytes
// a value would occupy on the wire. Types customize this by providing a
// member `int64_t WireBytes() const`; trivially copyable types default to
// sizeof(T); standard containers are summed element-wise.

#ifndef QUICKSAND_COMMON_WIRE_H_
#define QUICKSAND_COMMON_WIRE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "quicksand/common/status.h"

namespace quicksand {

template <typename T>
concept HasWireBytes = requires(const T& t) {
  { t.WireBytes() } -> std::convertible_to<int64_t>;
};

template <typename T>
int64_t WireSizeOf(const T& value);

namespace internal {

template <typename T>
struct WireSize {
  static int64_t Of(const T& value) {
    if constexpr (HasWireBytes<T>) {
      return value.WireBytes();
    } else {
      static_assert(std::is_trivially_copyable_v<T>,
                    "non-trivially-copyable types must provide WireBytes()");
      return static_cast<int64_t>(sizeof(T));
    }
  }
};

template <>
struct WireSize<std::string> {
  static int64_t Of(const std::string& s) {
    return static_cast<int64_t>(s.size()) + 8;  // length prefix
  }
};

template <typename T>
struct WireSize<std::vector<T>> {
  static int64_t Of(const std::vector<T>& v) {
    int64_t total = 8;  // length prefix
    if constexpr (std::is_trivially_copyable_v<T> && !HasWireBytes<T>) {
      total += static_cast<int64_t>(v.size() * sizeof(T));
    } else {
      for (const T& e : v) {
        total += WireSizeOf(e);
      }
    }
    return total;
  }
};

template <typename A, typename B>
struct WireSize<std::pair<A, B>> {
  static int64_t Of(const std::pair<A, B>& p) {
    return WireSizeOf(p.first) + WireSizeOf(p.second);
  }
};

template <typename K, typename V>
struct WireSize<std::map<K, V>> {
  static int64_t Of(const std::map<K, V>& m) {
    int64_t total = 8;
    for (const auto& [k, v] : m) {
      total += WireSizeOf(k) + WireSizeOf(v);
    }
    return total;
  }
};

template <typename T>
struct WireSize<std::optional<T>> {
  static int64_t Of(const std::optional<T>& o) {
    return 1 + (o.has_value() ? WireSizeOf(*o) : 0);
  }
};

template <>
struct WireSize<Status> {
  static int64_t Of(const Status& s) {
    return 4 + static_cast<int64_t>(s.message().size());
  }
};

template <typename T>
struct WireSize<Result<T>> {
  static int64_t Of(const Result<T>& r) {
    return 1 + (r.ok() ? WireSizeOf(*r) : WireSizeOf(r.status()));
  }
};

}  // namespace internal

// Number of bytes `value` would occupy when sent over the fabric.
template <typename T>
int64_t WireSizeOf(const T& value) {
  return internal::WireSize<std::remove_cvref_t<T>>::Of(value);
}

// Total wire size of a parameter pack (RPC argument lists).
template <typename... Ts>
int64_t WireSizeOfAll(const Ts&... values) {
  return (int64_t{0} + ... + WireSizeOf(values));
}

}  // namespace quicksand

#endif  // QUICKSAND_COMMON_WIRE_H_
