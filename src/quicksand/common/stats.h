// Statistics collection: running moments, latency histograms, time series.
//
// Benchmarks and the scheduler both consume these: benches to report table
// rows, the scheduler to estimate queueing delay and utilization via EWMA.

#ifndef QUICKSAND_COMMON_STATS_H_
#define QUICKSAND_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "quicksand/common/time.h"

namespace quicksand {

// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Log-bucketed latency histogram covering [1ns, ~18s] with ~4% resolution.
// Suitable for percentile reporting without storing every sample.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Add(Duration d);
  void Merge(const LatencyHistogram& other);
  void Reset();

  int64_t count() const { return count_; }
  Duration Percentile(double p) const;  // p in [0, 100]
  Duration Min() const { return min_; }
  Duration Max() const { return max_; }
  Duration Mean() const;

  std::string Summary() const;  // "p50=… p90=… p99=… max=…"

 private:
  static constexpr int kSubBuckets = 16;  // per power of two
  static constexpr int kNumBuckets = 64 * kSubBuckets;

  static int BucketFor(int64_t ns);
  static int64_t BucketLowerBound(int bucket);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t total_ns_ = 0;
  Duration min_ = Duration::Max();
  Duration max_ = Duration::Zero();
};

// Quantile tracking over a sliding window of sim time: p50/p99/p999 of the
// last `window` worth of samples, for SLO accounting where lifetime
// percentiles would hide a current overload behind a long calm history.
//
// Implemented as `slices` log-bucketed sub-histograms rotated as time
// advances: a sample lands in the slice covering Now, and queries merge the
// slices still inside the window. Memory is fixed; rotation cost is a
// Reset() of one slice. Resolution in time is window/slices; resolution in
// value is the underlying LatencyHistogram's ~4%.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(Duration window, int slices = 8);

  void Add(SimTime now, Duration d);

  // Percentile over samples within [now - window, now]. p in [0, 100].
  Duration Percentile(SimTime now, double p) const;
  // Samples within the window.
  int64_t Count(SimTime now) const;
  // Merged view of the in-window slices (for Summary / multiple quantiles
  // without re-merging per call).
  LatencyHistogram Merged(SimTime now) const;

  Duration window() const { return window_; }

 private:
  struct Slice {
    LatencyHistogram hist;
    int64_t index = -1;  // which window/slices-wide interval this covers
  };

  // Slice index covering `t`, and rotation to make it current.
  int64_t IndexFor(SimTime t) const;
  Slice& SliceFor(SimTime now);

  Duration window_;
  Duration slice_width_;
  mutable std::vector<Slice> slices_;
};

// Exponentially weighted moving average with configurable smoothing.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  void Add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  double value() const { return initialized_ ? value_ : 0.0; }
  bool initialized() const { return initialized_; }
  void Reset() { initialized_ = false; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Timestamped samples of a named scalar, for reproducing figure timelines.
class TimeSeries {
 public:
  struct Point {
    SimTime time;
    double value;
  };

  explicit TimeSeries(std::string name = "") : name_(std::move(name)) {}

  void Record(SimTime t, double value) { points_.push_back({t, value}); }

  const std::string& name() const { return name_; }
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // Mean of values with time in [begin, end).
  double MeanOver(SimTime begin, SimTime end) const;

  // Writes "time_s,value" CSV lines (with a header) to a string.
  std::string ToCsv() const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace quicksand

#endif  // QUICKSAND_COMMON_STATS_H_
