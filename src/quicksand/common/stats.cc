#include "quicksand/common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "quicksand/common/check.h"

namespace quicksand {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void RunningStat::Reset() { *this = RunningStat(); }

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

int LatencyHistogram::BucketFor(int64_t ns) {
  if (ns < 1) {
    ns = 1;
  }
  const auto uns = static_cast<uint64_t>(ns);
  const int log2 = 63 - std::countl_zero(uns);
  // Sub-bucket index from the bits just below the leading one.
  int sub = 0;
  if (log2 >= 4) {
    sub = static_cast<int>((uns >> (log2 - 4)) & (kSubBuckets - 1));
  } else {
    sub = static_cast<int>(uns & (kSubBuckets - 1));
  }
  int bucket = log2 * kSubBuckets + sub;
  if (bucket >= kNumBuckets) {
    bucket = kNumBuckets - 1;
  }
  return bucket;
}

int64_t LatencyHistogram::BucketLowerBound(int bucket) {
  const int log2 = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  if (log2 < 4) {
    return (int64_t{1} << log2) + sub;
  }
  return (int64_t{1} << log2) +
         (static_cast<int64_t>(sub) << (log2 - 4));
}

void LatencyHistogram::Add(Duration d) {
  QS_DCHECK(d >= Duration::Zero());
  ++buckets_[static_cast<size_t>(BucketFor(d.nanos()))];
  ++count_;
  total_ns_ += d.nanos();
  min_ = std::min(min_, d);
  max_ = std::max(max_, d);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  total_ns_ += other.total_ns_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  total_ns_ = 0;
  min_ = Duration::Max();
  max_ = Duration::Zero();
}

Duration LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return Duration::Zero();
  }
  QS_CHECK(p >= 0.0 && p <= 100.0);
  const auto target = static_cast<int64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= target) {
      return Duration::Nanos(BucketLowerBound(i));
    }
  }
  return max_;
}

Duration LatencyHistogram::Mean() const {
  if (count_ == 0) {
    return Duration::Zero();
  }
  return Duration::Nanos(total_ns_ / count_);
}

std::string LatencyHistogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "n=%lld p50=%s p90=%s p99=%s max=%s",
                static_cast<long long>(count_),
                Percentile(50).ToString().c_str(), Percentile(90).ToString().c_str(),
                Percentile(99).ToString().c_str(), Max().ToString().c_str());
  return buf;
}

WindowedHistogram::WindowedHistogram(Duration window, int slices)
    : window_(window),
      slice_width_(window / slices),
      slices_(static_cast<size_t>(slices + 1)) {
  // One extra slice so the window is always fully covered mid-rotation.
  QS_CHECK(window > Duration::Zero() && slices > 0);
  QS_CHECK(slice_width_ > Duration::Zero());
}

int64_t WindowedHistogram::IndexFor(SimTime t) const {
  return t.nanos() / slice_width_.nanos();
}

WindowedHistogram::Slice& WindowedHistogram::SliceFor(SimTime now) {
  const int64_t index = IndexFor(now);
  Slice& slice = slices_[static_cast<size_t>(index) % slices_.size()];
  if (slice.index != index) {
    slice.hist.Reset();  // reclaim an aged-out interval's slot
    slice.index = index;
  }
  return slice;
}

void WindowedHistogram::Add(SimTime now, Duration d) {
  SliceFor(now).hist.Add(d);
}

LatencyHistogram WindowedHistogram::Merged(SimTime now) const {
  const int64_t newest = IndexFor(now);
  const int64_t oldest = IndexFor(now - window_);
  LatencyHistogram merged;
  for (const Slice& slice : slices_) {
    if (slice.index >= oldest && slice.index <= newest &&
        slice.hist.count() > 0) {
      merged.Merge(slice.hist);
    }
  }
  return merged;
}

Duration WindowedHistogram::Percentile(SimTime now, double p) const {
  return Merged(now).Percentile(p);
}

int64_t WindowedHistogram::Count(SimTime now) const {
  return Merged(now).count();
}

double TimeSeries::MeanOver(SimTime begin, SimTime end) const {
  double sum = 0.0;
  int64_t n = 0;
  for (const Point& p : points_) {
    if (p.time >= begin && p.time < end) {
      sum += p.value;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::string TimeSeries::ToCsv() const {
  std::string out = "time_s," + (name_.empty() ? std::string("value") : name_) + "\n";
  char buf[64];
  for (const Point& p : points_) {
    std::snprintf(buf, sizeof(buf), "%.6f,%.6f\n", p.time.seconds(), p.value);
    out += buf;
  }
  return out;
}

}  // namespace quicksand
