#include "quicksand/common/time.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace quicksand {

std::string Duration::ToString() const {
  char buf[64];
  const int64_t abs_ns = ns_ < 0 ? -ns_ : ns_;
  if (abs_ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns_);
  } else if (abs_ns < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fus", static_cast<double>(ns_) / 1e3);
  } else if (abs_ns < 1000LL * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns_) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns_) / 1e9);
  }
  return buf;
}

std::string SimTime::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.6fs", static_cast<double>(ns_) / 1e9);
  return buf;
}

}  // namespace quicksand
