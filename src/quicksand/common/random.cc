#include "quicksand/common/random.h"

namespace quicksand {

uint64_t Rng::NextZipf(uint64_t n, double s) {
  QS_CHECK(n > 0);
  if (n == 1) {
    return 0;
  }
  if (s <= 1e-9) {
    return NextBounded(n);
  }
  // Rejection-inversion sampling (Hörmann & Derflinger 1996), ranks 1..n,
  // returned zero-based.
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    if (std::abs(1.0 - s) < 1e-12) {
      return std::log(x);
    }
    return std::pow(x, 1.0 - s) / (1.0 - s);
  };
  auto h_inv = [s](double x) {
    if (std::abs(1.0 - s) < 1e-12) {
      return std::exp(x);
    }
    return std::pow((1.0 - s) * x, 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;
  const double hn = h(nd + 0.5);
  for (;;) {
    const double u = hx0 + NextDouble() * (hn - hx0);
    const double x = h_inv(u);
    const uint64_t k = static_cast<uint64_t>(x + 0.5);
    const double kd = static_cast<double>(k);
    if (k < 1) {
      continue;
    }
    if (k > n) {
      continue;
    }
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) {
      return k - 1;
    }
  }
}

}  // namespace quicksand
