#include "quicksand/common/status.h"

namespace quicksand {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace quicksand
