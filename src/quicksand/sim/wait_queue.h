// WaitQueue: the low-level park/unpark primitive every synchronization
// object builds on.
//
// Park() suspends the calling coroutine; WakeOne()/WakeAll() schedule
// resumption at the current virtual time in FIFO order. Wakeups can be
// spurious from the caller's perspective (a woken waiter may find its
// condition false again), so users loop.

#ifndef QUICKSAND_SIM_WAIT_QUEUE_H_
#define QUICKSAND_SIM_WAIT_QUEUE_H_

#include <coroutine>
#include <deque>

#include "quicksand/sim/simulator.h"

namespace quicksand {

class WaitQueue {
 public:
  explicit WaitQueue(Simulator& sim) : sim_(sim) {}

  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  auto Park() {
    struct Awaiter {
      WaitQueue& queue;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { queue.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void WakeOne() {
    if (waiters_.empty()) {
      return;
    }
    std::coroutine_handle<> h = waiters_.front();
    waiters_.pop_front();
    sim_.Schedule(Duration::Zero(), [h] { h.resume(); });
  }

  void WakeAll() {
    while (!waiters_.empty()) {
      WakeOne();
    }
  }

  size_t waiting() const { return waiters_.size(); }
  Simulator& sim() const { return sim_; }

 private:
  Simulator& sim_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace quicksand

#endif  // QUICKSAND_SIM_WAIT_QUEUE_H_
