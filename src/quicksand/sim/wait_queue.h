// WaitQueue: the low-level park/unpark primitive every synchronization
// object builds on.
//
// Park() suspends the calling coroutine; WakeOne()/WakeAll() schedule
// resumption at the current virtual time in FIFO order. Wakeups can be
// spurious from the caller's perspective (a woken waiter may find its
// condition false again), so users loop.
//
// The wait list is intrusive: the list node is the Park() awaiter itself,
// which lives in the parked coroutine's frame for the whole suspension, so
// parking allocates nothing. A node leaves the list only via WakeOne/WakeAll;
// a parked fiber destroyed at simulator teardown leaves its node dangling,
// which is fine because the WaitQueue (a member of some simulation object)
// dies with the simulator and is never woken during teardown — exactly the
// lifetime contract the old deque-of-handles carried, since resuming a
// destroyed coroutine handle was equally invalid.

#ifndef QUICKSAND_SIM_WAIT_QUEUE_H_
#define QUICKSAND_SIM_WAIT_QUEUE_H_

#include <coroutine>

#include "quicksand/sim/simulator.h"

namespace quicksand {

class WaitQueue {
 public:
  explicit WaitQueue(Simulator& sim) : sim_(sim) {}

  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  struct ParkAwaiter {
    WaitQueue& queue;
    std::coroutine_handle<> handle;
    ParkAwaiter* next = nullptr;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      if (queue.tail_ != nullptr) {
        queue.tail_->next = this;
      } else {
        queue.head_ = this;
      }
      queue.tail_ = this;
      ++queue.count_;
    }
    void await_resume() const noexcept {}
  };

  ParkAwaiter Park() { return ParkAwaiter{*this, {}, nullptr}; }

  void WakeOne() {
    if (head_ == nullptr) {
      return;
    }
    ParkAwaiter* node = head_;
    head_ = node->next;
    if (head_ == nullptr) {
      tail_ = nullptr;
    }
    --count_;
    // Once the resumption fires, the waiter's frame moves past the await and
    // the node dies — it must already be unlinked, hence pop-then-schedule.
    const std::coroutine_handle<> h = node->handle;
    sim_.Post([h] { h.resume(); });
  }

  void WakeAll() {
    while (head_ != nullptr) {
      WakeOne();
    }
  }

  size_t waiting() const { return count_; }
  Simulator& sim() const { return sim_; }

 private:
  Simulator& sim_;
  ParkAwaiter* head_ = nullptr;
  ParkAwaiter* tail_ = nullptr;
  size_t count_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_SIM_WAIT_QUEUE_H_
