#include "quicksand/sim/simulator.h"

#include <algorithm>
#include <utility>

#include "quicksand/common/logging.h"
#include "quicksand/sim/frame_pool.h"

namespace quicksand {

namespace {

SimTime LoggerClock(void* arg) { return static_cast<Simulator*>(arg)->Now(); }

}  // namespace

// The root coroutine wrapping every fiber body. Self-destroys at completion
// after notifying the simulator, so finished fibers hold no memory beyond
// their arena slot (released once the last Fiber handle drops).
struct Simulator::RootTask {
  struct promise_type {
    internal::FiberState* state = nullptr;

    // Root frames are as numerous as fibers — pool them like Task frames.
    static void* operator new(size_t bytes) { return FramePool::Alloc(bytes); }
    static void operator delete(void* p, size_t bytes) {
      FramePool::Free(p, bytes);
    }

    RootTask get_return_object() {
      return RootTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) const noexcept {
        internal::FiberState* state = h.promise().state;
        // Destroying at the final suspend point is legal; all locals are
        // already destroyed, only the frame itself remains.
        h.destroy();
        if (state != nullptr && state->sim != nullptr) {
          state->sim->FiberFinished(*state);
        }
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { state->error = std::current_exception(); }
  };

  std::coroutine_handle<promise_type> handle;
};

namespace {

Simulator::RootTask RunAsRoot(Task<> body) { co_await std::move(body); }

}  // namespace

Simulator::Simulator()
    : now_(SimTime::Zero()),
      fiber_arena_(std::make_shared<internal::FiberArena>()) {
  Logger::Get().SetClock(&LoggerClock, this);
}

Simulator::~Simulator() {
  tearing_down_ = true;
  while (live_head_ != nullptr) {
    internal::FiberState* state = live_head_;
    LiveListRemove(*state);
    std::coroutine_handle<> handle = state->handle;
    state->handle = {};
    handle.destroy();
    // The root coroutine's reference: dropping it may recycle the slot if no
    // Fiber handle is outstanding.
    DropRootRef(state);
  }
  live_fiber_count_ = 0;
  Logger::Get().ClearClock();
  // The slots_ and now_lane_ destructors release any still-pending callbacks.
}

// --- Event slab -------------------------------------------------------------

EventId Simulator::AllocSlot(SmallFn fn) {
  uint32_t index;
  if (free_head_ != kNoSlot) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    QS_CHECK_MSG(slots_.size() < static_cast<size_t>(UINT32_MAX) - 1,
                 "event slab exhausted");
    slots_.emplace_back();
    index = static_cast<uint32_t>(slots_.size() - 1);
  }
  EventSlot& slot = slots_[index];
  ++slot.gen;  // even (free) -> odd (live)
  QS_DCHECK((slot.gen & 1u) == 1u);
  slot.fn = std::move(fn);
  return (static_cast<EventId>(index) + 1) << 32 | slot.gen;
}

Simulator::EventSlot* Simulator::ResolveLive(EventId id) {
  const uint64_t index_plus_1 = id >> 32;
  if (index_plus_1 == 0 || index_plus_1 > slots_.size()) {
    return nullptr;
  }
  EventSlot& slot = slots_[index_plus_1 - 1];
  if (slot.gen != static_cast<uint32_t>(id)) {
    return nullptr;  // already fired or cancelled (possibly slot reused)
  }
  return &slot;
}

void Simulator::FreeSlot(EventId id) {
  const uint32_t index = static_cast<uint32_t>((id >> 32) - 1);
  EventSlot& slot = slots_[index];
  ++slot.gen;  // odd (live) -> even (free): outstanding ids become stale
  slot.next_free = free_head_;
  free_head_ = index;
}

// --- Now lane ---------------------------------------------------------------

void Simulator::GrowNowLane() {
  const size_t old_cap = now_lane_.size();
  const size_t new_cap = old_cap == 0 ? 64 : old_cap * 2;
  std::vector<NowEntry> grown(new_cap);
  for (size_t i = 0; i < now_count_; ++i) {
    grown[i] = std::move(now_lane_[(now_head_ + i) & (old_cap - 1)]);
  }
  now_lane_ = std::move(grown);
  now_head_ = 0;
}

void Simulator::NowLanePush(NowEntry entry) {
  if (now_count_ == now_lane_.size()) {
    GrowNowLane();
  }
  now_lane_[(now_head_ + now_count_) & (now_lane_.size() - 1)] =
      std::move(entry);
  ++now_count_;
}

Simulator::NowEntry Simulator::NowLanePop() {
  QS_DCHECK(now_count_ > 0);
  NowEntry entry = std::move(now_lane_[now_head_]);
  now_head_ = (now_head_ + 1) & (now_lane_.size() - 1);
  --now_count_;
  return entry;
}

// --- Timed tiers ------------------------------------------------------------

void Simulator::HeapPush(TimedEntry entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), TimedGreater{});
}

void Simulator::RungInsert(TimedEntry entry) {
  if (rung_.size() - rung_pos_ >= kMaxRungEntries) {
    HeapPush(entry);  // dense window: bail before the insert turns O(n)
    return;
  }
  // New entries carry the largest seq so far, so upper_bound on (time, seq)
  // degenerates to "after every entry with time <= entry.time" — for the
  // common monotone-timer pattern that is the tail, an O(1) append.
  auto it = std::upper_bound(
      rung_.begin() + static_cast<ptrdiff_t>(rung_pos_), rung_.end(), entry,
      [](const TimedEntry& a, const TimedEntry& b) {
        if (a.time_ns != b.time_ns) {
          return a.time_ns < b.time_ns;
        }
        return a.seq < b.seq;
      });
  if (it != rung_.end()) {
    HeapPush(entry);  // mid-run insert would memmove the tail
    return;
  }
  rung_.push_back(entry);
}

void Simulator::RefillRung() {
  QS_DCHECK(rung_pos_ == rung_.size());
  rung_.clear();
  rung_pos_ = 0;
  if (heap_.empty()) {
    return;
  }
  // Window the rung at the heap's minimum; successive min-heap pops emerge
  // in (time, seq) order, so the rung is born sorted. The batch is capped —
  // in-window entries left behind (or overflowed by RungInsert) are merged
  // back in by Step()'s front comparison.
  rung_end_ns_ = heap_.front().time_ns + kRungWidthNs;
  while (!heap_.empty() && heap_.front().time_ns < rung_end_ns_ &&
         rung_.size() < kMaxRungEntries) {
    rung_.push_back(heap_.front());
    std::pop_heap(heap_.begin(), heap_.end(), TimedGreater{});
    heap_.pop_back();
  }
}

std::optional<int64_t> Simulator::EarliestEntryTimeNs() const {
  if (now_count_ > 0) {
    // Now-lane entries are at now_, which lower-bounds every timed entry.
    return now_.nanos();
  }
  std::optional<int64_t> earliest;
  if (rung_pos_ < rung_.size()) {
    earliest = rung_[rung_pos_].time_ns;
  }
  if (!heap_.empty() &&
      (!earliest.has_value() || heap_.front().time_ns < *earliest)) {
    earliest = heap_.front().time_ns;
  }
  return earliest;
}

// --- Scheduling -------------------------------------------------------------

EventId Simulator::Schedule(Duration delay, SmallFn fn) {
  if (delay < Duration::Zero()) {
    // Negative delays arise legitimately from absolute-time arithmetic on
    // deadlines already in the past (SleepUntil(t) with t < Now(), re-arming
    // a timeout after a stall). They mean "as soon as possible": clamp into
    // the now lane, where the event fires in FIFO order with other ready
    // work instead of time-travelling or aborting. A *hugely* negative delay
    // is not a past deadline, though — it is arithmetic underflow (e.g.
    // subtracting Duration::Max()), and silently clamping one would mask the
    // bug, so debug builds reject it.
    QS_DCHECK_MSG(delay.nanos() > INT64_MIN / 2,
                  "delay is absurdly negative: arithmetic underflow, not a "
                  "past deadline");
    delay = Duration::Zero();
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, SmallFn fn) {
  if (tearing_down_) {
    return kInvalidEventId;
  }
  QS_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  const EventId id = AllocSlot(std::move(fn));
  const uint64_t seq = next_seq_++;
  ++live_events_;
  if (when == now_) {
    NowLanePush(NowEntry{id, {}});  // seq is implicit: the ring is FIFO
  } else if (when.nanos() < rung_end_ns_) {
    RungInsert(TimedEntry{when.nanos(), seq, id});
  } else {
    HeapPush(TimedEntry{when.nanos(), seq, id});
  }
  return id;
}

void Simulator::Post(SmallFn fn) {
  if (tearing_down_) {
    return;  // mirror ScheduleAt: drop wakeups scheduled by dying fibers
  }
  ++live_events_;
  NowLanePush(NowEntry{kInvalidEventId, std::move(fn)});
}

void Simulator::Cancel(EventId id) {
  EventSlot* slot = ResolveLive(id);
  if (slot == nullptr) {
    return;  // unknown, already fired, or already cancelled
  }
  slot->fn.Reset();
  FreeSlot(id);
  --live_events_;
  // The queue entry (now lane, rung, or heap) remains and is skipped lazily
  // when popped: its generation no longer matches.
}

// --- Execution --------------------------------------------------------------

bool Simulator::Step() {
  for (;;) {
    if (rung_pos_ == rung_.size() && now_count_ == 0) {
      if (heap_.empty()) {
        return false;
      }
      RefillRung();
    }
    // Merge the rung and heap fronts into one timed candidate (the rung
    // usually holds the minimum, but a dense window overflows to the heap).
    const TimedEntry* timed = rung_pos_ < rung_.size() ? &rung_[rung_pos_] : nullptr;
    bool from_heap = false;
    if (!heap_.empty() &&
        (timed == nullptr || TimedGreater{}(*timed, heap_.front()))) {
      timed = &heap_.front();
      from_heap = true;
    }
    int64_t time_ns;
    SmallFn fn;
    // A timed entry at time == now_ was scheduled before now_ reached that
    // time, hence precedes every now-lane entry (scheduled at now_) in
    // sequence order: timed-at-now fires before the now lane.
    if (timed != nullptr && (now_count_ == 0 || timed->time_ns <= now_.nanos())) {
      time_ns = timed->time_ns;
      const EventId id = timed->id;
      if (from_heap) {
        std::pop_heap(heap_.begin(), heap_.end(), TimedGreater{});
        heap_.pop_back();
      } else {
        ++rung_pos_;
      }
      EventSlot* slot = ResolveLive(id);
      if (slot == nullptr) {
        continue;  // cancelled: skip and keep draining
      }
      fn = std::move(slot->fn);
      FreeSlot(id);
    } else {
      NowEntry entry = NowLanePop();
      time_ns = now_.nanos();
      if (entry.id == kInvalidEventId) {
        fn = std::move(entry.fn);  // inline Post() event: nothing to resolve
      } else {
        EventSlot* slot = ResolveLive(entry.id);
        if (slot == nullptr) {
          continue;  // cancelled: skip and keep draining
        }
        fn = std::move(slot->fn);
        FreeSlot(entry.id);
      }
    }
    --live_events_;
    ++fired_events_;
    QS_DCHECK(time_ns >= now_.nanos());
    now_ = SimTime::FromNanos(time_ns);
    fn();
    return true;
  }
}

void Simulator::RunUntilIdle() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  for (;;) {
    const std::optional<int64_t> next = EarliestEntryTimeNs();
    if (!next.has_value() || *next > deadline.nanos()) {
      break;
    }
    Step();
  }
  if (deadline > now_) {
    now_ = deadline;
  }
}

// --- Fibers -----------------------------------------------------------------

Fiber Simulator::Spawn(Task<> body, std::string name) {
  QS_CHECK_MSG(!tearing_down_, "Spawn during simulator teardown");
  internal::FiberState* state = fiber_arena_->Alloc();
  state->sim = this;
  state->id = next_fiber_id_++;
  state->name = std::move(name);
  state->refs = 1;  // the root coroutine's reference
  state->done = false;

  RootTask root = RunAsRoot(std::move(body));
  root.handle.promise().state = state;
  state->handle = root.handle;

  state->live_next = live_head_;
  state->live_prev = nullptr;
  if (live_head_ != nullptr) {
    live_head_->live_prev = state;
  }
  live_head_ = state;
  ++live_fiber_count_;

  // Start the fiber from the event loop (never synchronously inside Spawn),
  // so spawn order — not coroutine nesting — determines execution order.
  auto handle = root.handle;
  Post([handle] { handle.resume(); });
  return Fiber(fiber_arena_, state);
}

void Simulator::LiveListRemove(internal::FiberState& state) {
  if (state.live_prev != nullptr) {
    state.live_prev->live_next = state.live_next;
  } else {
    live_head_ = state.live_next;
  }
  if (state.live_next != nullptr) {
    state.live_next->live_prev = state.live_prev;
  }
  state.live_prev = nullptr;
  state.live_next = nullptr;
}

void Simulator::DropRootRef(internal::FiberState* state) {
  if (--state->refs == 0) {
    fiber_arena_->Release(state);
  }
}

void Simulator::FiberFinished(internal::FiberState& state) {
  state.done = true;
  state.handle = {};
  LiveListRemove(state);
  QS_DCHECK(live_fiber_count_ > 0);
  --live_fiber_count_;
  if (state.error && state.join_head == nullptr) {
    ++failed_fibers_;
    try {
      std::rethrow_exception(state.error);
    } catch (const std::exception& e) {
      QS_LOG_ERROR("sim", "fiber '%s' failed: %s", state.name.c_str(), e.what());
    } catch (...) {
      QS_LOG_ERROR("sim", "fiber '%s' failed with a non-std exception",
                   state.name.c_str());
    }
  }
  WakeJoiners(state);
  DropRootRef(&state);
}

void Simulator::WakeJoiners(internal::FiberState& state) {
  for (internal::JoinWaiter* waiter = state.join_head; waiter != nullptr;) {
    // The node lives in the joiner's frame; once resumed (later, from the now
    // lane) the frame moves past the await and the node dies — read `next`
    // before scheduling.
    internal::JoinWaiter* next = waiter->next;
    const std::coroutine_handle<> h = waiter->handle;
    Post([h] { h.resume(); });
    waiter = next;
  }
  state.join_head = nullptr;
  state.join_tail = nullptr;
}

}  // namespace quicksand
