#include "quicksand/sim/simulator.h"

#include <utility>

#include "quicksand/common/logging.h"

namespace quicksand {

namespace {

SimTime LoggerClock(void* arg) { return static_cast<Simulator*>(arg)->Now(); }

}  // namespace

// The root coroutine wrapping every fiber body. Self-destroys at completion
// after notifying the simulator, so finished fibers hold no memory beyond
// their (shared) FiberState.
struct Simulator::RootTask {
  struct promise_type {
    std::shared_ptr<internal::FiberState> state;

    RootTask get_return_object() {
      return RootTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) const noexcept {
        std::shared_ptr<internal::FiberState> state = std::move(h.promise().state);
        // Destroying at the final suspend point is legal; all locals are
        // already destroyed, only the frame itself remains.
        h.destroy();
        if (state != nullptr && state->sim != nullptr) {
          state->sim->FiberFinished(*state);
        }
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { state->error = std::current_exception(); }
  };

  std::coroutine_handle<promise_type> handle;
};

namespace {

Simulator::RootTask RunAsRoot(Task<> body) { co_await std::move(body); }

}  // namespace

Simulator::Simulator() : now_(SimTime::Zero()) {
  Logger::Get().SetClock(&LoggerClock, this);
}

Simulator::~Simulator() {
  tearing_down_ = true;
  for (auto& [id, handle] : live_fibers_) {
    handle.destroy();
  }
  live_fibers_.clear();
  Logger::Get().ClearClock();
}

EventId Simulator::Schedule(Duration delay, std::function<void()> fn) {
  return ScheduleAt(now_ + (delay > Duration::Zero() ? delay : Duration::Zero()),
                    std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (tearing_down_) {
    return kInvalidEventId;
  }
  QS_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  const EventId id = next_event_id_++;
  queue_.push(Event{when, next_seq_++, id});
  event_fns_.emplace(id, std::move(fn));
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) {
    return;
  }
  if (event_fns_.erase(id) > 0) {
    cancelled_.insert(id);
  }
}

Fiber Simulator::Spawn(Task<> body, std::string name) {
  QS_CHECK_MSG(!tearing_down_, "Spawn during simulator teardown");
  auto state = std::make_shared<internal::FiberState>();
  state->sim = this;
  state->id = next_fiber_id_++;
  state->name = std::move(name);

  RootTask root = RunAsRoot(std::move(body));
  root.handle.promise().state = state;
  live_fibers_.emplace(state->id, root.handle);

  // Start the fiber from the event loop (never synchronously inside Spawn),
  // so spawn order — not coroutine nesting — determines execution order.
  auto handle = root.handle;
  Schedule(Duration::Zero(), [handle] { handle.resume(); });
  return Fiber(std::move(state));
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    if (cancelled_.erase(event.id) > 0) {
      continue;
    }
    auto it = event_fns_.find(event.id);
    if (it == event_fns_.end()) {
      continue;  // cancelled
    }
    std::function<void()> fn = std::move(it->second);
    event_fns_.erase(it);
    QS_DCHECK(event.time >= now_);
    now_ = event.time;
    fn();
    return true;
  }
  return false;
}

void Simulator::RunUntilIdle() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Step();
  }
  if (deadline > now_) {
    now_ = deadline;
  }
}

void Simulator::FiberFinished(internal::FiberState& state) {
  state.done = true;
  live_fibers_.erase(state.id);
  if (state.error && state.join_waiters.empty()) {
    ++failed_fibers_;
    try {
      std::rethrow_exception(state.error);
    } catch (const std::exception& e) {
      QS_LOG_ERROR("sim", "fiber '%s' failed: %s", state.name.c_str(), e.what());
    } catch (...) {
      QS_LOG_ERROR("sim", "fiber '%s' failed with a non-std exception",
                   state.name.c_str());
    }
  }
  WakeJoiners(state);
}

void Simulator::WakeJoiners(internal::FiberState& state) {
  for (std::coroutine_handle<> waiter : state.join_waiters) {
    Schedule(Duration::Zero(), [waiter] { waiter.resume(); });
  }
  state.join_waiters.clear();
}

}  // namespace quicksand
