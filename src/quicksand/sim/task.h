// Task<T>: the coroutine type used for all simulated activities.
//
// A Task is lazy: creating one does not run any code. It starts when awaited
// (by another Task) or when handed to Simulator::Spawn as the body of a
// fiber. Completion resumes the awaiting coroutine via symmetric transfer, so
// deep call chains do not grow the host stack.
//
// Ownership: the Task object owns the coroutine frame and destroys it in its
// destructor. A parent frame that holds a child Task (e.g. as the temporary
// in `co_await Child()`) therefore transitively owns the child's frame, which
// lets the simulator tear down whole fiber trees by destroying root frames.
//
// COMPILER WORKAROUND (GCC 12): do not write `co_await F(args...)` when any
// argument is a non-trivially-destructible temporary (a std::string, a
// lambda capturing one, ...). GCC 12 double-destroys such temporaries in
// co_await operand position, corrupting the heap. Materialize the task
// first:
//
//     auto task = F(std::move(heavy_arg));   // temporaries die here, once
//     result = co_await std::move(task);
//
// Calls whose arguments are all references or trivially-copyable values are
// safe to await directly. tests/sim/gcc_coro_regression_test.cc pins this.
//
// LIFETIME RULE: coroutine functions must take parameters by value, or by
// reference ONLY to objects that outlive the coroutine's completion
// (Simulator&, Runtime&, Machine&). Never a forwarding/const reference that
// can bind a caller temporary — Tasks are lazy, so the temporary is dead
// before the body runs (this bit Runtime::Create once; see its comment).

#ifndef QUICKSAND_SIM_TASK_H_
#define QUICKSAND_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "quicksand/common/check.h"
#include "quicksand/sim/frame_pool.h"

namespace quicksand {

template <typename T>
class Task;

namespace internal {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  // Route every Task frame through the size-class pool (see frame_pool.h).
  // The sized delete is required: the pool keys its freelists on the frame
  // size, which the runtime passes back at destroy time.
  static void* operator new(size_t bytes) { return FramePool::Alloc(bytes); }
  static void operator delete(void* p, size_t bytes) {
    FramePool::Free(p, bytes);
  }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
      std::coroutine_handle<> cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
};

template <typename T>
struct TaskPromise : TaskPromiseBase {
  std::optional<T> value;
  std::exception_ptr error;

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
  void unhandled_exception() { error = std::current_exception(); }
};

template <>
struct TaskPromise<void> : TaskPromiseBase {
  std::exception_ptr error;

  Task<void> get_return_object();
  void return_void() {}
  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace internal

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = internal::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }

  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  // Awaiting a Task starts it and suspends the awaiter until it completes.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    QS_DCHECK(handle_ && !handle_.done());
    handle_.promise().continuation = parent;
    return handle_;
  }
  T await_resume() {
    auto& promise = handle_.promise();
    if (promise.error) {
      std::rethrow_exception(promise.error);
    }
    if constexpr (!std::is_void_v<T>) {
      QS_CHECK_MSG(promise.value.has_value(), "Task completed without a value");
      return std::move(*promise.value);
    }
  }

  // Relinquishes ownership of the frame (used by Simulator::Spawn, which
  // manages root frames itself).
  Handle Release() { return std::exchange(handle_, {}); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

namespace internal {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace internal

}  // namespace quicksand

#endif  // QUICKSAND_SIM_TASK_H_
