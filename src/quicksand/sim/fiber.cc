#include "quicksand/sim/fiber.h"

#include "quicksand/sim/simulator.h"

namespace quicksand {

namespace {

struct JoinAwaiter {
  internal::FiberState& state;

  bool await_ready() const noexcept { return state.done; }
  void await_suspend(std::coroutine_handle<> h) { state.join_waiters.push_back(h); }
  void await_resume() const noexcept {}
};

}  // namespace

Task<> Fiber::Join() {
  QS_CHECK_MSG(state_ != nullptr, "Join() on an empty Fiber");
  if (!state_->done) {
    co_await JoinAwaiter{*state_};
  }
  if (state_->error) {
    std::rethrow_exception(state_->error);
  }
}

Task<> JoinAll(std::vector<Fiber> fibers) {
  for (Fiber& fiber : fibers) {
    co_await fiber.Join();
  }
}

}  // namespace quicksand
