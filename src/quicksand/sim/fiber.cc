#include "quicksand/sim/fiber.h"

#include "quicksand/sim/simulator.h"

namespace quicksand {

namespace {

// The awaiter is the wait-list node: it lives in Join()'s coroutine frame for
// the whole suspension, so enqueueing is a pointer append with no allocation.
struct JoinAwaiter {
  internal::FiberState& state;
  internal::JoinWaiter node;

  bool await_ready() const noexcept { return state.done; }
  void await_suspend(std::coroutine_handle<> h) {
    node.handle = h;
    node.next = nullptr;
    if (state.join_tail != nullptr) {
      state.join_tail->next = &node;
    } else {
      state.join_head = &node;
    }
    state.join_tail = &node;
  }
  void await_resume() const noexcept {}
};

}  // namespace

Task<> Fiber::Join() {
  QS_CHECK_MSG(state_ != nullptr, "Join() on an empty Fiber");
  if (!state_->done) {
    co_await JoinAwaiter{*state_};
  }
  if (state_->error) {
    std::rethrow_exception(state_->error);
  }
}

Task<> JoinAll(std::vector<Fiber> fibers) {
  for (Fiber& fiber : fibers) {
    co_await fiber.Join();
  }
}

}  // namespace quicksand
