// FramePool: a size-class freelist for coroutine frames.
//
// Every Task<T> body, root wrapper, and coroutine-returning primitive
// (Mutex::Lock, channel ops, Fiber::Join) allocates its frame through the
// promise's operator new. With a million fibers in flight (bench/scale_sim)
// that is millions of malloc/free pairs of a handful of distinct sizes, and
// the frames end up scattered across the heap — the event loop's dominant
// cache-miss source. The pool carves frames from large blocks and recycles
// them through per-size-class freelists: allocation is a pointer pop, frames
// of the same coroutine type are packed adjacently (spawn order ~ resume
// order, so the prefetcher gets sequential lines), and nothing is returned
// to the system until process exit.
//
// Single-threaded by design, like the simulator itself. Reuse is LIFO and
// addresses never feed into event ordering, so determinism is unaffected.
//
// Under AddressSanitizer the pool degrades to plain new/delete: recycling
// frames would blind ASan to coroutine use-after-free, and the sanitizer CI
// lane exists precisely to catch those.

#ifndef QUICKSAND_SIM_FRAME_POOL_H_
#define QUICKSAND_SIM_FRAME_POOL_H_

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define QS_FRAME_POOL_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define QS_FRAME_POOL_PASSTHROUGH 1
#endif
#endif

namespace quicksand {

class FramePool {
 public:
#ifdef QS_FRAME_POOL_PASSTHROUGH
  static void* Alloc(size_t bytes) { return ::operator new(bytes); }
  static void Free(void* p, size_t /*bytes*/) { ::operator delete(p); }
#else
  static void* Alloc(size_t bytes) {
    const size_t cls = ClassOf(bytes);
    if (cls >= kClasses) {
      return ::operator new(bytes);
    }
    State& state = GetState();
    void*& head = state.freelists[cls];
    if (head != nullptr) {
      void* p = head;
      head = *static_cast<void**>(p);
      return p;
    }
    const size_t want = (cls + 1) * kGranularity;
    if (state.block_left < want) {
      state.blocks.push_back(std::make_unique<unsigned char[]>(kBlockBytes));
      state.block_cursor = state.blocks.back().get();
      state.block_left = kBlockBytes;
    }
    void* p = state.block_cursor;
    state.block_cursor += want;
    state.block_left -= want;
    return p;
  }

  static void Free(void* p, size_t bytes) {
    const size_t cls = ClassOf(bytes);
    if (cls >= kClasses) {
      ::operator delete(p);
      return;
    }
    State& state = GetState();
    *static_cast<void**>(p) = state.freelists[cls];
    state.freelists[cls] = p;
  }

 private:
  // 64-byte classes up to 2 KiB cover every coroutine frame in the tree
  // (typical Task<> frames are 100-400 bytes); larger frames fall through
  // to the system allocator.
  static constexpr size_t kGranularity = 64;
  static constexpr size_t kClasses = 32;
  static constexpr size_t kBlockBytes = 256 * 1024;

  static size_t ClassOf(size_t bytes) {
    return bytes == 0 ? 0 : (bytes - 1) / kGranularity;
  }

  struct State {
    void* freelists[kClasses] = {};
    std::vector<std::unique_ptr<unsigned char[]>> blocks;
    unsigned char* block_cursor = nullptr;
    size_t block_left = 0;
  };

  static State& GetState() {
    static State state;
    return state;
  }
#endif  // QS_FRAME_POOL_PASSTHROUGH
};

}  // namespace quicksand

#endif  // QUICKSAND_SIM_FRAME_POOL_H_
