// Simulated synchronization primitives: Mutex, CondVar, Semaphore, SimEvent,
// WaitGroup.
//
// The simulation is single-threaded, so these exist to order *coroutine*
// interleavings (every co_await is a potential switch point), not to guard
// against data races. All primitives are fair-ish (FIFO wakeup) but permit
// barging; waiters re-check their condition in a loop.

#ifndef QUICKSAND_SIM_SYNC_H_
#define QUICKSAND_SIM_SYNC_H_

#include <cstdint>

#include "quicksand/common/check.h"
#include "quicksand/sim/task.h"
#include "quicksand/sim/wait_queue.h"

namespace quicksand {

class Mutex;

// RAII unlocker returned by Mutex::Acquire().
class MutexGuard {
 public:
  MutexGuard() = default;
  explicit MutexGuard(Mutex* mu) : mu_(mu) {}

  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;
  MutexGuard(MutexGuard&& other) noexcept : mu_(std::exchange(other.mu_, nullptr)) {}
  MutexGuard& operator=(MutexGuard&& other) noexcept;

  ~MutexGuard();

  void Unlock();

 private:
  Mutex* mu_ = nullptr;
};

class Mutex {
 public:
  explicit Mutex(Simulator& sim) : waiters_(sim) {}

  Task<> Lock() {
    while (locked_) {
      co_await waiters_.Park();
    }
    locked_ = true;
  }

  // co_await mu.Acquire() yields a guard that unlocks on destruction.
  Task<MutexGuard> Acquire() {
    co_await Lock();
    co_return MutexGuard(this);
  }

  bool TryLock() {
    if (locked_) {
      return false;
    }
    locked_ = true;
    return true;
  }

  void Unlock() {
    QS_CHECK_MSG(locked_, "Unlock of an unlocked Mutex");
    locked_ = false;
    waiters_.WakeOne();
  }

  bool locked() const { return locked_; }

 private:
  friend class CondVar;

  WaitQueue waiters_;
  bool locked_ = false;
};

inline MutexGuard& MutexGuard::operator=(MutexGuard&& other) noexcept {
  if (this != &other) {
    Unlock();
    mu_ = std::exchange(other.mu_, nullptr);
  }
  return *this;
}

inline MutexGuard::~MutexGuard() { Unlock(); }

inline void MutexGuard::Unlock() {
  if (mu_ != nullptr) {
    std::exchange(mu_, nullptr)->Unlock();
  }
}

class CondVar {
 public:
  explicit CondVar(Simulator& sim) : waiters_(sim) {}

  // Pre: caller holds `mu`. Atomically releases it, waits for a notify, and
  // reacquires before returning. Subject to spurious-looking wakeups: always
  // wait in a predicate loop.
  Task<> Wait(Mutex& mu) {
    mu.Unlock();
    co_await waiters_.Park();
    co_await mu.Lock();
  }

  void NotifyOne() { waiters_.WakeOne(); }
  void NotifyAll() { waiters_.WakeAll(); }

 private:
  WaitQueue waiters_;
};

class Semaphore {
 public:
  Semaphore(Simulator& sim, int64_t initial) : waiters_(sim), count_(initial) {
    QS_CHECK(initial >= 0);
  }

  Task<> Acquire(int64_t n = 1) {
    QS_CHECK(n > 0);
    while (count_ < n) {
      co_await waiters_.Park();
    }
    count_ -= n;
  }

  bool TryAcquire(int64_t n = 1) {
    if (count_ < n) {
      return false;
    }
    count_ -= n;
    return true;
  }

  void Release(int64_t n = 1) {
    QS_CHECK(n > 0);
    count_ += n;
    waiters_.WakeAll();
  }

  int64_t count() const { return count_; }

 private:
  WaitQueue waiters_;
  int64_t count_;
};

// Manual-reset event: Wait() returns once Set() has been called (level-
// triggered, like an eventfd in semaphore-less mode).
class SimEvent {
 public:
  explicit SimEvent(Simulator& sim) : waiters_(sim) {}

  Task<> Wait() {
    while (!set_) {
      co_await waiters_.Park();
    }
  }

  void Set() {
    set_ = true;
    waiters_.WakeAll();
  }

  void Reset() { set_ = false; }
  bool is_set() const { return set_; }

 private:
  WaitQueue waiters_;
  bool set_ = false;
};

// Counts outstanding work items; Wait() resumes when the count drops to zero.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) : waiters_(sim) {}

  void Add(int64_t n = 1) {
    QS_CHECK(count_ + n >= 0);
    count_ += n;
  }

  void Done() {
    QS_CHECK_MSG(count_ > 0, "WaitGroup::Done without matching Add");
    if (--count_ == 0) {
      waiters_.WakeAll();
    }
  }

  Task<> Wait() {
    while (count_ > 0) {
      co_await waiters_.Park();
    }
  }

  int64_t count() const { return count_; }

 private:
  WaitQueue waiters_;
  int64_t count_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_SIM_SYNC_H_
