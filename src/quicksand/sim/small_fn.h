// SmallFn: the event callback type of the discrete-event core.
//
// A move-only `void()` callable with inline storage sized for the callbacks
// the simulator actually schedules — a captured coroutine handle (8 bytes), a
// this-pointer plus a couple of ints, or a moved-in std::function (32 bytes).
// Anything that fits is stored in place, so the schedule/fire hot path never
// touches the heap; larger callables fall back to a single heap allocation.
//
// This replaces std::function in Simulator::Schedule: std::function's
// type-erasure allocates for the capture lists our wakeup lambdas carry, and
// at millions of events per second that allocation (plus its free at fire
// time) dominated the event loop.

#ifndef QUICKSAND_SIM_SMALL_FN_H_
#define QUICKSAND_SIM_SMALL_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace quicksand {

class SmallFn {
 public:
  static constexpr size_t kInlineBytes = 48;

  SmallFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, SmallFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs *src into dst and destroys *src (storage relocation for
    // slab growth and SmallFn moves; both storages are raw and unconstructed
    // or moved-from afterwards).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) { delete *static_cast<Fn**>(p); },
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace quicksand

#endif  // QUICKSAND_SIM_SMALL_FN_H_
