// Channel<T>: a bounded, closable FIFO connecting producer and consumer
// coroutines (the building block for pipelines and RPC demultiplexing).

#ifndef QUICKSAND_SIM_CHANNEL_H_
#define QUICKSAND_SIM_CHANNEL_H_

#include <deque>
#include <optional>

#include "quicksand/common/check.h"
#include "quicksand/sim/task.h"
#include "quicksand/sim/wait_queue.h"

namespace quicksand {

template <typename T>
class Channel {
 public:
  Channel(Simulator& sim, size_t capacity)
      : capacity_(capacity), not_full_(sim), not_empty_(sim) {
    QS_CHECK(capacity >= 1);
  }

  // Blocks while full. Returns false (dropping the value) if the channel is
  // or becomes closed.
  Task<bool> Send(T value) {
    for (;;) {
      if (closed_) {
        co_return false;
      }
      if (items_.size() < capacity_) {
        items_.push_back(std::move(value));
        not_empty_.WakeOne();
        co_return true;
      }
      co_await not_full_.Park();
    }
  }

  // Non-blocking send; fails when full or closed.
  bool TrySend(T value) {
    if (closed_ || items_.size() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(value));
    not_empty_.WakeOne();
    return true;
  }

  // Blocks while empty. Returns nullopt once the channel is closed *and*
  // drained.
  Task<std::optional<T>> Recv() {
    for (;;) {
      if (!items_.empty()) {
        T value = std::move(items_.front());
        items_.pop_front();
        not_full_.WakeOne();
        co_return std::optional<T>(std::move(value));
      }
      if (closed_) {
        co_return std::nullopt;
      }
      co_await not_empty_.Park();
    }
  }

  std::optional<T> TryRecv() {
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.WakeOne();
    return std::optional<T>(std::move(value));
  }

  // Idempotent. Wakes all blocked senders (they fail) and receivers (they
  // drain remaining items, then observe closure).
  void Close() {
    closed_ = true;
    not_full_.WakeAll();
    not_empty_.WakeAll();
  }

  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return items_.empty(); }
  bool closed() const { return closed_; }

 private:
  size_t capacity_;
  bool closed_ = false;
  std::deque<T> items_;
  WaitQueue not_full_;
  WaitQueue not_empty_;
};

}  // namespace quicksand

#endif  // QUICKSAND_SIM_CHANNEL_H_
