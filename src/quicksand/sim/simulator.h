// Simulator: the discrete-event core.
//
// A single event queue orders all activity by (virtual time, insertion
// sequence). Coroutines suspend by scheduling their own resumption — directly
// for Sleep, or indirectly through WaitQueue-based primitives. The whole
// simulation is single-threaded and deterministic: a given program and seed
// always produce the same event order.

#ifndef QUICKSAND_SIM_SIMULATOR_H_
#define QUICKSAND_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "quicksand/common/check.h"
#include "quicksand/common/time.h"
#include "quicksand/sim/fiber.h"
#include "quicksand/sim/task.h"

namespace quicksand {

// Identifies a scheduled event so it can be cancelled (e.g. RPC timeouts).
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // --- Event scheduling -----------------------------------------------------

  EventId Schedule(Duration delay, std::function<void()> fn);
  EventId ScheduleAt(SimTime when, std::function<void()> fn);
  // Cancelling an already-fired or unknown event is a no-op.
  void Cancel(EventId id);

  // --- Fibers ---------------------------------------------------------------

  // Starts `body` as a detached fiber at the current time.
  Fiber Spawn(Task<> body, std::string name = "");

  // Runs `body` to completion, advancing virtual time as needed, and returns
  // its result. Aborts if the simulation deadlocks (event queue empties while
  // the task is still suspended). Intended for tests and benchmark drivers.
  template <typename T>
  T BlockOn(Task<T> body);

  // --- Execution ------------------------------------------------------------

  // Processes a single event, advancing time to it. Returns false if the
  // queue is empty.
  bool Step();

  // Processes events until the queue is empty.
  void RunUntilIdle();

  // Processes all events with time <= deadline, then sets Now() == deadline.
  void RunUntil(SimTime deadline);
  void RunFor(Duration d) { RunUntil(now_ + d); }

  // --- Awaitables -----------------------------------------------------------

  // co_await sim.Sleep(d): resume after d of virtual time.
  auto Sleep(Duration d) {
    struct Awaiter {
      Simulator& sim;
      Duration delay;
      bool await_ready() const noexcept { return delay <= Duration::Zero(); }
      void await_suspend(std::coroutine_handle<> h) {
        sim.Schedule(delay, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  // co_await sim.SleepUntil(t): resume at absolute time t (immediately if past).
  auto SleepUntil(SimTime t) { return Sleep(t - now_); }

  // co_await sim.Yield(): requeue behind events already pending at Now().
  auto Yield() {
    struct Awaiter {
      Simulator& sim;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.Schedule(Duration::Zero(), [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  // --- Introspection --------------------------------------------------------

  size_t live_fiber_count() const { return live_fibers_.size(); }
  int64_t failed_fiber_count() const { return failed_fibers_; }
  size_t pending_event_count() const { return queue_.size() - cancelled_.size(); }

  // Implementation detail of Spawn; public only so the root-wrapping
  // coroutine in simulator.cc can name it.
  struct RootTask;

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    EventId id;
    // Ordering for priority_queue (min-heap via greater).
    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  void FiberFinished(internal::FiberState& state);
  void WakeJoiners(internal::FiberState& state);

  SimTime now_;
  uint64_t next_seq_ = 1;
  EventId next_event_id_ = 1;
  uint64_t next_fiber_id_ = 1;
  bool tearing_down_ = false;
  int64_t failed_fibers_ = 0;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::unordered_map<EventId, std::function<void()>> event_fns_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_map<uint64_t, std::coroutine_handle<>> live_fibers_;
};

template <typename T>
T Simulator::BlockOn(Task<T> body) {
  std::optional<T> result;
  // A free coroutine (not a capturing lambda) so all state lives in the frame.
  struct Runner {
    static Task<> Run(Task<T> inner, std::optional<T>& out) {
      out.emplace(co_await std::move(inner));
    }
  };
  Fiber fiber = Spawn(Runner::Run(std::move(body), result), "block_on");
  while (!fiber.done()) {
    QS_CHECK_MSG(Step(), "Simulator::BlockOn deadlocked: event queue empty");
  }
  QS_CHECK_MSG(!fiber.failed(), "Simulator::BlockOn task failed with an exception");
  return std::move(*result);
}

template <>
inline void Simulator::BlockOn(Task<void> body) {
  struct Runner {
    static Task<> Run(Task<void> inner) { co_await std::move(inner); }
  };
  Fiber fiber = Spawn(Runner::Run(std::move(body)), "block_on");
  while (!fiber.done()) {
    QS_CHECK_MSG(Step(), "Simulator::BlockOn deadlocked: event queue empty");
  }
  QS_CHECK_MSG(!fiber.failed(), "Simulator::BlockOn task failed with an exception");
}

}  // namespace quicksand

#endif  // QUICKSAND_SIM_SIMULATOR_H_
