// Simulator: the discrete-event core.
//
// A single logical event queue orders all activity by (virtual time, insertion
// sequence). Coroutines suspend by scheduling their own resumption — directly
// for Sleep, or indirectly through WaitQueue-based primitives. The whole
// simulation is single-threaded and deterministic: a given program and seed
// always produce the same event order.
//
// The implementation is built for million-event throughput (DESIGN.md §12):
//
//  * Event records live in a flat slab with inline small-callback storage
//    (SmallFn) and generation-tagged slots. Schedule, Cancel, and fire are
//    O(1) slot operations with zero hashing and — for the common small
//    lambda — zero allocation. An EventId encodes (slot index, generation);
//    a stale id (already fired or cancelled) simply fails its generation
//    check, so Cancel of anything is a safe no-op.
//  * The queue itself is two timed tiers fronted by a FIFO "now lane":
//      - now lane: a ring of events scheduled at exactly Now(). Spawn,
//        Yield, and every WaitQueue wakeup land here — the dominant event
//        class — and fire in strict FIFO order for O(1) push/pop. These
//        arrive via Post(), which stores the callback inline in the ring
//        (no cancellation handle, so no slab slot and no random access).
//      - rung: a sorted run covering the next kRungWidth of virtual time,
//        drained from the front; near-future timers (cpu slices, short
//        sleeps) insert here, almost always at the tail.
//      - heap: a min-heap of plain 24-byte records for everything beyond
//        the rung window, plus overflow from a dense window (the rung is
//        size-capped so its sorted insert never turns O(n)); refilling the
//        rung pops the heap's prefix (which emerges already sorted), and
//        Step() merges the rung and heap fronts.
//    Ordering is bit-identical to a single (time, seq) priority queue: timed
//    entries at time T were all scheduled before Now() reached T, so they
//    precede every now-lane entry at T (scheduled at T) in sequence order,
//    and the rung/heap merge preserves (time, seq) across the split.

#ifndef QUICKSAND_SIM_SIMULATOR_H_
#define QUICKSAND_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "quicksand/common/check.h"
#include "quicksand/common/time.h"
#include "quicksand/sim/fiber.h"
#include "quicksand/sim/small_fn.h"
#include "quicksand/sim/task.h"

namespace quicksand {

// Identifies a scheduled event so it can be cancelled (e.g. RPC timeouts).
// Encodes (slot index + 1) << 32 | slot generation; 0 is never produced.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // --- Event scheduling -----------------------------------------------------

  // Negative delays are clamped to zero (see simulator.cc for the rationale).
  EventId Schedule(Duration delay, SmallFn fn);
  EventId ScheduleAt(SimTime when, SmallFn fn);
  // Fires `fn` at Now(), in FIFO order with every other now-lane event, but
  // without a cancellation handle: the callback lives inline in the ring, so
  // the slab (and its two dependent random accesses per event) is bypassed
  // entirely. This is the fast path for the dominant event class — Spawn
  // starts, Yield, and wait-queue wakeups — none of which are ever cancelled.
  void Post(SmallFn fn);
  // Cancelling an already-fired or unknown event is a no-op.
  void Cancel(EventId id);

  // --- Fibers ---------------------------------------------------------------

  // Starts `body` as a detached fiber at the current time.
  Fiber Spawn(Task<> body, std::string name = "");

  // Runs `body` to completion, advancing virtual time as needed, and returns
  // its result. Aborts if the simulation deadlocks (event queue empties while
  // the task is still suspended). Intended for tests and benchmark drivers.
  template <typename T>
  T BlockOn(Task<T> body);

  // --- Execution ------------------------------------------------------------

  // Processes a single event, advancing time to it. Returns false if the
  // queue is empty.
  bool Step();

  // Processes events until the queue is empty.
  void RunUntilIdle();

  // Processes all events with time <= deadline, then sets Now() == deadline.
  void RunUntil(SimTime deadline);
  void RunFor(Duration d) { RunUntil(now_ + d); }

  // --- Awaitables -----------------------------------------------------------

  // co_await sim.Sleep(d): resume after d of virtual time. A non-positive
  // delay resumes inline without suspending (the fiber keeps running ahead of
  // queued events) — SleepUntil on a past deadline must not reorder the
  // caller behind unrelated work.
  auto Sleep(Duration d) {
    struct Awaiter {
      Simulator& sim;
      Duration delay;
      bool await_ready() const noexcept { return delay <= Duration::Zero(); }
      void await_suspend(std::coroutine_handle<> h) {
        sim.Schedule(delay, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  // co_await sim.SleepUntil(t): resume at absolute time t (immediately if past).
  auto SleepUntil(SimTime t) { return Sleep(t - now_); }

  // co_await sim.Yield(): requeue behind events already pending at Now().
  auto Yield() {
    struct Awaiter {
      Simulator& sim;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.Post([h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  // --- Introspection --------------------------------------------------------

  size_t live_fiber_count() const { return live_fiber_count_; }
  int64_t failed_fiber_count() const { return failed_fibers_; }
  // Scheduled-but-not-yet-fired events, excluding cancelled ones. Tracked as
  // a direct live counter on the slab: the old queue-size-minus-cancelled-set
  // arithmetic silently underflowed when a cancelled id was double-counted.
  size_t pending_event_count() const { return live_events_; }
  // Total events fired since construction (perf accounting for benches).
  int64_t fired_event_count() const { return fired_events_; }

  // Implementation detail of Spawn; public only so the root-wrapping
  // coroutine in simulator.cc can name it.
  struct RootTask;

 private:
  // One slab slot. gen is odd while the slot holds a live event and even
  // while it is free; an EventId carries the odd gen it was allocated with,
  // so any pop or Cancel of a stale id fails the equality check.
  struct EventSlot {
    uint32_t gen = 0;
    uint32_t next_free = 0;
    SmallFn fn;
  };

  // A timed-tier record: 24 bytes, no indirection. Ordered by (time, seq).
  struct TimedEntry {
    int64_t time_ns;
    uint64_t seq;
    EventId id;
  };
  struct TimedGreater {
    bool operator()(const TimedEntry& a, const TimedEntry& b) const {
      if (a.time_ns != b.time_ns) {
        return a.time_ns > b.time_ns;
      }
      return a.seq > b.seq;
    }
  };

  // Width of the rung (tier-1) window of virtual time. Wide enough that cpu
  // slices and short sleeps land in the rung (sorted-run insert, usually at
  // the tail), narrow enough that a refill stays a small batch.
  static constexpr int64_t kRungWidthNs = 64 * 1000;
  // The rung is a performance heuristic, not a correctness boundary: Step()
  // compares the rung and heap fronts, so an entry inside the window may
  // legally overflow to the heap. RungInsert only ever appends at the tail
  // (non-tail inserts go to the heap instead — a mid-run insert is an O(n)
  // memmove), and this cap bounds the rung's live length so a dense window
  // (100k+ timers at the million-proclet scale) cannot bloat it.
  static constexpr size_t kMaxRungEntries = 4096;

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  // A now-lane ring entry. id == kInvalidEventId marks a Post() event whose
  // callback lives inline (uncancellable, so no slab slot is needed);
  // otherwise the entry is a slab-backed Schedule-at-now event.
  struct NowEntry {
    EventId id = kInvalidEventId;
    SmallFn fn;
  };

  EventId AllocSlot(SmallFn fn);
  // Returns the slot for a live id, or nullptr if the id is stale/invalid.
  EventSlot* ResolveLive(EventId id);
  void FreeSlot(EventId id);

  void NowLanePush(NowEntry entry);
  NowEntry NowLanePop();
  void GrowNowLane();

  void RungInsert(TimedEntry entry);
  void RefillRung();
  void HeapPush(TimedEntry entry);

  // Earliest entry (live or cancelled) across all tiers; nullopt when empty.
  // Includes cancelled entries deliberately: RunUntil's deadline check has
  // always been against the raw queue head.
  std::optional<int64_t> EarliestEntryTimeNs() const;

  void FiberFinished(internal::FiberState& state);
  void WakeJoiners(internal::FiberState& state);
  void DropRootRef(internal::FiberState* state);
  void LiveListRemove(internal::FiberState& state);

  SimTime now_;
  uint64_t next_seq_ = 1;
  uint64_t next_fiber_id_ = 1;
  bool tearing_down_ = false;
  int64_t failed_fibers_ = 0;

  // Event slab.
  std::vector<EventSlot> slots_;
  uint32_t free_head_ = kNoSlot;
  size_t live_events_ = 0;
  int64_t fired_events_ = 0;

  // Now lane: power-of-two ring of entries at time == now_. Post() events
  // carry their callback inline; Schedule-at-now events reference the slab.
  std::vector<NowEntry> now_lane_;
  size_t now_head_ = 0;
  size_t now_count_ = 0;

  // Rung: sorted by (time, seq), drained from rung_pos_; holds near-future
  // entries (inserted while < rung_end_ns_, or batched in by RefillRung).
  // Heap: min-heap over (time, seq) for everything else, including overflow
  // from a dense rung window. Step() merges the two fronts.
  std::vector<TimedEntry> rung_;
  size_t rung_pos_ = 0;
  int64_t rung_end_ns_ = 0;
  std::vector<TimedEntry> heap_;

  // Fiber table: chunked arena plus an intrusive list of live fibers.
  std::shared_ptr<internal::FiberArena> fiber_arena_;
  internal::FiberState* live_head_ = nullptr;
  size_t live_fiber_count_ = 0;
};

template <typename T>
T Simulator::BlockOn(Task<T> body) {
  std::optional<T> result;
  // A free coroutine (not a capturing lambda) so all state lives in the frame.
  struct Runner {
    static Task<> Run(Task<T> inner, std::optional<T>& out) {
      out.emplace(co_await std::move(inner));
    }
  };
  Fiber fiber = Spawn(Runner::Run(std::move(body), result), "block_on");
  while (!fiber.done()) {
    QS_CHECK_MSG(Step(), "Simulator::BlockOn deadlocked: event queue empty");
  }
  QS_CHECK_MSG(!fiber.failed(), "Simulator::BlockOn task failed with an exception");
  return std::move(*result);
}

template <>
inline void Simulator::BlockOn(Task<void> body) {
  struct Runner {
    static Task<> Run(Task<void> inner) { co_await std::move(inner); }
  };
  Fiber fiber = Spawn(Runner::Run(std::move(body)), "block_on");
  while (!fiber.done()) {
    QS_CHECK_MSG(Step(), "Simulator::BlockOn deadlocked: event queue empty");
  }
  QS_CHECK_MSG(!fiber.failed(), "Simulator::BlockOn task failed with an exception");
}

}  // namespace quicksand

#endif  // QUICKSAND_SIM_SIMULATOR_H_
