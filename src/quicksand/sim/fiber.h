// Fiber: a handle to a detached, simulator-managed coroutine.
//
// Simulator::Spawn wraps a Task<> into a root coroutine and returns a Fiber.
// The Fiber is a cheap shared handle: it can be copied, polled with done(),
// and awaited with Join() (which rethrows any exception the fiber's body
// escaped with).

#ifndef QUICKSAND_SIM_FIBER_H_
#define QUICKSAND_SIM_FIBER_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "quicksand/sim/task.h"

namespace quicksand {

class Simulator;

namespace internal {

struct FiberState {
  Simulator* sim = nullptr;
  uint64_t id = 0;
  std::string name;
  bool done = false;
  std::exception_ptr error;
  std::vector<std::coroutine_handle<>> join_waiters;
};

}  // namespace internal

class Fiber {
 public:
  Fiber() = default;
  explicit Fiber(std::shared_ptr<internal::FiberState> state) : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ == nullptr || state_->done; }
  uint64_t id() const { return state_ != nullptr ? state_->id : 0; }
  const std::string& name() const {
    static const std::string kEmpty;
    return state_ != nullptr ? state_->name : kEmpty;
  }
  bool failed() const { return state_ != nullptr && static_cast<bool>(state_->error); }

  // Suspends the caller until the fiber finishes; rethrows its exception.
  Task<> Join();

 private:
  std::shared_ptr<internal::FiberState> state_;
};

// Joins every fiber in the list (in order).
Task<> JoinAll(std::vector<Fiber> fibers);

}  // namespace quicksand

#endif  // QUICKSAND_SIM_FIBER_H_
