// Fiber: a handle to a detached, simulator-managed coroutine.
//
// Simulator::Spawn wraps a Task<> into a root coroutine and returns a Fiber.
// The Fiber is a cheap shared handle: it can be copied, polled with done(),
// and awaited with Join() (which rethrows any exception the fiber's body
// escaped with).
//
// Fiber state lives in a chunked arena (FiberArena) owned jointly by the
// simulator and every outstanding handle: slots are recycled through a free
// list, so a churn of a million short-lived fibers performs a handful of
// chunk allocations instead of a shared_ptr control block per spawn, and the
// table stays cache-dense. Addresses are stable (chunks never move), which
// lets the root coroutine and Fiber handles hold plain pointers. A slot is
// recycled when its reference count — Fiber handles plus the root coroutine's
// own reference — drops to zero.

#ifndef QUICKSAND_SIM_FIBER_H_
#define QUICKSAND_SIM_FIBER_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "quicksand/sim/task.h"

namespace quicksand {

class Simulator;

namespace internal {

// Intrusive join-wait node; lives in the joining coroutine's frame for the
// duration of the suspension (see fiber.cc), so the list needs no allocation.
struct JoinWaiter {
  std::coroutine_handle<> handle;
  JoinWaiter* next = nullptr;
};

struct FiberState {
  Simulator* sim = nullptr;
  uint64_t id = 0;
  uint32_t refs = 0;  // Fiber handles + the root coroutine's own reference
  bool done = false;
  std::exception_ptr error;
  std::coroutine_handle<> handle;  // root frame; cleared once finished
  FiberState* live_prev = nullptr;  // intrusive list of live fibers (teardown)
  FiberState* live_next = nullptr;
  FiberState* free_next = nullptr;  // arena free list
  JoinWaiter* join_head = nullptr;
  JoinWaiter* join_tail = nullptr;
  std::string name;
};

// Chunked slab of FiberState with a free list. Shared (via shared_ptr)
// between the Simulator and every Fiber handle so a handle may outlive the
// simulator; chunk addresses never move.
class FiberArena {
 public:
  FiberState* Alloc() {
    FiberState* s = free_head_;
    if (s != nullptr) {
      free_head_ = s->free_next;
      s->free_next = nullptr;
    } else {
      chunks_.push_back(std::make_unique<FiberState[]>(kChunkSize));
      FiberState* chunk = chunks_.back().get();
      // Thread all but the first slot onto the free list.
      for (size_t i = kChunkSize - 1; i >= 1; --i) {
        chunk[i].free_next = free_head_;
        free_head_ = &chunk[i];
      }
      s = &chunk[0];
    }
    return s;
  }

  void Release(FiberState* s) {
    // Free held resources eagerly; the slot may sit on the free list a while.
    s->error = nullptr;
    s->handle = {};
    s->name.clear();
    s->done = false;
    s->join_head = nullptr;
    s->join_tail = nullptr;
    s->live_prev = nullptr;
    s->live_next = nullptr;
    s->sim = nullptr;
    s->free_next = free_head_;
    free_head_ = s;
  }

 private:
  static constexpr size_t kChunkSize = 64;

  std::vector<std::unique_ptr<FiberState[]>> chunks_;
  FiberState* free_head_ = nullptr;
};

}  // namespace internal

class Fiber {
 public:
  Fiber() = default;
  Fiber(std::shared_ptr<internal::FiberArena> arena, internal::FiberState* state)
      : arena_(std::move(arena)), state_(state) {
    if (state_ != nullptr) {
      ++state_->refs;
    }
  }

  Fiber(const Fiber& other) : arena_(other.arena_), state_(other.state_) {
    if (state_ != nullptr) {
      ++state_->refs;
    }
  }

  Fiber& operator=(const Fiber& other) {
    if (this != &other) {
      Fiber copy(other);
      *this = std::move(copy);
    }
    return *this;
  }

  Fiber(Fiber&& other) noexcept
      : arena_(std::move(other.arena_)), state_(std::exchange(other.state_, nullptr)) {}

  Fiber& operator=(Fiber&& other) noexcept {
    if (this != &other) {
      Unref();
      arena_ = std::move(other.arena_);
      state_ = std::exchange(other.state_, nullptr);
    }
    return *this;
  }

  ~Fiber() { Unref(); }

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ == nullptr || state_->done; }
  uint64_t id() const { return state_ != nullptr ? state_->id : 0; }
  const std::string& name() const {
    static const std::string kEmpty;
    return state_ != nullptr ? state_->name : kEmpty;
  }
  bool failed() const { return state_ != nullptr && static_cast<bool>(state_->error); }

  // Suspends the caller until the fiber finishes; rethrows its exception.
  Task<> Join();

 private:
  void Unref() {
    if (state_ != nullptr && --state_->refs == 0) {
      // Zero refs implies the root coroutine's reference is gone too (it is
      // dropped when the fiber finishes or is torn down), so the slot is dead.
      arena_->Release(state_);
    }
    state_ = nullptr;
    arena_.reset();
  }

  std::shared_ptr<internal::FiberArena> arena_;
  internal::FiberState* state_ = nullptr;
};

// Joins every fiber in the list (in order).
Task<> JoinAll(std::vector<Fiber> fibers);

}  // namespace quicksand

#endif  // QUICKSAND_SIM_FIBER_H_
