// FlatStorage: a flat object store spreading fine-grained storage proclets
// across machines to combine their capacity and IOPS (§3.2, citing Flat
// Datacenter Storage [40]).
//
// Objects route to storage proclets by hashing their id; with one or more
// proclets per machine disk, aggregate throughput approaches the sum of the
// disks' — the property the flat_storage bench measures.

#ifndef QUICKSAND_STORAGE_FLAT_STORAGE_H_
#define QUICKSAND_STORAGE_FLAT_STORAGE_H_

#include <string>
#include <vector>

#include "quicksand/proclet/storage_proclet.h"

namespace quicksand {

class FlatStorage {
 public:
  struct Options {
    int proclets = 4;
    int64_t proclet_base_bytes = 4096;
  };

  FlatStorage() = default;

  static Task<Result<FlatStorage>> Create(Ctx ctx) { return Create(ctx, Options{}); }

  static Task<Result<FlatStorage>> Create(Ctx ctx, Options options) {
    QS_CHECK(options.proclets >= 1);
    FlatStorage storage;
    for (int i = 0; i < options.proclets; ++i) {
      PlacementRequest req;
      req.heap_bytes = options.proclet_base_bytes;
      // Round-robin across machines so capacity and IOPS aggregate.
      req.pinned =
          static_cast<MachineId>(static_cast<size_t>(i) % ctx.rt->cluster().size());
      auto create = ctx.rt->Create<StorageProclet>(ctx, req);
      Result<Ref<StorageProclet>> proclet = co_await std::move(create);
      if (!proclet.ok()) {
        co_return proclet.status();
      }
      storage.members_.push_back(*proclet);
    }
    co_return storage;
  }

  const std::vector<Ref<StorageProclet>>& members() const { return members_; }

  Task<Status> Write(Ctx ctx, uint64_t object_id, std::string value) {
    Ref<StorageProclet> target = RouteTo(object_id);
    const int64_t request_bytes = WireSizeOf(value);
    // Named task: see the GCC 12 note in sim/task.h.
    auto call = target.Call(
        ctx,
        [object_id, value = std::move(value)](StorageProclet& p) mutable -> Task<Status> {
          return p.WriteObject(object_id, std::move(value));
        },
        request_bytes);
    co_return co_await std::move(call);
  }

  Task<Result<std::string>> Read(Ctx ctx, uint64_t object_id) {
    Ref<StorageProclet> target = RouteTo(object_id);
    auto call =
        target.Call(ctx, [object_id](StorageProclet& p) -> Task<Result<std::string>> {
          return p.ReadObject<std::string>(object_id);
        });
    co_return co_await std::move(call);
  }

  Task<Status> Delete(Ctx ctx, uint64_t object_id) {
    Ref<StorageProclet> target = RouteTo(object_id);
    auto call = target.Call(ctx, [object_id](StorageProclet& p) -> Task<Status> {
      return p.DeleteObject(object_id);
    });
    co_return co_await std::move(call);
  }

  // Sum of stored bytes across member proclets (runtime introspection).
  int64_t StoredBytes(Runtime& rt) const {
    int64_t total = 0;
    for (const Ref<StorageProclet>& member : members_) {
      if (auto* p = rt.UnsafeGet<StorageProclet>(member.id())) {
        total += p->stored_bytes();
      }
    }
    return total;
  }

  Task<> Shutdown(Ctx ctx) {
    for (const Ref<StorageProclet>& member : members_) {
      auto destroy = ctx.rt->Destroy(ctx, member.id());
      (void)co_await std::move(destroy);
    }
    members_.clear();
  }

 private:
  Ref<StorageProclet> RouteTo(uint64_t object_id) const {
    QS_CHECK(!members_.empty());
    // SplitMix64 finalizer as the hash.
    uint64_t h = object_id + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return members_[h % members_.size()];
  }

  std::vector<Ref<StorageProclet>> members_;
};

}  // namespace quicksand

#endif  // QUICKSAND_STORAGE_FLAT_STORAGE_H_
