// Invariant oracles: what "survived the chaos" means, checkably.
//
// Each oracle states a property that must hold on EVERY schedule, however
// hostile, and reports violations as data (OracleViolation) instead of
// aborting — the harness collects them, and the shrinker re-runs schedules
// asking only "does it still violate?". The library:
//
//  * range partition — the frontend's routing table always covers the hash
//    space exactly: begins at 0, contiguous, ends at UINT64_MAX (checked
//    every tick; a gap or overlap means requests route nowhere/twice);
//  * epoch monotonicity — a proclet's fencing epoch never goes backwards
//    (EpochMonitor, fed every tick);
//  * exactly-once commits — a (proclet, request-id) pair commits at most
//    once in the trace, EXCEPT when the first committing machine
//    fail-stopped or was declared dead between the two commits: an applied
//    -but-unacked write legitimately re-applies at the replacement, whose
//    fresh fence guard cannot know the rid (ScanExactlyOnce);
//  * recovery completeness — every fail-stopped machine produced at least
//    one RecoveryReport, and no report claims more outcomes than losses
//    (promoted + restored + unrecoverable <= lost; under-accounting is
//    legal when a concurrent recovery fiber restored a proclet first);
//  * acked-write durability (ChaosLedger) — every acknowledged put is still
//    readable at the end, UNLESS its key's hash range was resident on a
//    machine at the instant that machine died, no later than the ack
//    (residency excusal: data that died with its host is a crash loss, not
//    a software bug). Strict mode (replicated stores) allows no excuses;
//  * bounded staleness — stale fallbacks only happen when degraded reads
//    were configured with a replication source (the bound itself is
//    enforced inline by ReplicationManager::ReadStale).

#ifndef QUICKSAND_CHAOS_ORACLES_H_
#define QUICKSAND_CHAOS_ORACLES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "quicksand/cluster/machine.h"
#include "quicksand/cluster/metrics.h"
#include "quicksand/common/time.h"
#include "quicksand/trace/trace.h"

namespace quicksand {

struct OracleViolation {
  std::string oracle;  // stable name: "range-partition", "acked-write-lost", ...
  std::string detail;
  SimTime at;
};

std::string FormatViolations(const std::vector<OracleViolation>& violations);

// Fail-stop instants per machine (crashes and declared-dead), appended by
// the harness's fault handlers in time order.
using DeathTimes = std::unordered_map<MachineId, std::vector<SimTime>>;

// Routing table partitions [0, UINT64_MAX) exactly. `samples` is
// SampleShards output; order does not matter.
bool CheckRangePartition(const std::vector<ShardServingSample>& samples,
                         SimTime now, std::vector<OracleViolation>* out);

// Per-proclet high-water epoch tracker. Observe() every tick.
class EpochMonitor {
 public:
  void Observe(uint64_t proclet, uint64_t epoch, SimTime now,
               std::vector<OracleViolation>* out);

 private:
  std::unordered_map<uint64_t, uint64_t> max_epoch_;
};

// Scans retained kCommit instants for (proclet, rid) pairs committing more
// than once without a death of the earlier committing machine in between.
void ScanExactlyOnce(const std::vector<TraceEvent>& events,
                     const DeathTimes& deaths,
                     std::vector<OracleViolation>* out);

struct RecoveryReportView {
  MachineId machine = kInvalidMachineId;
  int64_t lost = 0;
  int64_t promoted = 0;
  int64_t restored = 0;
  int64_t unrecoverable = 0;
};

// Every machine in `deaths` has a report; no report over-accounts.
void CheckRecoveryComplete(const std::vector<RecoveryReportView>& reports,
                           const DeathTimes& deaths, SimTime now,
                           std::vector<OracleViolation>* out);

// Acked-write ledger with residency-based excusal.
class ChaosLedger {
 public:
  // A put for `key` was acknowledged to the client at `at`.
  void RecordAck(uint64_t key, SimTime at) { last_ack_[key] = at; }
  // The hash range [begin, end) was resident on a machine that died at
  // `at`: keys acked no later than `at` are excused if they vanish.
  void ExcuseRange(uint64_t begin, uint64_t end, SimTime at) {
    excused_.push_back({begin, end, at});
  }

  // `present(key)` answers whether the store still holds the key. With
  // `strict` (replicated stores) excusal is ignored: durability promised
  // to survive the faults, so any loss is a violation.
  void Verify(const std::function<bool(uint64_t)>& present, bool strict,
              SimTime now, std::vector<OracleViolation>* out) const;

  int64_t acked_keys() const { return static_cast<int64_t>(last_ack_.size()); }
  int64_t excused_ranges() const {
    return static_cast<int64_t>(excused_.size());
  }

 private:
  struct ExcusedRange {
    uint64_t begin = 0;
    uint64_t end = 0;
    SimTime at;
  };

  std::unordered_map<uint64_t, SimTime> last_ack_;  // key -> latest ack
  std::vector<ExcusedRange> excused_;
};

// Config-consistency check on degraded reads.
void CheckStalenessConfig(int64_t stale_fallbacks, bool degraded_reads_enabled,
                          bool replication_attached, SimTime now,
                          std::vector<OracleViolation>* out);

}  // namespace quicksand

#endif  // QUICKSAND_CHAOS_ORACLES_H_
