// Chaos harness: one seeded schedule driven against the full stack.
//
// RunChaos builds the complete serving topology inside a fresh simulator —
// fenced hash-range shards behind a KvFrontend, admission control, the
// heartbeat failure detector, crash-armed + detector-armed recovery,
// optionally primary-backup replication ("durable" profile) or the
// autoscale loop ("reshape" profile) — applies the schedule's faults, and
// serves an open-loop load whose every acknowledged write is recorded in a
// ChaosLedger. Oracles run continuously (range partition, epoch
// monotonicity) and at the end (exactly-once trace scan, recovery
// completeness, ledger durability, staleness config); the result carries
// the violations, survival counters, the outage-episode distribution, and
// a determinism digest.
//
// Two standard profiles:
//  * reshape — no replication, autoscaler ON, residency-excusal ledger:
//    data on a crashed machine legally dies, but nothing ELSE may lose a
//    write (this is the profile that catches crash-unsafe reshapes);
//  * durable (options.replicate) — every shard has a backup, shards pinned
//    (no reshaping), STRICT ledger: the durability contract says crashes
//    within the replication factor lose nothing, so there are no excuses.
//
// Handler-order contract (the part that makes the ledger sound): the
// harness registers its crash/confirm observers BEFORE
// Runtime::AttachFaultInjector / AttachFailureDetector, so the excusal
// snapshot sees the routing table's hosting AS OF the death instant, not
// after the runtime has marked proclets lost.

#ifndef QUICKSAND_CHAOS_HARNESS_H_
#define QUICKSAND_CHAOS_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "quicksand/chaos/oracles.h"
#include "quicksand/chaos/schedule.h"

namespace quicksand {

struct ChaosHarnessOptions {
  int machines = 6;  // m0: frontend/controller; shards live on the rest
  int cores = 2;
  int shards = 2;
  double base_qps = 15000.0;
  Duration run = Duration::Millis(60);  // == the schedule's horizon
  int keys = 512;
  double write_fraction = 0.3;
  Duration slo = Duration::Millis(2);
  Duration service_time = Duration::Micros(50);
  bool replicate = false;  // durable profile: backups, pinned shards
  bool autoscale = true;   // reshape profile: the full closed loop
  // TEST ONLY: reintroduces the pre-hardening blind reshape install.
  bool unsafe_reshape = false;
  Duration tick = Duration::Micros(500);        // oracle sampling period
  Duration repair_period = Duration::Millis(1); // RepairLostShards cadence
  // Trace ring depth per machine; the exactly-once scan reads the rings,
  // so they must hold the whole run.
  size_t ring_capacity = 65536;
};

struct ChaosRunResult {
  std::vector<OracleViolation> violations;  // sorted (time, oracle, detail)
  bool survived = false;  // drained, fully live, zero violations
  bool drained = false;   // every started request completed
  bool table_live = false;

  int64_t started = 0;  // requests issued by the load generator
  int64_t acked = 0;    // requests acknowledged (reads + writes)
  int64_t acked_writes = 0;
  int64_t failed = 0;
  int64_t crashes = 0;
  int64_t revocations = 0;
  int64_t network_faults = 0;
  int64_t repairs = 0;
  int64_t reshape_rollbacks = 0;
  int64_t reshape_payload_discards = 0;
  int64_t splits = 0;
  int64_t merges = 0;
  int64_t migrations = 0;
  int64_t promotions = 0;
  int64_t unrecoverable = 0;
  int64_t stale_fallbacks = 0;

  // Table-degraded episodes (some range routed to a dead shard), measured
  // at tick resolution: the recovery-time distribution.
  std::vector<Duration> outages;

  std::string digest;
  // FlightRecorder dumps of every dead machine; populated only when the
  // run had violations (the postmortem of a passing run is noise).
  std::vector<std::string> postmortems;
};

ChaosRunResult RunChaos(const ChaosSchedule& schedule,
                        const ChaosHarnessOptions& options);

}  // namespace quicksand

#endif  // QUICKSAND_CHAOS_HARNESS_H_
