#include "quicksand/chaos/shrink.h"

#include <algorithm>
#include <utility>

namespace quicksand {
namespace {

ChaosSchedule Without(const ChaosSchedule& s, size_t begin, size_t end) {
  ChaosSchedule out;
  out.seed = s.seed;
  out.events.reserve(s.events.size() - (end - begin));
  for (size_t i = 0; i < s.events.size(); ++i) {
    if (i < begin || i >= end) {
      out.events.push_back(s.events[i]);
    }
  }
  return out;
}

}  // namespace

ShrinkResult ShrinkSchedule(
    const ChaosSchedule& failing,
    const std::function<bool(const ChaosSchedule&)>& still_fails,
    int max_probes) {
  ShrinkResult r;
  r.schedule = failing;
  auto probe = [&](const ChaosSchedule& candidate) {
    if (r.probes >= max_probes) {
      return false;
    }
    ++r.probes;
    return still_fails(candidate);
  };

  // Pass 1 — event removal, ddmin-style: try dropping chunks, halving the
  // chunk size when a full sweep removes nothing, restarting coarse after
  // any win (a removal often unlocks more removals).
  size_t chunk = std::max<size_t>(1, r.schedule.events.size() / 2);
  while (r.probes < max_probes && r.schedule.events.size() > 1) {
    bool removed = false;
    size_t begin = 0;
    while (begin < r.schedule.events.size() && r.probes < max_probes &&
           r.schedule.events.size() > 1) {
      const size_t end = std::min(begin + chunk, r.schedule.events.size());
      ChaosSchedule candidate = Without(r.schedule, begin, end);
      if (!candidate.events.empty() && probe(candidate)) {
        r.schedule = std::move(candidate);
        removed = true;  // the next chunk slid into `begin`; do not advance
      } else {
        begin = end;
      }
    }
    ++r.rounds;
    if (removed) {
      chunk = std::max<size_t>(1, r.schedule.events.size() / 2);
    } else if (chunk == 1) {
      break;  // single-event sweep removed nothing: 1-minimal
    } else {
      chunk = std::max<size_t>(1, chunk / 2);
    }
  }

  // Pass 2 — window narrowing: halve each surviving event's fault window
  // (and delay magnitude) while the violation reproduces. Repro schedules
  // read much better with tight windows: the window IS the race.
  const Duration floor = Duration::Micros(10);
  for (size_t i = 0; i < r.schedule.events.size() && r.probes < max_probes;
       ++i) {
    for (int halvings = 0; halvings < 6 && r.probes < max_probes;
         ++halvings) {
      ChaosSchedule candidate = r.schedule;
      ChaosEvent& e = candidate.events[i];
      bool changed = false;
      if (e.duration / 2 >= floor) {
        e.duration = e.duration / 2;
        changed = true;
      }
      if (e.kind == ChaosEventKind::kDelaySpike && e.extra / 2 >= floor) {
        e.extra = e.extra / 2;
        changed = true;
      }
      if (!changed || !probe(candidate)) {
        break;
      }
      r.schedule = std::move(candidate);
    }
  }
  ++r.rounds;
  return r;
}

}  // namespace quicksand
