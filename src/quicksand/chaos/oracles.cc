#include "quicksand/chaos/oracles.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "quicksand/proclet/fenced_kv_proclet.h"

namespace quicksand {

std::string FormatViolations(const std::vector<OracleViolation>& violations) {
  std::ostringstream out;
  for (const OracleViolation& v : violations) {
    out << "  [" << v.oracle << "] at " << (v.at - SimTime::Zero()).ToString()
        << ": " << v.detail << "\n";
  }
  return out.str();
}

bool CheckRangePartition(const std::vector<ShardServingSample>& samples,
                         SimTime now, std::vector<OracleViolation>* out) {
  auto fail = [&](const std::string& detail) {
    out->push_back({"range-partition", detail, now});
    return false;
  };
  if (samples.empty()) {
    return fail("routing table is empty");
  }
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  ranges.reserve(samples.size());
  for (const ShardServingSample& s : samples) {
    ranges.emplace_back(s.range_begin, s.range_end);
  }
  std::sort(ranges.begin(), ranges.end());
  if (ranges.front().first != 0) {
    return fail("first range does not begin at 0");
  }
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].second <= ranges[i].first) {
      return fail("empty or inverted range in the table");
    }
    if (i + 1 < ranges.size() && ranges[i].second != ranges[i + 1].first) {
      std::ostringstream d;
      d << (ranges[i].second < ranges[i + 1].first ? "gap" : "overlap")
        << " between ranges ending " << ranges[i].second << " and beginning "
        << ranges[i + 1].first;
      return fail(d.str());
    }
  }
  if (ranges.back().second != UINT64_MAX) {
    return fail("last range does not end at UINT64_MAX");
  }
  return true;
}

void EpochMonitor::Observe(uint64_t proclet, uint64_t epoch, SimTime now,
                           std::vector<OracleViolation>* out) {
  if (epoch == 0) {
    return;  // unknown / not yet fenced
  }
  uint64_t& high = max_epoch_[proclet];
  if (epoch < high) {
    std::ostringstream d;
    d << "proclet " << proclet << " epoch went backwards: " << high << " -> "
      << epoch;
    out->push_back({"epoch-monotonic", d.str(), now});
  }
  high = std::max(high, epoch);
}

void ScanExactlyOnce(const std::vector<TraceEvent>& events,
                     const DeathTimes& deaths,
                     std::vector<OracleViolation>* out) {
  struct Commit {
    SimTime time;
    MachineId machine = kInvalidMachineId;
  };
  // (proclet, rid) -> commits in time order (Snapshot() is already sorted).
  std::unordered_map<uint64_t, std::unordered_map<int64_t, std::vector<Commit>>>
      commits;
  for (const TraceEvent& e : events) {
    if (e.op == TraceOp::kCommit && e.phase == TracePhase::kInstant) {
      commits[e.proclet][e.arg].push_back({e.time, e.machine});
    }
  }
  auto died_between = [&](MachineId m, SimTime lo, SimTime hi) {
    auto it = deaths.find(m);
    if (it == deaths.end()) {
      return false;
    }
    for (const SimTime t : it->second) {
      if (lo <= t && t <= hi) {
        return true;
      }
    }
    return false;
  };
  for (const auto& [proclet, by_rid] : commits) {
    for (const auto& [rid, list] : by_rid) {
      for (size_t i = 1; i < list.size(); ++i) {
        // A re-commit is legitimate only when the previous committer died
        // in between: its ack never reached the client, and the
        // replacement's fresh fence guard cannot dedup the retry.
        if (!died_between(list[i - 1].machine, list[i - 1].time,
                          list[i].time)) {
          if (std::getenv("QS_CHAOS_DEBUG") != nullptr) {
            std::fprintf(stderr, "DBG proclet %llu rid %lld lifecycle:\n",
                         (unsigned long long)proclet, (long long)rid);
            for (const TraceEvent& e : events) {
              const bool lifecycle = e.op == TraceOp::kLost ||
                                     e.op == TraceOp::kPromote ||
                                     e.op == TraceOp::kRestore;
              const bool this_commit =
                  e.op == TraceOp::kCommit && e.arg == (int64_t)rid;
              if (e.proclet == proclet && (lifecycle || this_commit)) {
                std::fprintf(stderr, "  t=%s m%u op=%s arg=%lld\n",
                             (e.time - SimTime::Zero()).ToString().c_str(),
                             e.machine, TraceOpName(e.op), (long long)e.arg);
              }
            }
          }
          std::ostringstream d;
          d << "proclet " << proclet << " rid " << rid << " committed twice"
            << " (m" << list[i - 1].machine << " then m" << list[i].machine
            << ") with no failover in between";
          out->push_back({"exactly-once", d.str(), list[i].time});
        }
      }
    }
  }
}

void CheckRecoveryComplete(const std::vector<RecoveryReportView>& reports,
                           const DeathTimes& deaths, SimTime now,
                           std::vector<OracleViolation>* out) {
  std::unordered_map<MachineId, int> reports_for;
  for (const RecoveryReportView& r : reports) {
    ++reports_for[r.machine];
    // A report may under-account (lost > sum) when a concurrent recovery
    // fiber — crash-armed and detector-armed recoveries can overlap — beat
    // it to a proclet; it must never over-account.
    if (r.lost < r.promoted + r.restored + r.unrecoverable) {
      std::ostringstream d;
      d << "m" << r.machine << " report over-accounts: lost " << r.lost
        << " < promoted " << r.promoted << " + restored " << r.restored
        << " + unrecoverable " << r.unrecoverable;
      out->push_back({"recovery-complete", d.str(), now});
    }
  }
  for (const auto& [machine, times] : deaths) {
    if (reports_for.count(machine) == 0) {
      std::ostringstream d;
      d << "m" << machine << " fail-stopped but recovery never reported";
      out->push_back({"recovery-complete", d.str(), now});
    }
  }
}

void ChaosLedger::Verify(const std::function<bool(uint64_t)>& present,
                         bool strict, SimTime now,
                         std::vector<OracleViolation>* out) const {
  // Deterministic iteration: sort keys before checking.
  std::vector<std::pair<uint64_t, SimTime>> acked(last_ack_.begin(),
                                                  last_ack_.end());
  std::sort(acked.begin(), acked.end());
  for (const auto& [key, ack_at] : acked) {
    if (present(key)) {
      continue;
    }
    const uint64_t hash = KvShardHash(key);
    bool excused = false;
    if (!strict) {
      for (const ExcusedRange& r : excused_) {
        // The key's range was resident on a machine that died AT OR AFTER
        // the ack: the bytes died with the host. An excuse recorded before
        // the ack cannot cover it — the write landed (and was acked) on
        // whatever replaced the dead shard.
        if (r.begin <= hash && hash < r.end && r.at >= ack_at) {
          excused = true;
          break;
        }
      }
    }
    if (!excused) {
      std::ostringstream d;
      d << "key " << key << " acked at "
        << (ack_at - SimTime::Zero()).ToString() << " is gone"
        << (strict ? " (strict: replicated store, no excusal)"
                   : " and no covering host death excuses it");
      out->push_back({"acked-write-lost", d.str(), now});
    }
  }
}

void CheckStalenessConfig(int64_t stale_fallbacks, bool degraded_reads_enabled,
                          bool replication_attached, SimTime now,
                          std::vector<OracleViolation>* out) {
  if (stale_fallbacks > 0 &&
      (!degraded_reads_enabled || !replication_attached)) {
    std::ostringstream d;
    d << stale_fallbacks << " stale fallbacks served without "
      << (degraded_reads_enabled ? "a replication source"
                                 : "degraded reads enabled");
    out->push_back({"bounded-staleness", d.str(), now});
  }
}

}  // namespace quicksand
