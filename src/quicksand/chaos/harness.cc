#include "quicksand/chaos/harness.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "quicksand/autoscale/autoscaler.h"
#include "quicksand/common/bytes.h"
#include "quicksand/common/random.h"
#include "quicksand/durability/recovery_coordinator.h"
#include "quicksand/durability/replication.h"
#include "quicksand/health/failure_detector.h"
#include "quicksand/overload/admission.h"
#include "quicksand/proclet/fenced_kv_proclet.h"
#include "quicksand/sched/local_reactor.h"
#include "quicksand/serving/kv_frontend.h"
#include "quicksand/trace/flight_recorder.h"

namespace quicksand {
namespace {

struct FlashWindow {
  SimTime begin;
  SimTime end;
  double multiplier = 1.0;
};

// The live state shared by the harness fibers. Lives on RunChaos's stack;
// every fiber it spawns completes (or is abandoned at teardown) before the
// frame unwinds.
struct Driver {
  Simulator& sim;
  Runtime& rt;
  KvFrontend& frontend;
  ChaosLedger& ledger;
  const ChaosHarnessOptions& opt;
  std::vector<FlashWindow> flashes;
  Rng rng;

  bool running = true;
  int64_t started = 0;
  int64_t completed = 0;
  int64_t acked = 0;
  int64_t acked_writes = 0;
  int64_t failed = 0;

  EpochMonitor epochs;
  std::vector<OracleViolation> violations;
  std::vector<Duration> outages;
  bool degraded = false;
  SimTime degraded_since;

  Driver(Simulator& sim_in, Runtime& rt_in, KvFrontend& frontend_in,
         ChaosLedger& ledger_in, const ChaosHarnessOptions& opt_in,
         std::vector<FlashWindow> flashes_in, uint64_t seed)
      : sim(sim_in),
        rt(rt_in),
        frontend(frontend_in),
        ledger(ledger_in),
        opt(opt_in),
        flashes(std::move(flashes_in)),
        rng(seed ^ 0x5eedba5eULL) {}

  double MultiplierAt(SimTime now) const {
    double m = 1.0;
    for (const FlashWindow& f : flashes) {
      if (f.begin <= now && now < f.end) {
        m *= f.multiplier;
      }
    }
    return m;
  }

  Task<> Request(uint64_t key, bool is_read) {
    ++started;
    auto serve = frontend.ServeDetailed(key, is_read);
    const bool ok = co_await std::move(serve);
    if (ok) {
      ++acked;
      if (!is_read) {
        ++acked_writes;
        ledger.RecordAck(key, sim.Now());
      }
    } else {
      ++failed;
    }
    ++completed;
  }

  // One write per key, spread over the first sixth of the run: a known
  // acked value under every hash range, so residency loss ANYWHERE in the
  // space is observable — not just under the zipf head.
  Task<> Preload() {
    const Duration gap = opt.run / (6 * std::max(1, opt.keys));
    for (int k = 0; k < opt.keys && running; ++k) {
      sim.Spawn(Request(static_cast<uint64_t>(k), /*is_read=*/false),
                "chaos_preload");
      co_await sim.Sleep(gap);
    }
  }

  Task<> Load() {
    const SimTime end = sim.Now() + opt.run;
    while (running && sim.Now() < end) {
      const double qps = opt.base_qps * MultiplierAt(sim.Now());
      const auto gap_ns = static_cast<int64_t>(rng.NextExponential(1e9 / qps));
      co_await sim.Sleep(Duration::Nanos(std::max<int64_t>(1, gap_ns)));
      if (!running || sim.Now() >= end) {
        break;
      }
      // During a flash window, most arrivals pile onto a few viral keys —
      // splittable heat that forces the autoscaler to reshape mid-chaos.
      uint64_t key;
      if (MultiplierAt(sim.Now()) > 1.0 && rng.NextDouble() < 0.6) {
        key = rng.NextBounded(32);
      } else {
        key = rng.NextZipf(static_cast<uint64_t>(opt.keys), 0.9);
      }
      const bool is_read = rng.NextDouble() >= opt.write_fraction;
      sim.Spawn(Request(key, is_read), "chaos_req");
    }
  }

  Task<> TickLoop() {
    SimTime next_repair = sim.Now() + opt.repair_period;
    while (running) {
      co_await sim.Sleep(opt.tick);
      if (!running) {
        break;
      }
      const SimTime now = sim.Now();
      const std::vector<ShardServingSample> samples =
          frontend.SampleShards(now);
      CheckRangePartition(samples, now, &violations);
      for (const ShardServingSample& s : samples) {
        epochs.Observe(s.proclet, rt.EpochOf(s.proclet), now, &violations);
      }
      TrackOutage(now);
      if (now >= next_repair) {
        next_repair = now + opt.repair_period;
        auto repair = frontend.RepairLostShards(rt.CtxOn(0));
        (void)co_await std::move(repair);
      }
    }
  }

  void TrackOutage(SimTime now) {
    const bool live = frontend.TableFullyLive();
    if (!live && !degraded) {
      degraded = true;
      degraded_since = now;
    } else if (live && degraded) {
      degraded = false;
      outages.push_back(now - degraded_since);
    }
  }
};

}  // namespace

ChaosRunResult RunChaos(const ChaosSchedule& schedule,
                        const ChaosHarnessOptions& opt) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < opt.machines; ++i) {
    MachineSpec spec;
    spec.cores = opt.cores;
    spec.memory_bytes = 2 * kGiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);

  TracerOptions topt;
  topt.ring_capacity = opt.ring_capacity;
  Tracer tracer(sim, cluster.size(), topt);
  rt.AttachTracer(&tracer);
  FlightRecorder recorder(tracer, /*last_n=*/400);
  rt.AttachFlightRecorder(&recorder);

  AdmissionOptions aopt;
  aopt.target = Duration::Micros(200);
  aopt.interval = Duration::Micros(500);
  AdmissionController admission(cluster, aopt);
  rt.AttachAdmission(&admission);

  KvFrontendOptions fopt;
  fopt.shards = opt.shards;
  fopt.slo = opt.slo;
  fopt.service_time = opt.service_time;
  fopt.stats_window = Duration::Millis(20);
  fopt.degraded_reads = opt.replicate;
  fopt.unsafe_reshape_for_test = opt.unsafe_reshape;
  KvFrontend frontend(rt, fopt);

  ChaosLedger ledger;
  DeathTimes deaths;

  FaultInjector faults(sim, cluster);
  // Death observer: registered BEFORE the runtime's handlers, so the
  // excusal snapshot sees hosting as of the death instant — the runtime's
  // own handler is what erases it.
  auto on_death = [&sim, &frontend, &ledger, &deaths](MachineId m) {
    const SimTime now = sim.Now();
    deaths[m].push_back(now);
    for (const ShardServingSample& s : frontend.SampleShards(now)) {
      if (s.machine == m) {
        ledger.ExcuseRange(s.range_begin, s.range_end, now);
      }
    }
  };
  faults.OnCrash(on_death);
  rt.AttachFaultInjector(faults);

  std::unique_ptr<ReplicationManager> replication;
  if (opt.replicate) {
    replication = std::make_unique<ReplicationManager>(rt);
    replication->Arm(faults);
    frontend.AttachReplication(replication.get());
  }
  RecoveryCoordinator recovery(rt);
  if (replication != nullptr) {
    recovery.AttachReplication(replication.get());
  }
  recovery.Arm(faults);

  FailureDetectorOptions dopt;
  dopt.controller = 0;
  dopt.heartbeat_period = Duration::Micros(500);
  dopt.suspect_after = Duration::Millis(2);
  dopt.confirm_after = Duration::Millis(8);
  dopt.check_period = Duration::Micros(250);
  FailureDetector detector(sim, cluster, dopt);
  detector.OnConfirm(on_death);
  rt.AttachFailureDetector(detector);
  if (replication != nullptr) {
    replication->ArmDetector(detector);
  }
  recovery.ArmDetector(detector);
  detector.Start();

  const Status started_ok = sim.BlockOn(frontend.Start(rt.CtxOn(0)));
  QS_CHECK_MSG(started_ok.ok(), "chaos: frontend start failed");

  const SimTime base = sim.Now();
  ApplySchedule(faults, schedule, base);
  std::vector<FlashWindow> flashes;
  for (const ChaosEvent& e : schedule.events) {
    if (e.kind == ChaosEventKind::kFlashCrowd) {
      flashes.push_back({base + e.at, base + e.at + e.duration, e.magnitude});
    }
  }

  std::unique_ptr<Autoscaler> autoscaler;
  std::vector<std::unique_ptr<LocalReactor>> reactors;
  if (opt.autoscale && !opt.replicate) {
    const double per_host_qps =
        opt.cores * 1e9 / static_cast<double>(opt.service_time.nanos());
    AutoscalerOptions sopt;
    sopt.period = Duration::Millis(1);
    sopt.executor.slo = opt.slo;
    sopt.planner.max_shards = 2 * (opt.machines - 1);
    sopt.detector.rate_floor_qps = 0.25 * per_host_qps;
    sopt.detector.cold_floor_qps = 0.01 * per_host_qps;
    autoscaler = std::make_unique<Autoscaler>(rt, frontend, sopt);
    autoscaler->AttachAdmission(&admission);
    autoscaler->AttachHealth(&detector);
    reactors = StartLocalReactors(rt);
    for (auto& reactor : reactors) {
      reactor->AttachOverload(&admission);
      reactor->AttachAutoscaler(autoscaler.get());
    }
    autoscaler->Start();
  }

  Driver driver(sim, rt, frontend, ledger, opt, std::move(flashes),
                schedule.seed);
  sim.Spawn(driver.Preload(), "chaos_preload_pump");
  sim.Spawn(driver.Load(), "chaos_load");
  sim.Spawn(driver.TickLoop(), "chaos_tick");

  sim.RunFor(opt.run);
  driver.running = false;
  if (autoscaler != nullptr) {
    autoscaler->Stop();
  }

  // Let the detector confirm any late deaths and recovery finish before
  // judging completeness.
  sim.RunFor(dopt.confirm_after + Duration::Millis(10));

  ChaosRunResult r;
  for (int i = 0; i < 200 && driver.completed < driver.started; ++i) {
    sim.RunFor(Duration::Millis(2));
  }
  r.drained = driver.completed == driver.started;

  // Final self-heal: replace any still-dead routing entries, waiting out
  // the repair grace between attempts.
  for (int i = 0; i < 50 && !frontend.TableFullyLive(); ++i) {
    (void)sim.BlockOn(frontend.RepairLostShards(rt.CtxOn(0)));
    sim.RunFor(fopt.repair_grace + Duration::Millis(1));
  }
  driver.TrackOutage(sim.Now());  // close any open outage episode
  r.table_live = frontend.TableFullyLive();
  detector.Stop();

  const SimTime now = sim.Now();
  r.violations = std::move(driver.violations);
  if (!r.table_live) {
    r.violations.push_back(
        {"recovery-complete",
         "routing table still has dead entries after final repair", now});
  }
  CheckRangePartition(frontend.SampleShards(now), now, &r.violations);
  ScanExactlyOnce(tracer.Snapshot(), deaths, &r.violations);
  std::vector<RecoveryReportView> views;
  for (const RecoveryReport& report : recovery.reports()) {
    views.push_back({report.machine, report.lost, report.promoted,
                     report.restored, report.unrecoverable});
  }
  CheckRecoveryComplete(views, deaths, now, &r.violations);
  auto present = [&rt, &frontend, &sim](uint64_t key) {
    const uint64_t hash = KvShardHash(key);
    for (const ShardServingSample& s : frontend.SampleShards(sim.Now())) {
      if (s.range_begin <= hash && hash < s.range_end) {
        const auto* p = rt.UnsafeGet<FencedKvProclet>(s.proclet);
        return !rt.IsLost(s.proclet) && p != nullptr && p->Get(key).ok();
      }
    }
    return false;
  };
  ledger.Verify(present, /*strict=*/opt.replicate, now, &r.violations);
  CheckStalenessConfig(frontend.stale_fallbacks(), fopt.degraded_reads,
                       replication != nullptr, now, &r.violations);
  std::sort(r.violations.begin(), r.violations.end(),
            [](const OracleViolation& a, const OracleViolation& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.oracle != b.oracle) return a.oracle < b.oracle;
              return a.detail < b.detail;
            });

  r.started = driver.started;
  r.acked = driver.acked;
  r.acked_writes = driver.acked_writes;
  r.failed = driver.failed;
  r.crashes = faults.crashes();
  r.revocations = faults.revocations();
  r.network_faults = faults.network_faults();
  r.repairs = frontend.repairs();
  r.reshape_rollbacks = frontend.reshape_rollbacks();
  r.reshape_payload_discards = frontend.reshape_payload_discards();
  if (autoscaler != nullptr) {
    r.splits = autoscaler->splits();
    r.merges = autoscaler->merges();
    r.migrations = autoscaler->migrations();
  }
  if (replication != nullptr) {
    r.promotions = replication->promotions();
  }
  r.unrecoverable = recovery.total_unrecoverable();
  r.stale_fallbacks = frontend.stale_fallbacks();
  r.outages = std::move(driver.outages);
  r.survived = r.drained && r.table_live && r.violations.empty();

  std::ostringstream digest;
  digest << r.started << '|' << r.acked << '|' << r.acked_writes << '|'
         << r.failed << '|' << r.crashes << '|' << r.revocations << '|'
         << r.network_faults << '|' << r.repairs << '|' << r.reshape_rollbacks
         << '|' << r.reshape_payload_discards << '|' << r.splits << '|'
         << r.merges << '|' << r.migrations << '|' << r.promotions << '|'
         << r.unrecoverable << '|' << r.violations.size() << '|'
         << r.outages.size() << '|';
  std::vector<ShardServingSample> final_samples = frontend.SampleShards(now);
  std::sort(final_samples.begin(), final_samples.end(),
            [](const ShardServingSample& a, const ShardServingSample& b) {
              return a.range_begin < b.range_begin;
            });
  for (const ShardServingSample& s : final_samples) {
    digest << s.range_begin << ',' << s.range_end << ',' << s.machine << ','
           << s.arrivals_total << ';';
  }
  digest << '|' << now.nanos() << '|' << std::hex << tracer.Digest();
  r.digest = digest.str();

  if (!r.violations.empty()) {
    std::vector<MachineId> dead;
    for (const auto& [machine, times] : deaths) {
      dead.push_back(machine);
    }
    std::sort(dead.begin(), dead.end());
    for (const MachineId m : dead) {
      if (const Postmortem* postmortem = recorder.ForMachine(m)) {
        r.postmortems.push_back(FlightRecorder::Dump(*postmortem));
      }
    }
  }
  return r;
}

}  // namespace quicksand
