#include "quicksand/chaos/schedule.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "quicksand/common/random.h"

namespace quicksand {

const char* ChaosEventKindName(ChaosEventKind kind) {
  switch (kind) {
    case ChaosEventKind::kCrash:
      return "crash";
    case ChaosEventKind::kRevocation:
      return "revocation";
    case ChaosEventKind::kPartitionOneWay:
      return "partition_one_way";
    case ChaosEventKind::kPartition:
      return "partition";
    case ChaosEventKind::kIsolation:
      return "isolation";
    case ChaosEventKind::kLinkLoss:
      return "link_loss";
    case ChaosEventKind::kDelaySpike:
      return "delay_spike";
    case ChaosEventKind::kFlashCrowd:
      return "flash_crowd";
  }
  return "?";
}

ChaosSchedule GenerateSchedule(uint64_t seed,
                               const ChaosScheduleOptions& options) {
  QS_CHECK(options.machines >= 3);  // controller + at least two hosts
  ChaosSchedule schedule;
  schedule.seed = seed;
  Rng rng(seed ^ 0xc5a0c5a0c5a0c5a0ULL);

  const int hosts = options.machines - 1;  // machine 0 is never a target
  // Keep at least two hosts alive: a run where everything died proves
  // nothing about the software.
  const int crash_cap =
      std::min(options.max_crashes, std::max(0, hosts - 2));
  std::unordered_set<MachineId> crashed;

  const int64_t horizon_ns = options.horizon.nanos();
  auto offset_in = [&](int64_t lo_ns, int64_t hi_ns) {
    return Duration::Nanos(
        lo_ns + static_cast<int64_t>(
                    rng.NextBounded(static_cast<uint64_t>(hi_ns - lo_ns))));
  };
  auto pick_host = [&] {
    return static_cast<MachineId>(1 + rng.NextBounded(hosts));
  };

  for (int i = 0; i < options.events; ++i) {
    ChaosEvent e;
    // Weighted kinds: network faults dominate (they heal), fail-stops are
    // rare (they do not), and every schedule gets some load pressure.
    const uint64_t draw = rng.NextBounded(100);
    if (draw < 10) {
      e.kind = ChaosEventKind::kCrash;
    } else if (draw < 18) {
      e.kind = ChaosEventKind::kRevocation;
    } else if (draw < 34) {
      e.kind = ChaosEventKind::kPartitionOneWay;
    } else if (draw < 48) {
      e.kind = ChaosEventKind::kPartition;
    } else if (draw < 56) {
      e.kind = ChaosEventKind::kIsolation;
    } else if (draw < 70) {
      e.kind = ChaosEventKind::kLinkLoss;
    } else if (draw < 84) {
      e.kind = ChaosEventKind::kDelaySpike;
    } else {
      e.kind = ChaosEventKind::kFlashCrowd;
    }

    // Faults land in the middle of the run: after startup settles, early
    // enough that recovery and the drain are observable before the end.
    e.at = offset_in(horizon_ns / 20, (horizon_ns * 8) / 10);
    // Window lengths: exponential around an eighth of the horizon, clamped
    // so the window closes before the run ends.
    const int64_t mean_ns = horizon_ns / 8;
    int64_t win_ns = static_cast<int64_t>(
        rng.NextExponential(static_cast<double>(mean_ns)));
    win_ns = std::clamp<int64_t>(win_ns, horizon_ns / 100,
                                 horizon_ns - e.at.nanos());
    e.duration = Duration::Nanos(win_ns);
    e.a = pick_host();
    do {
      e.b = pick_host();
    } while (hosts > 1 && e.b == e.a);

    if (e.kind == ChaosEventKind::kCrash ||
        e.kind == ChaosEventKind::kRevocation) {
      const bool over_cap =
          crashed.count(e.a) == 0 &&
          static_cast<int>(crashed.size()) >= crash_cap;
      if (over_cap) {
        // Deterministic degrade: same draw sequence, survivable schedule.
        e.kind = ChaosEventKind::kPartition;
      } else {
        crashed.insert(e.a);
      }
    }
    switch (e.kind) {
      case ChaosEventKind::kLinkLoss:
        e.magnitude = 0.1 + 0.5 * rng.NextDouble();
        break;
      case ChaosEventKind::kDelaySpike:
        e.extra = Duration::Nanos(static_cast<int64_t>(
            rng.NextExponential(static_cast<double>(horizon_ns) / 30.0)));
        break;
      case ChaosEventKind::kFlashCrowd:
        e.magnitude = 2.0 + 3.0 * rng.NextDouble();
        break;
      default:
        break;
    }
    schedule.events.push_back(e);
  }

  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const ChaosEvent& x, const ChaosEvent& y) {
                     return x.at < y.at;
                   });
  return schedule;
}

std::string FormatSchedule(const ChaosSchedule& schedule) {
  std::ostringstream out;
  out << "seed " << schedule.seed << ", " << schedule.events.size()
      << " events\n";
  for (const ChaosEvent& e : schedule.events) {
    out << "  +" << e.at.ToString() << " " << ChaosEventKindName(e.kind)
        << " m" << e.a;
    switch (e.kind) {
      case ChaosEventKind::kPartitionOneWay:
      case ChaosEventKind::kPartition:
      case ChaosEventKind::kLinkLoss:
      case ChaosEventKind::kDelaySpike:
        out << (e.kind == ChaosEventKind::kPartition ? "<->" : "->") << "m"
            << e.b;
        break;
      default:
        break;
    }
    if (e.kind != ChaosEventKind::kCrash) {
      out << " for " << e.duration.ToString();
    }
    if (e.kind == ChaosEventKind::kLinkLoss ||
        e.kind == ChaosEventKind::kFlashCrowd) {
      out << " x" << e.magnitude;
    }
    if (e.kind == ChaosEventKind::kDelaySpike) {
      out << " +" << e.extra.ToString();
    }
    out << "\n";
  }
  return out.str();
}

void ApplySchedule(FaultInjector& faults, const ChaosSchedule& schedule,
                   SimTime base) {
  for (const ChaosEvent& e : schedule.events) {
    const SimTime at = base + e.at;
    switch (e.kind) {
      case ChaosEventKind::kCrash:
        faults.ScheduleCrash(at, e.a);
        break;
      case ChaosEventKind::kRevocation:
        faults.ScheduleRevocation(at, e.a, e.duration);
        break;
      case ChaosEventKind::kPartitionOneWay:
        faults.SchedulePartitionOneWay(at, e.a, e.b, e.duration);
        break;
      case ChaosEventKind::kPartition:
        faults.SchedulePartition(at, e.a, e.b, e.duration);
        break;
      case ChaosEventKind::kIsolation:
        faults.ScheduleIsolation(at, e.a, e.duration);
        break;
      case ChaosEventKind::kLinkLoss:
        faults.ScheduleLinkLoss(at, e.a, e.b, e.magnitude, e.duration);
        break;
      case ChaosEventKind::kDelaySpike:
        faults.ScheduleDelaySpike(at, e.a, e.b, e.extra, e.duration);
        break;
      case ChaosEventKind::kFlashCrowd:
        break;  // consumed by the harness load generator, not the injector
    }
  }
}

}  // namespace quicksand
