// Schedule shrinking: from "seed 77142 violates an oracle" to a repro a
// human can read.
//
// ShrinkSchedule takes a failing schedule and a predicate ("does this
// schedule still violate?") and greedily minimizes, ddmin-style: remove
// chunks of events (coarse to fine, restarting coarse after any win), then
// narrow the surviving events' fault windows. Every probe replays the
// candidate through the deterministic harness, so the predicate is
// reliable — no flaky shrinks. The probe budget bounds total work; the
// result is the smallest schedule found within it, which still fails by
// construction (the original is returned unshrunk if nothing can go).

#ifndef QUICKSAND_CHAOS_SHRINK_H_
#define QUICKSAND_CHAOS_SHRINK_H_

#include <functional>

#include "quicksand/chaos/schedule.h"

namespace quicksand {

struct ShrinkResult {
  ChaosSchedule schedule;  // minimal failing schedule found
  int rounds = 0;          // removal/narrowing passes completed
  int probes = 0;          // predicate evaluations (harness replays)
};

ShrinkResult ShrinkSchedule(
    const ChaosSchedule& failing,
    const std::function<bool(const ChaosSchedule&)>& still_fails,
    int max_probes = 200);

}  // namespace quicksand

#endif  // QUICKSAND_CHAOS_SHRINK_H_
