// Chaos schedules: seeded, replayable fault scripts.
//
// A schedule is a flat list of fault events — crashes, revocations,
// one-way/bidirectional partitions, isolation, link loss, delay spikes, and
// flash crowds — each stamped with an offset from harness start. The
// generator draws a schedule deterministically from a seed (same seed, same
// schedule, bit for bit), which is what makes a chaos failure a REPRO
// rather than an anecdote: the failing seed plus the harness options replay
// the exact interleaving, and the shrinker (shrink.h) can bisect the event
// list because re-running a sub-schedule is cheap and deterministic.
//
// Generation constraints, enforced structurally so every generated schedule
// is drivable:
//  * machine 0 (controller: frontend, detector, recovery home) is never a
//    fault target;
//  * at most `max_crashes` DISTINCT machines fail-stop (crash or revocation
//    deadline), and never so many that fewer than two hosts survive — a
//    draw that would exceed the cap degrades to a bidirectional partition
//    of the same machine instead (deterministically, so the seed still
//    replays);
//  * windows fit inside the horizon.
//
// kFlashCrowd is NOT applied to the FaultInjector: the harness's own load
// generator reads flash windows from the schedule and multiplies its
// arrival rate. It lives in the schedule so load spikes shrink and replay
// exactly like faults do — a data-loss repro often needs the flash that
// forced the reshape.

#ifndef QUICKSAND_CHAOS_SCHEDULE_H_
#define QUICKSAND_CHAOS_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/time.h"

namespace quicksand {

enum class ChaosEventKind : uint8_t {
  kCrash,            // fail-stop of machine `a` at `at`
  kRevocation,       // revocation notice at `at`, deadline `at + duration`
  kPartitionOneWay,  // a -> b cut for [at, at + duration)
  kPartition,        // a <-> b cut for the window
  kIsolation,        // every link touching `a` cut for the window
  kLinkLoss,         // a -> b drops with p = magnitude for the window
  kDelaySpike,       // a -> b delayed by `extra` for the window
  kFlashCrowd,       // load generator multiplies arrivals by `magnitude`
};

const char* ChaosEventKindName(ChaosEventKind kind);

struct ChaosEvent {
  ChaosEventKind kind = ChaosEventKind::kCrash;
  Duration at = Duration::Zero();        // offset from harness start
  Duration duration = Duration::Zero();  // window length; unused for kCrash
  MachineId a = 0;
  MachineId b = 0;
  double magnitude = 0.0;           // loss probability / flash multiplier
  Duration extra = Duration::Zero();  // delay-spike added latency
};

struct ChaosSchedule {
  uint64_t seed = 0;
  std::vector<ChaosEvent> events;  // sorted by `at`
};

struct ChaosScheduleOptions {
  int machines = 6;  // cluster size; targets drawn from [1, machines)
  Duration horizon = Duration::Millis(60);  // events land in [5%, 80%] of it
  int events = 8;
  // Cap on DISTINCT fail-stop targets; further clamped so at least two
  // non-controller hosts always survive.
  int max_crashes = 2;
};

// Deterministic: the same (seed, options) yield the same schedule.
ChaosSchedule GenerateSchedule(uint64_t seed, const ChaosScheduleOptions& options);

// One line per event, for repro files and logs.
std::string FormatSchedule(const ChaosSchedule& schedule);

// Registers every event except kFlashCrowd with the injector, at absolute
// times base + event.at. Call before Simulator::Run reaches `base`.
void ApplySchedule(FaultInjector& faults, const ChaosSchedule& schedule,
                   SimTime base);

}  // namespace quicksand

#endif  // QUICKSAND_CHAOS_SCHEDULE_H_
