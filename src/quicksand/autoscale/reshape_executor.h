// ReshapeExecutor: carries planned reshape actions out against the shard
// set, with the one safety check the planner cannot make — will the copy
// itself blow the SLO?
//
// Every reshape closes the affected shard's invocation gate for roughly
// (migration fixed overhead + bytes / fabric bandwidth). Requests arriving
// during that window queue behind the gate and eat the whole stall. The
// executor estimates the gate-closed window from the shard's reported bytes
// and DEFERS the reshape (autoscale_deferred, kReshapeDefer trace instant)
// when the estimate exceeds max_copy_fraction_of_slo * slo: shedding a slice
// of one shard's traffic is strictly better than stalling all of it past
// the deadline — the deferral feeds the planner's cooldown, and the shard
// gets another chance once it drains or the operator raises the budget.
//
// Committed actions are counted (autoscale_splits/merges/migrations) and
// emit reshape_* trace instants against the donor's machine with the moved
// byte count as the argument, so a flight-recorder dump shows exactly when
// and how big each reshape was.

#ifndef QUICKSAND_AUTOSCALE_RESHAPE_EXECUTOR_H_
#define QUICKSAND_AUTOSCALE_RESHAPE_EXECUTOR_H_

#include <cstdint>

#include "quicksand/autoscale/reshape_planner.h"
#include "quicksand/autoscale/shard_set.h"

namespace quicksand {

struct ReshapeExecutorOptions {
  // The serving SLO the copy estimate is budgeted against.
  Duration slo = Duration::Millis(2);
  // Defer when the estimated gate-closed window exceeds this fraction of
  // the SLO.
  double max_copy_fraction_of_slo = 0.5;
};

class ReshapeExecutor {
 public:
  struct Outcome {
    bool executed = false;
    bool deferred = false;
    Status status = Status::Ok();
  };

  ReshapeExecutor(Runtime& rt, ReshapableShardSet& set,
                  ReshapeExecutorOptions options = {})
      : rt_(rt), set_(set), options_(options) {}

  // Runs (or defers) one action. `bytes` is the subject shard's current
  // data_bytes from the sampling round that planned the action.
  Task<Outcome> Execute(Ctx ctx, ReshapeAction action, int64_t bytes);

  // Estimated gate-closed window for moving `bytes` under `kind`.
  Duration EstimateStall(ReshapeKind kind, int64_t bytes) const;

  int64_t splits() const { return splits_; }
  int64_t merges() const { return merges_; }
  int64_t migrations() const { return migrations_; }
  int64_t deferred() const { return deferred_; }
  int64_t failed() const { return failed_; }

 private:
  void Trace(Ctx ctx, TraceOp op, uint64_t shard, int64_t arg);

  Runtime& rt_;
  ReshapableShardSet& set_;
  ReshapeExecutorOptions options_;
  int64_t splits_ = 0;
  int64_t merges_ = 0;
  int64_t migrations_ = 0;
  int64_t deferred_ = 0;
  int64_t failed_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_AUTOSCALE_RESHAPE_EXECUTOR_H_
