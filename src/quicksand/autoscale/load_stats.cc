#include "quicksand/autoscale/load_stats.h"

#include <algorithm>
#include <unordered_set>

namespace quicksand {

void LoadStatsCollector::Observe(SimTime now,
                                 const std::vector<ShardServingSample>& samples) {
  const Duration dt = now - last_observe_;
  if (observed_once_ && dt <= Duration::Zero()) {
    return;  // same-instant resample; nothing to difference
  }
  const double dt_s =
      observed_once_ ? static_cast<double>(dt.nanos()) / 1e9 : 0.0;

  std::unordered_set<uint64_t> live;
  live.reserve(samples.size());
  shards_.clear();
  shards_.reserve(samples.size());
  for (const ShardServingSample& s : samples) {
    live.insert(s.proclet);
    auto [it, fresh] = history_.try_emplace(
        s.proclet, History{Ewma(alpha_), Ewma(alpha_), 0, 0});
    History& h = it->second;
    if (fresh) {
      // A brand-new shard (initial creation or a split half): its counters
      // started from zero when it appeared, so its whole cumulative count is
      // this period's delta. Seeding the EWMA with that rate makes a hot
      // split half immediately visible instead of invisible for 1/alpha
      // ticks.
      if (observed_once_ && dt_s > 0.0) {
        h.rate.Add(static_cast<double>(s.arrivals_total) / dt_s);
        h.shed_rate.Add(static_cast<double>(s.sheds_total) / dt_s);
      }
    } else if (dt_s > 0.0) {
      h.rate.Add(static_cast<double>(s.arrivals_total - h.last_arrivals) /
                 dt_s);
      h.shed_rate.Add(static_cast<double>(s.sheds_total - h.last_sheds) /
                      dt_s);
    }
    h.last_arrivals = s.arrivals_total;
    h.last_sheds = s.sheds_total;
    ShardLoad load;
    load.sample = s;
    load.rate_qps = h.rate.value();
    load.shed_rate_qps = h.shed_rate.value();
    shards_.push_back(load);
  }
  // Shards merged or destroyed since the last round take their history with
  // them; a reused proclet id (never happens today) would otherwise inherit
  // a stale baseline.
  for (auto it = history_.begin(); it != history_.end();) {
    it = live.count(it->first) == 0 ? history_.erase(it) : std::next(it);
  }
  last_observe_ = now;
  observed_once_ = true;
}

double LoadStatsCollector::MedianRate() const {
  if (shards_.empty()) {
    return 0.0;
  }
  std::vector<double> rates;
  rates.reserve(shards_.size());
  for (const ShardLoad& s : shards_) {
    rates.push_back(s.rate_qps);
  }
  std::nth_element(rates.begin(), rates.begin() + rates.size() / 2,
                   rates.end());
  return rates[rates.size() / 2];
}

double LoadStatsCollector::MachineRate(MachineId machine) const {
  double sum = 0.0;
  for (const ShardLoad& s : shards_) {
    if (s.sample.machine == machine) {
      sum += s.rate_qps;
    }
  }
  return sum;
}

}  // namespace quicksand
