// ReshapePlanner: turns the skew detector's verdicts into a bounded list of
// concrete reshape actions, with the pacing that keeps the control loop
// stable.
//
// Policy per hot shard: SPLIT onto the least-loaded machine while the shard
// budget allows growth, otherwise MIGRATE the whole shard there (splitting
// is preferred — it divides the hot range so BOTH halves can absorb load;
// migration only relocates the problem, which is still right when the limit
// is the machine, not the shard). Cold shards merge pairwise with a
// range-adjacent cold neighbor, and only on ticks with no hot shards: merge
// is deliberate housekeeping, not something to attempt mid-incident.
//
// Stability comes from three dampers the executor reports back into:
//  * per-shard cooldown — a just-reshaped (or just-deferred) shard is left
//    alone long enough for its post-reshape rates to be real measurements,
//  * global cooldown — consecutive actions are spaced out so each one's
//    effect is observable before the next fires,
//  * per-tick action cap — a pathological verdict cannot trigger a reshape
//    storm that itself becomes the overload.

#ifndef QUICKSAND_AUTOSCALE_RESHAPE_PLANNER_H_
#define QUICKSAND_AUTOSCALE_RESHAPE_PLANNER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "quicksand/autoscale/load_stats.h"
#include "quicksand/autoscale/skew_detector.h"

namespace quicksand {

enum class ReshapeKind { kSplit, kMerge, kMigrate };

struct ReshapeAction {
  ReshapeKind kind = ReshapeKind::kSplit;
  uint64_t shard = 0;  // split donor / merge left / migrate subject
  uint64_t other = 0;  // merge right; unused otherwise
  MachineId target = 0;  // split/migrate destination; unused for merge
};

struct ReshapePlannerOptions {
  // Leave a reshaped (or deferred) shard alone this long.
  Duration shard_cooldown = Duration::Millis(5);
  // Minimum spacing between any two committed actions.
  Duration global_cooldown = Duration::Millis(1);
  int max_actions_per_tick = 2;
  // Shard-count budget: split stops (migration takes over) at max_shards;
  // merge stops at min_shards.
  int max_shards = 64;
  int min_shards = 1;
};

class ReshapePlanner {
 public:
  explicit ReshapePlanner(ReshapePlannerOptions options = {})
      : options_(options) {}

  // Proposes up to max_actions_per_tick actions for this tick. `candidates`
  // are the machines reshapes may target (the autoscaler passes every
  // accepting machine except the frontend's home).
  std::vector<ReshapeAction> Plan(SimTime now, const LoadStatsCollector& loads,
                                  const SkewVerdict& verdict,
                                  const std::vector<MachineId>& candidates);

  // Feedback from the executor: a committed action arms both cooldowns; a
  // deferral arms only the shard cooldown (retrying a too-expensive copy
  // next tick would just defer again — the shard must drain first).
  void NoteExecuted(SimTime now, const ReshapeAction& action);
  void NoteDeferred(SimTime now, const ReshapeAction& action);

 private:
  bool InCooldown(SimTime now, uint64_t shard) const;

  ReshapePlannerOptions options_;
  std::unordered_map<uint64_t, SimTime> shard_cooldown_until_;
  SimTime global_cooldown_until_ = SimTime::Zero();
};

}  // namespace quicksand

#endif  // QUICKSAND_AUTOSCALE_RESHAPE_PLANNER_H_
