// SkewDetector: decides which shards are HOT (split/migrate candidates) and
// which are COLD (merge candidates), with hysteresis so the planner is not
// whipsawed by noise.
//
// Hotness is RELATIVE — a shard is hot when its smoothed arrival rate stands
// well above the cluster's median shard — but gated by an absolute floor: on
// a nearly idle cluster, 3x the median can still be a trickle that no amount
// of reshaping will improve. Both verdicts require a streak of consecutive
// ticks (asymmetric: hot trips fast because overload compounds, cold trips
// slow because merging is cheap to delay and expensive to regret).
//
// The detector also accepts NUDGES from the overload side (LocalReactor /
// AdmissionController report a machine in shed state). A nudge fast-tracks
// the top shard on that machine past the streak requirement: when admission
// control is already dropping requests, waiting out the streak means
// measurable lost goodput.

#ifndef QUICKSAND_AUTOSCALE_SKEW_DETECTOR_H_
#define QUICKSAND_AUTOSCALE_SKEW_DETECTOR_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "quicksand/autoscale/load_stats.h"

namespace quicksand {

struct SkewDetectorOptions {
  // Hot when rate > hot_factor * max(median, rate_floor_qps).
  double hot_factor = 2.0;
  // Cold when rate < cold_factor * median (and the cluster is busy — on an
  // idle cluster everything is "cold" and merging is pointless churn).
  double cold_factor = 0.25;
  // Absolute rate below which nothing counts as hot. Deployments size this
  // against per-host capacity: skew against the median is not worth moving
  // bytes for until the shard is a meaningful fraction of a machine.
  double rate_floor_qps = 1000.0;
  // The cluster counts as busy (cold detection active) while the median
  // shard rate is above this. Deliberately NOT derived from rate_floor_qps:
  // a capacity-sized hot floor must not disable merging of post-flash
  // remnants, whose own tiny rates drag the median down.
  double busy_floor_qps = 100.0;
  // Absolute per-shard load floor: a shard below this rate counts as cold
  // regardless of the median or the busy gate. This is what unwinds
  // over-sharding after repeated flash crowds — once the flash passes, the
  // remnants are all EVENLY idle, so relative-to-median cold detection never
  // trips and the shard count ratchets up across flashes. 0 disables (the
  // pre-existing relative-only behavior).
  double cold_floor_qps = 0.0;
  // Consecutive ticks before a verdict trips.
  int hot_streak = 2;
  int cold_streak = 8;
};

// One tick's verdict: shard proclet ids, hottest first / coldest first.
struct SkewVerdict {
  std::vector<uint64_t> hot;
  std::vector<uint64_t> cold;
};

class SkewDetector {
 public:
  explicit SkewDetector(SkewDetectorOptions options = {}) : options_(options) {}

  // Overload signal: `machine` is shedding. Consumed by the next Update.
  void Nudge(MachineId machine) { nudged_.insert(machine); }

  // One detection tick over the collector's current view.
  SkewVerdict Update(const LoadStatsCollector& loads);

  int64_t nudge_promotions() const { return nudge_promotions_; }

 private:
  struct Streaks {
    int hot = 0;
    int cold = 0;
  };

  SkewDetectorOptions options_;
  std::unordered_map<uint64_t, Streaks> streaks_;  // by shard proclet id
  std::unordered_set<MachineId> nudged_;
  int64_t nudge_promotions_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_AUTOSCALE_SKEW_DETECTOR_H_
