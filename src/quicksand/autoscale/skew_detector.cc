#include "quicksand/autoscale/skew_detector.h"

#include <algorithm>
#include <utility>

namespace quicksand {

SkewVerdict SkewDetector::Update(const LoadStatsCollector& loads) {
  const double median = loads.MedianRate();
  const double hot_bar =
      options_.hot_factor * std::max(median, options_.rate_floor_qps);
  const double cold_bar = options_.cold_factor * median;
  const bool cluster_busy = median > options_.busy_floor_qps;

  // Top shard per nudged machine: eligible for streak fast-track.
  std::unordered_map<MachineId, uint64_t> top_on;
  std::unordered_map<MachineId, double> top_rate;
  for (const ShardLoad& s : loads.shards()) {
    if (nudged_.count(s.sample.machine) == 0) {
      continue;
    }
    auto it = top_rate.find(s.sample.machine);
    if (it == top_rate.end() || s.rate_qps > it->second) {
      top_rate[s.sample.machine] = s.rate_qps;
      top_on[s.sample.machine] = s.sample.proclet;
    }
  }

  SkewVerdict verdict;
  std::vector<std::pair<double, uint64_t>> hot_ranked;
  std::vector<std::pair<double, uint64_t>> cold_ranked;
  std::unordered_set<uint64_t> live;
  for (const ShardLoad& s : loads.shards()) {
    live.insert(s.sample.proclet);
    Streaks& st = streaks_[s.sample.proclet];
    if (s.rate_qps > hot_bar) {
      ++st.hot;
    } else {
      st.hot = 0;
    }
    const bool below_floor = options_.cold_floor_qps > 0.0 &&
                             s.rate_qps < options_.cold_floor_qps;
    if ((cluster_busy && s.rate_qps < cold_bar) || below_floor) {
      ++st.cold;
    } else {
      st.cold = 0;
    }

    bool hot = st.hot >= options_.hot_streak;
    if (!hot && s.rate_qps > options_.rate_floor_qps) {
      // Nudge fast-track: admission control is shedding on this shard's
      // machine and this is its biggest shard — act now, overload is not a
      // statistic to wait out.
      auto it = top_on.find(s.sample.machine);
      if (it != top_on.end() && it->second == s.sample.proclet) {
        hot = true;
        ++nudge_promotions_;
      }
    }
    if (hot) {
      hot_ranked.emplace_back(s.rate_qps, s.sample.proclet);
    } else if (st.cold >= options_.cold_streak) {
      cold_ranked.emplace_back(s.rate_qps, s.sample.proclet);
    }
  }
  for (auto it = streaks_.begin(); it != streaks_.end();) {
    it = live.count(it->first) == 0 ? streaks_.erase(it) : std::next(it);
  }
  nudged_.clear();

  std::sort(hot_ranked.begin(), hot_ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::sort(cold_ranked.begin(), cold_ranked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [rate, id] : hot_ranked) {
    verdict.hot.push_back(id);
  }
  for (const auto& [rate, id] : cold_ranked) {
    verdict.cold.push_back(id);
  }
  return verdict;
}

}  // namespace quicksand
