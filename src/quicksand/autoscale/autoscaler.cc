#include "quicksand/autoscale/autoscaler.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace quicksand {

bool Autoscaler::MachineHealthy(MachineId m) const {
  // A lost shard samples kInvalidMachineId as its host: not a healthy home.
  if (m >= rt_.cluster().size() || rt_.MachineConsideredDead(m)) {
    return false;
  }
  return health_ == nullptr || health_->StateOf(m) == Health::kAlive;
}

void Autoscaler::Start() {
  QS_CHECK(!running_);
  running_ = true;
  rt_.sim().Spawn(Loop(), "autoscaler");
}

Task<> Autoscaler::Loop() {
  while (running_) {
    co_await rt_.sim().Sleep(options_.period);
    if (!running_) {
      co_return;
    }
    Ctx ctx = rt_.CtxOn(set_.home());
    co_await Tick(ctx);
  }
}

Task<> Autoscaler::Tick(Ctx ctx) {
  const SimTime now = rt_.sim().Now();
  const std::vector<ShardServingSample> samples = set_.SampleShards(now);
  collector_.Observe(now, samples);

  // Fold in the overload controller's view: a machine in shed state hosts
  // too much of something — let the detector act before the streak matures.
  if (admission_ != nullptr) {
    std::unordered_set<MachineId> hosts;
    for (const ShardServingSample& s : samples) {
      if (s.machine < rt_.cluster().size()) {  // lost shards sample invalid
        hosts.insert(s.machine);
      }
    }
    for (MachineId m : hosts) {
      if (admission_->PressureOf(m).shedding) {
        detector_.Nudge(m);
      }
    }
  }

  SkewVerdict verdict = detector_.Update(collector_);

  // Pause verdicts whose subject shard lives on a suspected/dead machine:
  // the rate estimate behind the verdict is stale (the host stopped
  // reporting), and the reshape verb would have to copy bytes out of a
  // machine that may no longer answer. Recovery, not reshaping, owns that
  // shard until the detector clears or confirms.
  if (health_ != nullptr) {
    std::unordered_map<uint64_t, MachineId> host_of;
    for (const ShardServingSample& s : samples) {
      host_of[s.proclet] = s.machine;
    }
    auto hosted_on_sick = [&](uint64_t shard) {
      auto it = host_of.find(shard);
      const bool sick = it != host_of.end() && !MachineHealthy(it->second);
      if (sick) {
        ++health_skips_;
      }
      return sick;
    };
    std::erase_if(verdict.hot, hosted_on_sick);
    std::erase_if(verdict.cold, hosted_on_sick);
  }
  last_hot_ = static_cast<int>(verdict.hot.size());

  std::vector<MachineId> candidates;
  for (MachineId m = 0; m < rt_.cluster().size(); ++m) {
    if (m != set_.home() && rt_.cluster().machine(m).accepting() &&
        MachineHealthy(m)) {
      candidates.push_back(m);
    }
  }
  const std::vector<ReshapeAction> actions =
      planner_.Plan(now, collector_, verdict, candidates);
  for (const ReshapeAction& action : actions) {
    // The copy-cost estimate wants the bytes of whichever shard MOVES: the
    // merge right half, or the split/migrate subject.
    const uint64_t moving =
        action.kind == ReshapeKind::kMerge ? action.other : action.shard;
    int64_t bytes = 0;
    for (const ShardServingSample& s : samples) {
      if (s.proclet == moving) {
        bytes = s.bytes;
        break;
      }
    }
    auto exec = executor_.Execute(ctx, action, bytes);
    const ReshapeExecutor::Outcome out = co_await std::move(exec);
    if (out.deferred) {
      planner_.NoteDeferred(rt_.sim().Now(), action);
    } else if (out.executed) {
      planner_.NoteExecuted(rt_.sim().Now(), action);
    }
    // A failed verb (shard vanished mid-plan, target died) arms nothing:
    // next tick replans from fresh samples.
  }
  co_return;
}

AutoscaleSample Autoscaler::SampleAutoscale(SimTime now) const {
  AutoscaleSample s;
  s.shard_count = static_cast<int>(set_.SampleShards(now).size());
  s.hot_shards = last_hot_;
  s.splits_total = executor_.splits();
  s.merges_total = executor_.merges();
  s.migrations_total = executor_.migrations();
  s.deferred_total = executor_.deferred();
  return s;
}

}  // namespace quicksand
