// LoadStatsCollector: turns the cumulative per-shard counters a
// ReshapableShardSet exports into smoothed arrival/shed RATES the skew
// detector can compare.
//
// The shard set only counts (arrivals ever, sheds ever) — it has no opinion
// about windows. The collector differences those counters at its own cadence
// and feeds the deltas into per-shard EWMAs, so one noisy sample period does
// not flap the hotness verdict, while a genuine flash crowd shows up within
// a couple of ticks (alpha ~0.3 halves the memory every other tick).
//
// Shards come and go under reshaping: a shard absent from the latest sample
// (merged away or destroyed) is dropped, and a new shard (a fresh split
// half) starts its EWMA from its first observed delta — deliberately NOT
// from zero, so a hot split half is visible to the detector immediately.

#ifndef QUICKSAND_AUTOSCALE_LOAD_STATS_H_
#define QUICKSAND_AUTOSCALE_LOAD_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "quicksand/cluster/metrics.h"
#include "quicksand/common/stats.h"

namespace quicksand {

// One shard's smoothed load view: the latest raw sample plus EWMA rates.
struct ShardLoad {
  ShardServingSample sample;
  double rate_qps = 0.0;       // EWMA of arrivals/sec
  double shed_rate_qps = 0.0;  // EWMA of sheds/sec
};

class LoadStatsCollector {
 public:
  explicit LoadStatsCollector(double alpha = 0.3) : alpha_(alpha) {}

  // Folds one sampling round in. `samples` must carry cumulative counters
  // (ShardServingSample contract); the collector owns the differencing.
  void Observe(SimTime now, const std::vector<ShardServingSample>& samples);

  // Latest per-shard loads, in the shard set's order (ascending range).
  const std::vector<ShardLoad>& shards() const { return shards_; }

  // Median EWMA arrival rate across shards; 0 with no shards. The skew
  // detector compares against the median (not the mean) so one molten
  // shard cannot drag the reference point up and hide itself.
  double MedianRate() const;

  // Sum of EWMA arrival rates of shards hosted on `machine`.
  double MachineRate(MachineId machine) const;

 private:
  struct History {
    Ewma rate;
    Ewma shed_rate;
    int64_t last_arrivals = 0;
    int64_t last_sheds = 0;
  };

  double alpha_;
  SimTime last_observe_ = SimTime::Zero();
  bool observed_once_ = false;
  std::unordered_map<uint64_t, History> history_;  // by shard proclet id
  std::vector<ShardLoad> shards_;
};

}  // namespace quicksand

#endif  // QUICKSAND_AUTOSCALE_LOAD_STATS_H_
