#include "quicksand/autoscale/reshape_planner.h"

#include <algorithm>
#include <unordered_set>

namespace quicksand {

bool ReshapePlanner::InCooldown(SimTime now, uint64_t shard) const {
  auto it = shard_cooldown_until_.find(shard);
  return it != shard_cooldown_until_.end() && now < it->second;
}

std::vector<ReshapeAction> ReshapePlanner::Plan(
    SimTime now, const LoadStatsCollector& loads, const SkewVerdict& verdict,
    const std::vector<MachineId>& candidates) {
  std::vector<ReshapeAction> actions;
  if (now < global_cooldown_until_ || candidates.empty()) {
    return actions;
  }
  const int shard_count = static_cast<int>(loads.shards().size());

  // Least-loaded target, by the collector's own per-machine rate sums, so
  // the planner and detector argue from the same numbers.
  auto pick_target = [&](MachineId exclude) {
    MachineId best = kInvalidMachineId;
    double best_rate = 0.0;
    for (MachineId m : candidates) {
      if (m == exclude) {
        continue;
      }
      const double rate = loads.MachineRate(m);
      if (best == kInvalidMachineId || rate < best_rate) {
        best = m;
        best_rate = rate;
      }
    }
    return best;
  };
  auto machine_of = [&](uint64_t shard) {
    for (const ShardLoad& s : loads.shards()) {
      if (s.sample.proclet == shard) {
        return s.sample.machine;
      }
    }
    return kInvalidMachineId;
  };

  int grown = 0;  // splits planned this tick count against max_shards
  for (uint64_t shard : verdict.hot) {
    if (static_cast<int>(actions.size()) >= options_.max_actions_per_tick) {
      return actions;
    }
    if (InCooldown(now, shard)) {
      continue;
    }
    const MachineId donor_machine = machine_of(shard);
    const MachineId target = pick_target(donor_machine);
    if (target == kInvalidMachineId) {
      continue;  // nowhere to put the load (e.g. two-machine cluster, donor
                 // already on the only candidate)
    }
    ReshapeAction a;
    a.shard = shard;
    a.target = target;
    a.kind = (shard_count + grown < options_.max_shards) ? ReshapeKind::kSplit
                                                         : ReshapeKind::kMigrate;
    if (a.kind == ReshapeKind::kSplit) {
      ++grown;
    }
    actions.push_back(a);
  }
  if (!verdict.hot.empty() || actions.size() > 0) {
    return actions;  // merge only on calm ticks
  }

  std::unordered_set<uint64_t> cold(verdict.cold.begin(), verdict.cold.end());
  std::unordered_set<uint64_t> claimed;
  int remaining = shard_count;
  // Walk shards in range order and pair each cold shard with a cold
  // right-neighbor; `claimed` stops one shard from joining two merges.
  const auto& shards = loads.shards();
  for (size_t i = 0; i + 1 < shards.size(); ++i) {
    if (static_cast<int>(actions.size()) >= options_.max_actions_per_tick ||
        remaining <= options_.min_shards) {
      break;
    }
    const uint64_t left = shards[i].sample.proclet;
    const uint64_t right = shards[i + 1].sample.proclet;
    if (cold.count(left) == 0 || cold.count(right) == 0 ||
        claimed.count(left) != 0 || claimed.count(right) != 0 ||
        shards[i].sample.range_end != shards[i + 1].sample.range_begin ||
        InCooldown(now, left) || InCooldown(now, right)) {
      continue;
    }
    ReshapeAction a;
    a.kind = ReshapeKind::kMerge;
    a.shard = left;
    a.other = right;
    actions.push_back(a);
    claimed.insert(left);
    claimed.insert(right);
    --remaining;
  }
  return actions;
}

void ReshapePlanner::NoteExecuted(SimTime now, const ReshapeAction& action) {
  shard_cooldown_until_[action.shard] = now + options_.shard_cooldown;
  if (action.kind == ReshapeKind::kMerge) {
    shard_cooldown_until_[action.other] = now + options_.shard_cooldown;
  }
  global_cooldown_until_ = now + options_.global_cooldown;
}

void ReshapePlanner::NoteDeferred(SimTime now, const ReshapeAction& action) {
  shard_cooldown_until_[action.shard] = now + options_.shard_cooldown;
}

}  // namespace quicksand
