#include "quicksand/autoscale/reshape_executor.h"

#include <utility>

namespace quicksand {

Duration ReshapeExecutor::EstimateStall(ReshapeKind kind, int64_t bytes) const {
  const RuntimeConfig& cfg = rt_.config();
  int64_t moved = bytes;
  switch (kind) {
    case ReshapeKind::kSplit:
      // A load-median split point moves about half the entries.
      moved = bytes / 2;
      break;
    case ReshapeKind::kMerge:
      break;  // the right shard moves wholesale
    case ReshapeKind::kMigrate:
      if (cfg.lazy_migration) {
        // Lazy migration copies the heap in the background; the gate only
        // closes for the fixed handoff.
        return cfg.migration_fixed_overhead;
      }
      break;
  }
  return cfg.migration_fixed_overhead + rt_.fabric().UnloadedTransferTime(moved);
}

void ReshapeExecutor::Trace(Ctx ctx, TraceOp op, uint64_t shard, int64_t arg) {
  Tracer* tracer = rt_.tracer();
  if (tracer == nullptr) {
    return;
  }
  MachineId machine = rt_.LocationOf(shard);
  if (machine == kInvalidMachineId) {
    machine = ctx.machine;
  }
  tracer->Instant(ctx.trace, machine, op, shard, arg);
}

Task<ReshapeExecutor::Outcome> ReshapeExecutor::Execute(Ctx ctx,
                                                        ReshapeAction action,
                                                        int64_t bytes) {
  Outcome out;
  const Duration stall = EstimateStall(action.kind, bytes);
  const Duration budget = Duration::Nanos(static_cast<int64_t>(
      options_.max_copy_fraction_of_slo *
      static_cast<double>(options_.slo.nanos())));
  if (stall > budget) {
    ++deferred_;
    Trace(ctx, TraceOp::kReshapeDefer, action.shard, bytes);
    out.deferred = true;
    co_return out;
  }
  switch (action.kind) {
    case ReshapeKind::kSplit: {
      const Result<uint64_t> point = set_.SuggestSplitPoint(action.shard);
      if (!point.ok()) {
        ++failed_;
        out.status = point.status();
        co_return out;
      }
      auto split = set_.SplitShard(ctx, action.shard, *point, action.target);
      out.status = co_await std::move(split);
      if (!out.status.ok()) {
        ++failed_;
        co_return out;
      }
      ++splits_;
      Trace(ctx, TraceOp::kReshapeSplit, action.shard, bytes / 2);
      break;
    }
    case ReshapeKind::kMerge: {
      auto merge = set_.MergeShards(ctx, action.shard, action.other);
      out.status = co_await std::move(merge);
      if (!out.status.ok()) {
        ++failed_;
        co_return out;
      }
      ++merges_;
      Trace(ctx, TraceOp::kReshapeMerge, action.shard, bytes);
      break;
    }
    case ReshapeKind::kMigrate: {
      auto migrate = set_.MigrateShard(ctx, action.shard, action.target);
      out.status = co_await std::move(migrate);
      if (!out.status.ok()) {
        ++failed_;
        co_return out;
      }
      ++migrations_;
      Trace(ctx, TraceOp::kReshapeMigrate, action.shard, bytes);
      break;
    }
  }
  out.executed = true;
  co_return out;
}

}  // namespace quicksand
