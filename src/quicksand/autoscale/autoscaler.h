// Autoscaler: the closed control loop over a ReshapableShardSet.
//
//   observe -> detect -> plan -> execute, every `period`:
//
//  * observe — SampleShards cumulative counters, differenced into EWMA
//    rates (LoadStatsCollector),
//  * detect — hot/cold verdicts vs the cluster median, with hysteresis and
//    overload nudges (SkewDetector),
//  * plan — split-hot / migrate-when-at-budget / merge-cold, paced by
//    cooldowns and a per-tick cap (ReshapePlanner),
//  * execute — run the verbs against the shard set, deferring any reshape
//    whose copy stall would blow the SLO (ReshapeExecutor).
//
// This is the mechanism that turns Quicksand's "resourcelets come and go"
// elasticity into SERVING elasticity: instead of shedding a flash crowd at
// a hot shard forever (ab9's endpoint), the loop reshapes the hot range
// across whatever machines currently have slack (ab10's endpoint).
//
// Wiring: construct with the runtime and shard set; optionally
// AttachAdmission so shed-state machines fast-track detection, and hand the
// instance to each LocalReactor (AttachAutoscaler) so CPU-pressure events
// nudge it too; AttachAutoscale on ClusterMetrics exports the
// autoscale_* series. Tests drive the loop synchronously through Tick.

#ifndef QUICKSAND_AUTOSCALE_AUTOSCALER_H_
#define QUICKSAND_AUTOSCALE_AUTOSCALER_H_

#include <vector>

#include "quicksand/autoscale/load_stats.h"
#include "quicksand/autoscale/reshape_executor.h"
#include "quicksand/autoscale/reshape_planner.h"
#include "quicksand/autoscale/shard_set.h"
#include "quicksand/autoscale/skew_detector.h"
#include "quicksand/health/failure_detector.h"
#include "quicksand/overload/admission.h"

namespace quicksand {

struct AutoscalerOptions {
  // Control period. Slower than the LocalReactor (which moves single
  // proclets reactively); reshaping needs a rate estimate, not an edge.
  Duration period = Duration::Millis(2);
  // EWMA smoothing for per-shard rates.
  double ewma_alpha = 0.3;
  SkewDetectorOptions detector{};
  ReshapePlannerOptions planner{};
  ReshapeExecutorOptions executor{};
};

class Autoscaler : public AutoscaleStatsSource {
 public:
  Autoscaler(Runtime& rt, ReshapableShardSet& set, AutoscalerOptions options = {})
      : rt_(rt),
        set_(set),
        options_(options),
        collector_(options.ewma_alpha),
        detector_(options.detector),
        planner_(options.planner),
        executor_(rt, set, options.executor) {}

  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  // Optional, before Start(): machines the admission controller is actively
  // shedding nudge the detector each tick.
  void AttachAdmission(const AdmissionController* admission) {
    admission_ = admission;
  }

  // Optional, before Start(): consult the failure detector each tick.
  // Suspected/dead machines are dropped from split/migrate candidate
  // selection, and verdicts against shards HOSTED on such machines are
  // paused — the load samples feeding those verdicts are stale (the host
  // stopped answering), and planning a copy out of a possibly-dead machine
  // wastes the reshape budget on a verb that will fail anyway.
  void AttachHealth(const FailureDetector* health) { health_ = health; }

  // Spawns the periodic control fiber. Call once.
  void Start();
  // Stops the loop at its next wakeup.
  void Stop() { running_ = false; }

  // Overload signal from outside the loop (LocalReactor CPU pressure):
  // fast-tracks the top shard on `machine` past the hot streak.
  void Nudge(MachineId machine) { detector_.Nudge(machine); }

  // One observe->detect->plan->execute iteration. The loop calls this every
  // period; tests call it directly for lockstep control.
  Task<> Tick(Ctx ctx);

  // AutoscaleStatsSource.
  AutoscaleSample SampleAutoscale(SimTime now) const override;

  int64_t splits() const { return executor_.splits(); }
  int64_t merges() const { return executor_.merges(); }
  int64_t migrations() const { return executor_.migrations(); }
  int64_t deferred() const { return executor_.deferred(); }
  int64_t reshape_failures() const { return executor_.failed(); }
  int64_t health_skips() const { return health_skips_; }
  int hot_shards() const { return last_hot_; }
  const LoadStatsCollector& collector() const { return collector_; }

 private:
  Task<> Loop();
  bool MachineHealthy(MachineId m) const;

  Runtime& rt_;
  ReshapableShardSet& set_;
  AutoscalerOptions options_;
  const AdmissionController* admission_ = nullptr;
  const FailureDetector* health_ = nullptr;
  LoadStatsCollector collector_;
  SkewDetector detector_;
  ReshapePlanner planner_;
  ReshapeExecutor executor_;
  bool running_ = false;
  int last_hot_ = 0;
  int64_t health_skips_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_AUTOSCALE_AUTOSCALER_H_
