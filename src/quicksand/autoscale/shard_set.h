// ReshapableShardSet: the contract between a sharded serving tier and the
// autoscale control loop.
//
// The autoscaler never touches serving internals — it observes per-shard
// load through SampleShards and steers through four verbs: split a hot
// shard, merge cold neighbors, migrate a shard wholesale, and ask the set
// where a split should cut. Anything that owns a set of range-partitioned
// proclets (today KvFrontend; later the memoization tier or gang-placed
// shard groups, ROADMAP items 4–5) can implement this and inherit the whole
// control loop.
//
// Contract details the executor depends on:
//
//  * reshape verbs are synchronous with routing: when SplitShard returns Ok,
//    the set already routes the moved range to the new shard — a racing
//    request sees at worst one wrong_shard bounce, never a lost write,
//  * verbs fail with FailedPrecondition rather than blocking when the shard
//    cannot be reshaped (durable/replicated shards are pinned, ranges too
//    narrow to cut),
//  * SampleShards counters are cumulative, so the collector can difference
//    them at its own cadence.

#ifndef QUICKSAND_AUTOSCALE_SHARD_SET_H_
#define QUICKSAND_AUTOSCALE_SHARD_SET_H_

#include <cstdint>
#include <vector>

#include "quicksand/cluster/metrics.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

class ReshapableShardSet {
 public:
  virtual ~ReshapableShardSet() = default;

  // Point-in-time per-shard load and placement, ascending by range_begin.
  virtual std::vector<ShardServingSample> SampleShards(SimTime now) const = 0;

  // A hash strictly inside `shard`'s range that balances its recent load
  // (median of recently routed hashes when known, range midpoint otherwise).
  virtual Result<uint64_t> SuggestSplitPoint(ProcletId shard) const = 0;

  // Splits [split_point, end) out of `shard` into a new shard on `target`.
  virtual Task<Status> SplitShard(Ctx ctx, ProcletId shard,
                                  uint64_t split_point, MachineId target) = 0;

  // Merges `right` into `left`; the two must be range-adjacent.
  virtual Task<Status> MergeShards(Ctx ctx, ProcletId left,
                                   ProcletId right) = 0;

  // Moves `shard` wholesale to `target`.
  virtual Task<Status> MigrateShard(Ctx ctx, ProcletId shard,
                                    MachineId target) = 0;

  // Machine the frontend itself runs on — never a reshape target.
  virtual MachineId home() const = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_AUTOSCALE_SHARD_SET_H_
