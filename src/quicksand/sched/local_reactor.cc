#include "quicksand/sched/local_reactor.h"

#include <algorithm>

#include "quicksand/autoscale/autoscaler.h"
#include "quicksand/common/logging.h"
#include "quicksand/memo/memo_harvester.h"

namespace quicksand {

LocalReactor::LocalReactor(Runtime& rt, MachineId machine, LocalReactorConfig config)
    : rt_(rt), machine_(machine), config_(config) {}

void LocalReactor::Start() {
  rt_.sim().Spawn(Loop(), "local_reactor_m" + std::to_string(machine_));
}

bool LocalReactor::InCooldown(ProcletId id) const {
  auto it = last_moved_.find(id);
  return it != last_moved_.end() &&
         rt_.sim().Now() - it->second < config_.proclet_cooldown;
}

Task<> LocalReactor::Loop() {
  for (;;) {
    co_await rt_.sim().Sleep(config_.period);
    if (rt_.cluster().machine(machine_).failed()) {
      co_return;  // our machine is dead; nothing left to react to
    }
    co_await HandleCpuPressure();
    co_await HandleMemoryPressure();
  }
}

Task<> LocalReactor::HandleCpuPressure() {
  Machine& self = rt_.cluster().machine(machine_);
  // Shed state from the overload controller overrides the local gates: the
  // controller only sheds after sustained queueing above target, which is
  // pressure regardless of which priority class causes it.
  const bool shedding = overload_ != nullptr && overload_->Overloaded(machine_);
  if (!shedding &&
      self.cpu().OldestWaitingAge(kPriorityNormal) < config_.cpu_starvation_threshold) {
    co_return;
  }
  // Pressure confirmed (by either signal). Serving shards pinned here cannot
  // be evicted below — splitting them is the autoscaler's job; tell it now.
  if (autoscaler_ != nullptr) {
    autoscaler_->Nudge(machine_);
  }
  // Saturation by our own priority class is throughput, not pressure; only
  // react when higher-priority work is actually squeezing us out.
  if (!shedding && self.cpu().RunnableAbove(kPriorityNormal) == 0) {
    co_return;
  }
  // Find the machine with the most idle cores (excluding us).
  MachineId best = kInvalidMachineId;
  double best_idle = config_.min_target_idle_cores;
  for (MachineId m = 0; m < rt_.cluster().size(); ++m) {
    if (m == machine_) {
      continue;
    }
    const Machine& candidate = rt_.cluster().machine(m);
    if (!candidate.accepting()) {
      continue;  // dead or being revoked — never a migration target
    }
    const double idle = static_cast<double>(candidate.spec().cores) *
                        (1.0 - candidate.cpu().LoadFactor());
    if (idle > best_idle) {
      best_idle = idle;
      best = m;
    }
  }
  if (best == kInvalidMachineId) {
    co_return;  // nowhere better to run
  }
  // Evict compute proclets, smallest heap first (cheapest to move).
  std::vector<ProcletBase*> candidates;
  for (ProcletId id : rt_.ProcletsOn(machine_)) {
    ProcletBase* p = rt_.Find(id);
    if (p != nullptr && p->kind() == ProcletKind::kCompute && !p->gate_closed() &&
        !InCooldown(id)) {
      candidates.push_back(p);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ProcletBase* a, const ProcletBase* b) {
              return a->heap_bytes() < b->heap_bytes();
            });
  int moved = 0;
  for (ProcletBase* p : candidates) {
    if (moved >= config_.max_migrations_per_round) {
      break;
    }
    const ProcletId id = p->id();
    auto migrate = rt_.Migrate(id, best);
    const Status status = co_await std::move(migrate);
    if (status.ok()) {
      last_moved_[id] = rt_.sim().Now();
      ++cpu_evictions_;
      ++moved;
      QS_LOG_DEBUG("reactor", "m%u: cpu pressure, evicted compute proclet %llu -> m%u",
                   machine_, static_cast<unsigned long long>(id), best);
    }
  }
}

Task<> LocalReactor::HandleMemoryPressure() {
  Machine& self = rt_.cluster().machine(machine_);
  if (self.memory().utilization() < config_.memory_high_watermark) {
    co_return;
  }
  // Cache first: shrinking the memo cache is free relief (no gate closed,
  // no wire bytes) — only migrate live proclets if that was not enough.
  if (harvester_ != nullptr) {
    const int64_t target_free =
        self.memory().used() -
        static_cast<int64_t>(config_.memory_low_target *
                             static_cast<double>(self.memory().capacity()));
    if (target_free > 0) {
      auto release = harvester_->ReleaseBytes(machine_, target_free);
      const int64_t freed = co_await std::move(release);
      if (freed > 0) {
        ++cache_harvests_;
        cache_harvested_bytes_ += freed;
        QS_LOG_DEBUG("reactor", "m%u: memory pressure, harvested %lld cache bytes",
                     machine_, static_cast<long long>(freed));
      }
    }
    if (self.memory().utilization() <= config_.memory_low_target) {
      co_return;
    }
  }
  // Move memory proclets, largest first, until below the low target. Hot
  // (recently invoked) proclets are skipped — see memory_hot_window; the
  // harvestable cache shards are never migrated (dropping beats shipping).
  std::vector<ProcletBase*> candidates;
  for (ProcletId id : rt_.ProcletsOn(machine_)) {
    ProcletBase* p = rt_.Find(id);
    if (p == nullptr || p->kind() != ProcletKind::kMemory || p->gate_closed() ||
        p->harvestable() || InCooldown(id)) {
      continue;
    }
    const bool hot = p->invocation_count() > 0 &&
                     rt_.sim().Now() - p->last_invocation() <
                         config_.memory_hot_window;
    if (!hot) {
      candidates.push_back(p);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ProcletBase* a, const ProcletBase* b) {
              return a->heap_bytes() > b->heap_bytes();
            });
  int moved = 0;
  for (ProcletBase* p : candidates) {
    if (self.memory().utilization() <= config_.memory_low_target ||
        moved >= config_.max_migrations_per_round) {
      break;
    }
    // Most free memory elsewhere.
    PlacementRequest req;
    req.kind = ProcletKind::kMemory;
    req.heap_bytes = p->heap_bytes();
    req.exclude = machine_;
    BestFitPolicy policy;
    Result<MachineId> target = policy.Place(req, rt_.cluster());
    if (!target.ok()) {
      break;  // cluster-wide memory exhaustion; nothing to do
    }
    // Only evict if the receiver stays comfortably below *its* watermark;
    // otherwise its reactor would bounce the proclet straight back
    // (cluster-wide pressure cannot be migrated away).
    const MemoryAccount& dst_mem = rt_.cluster().machine(*target).memory();
    const double dst_util_after =
        static_cast<double>(dst_mem.used() + p->heap_bytes()) /
        static_cast<double>(dst_mem.capacity());
    if (dst_util_after >= config_.memory_low_target) {
      break;
    }
    const ProcletId id = p->id();
    auto migrate = rt_.Migrate(id, *target);
    const Status status = co_await std::move(migrate);
    if (status.ok()) {
      last_moved_[id] = rt_.sim().Now();
      ++memory_evictions_;
      ++moved;
      QS_LOG_DEBUG("reactor", "m%u: memory pressure, evicted proclet %llu -> m%u",
                   machine_, static_cast<unsigned long long>(id), *target);
    }
  }
}

std::vector<std::unique_ptr<LocalReactor>> StartLocalReactors(Runtime& rt,
                                                              LocalReactorConfig config) {
  std::vector<std::unique_ptr<LocalReactor>> reactors;
  for (MachineId m = 0; m < rt.cluster().size(); ++m) {
    reactors.push_back(std::make_unique<LocalReactor>(rt, m, config));
    reactors.back()->Start();
  }
  return reactors;
}

}  // namespace quicksand
