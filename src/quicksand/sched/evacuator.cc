#include "quicksand/sched/evacuator.h"

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>

#include "quicksand/common/logging.h"
#include "quicksand/memo/memo_harvester.h"
#include "quicksand/sim/fiber.h"

namespace quicksand {

namespace {

// Evacuation priority: state-bearing proclets first (losing them loses
// data), compute last (losing one loses only queued work).
int EvacuationRank(ProcletKind kind) {
  switch (kind) {
    case ProcletKind::kStorage:
      return 0;
    case ProcletKind::kMemory:
      return 1;
    case ProcletKind::kCompute:
      return 2;
  }
  return 3;
}

}  // namespace

void EmergencyEvacuator::Arm(FaultInjector& injector) {
  injector.OnRevocation([this](const RevokeResources& notice) {
    rt_.sim().Spawn(HandleNotice(notice),
                    "evacuate_m" + std::to_string(notice.machine));
  });
}

Task<> EmergencyEvacuator::HandleNotice(RevokeResources notice) {
  (void)co_await Evacuate(notice.machine, notice.deadline);
}

Task<EvacuationReport> EmergencyEvacuator::Evacuate(MachineId machine,
                                                    SimTime deadline) {
  // The deadline is enforced physically, not by this coroutine: the machine
  // fail-stops at `deadline`, at which point in-flight migrations observe
  // the loss and resolve with DataLoss. We only record it for the report.
  (void)deadline;
  EvacuationReport report;
  report.machine = machine;
  report.started = rt_.sim().Now();

  // The whole revocation-deadline scramble is one `evacuate` span against
  // the dying machine; each migration inside records its own span.
  SpanGuard span;
  if (Tracer* tracer = rt_.tracer()) {
    span = SpanGuard(tracer,
                     tracer->BeginSpan(TraceContext{}, machine,
                                       TraceOp::kEvacuate, 0, 0),
                     machine);
  }

  // Cache before state: harvestable proclets are dropped outright (zero
  // wire cost, heap freed immediately) so the deadline budget below is
  // spent only on proclets whose state cannot be recomputed.
  if (drop_harvestable_) {
    for (ProcletId id : rt_.ProcletsOn(machine)) {
      ProcletBase* p = rt_.Find(id);
      if (p != nullptr && p->harvestable()) {
        ++report.cache_dropped;
      }
    }
  }
  if (harvester_ != nullptr && drop_harvestable_) {
    auto harvest = harvester_->HarvestMachine(machine);
    report.cache_bytes_dropped = co_await std::move(harvest);
    total_cache_bytes_dropped_ += report.cache_bytes_dropped;
  }

  struct Item {
    ProcletId id;
    int rank;
    int64_t bytes;
  };
  std::vector<Item> items;
  for (ProcletId id : rt_.ProcletsOn(machine)) {
    ProcletBase* p = rt_.Find(id);
    if (p == nullptr) {
      continue;
    }
    if (drop_harvestable_ && p->harvestable()) {
      // Anything harvestable still standing (e.g. a directory not
      // registered with the harvester) is not worth migration budget; it
      // dies with the machine and refills elsewhere.
      continue;
    }
    items.push_back(Item{id, EvacuationRank(p->kind()), p->heap_bytes()});
  }
  // Storage > memory > compute; smallest-first within a class so the most
  // proclets clear the wire before the deadline; id as a deterministic tie
  // break.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.rank != b.rank) {
      return a.rank < b.rank;
    }
    if (a.bytes != b.bytes) {
      return a.bytes < b.bytes;
    }
    return a.id < b.id;
  });
  report.considered = static_cast<int64_t>(items.size());

  // Choose targets up front, debiting planned bytes so a burst of
  // evacuations doesn't pile onto the single freest machine and then fail
  // TryCharge. Migrations run SEQUENTIALLY, in priority order: the fabric
  // fair-shares the dying machine's NIC across concurrent transfers at frame
  // granularity, so launching everything at once would make every migration
  // finish at roughly the same (late) time and the deadline would kill them
  // all. One at a time, each completed migration is a proclet saved.
  std::unordered_map<MachineId, int64_t> planned;
  int64_t survived = 0;
  for (const Item& item : items) {
    MachineId target = kInvalidMachineId;
    int64_t best_free = -1;
    for (MachineId m = 0; m < rt_.cluster().size(); ++m) {
      if (m == machine) {
        continue;
      }
      const Machine& candidate = rt_.cluster().machine(m);
      if (!candidate.accepting()) {
        continue;
      }
      const int64_t free = candidate.memory().free() - planned[m];
      if (free >= item.bytes && free > best_free) {
        best_free = free;
        target = m;
      }
    }
    if (target == kInvalidMachineId) {
      continue;  // abandoned: no survivor machine can absorb it
    }
    planned[target] += item.bytes;
    const Status status = co_await rt_.Migrate(item.id, target);
    if (status.ok()) {
      ++survived;
    }
    // Once the deadline hits, the machine is dead and the remaining
    // migrations fail fast with DataLoss — the loop still terminates
    // promptly.
  }

  report.evacuated = survived;
  report.abandoned = report.considered - report.evacuated;
  report.elapsed = rt_.sim().Now() - report.started;
  total_evacuated_ += report.evacuated;
  total_abandoned_ += report.abandoned;
  QS_LOG_DEBUG("evacuator", "m%u: evacuated %lld/%lld proclets in %s", machine,
               static_cast<long long>(report.evacuated),
               static_cast<long long>(report.considered),
               report.elapsed.ToString().c_str());
  span.End("ok", report.evacuated);
  reports_.push_back(report);
  co_return report;
}

}  // namespace quicksand
