#include "quicksand/sched/placement.h"

#include <algorithm>

namespace quicksand {

bool PlacementPolicy::Feasible(const PlacementRequest& request, const Machine& m) {
  if (m.id() == request.exclude) {
    return false;
  }
  // Failed machines host nothing; revoked machines are about to.
  if (!m.accepting()) {
    return false;
  }
  return m.memory().free() >= request.heap_bytes;
}

double PlacementScore(const PlacementRequest& request, const Machine& m,
                      bool exclude_one_hosted) {
  switch (request.kind) {
    case ProcletKind::kCompute: {
      // Idle capacity: cores not occupied by runnable work, discounted by the
      // compute proclets already placed here. The ratio form spreads a batch
      // of placements *proportionally to capacity* (a 10-core machine gets
      // ~5x the proclets of a 2-core one), instead of piling everything onto
      // the largest machine until runtime load appears.
      const double idle =
          std::max(0.0, static_cast<double>(m.spec().cores) *
                            (1.0 - m.cpu().LoadFactor()));
      double hosted = static_cast<double>(m.hosted_compute());
      if (exclude_one_hosted && hosted > 0) {
        hosted -= 1.0;
      }
      return idle / (1.0 + hosted);
    }
    case ProcletKind::kMemory:
      return static_cast<double>(m.memory().free());
    case ProcletKind::kStorage:
      // Storage proclets chase free disk capacity, not RAM.
      return static_cast<double>(m.disk().capacity().free());
  }
  return 0.0;
}

Result<MachineId> FirstFitPolicy::Place(const PlacementRequest& request,
                                        Cluster& cluster) {
  if (request.pinned.has_value()) {
    return *request.pinned;
  }
  for (MachineId id = 0; id < cluster.size(); ++id) {
    if (Feasible(request, cluster.machine(id))) {
      return id;
    }
  }
  return Status::ResourceExhausted("no machine fits proclet");
}

Result<MachineId> BestFitPolicy::Place(const PlacementRequest& request,
                                       Cluster& cluster) {
  if (request.pinned.has_value()) {
    return *request.pinned;
  }
  MachineId best = kInvalidMachineId;
  double best_score = -1.0;
  for (MachineId id = 0; id < cluster.size(); ++id) {
    const Machine& m = cluster.machine(id);
    if (!Feasible(request, m)) {
      continue;
    }
    const double score = PlacementScore(request, m);
    if (score > best_score) {
      best_score = score;
      best = id;
    }
  }
  if (best == kInvalidMachineId) {
    return Status::ResourceExhausted("no machine fits proclet");
  }
  return best;
}

Result<MachineId> LocalityAwarePolicy::Place(const PlacementRequest& request,
                                             Cluster& cluster) {
  if (request.pinned.has_value()) {
    return *request.pinned;
  }
  BestFitPolicy best_fit;
  Result<MachineId> best = best_fit.Place(request, cluster);
  if (!best.ok() || request.near == kInvalidMachineId ||
      request.near >= cluster.size()) {
    return best;
  }
  const Machine& near = cluster.machine(request.near);
  if (!Feasible(request, near)) {
    return best;
  }
  const double near_score = PlacementScore(request, near);
  const double best_score = PlacementScore(request, cluster.machine(*best));
  if (near_score >= best_score * (1.0 - slack_)) {
    return request.near;
  }
  return best;
}

Result<MachineId> ChooseReplicaTarget(Cluster& cluster, MachineId avoid,
                                      int64_t bytes) {
  MachineId best = kInvalidMachineId;
  int64_t best_free = -1;
  for (MachineId id = 0; id < cluster.size(); ++id) {
    if (id == avoid) {
      continue;
    }
    const Machine& m = cluster.machine(id);
    if (!m.accepting()) {
      continue;
    }
    const int64_t free = m.memory().free();
    if (free >= bytes && free > best_free) {
      best_free = free;
      best = id;
    }
  }
  if (best == kInvalidMachineId) {
    return Status::ResourceExhausted("no anti-affine machine can hold replica");
  }
  return best;
}

}  // namespace quicksand
