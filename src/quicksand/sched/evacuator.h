// EmergencyEvacuator: race a revocation deadline to save proclets.
//
// When a machine's resources are revoked (the normal end of life for
// harvested capacity — the paper's "idle for only a few milliseconds"
// resources), the evacuator gets a warning window and migrates every hosted
// proclet somewhere safe before the machine fail-stops. Ordering maximizes
// what survives:
//
//  * storage > memory > compute — storage and memory proclets ARE state;
//    a lost compute proclet loses only queued work,
//  * smallest-first within a class — more proclets cross the wire before
//    the deadline (survivor count, not byte count, is the metric).
//
// Migrations run one at a time, reusing the runtime's normal
// gate/drain/copy path. Sequencing matters: the fabric fair-shares a NIC
// across concurrent transfers, so migrating everything at once would bring
// every proclet to ~99% copied when the deadline kills them all, while the
// sequential order converts any partial window into completed survivors.
// There is no cancellation at the deadline: the machine simply dies,
// in-flight migrations observe the loss and fail, and whatever never
// started is abandoned (lost).
//
// Guarantee: proclets the evacuator fully migrated before the deadline
// survive. No guarantee: anything still migrating (or never started) at the
// deadline, proclets whose gate was closed by a competing operation, or
// placements the rest of the cluster cannot absorb.

#ifndef QUICKSAND_SCHED_EVACUATOR_H_
#define QUICKSAND_SCHED_EVACUATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/runtime/runtime.h"

namespace quicksand {

class MemoHarvester;

struct EvacuationReport {
  MachineId machine = kInvalidMachineId;
  SimTime started;
  Duration elapsed = Duration::Zero();  // notice -> last migration resolved
  int64_t considered = 0;               // proclets hosted at the notice
  int64_t evacuated = 0;                // migrated off before the deadline
  int64_t abandoned = 0;                // lost or failed to move
  int64_t cache_dropped = 0;            // harvestable proclets dropped instead
  int64_t cache_bytes_dropped = 0;      // cache bytes freed by the harvest
};

class EmergencyEvacuator {
 public:
  explicit EmergencyEvacuator(Runtime& rt) : rt_(rt) {}

  EmergencyEvacuator(const EmergencyEvacuator&) = delete;
  EmergencyEvacuator& operator=(const EmergencyEvacuator&) = delete;

  // Subscribes to the injector's revocation notices; each notice spawns an
  // evacuation fiber racing that notice's deadline.
  void Arm(FaultInjector& injector);

  // Optional: cache shards on a revoked machine are harvested (dropped,
  // zero wire cost) before any migration starts, and harvestable proclets
  // are excluded from the migration list — the whole deadline budget goes
  // to live state. Call before Arm().
  void AttachMemoHarvester(MemoHarvester* harvester) { harvester_ = harvester; }

  // Ablation knob (bench/ab12): when false, harvestable proclets are
  // treated like ordinary memory proclets and migrated instead of dropped,
  // spending deadline budget shipping refillable cache bytes.
  void set_drop_harvestable(bool drop) { drop_harvestable_ = drop; }

  // Evacuates everything hosted on `machine`; returns when every migration
  // has resolved (successfully or not). Callable directly for tests.
  Task<EvacuationReport> Evacuate(MachineId machine, SimTime deadline);

  const std::vector<EvacuationReport>& reports() const { return reports_; }
  int64_t total_evacuated() const { return total_evacuated_; }
  int64_t total_abandoned() const { return total_abandoned_; }
  int64_t total_cache_bytes_dropped() const {
    return total_cache_bytes_dropped_;
  }

 private:
  Task<> HandleNotice(RevokeResources notice);

  Runtime& rt_;
  MemoHarvester* harvester_ = nullptr;
  bool drop_harvestable_ = true;
  std::vector<EvacuationReport> reports_;
  int64_t total_evacuated_ = 0;
  int64_t total_abandoned_ = 0;
  int64_t total_cache_bytes_dropped_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_SCHED_EVACUATOR_H_
