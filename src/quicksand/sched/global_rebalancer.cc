#include "quicksand/sched/global_rebalancer.h"

#include <algorithm>

#include "quicksand/common/logging.h"
#include "quicksand/sched/placement.h"

namespace quicksand {

GlobalRebalancer::GlobalRebalancer(Runtime& rt, GlobalRebalancerConfig config)
    : rt_(rt), config_(config) {}

void GlobalRebalancer::Start() { rt_.sim().Spawn(Loop(), "global_rebalancer"); }

Task<> GlobalRebalancer::Loop() {
  for (;;) {
    co_await rt_.sim().Sleep(config_.period);
    (void)co_await RebalanceOnce();
  }
}

double GlobalRebalancer::ScoreOn(const ProcletBase& p, MachineId machine) const {
  PlacementRequest req;
  req.kind = p.kind();
  req.heap_bytes = p.heap_bytes();
  const Machine& m = rt_.cluster().machine(machine);
  // Don't let the proclet's own presence handicap its current machine.
  const bool exclude_self = (machine == p.location());
  double score = PlacementScore(req, m, exclude_self);
  if (exclude_self && p.kind() == ProcletKind::kMemory) {
    // Its heap is charged here; compare "free bytes if I weren't here" with
    // the other machines' free bytes.
    score += static_cast<double>(p.heap_bytes());
  }
  if (config_.affinity_weight > 0.0) {
    // Reward machines hosting proclets this one talks to.
    double affinity = 0.0;
    for (const auto& [peer, bytes] : rt_.AffinityPeers(p.id())) {
      if (rt_.LocationOf(peer) == machine) {
        affinity += static_cast<double>(bytes);
      }
    }
    score += config_.affinity_weight * affinity;
  }
  return score;
}

Task<int> GlobalRebalancer::RebalanceOnce() {
  struct Move {
    ProcletId id;
    MachineId to;
    double gain;
  };
  std::vector<Move> moves;
  for (ProcletId id : rt_.AllProclets()) {
    ProcletBase* p = rt_.Find(id);
    if (p == nullptr || p->gate_closed()) {
      continue;
    }
    auto cooled = last_moved_.find(id);
    if (cooled != last_moved_.end() &&
        rt_.sim().Now() - cooled->second < config_.proclet_cooldown) {
      continue;
    }
    if (p->kind() == ProcletKind::kMemory && p->invocation_count() > 0 &&
        rt_.sim().Now() - p->last_invocation() < config_.memory_hot_window) {
      continue;
    }
    const MachineId current = p->location();
    const double here = ScoreOn(*p, current);
    MachineId best = current;
    double best_score = here;
    for (MachineId m = 0; m < rt_.cluster().size(); ++m) {
      if (m == current) {
        continue;
      }
      if (!rt_.cluster().machine(m).accepting()) {
        continue;  // dead or being revoked — never a migration target
      }
      if (rt_.cluster().machine(m).memory().free() < p->heap_bytes()) {
        continue;
      }
      const double score = ScoreOn(*p, m);
      if (score > best_score) {
        best_score = score;
        best = m;
      }
    }
    const double min_gain = p->kind() == ProcletKind::kMemory
                                ? static_cast<double>(config_.min_memory_gain_bytes)
                                : 1.0;
    if (best != current &&
        best_score > here * (1.0 + config_.improvement_threshold) + min_gain) {
      moves.push_back(Move{id, best, best_score - here});
    }
  }
  // Biggest wins first, bounded per round.
  std::sort(moves.begin(), moves.end(),
            [](const Move& a, const Move& b) { return a.gain > b.gain; });
  int moved = 0;
  for (const Move& move : moves) {
    if (moved >= config_.max_migrations_per_round) {
      break;
    }
    // Re-validate against the *current* state: earlier moves in this round
    // change scores, and acting on the stale plan piles proclets onto one
    // target (or swaps chatty pairs past each other).
    ProcletBase* p = rt_.Find(move.id);
    if (p == nullptr || p->gate_closed()) {
      continue;
    }
    if (!rt_.cluster().machine(move.to).accepting()) {
      continue;
    }
    if (rt_.cluster().machine(move.to).memory().free() < p->heap_bytes()) {
      continue;
    }
    const double revalidate_gain =
        p->kind() == ProcletKind::kMemory
            ? static_cast<double>(config_.min_memory_gain_bytes)
            : 1.0;
    const double here_now = ScoreOn(*p, p->location());
    const double there_now = ScoreOn(*p, move.to);
    if (there_now <=
        here_now * (1.0 + config_.improvement_threshold) + revalidate_gain) {
      continue;
    }
    auto migrate = rt_.Migrate(move.id, move.to);
    const Status status = co_await std::move(migrate);
    if (status.ok()) {
      last_moved_[move.id] = rt_.sim().Now();
      ++moved;
      ++total_migrations_;
      QS_LOG_DEBUG("rebalancer", "moved proclet %llu -> m%u (gain %.1f)",
                   static_cast<unsigned long long>(move.id), move.to, move.gain);
    }
  }
  co_return moved;
}

}  // namespace quicksand
