// LocalReactor: the fast, per-machine half of the two-level scheduler (§5).
//
// "Fast local decisions to absorb usage spikes": each machine runs a reactor
// fiber that polls its own pressure signals every few hundred microseconds
// and reacts by pushing proclets away:
//
//  * CPU pressure — the oldest normal-priority request has been waiting for
//    a core longer than the threshold (queueing delay as the idle/pressure
//    signal, after Breakwater [12]). Response: migrate compute proclets to
//    the machine with the most idle cores. This is the mechanism behind the
//    Fig. 1 filler application following idle CPU across machines.
//  * Memory pressure — utilization above the high watermark. Response:
//    migrate memory proclets (largest first) to the machine with the most
//    free bytes until utilization drops to the low target.
//
// A per-proclet cooldown prevents ping-ponging.

#ifndef QUICKSAND_SCHED_LOCAL_REACTOR_H_
#define QUICKSAND_SCHED_LOCAL_REACTOR_H_

#include <unordered_map>

#include "quicksand/runtime/runtime.h"

namespace quicksand {

class Autoscaler;
class MemoHarvester;

struct LocalReactorConfig {
  Duration period = Duration::Micros(250);
  // CPU pressure: normal-priority starvation age that triggers eviction.
  Duration cpu_starvation_threshold = Duration::Micros(300);
  // Memory pressure watermarks. These are deliberately high: eviction is for
  // *allocation danger*, not mild fullness — on a cluster that is (say) 95%
  // full in aggregate, shuffling shards between 92%-full machines only
  // gates the application for no durable relief.
  double memory_high_watermark = 0.96;
  double memory_low_target = 0.90;
  // Minimum spacing between migrations of the same proclet.
  Duration proclet_cooldown = Duration::Millis(2);
  // Memory proclets invoked within this window are "hot" (actively written /
  // read — e.g. a queue's tail segment) and are skipped by memory eviction:
  // moving them blocks the application at its busiest point, and they are
  // often about to drain away on their own.
  Duration memory_hot_window = Duration::Millis(5);
  int max_migrations_per_round = 4;
  // A CPU eviction target must have at least this many idle cores.
  double min_target_idle_cores = 0.5;
};

class LocalReactor {
 public:
  LocalReactor(Runtime& rt, MachineId machine, LocalReactorConfig config = {});

  // Spawns the reactor fiber. Call once.
  void Start();

  // Optional: couples the reactor to the overload controller. A machine the
  // controller is actively shedding is overloaded by definition — the
  // reactor then treats shed state as CPU pressure and tries to spread
  // compute proclets away even before raw starvation age trips, so load
  // shedding (drop work now) and migration (move capacity) pull together.
  void AttachOverload(const AdmissionController* admission) {
    overload_ = admission;
  }

  // Optional: nudges the autoscaler whenever this machine trips CPU
  // pressure. The reactor can only move whole proclets; when the hot thing
  // is one indivisible serving shard, the autoscaler's split is the lever
  // that actually helps — the nudge fast-tracks its detection.
  void AttachAutoscaler(Autoscaler* autoscaler) { autoscaler_ = autoscaler; }

  // Optional: memory pressure first shrinks the memo cache on this machine
  // (LRU eviction down to the low target — free, instant, no gate closed)
  // and only migrates live memory proclets if that was not enough.
  // Harvestable proclets are never picked as migration candidates.
  void AttachMemoHarvester(MemoHarvester* harvester) { harvester_ = harvester; }

  int64_t cpu_evictions() const { return cpu_evictions_; }
  int64_t memory_evictions() const { return memory_evictions_; }
  int64_t cache_harvests() const { return cache_harvests_; }
  int64_t cache_harvested_bytes() const { return cache_harvested_bytes_; }

 private:
  Task<> Loop();
  Task<> HandleCpuPressure();
  Task<> HandleMemoryPressure();
  bool InCooldown(ProcletId id) const;

  Runtime& rt_;
  MachineId machine_;
  LocalReactorConfig config_;
  const AdmissionController* overload_ = nullptr;
  Autoscaler* autoscaler_ = nullptr;
  MemoHarvester* harvester_ = nullptr;
  std::unordered_map<ProcletId, SimTime> last_moved_;
  int64_t cpu_evictions_ = 0;
  int64_t memory_evictions_ = 0;
  int64_t cache_harvests_ = 0;
  int64_t cache_harvested_bytes_ = 0;
};

// Convenience: one reactor per machine.
std::vector<std::unique_ptr<LocalReactor>> StartLocalReactors(
    Runtime& rt, LocalReactorConfig config = {});

}  // namespace quicksand

#endif  // QUICKSAND_SCHED_LOCAL_REACTOR_H_
