// GlobalRebalancer: the slow, cluster-wide half of the two-level scheduler
// (§5): "slow global decisions that reflect long-term shifts in usage".
//
// Periodically scans every proclet and asks whether a different machine
// would score meaningfully better for it — considering the resource the
// proclet consumes and, optionally, communication affinity (colocate chatty
// proclets, §5 "How can we maintain locality?"). Migrations per round are
// bounded, and an improvement hysteresis avoids oscillation against the
// local reactors.

#ifndef QUICKSAND_SCHED_GLOBAL_REBALANCER_H_
#define QUICKSAND_SCHED_GLOBAL_REBALANCER_H_

#include <unordered_map>

#include "quicksand/runtime/runtime.h"

namespace quicksand {

struct GlobalRebalancerConfig {
  Duration period = Duration::Millis(50);
  // Required relative score improvement before moving a proclet.
  double improvement_threshold = 0.25;
  int max_migrations_per_round = 8;
  // Weight of affinity (bytes exchanged) vs. resource score when choosing a
  // home; 0 disables affinity-aware colocation.
  double affinity_weight = 0.0;
  // Minimum spacing between global moves of the same proclet. Instantaneous
  // load/free-bytes scores are noisy (queues drain in bursts, queue segments
  // come and go); without a cooldown the rebalancer churns proclets across
  // the threshold every round, and each move's gate-closed window costs the
  // application real time.
  Duration proclet_cooldown = Duration::Millis(500);
  // Skip memory proclets invoked within this window (hot data — a queue's
  // tail, a shard mid-scan): blocking them hurts more than the placement
  // gain, and short-lived proclets drain away on their own.
  Duration memory_hot_window = Duration::Millis(5);
  // Memory scores are free-byte counts; on a nearly-full cluster they are
  // tiny and noisy, so relative thresholds alone still churn. Require at
  // least this much absolute free-byte improvement to move a memory proclet.
  int64_t min_memory_gain_bytes = 64LL * 1024 * 1024;
};

class GlobalRebalancer {
 public:
  GlobalRebalancer(Runtime& rt, GlobalRebalancerConfig config = {});

  void Start();

  // One rebalancing pass (also called by the periodic loop; public for
  // tests and benches that want deterministic rounds).
  Task<int> RebalanceOnce();

  int64_t total_migrations() const { return total_migrations_; }

 private:
  double ScoreOn(const ProcletBase& p, MachineId machine) const;
  Task<> Loop();

  Runtime& rt_;
  GlobalRebalancerConfig config_;
  int64_t total_migrations_ = 0;
  std::unordered_map<ProcletId, SimTime> last_moved_;
};

}  // namespace quicksand

#endif  // QUICKSAND_SCHED_GLOBAL_REBALANCER_H_
