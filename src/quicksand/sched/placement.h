// Placement policies: where to put a new (or migrating) proclet.
//
// Because resource proclets each consume one resource type, placement can
// score machines along that single dimension: memory proclets go where free
// bytes are, compute proclets go where cores are idle (§3.1 — this is what
// makes combining the stranded halves of two imbalanced machines possible in
// Fig. 2). LocalityAwarePolicy additionally honors an affinity hint so
// chatty proclets colocate when resources permit (§5, "How can we maintain
// locality?").

#ifndef QUICKSAND_SCHED_PLACEMENT_H_
#define QUICKSAND_SCHED_PLACEMENT_H_

#include <memory>
#include <optional>
#include <string>

#include "quicksand/cluster/cluster.h"
#include "quicksand/common/status.h"
#include "quicksand/runtime/proclet.h"

namespace quicksand {

struct PlacementRequest {
  ProcletKind kind = ProcletKind::kMemory;
  int64_t heap_bytes = 0;                 // initial memory demand
  MachineId near = kInvalidMachineId;     // affinity hint (best effort)
  std::optional<MachineId> pinned;        // force placement (overrides policy)
  MachineId exclude = kInvalidMachineId;  // never place here (evictions)
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Chooses a hosting machine; ResourceExhausted if nothing fits.
  virtual Result<MachineId> Place(const PlacementRequest& request, Cluster& cluster) = 0;

  virtual std::string name() const = 0;

 protected:
  // True if `m` can host the request at all (memory fit + not excluded).
  static bool Feasible(const PlacementRequest& request, const Machine& m);
};

// Scans machines in id order and takes the first feasible one.
class FirstFitPolicy : public PlacementPolicy {
 public:
  Result<MachineId> Place(const PlacementRequest& request, Cluster& cluster) override;
  std::string name() const override { return "first_fit"; }
};

// Scores machines by the resource the proclet consumes: most free memory for
// memory/storage proclets, lowest CPU load factor for compute proclets.
class BestFitPolicy : public PlacementPolicy {
 public:
  Result<MachineId> Place(const PlacementRequest& request, Cluster& cluster) override;
  std::string name() const override { return "best_fit"; }
};

// BestFit, but takes the `near` machine when its score is within a slack
// factor of the best — trading a little balance for locality.
class LocalityAwarePolicy : public PlacementPolicy {
 public:
  explicit LocalityAwarePolicy(double slack = 0.5) : slack_(slack) {}

  Result<MachineId> Place(const PlacementRequest& request, Cluster& cluster) override;
  std::string name() const override { return "locality_aware"; }

 private:
  double slack_;
};

// Per-machine desirability score for a request; higher is better. Shared by
// the policies and by the reactive schedulers choosing migration targets.
// `exclude_one_hosted` discounts one hosted compute proclet — used when
// scoring a proclet's *current* machine so its own presence doesn't make
// every other machine look better (which would oscillate).
double PlacementScore(const PlacementRequest& request, const Machine& m,
                      bool exclude_one_hosted = false);

// Anti-affine placement for a durability replica (checkpoint depot or
// backup): the machine with the most free memory that is accepting, can fit
// `bytes`, and is NOT `avoid` — so one machine failure never takes out both
// the primary and its replica. ResourceExhausted when no such machine
// exists (single-machine cluster, or everything full).
Result<MachineId> ChooseReplicaTarget(Cluster& cluster, MachineId avoid,
                                      int64_t bytes);

}  // namespace quicksand

#endif  // QUICKSAND_SCHED_PLACEMENT_H_
