// Parallel computation APIs over sharded data (§3.2): ForEach, Map, Reduce.
//
// "Users can pass data structure iterators to a map API; this uses compute
// proclets to execute a function over each element stored within memory
// proclets." The range of a ShardedVector is carved into per-shard-aligned
// spans; each span becomes one pool job that streams its elements (with
// prefetching) and applies the user function.

#ifndef QUICKSAND_COMPUTE_PARALLEL_H_
#define QUICKSAND_COMPUTE_PARALLEL_H_

#include <functional>
#include <memory>
#include <vector>

#include "quicksand/compute/dist_pool.h"
#include "quicksand/ds/sharded_vector.h"
#include "quicksand/ds/stream.h"

namespace quicksand {

struct ParallelOptions {
  // Elements per job; jobs are the unit of CPU scheduling across the pool.
  uint64_t span_elems = 256;
  // Transfer granularity inside each job's stream.
  uint64_t chunk_elems = 64;
  bool prefetch = true;
};

// Applies fn(ctx, index, element) to every element of `vec` using `pool`.
// Completes when all spans have been processed.
template <typename T, typename Fn>
Task<Status> ParallelForEach(Ctx ctx, DistPool& pool, ShardedVector<T> vec, Fn fn,
                             ParallelOptions options = ParallelOptions{}) {
  auto size = vec.Size(ctx);
  Result<uint64_t> total = co_await std::move(size);
  if (!total.ok()) {
    co_return total.status();
  }
  auto remaining = std::make_shared<WaitGroup>(ctx.rt->sim());
  auto failures = std::make_shared<int64_t>(0);

  for (uint64_t begin = 0; begin < *total; begin += options.span_elems) {
    const uint64_t end = std::min(*total, begin + options.span_elems);
    remaining->Add(1);
    ComputeProclet::Job job = [vec, begin, end, fn, options, remaining,
                               failures](Ctx job_ctx) mutable -> Task<> {
      VectorStream<T> stream(vec, begin, end, options.chunk_elems, options.prefetch);
      uint64_t index = begin;
      for (;;) {
        auto next = stream.Next(job_ctx);
        std::optional<T> element = co_await std::move(next);
        if (!element.has_value()) {
          break;
        }
        try {
          auto apply = fn(job_ctx, index, std::move(*element));
          co_await std::move(apply);
        } catch (...) {
          ++*failures;
        }
        ++index;
      }
      remaining->Done();
    };
    auto submit = pool.Submit(ctx, std::move(job));
    Status submitted = co_await std::move(submit);
    if (!submitted.ok()) {
      remaining->Done();
      ++*failures;
    }
  }
  auto wait = remaining->Wait();
  co_await std::move(wait);
  if (*failures > 0) {
    co_return Status::Internal("some parallel spans failed");
  }
  co_return Status::Ok();
}

// Maps every element through fn and appends the results to a new
// ShardedVector<R> (result order is not guaranteed to match input order —
// spans run concurrently).
template <typename R, typename T, typename Fn>
Task<Result<ShardedVector<R>>> ParallelMap(Ctx ctx, DistPool& pool,
                                           ShardedVector<T> vec, Fn fn,
                                           typename ShardedVector<R>::Options out_opts =
                                               typename ShardedVector<R>::Options{},
                                           ParallelOptions options = ParallelOptions{}) {
  auto create = ShardedVector<R>::Create(ctx, out_opts);
  Result<ShardedVector<R>> out = co_await std::move(create);
  if (!out.ok()) {
    co_return out.status();
  }
  ShardedVector<R> result = *out;
  auto each = ParallelForEach(
      ctx, pool, std::move(vec),
      [result, fn](Ctx job_ctx, uint64_t index, T element) mutable -> Task<> {
        auto apply = fn(job_ctx, index, std::move(element));
        R mapped = co_await std::move(apply);
        auto push = result.PushBack(job_ctx, std::move(mapped));
        Result<uint64_t> pushed = co_await std::move(push);
        if (!pushed.ok()) {
          throw std::runtime_error("ParallelMap output append failed: " +
                                   pushed.status().ToString());
        }
      },
      options);
  Status status = co_await std::move(each);
  if (!status.ok()) {
    co_return status;
  }
  co_return result;
}

// Reduces fn(ctx, element) -> A over all elements with a commutative,
// associative combiner. Each span folds locally; span results combine at the
// caller.
template <typename A, typename T, typename MapFn, typename CombineFn>
Task<Result<A>> ParallelReduce(Ctx ctx, DistPool& pool, ShardedVector<T> vec,
                               A init, MapFn map_fn, CombineFn combine,
                               ParallelOptions options = ParallelOptions{}) {
  auto partials = std::make_shared<std::vector<A>>();
  auto each = ParallelForEach(
      ctx, pool, std::move(vec),
      [map_fn, partials, init](Ctx job_ctx, uint64_t index, T element) -> Task<> {
        auto apply = map_fn(job_ctx, index, std::move(element));
        A value = co_await std::move(apply);
        partials->push_back(std::move(value));
      },
      options);
  Status status = co_await std::move(each);
  if (!status.ok()) {
    co_return status;
  }
  A acc = std::move(init);
  for (A& partial : *partials) {
    acc = combine(std::move(acc), std::move(partial));
  }
  co_return acc;
}

}  // namespace quicksand

#endif  // QUICKSAND_COMPUTE_PARALLEL_H_
