// MemoizedSubmit: content-addressed memoization over DistPool jobs.
//
// DistPool::Submit runs fire-and-forget closures; memoization needs a
// value back. MemoizedSubmit bridges the two: a servable cache hit skips
// the pool entirely, a miss submits a value-producing closure and parks on
// a WaitGroup until it completes, then the result is cached for the next
// identical call. Concurrent identical keys single-flight through the
// MemoCache — only the first submits a job.
//
// `compute` must be deterministic given the key (that is what makes the
// cache transparent) and is subject to DistPool's loss semantics: without
// pool lineage, a job queued on a member that fail-stops is gone, and this
// call would wait forever. Restrict chaos/fault targets to non-pool
// machines, or enable DistPool lineage and resubmit, when mixing
// memoization with fault injection.

#ifndef QUICKSAND_COMPUTE_MEMOIZED_POOL_H_
#define QUICKSAND_COMPUTE_MEMOIZED_POOL_H_

#include <memory>
#include <utility>

#include "quicksand/compute/dist_pool.h"
#include "quicksand/memo/memoized.h"
#include "quicksand/sim/sync.h"

namespace quicksand {

// `compute` is (Ctx) -> Task<Result<T>>, run on whichever pool member the
// job lands on.
template <typename T, typename Fn>
Task<Result<T>> MemoizedSubmit(MemoCache& cache, Ctx ctx, DistPool& pool,
                               MemoKey key, Fn compute,
                               int64_t job_bytes = ComputeProclet::kDefaultJobBytes,
                               Duration max_staleness = Duration::Zero()) {
  co_return co_await cache.GetOrCompute<T>(
      ctx, key, max_staleness,
      [ctx, &pool, compute = std::move(compute),
       job_bytes]() -> Task<Result<T>> {
        auto slot = std::make_shared<Result<T>>(
            Status::Unavailable("memoized job never ran"));
        auto done = std::make_shared<WaitGroup>(ctx.rt->sim());
        done->Add(1);
        // Named task: see the GCC 12 note in sim/task.h.
        auto submit = pool.Submit(
            ctx,
            [slot, done, compute](Ctx job_ctx) -> Task<> {
              *slot = co_await compute(job_ctx);
              done->Done();
            },
            job_bytes);
        const Status submitted = co_await std::move(submit);
        if (!submitted.ok()) {
          co_return submitted;
        }
        co_await done->Wait();
        co_return *slot;
      });
}

}  // namespace quicksand

#endif  // QUICKSAND_COMPUTE_MEMOIZED_POOL_H_
