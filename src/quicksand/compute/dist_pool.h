// DistPool: the distributed thread pool abstraction (§3.2).
//
// A pool is a set of compute proclets ("the underlying threads are sharded
// across compute proclets"). Submitting work picks the least-backlogged
// member; the adaptive controller grows the pool by splitting an overloaded
// member's queue into a new proclet and shrinks it by merging an idle
// member's queue into a sibling (§3.3).
//
// Pool membership lives in plain client/controller state (not a proclet):
// the authoritative structure is the set of compute proclets themselves,
// which the runtime tracks; PoolHandle is the convenience wrapper.

#ifndef QUICKSAND_COMPUTE_DIST_POOL_H_
#define QUICKSAND_COMPUTE_DIST_POOL_H_

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "quicksand/proclet/compute_proclet.h"
#include "quicksand/sim/sync.h"

namespace quicksand {

class DistPool {
 public:
  struct Options {
    int initial_proclets = 1;
    int workers_per_proclet = 2;
    int64_t proclet_base_bytes = 4096;
    // Job lineage: every submission gets a dedup id and stays recorded until
    // it COMPLETES (not merely starts). A job that finished on a machine
    // that later crashed is never re-executed — the completion marker lives
    // client-side, so the crash cannot erase it — and jobs that died queued
    // or running can be re-executed idempotently via ResubmitIncomplete.
    bool lineage = false;
  };

  // A lineage-recorded job that has not completed yet.
  struct PendingJob {
    ComputeProclet::Job job;  // dedup-wrapped; reuses the original seq
    int64_t bytes = 0;
  };

  // State shared between handle copies (pool membership changes as the
  // adaptive controller splits/merges).
  struct State {
    Options options;
    std::vector<Ref<ComputeProclet>> members;
    int64_t submitted = 0;
    int64_t next_member = 0;  // round-robin cursor among equally-loaded members
    int64_t lost_members = 0;  // members whose host machine crashed
    // Lineage bookkeeping (std::map/std::set: deterministic resubmit order).
    int64_t next_job_seq = 1;
    std::set<int64_t> completed_jobs;
    std::map<int64_t, PendingJob> pending;
    int64_t deduped_jobs = 0;  // retries skipped because the job had completed
  };

  DistPool() = default;

  // (Overload rather than a default argument: a default `Options{}` inside
  // the enclosing class would need the member initializers too early.)
  static Task<Result<DistPool>> Create(Ctx ctx) { return Create(ctx, Options{}); }

  static Task<Result<DistPool>> Create(Ctx ctx, Options options) {
    QS_CHECK(options.initial_proclets >= 1);
    DistPool pool;
    pool.state_ = std::make_shared<State>();
    pool.state_->options = options;
    for (int i = 0; i < options.initial_proclets; ++i) {
      Status grown = co_await pool.Grow(ctx);
      if (!grown.ok()) {
        co_return grown;
      }
    }
    co_return pool;
  }

  const std::vector<Ref<ComputeProclet>>& members() const { return state_->members; }
  int64_t submitted() const { return state_->submitted; }
  int64_t lost_members() const { return state_->lost_members; }

  // Submits a job to the member with the shortest backlog. Members lost to
  // machine failures are dropped from the pool and the submission retries on
  // a survivor (at-least-once). Without lineage a job that COMPLETED on a
  // machine that crashed before acknowledging is re-executed by that retry
  // and double-counted by reducers; with lineage the retry finds the
  // client-side completion marker and no-ops.
  Task<Status> Submit(Ctx ctx, ComputeProclet::Job job,
                      int64_t job_bytes = ComputeProclet::kDefaultJobBytes) {
    if (!state_->options.lineage) {
      co_return co_await SubmitRaw(ctx, std::move(job), job_bytes);
    }
    const int64_t seq = state_->next_job_seq++;
    std::shared_ptr<State> state = state_;
    ComputeProclet::Job wrapped =
        [state, seq, job = std::move(job)](Ctx jctx) -> Task<> {
      if (state->completed_jobs.count(seq) != 0) {
        ++state->deduped_jobs;  // duplicate delivery of a finished job
        co_return;
      }
      co_await job(jctx);
      // Completion marker at COMPLETION, not start: a crash mid-execution
      // leaves the job pending so lineage re-executes it.
      state->completed_jobs.insert(seq);
      state->pending.erase(seq);
    };
    state_->pending.emplace(seq, PendingJob{wrapped, job_bytes});
    Status submitted = co_await SubmitRaw(ctx, std::move(wrapped), job_bytes);
    if (!submitted.ok()) {
      state_->pending.erase(seq);  // never enqueued anywhere
    }
    co_return submitted;
  }

  // Re-executes every lineage-recorded job that has not completed (its
  // member died with the job queued or running). Jobs still queued on live
  // members get a second copy, but the dedup marker makes whichever runs
  // second a no-op. Deterministic: pending is walked in submission order.
  Task<Status> ResubmitIncomplete(Ctx ctx) {
    QS_CHECK_MSG(state_->options.lineage,
                 "ResubmitIncomplete requires Options::lineage");
    std::vector<std::pair<int64_t, PendingJob>> todo(state_->pending.begin(),
                                                     state_->pending.end());
    for (auto& [seq, pending] : todo) {
      if (state_->completed_jobs.count(seq) != 0) {
        state_->pending.erase(seq);
        continue;
      }
      Status submitted = co_await SubmitRaw(ctx, pending.job, pending.bytes);
      if (!submitted.ok()) {
        co_return submitted;
      }
    }
    co_return Status::Ok();
  }

  int64_t deduped_jobs() const { return state_->deduped_jobs; }
  int64_t pending_jobs() const {
    return static_cast<int64_t>(state_->pending.size());
  }

 private:
  Task<Status> SubmitRaw(Ctx ctx, ComputeProclet::Job job, int64_t job_bytes) {
    for (;;) {
      RemoveLostMembers(*ctx.rt);
      if (state_->members.empty()) {
        co_return Status::FailedPrecondition("pool has no members");
      }
      Ref<ComputeProclet> target = PickMember(ctx);
      // Named task: see the GCC 12 note in sim/task.h. The job is captured
      // by copy so a lost member leaves us something to retry with.
      auto call = target.Call(
          ctx,
          [job, job_bytes](ComputeProclet& p) mutable -> Task<Status> {
            co_return p.Submit(std::move(job), job_bytes);
          },
          job_bytes);
      try {
        Status status = co_await std::move(call);
        if (status.ok()) {
          ++state_->submitted;
        }
        co_return status;
      } catch (const ProcletLostError&) {
        RemoveLostMembers(*ctx.rt);
        // Loop: every iteration either removes at least one member or
        // succeeds, so this terminates.
      }
    }
  }

 public:
  // Drops members whose hosting machine crashed; returns how many were
  // dropped. Their queued jobs died with the machine (fail-stop) — only
  // revocation warnings, via the evacuator, save queues.
  int RemoveLostMembers(Runtime& rt) {
    int removed = 0;
    auto& members = state_->members;
    for (auto it = members.begin(); it != members.end();) {
      if (rt.IsLost(it->id())) {
        it = members.erase(it);
        ++removed;
        ++state_->lost_members;
      } else {
        ++it;
      }
    }
    if (removed > 0 && !members.empty()) {
      state_->next_member %= static_cast<int64_t>(members.size());
    }
    return removed;
  }

  // Replaces every lost member with a freshly placed one, restoring the
  // pool's capacity on the surviving machines. Returns how many members
  // were replaced (placement failures leave the pool smaller).
  Task<int> RecoverLost(Ctx ctx) {
    const int removed = RemoveLostMembers(*ctx.rt);
    int replaced = 0;
    for (int i = 0; i < removed; ++i) {
      Status grown = co_await Grow(ctx);
      if (!grown.ok()) {
        break;
      }
      ++replaced;
    }
    co_return replaced;
  }

  // Total queued-but-not-started jobs across members (runtime introspection,
  // used by the adaptive controller and by Drain).
  int64_t Backlog(Runtime& rt) const {
    int64_t total = 0;
    for (const Ref<ComputeProclet>& member : state_->members) {
      if (auto* p = rt.UnsafeGet<ComputeProclet>(member.id())) {
        total += p->queue_depth() + p->inflight();
      }
    }
    return total;
  }

  // Polls until every member is idle.
  Task<> Drain(Ctx ctx, Duration poll = Duration::Micros(100)) {
    for (;;) {
      if (Backlog(*ctx.rt) == 0) {
        co_return;
      }
      co_await ctx.rt->sim().Sleep(poll);
    }
  }

  // The §3.3 compute split: the most-backlogged member donates half of its
  // task queue to a freshly placed member. Returns the new member's ref.
  Task<Result<Ref<ComputeProclet>>> SplitBusiest(Ctx ctx) {
    Runtime& rt = *ctx.rt;
    // Pick the member with the deepest queue.
    Ref<ComputeProclet> donor;
    int64_t deepest = -1;
    for (const Ref<ComputeProclet>& member : state_->members) {
      if (auto* p = rt.UnsafeGet<ComputeProclet>(member.id())) {
        if (p->queue_depth() > deepest) {
          deepest = p->queue_depth();
          donor = member;
        }
      }
    }
    if (deepest < 2) {
      co_return Status::FailedPrecondition("no member has a queue worth splitting");
    }
    Status grown = co_await Grow(ctx);
    if (!grown.ok()) {
      co_return grown;
    }
    const Ref<ComputeProclet> fresh = state_->members.back();
    auto begin_donor = ctx.rt->BeginMaintenance(donor.id());
    Status s = co_await std::move(begin_donor);
    if (!s.ok()) {
      co_return s;
    }
    auto begin_fresh = ctx.rt->BeginMaintenance(fresh.id());
    s = co_await std::move(begin_fresh);
    if (!s.ok()) {
      rt.EndMaintenance(donor.id());
      co_return s;
    }
    auto* dp = rt.UnsafeGet<ComputeProclet>(donor.id());
    auto* fp = rt.UnsafeGet<ComputeProclet>(fresh.id());
    if (dp == nullptr || fp == nullptr) {
      // Donor or fresh member lost to a machine failure while we were
      // acquiring the gates (EndMaintenance tolerates lost proclets).
      rt.EndMaintenance(fresh.id());
      rt.EndMaintenance(donor.id());
      RemoveLostMembers(rt);
      co_return Status::DataLoss("pool member lost during split");
    }
    auto jobs = dp->StealHalfOfQueue();
    int64_t moved_bytes = 0;
    for (const auto& [fn, bytes] : jobs) {
      moved_bytes += bytes;
    }
    auto transfer =
        rt.fabric().Transfer(donor.Location(), fresh.Location(), moved_bytes);
    co_await std::move(transfer);
    Status injected = fp->InjectJobs(std::move(jobs));
    if (!injected.ok()) {
      // Destination out of memory: put the jobs back in the donor's queue.
      QS_CHECK_MSG(dp->InjectJobs(std::move(jobs)).ok(), "split rollback lost jobs");
    }
    rt.EndMaintenance(fresh.id());
    rt.EndMaintenance(donor.id());
    if (!injected.ok()) {
      co_return injected;
    }
    co_return fresh;
  }

  // Adds a member (placement chooses the machine with the most idle CPU).
  Task<Status> Grow(Ctx ctx) {
    PlacementRequest req;
    req.heap_bytes = state_->options.proclet_base_bytes;
    auto create = ctx.rt->Create<ComputeProclet>(ctx, req,
                                                 state_->options.workers_per_proclet);
    Result<Ref<ComputeProclet>> member = co_await std::move(create);
    if (!member.ok()) {
      co_return member.status();
    }
    state_->members.push_back(*member);
    co_return Status::Ok();
  }

  // Removes one member, moving its queued jobs to a surviving sibling.
  // No-op (FailedPrecondition) when only one member remains.
  Task<Status> Shrink(Ctx ctx) {
    if (state_->members.size() <= 1) {
      co_return Status::FailedPrecondition("cannot shrink below one member");
    }
    const Ref<ComputeProclet> victim = state_->members.back();
    const Ref<ComputeProclet> survivor = state_->members.front();
    auto begin_victim = ctx.rt->BeginMaintenance(victim.id());
    Status s = co_await std::move(begin_victim);
    if (!s.ok()) {
      co_return s;
    }
    auto begin_survivor = ctx.rt->BeginMaintenance(survivor.id());
    s = co_await std::move(begin_survivor);
    if (!s.ok()) {
      ctx.rt->EndMaintenance(victim.id());
      co_return s;
    }
    auto* vp = ctx.rt->UnsafeGet<ComputeProclet>(victim.id());
    auto* sp = ctx.rt->UnsafeGet<ComputeProclet>(survivor.id());
    if (vp == nullptr || sp == nullptr) {
      // Victim or survivor lost to a machine failure while we were
      // acquiring the gates (EndMaintenance tolerates lost proclets).
      ctx.rt->EndMaintenance(survivor.id());
      ctx.rt->EndMaintenance(victim.id());
      RemoveLostMembers(*ctx.rt);
      co_return Status::DataLoss("pool member lost during shrink");
    }
    // Move everything the victim has queued; model the wire cost of the move.
    auto jobs = vp->StealAllOfQueue();
    int64_t moved_bytes = 0;
    for (const auto& [fn, bytes] : jobs) {
      moved_bytes += bytes;
    }
    auto transfer = ctx.rt->fabric().Transfer(victim.Location(), survivor.Location(),
                                              moved_bytes);
    co_await std::move(transfer);
    Status injected = sp->InjectJobs(std::move(jobs));
    if (!injected.ok()) {
      // Survivor out of memory: the victim keeps its queue and stays.
      QS_CHECK_MSG(vp->InjectJobs(std::move(jobs)).ok(), "shrink rollback lost jobs");
    }
    ctx.rt->EndMaintenance(survivor.id());
    ctx.rt->EndMaintenance(victim.id());
    if (!injected.ok()) {
      co_return injected;
    }
    state_->members.pop_back();
    auto destroy = ctx.rt->Destroy(ctx, victim.id());
    co_await std::move(destroy);
    co_return Status::Ok();
  }

  // Destroys the whole pool (draining first is the caller's business).
  Task<> Shutdown(Ctx ctx) {
    for (const Ref<ComputeProclet>& member : state_->members) {
      auto destroy = ctx.rt->Destroy(ctx, member.id());
      (void)co_await std::move(destroy);
    }
    state_->members.clear();
  }

 private:
  // Least-backlogged member; round-robin among ties.
  Ref<ComputeProclet> PickMember(Ctx ctx) {
    Runtime& rt = *ctx.rt;
    int64_t best_backlog = INT64_MAX;
    size_t best = 0;
    const size_t n = state_->members.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t slot = (static_cast<size_t>(state_->next_member) + i) % n;
      const auto* p = rt.UnsafeGet<ComputeProclet>(state_->members[slot].id());
      const int64_t backlog =
          p == nullptr ? INT64_MAX - 1 : p->queue_depth() + p->inflight();
      if (backlog < best_backlog) {
        best_backlog = backlog;
        best = slot;
      }
    }
    state_->next_member = static_cast<int64_t>((best + 1) % n);
    return state_->members[best];
  }

  std::shared_ptr<State> state_;
};

}  // namespace quicksand

#endif  // QUICKSAND_COMPUTE_DIST_POOL_H_
