// FenceGuard: per-proclet epoch fencing plus at-least-once request dedup.
//
// Every proclet carries an epoch that the Runtime bumps on each directory
// rebind (migration flip, restore adoption). A client stamps requests with
// the epoch it resolved; the owning proclet admits a request only when that
// stamp matches its own epoch. This is the fencing-token pattern: after a
// partition-induced failover, the old primary's epoch is stale, so any
// write it still tries to serve — or any client request still addressed to
// the old incarnation — is rejected instead of silently double-applied.
//
// Orthogonally, retried requests carry a stable request id; the guard
// remembers executed ids so an at-least-once retry whose first attempt DID
// land (the ack was what got lost) is answered without re-applying. The
// executed set is part of the proclet's durable state: replicate it in the
// mutation log (Witness in the replay closure) and a promoted backup
// inherits exactly the dedup knowledge its primary had acked.
//
// The guard is a plain value type so proclets embed it and state images
// copy it; it does no I/O and knows nothing about the Runtime.

#ifndef QUICKSAND_HEALTH_FENCING_H_
#define QUICKSAND_HEALTH_FENCING_H_

#include <cstdint>
#include <unordered_set>

namespace quicksand {

class FenceGuard {
 public:
  enum class Admit {
    kExecute,    // fresh request at the current epoch: apply it
    kDuplicate,  // already executed (retry after a lost ack): re-ack only
    kFenced,     // stale epoch: reject, the caller must re-resolve
  };

  // Grades a request stamped (caller_epoch, request_id) against the owner's
  // current epoch. Records the id as executed only when admitting.
  Admit AdmitRequest(uint64_t caller_epoch, uint64_t current_epoch,
                     uint64_t request_id) {
    if (caller_epoch != current_epoch) {
      ++fenced_;
      return Admit::kFenced;
    }
    if (!executed_.insert(request_id).second) {
      ++duplicates_;
      return Admit::kDuplicate;
    }
    ++admitted_;
    return Admit::kExecute;
  }

  // Records an id as executed without grading — used when replaying the
  // mutation log into a backup, so the replica dedups the same retries its
  // primary would have.
  void Witness(uint64_t request_id) { executed_.insert(request_id); }

  // Unions another guard's executed set into this one — the merge-side twin
  // of the copy a split hands its new shard. After two shards merge, the
  // survivor must dedup every retry either predecessor had acked; after a
  // split, both sides carry the donor's full dedup knowledge (over-remembering
  // is safe, forgetting is a double-apply).
  void Absorb(const FenceGuard& other) {
    executed_.insert(other.executed_.begin(), other.executed_.end());
  }

  // Executed ids retained — sizes the dedup state a reshape must ship.
  size_t executed_count() const { return executed_.size(); }

  bool Executed(uint64_t request_id) const {
    return executed_.count(request_id) != 0;
  }

  int64_t admitted() const { return admitted_; }
  int64_t duplicates() const { return duplicates_; }
  int64_t fenced() const { return fenced_; }

 private:
  std::unordered_set<uint64_t> executed_;
  int64_t admitted_ = 0;
  int64_t duplicates_ = 0;
  int64_t fenced_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_HEALTH_FENCING_H_
