// FailureDetector: heartbeat-based membership with suspicion.
//
// PRs 1–2 learned about crashes from a synchronous oracle (FaultInjector
// handlers fire at the instant of death). Real clusters only ever observe
// *silence*: every machine heartbeats the controller over the fabric, and
// the controller grades each peer by the gap since its last heartbeat:
//
//     gap > suspect_after  ->  kSuspected   (might be dead; stop placing)
//     gap > confirm_after  ->  kDead        (declared dead; recover)
//
// Because heartbeats ride the real (faultable) fabric, a partition or lossy
// link produces exactly the pathologies the paper's harvested substrate
// has: a healthy machine can be falsely suspected (and exonerated when a
// heartbeat gets through — counted in false_suspicions), and a partitioned
// machine is eventually *declared* dead while still running — the gray
// failure that makes epoch fencing necessary (see runtime/ and
// health/fencing.h). Confirmation is terminal by design: once the
// controller declares a machine dead it never readmits it, so a healed
// partition cannot resurrect a stale primary (its late heartbeats are
// counted as posthumous and ignored).
//
// Timing comes exclusively from the sim clock and the heartbeat wire costs,
// so detection latency and false-suspicion rates are bit-reproducible.

#ifndef QUICKSAND_HEALTH_FAILURE_DETECTOR_H_
#define QUICKSAND_HEALTH_FAILURE_DETECTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "quicksand/cluster/cluster.h"
#include "quicksand/common/time.h"
#include "quicksand/sim/simulator.h"
#include "quicksand/sim/task.h"
#include "quicksand/trace/trace.h"

namespace quicksand {

enum class Health {
  kAlive,      // heartbeats arriving within suspect_after
  kSuspected,  // missed heartbeats; may be dead, may be partitioned
  kDead,       // declared dead; terminal
};

const char* HealthName(Health health);

struct FailureDetectorOptions {
  // Machine that aggregates heartbeats (the directory controller; assumed
  // reliable, like the directory itself).
  MachineId controller = 0;
  Duration heartbeat_period = Duration::Millis(1);
  // Heartbeat gap after which a machine is suspected / declared dead. Must
  // exceed the heartbeat period plus wire time, or healthy machines flap.
  Duration suspect_after = Duration::Millis(3);
  Duration confirm_after = Duration::Millis(8);
  // How often the controller re-grades the membership.
  Duration check_period = Duration::Micros(500);
  int64_t heartbeat_bytes = 64;
};

class FailureDetector {
 public:
  using Handler = std::function<void(MachineId)>;

  FailureDetector(Simulator& sim, Cluster& cluster,
                  FailureDetectorOptions options = FailureDetectorOptions{})
      : sim_(sim), cluster_(cluster), options_(options) {
    QS_CHECK(options_.controller < cluster.size());
    QS_CHECK(options_.heartbeat_period > Duration::Zero());
    QS_CHECK(options_.suspect_after > options_.heartbeat_period);
    QS_CHECK(options_.confirm_after > options_.suspect_after);
  }

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  // Handlers run synchronously from the detector's fibers, in registration
  // order. OnConfirm order matters the same way FaultInjector::OnCrash order
  // does: register Runtime::AttachFailureDetector before
  // RecoveryCoordinator::Arm so loss bookkeeping precedes recovery.
  void OnSuspect(Handler handler) { on_suspect_.push_back(std::move(handler)); }
  void OnClear(Handler handler) { on_clear_.push_back(std::move(handler)); }
  void OnConfirm(Handler handler) { on_confirm_.push_back(std::move(handler)); }

  // Optional tracing: suspicion / exoneration / confirmation transitions
  // then record as instants against the graded machine.
  void AttachTracer(Tracer* tracer) { tracer_ = tracer; }

  // Spawns one heartbeat fiber per non-controller machine plus the
  // controller's monitor fiber. Call once, after all machines are added.
  void Start();
  // Stops grading; fibers exit at their next wakeup.
  void Stop();

  Health StateOf(MachineId id) const {
    QS_CHECK(id < state_.size());
    return state_[id];
  }
  bool ConfirmedDead(MachineId id) const { return StateOf(id) == Health::kDead; }
  SimTime LastHeard(MachineId id) const {
    QS_CHECK(id < last_heard_.size());
    return last_heard_[id];
  }

  // --- Introspection --------------------------------------------------------

  int64_t suspicions() const { return suspicions_; }
  // Suspicions cleared by a late heartbeat: the machine was alive all along.
  int64_t false_suspicions() const { return false_suspicions_; }
  int64_t confirmations() const { return confirmations_; }
  int64_t heartbeats_sent() const { return heartbeats_sent_; }
  int64_t heartbeats_delivered() const { return heartbeats_delivered_; }
  // Heartbeats from machines already declared dead (a healed partition
  // re-delivering a gray-failed machine's pulse). Ignored, by design.
  int64_t posthumous_heartbeats() const { return posthumous_heartbeats_; }

 private:
  Task<> SenderLoop(MachineId machine);
  Task<> MonitorLoop();

  Simulator& sim_;
  Cluster& cluster_;
  FailureDetectorOptions options_;
  std::vector<Health> state_;
  std::vector<SimTime> last_heard_;
  std::vector<Handler> on_suspect_;
  std::vector<Handler> on_clear_;
  std::vector<Handler> on_confirm_;
  Tracer* tracer_ = nullptr;
  bool running_ = false;
  int64_t suspicions_ = 0;
  int64_t false_suspicions_ = 0;
  int64_t confirmations_ = 0;
  int64_t heartbeats_sent_ = 0;
  int64_t heartbeats_delivered_ = 0;
  int64_t posthumous_heartbeats_ = 0;
};

}  // namespace quicksand

#endif  // QUICKSAND_HEALTH_FAILURE_DETECTOR_H_
