#include "quicksand/health/failure_detector.h"

#include <string>

#include "quicksand/common/logging.h"
#include "quicksand/net/fabric.h"

namespace quicksand {

const char* HealthName(Health health) {
  switch (health) {
    case Health::kAlive:
      return "alive";
    case Health::kSuspected:
      return "suspected";
    case Health::kDead:
      return "dead";
  }
  return "?";
}

void FailureDetector::Start() {
  QS_CHECK_MSG(!running_, "FailureDetector::Start called twice");
  running_ = true;
  state_.assign(cluster_.size(), Health::kAlive);
  last_heard_.assign(cluster_.size(), sim_.Now());
  for (MachineId m = 0; m < cluster_.size(); ++m) {
    if (m == options_.controller) {
      continue;
    }
    sim_.Spawn(SenderLoop(m), "heartbeat_m" + std::to_string(m));
  }
  sim_.Spawn(MonitorLoop(), "failure_detector");
}

void FailureDetector::Stop() { running_ = false; }

Task<> FailureDetector::SenderLoop(MachineId machine) {
  for (;;) {
    co_await sim_.Sleep(options_.heartbeat_period);
    if (!running_) {
      co_return;
    }
    if (cluster_.machine(machine).failed()) {
      co_return;  // fail-stop: the pulse stops, silence does the rest
    }
    ++heartbeats_sent_;
    const Delivery delivery = co_await cluster_.fabric().TransferDetailed(
        machine, options_.controller, options_.heartbeat_bytes);
    if (!running_) {
      co_return;
    }
    if (delivery != Delivery::kDelivered) {
      continue;  // lost to a partition/drop, or an endpoint died mid-flight
    }
    ++heartbeats_delivered_;
    if (state_[machine] == Health::kDead) {
      // Declared dead while this (or an earlier) heartbeat was stuck behind
      // a partition. Membership is terminal: the machine is fenced out, not
      // readmitted.
      ++posthumous_heartbeats_;
      continue;
    }
    const Duration silence = sim_.Now() - last_heard_[machine];
    last_heard_[machine] = sim_.Now();
    if (state_[machine] == Health::kSuspected) {
      state_[machine] = Health::kAlive;
      ++false_suspicions_;
      cluster_.machine(machine).MarkSuspected(false);
      if (tracer_ != nullptr) {
        tracer_->Instant(TraceContext{}, machine, TraceOp::kClearSuspect, 0,
                         silence.nanos(), "late_heartbeat");
      }
      QS_LOG_DEBUG("health", "m%u exonerated: heartbeat after %s of silence",
                   machine, silence.ToString().c_str());
      for (const Handler& handler : on_clear_) {
        handler(machine);
      }
    }
  }
}

Task<> FailureDetector::MonitorLoop() {
  for (;;) {
    co_await sim_.Sleep(options_.check_period);
    if (!running_) {
      co_return;
    }
    for (MachineId m = 0; m < cluster_.size(); ++m) {
      if (m == options_.controller || state_[m] == Health::kDead) {
        continue;
      }
      const Duration gap = sim_.Now() - last_heard_[m];
      if (state_[m] == Health::kAlive && gap > options_.suspect_after) {
        state_[m] = Health::kSuspected;
        ++suspicions_;
        cluster_.machine(m).MarkSuspected(true);
        if (tracer_ != nullptr) {
          tracer_->Instant(TraceContext{}, m, TraceOp::kSuspect, 0,
                           gap.nanos(), "silence");
        }
        QS_LOG_DEBUG("health", "m%u suspected: silent for %s", m,
                     gap.ToString().c_str());
        for (const Handler& handler : on_suspect_) {
          handler(m);
        }
      }
      if (state_[m] == Health::kSuspected && gap > options_.confirm_after) {
        state_[m] = Health::kDead;
        ++confirmations_;
        // The machine stays marked suspected: !accepting() either way, and a
        // gray-failed host must never rejoin placement.
        if (tracer_ != nullptr) {
          tracer_->Instant(TraceContext{}, m, TraceOp::kConfirmDead, 0,
                           gap.nanos(), "silence");
        }
        QS_LOG_INFO("health", "m%u declared dead: silent for %s", m,
                    gap.ToString().c_str());
        for (const Handler& handler : on_confirm_) {
          handler(m);
        }
      }
    }
  }
}

}  // namespace quicksand
