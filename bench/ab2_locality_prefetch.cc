// Ablation A2: locality and prefetching.
//
// Two questions from the paper:
//  * what does a remote method invocation cost vs. a local one? (§3.1: the
//    runtime uses cheap function calls locally, RPCs remotely)
//  * does the iterator prefetcher make remote data as cheap as local? (§4:
//    "preprocessing images from remote memory proclets is as fast as
//    preprocessing local images")
//
// Part 1 measures invocation round trips. Part 2 runs a compute-over-vector
// scan in three modes: data local, data remote + prefetch, data remote
// without prefetch, across per-element compute intensities.

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "quicksand/common/bytes.h"
#include "quicksand/ds/stream.h"
#include "quicksand/proclet/memory_proclet.h"
#include "quicksand/trace/bench_trace.h"

namespace quicksand {
namespace {

BenchTrace* g_trace = nullptr;
BenchJson g_json;
int g_runs = 0;

struct Env {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  Env() {
    for (int i = 0; i < 2; ++i) {
      MachineSpec spec;
      spec.cores = 8;
      spec.memory_bytes = 8 * kGiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
    (void)AttachBenchTracer(g_trace, *rt, "run_" + std::to_string(++g_runs));
  }
};

void InvocationCosts() {
  std::printf("--- invocation round trip (64B args, 8B result) ---\n");
  for (const bool remote : {false, true}) {
    Env env;
    const Ctx ctx = env.rt->CtxOn(0);
    PlacementRequest req;
    req.heap_bytes = 64 * kKiB;
    req.pinned = MachineId{remote ? 1 : 0};
    auto create = env.rt->Create<MemoryProclet>(ctx, req);
    Ref<MemoryProclet> proclet = *env.sim.BlockOn(std::move(create));

    constexpr int kCalls = 1000;
    const SimTime start = env.sim.Now();
    for (int i = 0; i < kCalls; ++i) {
      auto call = proclet.Call(
          ctx, [](MemoryProclet& p) -> Task<int64_t> {
            co_return static_cast<int64_t>(p.object_count());
          },
          /*request_bytes=*/64);
      (void)env.sim.BlockOn(std::move(call));
    }
    const Duration per_call = (env.sim.Now() - start) / kCalls;
    std::printf("%8s call: %s per invocation\n", remote ? "remote" : "local",
                per_call.ToString().c_str());
    g_json.AddRow()
        .Str("scenario", "invocation")
        .Str("mode", remote ? "remote" : "local")
        .Num("per_call_us", static_cast<double>(per_call.nanos()) / 1e3);
  }
}

Task<Duration> ScanWithCompute(Env& env, ShardedVector<std::string> vec, int64_t n,
                               Duration per_element, bool prefetch) {
  VectorStream<std::string> stream(vec, 0, static_cast<uint64_t>(n), 32, prefetch);
  const Ctx ctx = env.rt->CtxOn(0);
  const SimTime start = env.sim.Now();
  for (;;) {
    auto next = stream.Next(ctx);
    std::optional<std::string> v = co_await std::move(next);
    if (!v.has_value()) {
      break;
    }
    if (per_element > Duration::Zero()) {
      co_await env.cluster.machine(0).cpu().Run(per_element);
    }
  }
  co_return env.sim.Now() - start;
}

void PrefetchSweep() {
  // 32 KiB elements: each one costs ~2.6us of wire time, so the per-element
  // compute sweep crosses the interesting regime where communication rivals
  // computation (§5: "when compute intensity is low, communication costs...
  // might outweigh the utilization benefits").
  std::printf("\n--- scan of 2048 x 32KiB elements, compute on machine 0 ---\n");
  std::printf("%14s %12s %16s %18s %12s\n", "per-elem work", "local",
              "remote+prefetch", "remote no-prefetch", "pf speedup");
  constexpr int64_t kElems = 2048;
  for (const int64_t work_us : {0, 1, 3, 10, 30}) {
    Duration results[3];
    for (int mode = 0; mode < 3; ++mode) {
      Env env;
      const Ctx ctx = env.rt->CtxOn(0);
      ShardedVector<std::string>::Options options;
      options.max_shard_bytes = 4 * kMiB;
      auto vec = *env.sim.BlockOn(ShardedVector<std::string>::Create(ctx, options));
      for (int64_t i = 0; i < kElems; ++i) {
        auto push = vec.PushBack(ctx, std::string(32 * kKiB, 'e'));
        QS_CHECK(env.sim.BlockOn(std::move(push)).ok());
      }
      env.sim.BlockOn(vec.router().Refresh(ctx));
      const MachineId data_home = (mode == 0) ? 0 : 1;
      for (const ShardInfo& s : vec.router().cached_shards()) {
        QS_CHECK(env.sim.BlockOn(env.rt->Migrate(s.proclet, data_home)).ok());
      }
      const bool prefetch = (mode != 2);
      results[mode] = env.sim.BlockOn(ScanWithCompute(
          env, vec, kElems, Duration::Micros(work_us), prefetch));
    }
    std::printf("%12lldus %12s %16s %18s %11.2fx\n",
                static_cast<long long>(work_us), results[0].ToString().c_str(),
                results[1].ToString().c_str(), results[2].ToString().c_str(),
                results[2] / results[1]);
    g_json.AddRow()
        .Str("scenario", "prefetch_scan")
        .Int("work_us", work_us)
        .Num("local_ms", static_cast<double>(results[0].nanos()) / 1e6)
        .Num("remote_prefetch_ms", static_cast<double>(results[1].nanos()) / 1e6)
        .Num("remote_noprefetch_ms", static_cast<double>(results[2].nanos()) / 1e6)
        .Num("prefetch_speedup", results[2] / results[1]);
  }
  std::printf("\nshape to check: without prefetch, remote scans pay fetch time on\n"
              "top of compute; with prefetch, once per-element compute exceeds\n"
              "per-element wire time (~2.6us here), remote matches local — the\n"
              "Fig. 2 'remote preprocessing as fast as local' effect.\n");
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  quicksand::g_trace = &trace;
  std::printf("=== A2: locality and prefetching ===\n");
  quicksand::InvocationCosts();
  quicksand::PrefetchSweep();
  quicksand::g_json.WriteFile("results/BENCH_ab2.json");
  return 0;
}
