// Ablation A12: the memoization tier — content-addressed result caching on
// harvestable storage proclets, with approximation under pressure.
//
// Three scenarios:
//
//  * zipf     — an open-loop KV serving workload with a Zipf key popularity
//               sweep, memo off vs on. Repeat reads of hot keys are answered
//               from the cache tier without spending shard CPU, so goodput
//               with the memo on clears the shard-CPU capacity ceiling that
//               caps the memo-off run. Reported: hit rate, goodput, p99.
//  * harvest  — cache shards co-located with a KV shard on a machine that
//               gets a revocation notice. With the harvester wired into the
//               evacuator, the cache is dropped instantly (zero wire cost)
//               and the KV shard clears the deadline; the ablation
//               (drop_harvestable off) ships recomputable cache bytes first,
//               smallest-first, and the KV shard dies with the machine —
//               acked writes lost. Cache-first harvesting is the difference
//               between "lost some hit rate" and "lost data".
//  * stale    — degraded mode at 3x capacity: when admission control sheds
//               a read, the frontend serves a bounded-staleness memo answer
//               instead of failing the request. Converts rejections into
//               slightly-stale service while the p99 of what is served
//               stays inside the SLO.
//
// --smoke runs the zipf point twice at the same seed (digests must match),
// the harvest pair, and the stale trio, gating on: determinism, >= 70% hit
// rate, zero acked-write loss with harvesting (and loss in the ablation),
// and the stale mode keeping p99 in SLO while failing fewer requests than
// the memo-off baseline. Writes results/BENCH_ab12.json.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "quicksand/cluster/metrics.h"
#include "quicksand/common/bytes.h"
#include "quicksand/memo/memo_harvester.h"
#include "quicksand/memo/memoized.h"
#include "quicksand/overload/admission.h"
#include "quicksand/sched/evacuator.h"
#include "quicksand/serving/kv_frontend.h"
#include "quicksand/serving/workload.h"
#include "quicksand/trace/bench_trace.h"

namespace quicksand {
namespace {

constexpr int kMachines = 5;  // m0 frontend; 2 become KV hosts, 2 cache hosts
constexpr int kCoresPerMachine = 2;
constexpr Duration kServiceTime = Duration::Micros(50);
constexpr Duration kSlo = Duration::Millis(2);
constexpr Duration kRun = Duration::Millis(80);
constexpr Duration kDrain = Duration::Millis(60);
// 2 KV hosts x 2 cores / 50us of work per request; memo hits spend none of it.
constexpr double kCapacityQps = 2 * kCoresPerMachine * 1e9 / 50e3;

enum class MemoMode { kOff, kFreshOnly, kStale };

struct ServingResult {
  int64_t offered = 0;
  int64_t ok_in_slo = 0;
  int64_t ok_late = 0;
  int64_t failed = 0;
  int64_t sheds_seen = 0;
  int64_t memo_serves = 0;
  int64_t memo_stale_serves = 0;
  int64_t memo_hits = 0;
  int64_t memo_stale_hits = 0;
  int64_t memo_misses = 0;
  int64_t memo_inserts = 0;
  double hit_rate = 0.0;
  double goodput_qps = 0.0;
  Duration p99 = Duration::Zero();
  std::string digest;
};

ServingResult RunServing(double offered_qps, MemoMode mode, uint64_t seed,
                         BenchTrace* trace, const std::string& label,
                         double read_fraction = 0.95) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < kMachines; ++i) {
    MachineSpec spec;
    spec.cores = kCoresPerMachine;
    spec.memory_bytes = 2 * kGiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  Tracer local_tracer(sim, cluster.size());
  Tracer* tracer = AttachBenchTracer(trace, rt, label);
  if (tracer == nullptr) {
    tracer = &local_tracer;
    rt.AttachTracer(tracer);
  }

  // Tight control loop: at 3x offered load a 500us adjustment interval lets
  // shard queues overshoot by dozens of requests between clamps, and that
  // oscillation IS the served-p99 tail.
  AdmissionOptions aopt;
  aopt.target = Duration::Micros(100);
  aopt.interval = Duration::Micros(250);
  AdmissionController admission(cluster, aopt);
  rt.AttachAdmission(&admission);

  KvFrontendOptions fopt;
  fopt.shards = 2;
  fopt.slo = kSlo;
  fopt.service_time = kServiceTime;
  fopt.stats_window = Duration::Seconds(4);
  fopt.memo_reads = mode != MemoMode::kOff;
  fopt.memo_staleness =
      mode == MemoMode::kStale ? Duration::Millis(20) : Duration::Zero();
  KvFrontend frontend(rt, fopt);
  const Status started = sim.BlockOn(frontend.Start(rt.CtxOn(0)));
  QS_CHECK_MSG(started.ok(), "frontend start failed");

  // The cache tier lives on the machines that host no KV shard, so memo
  // lookups never queue behind the overloaded serving CPUs.
  std::vector<MachineId> kv_hosts;
  for (const auto& shard : frontend.shards()) {
    kv_hosts.push_back(rt.LocationOf(shard.id()));
  }
  std::vector<MachineId> memo_hosts;
  for (MachineId m = 1; m < cluster.size(); ++m) {
    if (std::find(kv_hosts.begin(), kv_hosts.end(), m) == kv_hosts.end()) {
      memo_hosts.push_back(m);
    }
  }
  QS_CHECK_MSG(!memo_hosts.empty(), "no machine left for the cache tier");
  MemoDirectoryOptions mopt;
  mopt.shards = 4;
  mopt.hosts = memo_hosts;
  MemoDirectory dir(rt, mopt);
  QS_CHECK_MSG(sim.BlockOn(dir.Start(rt.CtxOn(0))).ok(), "memo start failed");
  if (mode != MemoMode::kOff) {
    frontend.AttachMemo(&dir);
  }

  ClusterMetrics metrics(sim, cluster, Duration::Millis(10));
  metrics.AttachServing(&frontend);
  metrics.AttachMemo(&dir);
  metrics.Start();

  WorkloadOptions wopt;
  wopt.base_qps = offered_qps;
  wopt.duration = kRun;
  wopt.seed = seed;
  wopt.keys = 256;
  wopt.zipf_s = 1.2;
  wopt.read_fraction = read_fraction;
  OpenLoopLoadGen gen(sim, frontend, wopt);
  sim.Spawn(gen.Run(), "loadgen");
  sim.RunFor(kRun + kDrain);
  const auto accounted = [&frontend] {
    return frontend.ok_in_slo() + frontend.ok_late() + frontend.failed();
  };
  for (int i = 0; i < 200 && accounted() < frontend.offered(); ++i) {
    sim.RunFor(Duration::Millis(20));
  }
  QS_CHECK_MSG(accounted() == frontend.offered(),
               "requests still in flight after drain");

  ServingResult r;
  r.offered = frontend.offered();
  r.ok_in_slo = frontend.ok_in_slo();
  r.ok_late = frontend.ok_late();
  r.failed = frontend.failed();
  r.sheds_seen = frontend.sheds_seen();
  r.memo_serves = frontend.memo_serves();
  r.memo_stale_serves = frontend.memo_stale_serves();
  r.memo_hits = dir.hits();
  r.memo_stale_hits = dir.stale_hits();
  r.memo_misses = dir.misses();
  r.memo_inserts = dir.inserts();
  const int64_t lookups = r.memo_hits + r.memo_stale_hits + r.memo_misses;
  r.hit_rate = lookups > 0 ? static_cast<double>(r.memo_hits + r.memo_stale_hits) /
                                 static_cast<double>(lookups)
                           : 0.0;
  r.goodput_qps = static_cast<double>(r.ok_in_slo) /
                  (static_cast<double>(kRun.nanos()) / 1e9);
  const LatencyHistogram lat = frontend.latency().Merged(sim.Now());
  if (lat.count() > 0) {
    r.p99 = lat.Percentile(99);
  }

  std::ostringstream digest;
  digest << r.offered << '|' << r.ok_in_slo << '|' << r.ok_late << '|'
         << r.failed << '|' << r.sheds_seen << '|' << r.memo_serves << '|'
         << r.memo_stale_serves << '|' << r.memo_hits << '|'
         << r.memo_stale_hits << '|' << r.memo_misses << '|' << r.memo_inserts
         << '|' << dir.cached_bytes() << '|' << r.p99.nanos() << '|'
         << sim.Now().nanos() << '|' << std::hex << tracer->Digest();
  r.digest = digest.str();
  return r;
}

// --- harvest-under-revocation ----------------------------------------------

struct HarvestResult {
  int64_t acked = 0;
  int64_t lost = 0;
  int64_t cache_dropped = 0;        // cache shards dropped by the evacuator
  int64_t cache_bytes_dropped = 0;  // bytes reclaimed without touching the wire
  int64_t evacuated = 0;
  int64_t considered = 0;
  Duration elapsed = Duration::Zero();
  std::string digest;
};

HarvestResult RunHarvest(bool harvest_cache, uint64_t seed, BenchTrace* trace,
                         const std::string& label) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < 4; ++i) {
    MachineSpec spec;
    spec.cores = kCoresPerMachine;
    spec.memory_bytes = 2 * kGiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  Tracer local_tracer(sim, cluster.size());
  Tracer* tracer = AttachBenchTracer(trace, rt, label);
  if (tracer == nullptr) {
    tracer = &local_tracer;
    rt.AttachTracer(tracer);
  }
  FaultInjector faults(sim, cluster);
  rt.AttachFaultInjector(faults);

  // One 4 MiB KV shard, forced onto the victim machine 1.
  KvFrontendOptions fopt;
  fopt.shards = 1;
  fopt.slo = kSlo;
  fopt.service_time = Duration::Micros(10);
  KvFrontend frontend(rt, fopt);
  QS_CHECK_MSG(sim.BlockOn(frontend.Start(rt.CtxOn(0))).ok(),
               "frontend start failed");
  const ProcletId kv_id = frontend.shards()[0].id();
  if (rt.LocationOf(kv_id) != MachineId{1}) {
    QS_CHECK_MSG(
        sim.BlockOn(frontend.MigrateShard(rt.CtxOn(0), kv_id, 1)).ok(),
        "could not co-locate the KV shard with the cache");
  }

  // Eight cache shards on the same machine, each filled to ~1 MiB of heap
  // (64 KiB base + 16 x 64 KiB entries) — individually smaller than the KV
  // shard, so the ablation's smallest-first order ships ALL of them before
  // the KV shard gets a byte onto the wire.
  MemoDirectoryOptions mopt;
  mopt.shards = 8;
  mopt.hosts = {1};
  mopt.shard_max_bytes = 2 << 20;
  MemoDirectory dir(rt, mopt);
  QS_CHECK_MSG(sim.BlockOn(dir.Start(rt.CtxOn(0))).ok(), "memo start failed");
  for (uint64_t i = 0; i < 8 * 16; ++i) {
    const MemoKey key = MemoKeyBuilder().Fn(0xab12).U64(i).Build(0);
    QS_CHECK_MSG(
        sim.BlockOn(
               dir.Insert(rt.CtxOn(0), key,
                          std::any(static_cast<int64_t>(i)), 64 << 10))
            .ok(),
        "cache fill failed");
  }

  MemoHarvester harvester(rt);
  harvester.Register(&dir);
  EmergencyEvacuator evacuator(rt);
  if (harvest_cache) {
    evacuator.AttachMemoHarvester(&harvester);
  } else {
    evacuator.set_drop_harvestable(false);  // the ablation: cache = state
  }
  evacuator.Arm(faults);

  // Acked writes, then the revocation. Each migration costs a ~450us setup
  // (gate drain, capture, protocol round trips) on top of its wire time, so
  // the 2ms warning fits the single 4 MiB KV shard comfortably — and is
  // hopeless if eight cache shards are shipped ahead of it.
  Rng rng(seed);
  std::vector<uint64_t> acked;
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = rng.NextBounded(512);
    if (sim.BlockOn(frontend.ServeDetailed(key, /*is_read=*/false))) {
      acked.push_back(key);
    }
  }
  faults.ScheduleRevocation(sim.Now() + Duration::Micros(100), 1,
                            Duration::Millis(2));
  sim.RunUntilIdle();

  HarvestResult r;
  r.acked = static_cast<int64_t>(acked.size());
  FencedKvProclet* kv = rt.UnsafeGet<FencedKvProclet>(kv_id);
  for (const uint64_t key : acked) {
    const bool alive =
        kv != nullptr && kv->Get(key).ok() &&
        *kv->Get(key) == static_cast<int64_t>(key) * 31 + 7;
    if (!alive) {
      ++r.lost;
    }
  }
  if (!evacuator.reports().empty()) {
    const EvacuationReport& report = evacuator.reports().front();
    r.cache_dropped = report.cache_dropped;
    r.cache_bytes_dropped = report.cache_bytes_dropped;
    r.evacuated = report.evacuated;
    r.considered = report.considered;
    r.elapsed = report.elapsed;
  }
  std::ostringstream digest;
  digest << r.acked << '|' << r.lost << '|' << r.cache_dropped << '|'
         << r.cache_bytes_dropped << '|' << r.evacuated << '|' << r.considered
         << '|' << r.elapsed.nanos() << '|' << dir.harvested_bytes() << '|'
         << sim.Now().nanos() << '|' << std::hex << tracer->Digest();
  r.digest = digest.str();
  return r;
}

// --- reporting --------------------------------------------------------------

struct JsonRow {
  std::string scenario;
  std::string mode;
  double offered_qps = 0.0;
  double goodput_qps = 0.0;
  double p99_us = 0.0;
  double hit_rate = 0.0;
  int64_t failed = 0;
  int64_t stale_serves = 0;
  int64_t acked_lost = 0;
  int64_t cache_bytes_dropped = 0;
};

void WriteJson(const std::vector<JsonRow>& rows) {
  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_ab12.json");
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    out << "  {\"scenario\": \"" << r.scenario << "\", \"mode\": \"" << r.mode
        << "\", \"offered_qps\": " << r.offered_qps
        << ", \"goodput_qps\": " << r.goodput_qps << ", \"p99_us\": " << r.p99_us
        << ", \"hit_rate\": " << r.hit_rate << ", \"failed\": " << r.failed
        << ", \"stale_serves\": " << r.stale_serves
        << ", \"acked_lost\": " << r.acked_lost
        << ", \"cache_bytes_dropped\": " << r.cache_bytes_dropped << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::printf("ab12: wrote %zu rows to results/BENCH_ab12.json\n", rows.size());
}

JsonRow ServingRow(const std::string& scenario, const std::string& mode,
                   double offered, const ServingResult& r) {
  JsonRow row;
  row.scenario = scenario;
  row.mode = mode;
  row.offered_qps = offered;
  row.goodput_qps = r.goodput_qps;
  row.p99_us = static_cast<double>(r.p99.nanos()) / 1e3;
  row.hit_rate = r.hit_rate;
  row.failed = r.failed;
  row.stale_serves = r.memo_stale_serves;
  return row;
}

JsonRow HarvestRow(const std::string& mode, const HarvestResult& r) {
  JsonRow row;
  row.scenario = "harvest";
  row.mode = mode;
  row.acked_lost = r.lost;
  row.cache_bytes_dropped = r.cache_bytes_dropped;
  return row;
}

void PrintServing(const char* which, double offered, const ServingResult& r) {
  std::printf("%10s | %9.0f %9.0f | %5.1f%% | %9s | %7lld %7lld %7lld\n",
              which, offered, r.goodput_qps, 100.0 * r.hit_rate,
              r.p99.ToString().c_str(), static_cast<long long>(r.failed),
              static_cast<long long>(r.memo_serves),
              static_cast<long long>(r.memo_stale_serves));
}

int Smoke(BenchTrace* trace) {
  int rc = 0;
  std::vector<JsonRow> json;

  // Determinism + hit rate: the zipf point, same seed, twice.
  const double offered = 1.5 * kCapacityQps;
  const ServingResult on1 =
      RunServing(offered, MemoMode::kStale, 1, trace, "smoke_zipf_on1");
  const ServingResult on2 =
      RunServing(offered, MemoMode::kStale, 1, trace, "smoke_zipf_on2");
  const ServingResult off =
      RunServing(offered, MemoMode::kOff, 1, trace, "smoke_zipf_off");
  json.push_back(ServingRow("zipf", "memo", offered, on1));
  json.push_back(ServingRow("zipf", "off", offered, off));
  std::printf("ab12 smoke zipf: offered %.0f qps (shard capacity %.0f)\n"
              "  memo on:  goodput %.0f qps, hit rate %.1f%%, p99 %s\n"
              "  memo off: goodput %.0f qps, p99 %s\n",
              offered, kCapacityQps, on1.goodput_qps, 100.0 * on1.hit_rate,
              on1.p99.ToString().c_str(), off.goodput_qps,
              off.p99.ToString().c_str());
  if (on1.digest != on2.digest) {
    std::printf("ab12 smoke: FAIL — same-seed runs diverged\n  first:  %s\n"
                "  second: %s\n",
                on1.digest.c_str(), on2.digest.c_str());
    rc = 1;
  }
  if (on1.hit_rate < 0.70) {
    std::printf("ab12 smoke: FAIL — hit rate %.1f%% below the 70%% gate\n",
                100.0 * on1.hit_rate);
    rc = 1;
  }
  if (on1.goodput_qps <= off.goodput_qps) {
    std::printf("ab12 smoke: FAIL — memo on did not beat memo off "
                "(%.0f vs %.0f qps)\n",
                on1.goodput_qps, off.goodput_qps);
    rc = 1;
  }

  // Harvest-under-revocation: cache-first drop saves the acked writes the
  // ablation loses.
  const HarvestResult harvest = RunHarvest(true, 7, trace, "smoke_harvest");
  const HarvestResult ship = RunHarvest(false, 7, trace, "smoke_ship_cache");
  json.push_back(HarvestRow("harvest", harvest));
  json.push_back(HarvestRow("ship_cache", ship));
  std::printf("ab12 smoke harvest: %lld acked writes\n"
              "  cache harvested: %lld lost, %lld cache bytes dropped free\n"
              "  cache shipped:   %lld lost (cache spent the deadline)\n",
              static_cast<long long>(harvest.acked),
              static_cast<long long>(harvest.lost),
              static_cast<long long>(harvest.cache_bytes_dropped),
              static_cast<long long>(ship.lost));
  if (harvest.lost != 0 || harvest.cache_bytes_dropped <= 0) {
    std::printf("ab12 smoke: FAIL — harvesting lost %lld acked writes "
                "(dropped %lld bytes)\n",
                static_cast<long long>(harvest.lost),
                static_cast<long long>(harvest.cache_bytes_dropped));
    rc = 1;
  }
  if (ship.lost == 0) {
    std::printf("ab12 smoke: FAIL — the ship-the-cache ablation lost "
                "nothing; the harvest path is not being exercised\n");
    rc = 1;
  }

  // Stale-serve under pressure: at 3x capacity the baseline sheds; the
  // stale mode converts rejections into bounded-staleness answers and keeps
  // the served tail inside the SLO.
  // Write-heavy mix: invalidation keeps the shard under real pressure, so
  // the stale fallback (not just fresh hits) carries the load.
  const double pressured = 3.0 * kCapacityQps;
  const ServingResult base = RunServing(pressured, MemoMode::kOff, 2, trace,
                                        "smoke_stale_base", 0.8);
  const ServingResult stale = RunServing(pressured, MemoMode::kStale, 2, trace,
                                         "smoke_stale_on", 0.8);
  json.push_back(ServingRow("stale", "off", pressured, base));
  json.push_back(ServingRow("stale", "stale", pressured, stale));
  std::printf("ab12 smoke stale: offered %.0f qps\n"
              "  memo off: %lld failed, p99 %s, %lld sheds\n"
              "  stale on: %lld failed, p99 %s, %lld stale serves\n",
              pressured, static_cast<long long>(base.failed),
              base.p99.ToString().c_str(),
              static_cast<long long>(base.sheds_seen),
              static_cast<long long>(stale.failed),
              stale.p99.ToString().c_str(),
              static_cast<long long>(stale.memo_stale_serves));
  if (base.sheds_seen <= 0) {
    std::printf("ab12 smoke: FAIL — baseline never shed at 3x capacity\n");
    rc = 1;
  }
  if (stale.memo_stale_serves <= 0) {
    std::printf("ab12 smoke: FAIL — no stale serves under pressure\n");
    rc = 1;
  }
  if (stale.failed >= base.failed) {
    std::printf("ab12 smoke: FAIL — stale mode failed as much as the "
                "baseline (%lld vs %lld)\n",
                static_cast<long long>(stale.failed),
                static_cast<long long>(base.failed));
    rc = 1;
  }
  if (stale.p99 > kSlo) {
    std::printf("ab12 smoke: FAIL — stale-mode p99 %s exceeds the %s SLO\n",
                stale.p99.ToString().c_str(), kSlo.ToString().c_str());
    rc = 1;
  }

  WriteJson(json);
  std::printf(rc == 0 ? "ab12 smoke: PASS (deterministic; hit rate, harvest "
                        "and stale-serve gates hold)\n"
                      : "ab12 smoke: FAIL\n");
  return rc;
}

void Main(BenchTrace* trace) {
  std::printf("=== A12: memoization tier on harvestable storage proclets ===\n");
  std::printf("(%d machines, %d cores each; 2 KV shards, %s service, %s SLO; "
              "shard capacity ~%.0f qps; zipf(1.2) over 256 keys, 95%% "
              "reads)\n\n",
              kMachines, kCoresPerMachine, kServiceTime.ToString().c_str(),
              kSlo.ToString().c_str(), kCapacityQps);
  std::vector<JsonRow> json;

  std::printf("--- zipf sweep: memo off vs on ---\n");
  std::printf("%10s | %9s %9s | %6s | %9s | %7s %7s %7s\n", "mode", "offered",
              "goodput", "hits", "p99", "failed", "memo", "stale");
  for (const double factor : {0.5, 1.0, 1.5, 2.0}) {
    const double offered = factor * kCapacityQps;
    const std::string suffix = std::to_string(static_cast<int>(factor * 100));
    const ServingResult off =
        RunServing(offered, MemoMode::kOff, 1, trace, "zipf_off_" + suffix);
    const ServingResult on =
        RunServing(offered, MemoMode::kStale, 1, trace, "zipf_on_" + suffix);
    PrintServing("off", offered, off);
    PrintServing("memo", offered, on);
    json.push_back(ServingRow("zipf", "off", offered, off));
    json.push_back(ServingRow("zipf", "memo", offered, on));
  }
  std::printf("(hot keys are answered by the cache tier; the shard CPUs only "
              "see writes and cold reads, so goodput clears the shard "
              "capacity ceiling)\n\n");

  std::printf("--- harvest under revocation (8 cache shards + 1 KV shard on "
              "the victim, 2ms warning) ---\n");
  const HarvestResult harvest = RunHarvest(true, 7, trace, "harvest_on");
  const HarvestResult ship = RunHarvest(false, 7, trace, "harvest_off");
  std::printf("  cache harvested: %lld/%lld acked writes lost, %lld cache "
              "bytes dropped free, evacuated %lld/%lld in %s\n",
              static_cast<long long>(harvest.lost),
              static_cast<long long>(harvest.acked),
              static_cast<long long>(harvest.cache_bytes_dropped),
              static_cast<long long>(harvest.evacuated),
              static_cast<long long>(harvest.considered),
              harvest.elapsed.ToString().c_str());
  std::printf("  cache shipped:   %lld/%lld acked writes lost, evacuated "
              "%lld/%lld in %s\n",
              static_cast<long long>(ship.lost),
              static_cast<long long>(ship.acked),
              static_cast<long long>(ship.evacuated),
              static_cast<long long>(ship.considered),
              ship.elapsed.ToString().c_str());
  json.push_back(HarvestRow("harvest", harvest));
  json.push_back(HarvestRow("ship_cache", ship));
  std::printf("(recomputable bytes are dropped, not shipped: the deadline "
              "budget goes to state that cannot be rebuilt)\n\n");

  std::printf("--- stale serves at 3x capacity ---\n");
  std::printf("%10s | %9s %9s | %6s | %9s | %7s %7s %7s\n", "mode", "offered",
              "goodput", "hits", "p99", "failed", "memo", "stale");
  const double pressured = 3.0 * kCapacityQps;
  const ServingResult base =
      RunServing(pressured, MemoMode::kOff, 2, trace, "stale_off", 0.8);
  const ServingResult fresh =
      RunServing(pressured, MemoMode::kFreshOnly, 2, trace, "stale_fresh", 0.8);
  const ServingResult stale =
      RunServing(pressured, MemoMode::kStale, 2, trace, "stale_on", 0.8);
  PrintServing("off", pressured, base);
  PrintServing("fresh", pressured, fresh);
  PrintServing("stale", pressured, stale);
  json.push_back(ServingRow("stale", "off", pressured, base));
  json.push_back(ServingRow("stale", "fresh", pressured, fresh));
  json.push_back(ServingRow("stale", "stale", pressured, stale));
  std::printf("(fresh-only hits help until a write invalidates; the bounded-"
              "staleness knob additionally converts shed reads into served, "
              "slightly-old answers)\n\n");

  WriteJson(json);
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return quicksand::Smoke(&trace);
  }
  quicksand::Main(&trace);
  return 0;
}
