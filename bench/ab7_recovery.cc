// Ablation A7: durability cost and recovery time.
//
// Two questions drive the durability design (DESIGN.md §5): what does
// periodic checkpointing cost in steady state as a function of the interval,
// and how fast does the cluster heal after a zero-warning crash — from a
// depot checkpoint (read + full-image transfer) vs a live backup (control
// message)? This bench sweeps the checkpoint interval against an
// unprotected baseline and reports the steady-state write-path overhead,
// then crashes a machine and reports recovery time, restore counts, and
// read-back correctness. A final row runs primary-backup replication for
// comparison: higher steady-state cost (every mutation ships synchronously),
// near-instant recovery.
//
// --smoke runs the default-interval crash scenario twice and exits nonzero
// if the two same-seed runs are not bit-identical (or if the run loses
// data), so CI can catch nondeterminism in the recovery path.

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/ds/sharded_vector.h"
#include "quicksand/durability/checkpoint_manager.h"
#include "quicksand/durability/recovery_coordinator.h"
#include "quicksand/durability/replication.h"
#include "quicksand/trace/bench_trace.h"

namespace quicksand {
namespace {

BenchTrace* g_trace = nullptr;
int g_runs = 0;

enum class Mode { kNone, kCheckpoint, kReplicate };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kNone:
      return "none";
    case Mode::kCheckpoint:
      return "checkpoint";
    case Mode::kReplicate:
      return "replicate";
  }
  return "?";
}

constexpr int kMachines = 4;
constexpr int kOps = 256;
constexpr int64_t kValueBytes = 1 * kKiB;
constexpr int64_t kShardBytes = 24 * kKiB;
// Writer pacing: ~150us between appends spreads the workload across many
// checkpoint intervals, so the sweep measures steady-state interference
// (captures serializing with writes, checkpoint traffic on the fabric)
// rather than one-time protection setup.
constexpr Duration kPace = Duration::Micros(150);

struct RunResult {
  Duration workload = Duration::Zero();  // writer start -> last append acked
  int64_t checkpoints = 0;
  int64_t checkpoint_bytes = 0;
  int64_t replication_bytes = 0;
  int64_t lost = 0;
  int64_t promoted = 0;
  int64_t restored = 0;
  int64_t unrecoverable = 0;
  Duration recovery = Duration::Zero();
  int64_t write_errors = 0;
  int64_t read_errors = 0;
  std::string digest;
};

std::string ValueFor(int i) {
  return std::string(static_cast<size_t>(kValueBytes),
                     static_cast<char>('a' + i % 26));
}

Task<int64_t> Writer(Ctx ctx, ShardedVector<std::string>* vec, int ops) {
  int64_t errors = 0;
  for (int i = 0; i < ops; ++i) {
    Result<uint64_t> index = co_await vec->PushBack(ctx, ValueFor(i));
    if (!index.ok()) {
      ++errors;
    }
    co_await ctx.rt->sim().Sleep(kPace);
  }
  co_return errors;
}

// Machine (other than the controller) hosting the most shards: crashing it
// guarantees the failure actually hits protected state.
Task<MachineId> BusiestShardHost(Ctx ctx, ShardedVector<std::string>* vec) {
  co_await vec->router().Refresh(ctx);
  std::vector<int> shards(kMachines, 0);
  for (const ShardInfo& info : vec->router().cached_shards()) {
    const MachineId host = ctx.rt->LocationOf(info.proclet);
    if (host != kInvalidMachineId) {
      ++shards[host];
    }
  }
  MachineId busiest = 1;
  for (MachineId m = 1; m < kMachines; ++m) {
    if (shards[m] > shards[busiest]) {
      busiest = m;
    }
  }
  co_return busiest;
}

Task<int64_t> ReadBack(Ctx ctx, ShardedVector<std::string>* vec, int ops) {
  int64_t errors = 0;
  for (int i = 0; i < ops; ++i) {
    Result<std::string> value =
        co_await vec->Get(ctx, static_cast<uint64_t>(i));
    if (!value.ok() || *value != ValueFor(i)) {
      ++errors;
    }
  }
  co_return errors;
}

RunResult RunOne(Mode mode, Duration interval, bool crash) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < kMachines; ++i) {
    MachineSpec spec;
    spec.memory_bytes = 4 * kGiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  (void)AttachBenchTracer(g_trace, rt,
                          std::string(ModeName(mode)) + "_" +
                              interval.ToString() + "_" +
                              std::to_string(++g_runs));
  FaultInjector faults(sim, cluster);
  rt.AttachFaultInjector(faults);

  CheckpointManager checkpoints(rt, CheckpointManager::Options{interval});
  ReplicationManager replication(rt);
  RecoveryCoordinator recovery(rt);
  if (mode == Mode::kCheckpoint) {
    recovery.AttachCheckpoints(&checkpoints);
    checkpoints.Arm(faults);
    checkpoints.Start();
  } else if (mode == Mode::kReplicate) {
    recovery.AttachReplication(&replication);
    replication.Arm(faults);
  }
  recovery.Arm(faults);

  ShardedVector<std::string>::Options vopt;
  vopt.max_shard_bytes = kShardBytes;
  if (mode == Mode::kCheckpoint) {
    vopt.checkpoints = &checkpoints;
  } else if (mode == Mode::kReplicate) {
    vopt.replication = &replication;
  }
  Ctx ctx = rt.CtxOn(0);
  ShardedVector<std::string> vec =
      *sim.BlockOn(ShardedVector<std::string>::Create(ctx, vopt));

  RunResult r;
  const SimTime start = sim.Now();
  r.write_errors = sim.BlockOn(Writer(ctx, &vec, kOps));
  r.workload = sim.Now() - start;

  if (crash) {
    // Quiesce for two intervals so the final incremental checkpoint lands,
    // then kill the busiest shard host cold and let the RecoveryCoordinator
    // work.
    sim.RunFor(interval * 2 + Duration::Millis(1));
    const MachineId victim = sim.BlockOn(BusiestShardHost(ctx, &vec));
    faults.ScheduleCrash(sim.Now() + Duration::Millis(1), victim);
    sim.RunFor(Duration::Millis(60));
    for (const RecoveryReport& rep : recovery.reports()) {
      r.lost += rep.lost;
      r.promoted += rep.promoted;
      r.restored += rep.restored;
      r.unrecoverable += rep.unrecoverable;
      if (rep.elapsed > r.recovery) {
        r.recovery = rep.elapsed;
      }
    }
    r.read_errors = sim.BlockOn(ReadBack(ctx, &vec, kOps));
  }

  checkpoints.Stop();
  r.checkpoints = checkpoints.checkpoints_taken();
  r.checkpoint_bytes = rt.stats().checkpoint_bytes;
  r.replication_bytes = replication.bytes_shipped();

  std::ostringstream digest;
  digest << r.workload.nanos() << '|' << r.checkpoints << '|'
         << r.checkpoint_bytes << '|' << r.replication_bytes << '|' << r.lost
         << '|' << r.promoted << '|' << r.restored << '|' << r.unrecoverable
         << '|' << r.recovery.nanos() << '|' << r.write_errors << '|'
         << r.read_errors << '|' << rt.stats().lost_proclets << '|'
         << rt.stats().restored_proclets << '|' << sim.Now().nanos();
  r.digest = digest.str();
  return r;
}

double OverheadPercent(Duration run, Duration base) {
  if (base.nanos() == 0) {
    return 0.0;
  }
  return 100.0 * static_cast<double>(run.nanos() - base.nanos()) /
         static_cast<double>(base.nanos());
}

int Smoke() {
  const Duration interval = Duration::Millis(10);
  const RunResult base = RunOne(Mode::kNone, interval, /*crash=*/false);
  const RunResult first = RunOne(Mode::kCheckpoint, interval, /*crash=*/true);
  const RunResult second = RunOne(Mode::kCheckpoint, interval, /*crash=*/true);
  const double overhead = OverheadPercent(first.workload, base.workload);
  std::printf("ab7 smoke: workload %s (baseline %s, overhead %.2f%%), "
              "lost %lld restored %lld unrecoverable %lld, read errors %lld\n",
              first.workload.ToString().c_str(),
              base.workload.ToString().c_str(), overhead,
              static_cast<long long>(first.lost),
              static_cast<long long>(first.promoted + first.restored),
              static_cast<long long>(first.unrecoverable),
              static_cast<long long>(first.read_errors));
  if (first.digest != second.digest) {
    std::printf("ab7 smoke: FAIL — same-seed runs diverged\n  first:  %s\n"
                "  second: %s\n",
                first.digest.c_str(), second.digest.c_str());
    return 1;
  }
  if (first.write_errors != 0 || first.read_errors != 0 ||
      first.unrecoverable != 0) {
    std::printf("ab7 smoke: FAIL — data loss (write errors %lld, read errors "
                "%lld, unrecoverable %lld)\n",
                static_cast<long long>(first.write_errors),
                static_cast<long long>(first.read_errors),
                static_cast<long long>(first.unrecoverable));
    return 1;
  }
  std::printf("ab7 smoke: PASS (deterministic, no data loss)\n");
  return 0;
}

void Main() {
  const RunResult base = RunOne(Mode::kNone, Duration::Millis(10), false);
  std::printf("=== A7: checkpoint interval vs overhead and recovery ===\n");
  std::printf("(%d x %lld KiB appends into a sharded vector, 1 machine "
              "crashed cold after the writer quiesces)\n\n",
              kOps, static_cast<long long>(kValueBytes / kKiB));
  std::printf("baseline (no durability): workload %s\n\n",
              base.workload.ToString().c_str());
  std::printf("%9s | %10s %8s | %5s %8s | %10s %9s | %6s\n", "interval",
              "workload", "overhead", "ckpts", "ckpt MiB", "recovered",
              "rec time", "rd err");
  const std::vector<Duration> intervals = {
      Duration::Millis(1), Duration::Millis(2), Duration::Millis(5),
      Duration::Millis(10), Duration::Millis(20),
  };
  BenchJson json;
  for (const Duration interval : intervals) {
    const RunResult r = RunOne(Mode::kCheckpoint, interval, /*crash=*/true);
    std::printf("%9s | %10s %7.2f%% | %5lld %8.2f | %6lld/%-3lld %9s | %6lld\n",
                interval.ToString().c_str(), r.workload.ToString().c_str(),
                OverheadPercent(r.workload, base.workload),
                static_cast<long long>(r.checkpoints),
                static_cast<double>(r.checkpoint_bytes) / kMiB,
                static_cast<long long>(r.promoted + r.restored),
                static_cast<long long>(r.lost), r.recovery.ToString().c_str(),
                static_cast<long long>(r.read_errors));
    json.AddRow()
        .Str("scenario", "checkpoint")
        .Num("interval_ms", static_cast<double>(interval.nanos()) / 1e6)
        .Num("overhead_pct", OverheadPercent(r.workload, base.workload))
        .Int("checkpoints", r.checkpoints)
        .Num("checkpoint_mib", static_cast<double>(r.checkpoint_bytes) / kMiB)
        .Int("recovered", r.promoted + r.restored)
        .Int("lost", r.lost)
        .Num("recovery_ms", static_cast<double>(r.recovery.nanos()) / 1e6)
        .Int("read_errors", r.read_errors);
  }
  const RunResult rep =
      RunOne(Mode::kReplicate, Duration::Millis(10), /*crash=*/true);
  json.AddRow()
      .Str("scenario", "replicate")
      .Num("interval_ms", 0.0)
      .Num("overhead_pct", OverheadPercent(rep.workload, base.workload))
      .Int("checkpoints", 0)
      .Num("checkpoint_mib", static_cast<double>(rep.replication_bytes) / kMiB)
      .Int("recovered", rep.promoted + rep.restored)
      .Int("lost", rep.lost)
      .Num("recovery_ms", static_cast<double>(rep.recovery.nanos()) / 1e6)
      .Int("read_errors", rep.read_errors);
  json.WriteFile("results/BENCH_ab7.json");
  std::printf("%9s | %10s %7.2f%% | %5s %8.2f | %6lld/%-3lld %9s | %6lld\n",
              "replicate", rep.workload.ToString().c_str(),
              OverheadPercent(rep.workload, base.workload), "-",
              static_cast<double>(rep.replication_bytes) / kMiB,
              static_cast<long long>(rep.promoted + rep.restored),
              static_cast<long long>(rep.lost), rep.recovery.ToString().c_str(),
              static_cast<long long>(rep.read_errors));
  std::printf("\nShorter intervals tighten the recovery point but ship more "
              "incremental images; replication pays on every mutation and "
              "recovers via promotion (no data transfer). At the default "
              "10ms interval the steady-state overhead must stay under 10%% "
              "of the baseline.\n");
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  quicksand::g_trace = &trace;
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return quicksand::Smoke();
  }
  quicksand::Main();
  return 0;
}
