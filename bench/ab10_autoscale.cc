// Ablation A10: autoscale — reshape the hot range instead of shedding it.
//
// ab9 ended where admission control ends: past a hot shard's capacity the
// excess is shed, forever, even when the rest of the cluster sits idle.
// This bench adds the autoscale loop (autoscale/) on top of the same
// serving stack and drives a flash crowd at a narrow key range:
//
//  * shedding-only — admission + deadlines + retry budget, no autoscaler:
//    the two initial shards saturate their hosts and shed the flash for its
//    entire duration while three machines stay idle,
//  * autoscale — the same controls plus the closed loop: admission shed
//    state nudges the skew detector, the planner splits the hot range onto
//    the idle machines, and within a few control periods the flash is
//    served, not shed — windowed p99 back inside the SLO,
//  * copy-budget — the same loop with a near-zero copy budget: every
//    reshape's copy stall would blow the SLO, so the executor defers them
//    all and the run degenerates to shedding-only. The budget is real.
//
// --smoke runs the autoscale case twice with the same seed (digests must
// match — the determinism gate) plus the shedding-only baseline, and exits
// nonzero unless the hot shard split, the baseline shed >=10x more at the
// hot shard, and the autoscale run's post-settle windowed p99 is inside the
// SLO. It also writes results/BENCH_ab10.json.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "quicksand/autoscale/autoscaler.h"
#include "quicksand/cluster/metrics.h"
#include "quicksand/common/bytes.h"
#include "quicksand/overload/admission.h"
#include "quicksand/sched/local_reactor.h"
#include "quicksand/serving/kv_frontend.h"
#include "quicksand/serving/workload.h"
#include "quicksand/trace/bench_trace.h"

namespace quicksand {
namespace {

constexpr int kMachines = 6;  // m0 frontend + 5 shard hosts
constexpr int kCoresPerMachine = 2;
constexpr Duration kServiceTime = Duration::Micros(50);
constexpr Duration kSlo = Duration::Millis(2);
constexpr Duration kRun = Duration::Millis(160);
constexpr Duration kDrain = Duration::Millis(60);
constexpr Duration kFlashStart = Duration::Millis(30);
constexpr Duration kFlashEnd = Duration::Millis(130);
// The frontend starts with 2 shards on 2 hosts; 3 hosts are idle slack.
constexpr int kInitialShards = 2;
constexpr double kPerHostQps = kCoresPerMachine * 1e9 / 50e3;   // 40k
constexpr double kBaseQps = 40000.0;                            // ~1x 2 hosts
constexpr double kFlashMultiplier = 3.5;                        // 140k total
// 70% of flash arrivals hit 32 viral keys, whose hashes scatter across the
// range space — splittable heat, unlike a single molten key.
constexpr double kFlashKeyFraction = 0.7;
constexpr uint64_t kFlashKeys = 32;
// Post-settle latency window: the last 30ms of the flash.
constexpr Duration kSettleWindow = Duration::Millis(30);

enum class Mode { kSheddingOnly, kAutoscale, kCopyBudgetZero };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kSheddingOnly:
      return "shed-only";
    case Mode::kAutoscale:
      return "autoscale";
    case Mode::kCopyBudgetZero:
      return "copy-budget0";
  }
  return "?";
}

struct RunResult {
  int64_t offered = 0;
  int64_t ok_in_slo = 0;
  int64_t ok_late = 0;
  int64_t failed = 0;
  int64_t sheds_seen = 0;
  int64_t retries = 0;
  int64_t moved_reroutes = 0;
  int64_t hot_shard_sheds = 0;  // max cumulative sheds over any one shard
  int shards_final = 0;
  int64_t splits = 0;
  int64_t merges = 0;
  int64_t migrations = 0;
  int64_t deferred = 0;
  double goodput_qps = 0.0;       // lifetime, within-SLO completions
  Duration settle_p99 = Duration::Zero();  // windowed, at flash end
  double settle_goodput_qps = 0.0;
  std::string digest;
};

RunResult RunOne(Mode mode, uint64_t seed, BenchTrace* trace,
                 const std::string& label) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < kMachines; ++i) {
    MachineSpec spec;
    spec.cores = kCoresPerMachine;
    spec.memory_bytes = 2 * kGiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  // Traced unconditionally: the reshape instants (reshape_split,
  // reshape_merge, reshape_migrate, reshape_defer) feed the digest, so the
  // determinism gate covers the autoscale path end to end.
  Tracer local_tracer(sim, cluster.size());
  Tracer* tracer = AttachBenchTracer(trace, rt, label);
  if (tracer == nullptr) {
    tracer = &local_tracer;
    rt.AttachTracer(tracer);
  }

  AdmissionOptions aopt;
  aopt.target = Duration::Micros(200);
  aopt.interval = Duration::Micros(500);
  AdmissionController admission(cluster, aopt);
  rt.AttachAdmission(&admission);

  KvFrontendOptions fopt;
  fopt.shards = kInitialShards;
  fopt.slo = kSlo;
  fopt.service_time = kServiceTime;
  // Window sized so a Merged() snapshot at flash end reports the post-settle
  // tail, not the (intentionally ugly) detection transient.
  fopt.stats_window = kSettleWindow;
  KvFrontend frontend(rt, fopt);
  const Status started = sim.BlockOn(frontend.Start(rt.CtxOn(0)));
  QS_CHECK_MSG(started.ok(), "frontend start failed");

  AutoscalerOptions sopt;
  sopt.period = Duration::Millis(1);
  sopt.executor.slo = kSlo;
  // Shard-count budget ~2x hosts: past it the planner migrates instead of
  // splitting, which bounds split churn under a noisy hot signal.
  sopt.planner.max_shards = 2 * (kMachines - 1);
  // Hot means hot in absolute terms too: a shard must be worth a quarter of
  // a host before skew against the median justifies moving bytes. Without
  // this the zipf head stays "hot" vs an idle-ish median forever and the
  // planner churns on a shard no machine is struggling with.
  sopt.detector.rate_floor_qps = 0.25 * kPerHostQps;
  if (mode == Mode::kCopyBudgetZero) {
    // Any copy stall at all blows this budget: the planner still plans,
    // the executor defers every action.
    sopt.executor.max_copy_fraction_of_slo = 1e-9;
  }
  Autoscaler autoscaler(rt, frontend, sopt);
  autoscaler.AttachAdmission(&admission);
  std::vector<std::unique_ptr<LocalReactor>> reactors;
  if (mode != Mode::kSheddingOnly) {
    // Full wiring: reactors turn local CPU pressure into nudges (the shards
    // are pinned serving state — splitting, not evicting, is the lever).
    reactors = StartLocalReactors(rt);
    for (auto& reactor : reactors) {
      reactor->AttachOverload(&admission);
      reactor->AttachAutoscaler(&autoscaler);
    }
    autoscaler.Start();
  }

  ClusterMetrics metrics(sim, cluster, Duration::Millis(10));
  metrics.AttachServing(&frontend);
  metrics.AttachAutoscale(&autoscaler);
  metrics.Start();

  WorkloadOptions wopt;
  wopt.base_qps = kBaseQps;
  wopt.duration = kRun;
  wopt.seed = seed;
  wopt.keys = 512;
  wopt.zipf_s = 0.9;
  wopt.read_fraction = 0.9;
  wopt.flash_multiplier = kFlashMultiplier;
  wopt.flash_start = sim.Now() + kFlashStart;
  wopt.flash_end = sim.Now() + kFlashEnd;
  wopt.flash_key_fraction = kFlashKeyFraction;
  wopt.flash_key_begin = 0;
  wopt.flash_key_end = kFlashKeys;
  OpenLoopLoadGen gen(sim, frontend, wopt);
  sim.Spawn(gen.Run(), "loadgen");

  // Run to the end of the flash and snapshot the windowed tail there: this
  // is the "after the split settles" latency the SLO gate judges.
  sim.RunFor(kFlashEnd);
  RunResult r;
  const LatencyHistogram settle = frontend.latency().Merged(sim.Now());
  if (settle.count() > 0) {
    r.settle_p99 = settle.Percentile(99);
  }
  r.settle_goodput_qps = frontend.SampleServing(sim.Now()).goodput_qps;

  sim.RunFor(kRun - kFlashEnd + kDrain);
  const auto accounted = [&frontend] {
    return frontend.ok_in_slo() + frontend.ok_late() + frontend.failed();
  };
  for (int i = 0; i < 200 && accounted() < frontend.offered(); ++i) {
    sim.RunFor(Duration::Millis(20));
  }
  QS_CHECK_MSG(accounted() == frontend.offered(),
               "requests still in flight after drain");

  r.offered = frontend.offered();
  r.ok_in_slo = frontend.ok_in_slo();
  r.ok_late = frontend.ok_late();
  r.failed = frontend.failed();
  r.sheds_seen = frontend.sheds_seen();
  r.retries = frontend.retries();
  r.moved_reroutes = frontend.moved_reroutes();
  r.splits = autoscaler.splits();
  r.merges = autoscaler.merges();
  r.migrations = autoscaler.migrations();
  r.deferred = autoscaler.deferred();
  r.goodput_qps = static_cast<double>(r.ok_in_slo) /
                  (static_cast<double>(kRun.nanos()) / 1e9);
  const auto shards = frontend.SampleShards(sim.Now());
  r.shards_final = static_cast<int>(shards.size());
  std::ostringstream digest;
  digest << r.offered << '|' << r.ok_in_slo << '|' << r.ok_late << '|'
         << r.failed << '|' << r.sheds_seen << '|' << r.retries << '|'
         << r.moved_reroutes << '|' << r.splits << '|' << r.merges << '|'
         << r.migrations << '|' << r.deferred << '|'
         << autoscaler.reshape_failures() << '|' << r.shards_final << '|';
  for (const auto& shard : shards) {
    r.hot_shard_sheds = std::max(r.hot_shard_sheds, shard.sheds_total);
    digest << shard.range_begin << ',' << shard.range_end << ','
           << shard.machine << ',' << shard.arrivals_total << ','
           << shard.sheds_total << ';';
  }
  digest << '|' << r.hot_shard_sheds << '|' << r.settle_p99.nanos() << '|'
         << admission.sheds() << '|' << admission.probes() << '|'
         << metrics.autoscale_shard_count().points().size() << '|'
         << sim.Now().nanos() << '|' << std::hex << tracer->Digest();
  r.digest = digest.str();
  return r;
}

void PrintRow(const char* which, const RunResult& r) {
  std::printf(
      "%12s | %9.0f %9s | %7lld %7lld | %3d %6lld %6lld %5lld %5lld\n", which,
      r.goodput_qps, r.settle_p99.ToString().c_str(),
      static_cast<long long>(r.hot_shard_sheds),
      static_cast<long long>(r.failed), r.shards_final,
      static_cast<long long>(r.splits), static_cast<long long>(r.merges),
      static_cast<long long>(r.migrations),
      static_cast<long long>(r.deferred));
}

struct JsonRow {
  std::string scenario;
  std::string mode;
  double goodput_qps;
  double settle_p99_us;
  int64_t hot_shard_sheds;
  int shards_final;
  int64_t splits;
};

void WriteJson(const std::vector<JsonRow>& rows) {
  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_ab10.json");
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    out << "  {\"scenario\": \"" << rows[i].scenario << "\", \"mode\": \""
        << rows[i].mode << "\", \"goodput_qps\": " << rows[i].goodput_qps
        << ", \"settle_p99_us\": " << rows[i].settle_p99_us
        << ", \"hot_shard_sheds\": " << rows[i].hot_shard_sheds
        << ", \"shards_final\": " << rows[i].shards_final
        << ", \"splits\": " << rows[i].splits << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::printf("ab10: wrote %zu rows to results/BENCH_ab10.json\n", rows.size());
}

JsonRow Row(const std::string& scenario, Mode mode, const RunResult& r) {
  return JsonRow{scenario,
                 ModeName(mode),
                 r.goodput_qps,
                 static_cast<double>(r.settle_p99.nanos()) / 1e3,
                 r.hot_shard_sheds,
                 r.shards_final,
                 r.splits};
}

int Smoke(BenchTrace* trace) {
  const RunResult auto1 = RunOne(Mode::kAutoscale, 1, trace, "smoke_auto_run1");
  const RunResult auto2 = RunOne(Mode::kAutoscale, 1, trace, "smoke_auto_run2");
  const RunResult base = RunOne(Mode::kSheddingOnly, 1, trace, "smoke_base");
  WriteJson({Row("smoke", Mode::kSheddingOnly, base),
             Row("smoke", Mode::kAutoscale, auto1)});
  std::printf(
      "ab10 smoke: flash %.1fx on %llu keys, %d hosts\n"
      "  shed-only: goodput %.0f qps, settle p99 %s, hot-shard sheds %lld\n"
      "  autoscale: goodput %.0f qps, settle p99 %s, hot-shard sheds %lld, "
      "%d shards (%lld splits)\n",
      kFlashMultiplier, static_cast<unsigned long long>(kFlashKeys),
      kMachines - 1, base.goodput_qps, base.settle_p99.ToString().c_str(),
      static_cast<long long>(base.hot_shard_sheds), auto1.goodput_qps,
      auto1.settle_p99.ToString().c_str(),
      static_cast<long long>(auto1.hot_shard_sheds), auto1.shards_final,
      static_cast<long long>(auto1.splits));
  if (auto1.digest != auto2.digest) {
    std::printf("ab10 smoke: FAIL — same-seed runs diverged\n  first:  %s\n"
                "  second: %s\n",
                auto1.digest.c_str(), auto2.digest.c_str());
    return 1;
  }
  // The hot shard actually split onto the idle machines.
  if (auto1.splits < 1 || auto1.shards_final <= kInitialShards) {
    std::printf("ab10 smoke: FAIL — no hot-shard split (%lld splits, %d "
                "shards)\n",
                static_cast<long long>(auto1.splits), auto1.shards_final);
    return 1;
  }
  // Shedding-only pays at the hot shard for the whole flash; autoscale only
  // during detection + settle.
  if (base.hot_shard_sheds <
      10 * std::max<int64_t>(auto1.hot_shard_sheds, 1)) {
    std::printf("ab10 smoke: FAIL — autoscale did not relieve the hot shard "
                "(baseline %lld sheds vs autoscale %lld)\n",
                static_cast<long long>(base.hot_shard_sheds),
                static_cast<long long>(auto1.hot_shard_sheds));
    return 1;
  }
  // After the splits settle, the tail of what is served is inside the SLO.
  if (auto1.settle_p99 <= Duration::Zero() || auto1.settle_p99 > kSlo) {
    std::printf("ab10 smoke: FAIL — post-settle p99 %s outside the %s SLO\n",
                auto1.settle_p99.ToString().c_str(), kSlo.ToString().c_str());
    return 1;
  }
  // Reshaping must also WIN: more within-SLO work than shedding the flash.
  if (auto1.ok_in_slo <= base.ok_in_slo) {
    std::printf("ab10 smoke: FAIL — autoscale served no more than shedding "
                "(%lld vs %lld in-SLO)\n",
                static_cast<long long>(auto1.ok_in_slo),
                static_cast<long long>(base.ok_in_slo));
    return 1;
  }
  std::printf("ab10 smoke: PASS (deterministic; split relieves the hot "
              "shard, settle p99 inside SLO)\n");
  return 0;
}

void Main(BenchTrace* trace) {
  std::printf("=== A10: autoscale — split the flash crowd instead of "
              "shedding it ===\n");
  std::printf(
      "(%d machines, %d cores each; %d initial shards on 2 hosts, 3 idle; "
      "%s service, %s SLO; per-host capacity ~%.0f qps)\n"
      "(base %.0f qps zipf(0.9); flash x%.1f for %s with %.0f%% of arrivals "
      "on %llu viral keys)\n\n",
      kMachines, kCoresPerMachine, kInitialShards,
      kServiceTime.ToString().c_str(), kSlo.ToString().c_str(), kPerHostQps,
      kBaseQps, kFlashMultiplier, (kFlashEnd - kFlashStart).ToString().c_str(),
      100.0 * kFlashKeyFraction, static_cast<unsigned long long>(kFlashKeys));

  std::printf("%12s | %9s %9s | %7s %7s | %3s %6s %6s %5s %5s\n", "mode",
              "goodput", "stl_p99", "hotshed", "failed", "sh", "splits",
              "merges", "migr", "defer");
  std::vector<JsonRow> json;
  const RunResult base = RunOne(Mode::kSheddingOnly, 1, trace, "flash_base");
  const RunResult scaled = RunOne(Mode::kAutoscale, 1, trace, "flash_auto");
  const RunResult capped =
      RunOne(Mode::kCopyBudgetZero, 1, trace, "flash_capped");
  PrintRow(ModeName(Mode::kSheddingOnly), base);
  PrintRow(ModeName(Mode::kAutoscale), scaled);
  PrintRow(ModeName(Mode::kCopyBudgetZero), capped);
  json.push_back(Row("flash", Mode::kSheddingOnly, base));
  json.push_back(Row("flash", Mode::kAutoscale, scaled));
  json.push_back(Row("flash", Mode::kCopyBudgetZero, capped));
  std::printf(
      "\n(shed-only pays at the hot shard for the whole flash while 3 hosts "
      "idle; autoscale splits the hot range onto them within a few control "
      "periods — sheds stop and the settle-window p99 is back inside the "
      "SLO; the remnants do NOT merge back afterwards: load-median split "
      "points leave the post-flash shards evenly loaded, and merge triggers "
      "on relative cold, not over-sharding — benign by design; with a zero "
      "copy budget every planned reshape is deferred, which degenerates to "
      "shed-only: the executor really does refuse SLO-hostile copies)\n");
  WriteJson(json);
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return quicksand::Smoke(&trace);
  }
  quicksand::Main(&trace);
  return 0;
}
