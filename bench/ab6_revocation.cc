// Ablation A6: emergency evacuation vs. revocation warning time.
//
// Quicksand harvests resources that can be revoked on very short notice
// (§2: "resources may only be idle for a few milliseconds"). This bench
// sweeps the warning window a revocation notice grants and reports what
// fraction of the dying machine's proclets the emergency evacuator saves,
// plus how long the evacuation ran. The knee of the curve is the shortest
// notice the provider must give for Quicksand to be loss-free.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/proclet/memory_proclet.h"
#include "quicksand/sched/evacuator.h"
#include "quicksand/trace/bench_trace.h"

namespace quicksand {
namespace {

BenchTrace* g_trace = nullptr;

struct Measured {
  int64_t considered = 0;
  int64_t evacuated = 0;
  Duration elapsed = Duration::Zero();
};

Measured RunOne(Duration warning, int proclets, int64_t heap_each) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < 4; ++i) {
    MachineSpec spec;
    spec.memory_bytes = 4 * kGiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  (void)AttachBenchTracer(g_trace, rt, "warning_" + warning.ToString());
  FaultInjector faults(sim, cluster);
  rt.AttachFaultInjector(faults);
  EmergencyEvacuator evacuator(rt);
  evacuator.Arm(faults);

  // Victim population on machine 1; machines 0, 2, 3 are refuge space.
  for (int i = 0; i < proclets; ++i) {
    PlacementRequest req;
    req.heap_bytes = heap_each;
    req.pinned = MachineId{1};
    (void)*sim.BlockOn(rt.Create<MemoryProclet>(rt.CtxOn(0), req));
  }

  faults.ScheduleRevocation(sim.Now() + Duration::Millis(1), 1, warning);
  sim.RunUntilIdle();

  Measured m;
  if (!evacuator.reports().empty()) {
    m.considered = evacuator.reports().front().considered;
    m.evacuated = evacuator.reports().front().evacuated;
    m.elapsed = evacuator.reports().front().elapsed;
  }
  return m;
}

void Main() {
  constexpr int kProclets = 16;
  constexpr int64_t kHeapEach = 4 * kMiB;

  std::printf("=== A6: survived fraction vs revocation warning ===\n");
  std::printf("(%d proclets x %lld MiB on the revoked machine)\n\n", kProclets,
              static_cast<long long>(kHeapEach / kMiB));
  std::printf("%10s | %9s %10s | %12s\n", "warning", "survived", "fraction",
              "evac time");
  const std::vector<Duration> warnings = {
      Duration::Micros(200), Duration::Micros(500), Duration::Millis(1),
      Duration::Millis(2),   Duration::Millis(5),   Duration::Millis(10),
  };
  std::filesystem::create_directories("results");
  std::ofstream json("results/BENCH_ab6.json");
  json << "[\n";
  for (size_t i = 0; i < warnings.size(); ++i) {
    const Duration warning = warnings[i];
    const Measured m = RunOne(warning, kProclets, kHeapEach);
    const double fraction =
        m.considered == 0 ? 0.0
                          : static_cast<double>(m.evacuated) /
                                static_cast<double>(m.considered);
    std::printf("%10s | %3lld / %-3lld %9.0f%% | %12s\n",
                warning.ToString().c_str(), static_cast<long long>(m.evacuated),
                static_cast<long long>(m.considered), fraction * 100.0,
                m.elapsed.ToString().c_str());
    json << "  {\"warning_us\": " << warning.nanos() / 1000
         << ", \"considered\": " << m.considered
         << ", \"evacuated\": " << m.evacuated
         << ", \"survived_fraction\": " << fraction
         << ", \"evac_time_us\": " << m.elapsed.nanos() / 1000 << "}"
         << (i + 1 < warnings.size() ? "," : "") << "\n";
  }
  json << "]\n";
  std::printf("\nEvacuation drains storage > memory > compute, smallest "
              "first; whatever is still in flight at the deadline dies with "
              "the machine.\n");
  std::printf("wrote %zu rows to results/BENCH_ab6.json\n", warnings.size());
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  quicksand::g_trace = &trace;
  quicksand::Main();
  return 0;
}
