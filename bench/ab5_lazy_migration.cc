// Ablation A5: eager vs. lazy (post-copy-style) migration.
//
// §5 ("How can the hardware help?") suggests that coherent memory like CXL
// lets the runtime "speed up resource proclet migration by postponing the
// copying of data". This bench compares the caller-visible blocking window
// of eager and lazy migration across heap sizes, plus the worst blocked
// invocation a concurrent client observes.

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "quicksand/common/bytes.h"
#include "quicksand/proclet/memory_proclet.h"
#include "quicksand/trace/bench_trace.h"

namespace quicksand {
namespace {

BenchTrace* g_trace = nullptr;

struct Measured {
  Duration blocking;
  Duration worst_call;
  Duration copy_done;
};

Task<> HammerCalls(Runtime& rt, Ref<MemoryProclet> p, bool* stop,
                   LatencyHistogram* latencies) {
  const Ctx ctx = rt.CtxOn(0);
  while (!*stop) {
    const SimTime start = rt.sim().Now();
    auto call = p.Call(ctx, [](MemoryProclet& m) -> Task<int64_t> {
      co_return static_cast<int64_t>(m.object_count());
    });
    (void)co_await std::move(call);
    latencies->Add(rt.sim().Now() - start);
    co_await rt.sim().Sleep(Duration::Micros(50));
  }
}

Measured RunOne(bool lazy, int64_t heap) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < 2; ++i) {
    MachineSpec spec;
    spec.memory_bytes = 4 * kGiB;
    cluster.AddMachine(spec);
  }
  RuntimeConfig config;
  config.lazy_migration = lazy;
  Runtime rt(sim, cluster, config);
  (void)AttachBenchTracer(g_trace, rt,
                          std::string(lazy ? "lazy_" : "eager_") +
                              FormatBytes(heap));
  const Ctx ctx = rt.CtxOn(0);
  PlacementRequest req;
  req.heap_bytes = heap;
  req.pinned = MachineId{0};
  auto create = rt.Create<MemoryProclet>(ctx, req);
  Ref<MemoryProclet> proclet = *sim.BlockOn(std::move(create));

  bool stop = false;
  LatencyHistogram calls;
  sim.Spawn(HammerCalls(rt, proclet, &stop, &calls), "hammer");
  sim.RunUntil(sim.Now() + Duration::Millis(1));

  const SimTime start = sim.Now();
  QS_CHECK(sim.BlockOn(rt.Migrate(proclet.id(), 1)).ok());
  const Duration blocking = sim.Now() - start;
  sim.RunUntil(sim.Now() + Duration::Millis(2));
  stop = true;
  sim.RunUntilIdle();

  Measured m;
  m.blocking = blocking;
  m.worst_call = calls.Max();
  m.copy_done = lazy ? rt.stats().lazy_copy_latency.Max() : blocking;
  return m;
}

void Main() {
  std::printf("=== A5: eager vs lazy (post-copy) migration ===\n\n");
  std::printf("%10s | %12s %14s | %12s %14s %12s\n", "heap", "eager-block",
              "eager worst-rpc", "lazy-block", "lazy worst-rpc", "copy done");
  BenchJson json;
  for (const int64_t heap : {1 * kMiB, 10 * kMiB, 64 * kMiB, 256 * kMiB}) {
    const Measured eager = RunOne(false, heap);
    const Measured lazy = RunOne(true, heap);
    std::printf("%10s | %12s %14s | %12s %14s %12s\n", FormatBytes(heap).c_str(),
                eager.blocking.ToString().c_str(),
                eager.worst_call.ToString().c_str(),
                lazy.blocking.ToString().c_str(), lazy.worst_call.ToString().c_str(),
                lazy.copy_done.ToString().c_str());
    json.AddRow()
        .Str("scenario", "lazy_migration")
        .Int("heap_bytes", heap)
        .Num("eager_block_us", static_cast<double>(eager.blocking.nanos()) / 1e3)
        .Num("eager_worst_rpc_us",
             static_cast<double>(eager.worst_call.nanos()) / 1e3)
        .Num("lazy_block_us", static_cast<double>(lazy.blocking.nanos()) / 1e3)
        .Num("lazy_worst_rpc_us",
             static_cast<double>(lazy.worst_call.nanos()) / 1e3)
        .Num("lazy_copy_done_us",
             static_cast<double>(lazy.copy_done.nanos()) / 1e3);
  }
  json.WriteFile("results/BENCH_ab5.json");
  std::printf("\nshape to check: eager blocking grows with heap size; lazy stays\n"
              "at the fixed overhead (~0.2ms) regardless, at the cost of a\n"
              "double-charge window until the background copy lands.\n");
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  quicksand::g_trace = &trace;
  quicksand::Main();
  return 0;
}
