// Figure 1 reproduction: "Migration of work at millisecond granularity is
// possible: the filler application migrates across machines every 10ms to
// harness periods of idle CPU on the other machine."
//
// Two machines each run a high-priority phased application (10 ms all-cores
// busy, 10 ms idle, anti-phase). A filler application of small compute
// proclets runs at normal priority. With Quicksand's local reactors it
// migrates to whichever machine is idle within well under a millisecond; a
// static deployment can only ever use one machine's idle phases.
//
// Output: goodput table (static vs. fungible vs. ideal), a goodput timeline,
// and the migration-latency histogram (the paper's "<1 ms" claim).

#include <cstdio>
#include <memory>

#include "quicksand/cluster/antagonist.h"
#include "quicksand/cluster/metrics.h"
#include "quicksand/common/bytes.h"
#include "quicksand/proclet/compute_proclet.h"
#include "quicksand/sched/local_reactor.h"
#include "quicksand/trace/bench_trace.h"

namespace quicksand {
namespace {

BenchTrace* g_trace = nullptr;

constexpr int kCores = 8;
constexpr Duration kTaskCost = Duration::Micros(100);
constexpr Duration kPhase = Duration::Millis(10);
constexpr Duration kRunFor = Duration::Millis(400);
constexpr Duration kWarmup = Duration::Millis(20);
constexpr int kFillerProclets = 2;
constexpr int kWorkersPerProclet = 4;
constexpr int kQueueTarget = 16;

struct Counter {
  int64_t completed = 0;
};

// A filler task: burn kTaskCost at normal priority; if the hosting proclet
// quiesces for migration, the remainder follows it and completes there.
ComputeProclet::Job FillerJob(Duration remaining, std::shared_ptr<Counter> counter) {
  return [remaining, counter](Ctx ctx) -> Task<> {
    auto* proclet = ctx.rt->UnsafeGet<ComputeProclet>(ctx.caller_proclet);
    QS_CHECK(proclet != nullptr);
    const Duration left = co_await ctx.rt->cluster()
                              .machine(ctx.machine)
                              .cpu()
                              .RunCancellable(remaining, kPriorityNormal,
                                              proclet->cancel_token());
    if (left > Duration::Zero()) {
      (void)proclet->SubmitFromJob(FillerJob(left, counter));
      co_return;
    }
    ++counter->completed;
  };
}

// Keeps every filler proclet's queue topped up (an external work source).
Task<> Feeder(Runtime& rt, std::vector<Ref<ComputeProclet>> proclets,
              std::shared_ptr<Counter> counter) {
  for (;;) {
    for (const Ref<ComputeProclet>& ref : proclets) {
      auto* p = rt.UnsafeGet<ComputeProclet>(ref.id());
      if (p == nullptr || p->gate_closed()) {
        continue;
      }
      while (p->queue_depth() + p->inflight() < kQueueTarget) {
        if (!p->Submit(FillerJob(kTaskCost, counter)).ok()) {
          break;
        }
      }
    }
    co_await rt.sim().Sleep(Duration::Micros(100));
  }
}

struct RunResult {
  double goodput_per_ms = 0;         // completed tasks / ms (steady state)
  int64_t migrations = 0;
  LatencyHistogram migration_latency;
  TimeSeries timeline{"goodput"};    // 1ms buckets
  TimeSeries location{"proclet0_machine"};
};

Task<> SampleLoop(Runtime& rt, std::shared_ptr<Counter> counter,
                  Ref<ComputeProclet> first, RunResult* result) {
  int64_t last = counter->completed;
  for (;;) {
    co_await rt.sim().Sleep(Duration::Millis(1));
    result->timeline.Record(rt.sim().Now(),
                            static_cast<double>(counter->completed - last));
    result->location.Record(rt.sim().Now(), static_cast<double>(first.Location()));
    last = counter->completed;
  }
}

RunResult RunScenario(bool fungible, bool with_antagonists) {
  Simulator sim;
  Cluster cluster(sim);
  MachineSpec spec;
  spec.cores = kCores;
  spec.memory_bytes = 8 * kGiB;
  cluster.AddMachine(spec);
  cluster.AddMachine(spec);
  Runtime rt(sim, cluster);
  (void)AttachBenchTracer(g_trace, rt,
                          std::string(fungible ? "fungible" : "static") +
                              (with_antagonists ? "_contended" : "_idle"));

  std::vector<std::unique_ptr<PhasedAntagonist>> antagonists;
  if (with_antagonists) {
    PhasedAntagonistConfig a0;
    a0.busy = kPhase;
    a0.idle = kPhase;
    antagonists.push_back(
        std::make_unique<PhasedAntagonist>(sim, cluster.machine(0), a0));
    antagonists.back()->Start();
    PhasedAntagonistConfig a1 = a0;
    a1.phase_offset = kPhase;
    antagonists.push_back(
        std::make_unique<PhasedAntagonist>(sim, cluster.machine(1), a1));
    antagonists.back()->Start();
  }

  auto counter = std::make_shared<Counter>();
  std::vector<Ref<ComputeProclet>> proclets;
  const Ctx ctx = rt.CtxOn(0);
  for (int i = 0; i < kFillerProclets; ++i) {
    PlacementRequest req;
    req.heap_bytes = 64 * kKiB;  // small proclet: sub-ms migration
    req.pinned = MachineId{0};
    auto create = rt.Create<ComputeProclet>(ctx, req, kWorkersPerProclet);
    proclets.push_back(*sim.BlockOn(std::move(create)));
  }
  sim.Spawn(Feeder(rt, proclets, counter), "feeder");

  std::vector<std::unique_ptr<LocalReactor>> reactors;
  if (fungible) {
    LocalReactorConfig cfg;
    cfg.period = Duration::Micros(250);
    cfg.cpu_starvation_threshold = Duration::Micros(300);
    reactors = StartLocalReactors(rt, cfg);
  }

  RunResult result;
  sim.RunUntil(SimTime::Zero() + kWarmup);
  const int64_t at_warmup = counter->completed;
  sim.Spawn(SampleLoop(rt, counter, proclets[0], &result), "sampler");
  sim.RunUntil(SimTime::Zero() + kWarmup + kRunFor);

  result.goodput_per_ms =
      static_cast<double>(counter->completed - at_warmup) /
      static_cast<double>(kRunFor.millis());
  result.migrations = rt.stats().migrations;
  result.migration_latency = rt.stats().migration_latency;
  return result;
}

void Main() {
  std::printf("=== Figure 1: filler application harvesting idle CPU ===\n");
  std::printf(
      "2 machines x %d cores; high-priority antagonist: %lldms busy / %lldms idle,\n"
      "anti-phase. Filler: %d compute proclets, %lldus tasks, normal priority.\n\n",
      kCores, static_cast<long long>(kPhase.millis()),
      static_cast<long long>(kPhase.millis()), kFillerProclets,
      static_cast<long long>(kTaskCost.micros()));

  RunResult ideal = RunScenario(/*fungible=*/false, /*with_antagonists=*/false);
  RunResult fixed = RunScenario(/*fungible=*/false, /*with_antagonists=*/true);
  RunResult fungible = RunScenario(/*fungible=*/true, /*with_antagonists=*/true);

  // Ideal here = filler alone on both machines (no antagonist), which is
  // bounded by worker parallelism, so normalize to the antagonist-free run.
  const double ideal_rate = ideal.goodput_per_ms;
  std::printf("%-28s %14s %10s\n", "configuration", "goodput/ms", "vs ideal");
  std::printf("%-28s %14.1f %9.0f%%\n", "no antagonist (ideal)", ideal_rate, 100.0);
  std::printf("%-28s %14.1f %9.0f%%\n", "static placement", fixed.goodput_per_ms,
              100.0 * fixed.goodput_per_ms / ideal_rate);
  std::printf("%-28s %14.1f %9.0f%%\n", "fungible (Quicksand)",
              fungible.goodput_per_ms, 100.0 * fungible.goodput_per_ms / ideal_rate);

  std::printf("\nmigrations: %lld over %lldms (expected ~1 per 10ms phase flip)\n",
              static_cast<long long>(fungible.migrations),
              static_cast<long long>(kRunFor.millis()));
  std::printf("migration latency: %s\n",
              fungible.migration_latency.Summary().c_str());
  const bool sub_ms = fungible.migration_latency.Percentile(99) < Duration::Millis(1);
  std::printf("sub-millisecond migration (p99): %s\n", sub_ms ? "YES" : "NO");

  std::printf("\ntimeline (first 60ms after warmup; goodput per 1ms bucket, "
              "proclet0 machine):\n");
  std::printf("%8s %12s %10s\n", "t[ms]", "goodput/ms", "machine");
  const auto& points = fungible.timeline.points();
  const auto& locs = fungible.location.points();
  for (size_t i = 0; i < points.size() && i < 60; ++i) {
    std::printf("%8.0f %12.0f %10.0f\n",
                points[i].time.seconds() * 1e3 - static_cast<double>(kWarmup.millis()),
                points[i].value, i < locs.size() ? locs[i].value : -1.0);
  }
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  quicksand::g_trace = &trace;
  quicksand::Main();
  return 0;
}
