// scale_sim: event-core throughput at cluster scale.
//
// Every experiment in this repo rides on the discrete-event core, so its
// throughput bounds how large a cluster (machines x proclets) and how long a
// simulated horizon any bench can afford. This bench drives the core with the
// mix that dominates real runs — zero-delay yields (the now lane), short
// timed sleeps, armed-then-cancelled timeouts (the RPC-timeout pattern), and
// mutex park/wake — across a sweep of machine count x proclet count up to
// 1000 machines / 1M proclets, and reports events/sec plus
// sim-seconds-per-wall-second. A raw schedule/cancel/fire row isolates the
// event queue itself from coroutine overhead.
//
// Results land in results/BENCH_scale.json (one row per cell) so the perf
// trajectory is visible across PRs.
//
// --smoke: fixed small sweep, two same-seed runs must produce identical
// digests (the determinism gate), and events/sec must clear a deliberately
// generous floor so CI noise cannot flake it.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "quicksand/sim/simulator.h"
#include "quicksand/sim/sync.h"

namespace quicksand {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Fnv(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xff)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

// splitmix64: cheap, seedable, deterministic across platforms.
struct Rng {
  uint64_t state;
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

struct Counters {
  int64_t events = 0;        // resumptions observed by the workload fibers
  int64_t timeouts_fired = 0;
  uint64_t digest = kFnvOffset;  // order-sensitive: hashes the interleaving
};

struct MachineCtx {
  explicit MachineCtx(Simulator& sim) : mu(sim) {}
  Mutex mu;
  int64_t acquisitions = 0;
};

// One simulated proclet: the await mix of a serving/compute fiber. Yields
// dominate (as they do in the real runtime: Spawn, Yield, and WakeJoiners all
// schedule at zero delay), sleeps exercise the timed tier, and the
// armed-then-cancelled timeout is the RPC pattern that stresses Cancel.
Task<> ProcletLoop(Simulator& sim, MachineCtx& m, WaitGroup& wg,
                   uint64_t fiber_seed, int iters, Counters& c) {
  Rng rng{fiber_seed};
  for (int i = 0; i < iters; ++i) {
    co_await sim.Yield();
    ++c.events;
    co_await sim.Yield();
    ++c.events;
    const EventId timeout =
        sim.Schedule(Duration::Millis(1), [&c] { ++c.timeouts_fired; });
    co_await sim.Sleep(Duration::Micros(1 + static_cast<int64_t>(rng.Next() % 197)));
    ++c.events;
    sim.Cancel(timeout);
    if ((i & 3) == 0) {
      co_await m.mu.Lock();
      ++c.events;
      ++m.acquisitions;
      co_await sim.Yield();
      ++c.events;
      m.mu.Unlock();
    }
    c.digest = Fnv(c.digest, (fiber_seed << 20) ^
                                 static_cast<uint64_t>(sim.Now().nanos()));
  }
  wg.Done();
}

struct CellResult {
  int machines = 0;
  int64_t proclets = 0;
  int64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double sim_seconds = 0.0;
  double sim_per_wall = 0.0;
  uint64_t digest = 0;
  std::string label;
};

CellResult RunCell(int machines, int64_t proclets, int iters, uint64_t seed) {
  Simulator sim;
  Counters c;
  WaitGroup wg(sim);
  std::vector<std::unique_ptr<MachineCtx>> ms;
  ms.reserve(static_cast<size_t>(machines));
  for (int i = 0; i < machines; ++i) {
    ms.push_back(std::make_unique<MachineCtx>(sim));
  }
  const auto start = std::chrono::steady_clock::now();
  wg.Add(proclets);
  for (int64_t p = 0; p < proclets; ++p) {
    MachineCtx& m = *ms[static_cast<size_t>(p % machines)];
    sim.Spawn(ProcletLoop(sim, m, wg, seed ^ static_cast<uint64_t>(p), iters, c));
    ++c.events;  // the spawn event itself
  }
  sim.BlockOn(wg.Wait());
  const auto end = std::chrono::steady_clock::now();

  CellResult r;
  r.machines = machines;
  r.proclets = proclets;
  r.events = c.events;
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  r.events_per_sec = r.wall_ms > 0.0 ? 1e3 * static_cast<double>(c.events) / r.wall_ms : 0.0;
  r.sim_seconds = sim.Now().seconds();
  r.sim_per_wall = r.wall_ms > 0.0 ? r.sim_seconds / (r.wall_ms / 1e3) : 0.0;
  // Fold the machine-level tallies in so lock fairness is part of the gate.
  uint64_t digest = c.digest;
  for (const auto& m : ms) {
    digest = Fnv(digest, static_cast<uint64_t>(m->acquisitions));
  }
  digest = Fnv(digest, static_cast<uint64_t>(sim.Now().nanos()));
  digest = Fnv(digest, static_cast<uint64_t>(c.timeouts_fired));
  r.digest = digest;
  char label[64];
  std::snprintf(label, sizeof(label), "fibers_%dx%lld", machines,
                static_cast<long long>(proclets));
  r.label = label;
  return r;
}

// Raw event-queue row: no coroutines, just schedule/cancel/fire churn. This
// isolates the queue's slot + ordering machinery from fiber frame costs.
CellResult RunRawEvents(int64_t count, uint64_t seed) {
  Simulator sim;
  Rng rng{seed};
  int64_t fired = 0;
  uint64_t digest = kFnvOffset;
  const auto start = std::chrono::steady_clock::now();
  std::vector<EventId> armed;
  armed.reserve(64);
  // Schedule in bursts from inside the event loop so cancellation hits both
  // pending-soon and pending-late events, as RPC timeouts do.
  constexpr int kBurst = 64;
  const int64_t bursts = count / kBurst;
  for (int64_t b = 0; b < bursts; ++b) {
    for (int i = 0; i < kBurst; ++i) {
      const Duration delay = (i & 1) == 0
                                 ? Duration::Zero()
                                 : Duration::Micros(1 + static_cast<int64_t>(
                                                           rng.Next() % 97));
      const EventId id = sim.Schedule(delay, [&fired] { ++fired; });
      if ((i & 7) == 3) {
        armed.push_back(id);  // every 8th is a timeout that will not fire
      }
    }
    for (const EventId id : armed) {
      sim.Cancel(id);
    }
    armed.clear();
    sim.RunUntilIdle();
    digest = Fnv(digest, static_cast<uint64_t>(fired));
    digest = Fnv(digest, static_cast<uint64_t>(sim.Now().nanos()));
  }
  const auto end = std::chrono::steady_clock::now();

  CellResult r;
  r.machines = 0;
  r.proclets = 0;
  r.events = fired;
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  r.events_per_sec = r.wall_ms > 0.0 ? 1e3 * static_cast<double>(fired) / r.wall_ms : 0.0;
  r.sim_seconds = sim.Now().seconds();
  r.sim_per_wall = r.wall_ms > 0.0 ? r.sim_seconds / (r.wall_ms / 1e3) : 0.0;
  r.digest = digest;
  r.label = "raw_events";
  return r;
}

// Timeout-churn row: the RPC-timeout lifecycle at open-loop rate. Every RPC
// arms a guard timer far in the future (10ms) and cancels it a few µs later
// when the reply lands, so almost no timer ever fires — the queue's job is to
// absorb arm/cancel churn while holding a large population of doomed entries.
// This is the pattern that separates eager cancellation (slot freed at Cancel,
// 24-byte tombstone skipped on pop) from lazy deletion that retains the full
// callback until its deadline. Throughput counts operations (arm + cancel +
// fire), since fires are rare by construction.
CellResult RunTimeoutChurn(int64_t ops, uint64_t seed) {
  Simulator sim;
  Rng rng{seed};
  int64_t fired = 0;
  int64_t counted_ops = 0;
  uint64_t digest = kFnvOffset;
  constexpr int kBurst = 64;
  // Two bursts stay in flight: cancel the batch armed two rounds ago, so
  // every timer lives ~20µs of sim time against a 10ms deadline.
  std::vector<EventId> prev;
  std::vector<EventId> cur;
  prev.reserve(kBurst);
  cur.reserve(kBurst);
  const auto start = std::chrono::steady_clock::now();
  while (counted_ops < ops) {
    for (int i = 0; i < kBurst; ++i) {
      const Duration guard =
          Duration::Micros(10'000 + static_cast<int64_t>(rng.Next() % 500));
      cur.push_back(sim.Schedule(guard, [&fired] { ++fired; }));
    }
    counted_ops += kBurst;
    for (const EventId id : prev) {
      sim.Cancel(id);
    }
    counted_ops += static_cast<int64_t>(prev.size());
    prev.swap(cur);
    cur.clear();
    sim.RunFor(Duration::Micros(10));
    digest = Fnv(digest, static_cast<uint64_t>(fired));
    digest = Fnv(digest, static_cast<uint64_t>(sim.Now().nanos()));
  }
  // Let the tail drain so the digest covers the stragglers that do fire.
  sim.RunUntilIdle();
  counted_ops += fired;
  digest = Fnv(digest, static_cast<uint64_t>(fired));
  const auto end = std::chrono::steady_clock::now();

  CellResult r;
  r.machines = 0;
  r.proclets = 0;
  r.events = counted_ops;
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  r.events_per_sec =
      r.wall_ms > 0.0 ? 1e3 * static_cast<double>(counted_ops) / r.wall_ms : 0.0;
  r.sim_seconds = sim.Now().seconds();
  r.sim_per_wall = r.wall_ms > 0.0 ? r.sim_seconds / (r.wall_ms / 1e3) : 0.0;
  r.digest = digest;
  r.label = "timeout_churn";
  return r;
}

void PrintRow(const CellResult& r) {
  std::printf("%20s | %10lld ev | %9.1f ms | %10.0f ev/s | %8.3f sim-s | %7.2f sim-s/wall-s | digest %016llx\n",
              r.label.c_str(), static_cast<long long>(r.events), r.wall_ms,
              r.events_per_sec, r.sim_seconds, r.sim_per_wall,
              static_cast<unsigned long long>(r.digest));
}

void WriteJson(const std::vector<CellResult>& rows) {
  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_scale.json");
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const CellResult& r = rows[i];
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(r.digest));
    out << "  {\"scenario\": \"" << r.label << "\", \"machines\": " << r.machines
        << ", \"proclets\": " << r.proclets << ", \"events\": " << r.events
        << ", \"wall_ms\": " << r.wall_ms
        << ", \"events_per_sec\": " << r.events_per_sec
        << ", \"sim_seconds\": " << r.sim_seconds
        << ", \"sim_seconds_per_wall_second\": " << r.sim_per_wall
        << ", \"digest\": \"" << digest << "\"}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::printf("scale_sim: wrote %zu rows to results/BENCH_scale.json\n",
              rows.size());
}

// The floor is far below what even an unoptimized core sustains on slow CI
// hardware: the gate exists to catch order-of-magnitude regressions (an
// accidental O(n) scan per event), not few-percent noise.
constexpr double kSmokeEventsPerSecFloor = 100e3;

int Smoke() {
  std::vector<CellResult> first;
  std::vector<CellResult> second;
  for (int run = 0; run < 2; ++run) {
    std::vector<CellResult>& out = run == 0 ? first : second;
    out.push_back(RunCell(8, 512, 40, 1));
    out.push_back(RunCell(64, 4096, 10, 1));
    out.push_back(RunRawEvents(1 << 18, 1));
    out.push_back(RunTimeoutChurn(1 << 16, 1));
  }
  std::printf("scale_sim smoke:\n");
  for (const CellResult& r : first) {
    PrintRow(r);
  }
  for (size_t i = 0; i < first.size(); ++i) {
    if (first[i].digest != second[i].digest) {
      std::printf("scale_sim smoke: FAIL — same-seed digests diverged for %s "
                  "(%016llx vs %016llx)\n",
                  first[i].label.c_str(),
                  static_cast<unsigned long long>(first[i].digest),
                  static_cast<unsigned long long>(second[i].digest));
      return 1;
    }
  }
  for (const CellResult& r : first) {
    if (r.events_per_sec < kSmokeEventsPerSecFloor) {
      std::printf("scale_sim smoke: FAIL — %s ran at %.0f ev/s, below the "
                  "%.0f ev/s floor\n",
                  r.label.c_str(), r.events_per_sec, kSmokeEventsPerSecFloor);
      return 1;
    }
  }
  std::printf("scale_sim smoke: PASS (deterministic, above the throughput "
              "floor)\n");
  return 0;
}

void Main() {
  std::printf("=== scale_sim: event-core throughput, machines x proclets ===\n");
  std::vector<CellResult> rows;
  rows.push_back(RunRawEvents(4 << 20, 1));
  PrintRow(rows.back());
  rows.push_back(RunTimeoutChurn(4 << 20, 1));
  PrintRow(rows.back());
  struct Cell {
    int machines;
    int64_t proclets;
    int iters;
  };
  // Iterations shrink as the fleet grows so every cell stays a few seconds;
  // the 1000-machine / 1M-proclet cell is the routine-scale target.
  const Cell cells[] = {
      {8, 1'000, 800},
      {64, 10'000, 80},
      {256, 100'000, 16},
      {1000, 1'000'000, 3},
  };
  for (const Cell& cell : cells) {
    rows.push_back(RunCell(cell.machines, cell.proclets, cell.iters, 1));
    PrintRow(rows.back());
  }
  WriteJson(rows);
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return quicksand::Smoke();
  }
  quicksand::Main();
  return 0;
}
