// A5: simulator microbenchmarks (google-benchmark): how fast is the
// substrate itself? These bound how large a cluster/duration the figure
// benches can simulate.

#include <benchmark/benchmark.h>

#include "quicksand/common/bytes.h"
#include "quicksand/net/rpc.h"
#include "quicksand/proclet/memory_proclet.h"
#include "quicksand/sim/channel.h"
#include "quicksand/sim/simulator.h"

namespace quicksand {
namespace {

void BM_EventScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int64_t fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(Duration::Micros(i), [&fired] { ++fired; });
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventScheduleAndRun);

Task<> PingPong(Simulator& sim, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await sim.Sleep(Duration::Micros(1));
  }
}

void BM_CoroutineSleepLoop(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    sim.Spawn(PingPong(sim, 1000), "pingpong");
    sim.RunUntilIdle();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineSleepLoop);

Task<> Producer1k(Channel<int>& ch) {
  for (int i = 0; i < 1000; ++i) {
    co_await ch.Send(i);
  }
  ch.Close();
}

Task<> Consumer1k(Channel<int>& ch) {
  while ((co_await ch.Recv()).has_value()) {
  }
}

void BM_ChannelThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Channel<int> ch(sim, 64);
    sim.Spawn(Producer1k(ch), "p");
    sim.Spawn(Consumer1k(ch), "c");
    sim.RunUntilIdle();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChannelThroughput);

void BM_CpuSchedulerSlices(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    CpuScheduler cpu(sim, 8, Duration::Micros(20));
    for (int i = 0; i < 32; ++i) {
      sim.Spawn(cpu.Run(Duration::Millis(1)), "burn");
    }
    sim.RunUntilIdle();
  }
  // 32 requests x 50 slices each.
  state.SetItemsProcessed(state.iterations() * 1600);
}
BENCHMARK(BM_CpuSchedulerSlices);

void BM_RemoteInvocation(benchmark::State& state) {
  Simulator sim;
  Cluster cluster(sim);
  MachineSpec spec;
  spec.memory_bytes = 2 * kGiB;
  cluster.AddMachine(spec);
  cluster.AddMachine(spec);
  Runtime rt(sim, cluster);
  const Ctx ctx = rt.CtxOn(0);
  PlacementRequest req;
  req.heap_bytes = 4096;
  req.pinned = MachineId{1};
  auto create = rt.Create<MemoryProclet>(ctx, req);
  Ref<MemoryProclet> proclet = *sim.BlockOn(std::move(create));
  for (auto _ : state) {
    auto call = proclet.Call(ctx, [](MemoryProclet& p) -> Task<int64_t> {
      co_return static_cast<int64_t>(p.object_count());
    });
    benchmark::DoNotOptimize(sim.BlockOn(std::move(call)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemoteInvocation);

void BM_ProcletMigration(benchmark::State& state) {
  Simulator sim;
  Cluster cluster(sim);
  MachineSpec spec;
  spec.memory_bytes = 8 * kGiB;
  cluster.AddMachine(spec);
  cluster.AddMachine(spec);
  Runtime rt(sim, cluster);
  const Ctx ctx = rt.CtxOn(0);
  PlacementRequest req;
  req.heap_bytes = state.range(0);
  req.pinned = MachineId{0};
  auto create = rt.Create<MemoryProclet>(ctx, req);
  Ref<MemoryProclet> proclet = *sim.BlockOn(std::move(create));
  MachineId target = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.BlockOn(rt.Migrate(proclet.id(), target)));
    target = 1 - target;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProcletMigration)->Arg(64 * kKiB)->Arg(10 * kMiB);

}  // namespace
}  // namespace quicksand

BENCHMARK_MAIN();
