// Figure 2 reproduction: "Quicksand efficiently combines resources from
// different machines, even when they are heavily imbalanced."
//
// The DNN preprocessing pipeline (sharded image vector -> compute-proclet
// preprocessing with prefetching iterators -> sharded tensor queue ->
// delay-emulated GPU consumers) runs with a fixed resource total (46 cores,
// 13 GiB) split across machines four ways:
//
//   Baseline          46 cores / 13 GiB on one machine          (paper: 26.1s)
//   CPU-unbalanced     6c+6.5GiB | 40c+6.5GiB                   (paper: 26.4s)
//   Mem-unbalanced    23c+1GiB   | 23c+12GiB                    (paper: 26.6s)
//   Both-unbalanced    6c+12GiB  | 40c+1GiB                     (paper: 26.5s)
//
// Quicksand's placement sends memory proclets to free memory and compute
// proclets to idle cores, and the prefetcher hides remote reads, so all
// four configurations should complete in nearly the same time.
//
// QS_FIG2_IMAGES overrides the dataset size (default 60000, the full-scale
// calibration; use e.g. 6000 for a quick run — times scale proportionally).

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "quicksand/app/image.h"
#include "quicksand/app/trainer.h"
#include "quicksand/common/bytes.h"
#include "quicksand/compute/parallel.h"
#include "quicksand/ds/sharded_queue.h"
#include "quicksand/sched/global_rebalancer.h"
#include "quicksand/sched/local_reactor.h"
#include "quicksand/trace/bench_trace.h"

namespace quicksand {
namespace {

BenchTrace* g_trace = nullptr;

struct Config {
  const char* name;
  double paper_seconds;
  std::vector<MachineSpec> machines;
};

MachineSpec Spec(int cores, double mem_gib) {
  MachineSpec spec;
  spec.cores = cores;
  spec.memory_bytes = static_cast<int64_t>(mem_gib * static_cast<double>(kGiB));
  spec.cpu_quantum = Duration::Micros(500);  // coarse: seconds-scale run
  return spec;
}

struct RunStats {
  double seconds = 0;
  double cpu_util[2] = {0, 0};
  int64_t peak_mem[2] = {0, 0};
  int64_t remote_invocations = 0;
  int64_t migrations = 0;
  int64_t reactor_cpu = 0;
  int64_t reactor_mem = 0;
  int64_t rebalancer = 0;
};

RunStats RunConfig(const Config& config, int64_t num_images) {
  Simulator sim;
  Cluster cluster(sim);
  for (const MachineSpec& spec : config.machines) {
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  (void)AttachBenchTracer(g_trace, rt, config.name);
  auto reactors = StartLocalReactors(rt);
  GlobalRebalancerConfig rebalance_cfg;
  rebalance_cfg.period = Duration::Millis(20);
  GlobalRebalancer rebalancer(rt, rebalance_cfg);
  rebalancer.Start();
  const Ctx ctx = rt.CtxOn(0);

  // --- Load the dataset into a sharded vector (not timed; the paper times
  // the preprocessing stage).
  ImageGenerator generator(/*seed=*/2023);
  ShardedVector<Image>::Options vec_options;
  vec_options.max_shard_bytes = 16 * kMiB;
  auto vec = *sim.BlockOn(ShardedVector<Image>::Create(ctx, vec_options));
  for (int64_t i = 0; i < num_images; ++i) {
    const Image image = generator.Generate(static_cast<uint64_t>(i));
    auto push = vec.PushBack(ctx, image);
    Result<uint64_t> pushed = sim.BlockOn(std::move(push));
    QS_CHECK_MSG(pushed.ok(), pushed.status().ToString().c_str());
  }

  // --- Tensor queue and (ample) emulated GPUs.
  ShardedQueue<Tensor>::Options queue_options;
  queue_options.max_segment_bytes = 8 * kMiB;
  auto queue = *sim.BlockOn(ShardedQueue<Tensor>::Create(ctx, queue_options));
  GpuTrainerConfig gpu_cfg;
  gpu_cfg.initial_gpus = 8;
  gpu_cfg.max_gpus = 8;
  gpu_cfg.batch_size = 32;
  gpu_cfg.batch_time = Duration::Millis(4);  // 64k tensors/s: never the bottleneck
  GpuTrainer trainer(rt, queue, gpu_cfg);
  trainer.Start();

  // --- Compute pool: enough workers to saturate every core even while some
  // streams wait on fetches.
  const int total_cores = cluster.total_cores();
  DistPool::Options pool_options;
  pool_options.workers_per_proclet = 4;
  pool_options.initial_proclets = std::max(2, total_cores / 2);
  DistPool pool = *sim.BlockOn(DistPool::Create(ctx, pool_options));

  PreprocessCostModel cost_model;
  const SimTime start = sim.Now();
  std::vector<Duration> busy0(cluster.size());
  for (MachineId m = 0; m < cluster.size(); ++m) {
    busy0[m] = cluster.machine(m).cpu().TotalBusy();
  }

  ParallelOptions par_options;
  // Enough spans that every worker stays busy even at small dataset scales.
  const int64_t total_workers =
      pool_options.initial_proclets * pool_options.workers_per_proclet;
  par_options.span_elems = static_cast<uint64_t>(
      std::max<int64_t>(16, num_images / (4 * total_workers)));
  par_options.chunk_elems = 16;  // ~3.2 MB per prefetched chunk
  Status status = sim.BlockOn(ParallelForEach(
      ctx, pool, vec,
      [queue, cost_model](Ctx job_ctx, uint64_t, Image image) mutable -> Task<> {
        (void)co_await MigratableBurn(job_ctx, PreprocessCost(image, cost_model));
        auto push = queue.Push(job_ctx, MakeTensor(image, cost_model));
        Status pushed = co_await std::move(push);
        if (!pushed.ok()) {
          throw std::runtime_error("tensor push failed: " + pushed.ToString());
        }
      },
      par_options));
  QS_CHECK_MSG(status.ok(), status.ToString().c_str());

  RunStats stats;
  stats.seconds = (sim.Now() - start).seconds();
  for (MachineId m = 0; m < cluster.size() && m < 2; ++m) {
    stats.cpu_util[m] = cluster.machine(m).cpu().UtilizationSince(start, busy0[m]);
    stats.peak_mem[m] = cluster.machine(m).memory().high_watermark();
  }
  stats.remote_invocations = rt.stats().remote_invocations;
  stats.migrations = rt.stats().migrations;
  for (const auto& reactor : reactors) {
    stats.reactor_cpu += reactor->cpu_evictions();
    stats.reactor_mem += reactor->memory_evictions();
  }
  stats.rebalancer = rebalancer.total_migrations();
  return stats;
}

void Main() {
  int64_t num_images = 60000;
  if (const char* env = std::getenv("QS_FIG2_IMAGES")) {
    num_images = std::atoll(env);
  }
  const double scale = static_cast<double>(num_images) / 60000.0;

  std::vector<Config> configs = {
      {"Baseline (1 machine)", 26.1, {Spec(46, 13.0)}},
      {"CPU-unbalanced", 26.4, {Spec(6, 6.5), Spec(40, 6.5)}},
      {"Mem-unbalanced", 26.6, {Spec(23, 1.0), Spec(23, 12.0)}},
      {"Both-unbalanced", 26.5, {Spec(6, 12.0), Spec(40, 1.0)}},
  };

  std::printf("=== Figure 2: preprocessing pipeline under resource imbalance ===\n");
  std::printf("images: %lld (scale %.2fx of the paper's calibration)\n\n",
              static_cast<long long>(num_images), scale);
  std::printf("%-22s %10s %12s %12s %9s %9s %8s %8s\n", "configuration", "time[s]",
              "paper[s]*", "vs baseline", "cpu0", "cpu1", "remote", "migr");

  double baseline_seconds = 0;
  for (const Config& config : configs) {
    const RunStats stats = RunConfig(config, num_images);
    if (baseline_seconds == 0) {
      baseline_seconds = stats.seconds;
    }
    std::printf("%-22s %10.1f %12.1f %11.1f%% %8.0f%% %8.0f%% %8lld %8lld"
                " (cpu:%lld mem:%lld glob:%lld)\n",
                config.name, stats.seconds, config.paper_seconds * scale,
                100.0 * stats.seconds / baseline_seconds,
                100.0 * stats.cpu_util[0],
                config.machines.size() > 1 ? 100.0 * stats.cpu_util[1] : 0.0,
                static_cast<long long>(stats.remote_invocations),
                static_cast<long long>(stats.migrations),
                static_cast<long long>(stats.reactor_cpu),
                static_cast<long long>(stats.reactor_mem),
                static_cast<long long>(stats.rebalancer));
  }
  std::printf("\n* paper values scaled by the dataset factor. Shape to check: all\n"
              "  imbalanced configurations land within a few percent of baseline.\n");
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  quicksand::g_trace = &trace;
  quicksand::Main();
  return 0;
}
