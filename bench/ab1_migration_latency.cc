// Ablation A1: proclet migration latency vs. heap size.
//
// The paper's enabling claims (§2): migrating a proclet with 10 MiB of state
// takes "only a few milliseconds", and the small filler proclets of Fig. 1
// move in under a millisecond. This bench sweeps heap size and reports the
// measured end-to-end migration latency plus its cost breakdown.
//
// --smoke is the trace-determinism gate: it runs the small-heap migration
// twice with tracing always on, fails if the same-seed trace digests
// diverge, and uses TraceQuery to assert the migration span's critical path
// is sub-millisecond and its events form one causal tree.

#include <cstdio>
#include <cstring>

#include "bench_json.h"
#include "quicksand/common/bytes.h"
#include "quicksand/proclet/memory_proclet.h"
#include "quicksand/trace/bench_trace.h"
#include "quicksand/trace/query.h"

namespace quicksand {
namespace {

struct SmokeResult {
  uint64_t digest = 0;
  int64_t events = 0;
  bool single_tree = false;
  bool migrated_ok = false;
  Duration migration = Duration::Zero();
};

// One 64 KiB migration with a tracer attached unconditionally (smoke always
// traces — that is the point of the gate). With --trace the run's events
// also land in the exported JSON.
SmokeResult SmokeRun(BenchTrace* trace, const char* label) {
  Simulator sim;
  Cluster cluster(sim);
  MachineSpec spec;
  spec.memory_bytes = 2 * kGiB;
  cluster.AddMachine(spec);
  cluster.AddMachine(spec);
  Runtime rt(sim, cluster);
  Tracer local_tracer(sim, cluster.size());
  Tracer* tracer = AttachBenchTracer(trace, rt, label);
  if (tracer == nullptr) {
    tracer = &local_tracer;
    rt.AttachTracer(tracer);
  }
  const Ctx ctx = rt.CtxOn(0);

  PlacementRequest req;
  req.heap_bytes = 64 * kKiB;
  req.pinned = MachineId{0};
  auto create = rt.Create<MemoryProclet>(ctx, req);
  Ref<MemoryProclet> proclet = *sim.BlockOn(std::move(create));
  const Status status = sim.BlockOn(rt.Migrate(proclet.id(), 1));

  SmokeResult r;
  r.digest = tracer->Digest();
  r.events = tracer->recorded();
  TraceQuery query = TraceQuery::FromTracer(*tracer);
  const std::vector<TraceSpan> migrations = query.SpansOf(TraceOp::kMigrate);
  if (status.ok() && migrations.size() == 1 && migrations.front().ended &&
      std::strcmp(migrations.front().detail, "ok") == 0) {
    r.migrated_ok = true;
    r.migration = migrations.front().duration();
    r.single_tree = query.SingleCausalTree(migrations.front().trace_id);
  }
  return r;
}

int Smoke(BenchTrace* trace) {
  const SmokeResult first = SmokeRun(trace, "smoke_run1");
  const SmokeResult second = SmokeRun(trace, "smoke_run2");
  std::printf("ab1 smoke: 64KiB migration span %s, %lld events, digest "
              "%016llx\n",
              first.migration.ToString().c_str(),
              static_cast<long long>(first.events),
              static_cast<unsigned long long>(first.digest));
  if (first.digest != second.digest) {
    std::printf("ab1 smoke: FAIL — same-seed trace digests diverged "
                "(%016llx vs %016llx)\n",
                static_cast<unsigned long long>(first.digest),
                static_cast<unsigned long long>(second.digest));
    return 1;
  }
  if (!first.migrated_ok) {
    std::printf("ab1 smoke: FAIL — migration span missing or not ok\n");
    return 1;
  }
  if (!first.single_tree) {
    std::printf("ab1 smoke: FAIL — migration events are not one causal tree\n");
    return 1;
  }
  if (first.migration >= Duration::Millis(1)) {
    std::printf("ab1 smoke: FAIL — 64KiB migration critical path %s is not "
                "sub-millisecond\n",
                first.migration.ToString().c_str());
    return 1;
  }
  std::printf("ab1 smoke: PASS (deterministic trace, sub-ms critical path)\n");
  return 0;
}

void Main(BenchTrace* trace) {
  std::printf("=== A1: migration latency vs proclet heap size ===\n");
  std::printf("fixed overhead %lldus (pinning/mapping) + heap/bandwidth (100Gbps) "
              "+ 5us latency\n\n",
              static_cast<long long>(RuntimeConfig{}.migration_fixed_overhead.micros()));
  std::printf("%12s %14s %16s %12s\n", "heap", "migration", "drain+overhead",
              "wire copy");

  BenchJson json;
  for (const int64_t heap :
       {4 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB, 4 * kMiB, 10 * kMiB, 32 * kMiB,
        64 * kMiB, 256 * kMiB}) {
    Simulator sim;
    Cluster cluster(sim);
    MachineSpec spec;
    spec.memory_bytes = 2 * kGiB;
    cluster.AddMachine(spec);
    cluster.AddMachine(spec);
    Runtime rt(sim, cluster);
    (void)AttachBenchTracer(trace, rt, "heap_" + FormatBytes(heap));
    const Ctx ctx = rt.CtxOn(0);

    PlacementRequest req;
    req.heap_bytes = heap;
    req.pinned = MachineId{0};
    auto create = rt.Create<MemoryProclet>(ctx, req);
    Ref<MemoryProclet> proclet = *sim.BlockOn(std::move(create));

    const SimTime start = sim.Now();
    const Status status = sim.BlockOn(rt.Migrate(proclet.id(), 1));
    QS_CHECK(status.ok());
    const Duration total = sim.Now() - start;
    const Duration wire = cluster.fabric().UnloadedTransferTime(
        heap + rt.config().migration_header_bytes);
    std::printf("%12s %14s %16s %12s\n", FormatBytes(heap).c_str(),
                total.ToString().c_str(), (total - wire).ToString().c_str(),
                wire.ToString().c_str());
    json.AddRow()
        .Str("scenario", "migration_latency")
        .Int("heap_bytes", heap)
        .Num("migration_us", static_cast<double>(total.nanos()) / 1e3)
        .Num("overhead_us", static_cast<double>((total - wire).nanos()) / 1e3)
        .Num("wire_us", static_cast<double>(wire.nanos()) / 1e3);
  }
  json.WriteFile("results/BENCH_ab1.json");
  std::printf("\nshape to check: sub-ms below ~4 MiB; ~1ms at 10 MiB "
              "(paper: 'a few milliseconds'); linear beyond.\n");
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return quicksand::Smoke(&trace);
  }
  quicksand::Main(&trace);
  return 0;
}
