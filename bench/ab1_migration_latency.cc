// Ablation A1: proclet migration latency vs. heap size.
//
// The paper's enabling claims (§2): migrating a proclet with 10 MiB of state
// takes "only a few milliseconds", and the small filler proclets of Fig. 1
// move in under a millisecond. This bench sweeps heap size and reports the
// measured end-to-end migration latency plus its cost breakdown.

#include <cstdio>

#include "quicksand/common/bytes.h"
#include "quicksand/proclet/memory_proclet.h"

namespace quicksand {
namespace {

void Main() {
  std::printf("=== A1: migration latency vs proclet heap size ===\n");
  std::printf("fixed overhead %lldus (pinning/mapping) + heap/bandwidth (100Gbps) "
              "+ 5us latency\n\n",
              static_cast<long long>(RuntimeConfig{}.migration_fixed_overhead.micros()));
  std::printf("%12s %14s %16s %12s\n", "heap", "migration", "drain+overhead",
              "wire copy");

  for (const int64_t heap :
       {4 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB, 4 * kMiB, 10 * kMiB, 32 * kMiB,
        64 * kMiB, 256 * kMiB}) {
    Simulator sim;
    Cluster cluster(sim);
    MachineSpec spec;
    spec.memory_bytes = 2 * kGiB;
    cluster.AddMachine(spec);
    cluster.AddMachine(spec);
    Runtime rt(sim, cluster);
    const Ctx ctx = rt.CtxOn(0);

    PlacementRequest req;
    req.heap_bytes = heap;
    req.pinned = MachineId{0};
    auto create = rt.Create<MemoryProclet>(ctx, req);
    Ref<MemoryProclet> proclet = *sim.BlockOn(std::move(create));

    const SimTime start = sim.Now();
    const Status status = sim.BlockOn(rt.Migrate(proclet.id(), 1));
    QS_CHECK(status.ok());
    const Duration total = sim.Now() - start;
    const Duration wire = cluster.fabric().UnloadedTransferTime(
        heap + rt.config().migration_header_bytes);
    std::printf("%12s %14s %16s %12s\n", FormatBytes(heap).c_str(),
                total.ToString().c_str(), (total - wire).ToString().c_str(),
                wire.ToString().c_str());
  }
  std::printf("\nshape to check: sub-ms below ~4 MiB; ~1ms at 10 MiB "
              "(paper: 'a few milliseconds'); linear beyond.\n");
}

}  // namespace
}  // namespace quicksand

int main() {
  quicksand::Main();
  return 0;
}
