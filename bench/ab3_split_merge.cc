// Ablation A3: split/merge cost and the disruption window (§3.3).
//
// "Splitting/merging resource proclets may briefly disrupt application
// performance as it blocks new proclet method invocations until it
// completes. However, Quicksand minimizes the performance impact by ensuring
// resource proclets are granular so that splits and merges are always fast."
//
// Sweep shard size; measure (a) the split latency, (b) the merge latency,
// and (c) the worst-case blocked-invocation latency observed by a client
// hammering the shard during the split.

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "quicksand/adapt/shard_maintenance.h"
#include "quicksand/common/bytes.h"
#include "quicksand/trace/bench_trace.h"

namespace quicksand {
namespace {

BenchTrace* g_trace = nullptr;
int g_runs = 0;

struct Env {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  Env() {
    for (int i = 0; i < 2; ++i) {
      MachineSpec spec;
      spec.cores = 8;
      spec.memory_bytes = 8 * kGiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
    (void)AttachBenchTracer(g_trace, *rt, "run_" + std::to_string(++g_runs));
  }
};

using BlobVector = ShardedVector<std::string>;

// Fills one shard with `total_bytes` of payload in 4KiB elements.
BlobVector FillOneShard(Env& env, int64_t total_bytes) {
  const Ctx ctx = env.rt->CtxOn(0);
  BlobVector::Options options;
  options.max_shard_bytes = 4 * total_bytes;  // growth never splits
  auto vec = *env.sim.BlockOn(BlobVector::Create(ctx, options));
  const int64_t element = 4 * kKiB;
  for (int64_t added = 0; added < total_bytes; added += element) {
    auto push = vec.PushBack(ctx, std::string(static_cast<size_t>(element), 'x'));
    QS_CHECK(env.sim.BlockOn(std::move(push)).ok());
  }
  return vec;
}

Task<> Hammer(Env& env, BlobVector vec, bool* stop, LatencyHistogram* latencies) {
  const Ctx ctx = env.rt->CtxOn(0);
  while (!*stop) {
    const SimTime start = env.sim.Now();
    auto get = vec.Get(ctx, 0);
    (void)co_await std::move(get);
    latencies->Add(env.sim.Now() - start);
    co_await env.sim.Sleep(Duration::Micros(20));
  }
}

void Main() {
  std::printf("=== A3: split/merge cost vs shard size ===\n\n");
  std::printf("%12s %12s %12s %20s\n", "shard size", "split", "merge",
              "max blocked call");
  BenchJson json;
  for (const int64_t size :
       {64 * kKiB, 256 * kKiB, 1 * kMiB, 4 * kMiB, 16 * kMiB, 64 * kMiB}) {
    Env env;
    const Ctx ctx = env.rt->CtxOn(0);
    BlobVector vec = FillOneShard(env, size);
    env.sim.BlockOn(vec.router().Refresh(ctx));
    const ShardInfo donor = vec.router().cached_shards()[0];

    bool stop = false;
    LatencyHistogram client_latency;
    env.sim.Spawn(Hammer(env, vec, &stop, &client_latency), "hammer");
    env.sim.RunUntil(env.sim.Now() + Duration::Millis(1));

    const SimTime split_start = env.sim.Now();
    QS_CHECK(env.sim.BlockOn(SplitVectorShard(ctx, vec, donor)).ok());
    const Duration split_time = env.sim.Now() - split_start;

    env.sim.RunUntil(env.sim.Now() + Duration::Millis(1));
    env.sim.BlockOn(vec.router().Refresh(ctx));
    const auto shards = vec.router().cached_shards();
    QS_CHECK(shards.size() == 2);
    // Merging requires a sealed right-hand shard; retire the tail first
    // (in the wild the vector has stopped growing by merge time).
    {
      QS_CHECK(env.sim.BlockOn(env.rt->BeginMaintenance(shards[1].proclet)).ok());
      auto* tail = env.rt->UnsafeGet<BlobVector::Shard>(shards[1].proclet);
      (void)tail->Seal();
      env.rt->EndMaintenance(shards[1].proclet);
    }
    const SimTime merge_start = env.sim.Now();
    QS_CHECK(env.sim.BlockOn(MergeVectorShards(ctx, vec, shards[0], shards[1])).ok());
    const Duration merge_time = env.sim.Now() - merge_start;
    stop = true;
    env.sim.RunUntil(env.sim.Now() + Duration::Millis(1));

    std::printf("%12s %12s %12s %20s\n", FormatBytes(size).c_str(),
                split_time.ToString().c_str(), merge_time.ToString().c_str(),
                client_latency.Max().ToString().c_str());
    json.AddRow()
        .Str("scenario", "split_merge")
        .Int("shard_bytes", size)
        .Num("split_us", static_cast<double>(split_time.nanos()) / 1e3)
        .Num("merge_us", static_cast<double>(merge_time.nanos()) / 1e3)
        .Num("max_blocked_us",
             static_cast<double>(client_latency.Max().nanos()) / 1e3);
  }
  json.WriteFile("results/BENCH_ab3.json");
  std::printf("\nshape to check: cost scales with moved bytes (half the shard for\n"
              "splits, all of it for merges); at the 16 MiB granularity cap the\n"
              "disruption stays ~1ms — why Quicksand keeps proclets granular.\n");
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  quicksand::g_trace = &trace;
  quicksand::Main();
  return 0;
}
