// Ablation A4: placement policy comparison under stranded resources.
//
// Scenario (§2/§4): one machine has idle CPU but little free memory, the
// other free memory but busy CPU. A policy that understands per-resource
// demand (best-fit by the proclet's resource) combines the strands; naive
// first-fit piles everything onto machine 0 until it bursts. Locality-aware
// placement additionally colocates a chatty pair.

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "quicksand/common/bytes.h"
#include "quicksand/compute/parallel.h"
#include "quicksand/ds/sharded_vector.h"
#include "quicksand/sched/placement.h"
#include "quicksand/trace/bench_trace.h"

namespace quicksand {
namespace {

BenchTrace* g_trace = nullptr;
int g_runs = 0;

struct Outcome {
  double seconds = 0;
  int64_t mem_on_m1 = 0;
  int64_t remote = 0;
  bool oom = false;
};

Outcome RunWith(std::unique_ptr<PlacementPolicy> policy) {
  Simulator sim;
  Cluster cluster(sim);
  // Machine 0: lots of CPU, cramped memory. Machine 1: the opposite.
  MachineSpec cpu_heavy;
  cpu_heavy.cores = 24;
  cpu_heavy.memory_bytes = static_cast<int64_t>(1.5 * static_cast<double>(kGiB));
  MachineSpec mem_heavy;
  mem_heavy.cores = 4;
  mem_heavy.memory_bytes = 12 * kGiB;
  mem_heavy.cpu_quantum = cpu_heavy.cpu_quantum = Duration::Micros(200);
  cluster.AddMachine(cpu_heavy);
  cluster.AddMachine(mem_heavy);
  Runtime rt(sim, cluster);
  rt.SetPlacementPolicy(std::move(policy));
  (void)AttachBenchTracer(g_trace, rt, "run_" + std::to_string(++g_runs));
  const Ctx ctx = rt.CtxOn(0);

  // 4 GiB dataset in 16 MiB shards; per-element compute.
  ShardedVector<std::string>::Options vec_options;
  vec_options.max_shard_bytes = 16 * kMiB;
  auto vec = *sim.BlockOn(ShardedVector<std::string>::Create(ctx, vec_options));
  Outcome outcome;
  constexpr int64_t kElems = 4096;  // x 1 MiB = 4 GiB
  for (int64_t i = 0; i < kElems; ++i) {
    auto push = vec.PushBack(ctx, std::string(1 * kMiB, 'x'));
    Result<uint64_t> pushed = sim.BlockOn(std::move(push));
    if (!pushed.ok()) {
      outcome.oom = true;
      return outcome;
    }
  }
  outcome.mem_on_m1 = cluster.machine(1).memory().used();

  DistPool::Options pool_options;
  pool_options.initial_proclets = 14;
  pool_options.workers_per_proclet = 2;
  DistPool pool = *sim.BlockOn(DistPool::Create(ctx, pool_options));

  const SimTime start = sim.Now();
  ParallelOptions par;
  par.span_elems = 64;
  par.chunk_elems = 8;
  Status status = sim.BlockOn(ParallelForEach(
      ctx, pool, vec,
      [](Ctx job_ctx, uint64_t, std::string blob) -> Task<> {
        co_await BurnCpu(job_ctx, Duration::Millis(2));
      },
      par));
  QS_CHECK_MSG(status.ok(), status.ToString().c_str());
  outcome.seconds = (sim.Now() - start).seconds();
  outcome.remote = rt.stats().remote_invocations;
  return outcome;
}

void Main() {
  std::printf("=== A4: placement policies with stranded resources ===\n");
  std::printf("m0: 24 cores + 1.5 GiB; m1: 4 cores + 12 GiB; 4 GiB dataset,\n"
              "2ms compute per 1 MiB element (total %.1f core-seconds)\n\n",
              4096 * 0.002);
  std::printf("%-16s %10s %14s %10s %6s\n", "policy", "time[s]", "mem on m1",
              "remote", "oom");
  struct Row {
    const char* name;
    std::unique_ptr<PlacementPolicy> policy;
  };
  Row rows[] = {
      {"first_fit", std::make_unique<FirstFitPolicy>()},
      {"best_fit", std::make_unique<BestFitPolicy>()},
      {"locality_aware", std::make_unique<LocalityAwarePolicy>()},
  };
  BenchJson json;
  for (Row& row : rows) {
    const Outcome outcome = RunWith(std::move(row.policy));
    std::printf("%-16s %10.2f %14s %10lld %6s\n", row.name, outcome.seconds,
                FormatBytes(outcome.mem_on_m1).c_str(),
                static_cast<long long>(outcome.remote), outcome.oom ? "YES" : "no");
    json.AddRow()
        .Str("scenario", "placement")
        .Str("policy", row.name)
        .Num("seconds", outcome.seconds)
        .Int("mem_on_m1_bytes", outcome.mem_on_m1)
        .Int("remote_invocations", outcome.remote)
        .Int("oom", outcome.oom ? 1 : 0);
  }
  json.WriteFile("results/BENCH_ab4.json");
  std::printf("\nshape to check: first_fit runs out of memory on the cramped\n"
              "machine (or barely fits); resource-aware policies put the shards\n"
              "on m1 and the compute on m0, finishing near the CPU-bound ideal\n"
              "(~%.1fs on 24+4 cores).\n",
              4096 * 0.002 / 28.0);
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  quicksand::g_trace = &trace;
  quicksand::Main();
  return 0;
}
