// BenchJson: tiny row collector for the perf-trajectory records.
//
// Every ablation bench appends flat rows of strings/numbers and writes them
// as a results/BENCH_<name>.json array — the shape scripts/bench_report.py
// tabulates into one cross-bench summary. Kept deliberately minimal (no
// nesting) so records stay grep-able and diff-able across PRs.

#ifndef QUICKSAND_BENCH_BENCH_JSON_H_
#define QUICKSAND_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace quicksand {

class BenchJson {
 public:
  class Row {
   public:
    Row& Str(const char* key, const std::string& value) {
      Key(key);
      fields_ += '"';
      for (const char c : value) {
        if (c == '"' || c == '\\') {
          fields_ += '\\';
        }
        fields_ += c;
      }
      fields_ += '"';
      return *this;
    }

    Row& Int(const char* key, int64_t value) {
      Key(key);
      fields_ += std::to_string(value);
      return *this;
    }

    Row& Num(const char* key, double value) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      Key(key);
      fields_ += buf;
      return *this;
    }

   private:
    friend class BenchJson;

    void Key(const char* key) {
      if (!fields_.empty()) {
        fields_ += ", ";
      }
      fields_ += '"';
      fields_ += key;
      fields_ += "\": ";
    }

    std::string fields_;
  };

  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  // Writes the array; returns false (after a warning) if the file cannot be
  // opened — benches still print their tables, so this is non-fatal.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs("[\n", f);
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  {%s}%s\n", rows_[i].fields_.c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  std::vector<Row> rows_;
};

}  // namespace quicksand

#endif  // QUICKSAND_BENCH_BENCH_JSON_H_
