// Ablation A9: overload control and graceful degradation under an open-loop
// serving workload.
//
// An open-loop KV frontend (serving/) drives FencedKvProclet shards at a
// fixed offered rate, independent of completions — the regime where a
// saturated server builds a standing queue and, uncontrolled, collapses:
// every queued request is dead on arrival by the time it runs, so goodput
// (completions within SLO) falls toward zero even though the CPUs stay
// 100% busy. The bench sweeps offered load with the overload controls off
// and on:
//
//  * off  — no deadline stamping, no admission control, no retry budget:
//           past saturation, goodput collapses and p99 grows without bound,
//  * on   — deadlines propagate end to end, CoDel-style admission sheds the
//           excess at the shard's host, and retries ride a token budget:
//           goodput plateaus near capacity and the p99 of what IS served
//           stays within the SLO.
//
// Two more scenarios exercise the remaining levers: a diurnal wave with a
// flash crowd (controls absorb the spike by shedding only during it), and
// degraded reads (shed reads fall back to the replication backup within a
// bounded staleness, converting rejections into slightly-stale answers).
//
// --smoke runs the 2x-capacity point twice with controls on (same-seed
// digests must match — the determinism gate) plus once with controls off,
// and exits nonzero unless collapse-without/plateau-with holds. It also
// writes results/BENCH_ab9.json with {offered, goodput, p99} rows.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "quicksand/cluster/metrics.h"
#include "quicksand/common/bytes.h"
#include "quicksand/durability/replication.h"
#include "quicksand/overload/admission.h"
#include "quicksand/serving/kv_frontend.h"
#include "quicksand/serving/workload.h"
#include "quicksand/trace/bench_trace.h"

namespace quicksand {
namespace {

constexpr int kMachines = 3;  // m0 frontend + 2 shard hosts
constexpr int kCoresPerMachine = 2;
constexpr Duration kServiceTime = Duration::Micros(50);
constexpr Duration kSlo = Duration::Millis(2);
constexpr Duration kRun = Duration::Millis(120);
constexpr Duration kDrain = Duration::Millis(60);
// 2 hosts x 2 cores / 50us of work per request.
constexpr double kCapacityQps =
    (kMachines - 1) * kCoresPerMachine * 1e9 / 50e3;

struct Controls {
  bool deadline = false;
  bool admission = false;
  bool budget = false;
  bool degraded = false;
};

constexpr Controls kAllOff{};
constexpr Controls kAllOn{true, true, true, false};

struct RunResult {
  int64_t offered = 0;
  int64_t ok_in_slo = 0;
  int64_t ok_late = 0;
  int64_t failed = 0;
  int64_t sheds_seen = 0;      // frontend-observed shed attempts
  int64_t deadline_seen = 0;   // frontend-observed deadline rejections
  int64_t stale_fallbacks = 0;
  int64_t retries = 0;
  int64_t budget_denied = 0;
  int64_t rt_sheds = 0;  // runtime-side counters (trace-instant mirrors)
  int64_t rt_deadline_rejected = 0;
  int64_t rt_stale_reads = 0;
  double goodput_qps = 0.0;
  Duration p50 = Duration::Zero();
  Duration p99 = Duration::Zero();
  Duration p999 = Duration::Zero();
  std::string digest;
};

RunResult RunOne(double offered_qps, Controls controls, uint64_t seed,
                 BenchTrace* trace, const std::string& label,
                 double flash_multiplier = 1.0,
                 double diurnal_amplitude = 0.0) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < kMachines; ++i) {
    MachineSpec spec;
    spec.cores = kCoresPerMachine;
    spec.memory_bytes = 2 * kGiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  // Traced unconditionally: the overload instants (rpc_shed,
  // deadline_expired, stale_serve) feed the digest, so the determinism gate
  // covers the overload path end to end.
  Tracer local_tracer(sim, cluster.size());
  Tracer* tracer = AttachBenchTracer(trace, rt, label);
  if (tracer == nullptr) {
    tracer = &local_tracer;
    rt.AttachTracer(tracer);
  }

  // The admission knobs scale with the SLO: the grace interval re-grants a
  // window of unchecked queue growth on every reset, so it must be small
  // against the latency budget or admitted-at-the-peak requests miss it.
  // The delay target leaves headroom for shard skew: hash-range sharding
  // splits the zipf mass unevenly, and the hotter machine's admitted tail
  // rides its delay target — 200us put p99 a hair over the 2ms SLO.
  AdmissionOptions aopt;
  aopt.target = Duration::Micros(150);
  aopt.interval = Duration::Micros(500);
  AdmissionController admission(cluster, aopt);
  if (controls.admission) {
    rt.AttachAdmission(&admission);
  }
  ReplicationManager::Options ropt;
  ropt.ack = AckMode::kFireAndForget;
  ReplicationManager replication(rt, ropt);

  KvFrontendOptions fopt;
  fopt.shards = kMachines - 1;
  fopt.slo = kSlo;
  fopt.service_time = kServiceTime;
  fopt.deadline_propagation = controls.deadline;
  fopt.retry_budget = controls.budget;
  fopt.degraded_reads = controls.degraded;
  // Wide enough to cover the run plus the longest uncontrolled drain, so
  // Merged() below reports lifetime quantiles.
  fopt.stats_window = Duration::Seconds(4);
  KvFrontend frontend(rt, fopt);
  if (controls.degraded) {
    frontend.AttachReplication(&replication);
  }
  const Status started = sim.BlockOn(frontend.Start(rt.CtxOn(0)));
  QS_CHECK_MSG(started.ok(), "frontend start failed");

  ClusterMetrics metrics(sim, cluster, Duration::Millis(10));
  metrics.AttachServing(&frontend);
  metrics.Start();

  WorkloadOptions wopt;
  wopt.base_qps = offered_qps;
  wopt.duration = kRun;
  wopt.seed = seed;
  wopt.keys = 512;
  wopt.zipf_s = 0.9;
  wopt.read_fraction = 0.9;
  wopt.diurnal_amplitude = diurnal_amplitude;
  wopt.diurnal_period = kRun;
  if (flash_multiplier > 1.0) {
    wopt.flash_multiplier = flash_multiplier;
    wopt.flash_start = sim.Now() + Duration::Millis(40);
    wopt.flash_end = sim.Now() + Duration::Millis(70);
  }
  OpenLoopLoadGen gen(sim, frontend, wopt);
  sim.Spawn(gen.Run(), "loadgen");
  sim.RunFor(kRun + kDrain);
  // An uncontrolled overload run ends with a deep standing queue; every
  // queued request still completes (arbitrarily late — that IS the
  // collapse), so run until all arrivals are accounted before tearing the
  // world down.
  const auto accounted = [&frontend] {
    return frontend.ok_in_slo() + frontend.ok_late() + frontend.failed();
  };
  for (int i = 0; i < 200 && accounted() < frontend.offered(); ++i) {
    sim.RunFor(Duration::Millis(20));
  }
  QS_CHECK_MSG(accounted() == frontend.offered(),
               "requests still in flight after drain");

  RunResult r;
  r.offered = frontend.offered();
  r.ok_in_slo = frontend.ok_in_slo();
  r.ok_late = frontend.ok_late();
  r.failed = frontend.failed();
  r.sheds_seen = frontend.sheds_seen();
  r.deadline_seen = frontend.deadline_rejections_seen();
  r.stale_fallbacks = frontend.stale_fallbacks();
  r.retries = frontend.retries();
  r.budget_denied = frontend.budget().denied();
  r.rt_sheds = rt.stats().shed_invocations;
  r.rt_deadline_rejected = rt.stats().deadline_rejected_invocations;
  r.rt_stale_reads = rt.stats().stale_reads;
  r.goodput_qps = static_cast<double>(r.ok_in_slo) /
                  (static_cast<double>(kRun.nanos()) / 1e9);
  const LatencyHistogram lat = frontend.latency().Merged(sim.Now());
  if (lat.count() > 0) {
    r.p50 = lat.Percentile(50);
    r.p99 = lat.Percentile(99);
    r.p999 = lat.Percentile(99.9);
  }

  std::ostringstream digest;
  digest << r.offered << '|' << r.ok_in_slo << '|' << r.ok_late << '|'
         << r.failed << '|' << r.sheds_seen << '|' << r.deadline_seen << '|'
         << r.stale_fallbacks << '|' << r.retries << '|' << r.budget_denied
         << '|' << r.rt_sheds << '|' << r.rt_deadline_rejected << '|'
         << r.rt_stale_reads << '|' << admission.sheds() << '|'
         << admission.probes() << '|' << r.p50.nanos() << '|'
         << r.p99.nanos() << '|' << r.p999.nanos() << '|'
         << metrics.serving_goodput_qps().points().size() << '|'
         << sim.Now().nanos() << '|' << std::hex << tracer->Digest();
  r.digest = digest.str();
  return r;
}

void PrintRow(double offered, const char* which, const RunResult& r) {
  std::printf("%8.0f %4s | %9.0f %7lld %7lld | %9s %9s | %7lld %7lld %7lld\n",
              offered, which, r.goodput_qps,
              static_cast<long long>(r.ok_late),
              static_cast<long long>(r.failed), r.p99.ToString().c_str(),
              r.p999.ToString().c_str(), static_cast<long long>(r.sheds_seen),
              static_cast<long long>(r.deadline_seen),
              static_cast<long long>(r.budget_denied));
}

struct JsonRow {
  std::string scenario;
  double offered_qps;
  bool controls_on;
  double goodput_qps;
  double p99_us;
};

void WriteJson(const std::vector<JsonRow>& rows) {
  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_ab9.json");
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    out << "  {\"scenario\": \"" << rows[i].scenario
        << "\", \"offered_qps\": " << rows[i].offered_qps
        << ", \"controls\": \"" << (rows[i].controls_on ? "on" : "off")
        << "\", \"goodput_qps\": " << rows[i].goodput_qps
        << ", \"p99_us\": " << rows[i].p99_us << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::printf("ab9: wrote %zu rows to results/BENCH_ab9.json\n", rows.size());
}

JsonRow Row(const std::string& scenario, double offered, bool on,
            const RunResult& r) {
  return JsonRow{scenario, offered, on, r.goodput_qps,
                 static_cast<double>(r.p99.nanos()) / 1e3};
}

int Smoke(BenchTrace* trace) {
  const double offered = 2.0 * kCapacityQps;
  const RunResult on1 = RunOne(offered, kAllOn, 1, trace, "smoke_on_run1");
  const RunResult on2 = RunOne(offered, kAllOn, 1, trace, "smoke_on_run2");
  const RunResult off = RunOne(offered, kAllOff, 1, trace, "smoke_off");
  WriteJson({Row("smoke", offered, true, on1), Row("smoke", offered, false, off)});
  std::printf("ab9 smoke: offered %.0f qps (capacity %.0f)\n"
              "  controls on:  goodput %.0f qps, p99 %s, shed %lld, "
              "deadline-rejected %lld\n"
              "  controls off: goodput %.0f qps, p99 %s\n",
              offered, kCapacityQps, on1.goodput_qps, on1.p99.ToString().c_str(),
              static_cast<long long>(on1.sheds_seen),
              static_cast<long long>(on1.deadline_seen), off.goodput_qps,
              off.p99.ToString().c_str());
  if (on1.digest != on2.digest) {
    std::printf("ab9 smoke: FAIL — same-seed runs diverged\n  first:  %s\n"
                "  second: %s\n",
                on1.digest.c_str(), on2.digest.c_str());
    return 1;
  }
  // Controls engaged: admission shed something at 2x capacity, and the
  // runtime-side counter agrees with the frontend's observation.
  if (on1.sheds_seen <= 0 || on1.rt_sheds < on1.sheds_seen) {
    std::printf("ab9 smoke: FAIL — admission control never engaged "
                "(frontend %lld, runtime %lld)\n",
                static_cast<long long>(on1.sheds_seen),
                static_cast<long long>(on1.rt_sheds));
    return 1;
  }
  if (off.sheds_seen != 0 || off.deadline_seen != 0) {
    std::printf("ab9 smoke: FAIL — controls-off run shed or rejected\n");
    return 1;
  }
  // Collapse without, plateau with: the controlled run must serve several
  // times more within-SLO work, and its tail must be far tighter.
  if (on1.ok_in_slo < 4 * std::max<int64_t>(off.ok_in_slo, 1)) {
    std::printf("ab9 smoke: FAIL — no plateau (on %lld in-SLO vs off %lld)\n",
                static_cast<long long>(on1.ok_in_slo),
                static_cast<long long>(off.ok_in_slo));
    return 1;
  }
  if (off.p99 <= kSlo || on1.p99 >= off.p99) {
    std::printf("ab9 smoke: FAIL — uncontrolled tail did not collapse "
                "(off p99 %s, on p99 %s)\n",
                off.p99.ToString().c_str(), on1.p99.ToString().c_str());
    return 1;
  }
  if (on1.p99 > kSlo) {
    std::printf("ab9 smoke: FAIL — controlled p99 %s exceeds the %s SLO\n",
                on1.p99.ToString().c_str(), kSlo.ToString().c_str());
    return 1;
  }
  std::printf("ab9 smoke: PASS (deterministic; collapse without controls, "
              "plateau with)\n");
  return 0;
}

void Main(BenchTrace* trace) {
  std::printf("=== A9: overload control under open-loop serving ===\n");
  std::printf("(%d machines, %d cores each; %d shards, %s service, %s SLO; "
              "capacity ~%.0f qps; zipf(0.9) keys, 90%% reads)\n\n",
              kMachines, kCoresPerMachine, kMachines - 1,
              kServiceTime.ToString().c_str(), kSlo.ToString().c_str(),
              kCapacityQps);
  std::vector<JsonRow> json;

  std::printf("--- offered load sweep: controls off vs on ---\n");
  std::printf("%8s %4s | %9s %7s %7s | %9s %9s | %7s %7s %7s\n", "offered",
              "ctl", "goodput", "late", "failed", "p99", "p999", "shed",
              "dl_rej", "denied");
  for (const double factor : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    const double offered = factor * kCapacityQps;
    const std::string suffix = std::to_string(static_cast<int>(factor * 100));
    const RunResult off =
        RunOne(offered, kAllOff, 1, trace, "sweep_off_" + suffix);
    const RunResult on = RunOne(offered, kAllOn, 1, trace, "sweep_on_" + suffix);
    PrintRow(offered, "off", off);
    PrintRow(offered, "on", on);
    json.push_back(Row("sweep", offered, false, off));
    json.push_back(Row("sweep", offered, true, on));
  }
  std::printf("(past capacity the uncontrolled tail is the queue itself — "
              "everything completes, arbitrarily late; with controls the "
              "excess is shed at admission and what is admitted meets the "
              "SLO)\n\n");

  std::printf("--- diurnal wave + flash crowd (base 0.6x, flash 4x for "
              "30ms) ---\n");
  std::printf("%8s %4s | %9s %7s %7s | %9s %9s | %7s %7s %7s\n", "base",
              "ctl", "goodput", "late", "failed", "p99", "p999", "shed",
              "dl_rej", "denied");
  const double base = 0.6 * kCapacityQps;
  const RunResult flash_off = RunOne(base, kAllOff, 1, trace, "flash_off",
                                     /*flash_multiplier=*/4.0,
                                     /*diurnal_amplitude=*/0.3);
  const RunResult flash_on = RunOne(base, kAllOn, 1, trace, "flash_on",
                                    /*flash_multiplier=*/4.0,
                                    /*diurnal_amplitude=*/0.3);
  PrintRow(base, "off", flash_off);
  PrintRow(base, "on", flash_on);
  json.push_back(Row("flash", base, false, flash_off));
  json.push_back(Row("flash", base, true, flash_on));
  std::printf("(the flash crowd alone saturates; shedding is confined to the "
              "spike — before and after it nothing is rejected)\n\n");

  std::printf("--- degraded reads at 2x capacity (controls on) ---\n");
  Controls degraded = kAllOn;
  degraded.degraded = true;
  const RunResult deg_off =
      RunOne(2.0 * kCapacityQps, kAllOn, 1, trace, "degraded_off");
  const RunResult deg_on =
      RunOne(2.0 * kCapacityQps, degraded, 1, trace, "degraded_on");
  const auto served = [](const RunResult& r) {
    return static_cast<double>(r.ok_in_slo + r.ok_late) /
           static_cast<double>(r.offered > 0 ? r.offered : 1);
  };
  std::printf("  stale fallback off: %5.1f%% of requests served, %7lld "
              "rejected\n",
              100.0 * served(deg_off), static_cast<long long>(deg_off.failed));
  std::printf("  stale fallback on:  %5.1f%% of requests served, %7lld "
              "rejected, %lld answered from the backup (bounded staleness)\n",
              100.0 * served(deg_on), static_cast<long long>(deg_on.failed),
              static_cast<long long>(deg_on.stale_fallbacks));
  json.push_back(Row("degraded", 2.0 * kCapacityQps, true, deg_on));
  std::printf("(a shed read is not a lost read when a replica exists: the "
              "backup answers within its staleness bound)\n\n");

  WriteJson(json);
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return quicksand::Smoke(&trace);
  }
  quicksand::Main(&trace);
  return 0;
}
