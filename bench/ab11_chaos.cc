// Ablation A11: deterministic chaos — seeded fault schedules vs the
// invariant oracles.
//
// Every prior ablation aims one curated fault at one subsystem. This bench
// composes ALL of them: GenerateSchedule draws a seeded script of crashes,
// revocations, partitions, isolation, link loss, delay spikes, and flash
// crowds, and RunChaos drives it against the full serving + autoscale +
// recovery stack while the oracles watch (range partition, epoch
// monotonicity, exactly-once, recovery completeness, acked-write
// durability, staleness config). Two profiles per sweep:
//
//  * reshape — autoscaler on, no replication: data on a crashed host
//    legally dies (the ledger excuses it), but a crash-unsafe reshape that
//    loses ANY other acked write is a violation;
//  * durable — every shard replicated, reshaping pinned off, at most one
//    fail-stop per schedule (the replication factor is 1): the ledger is
//    strict — no excuses at all.
//
// Reported: survival rate across seeds and the recovery-time (outage
// episode) distribution. Exit is nonzero if any seed violates an oracle.
//
// --smoke is the CI gate: a fixed schedule corpus must survive with zero
// violations and a repeated seed must produce byte-identical digests
// (determinism). Then the engine must EARN its keep: a crafted schedule —
// flash crowd + delay-spiked copy links + crashes of the split targets
// mid-copy — is replayed with the pre-hardening reshape install
// (unsafe_reshape_for_test); the oracles must catch the acked-write loss,
// the shrinker must reduce the schedule to <= 5 events while it still
// reproduces, and the SAME schedule through the hardened path must pass.
// The minimal repro + postmortems land in results/ab11_repro.txt.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "quicksand/chaos/harness.h"
#include "quicksand/chaos/oracles.h"
#include "quicksand/chaos/schedule.h"
#include "quicksand/chaos/shrink.h"

namespace quicksand {
namespace {

constexpr int kMachines = 6;
constexpr Duration kHorizon = Duration::Millis(60);

ChaosHarnessOptions ReshapeProfile() {
  ChaosHarnessOptions opt;
  opt.machines = kMachines;
  opt.run = kHorizon;
  opt.replicate = false;
  opt.autoscale = true;
  return opt;
}

ChaosHarnessOptions DurableProfile() {
  ChaosHarnessOptions opt;
  opt.machines = kMachines;
  opt.run = kHorizon;
  opt.replicate = true;  // pins the shards; reshaping is refused
  opt.autoscale = false;
  return opt;
}

ChaosSchedule MakeSchedule(uint64_t seed, int max_crashes) {
  ChaosScheduleOptions opt;
  opt.machines = kMachines;
  opt.horizon = kHorizon;
  opt.events = 8;
  opt.max_crashes = max_crashes;
  return GenerateSchedule(seed, opt);
}

Duration MaxOutage(const ChaosRunResult& r) {
  Duration max = Duration::Zero();
  for (const Duration d : r.outages) {
    max = std::max(max, d);
  }
  return max;
}

struct JsonRow {
  uint64_t seed;
  std::string profile;
  bool survived;
  size_t violations;
  int64_t started;
  int64_t acked;
  int64_t failed;
  int64_t crashes;
  int64_t repairs;
  int64_t rollbacks;
  int64_t discards;
  double outage_max_us;
};

JsonRow Row(uint64_t seed, const char* profile, const ChaosRunResult& r) {
  return JsonRow{seed,
                 profile,
                 r.survived,
                 r.violations.size(),
                 r.started,
                 r.acked,
                 r.failed,
                 r.crashes,
                 r.repairs,
                 r.reshape_rollbacks,
                 r.reshape_payload_discards,
                 static_cast<double>(MaxOutage(r).nanos()) / 1e3};
}

void WriteJson(const std::vector<JsonRow>& rows) {
  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_ab11.json");
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    out << "  {\"seed\": " << r.seed << ", \"profile\": \"" << r.profile
        << "\", \"survived\": " << (r.survived ? "true" : "false")
        << ", \"violations\": " << r.violations
        << ", \"started\": " << r.started << ", \"acked\": " << r.acked
        << ", \"failed\": " << r.failed << ", \"crashes\": " << r.crashes
        << ", \"repairs\": " << r.repairs
        << ", \"reshape_rollbacks\": " << r.rollbacks
        << ", \"payload_discards\": " << r.discards
        << ", \"outage_max_us\": " << r.outage_max_us << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::printf("ab11: wrote %zu rows to results/BENCH_ab11.json\n",
              rows.size());
}

void PrintRow(uint64_t seed, const char* profile, const ChaosRunResult& r) {
  std::printf("%6llu %8s | %9s | %6lld %6lld %6lld | %2lld %2lld %3lld | "
              "%3lld %3lld | %9s | %zu\n",
              static_cast<unsigned long long>(seed), profile,
              r.survived ? "SURVIVED" : "FAILED",
              static_cast<long long>(r.started),
              static_cast<long long>(r.acked),
              static_cast<long long>(r.failed),
              static_cast<long long>(r.crashes),
              static_cast<long long>(r.revocations),
              static_cast<long long>(r.network_faults),
              static_cast<long long>(r.repairs),
              static_cast<long long>(r.reshape_rollbacks),
              MaxOutage(r).ToString().c_str(), r.violations.size());
}

// The crafted kill shot for the pre-hardening reshape: the flash crowd
// forces splits onto the idle hosts, the delay spikes stretch every
// donor->target copy to ~5ms wide, and the staggered crashes of the idle
// hosts land inside those windows. With the blind install a crashed
// target's split "succeeds" into the limbo corpse and the extracted range
// vanishes — acked writes and all.
ChaosSchedule BugSchedule() {
  ChaosSchedule s;
  s.seed = 0xB06;
  auto add = [&s](ChaosEventKind kind, Duration at, Duration duration,
                  MachineId a, MachineId b, double magnitude,
                  Duration extra) {
    ChaosEvent e;
    e.kind = kind;
    e.at = at;
    e.duration = duration;
    e.a = a;
    e.b = b;
    e.magnitude = magnitude;
    e.extra = extra;
    s.events.push_back(e);
  };
  // Spikes span the whole run and add 20ms to every donor->idle-host link:
  // any split copy launched during the flash is in flight for ~20ms, so the
  // staggered crashes of the idle hosts are guaranteed to land inside one.
  const Duration spike_at = Duration::Millis(5);
  const Duration spike_window = Duration::Millis(50);
  const Duration spike = Duration::Millis(20);
  add(ChaosEventKind::kFlashCrowd, Duration::Millis(8), Duration::Millis(30),
      1, 0, 4.0, Duration::Zero());
  for (const MachineId src : {MachineId{1}, MachineId{2}}) {
    for (const MachineId dst : {MachineId{3}, MachineId{4}, MachineId{5}}) {
      add(ChaosEventKind::kDelaySpike, spike_at, spike_window, src, dst, 0.0,
          spike);
    }
  }
  add(ChaosEventKind::kCrash, Duration::Millis(20), Duration::Zero(), 4, 0,
      0.0, Duration::Zero());
  add(ChaosEventKind::kCrash, Duration::Millis(26), Duration::Zero(), 5, 0,
      0.0, Duration::Zero());
  add(ChaosEventKind::kCrash, Duration::Millis(32), Duration::Zero(), 3, 0,
      0.0, Duration::Zero());
  return s;
}

int BugHunt() {
  const ChaosSchedule bug = BugSchedule();
  ChaosHarnessOptions unsafe_opt = ReshapeProfile();
  unsafe_opt.unsafe_reshape = true;

  const ChaosRunResult broken = RunChaos(bug, unsafe_opt);
  std::printf("ab11 bug-hunt: unsafe reshape under the crafted schedule: "
              "%zu violations, %lld payload installs lost (%lld splits, "
              "%lld migrations, %lld crashes, %lld acked writes, %lld "
              "repairs, %lld rollbacks)\n",
              broken.violations.size(),
              static_cast<long long>(broken.reshape_payload_discards),
              static_cast<long long>(broken.splits),
              static_cast<long long>(broken.migrations),
              static_cast<long long>(broken.crashes),
              static_cast<long long>(broken.acked_writes),
              static_cast<long long>(broken.repairs),
              static_cast<long long>(broken.reshape_rollbacks));
  if (broken.violations.empty()) {
    std::printf("ab11 smoke: FAIL — the oracles missed the reintroduced "
                "crash-mid-reshape bug\n");
    return 1;
  }

  ShrinkResult shrunk = ShrinkSchedule(
      bug,
      [&unsafe_opt](const ChaosSchedule& candidate) {
        return !RunChaos(candidate, unsafe_opt).violations.empty();
      },
      /*max_probes=*/80);
  const ChaosRunResult repro = RunChaos(shrunk.schedule, unsafe_opt);
  std::printf("ab11 bug-hunt: shrunk %zu -> %zu events (%d probes, %d "
              "rounds); repro has %zu violations\n",
              bug.events.size(), shrunk.schedule.events.size(), shrunk.probes,
              shrunk.rounds, repro.violations.size());

  std::filesystem::create_directories("results");
  {
    std::ofstream out("results/ab11_repro.txt");
    out << "Minimal repro for the crash-mid-reshape bug "
        << "(unsafe_reshape_for_test)\n\nschedule: "
        << FormatSchedule(shrunk.schedule) << "\nviolations:\n"
        << FormatViolations(repro.violations) << "\n";
    for (const std::string& postmortem : repro.postmortems) {
      out << "\n" << postmortem;
    }
  }
  std::printf("ab11 bug-hunt: wrote minimal repro + %zu postmortems to "
              "results/ab11_repro.txt\n",
              repro.postmortems.size());

  if (repro.violations.empty() || shrunk.schedule.events.size() > 5) {
    std::printf("ab11 smoke: FAIL — shrink did not hold the violation at "
                "<= 5 events (%zu events, %zu violations)\n",
                shrunk.schedule.events.size(), repro.violations.size());
    return 1;
  }
  // The hardened path must survive the exact same kill shot.
  const ChaosRunResult hardened = RunChaos(bug, ReshapeProfile());
  if (!hardened.violations.empty()) {
    std::printf("ab11 smoke: FAIL — hardened reshape still violates under "
                "the bug schedule:\n%s",
                FormatViolations(hardened.violations).c_str());
    return 1;
  }
  std::printf("ab11 bug-hunt: hardened run survives the same schedule "
              "(%lld rollbacks, %lld repairs)\n",
              static_cast<long long>(hardened.reshape_rollbacks),
              static_cast<long long>(hardened.repairs));
  return 0;
}

int Smoke() {
  // Fixed corpus: same seeds forever, so a regression is a diff, not a
  // statistic. Seed 3 runs twice — the digests must match bit for bit.
  const std::vector<uint64_t> reshape_corpus = {3, 7, 11, 19};
  const std::vector<uint64_t> durable_corpus = {5};
  std::vector<JsonRow> rows;
  int bad = 0;
  std::string digest_first;
  std::string digest_second;
  for (const uint64_t seed : reshape_corpus) {
    const ChaosSchedule schedule = MakeSchedule(seed, /*max_crashes=*/2);
    const ChaosRunResult r = RunChaos(schedule, ReshapeProfile());
    PrintRow(seed, "reshape", r);
    rows.push_back(Row(seed, "reshape", r));
    if (!r.survived) {
      ++bad;
      std::printf("%s", FormatViolations(r.violations).c_str());
    }
    if (seed == reshape_corpus.front()) {
      digest_first = r.digest;
      digest_second = RunChaos(schedule, ReshapeProfile()).digest;
    }
  }
  for (const uint64_t seed : durable_corpus) {
    const ChaosSchedule schedule = MakeSchedule(seed, /*max_crashes=*/1);
    const ChaosRunResult r = RunChaos(schedule, DurableProfile());
    PrintRow(seed, "durable", r);
    rows.push_back(Row(seed, "durable", r));
    if (!r.survived) {
      ++bad;
      std::printf("%s", FormatViolations(r.violations).c_str());
    }
  }
  WriteJson(rows);
  if (bad > 0) {
    std::printf("ab11 smoke: FAIL — %d corpus schedules not survived\n", bad);
    return 1;
  }
  if (digest_first != digest_second) {
    std::printf("ab11 smoke: FAIL — same-seed runs diverged\n  first:  %s\n"
                "  second: %s\n",
                digest_first.c_str(), digest_second.c_str());
    return 1;
  }
  if (BugHunt() != 0) {
    return 1;
  }
  std::printf("ab11 smoke: PASS (corpus survived deterministically; the "
              "reintroduced bug was caught and shrunk)\n");
  return 0;
}

void Main(int seeds) {
  std::printf("=== A11: seeded chaos schedules vs the invariant oracles ===\n");
  std::printf("(%d machines; %s horizon; 8 events/schedule; reshape profile "
              "allows 2 fail-stops with the ledger excusing data that died "
              "with its host; durable profile allows 1 with a strict "
              "ledger)\n\n",
              kMachines, kHorizon.ToString().c_str());
  std::printf("%6s %8s | %9s | %6s %6s %6s | %2s %2s %3s | %3s %3s | %9s | "
              "viol\n",
              "seed", "profile", "outcome", "start", "acked", "fail", "cr",
              "rv", "net", "rep", "rb", "max outage");
  std::vector<JsonRow> rows;
  int violated = 0;
  int survived = 0;
  std::vector<Duration> outages;
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(i);
    const bool durable = (i % 4) == 3;  // every fourth seed runs durable
    const ChaosSchedule schedule = MakeSchedule(seed, durable ? 1 : 2);
    const ChaosRunResult r =
        RunChaos(schedule, durable ? DurableProfile() : ReshapeProfile());
    PrintRow(seed, durable ? "durable" : "reshape", r);
    rows.push_back(Row(seed, durable ? "durable" : "reshape", r));
    if (!r.violations.empty()) {
      ++violated;
      std::printf("%s", FormatViolations(r.violations).c_str());
    }
    if (r.survived) {
      ++survived;
    }
    outages.insert(outages.end(), r.outages.begin(), r.outages.end());
  }
  std::sort(outages.begin(), outages.end());
  const auto pct = [&outages](double p) {
    if (outages.empty()) {
      return Duration::Zero();
    }
    const size_t idx = std::min(
        outages.size() - 1,
        static_cast<size_t>(p * static_cast<double>(outages.size())));
    return outages[idx];
  };
  std::printf("\nsurvival: %d/%d; oracle violations in %d runs\n", survived,
              seeds, violated);
  std::printf("recovery time (table degraded -> fully live), %zu episodes: "
              "p50 %s, p90 %s, max %s\n",
              outages.size(), pct(0.50).ToString().c_str(),
              pct(0.90).ToString().c_str(),
              (outages.empty() ? Duration::Zero() : outages.back())
                  .ToString()
                  .c_str());
  WriteJson(rows);
  if (violated > 0) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return quicksand::Smoke();
  }
  // Repro workflow: replay one generated schedule and dump everything.
  if (argc > 2 && std::strcmp(argv[1], "--one") == 0) {
    const uint64_t seed = std::strtoull(argv[2], nullptr, 10);
    const bool durable = argc > 3 && std::strcmp(argv[3], "durable") == 0;
    const quicksand::ChaosSchedule schedule =
        quicksand::MakeSchedule(seed, durable ? 1 : 2);
    std::printf("schedule: %s\n",
                quicksand::FormatSchedule(schedule).c_str());
    const quicksand::ChaosRunResult r = quicksand::RunChaos(
        schedule,
        durable ? quicksand::DurableProfile() : quicksand::ReshapeProfile());
    quicksand::PrintRow(seed, durable ? "durable" : "reshape", r);
    std::printf("%s", quicksand::FormatViolations(r.violations).c_str());
    for (const std::string& postmortem : r.postmortems) {
      std::printf("\n%s", postmortem.c_str());
    }
    return r.violations.empty() ? 0 : 1;
  }
  int seeds = 20;
  if (argc > 2 && std::strcmp(argv[1], "--seeds") == 0) {
    seeds = std::max(1, std::atoi(argv[2]));
  }
  quicksand::Main(seeds);
  return 0;
}
